from setuptools import setup

# Thin shim so legacy `pip install -e .` works without network access to
# build-system requirements; all metadata lives in pyproject.toml.
setup()
