"""Architectural design-space exploration (the Fig. 6 / Fig. 7 workflow).

Declares the paper's hardware cross product -- macro-group size (4..16
macros) x NoC flit width (8/16 bytes) for ResNet18 and EfficientNetB0 at
224x224 -- as a :class:`repro.explore.SweepSpec`, then executes it through
the exploration engine.  Pass ``--workers N`` to fan the points out over a
process pool and ``--cache DIR`` to reuse results across runs (a second
invocation is served almost entirely from disk).

The same sweep is available without Python as::

    python -m repro sweep --models resnet18,efficientnetb0 \\
        --strategies generic --mg-sizes 4,8,12,16 --flit-sizes 8,16

Run:  python examples/design_space_exploration.py [--workers N] [--cache DIR]
"""

import argparse

from repro.explore import FLIT_SIZES, MG_SIZES, SweepSpec, run_sweep
from repro.explore_cache import ResultCache


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workers", type=int, default=1,
                        help="process-pool size (1 = serial)")
    parser.add_argument("--cache", metavar="DIR", default=None,
                        help="on-disk result cache directory")
    args = parser.parse_args()

    spec = SweepSpec(
        models=("resnet18", "efficientnetb0"),
        strategies=("generic",),
        mg_sizes=MG_SIZES,
        flit_sizes=FLIT_SIZES,
        input_sizes=(224,),
    )
    cache = ResultCache(args.cache) if args.cache else None
    result = run_sweep(spec, workers=args.workers, cache=cache)

    for model, points in result.by_model().items():
        print(f"\n{model} @ 224x224, generic mapping")
        print(f"{'MG':>4s}{'flit':>6s}{'TOPS':>8s}{'E mJ':>8s}"
              f"{'local%':>8s}{'compute%':>10s}{'noc%':>7s}")
        for pt in points:
            g = pt.report.grouped_energy_mj()
            tracked = g["local_mem"] + g["compute"] + g["noc"]
            print(
                f"{pt.mg_size:>4d}{pt.flit_bytes:>6d}{pt.tops:>8.2f}"
                f"{tracked:>8.2f}"
                f"{100 * g['local_mem'] / tracked:>8.1f}"
                f"{100 * g['compute'] / tracked:>10.1f}"
                f"{100 * g['noc'] / tracked:>7.1f}"
            )

    stats = result.stats
    print(
        f"\n{stats.total_points} points in {stats.wall_time_s:.1f}s "
        f"({stats.workers} workers, {stats.cache_hits} cache hits, "
        f"{stats.evaluated} evaluated)"
    )


if __name__ == "__main__":
    main()
