"""Architectural design-space exploration (the Fig. 6 / Fig. 7 workflow).

Sweeps macro-group size (4..16 macros) and NoC flit width (8/16 bytes)
for ResNet18 and EfficientNetB0 at paper-scale 224x224 resolution using
the fast row-granular pipeline model, then prints the energy breakdown
and throughput of every point -- the raw material of the paper's Fig. 6
bar charts and Fig. 7 scatter.

Run:  python examples/design_space_exploration.py
"""

from repro.explore import mg_flit_sweep


def main() -> None:
    for model in ("resnet18", "efficientnetb0"):
        print(f"\n{model} @ 224x224, generic mapping")
        print(f"{'MG':>4s}{'flit':>6s}{'TOPS':>8s}{'E mJ':>8s}"
              f"{'local%':>8s}{'compute%':>10s}{'noc%':>7s}")
        for pt in mg_flit_sweep(model, "generic", input_size=224):
            g = pt.report.grouped_energy_mj()
            tracked = g["local_mem"] + g["compute"] + g["noc"]
            print(
                f"{pt.mg_size:>4d}{pt.flit_bytes:>6d}{pt.tops:>8.2f}"
                f"{tracked:>8.2f}"
                f"{100 * g['local_mem'] / tracked:>8.1f}"
                f"{100 * g['compute'] / tracked:>10.1f}"
                f"{100 * g['noc'] / tracked:>7.1f}"
            )


if __name__ == "__main__":
    main()
