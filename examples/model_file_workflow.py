"""File-based workflow: model description in, evaluation report out.

Mirrors the paper's Fig. 2 interface: a DNN model description file (our
ONNX-like JSON, standing in for the trained ONNX models the paper
consumes) plus an architecture configuration file go in; compilation,
cycle-accurate simulation, functional validation and a detailed report
come out.

Run:  python examples/model_file_workflow.py
"""

import tempfile
from pathlib import Path

from repro import run_workflow
from repro.config import load_arch, save_arch, small_test_arch
from repro.graph import load_graph, save_graph
from repro.graph.models import tiny_cnn


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="cimflow_"))
    model_file = workdir / "tiny_cnn.json"
    arch_file = workdir / "arch.json"

    # --- produce the two input files (normally written by the user) -------
    save_graph(tiny_cnn(), model_file)
    save_arch(small_test_arch(), arch_file)
    print(f"model file: {model_file} ({model_file.stat().st_size} bytes)")
    print(f"arch file : {arch_file} ({arch_file.stat().st_size} bytes)")

    # --- the workflow: files in, report out --------------------------------
    graph = load_graph(model_file)
    arch = load_arch(arch_file)
    result = run_workflow(graph, arch=arch, strategy="dp")

    print(f"\n{graph.summary()}")
    print(f"validated: {result.validated}\n")
    print(result.report)


if __name__ == "__main__":
    main()
