"""Compare the three compilation strategies on the cycle simulator.

Reproduces the Fig. 5 experiment mechanics at micro scale, where the
cycle simulator runs in seconds and the capacity pressure that motivates
partitioning is real: a residual CNN on a 4-core chip with small macro
groups.  The generic mapping and the CIM-MLC-style opportunistic
duplication are the paper's baselines; the DP-based strategy is its
contribution.  (The paper-scale strategy sweep lives in
benchmarks/test_bench_fig5.py on the fast model.)

Run:  python examples/compiler_strategies.py
"""

from repro import run_workflow
from repro.config import small_test_arch


def main() -> None:
    arch = small_test_arch()
    print("tiny_resnet on a 4-core CIM chip (cycle simulator)\n")
    print(f"{'strategy':<14s}{'cycles':>12s}{'energy mJ':>11s}"
          f"{'TOPS':>7s}{'stages':>7s}{'dup':>5s}")
    baseline = None
    for strategy in ("generic", "duplication", "dp"):
        result = run_workflow("tiny_resnet", arch=arch, strategy=strategy)
        report = result.report
        plan = result.compiled.plan
        baseline = baseline or report.cycles
        print(
            f"{strategy:<14s}{report.cycles:>12,}{report.total_energy_mj:>11.3f}"
            f"{report.tops:>7.2f}{plan.num_stages:>7d}"
            f"{plan.max_replication:>5d}"
            f"   ({baseline / report.cycles:.2f}x vs generic, validated)"
        )


if __name__ == "__main__":
    main()
