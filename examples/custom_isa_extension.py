"""Extending the ISA with a custom instruction (Sec. III-B).

The CIMFlow ISA accepts new operations through its instruction description
template: declare a mnemonic, opcode, format and performance parameters,
and the assembler, binary encoder and simulator all pick it up.  Here we
add ``VEC_ABS`` (elementwise absolute value) with a functional handler,
assemble a small program that uses it, and run it on the simulator.

Run:  python examples/custom_isa_extension.py
"""

import numpy as np

from repro.config import small_test_arch
from repro.config.arch import GLOBAL_BASE
from repro.isa import (
    Category,
    Format,
    InstructionDescriptor,
    ISARegistry,
    Opcode,
    format_program,
    parse_program,
)
from repro.sim import ChipSimulator


def main() -> None:
    # 1. Describe the new instruction (performance parameters included).
    registry = ISARegistry()
    registry.register(InstructionDescriptor(
        mnemonic="VEC_ABS",
        opcode=int(Opcode.EXT0),
        category=Category.VECTOR,
        fmt=Format.VEC,
        operands=("rs", "rd", "re"),
        description="int8 [rd][i] = |[rs][i]| for re elements",
        latency=4,
        energy_pj=5.0,
    ))

    # 2. Functional behaviour for the simulator.
    def vec_abs(core, t):
        n = core.regs[t[4]]
        data = core.chip.memory.read(core.core_id, core.regs[t[1]], n)
        result = np.abs(data.astype(np.int16)).clip(0, 127).astype(np.int8)
        core.chip.memory.write(core.core_id, core.regs[t[3]], result)

    # 3. Assemble a program that stages data, applies VEC_ABS, writes back.
    # note SC_ADDI operand order: rt = rs + imm (destination second)
    program = parse_program(f"""
        SC_LUI  R1, {GLOBAL_BASE >> 16}   // R1 = global base
        SC_ADDI R0, R2, 0                 // R2 = local buffer address
        SC_ADDI R0, R3, 8                 // R3 = length
        MEM_CPY R1, R2, R3, 0             // global -> local
        SC_ADDI R0, R4, 64                // R4 = result buffer
        VEC_ABS R2, R4, R3                // the custom instruction
        SC_ADDIW R1, R5, 64               // R5 = global base + 64
        MEM_CPY R4, R5, R3, 0             // local -> global + 64
        HALT
    """, registry)
    print("assembled program:")
    print(format_program(program, with_pc=True))

    # 4. Simulate.
    image = np.zeros(256, dtype=np.int8)
    image[:8] = np.array([-5, 3, -128, 0, 7, -1, 100, -100], dtype=np.int8)
    sim = ChipSimulator(
        small_test_arch(), {0: program.finalize()},
        registry=registry,
        global_image=image.view(np.uint8),
        extension_handlers={"VEC_ABS": vec_abs},
    )
    report = sim.run()
    out = sim.memory.read_global(GLOBAL_BASE + 64, 8)
    print(f"\ninput : {list(image[:8])}")
    print(f"output: {list(out)}")
    print(f"cycles: {report.cycles}, energy: {report.total_energy_pj:.1f} pJ")


if __name__ == "__main__":
    main()
