"""Quickstart: the out-of-the-box CIMFlow workflow in a dozen lines.

Builds a small residual CNN, compiles it with the DP-based strategy for a
compact digital CIM chip, runs the cycle-accurate simulator, validates the
INT8 outputs bit-exactly against the golden NumPy model, and prints the
performance report.

Run:  python examples/quickstart.py
"""

from repro import run_workflow
from repro.config import small_test_arch


def main() -> None:
    result = run_workflow(
        "tiny_resnet",          # model-zoo name (or pass a ComputationGraph)
        arch=small_test_arch(),  # 4 cores, small macro groups
        strategy="dp",          # Algorithm 1: DP partitioning + duplication
    )

    plan = result.compiled.plan
    print(f"model     : {result.graph.summary()}")
    print(f"plan      : {plan.num_stages} stages, "
          f"max duplication x{plan.max_replication}")
    print(f"validated : {result.validated} (bit-exact vs golden model)")
    print()
    print(result.report)


if __name__ == "__main__":
    main()
