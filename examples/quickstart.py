"""Quickstart: deploy a model and serve it in a dozen lines.

Builds a small residual CNN, compiles it once for a compact digital CIM
chip with the DP-based strategy (a :class:`repro.Deployment` owns the
compiled model), runs one cycle-accurate inference with bit-exact golden
validation, then serves a 16-input stream offered at a fixed arrival
rate and prints the latency percentiles.

Run:  python examples/quickstart.py
"""

from repro import Deployment, FixedRate
from repro.config import small_test_arch


def main() -> None:
    deployment = Deployment(
        "tiny_resnet",           # model-zoo name (or a ComputationGraph)
        small_test_arch(),       # 4 cores, small macro groups
        strategy="dp",           # Algorithm 1: DP partitioning + duplication
    )

    # Classic latency mode: one input, Fig. 2 workflow.
    result = deployment.run()
    plan = deployment.compiled.plan
    print(f"model     : {deployment.graph.summary()}")
    print(f"plan      : {plan.num_stages} stages, "
          f"max duplication x{plan.max_replication}")
    print(f"validated : {result.validated} (bit-exact vs golden model)")
    print()
    print(result.report)
    print()

    # Serving mode: the same compiled model, continuous arrivals.
    report = deployment.submit(batch=16, arrivals=FixedRate(200_000))
    print(report)


if __name__ == "__main__":
    main()
