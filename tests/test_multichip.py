"""Multi-chip sharding: partitioning, transfer contract, equivalence.

The contract under test (``docs/ARCHITECTURE.md``, "Multi-chip
sharding"):

- a model that fits one chip produces **bit-identical** functional
  outputs when pipeline-sharded across 2 chips;
- a model too large for one chip's CIM capacity compiles and simulates
  on 2 and 4 chips with bit-exact golden validation;
- both execution engines (hot-block / interpreter) stay bit-identical
  per shard and in the aggregate report;
- every boundary tensor is exactly one explicit
  :class:`InterChipTransfer` with addresses resolvable in both chips'
  memory maps.
"""

import numpy as np
import pytest

from repro import (
    compile_model,
    compile_sharded,
    evaluate_fast,
    run_sweep,
    run_workflow,
    shard_graph,
    simulate,
    SweepSpec,
)
from repro.compiler.partition import ShardingSpec
from repro.config import InterChipConfig, small_test_arch
from repro.errors import CompileError, ConfigError
from repro.explore_cache import point_key
from repro.graph.builder import GraphBuilder
from repro.graph.models import get_model
from repro.graph.ops import OpKind
from repro.sim.multichip import pipeline_schedule


def over_capacity_model():
    """A CNN whose weights exceed the small test chip's CIM capacity.

    small_test_arch: 4 cores x 4 MGs x 2 macros x 256 B = 8 KiB of CIM
    storage; this model carries ~12 KiB of weights, so it cannot be
    resident on one chip simultaneously (the single-chip compiler must
    multi-stage it; the sharded compiler spreads it across chips).
    """
    b = GraphBuilder("over_capacity_cnn", seed=7)
    x = b.input((8, 8, 16))
    x = b.conv(x, 16, 3, 1, 1, name="conv1")
    x = b.relu(x, name="relu1")
    x = b.conv(x, 32, 3, 1, 1, name="conv2")
    x = b.relu(x, name="relu2")
    x = b.global_avgpool(x, name="gap")
    x = b.gemm(x, 128, name="fc1")
    x = b.relu(x, name="fc1_relu")
    x = b.gemm(x, 10, name="fc2")
    b.output(x)
    graph = b.build()
    assert graph.total_weight_bytes() > small_test_arch().chip.total_cim_capacity_bytes
    return graph


class TestShardingPlan:
    def test_balanced_cuts_partition_every_node_once(self, arch):
        graph = get_model("tiny_resnet", input_size=8, num_classes=10)
        plan = shard_graph(graph, 2)
        all_nodes = [i for s in plan.shards for i in s.node_indices]
        assert all_nodes == list(range(len(plan.cgraph)))
        assert len(plan.shards) == 2
        assert all(s.node_indices for s in plan.shards)

    def test_explicit_cuts_respected(self):
        graph = get_model("tiny_cnn", input_size=8, num_classes=10)
        plan = shard_graph(graph, 2, cuts=(1,))
        assert plan.cuts == (1,)
        assert plan.shards[0].node_indices == [0]

    def test_incoming_tensors_come_from_earlier_shards(self):
        graph = get_model("tiny_resnet", input_size=8, num_classes=10)
        plan = shard_graph(graph, 3)
        for shard in plan.shards:
            for tensor, src in shard.incoming.items():
                assert 0 <= src < shard.index
                assert tensor in plan.shards[src].outgoing

    def test_shard_graphs_are_valid_and_stub_inputs(self):
        graph = get_model("tiny_resnet", input_size=8, num_classes=10)
        plan = shard_graph(graph, 2)
        for shard in plan.shards:
            shard.graph.validate()
            stubs = {
                op.output for op in shard.graph.operators
                if op.kind is OpKind.INPUT
            }
            assert stubs == set(shard.incoming) | set(shard.external_inputs)

    def test_model_input_feeds_first_shard_output_leaves_last(self):
        graph = get_model("tiny_cnn", input_size=8, num_classes=10)
        plan = shard_graph(graph, 2)
        assert plan.shards[0].external_inputs == ["input_out"]
        assert plan.shards[-1].final_outputs == ["fc_out"]

    def test_too_many_chips_rejected(self):
        graph = get_model("tiny_mlp", num_classes=10)
        with pytest.raises(CompileError, match="cannot shard"):
            shard_graph(graph, 64)

    def test_nonpositive_chip_count_rejected(self):
        with pytest.raises(CompileError, match="chip count"):
            compile_model("tiny_cnn", small_test_arch(), "dp", chips=0,
                          input_size=8, num_classes=10)

    def test_bad_cut_counts_rejected(self):
        with pytest.raises(CompileError, match="interior cuts"):
            ShardingSpec(num_chips=3, cuts=(1,))
        with pytest.raises(CompileError, match="at least one chip"):
            ShardingSpec(num_chips=0)

    def test_out_of_range_cuts_rejected(self):
        graph = get_model("tiny_cnn", input_size=8, num_classes=10)
        with pytest.raises(CompileError):
            shard_graph(graph, 2, cuts=(0,))
        with pytest.raises(CompileError):
            shard_graph(graph, 3, cuts=(2, 2))


class TestTransferContract:
    def test_every_boundary_tensor_is_one_transfer(self, arch):
        graph = get_model("tiny_resnet", input_size=8, num_classes=10)
        model = compile_sharded(graph, arch, 2)
        expected = {
            (shard.incoming[t], shard.index, t)
            for shard in model.sharding.shards
            for t in shard.incoming
        }
        got = {(t.src_chip, t.dst_chip, t.tensor) for t in model.transfers}
        assert got == expected
        assert len(model.transfers) == len(expected)

    def test_transfers_are_ordered_and_addressed(self, arch):
        graph = get_model("tiny_resnet", input_size=8, num_classes=10)
        model = compile_sharded(graph, arch, 2)
        keys = [(t.src_chip, t.dst_chip, t.tensor) for t in model.transfers]
        assert keys == sorted(keys)
        for tr in model.transfers:
            assert tr.src_chip < tr.dst_chip
            assert tr.nbytes == graph.tensor(tr.tensor).size_bytes
            src_plan = model.chips[tr.src_chip].plan
            dst_plan = model.chips[tr.dst_chip].plan
            assert src_plan.tensor_address[tr.tensor] == tr.src_address
            assert dst_plan.tensor_address[tr.tensor] == tr.dst_address

    def test_single_chip_sharding_has_no_transfers(self, arch):
        graph = get_model("tiny_cnn", input_size=8, num_classes=10)
        model = compile_sharded(graph, arch, 1)
        assert model.num_chips == 1
        assert model.transfers == []

    def test_boundary_tensor_with_single_inshard_consumer_survives(self, arch):
        """A boundary tensor must not be fused away inside its shard.

        Regression: x -> conv1 -> T; relu(T); conv2(relu_out);
        add(conv2_out, T).  Cutting between relu and conv2 leaves T with
        one in-shard consumer (the fusable relu) in shard 0 while shard
        1 still needs T -- per-shard condensation used to fuse the relu
        into conv1, swallowing the marked boundary output and crashing
        address resolution with a KeyError.
        """
        b = GraphBuilder("residual_across_cut", seed=5)
        x = b.input((8, 8, 8))
        t = b.conv(x, 8, 3, 1, 1, name="conv1")
        y = b.relu(t, name="pre_relu")
        y = b.conv(y, 8, 3, 1, 1, name="conv2")
        y = b.add(y, t, name="skip_add")
        b.output(y)
        graph = b.build()

        model = compile_sharded(graph, arch, 2, cuts=(2,))
        tensors = {tr.tensor for tr in model.transfers}
        assert "conv1_out" in tensors
        result = simulate(model, validate=True)
        assert result.validated

    def test_infeasible_shard_names_the_chip(self):
        # 1-core chip: the 4-replica-minimum conv stages cannot map.
        arch = small_test_arch(num_cores=1)
        graph = over_capacity_model()
        with pytest.raises(CompileError, match=r"chip \d"):
            compile_sharded(graph, arch, 2)


class TestPipelineSchedule:
    LINK = InterChipConfig(
        bandwidth_bytes_per_cycle=8, latency_cycles=100, energy_pj_per_byte=1.0
    )

    def test_chain_timing(self):
        # chip1 starts after chip0's 80-byte transfer: 1000 + 10 + 100.
        starts, finishes, makespan = pipeline_schedule(
            [1000, 500], [(0, 1, 80)], self.LINK
        )
        assert starts == [0, 1110]
        assert finishes == [1000, 1610]
        assert makespan == 1610

    def test_same_link_transfers_serialise(self):
        starts, _, _ = pipeline_schedule(
            [1000, 1], [(0, 1, 80), (0, 1, 80)], self.LINK
        )
        # second message queues behind the first's 10 serialisation cycles
        assert starts[1] == 1000 + 10 + 10 + 100

    def test_no_transfers_means_no_stalls(self):
        starts, finishes, makespan = pipeline_schedule(
            [10, 20, 30], [], self.LINK
        )
        assert starts == [0, 0, 0]
        assert makespan == 30


class TestMultiChipEquivalence:
    def test_two_chip_outputs_bit_identical_to_single_chip(self, arch):
        one = run_workflow("tiny_resnet", arch=arch, strategy="dp",
                           input_size=8, num_classes=10)
        two = run_workflow("tiny_resnet", arch=arch, strategy="dp",
                           input_size=8, num_classes=10, chips=2)
        assert one.validated and two.validated
        assert set(one.outputs) == set(two.outputs)
        for name, expected in one.outputs.items():
            assert np.array_equal(two.outputs[name], expected)

    @pytest.mark.parametrize("chips", (2, 4))
    def test_over_capacity_model_validates_on_n_chips(self, arch, chips):
        graph = over_capacity_model()
        result = run_workflow(graph, arch=arch, strategy="dp", chips=chips)
        assert result.validated
        assert result.report.num_chips == chips
        assert result.report.cycles > 0
        assert result.report.interchip_bytes > 0

    def test_engines_bit_identical_per_shard_and_aggregate(self, arch):
        compiled = compile_model(
            "tiny_resnet", arch, "dp", chips=2,
            input_size=8, num_classes=10,
        )
        a = simulate(compiled, validate=True, engine="interp")
        b = simulate(compiled, validate=True, engine="block")
        for name in a.outputs:
            assert np.array_equal(a.outputs[name], b.outputs[name])
        ra, rb = a.report, b.report
        assert ra.cycles == rb.cycles
        assert ra.energy_breakdown_pj == rb.energy_breakdown_pj
        assert ra.chip_starts == rb.chip_starts
        for chip_a, chip_b in zip(ra.chip_reports, rb.chip_reports):
            assert chip_a.cycles == chip_b.cycles
            assert chip_a.instructions == chip_b.instructions
            assert chip_a.energy_breakdown_pj == chip_b.energy_breakdown_pj

    def test_pipeline_report_is_consistent(self, arch):
        result = run_workflow("tiny_resnet", arch=arch, strategy="dp",
                              input_size=8, num_classes=10, chips=2)
        report = result.report
        assert report.cycles == max(report.chip_finishes)
        assert report.macs == sum(r.macs for r in report.chip_reports)
        assert report.energy_breakdown_pj["interchip"] == pytest.approx(
            report.interchip_bytes * arch.interchip.energy_pj_per_byte
        )
        assert sum(report.grouped_energy_mj().values()) == pytest.approx(
            report.total_energy_mj
        )
        payload = report.to_dict()
        assert payload["num_chips"] == 2
        assert len(payload["chips"]) == 2


class TestFastModelAndSweepAxis:
    def test_evaluate_fast_sharded_point(self, arch):
        single = evaluate_fast("tiny_cnn", arch, "dp", 8, 10)
        sharded = evaluate_fast("tiny_cnn", arch, "dp", 8, 10, chips=2)
        assert sharded.chips == 2
        assert sharded.report.macs == single.report.macs
        assert sharded.report.cycles > 0
        assert "interchip" in sharded.report.energy_breakdown_pj
        assert sharded.to_dict()["chips"] == 2

    def test_chip_counts_is_a_sweep_axis(self, arch):
        spec = SweepSpec(
            models=("tiny_cnn",), strategies=("dp",), input_sizes=(8,),
            num_classes=10, base_arch=arch, chip_counts=(1, 2),
        )
        assert len(spec) == 2
        result = run_sweep(spec)
        assert [pt.chips for pt in result.points] == [1, 2]
        assert result.points[0].report.cycles != result.points[1].report.cycles

    def test_cache_key_distinguishes_chip_counts(self, arch):
        assert point_key("tiny_cnn", arch, "dp", 8, 10, None, 1) != \
            point_key("tiny_cnn", arch, "dp", 8, 10, None, 2)

    def test_sharded_points_round_trip_through_cache(self, arch, tmp_path):
        from repro.explore_cache import ResultCache

        spec = SweepSpec(
            models=("tiny_cnn",), strategies=("dp",), input_sizes=(8,),
            num_classes=10, base_arch=arch, chip_counts=(1, 2),
        )
        cache = ResultCache(tmp_path)
        first = run_sweep(spec, cache=cache)
        second = run_sweep(spec, cache=cache)
        assert second.stats.cache_hits == 2
        for a, b in zip(first.points, second.points):
            assert a.report == b.report
            assert a.chips == b.chips

    def test_invalid_chip_counts_rejected(self):
        with pytest.raises(ConfigError, match="chip counts"):
            SweepSpec(models=("tiny_cnn",), chip_counts=(0,))


class TestMultiChipCLI:
    def test_run_chips_flag(self, capsys):
        from repro.cli import main

        assert main([
            "run", "tiny_resnet", "--preset", "small", "--input-size", "8",
            "--chips", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "sharding" in out
        assert "validated : bit-exact vs golden model" in out
        assert "chips             : 2" in out

    def test_sweep_chips_axis_and_pareto_report(self, tmp_path, capsys):
        from repro.cli import main

        out_json = tmp_path / "sweep.json"
        assert main([
            "sweep", "--models", "tiny_cnn", "--strategies", "dp",
            "--input-sizes", "8", "--num-classes", "10", "--preset", "small",
            "--chips", "1,2", "--no-cache", "--quiet",
            "--json", str(out_json),
        ]) == 0
        capsys.readouterr()
        assert main(["report", str(out_json), "--pareto"]) == 0
        out = capsys.readouterr().out
        assert "Pareto front" in out
