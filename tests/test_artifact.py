"""Serialization battery for the compiled-artifact format.

The artifact is the shippable compile product (PR 6): these tests lock
down the byte-level container (round-trip stability, digest
determinism), the loaded model's behavioural equivalence to a fresh
compile in both fidelity tiers, backward compatibility against a golden
fixture checked into ``tests/data/``, and the failure envelope -- a
corrupted or mismatched artifact must always raise a typed
:class:`~repro.errors.ArtifactError`, never load silently wrong.
"""

import json
import random
from pathlib import Path

import pytest

from repro.artifact import (
    ARTIFACT_FORMAT_VERSION,
    MAGIC,
    inspect_artifact,
    load_artifact,
    save_artifact,
)
from repro.config import arch_fingerprint, default_arch, small_test_arch
from repro.errors import ArtifactError
from repro.serve import Deployment
from repro.workflow import compile_model

GOLDEN = Path(__file__).parent / "data" / "tiny_mlp_small_v1.artifact"


@pytest.fixture(scope="module")
def march():
    return small_test_arch()


@pytest.fixture(scope="module")
def one_chip(march):
    return compile_model("tiny_mlp", march, "dp", input_size=8, num_classes=10)


@pytest.fixture(scope="module")
def two_chip(march):
    return compile_model(
        "tiny_resnet", march, "dp", chips=2, input_size=8, num_classes=10
    )


@pytest.fixture(params=["one_chip", "two_chip"])
def compiled(request):
    return request.getfixturevalue(request.param)


class TestRoundTrip:
    def test_save_load_save_is_byte_identical(self, compiled, march, tmp_path):
        first = tmp_path / "first.artifact"
        second = tmp_path / "second.artifact"
        save_artifact(compiled, first)
        loaded = load_artifact(first, arch=march)
        save_artifact(loaded, second)
        assert first.read_bytes() == second.read_bytes()

    def test_digest_is_stable_across_saves(self, compiled, tmp_path):
        d1 = save_artifact(compiled, tmp_path / "a.artifact")
        d2 = save_artifact(compiled, tmp_path / "b.artifact")
        assert d1 == d2
        assert (tmp_path / "a.artifact").read_bytes() == (
            tmp_path / "b.artifact"
        ).read_bytes()

    def test_digest_matches_footer_and_inspect(self, one_chip, tmp_path):
        path = tmp_path / "m.artifact"
        digest = save_artifact(one_chip, path)
        blob = path.read_bytes()
        assert blob[:len(MAGIC)] == MAGIC
        assert blob[-32:].hex() == digest
        assert inspect_artifact(path)["digest"] == digest

    def test_manifest_records_format_and_arch(self, two_chip, march, tmp_path):
        path = tmp_path / "m.artifact"
        save_artifact(two_chip, path)
        info = inspect_artifact(path)
        assert info["format_version"] == ARTIFACT_FORMAT_VERSION
        assert info["arch_fingerprint"] == arch_fingerprint(march)
        assert info["model"]["chips"] == 2
        assert info["transfers"] == len(two_chip.transfers)


class TestSimulationEquivalence:
    """Loaded artifact == fresh compile, bit for bit, in both tiers."""

    @pytest.mark.parametrize("tier", ["cyclesim", "fast"])
    def test_loaded_matches_fresh(self, compiled, march, tmp_path, tier):
        path = tmp_path / "m.artifact"
        save_artifact(compiled, path)
        fresh = Deployment(compiled, tier=tier).submit(batch=3, seed=1)
        loaded = Deployment.load(path, arch=march, tier=tier).submit(
            batch=3, seed=1
        )
        assert loaded.to_dict() == fresh.to_dict()

    def test_deployment_load_classmethod(self, one_chip, march, tmp_path):
        path = tmp_path / "m.artifact"
        save_artifact(one_chip, path)
        dep = Deployment.load(path, arch=march)
        result = dep.run(seed=0)
        assert result.validated


class TestGoldenFixture:
    """The checked-in v1 fixture must keep loading (format compat)."""

    def test_fixture_exists(self):
        assert GOLDEN.is_file(), "golden artifact fixture missing"

    def test_fixture_loads_and_inspects(self):
        info = inspect_artifact(GOLDEN)
        assert info["format_version"] == 1
        assert info["model"]["chips"] == 1
        assert info["arch_fingerprint"] == arch_fingerprint(small_test_arch())

    def test_fixture_simulates_validated(self):
        dep = Deployment.load(GOLDEN, arch=small_test_arch())
        result = dep.run(seed=0)
        assert result.validated

    def test_fixture_roundtrips_byte_identically(self, tmp_path):
        loaded = load_artifact(GOLDEN)
        resaved = tmp_path / "resaved.artifact"
        save_artifact(loaded, resaved)
        assert resaved.read_bytes() == GOLDEN.read_bytes()


class TestArchFingerprintMismatch:
    def test_mismatch_names_both_fingerprints(self, one_chip, tmp_path):
        path = tmp_path / "m.artifact"
        save_artifact(one_chip, path)
        session = default_arch()
        with pytest.raises(ArtifactError) as excinfo:
            load_artifact(path, arch=session)
        message = str(excinfo.value)
        assert arch_fingerprint(one_chip.arch) in message
        assert arch_fingerprint(session) in message

    def test_matching_arch_is_accepted(self, one_chip, march, tmp_path):
        path = tmp_path / "m.artifact"
        save_artifact(one_chip, path)
        assert load_artifact(path, arch=march) is not None

    def test_no_arch_uses_embedded_one(self, one_chip, march, tmp_path):
        path = tmp_path / "m.artifact"
        save_artifact(one_chip, path)
        loaded = load_artifact(path)
        assert arch_fingerprint(loaded.arch) == arch_fingerprint(march)


class TestCorruptionFuzzer:
    """Seeded fuzz: any truncation or bit flip must raise ArtifactError."""

    TRIALS = 48

    @pytest.fixture(scope="class")
    def blob(self, tmp_path_factory):
        arch = small_test_arch()
        compiled = compile_model(
            "tiny_mlp", arch, "dp", input_size=8, num_classes=10
        )
        path = tmp_path_factory.mktemp("fuzz") / "m.artifact"
        save_artifact(compiled, path)
        return path.read_bytes()

    def test_fuzz_never_loads_silently(self, blob, tmp_path):
        rng = random.Random(1234)
        target = tmp_path / "corrupt.artifact"
        for trial in range(self.TRIALS):
            data = bytearray(blob)
            if trial % 2 == 0:
                # Truncate at a random point (including an empty file).
                cut = rng.randrange(0, len(data))
                data = data[:cut]
            else:
                # Flip one random bit anywhere in the container.
                pos = rng.randrange(0, len(data))
                data[pos] ^= 1 << rng.randrange(8)
            target.write_bytes(bytes(data))
            with pytest.raises(ArtifactError):
                load_artifact(target)

    def test_bad_magic_is_typed(self, blob, tmp_path):
        data = bytearray(blob)
        data[:4] = b"NOPE"
        target = tmp_path / "magic.artifact"
        target.write_bytes(bytes(data))
        with pytest.raises(ArtifactError, match="magic"):
            load_artifact(target)

    def test_unsupported_version_is_typed(self, blob, tmp_path):
        # Rewrite the version field *and* recompute the digest so the
        # version check itself (not the digest) rejects the file.
        import hashlib

        data = bytearray(blob[:-32])
        data[len(MAGIC):len(MAGIC) + 4] = (99).to_bytes(4, "little")
        data += hashlib.sha256(bytes(data)).digest()
        target = tmp_path / "version.artifact"
        target.write_bytes(bytes(data))
        with pytest.raises(ArtifactError, match="version"):
            load_artifact(target)

    def test_missing_file_is_typed(self, tmp_path):
        with pytest.raises(ArtifactError):
            load_artifact(tmp_path / "does_not_exist.artifact")

    def test_non_artifact_file_is_typed(self, tmp_path):
        target = tmp_path / "notes.artifact"
        target.write_text(json.dumps({"not": "an artifact"}))
        with pytest.raises(ArtifactError):
            load_artifact(target)
