"""Golden NoC-timeline regression battery.

A multipass weight-streaming conv workload is run with per-link
reservation capture (``noc.timeline``) and diffed field-by-field against
a fixture checked into ``tests/data/``.  The timeline is the
finest-grained observable of the NoC model -- every message's head
cycle, link-hold window, size and endpoints on every directed link of
its route -- so any change to routing, serialization, reservation
arithmetic or the iteration-major replay that alters link-level timing
fails here with a precise pointer at the first diverging field.

Capturing a timeline disables batched NoC replay by design (the replay
elides per-link events); a companion test asserts the batched run still
lands on the exact aggregate report of the certified schedule, tying the
closed-form replay to the golden timeline.

Regenerate the fixture after an *intentional* NoC-model change with::

    REPRO_REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest \
        tests/test_noc_timeline.py -q
"""

import json
import os
from pathlib import Path

import pytest

from repro.config import small_test_arch
from repro.sim.chip import ChipSimulator
from repro.workflow import compile_model

GOLDEN = Path(__file__).parent / "data" / "noc_timeline_weight_stream_v1.json"

#: The captured workload: two multipass conv branches on adjacent cores,
#: each streaming weight tiles from the global-memory port every pass.
WORKLOAD = dict(branches=2, in_channels=64, width=4, kernel=4)


def _link_key(link) -> str:
    return ",".join(str(x) for x in link) if link else "port"


@pytest.fixture(scope="module")
def compiled():
    return compile_model(
        "weight_stream", small_test_arch(), "generic", **WORKLOAD
    )


def _capture(compiled, engine):
    sim = ChipSimulator.from_compiled(compiled, engine=engine)
    sim.noc.timeline = {}
    report = sim.run()
    links = {
        _link_key(link): [list(rec) for rec in records]
        for link, records in sim.noc.timeline.items()
    }
    return links, report


def _payload(compiled):
    links, report = _capture(compiled, "block")
    return {
        "workload": dict(WORKLOAD, model="weight_stream",
                         arch="small_test_arch", strategy="generic"),
        "record_fields": ["head_cycle", "free_until", "nbytes", "src", "dst"],
        "links": links,
        "aggregates": {
            "cycles": report.cycles,
            "noc_bytes": report.noc_bytes,
            "noc_byte_hops": report.noc_byte_hops,
        },
    }


def test_golden_timeline_fixture_exists(compiled):
    if os.environ.get("REPRO_REGEN_GOLDEN"):
        GOLDEN.write_text(json.dumps(_payload(compiled), indent=1) + "\n")
    assert GOLDEN.exists(), (
        f"missing golden fixture {GOLDEN}; regenerate with "
        f"REPRO_REGEN_GOLDEN=1"
    )


def test_timeline_matches_golden_field_by_field(compiled):
    """Every link, every record, every field against the fixture."""
    golden = json.loads(GOLDEN.read_text())
    fields = golden["record_fields"]
    links, _ = _capture(compiled, "block")
    assert sorted(links) == sorted(golden["links"]), (
        f"link set diverged: got {sorted(links)}, "
        f"golden {sorted(golden['links'])}"
    )
    for key in sorted(golden["links"]):
        want = golden["links"][key]
        got = links[key]
        assert len(got) == len(want), (
            f"link {key}: {len(got)} reservation records, "
            f"golden has {len(want)}"
        )
        for i, (g, w) in enumerate(zip(got, want)):
            for f, gv, wv in zip(fields, g, w):
                assert gv == wv, (
                    f"link {key} record {i} field {f!r}: "
                    f"got {gv}, golden {wv}"
                )


def test_interpreter_timeline_identical(compiled):
    """Both engines must emit the same per-link event stream."""
    links_b, _ = _capture(compiled, "block")
    links_i, _ = _capture(compiled, "interp")
    assert links_b == links_i


def test_batched_replay_matches_certified_aggregates(compiled):
    """The batched run (timeline off, NoC replay active) must land on
    the exact aggregate counters of the golden schedule."""
    from repro.sim import blockengine as be

    golden = json.loads(GOLDEN.read_text())
    be.reset_stats()
    report = ChipSimulator.from_compiled(compiled, engine="block").run()
    assert be.ENGINE_STATS["noc_batch_successes"] > 0, (
        "the multipass workload no longer batches its NoC windows"
    )
    agg = golden["aggregates"]
    assert report.cycles == agg["cycles"]
    assert report.noc_bytes == agg["noc_bytes"]
    assert report.noc_byte_hops == agg["noc_byte_hops"]
