"""The serving API: Deployment sessions + continuous-arrival streaming.

The contract under test (``docs/ARCHITECTURE.md``, "Serving sessions"):

- **one queueing law**: ``start[i][k] = max(release_i if k == 0,
  finish[i-1][k], inbound arrival)``; with all-zero releases the
  schedule is bit-identical to the PR-4 batched schedule, so batched
  mode is the ``BackToBack`` special case;
- **session state**: the compiled model (programs + weights) persists
  across submissions; chip state does not -- per-input outputs stay
  bit-identical to independent runs under any arrival process;
- **both fidelity tiers share the law**: the cyclesim and fast tiers
  price the same schedule over their own per-shard occupancies, so
  below the saturation rate p99 latency is flat in the batch size and
  above it latency grows without bound -- in both tiers;
- queueing edge cases: empty trace, single input, arrivals after
  pipeline drain, ties between release and ready cycles.
"""

import numpy as np
import pytest

from repro import (
    BackToBack,
    Deployment,
    FixedInterval,
    FixedRate,
    PoissonArrivals,
    TraceArrivals,
    compile_model,
    serve_arrivals,
)
from repro.config import InterChipConfig
from repro.errors import ConfigError
from repro.serve import latency_percentile
from repro.sim.fastmodel import analyze_plan, stream_batched
from repro.sim.multichip import (
    steady_state_interval,
    streaming_schedule,
)
from repro.workflow import _simulate_impl


def _deploy(arch, chips=1, tier="cyclesim", model="tiny_resnet"):
    return Deployment(
        model, arch, chips=chips, tier=tier, input_size=8, num_classes=10
    )


# ---------------------------------------------------------------------------
# Arrival processes
# ---------------------------------------------------------------------------

class TestArrivalProcesses:
    def test_back_to_back_is_all_zero(self):
        assert BackToBack().release_cycles(4, 2.0) == [0, 0, 0, 0]

    def test_fixed_interval(self):
        assert FixedInterval(100).release_cycles(3, 2.0) == [0, 100, 200]

    def test_fixed_rate_converts_to_cycles(self):
        # 1e6 inf/s at 2 ns/cycle -> 500 cycles between arrivals.
        assert FixedRate(1e6).release_cycles(3, 2.0) == [0, 500, 1000]

    def test_poisson_is_seed_reproducible(self):
        a = PoissonArrivals(1e6, seed=42).release_cycles(8, 2.0)
        b = PoissonArrivals(1e6, seed=42).release_cycles(8, 2.0)
        c = PoissonArrivals(1e6, seed=43).release_cycles(8, 2.0)
        assert a == b
        assert a != c
        assert all(x >= 0 for x in a)
        assert a == sorted(a)

    def test_trace_length_must_match(self):
        with pytest.raises(ConfigError, match="trace has 2 arrivals"):
            TraceArrivals([0, 5]).release_cycles(3, 2.0)

    def test_invalid_processes_rejected(self):
        with pytest.raises(ConfigError, match="rate"):
            FixedRate(0)
        with pytest.raises(ConfigError, match="rate"):
            PoissonArrivals(-1.0, seed=0)
        with pytest.raises(ConfigError, match="interval"):
            FixedInterval(-1)
        with pytest.raises(ConfigError, match=">= 0"):
            TraceArrivals([0, -3])

    def test_latency_percentile_nearest_rank(self):
        lat = [10, 20, 30, 40, 50, 60, 70, 80, 90, 100]
        assert latency_percentile(lat, 50) == 50
        assert latency_percentile(lat, 95) == 100
        assert latency_percentile(lat, 99) == 100
        assert latency_percentile([7], 99) == 7
        assert latency_percentile([], 99) == 0

    def test_latency_percentile_rejects_out_of_range_pct(self):
        for pct in (0, -3, 150, 100.001):
            with pytest.raises(ConfigError, match="percentile"):
                latency_percentile([10, 20], pct)

    def test_latency_percentile_boundary_ranks(self):
        # n=1: every valid percentile is the single element.
        assert latency_percentile([42], 0.5) == 42
        assert latency_percentile([42], 100) == 42
        # n=2: nearest-rank flips between the elements at pct 50.
        assert latency_percentile([10, 20], 50) == 10
        assert latency_percentile([10, 20], 51) == 20
        assert latency_percentile([10, 20], 100) == 20

    def test_trace_must_be_non_decreasing(self):
        with pytest.raises(ConfigError, match="non-decreasing"):
            TraceArrivals([100, 50])
        # Equal (tied) arrivals are a legal burst.
        assert TraceArrivals([0, 50, 50, 90]).release_cycles(4, 1.0) == [
            0, 50, 50, 90,
        ]


# ---------------------------------------------------------------------------
# The generalised schedule (shared by both tiers)
# ---------------------------------------------------------------------------

class TestReleaseSchedule:
    LINK = InterChipConfig(
        bandwidth_bytes_per_cycle=8, latency_cycles=100, energy_pj_per_byte=1.0
    )

    def test_zero_releases_bit_identical_to_batched(self):
        for cycles, transfers in (
            ([1000, 500], [(0, 1, 80)]),
            ([300, 900, 200], [(0, 1, 256), (1, 2, 64)]),
            ([750], []),
        ):
            batched = streaming_schedule([cycles] * 4, transfers, self.LINK)
            served = streaming_schedule(
                [cycles] * 4, transfers, self.LINK, [0, 0, 0, 0]
            )
            assert served == batched

    def test_release_gates_entry_to_first_chip(self):
        starts, finishes, input_finishes, makespan = streaming_schedule(
            [[100]] * 2, [], self.LINK, [0, 400]
        )
        # Input 1 arrives long after input 0 drained: no queueing.
        assert starts[1][0] == 400
        assert input_finishes == [100, 500]
        assert makespan == 500

    def test_tie_between_release_and_ready_cycle(self):
        # Input 1 released exactly when chip 0 frees up: both
        # constraints bind at once, service starts with zero queue.
        starts, _, input_finishes, _ = streaming_schedule(
            [[100]] * 2, [], self.LINK, [0, 100]
        )
        assert starts[1][0] == 100
        assert input_finishes == [100, 200]
        # One cycle later in the release: still no queue, shifted start.
        starts, _, _, _ = streaming_schedule(
            [[100]] * 2, [], self.LINK, [0, 101]
        )
        assert starts[1][0] == 101
        # One cycle earlier: the pipeline is still busy, so it queues.
        starts, _, _, _ = streaming_schedule(
            [[100]] * 2, [], self.LINK, [0, 99]
        )
        assert starts[1][0] == 100

    def test_release_count_must_match_batch(self):
        from repro.errors import SimulationError

        with pytest.raises(SimulationError, match="release cycles"):
            streaming_schedule([[10]] * 2, [], self.LINK, [0])
        with pytest.raises(SimulationError, match=">= 0"):
            streaming_schedule([[10]], [], self.LINK, [-1])


# ---------------------------------------------------------------------------
# Deployment sessions (cyclesim tier)
# ---------------------------------------------------------------------------

class TestDeploymentSessions:
    def test_all_zero_trace_reproduces_batched_streaming(self, arch):
        """Acceptance: run_trace([0]*B) == PR-4 batched makespan and
        bit-identical outputs."""
        deployment = _deploy(arch, chips=2)
        compiled = compile_model(
            "tiny_resnet", arch, "dp", chips=2, input_size=8, num_classes=10
        )
        legacy = _simulate_impl(compiled, None, True, 0, None, 4)
        served = deployment.run_trace([0, 0, 0, 0])
        assert served.makespan_cycles == legacy.report.cycles
        assert served.input_finishes == legacy.report.input_finishes
        assert served.stream_report.to_dict() == legacy.report.to_dict()
        for i in range(4):
            for name in legacy.per_input_outputs[i]:
                assert np.array_equal(
                    served.per_input_outputs[i][name],
                    legacy.per_input_outputs[i][name],
                )

    def test_outputs_isolated_under_any_arrival_process(self, arch):
        """Weights persist across submissions; activations do not --
        outputs are bit-identical to independent runs regardless of
        arrival timing."""
        deployment = _deploy(arch, chips=2)
        served = deployment.submit(
            batch=3, arrivals=PoissonArrivals(1e5, seed=3)
        )
        assert served.validated
        for i in range(3):
            single = deployment.run(seed=i)
            for name, expected in single.outputs.items():
                assert np.array_equal(
                    served.per_input_outputs[i][name], expected
                )

    def test_compile_once_submit_many(self, arch):
        deployment = _deploy(arch, chips=2)
        first = deployment.submit(batch=2)
        second = deployment.submit(batch=2)
        assert first.makespan_cycles == second.makespan_cycles
        # and the deployment adopts an existing compiled model as-is
        compiled = compile_model(
            "tiny_resnet", arch, "dp", chips=2, input_size=8, num_classes=10
        )
        adopted = Deployment(compiled)
        assert adopted.num_chips == 2
        assert adopted.submit(batch=2).makespan_cycles == first.makespan_cycles
        with pytest.raises(ConfigError, match="compiled model"):
            Deployment(compiled, arch)
        # compile keywords cannot silently contradict an adopted model
        with pytest.raises(ConfigError, match="compile keywords"):
            Deployment(compiled, chips=4)
        with pytest.raises(ConfigError, match="compile keywords"):
            Deployment(compiled, strategy="generic")
        with pytest.raises(ConfigError, match="compile keywords"):
            Deployment(compiled, input_size=16)

    def test_empty_trace_yields_empty_report(self, arch):
        report = _deploy(arch, chips=2).run_trace([])
        assert report.batch == 0
        assert report.makespan_cycles == 0
        assert report.latency_cycles == []
        assert report.p99_latency_cycles == 0
        assert report.throughput_inf_per_s == 0.0
        assert report.per_input_outputs == []

    def test_single_input_degenerates_to_latency_mode(self, arch):
        deployment = _deploy(arch, chips=2)
        single = deployment.run()
        served = deployment.submit(batch=1)
        assert served.batch == 1
        assert served.makespan_cycles == single.report.cycles
        assert served.latency_cycles == [single.report.cycles]
        assert served.p50_latency_cycles == served.p99_latency_cycles \
            == single.report.cycles
        assert served.queue_cycles == [0]

    def test_arrival_after_pipeline_drain(self, arch):
        deployment = _deploy(arch, chips=2)
        single = deployment.run().report.cycles
        served = deployment.run_trace([0, 3 * single])
        # The second input finds an idle pipeline: no queueing, same
        # latency as the first, makespan = its release + one service.
        assert served.queue_cycles == [0, 0]
        assert served.latency_cycles == [single, single]
        assert served.makespan_cycles == 3 * single + single

    def test_queueing_metrics_under_overload(self, arch):
        deployment = _deploy(arch, chips=2)
        interval = deployment.submit(batch=1).steady_interval_cycles
        served = deployment.submit(
            batch=4, arrivals=FixedInterval(max(1, interval // 4))
        )
        assert served.queue_cycles[0] == 0
        # Arrivals outpace the bottleneck: the queue builds monotonically.
        assert all(
            b >= a for a, b in zip(served.queue_cycles, served.queue_cycles[1:])
        )
        assert served.queue_cycles[-1] > 0
        assert max(served.shard_utilization) <= 1.0
        payload = served.to_dict()
        assert payload["queue_cycles"] == served.queue_cycles
        assert payload["p99_latency_cycles"] == served.p99_latency_cycles

    def test_run_matches_legacy_single_input(self, arch):
        compiled = compile_model(
            "tiny_cnn", arch, "dp", input_size=8, num_classes=10
        )
        legacy = _simulate_impl(compiled, None, True, 0, None, 1)
        result = Deployment(compiled).run()
        assert result.report.cycles == legacy.report.cycles
        for name in legacy.outputs:
            assert np.array_equal(result.outputs[name], legacy.outputs[name])

    def test_invalid_submissions_rejected(self, arch):
        deployment = _deploy(arch)
        with pytest.raises(ConfigError, match="batch"):
            deployment.submit(batch=0)
        with pytest.raises(ConfigError, match="trace has"):
            deployment.submit(batch=3, arrivals=TraceArrivals([0, 1]))
        with pytest.raises(ConfigError, match="tier"):
            Deployment("tiny_cnn", arch, tier="magic",
                       input_size=8, num_classes=10)
        with pytest.raises(ConfigError, match="cycle-level"):
            _deploy(arch, tier="fast").run()


# ---------------------------------------------------------------------------
# Latency percentiles vs offered load (the serving question, both tiers)
# ---------------------------------------------------------------------------

class TestLatencyUnderLoad:
    @pytest.mark.parametrize("tier", ("cyclesim", "fast"))
    def test_p99_flat_below_saturation_grows_above(self, arch, tier):
        """Acceptance: below the bottleneck interval p99 stays flat as B
        grows; above it, latency grows without bound -- in both tiers."""
        deployment = _deploy(arch, chips=2, tier=tier)
        interval = deployment.submit(batch=1).steady_interval_cycles
        assert interval > 0

        below_small = deployment.submit(
            batch=3, arrivals=FixedInterval(2 * interval)
        )
        below_large = deployment.submit(
            batch=9, arrivals=FixedInterval(2 * interval)
        )
        assert below_small.p99_latency_cycles == below_large.p99_latency_cycles

        above_small = deployment.submit(
            batch=3, arrivals=FixedInterval(max(1, interval // 2))
        )
        above_large = deployment.submit(
            batch=9, arrivals=FixedInterval(max(1, interval // 2))
        )
        assert above_large.p99_latency_cycles > above_small.p99_latency_cycles
        # ... and the queue keeps growing input over input (unbounded).
        lat = above_large.latency_cycles
        assert lat[-1] > lat[len(lat) // 2] > lat[0]

    @pytest.mark.parametrize("tier", ("cyclesim", "fast"))
    def test_interval_is_closed_form_bottleneck(self, arch, tier):
        """Both tiers report the same closed-form law over their own
        shard occupancies -- the tier-agreement half of the contract."""
        deployment = _deploy(arch, chips=2, tier=tier)
        report = deployment.submit(batch=4)
        assert report.steady_interval_cycles == steady_state_interval(
            report.shard_cycles, deployment._transfer_edges(), arch.interchip
        )
        # At saturation (back-to-back), completions pace at the interval.
        diffs = [
            b - a
            for a, b in zip(report.input_finishes, report.input_finishes[1:])
        ]
        assert diffs == [report.steady_interval_cycles] * 3


# ---------------------------------------------------------------------------
# Fast-model mirror (serve_arrivals)
# ---------------------------------------------------------------------------

class TestFastModelServe:
    def test_zero_releases_match_stream_batched(self, arch):
        compiled = compile_model(
            "tiny_cnn", arch, "dp", input_size=8, num_classes=10
        )
        base = analyze_plan(compiled.plan)
        batched = stream_batched(base, 5)
        served = serve_arrivals(base, [0] * 5, arch.interchip)
        assert served.cycles == batched.cycles
        assert served.energy_breakdown_pj == batched.energy_breakdown_pj
        assert served.macs == batched.macs
        assert served.batch == 5

    def test_percentiles_populate_and_round_trip(self, arch):
        from repro.sim.fastmodel import FastReport

        compiled = compile_model(
            "tiny_cnn", arch, "dp", input_size=8, num_classes=10
        )
        base = analyze_plan(compiled.plan)
        served = serve_arrivals(
            base, [0, 10, 10_000_000], arch.interchip,
            arrival_rate_inf_s=123.0,
        )
        assert served.p50_latency_cycles == base.cycles
        assert served.p99_latency_cycles == 2 * base.cycles - 10
        assert served.arrival_rate_inf_s == 123.0
        assert FastReport.from_dict(served.to_dict()) == served

    def test_fast_tier_inputs_set_batch_implicitly(self, arch):
        deployment = _deploy(arch, chips=2, tier="fast")
        shape = deployment.graph.tensor(
            deployment.graph.input_operators[0].output
        ).shape
        inputs = [np.zeros(shape, np.int8) for _ in range(3)]
        served = deployment.submit(inputs)
        assert served.batch == 3
        assert served.makespan_cycles == \
            deployment.submit(batch=3).makespan_cycles
        with pytest.raises(ConfigError, match="shape"):
            deployment.submit([np.zeros((2, 2), np.int8)])

    def test_empty_releases_and_bad_input(self, arch):
        compiled = compile_model(
            "tiny_cnn", arch, "dp", input_size=8, num_classes=10
        )
        base = analyze_plan(compiled.plan)
        empty = serve_arrivals(base, [], arch.interchip)
        assert empty.batch == 0 and empty.cycles == 0
        with pytest.raises(ConfigError, match="single-input"):
            serve_arrivals(stream_batched(base, 2), [0, 0], arch.interchip)


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

class TestServeCLI:
    def test_serve_rate(self, capsys):
        from repro.cli import main

        assert main([
            "serve", "tiny_resnet", "--preset", "small", "--input-size", "8",
            "--chips", "2", "--batch", "3", "--rate", "200000",
        ]) == 0
        out = capsys.readouterr().out
        assert "latency p99" in out
        assert "shard utilization" in out
        assert "validated : bit-exact vs golden model" in out

    def test_serve_trace_and_json(self, tmp_path, capsys):
        from repro.cli import main

        trace = tmp_path / "trace.txt"
        trace.write_text("0 500 9000\n")
        out_json = tmp_path / "serve.json"
        assert main([
            "serve", "tiny_cnn", "--preset", "small", "--input-size", "8",
            "--trace", str(trace), "--json", str(out_json),
        ]) == 0
        import json

        payload = json.loads(out_json.read_text())
        assert payload["report"]["batch"] == 3
        assert payload["report"]["releases"] == [0, 500, 9000]
        assert "p99_latency_cycles" in payload["report"]

    def test_serve_fast_tier(self, capsys):
        from repro.cli import main

        assert main([
            "serve", "tiny_resnet", "--preset", "small", "--input-size", "8",
            "--chips", "2", "--batch", "4", "--tier", "fast",
            "--interval", "1000",
        ]) == 0
        out = capsys.readouterr().out
        assert "tier              : fast" in out
        assert "validated" not in out
