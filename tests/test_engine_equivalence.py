"""Engine equivalence: the hot-block engine vs the legacy interpreter.

The hot-block execution engine (:mod:`repro.sim.blockengine`) promises
**bit-identical** results to the per-instruction interpreter: the same
``SimulationReport`` (cycles, energy breakdown, utilization, NoC
counters, instruction counts) and the same functional outputs / memory
contents for every workload.  These tests enforce that contract on every
tier-1 workload class plus the scheduler/engine edge cases (deadlock
reporting, mis-sized RECV, barrier release ordering, runaway detection,
extension instructions, batched-loop replay).
"""

import os

import numpy as np
import pytest

from repro import compile_model, simulate
from repro.config import small_test_arch
from repro.config.arch import GLOBAL_BASE
from repro.errors import ConfigError, SimulationError
from repro.isa import (
    Category,
    Format,
    InstructionDescriptor,
    ISARegistry,
    Opcode,
    ProgramBuilder,
    SReg,
)
from repro.sim.chip import ChipSimulator, default_engine

TINY_MODELS = ("tiny_mlp", "tiny_cnn", "tiny_resnet")
STRATEGIES = ("generic", "duplication", "dp")


def _report_fields(report):
    return {
        "cycles": report.cycles,
        "instructions": report.instructions,
        "macs": report.macs,
        "energy_breakdown_pj": report.energy_breakdown_pj,
        "utilization": report.utilization,
        "noc_bytes": report.noc_bytes,
        "noc_byte_hops": report.noc_byte_hops,
    }


def _run_both(programs, arch=None, image=None, registry=None, handlers=None):
    """Run a hand-written program set on both engines; return the sims."""
    sims = {}
    for engine in ("interp", "block"):
        sim = ChipSimulator(
            arch or small_test_arch(),
            programs,
            registry=registry,
            global_image=None if image is None else image.copy(),
            extension_handlers=handlers,
            engine=engine,
        )
        sim.report = sim.run()
        sims[engine] = sim
    return sims["interp"], sims["block"]


def _assert_equal_state(interp, block):
    assert _report_fields(interp.report) == _report_fields(block.report)
    for cid in range(len(interp.cores)):
        assert np.array_equal(
            interp.memory.locals[cid], block.memory.locals[cid]
        ), f"core {cid} local memory diverged"
        assert interp.cores[cid].regs == block.cores[cid].regs
        assert interp.cores[cid].clock == block.cores[cid].clock
    assert np.array_equal(interp.memory.global_mem, block.memory.global_mem)


class TestModelEquivalence:
    @pytest.mark.parametrize("model", TINY_MODELS)
    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_tiny_models_bit_identical(self, model, strategy, arch):
        compiled = compile_model(model, arch, strategy)
        a = simulate(compiled, validate=True, engine="interp")
        b = simulate(compiled, validate=True, engine="block")
        assert _report_fields(a.report) == _report_fields(b.report)
        for name in compiled.graph.outputs:
            assert np.array_equal(a.outputs[name], b.outputs[name])

    @pytest.mark.parametrize(
        "model,input_size",
        [("resnet18", 16), ("mobilenetv2", 16)],
    )
    def test_paper_models_bit_identical(self, model, input_size, table1_arch):
        compiled = compile_model(
            model, table1_arch, "generic",
            input_size=input_size, num_classes=10,
        )
        a = simulate(compiled, validate=True, engine="interp")
        b = simulate(compiled, validate=True, engine="block")
        assert _report_fields(a.report) == _report_fields(b.report)
        for name in compiled.graph.outputs:
            assert np.array_equal(a.outputs[name], b.outputs[name])


def _fuzz_graph(seed: int):
    """A small random-but-valid CNN, fully determined by ``seed``.

    Random depth, channel widths, kernel sizes, pooling and residual
    blocks over an 8x8 input, closed with the standard
    global-avgpool/classifier tail so every graph golden-validates.
    """
    from repro.graph.builder import GraphBuilder

    rng = np.random.default_rng(10_000 + seed)
    b = GraphBuilder(f"fuzz_{seed}", seed=int(rng.integers(1 << 30)))
    channels = int(rng.choice([4, 8]))
    size = 8
    x = b.input((size, size, channels))
    for i in range(int(rng.integers(2, 5))):
        kind = rng.choice(["conv", "relu", "pool", "residual"])
        if kind == "conv":
            channels = int(rng.choice([4, 8]))
            kernel = int(rng.choice([1, 3]))
            x = b.conv(x, channels, kernel, 1, kernel // 2, name=f"conv{i}")
        elif kind == "relu":
            x = b.relu(x, name=f"relu{i}")
        elif kind == "pool" and size >= 4:
            x = b.maxpool(x, 2, 2, name=f"pool{i}")
            size //= 2
        else:
            skip = x
            x = b.conv(x, channels, 3, 1, 1, name=f"res{i}_conv")
            x = b.relu(x, name=f"res{i}_relu")
            x = b.add(x, skip, name=f"res{i}_add")
    x = b.global_avgpool(x, name="gap")
    x = b.gemm(x, int(rng.choice([5, 10])), name="fc")
    b.output(x)
    return b.build(), rng


class TestDifferentialFuzz:
    """Seeded differential fuzzing: random graphs/configs, both engines.

    Each seed deterministically generates a small random CNN plus a
    random-but-valid architecture/strategy combination, then demands the
    hot-block engine and the legacy interpreter produce bit-identical
    reports and outputs.  This sweeps compiler/engine interactions the
    hand-picked models miss (odd channel mixes, kernel-1 convolutions,
    pool/residual placements) while staying fully reproducible.
    """

    @pytest.mark.parametrize("seed", range(6))
    def test_random_graph_and_config_bit_identical(self, seed):
        from repro.config import with_flit_bytes, with_mg_size

        graph, rng = _fuzz_graph(seed)
        arch = with_flit_bytes(
            with_mg_size(small_test_arch(), int(rng.choice([2, 4]))),
            int(rng.choice([8, 16])),
        )
        strategy = str(rng.choice(STRATEGIES))
        compiled = compile_model(graph, arch, strategy)
        a = simulate(compiled, validate=True, engine="interp")
        b = simulate(compiled, validate=True, engine="block")
        assert a.validated and b.validated
        assert _report_fields(a.report) == _report_fields(b.report), (
            f"seed {seed}: {graph.name} [{strategy}] engine reports diverge"
        )
        for name in compiled.graph.outputs:
            assert np.array_equal(a.outputs[name], b.outputs[name]), (
                f"seed {seed}: output {name!r} diverged"
            )


def _run_block_stepped(programs, arch=None, image=None):
    """Run the block engine with loop batching disabled (forced stepped)."""
    from repro.sim import blockengine as be

    old = be._MIN_BATCH
    be._MIN_BATCH = 1 << 30
    try:
        sim = ChipSimulator(
            arch or small_test_arch(),
            programs,
            global_image=None if image is None else image.copy(),
            engine="block",
        )
        sim.report = sim.run()
    finally:
        be._MIN_BATCH = old
    return sim


#: Per-core disjoint global write-back windows for the NoC fuzzer.
_FUZZ_WB_BASE = 4096
_FUZZ_WB_SPAN = 512


def _fuzz_noc_programs(seed: int):
    """Random concurrent NoC-traffic programs, fully determined by seed.

    Generates a per-core mix of the patterns the iteration-major NoC
    replay must survive: global-memory streaming loops on adjacent cores
    (all routes converge on the memory port, so their reservations
    contend), write-back loops, a multicast SEND/RECV clique, CIM
    weight-streaming bodies (``MEM_CPY`` + ``CIM_LOAD`` + ``CIM_MVM``
    per pass, the multipass conv shape) and degenerate 1-iteration
    loops.  Global writes land in per-core disjoint windows so the
    functional outcome is engine-order independent by construction;
    everything else (timing, energy, NoC counters) must still match
    bit-for-bit.
    """
    rng = np.random.default_rng(20_000 + seed)
    num_cores = 4
    iters_menu = [1, 2, 5, 16, 33]

    # Optionally reserve a multicast clique: one source SENDs to one or
    # two receivers every iteration; receivers RECV in lockstep.
    mc_src, mc_dsts, mc_iters, mc_bytes = None, (), 0, 0
    if rng.random() < 0.6:
        mc_src = int(rng.integers(num_cores))
        others = [c for c in range(num_cores) if c != mc_src]
        rng.shuffle(others)
        mc_dsts = tuple(others[: int(rng.integers(1, 3))])
        mc_iters = int(rng.choice([1, 2, 6, 12]))
        mc_bytes = int(rng.choice([4, 16, 40]))

    progs = {}
    for cid in range(num_cores):
        b = ProgramBuilder()
        if cid == mc_src:
            b.li(4, 128)                      # payload pointer (steps)
            b.li(3, mc_bytes)
            b.li(1, 0)
            b.li(2, mc_iters)
            with b.loop(1, 2):
                for dst in mc_dsts:
                    b.li(5, dst)
                    b.emit("SEND", rs=4, rt=5, rd=3)
                b.emit("SC_ADDIW", rs=4, rt=4, offset=8)
        elif cid in mc_dsts:
            b.li(4, 4096)                     # receive buffer (steps)
            b.li(5, mc_src)
            b.li(3, mc_bytes)
            b.li(1, 0)
            b.li(2, mc_iters)
            with b.loop(1, 2):
                b.emit("RECV", rs=4, rt=5, rd=3)
                b.emit("SC_ADDIW", rs=4, rt=4, offset=8)
        kind = rng.choice(["stream", "writeback", "cim_stream", "idle"])
        iters = int(rng.choice(iters_menu))
        nbytes = int(rng.choice([8, 32, 64]))
        stride = int(rng.choice([0, nbytes, nbytes + 8]))
        if kind == "stream":
            # Global -> local streaming: every iteration crosses the
            # mesh from the memory port, contending with other cores.
            b.li(6, GLOBAL_BASE + int(rng.integers(0, 1024)))
            b.li(7, 512)
            b.li(3, nbytes)
            b.li(1, 0)
            b.li(2, iters)
            with b.loop(1, 2):
                b.emit("MEM_CPY", rs=6, rt=7, rd=3)
                b.emit("SC_ADDIW", rs=6, rt=6, offset=stride)
        elif kind == "writeback":
            # Local -> global into this core's disjoint window.
            b.li(6, 256)
            b.li(7, GLOBAL_BASE + _FUZZ_WB_BASE + cid * _FUZZ_WB_SPAN)
            b.li(3, min(nbytes, 32))
            b.li(1, 0)
            b.li(2, min(iters, 12))
            with b.loop(1, 2):
                b.emit("MEM_CPY", rs=6, rt=7, rd=3)
                b.emit("SC_ADDIW", rs=7, rt=7, offset=32)
        elif kind == "cim_stream":
            # Multipass conv shape: stream a weight tile from global,
            # load it into a CIM macro-group, multiply-accumulate.
            rows, cols = 16, 8
            b.li(6, GLOBAL_BASE + int(rng.integers(0, 512)))
            b.li(7, 1024)                     # staging
            b.li(3, rows * cols)
            b.set_sreg(SReg.MVM_ROWS, 10, rows)
            b.set_sreg(SReg.MVM_COLS, 10, cols)
            b.li(8, 0)                        # vector pointer
            b.li(9, 2048)                     # accumulator
            b.li(11, 0)                       # mg slot
            b.li(1, 0)
            b.li(2, iters)
            with b.loop(1, 2):
                b.emit("MEM_CPY", rs=6, rt=7, rd=3)
                b.emit("CIM_LOAD", rs=7, rt=11)
                b.emit("CIM_MVM", rs=8, rt=11, re=9, flags=1)
                b.emit("SC_ADDIW", rs=6, rt=6, offset=rows * cols)
        b.halt()
        progs[cid] = b.finalize()
    rng_img = np.random.default_rng(30_000 + seed)
    image = rng_img.integers(
        -128, 128, _FUZZ_WB_BASE + num_cores * _FUZZ_WB_SPAN, dtype=np.int8
    ).view(np.uint8)
    return progs, image


class TestNoCContentionFuzz:
    """Seeded NoC-contention fuzzing across both differential axes.

    Each seed generates concurrent per-core traffic (global streams
    converging on the memory port, multicast SEND/RECV cliques, CIM
    weight-streaming loops, degenerate 1-iteration loops) and is run
    three ways: legacy interpreter, block engine with iteration-major
    NoC replay, and block engine with batching forced off.  All three
    must agree bit-for-bit on reports, register files, clocks and
    memory images -- 100 seeds x 2 comparison axes = 200 trials.
    """

    @pytest.mark.parametrize("seed", range(100))
    def test_contention_trial_bit_identical(self, seed):
        progs, image = _fuzz_noc_programs(seed)
        interp, block = _run_both(progs, image=image)
        # Axis 1: batched block engine vs the interpreter.
        _assert_equal_state(interp, block)
        # Axis 2: batched vs forced-stepped block engine.
        stepped = _run_block_stepped(progs, image=image)
        _assert_equal_state(stepped, block)

    def test_corpus_exercises_noc_replay(self):
        """The corpus must actually drive the NoC replay machinery:
        windows attempted, windows committed, and at least one
        contention bailout falling back to stepped execution."""
        from repro.sim import blockengine as be

        be.reset_stats()
        for seed in range(100):
            progs, image = _fuzz_noc_programs(seed)
            sim = ChipSimulator(
                small_test_arch(), progs,
                global_image=image.copy(), engine="block",
            )
            sim.run()
        stats = be.ENGINE_STATS
        assert stats["noc_batch_attempts"] > 0
        assert stats["noc_batch_successes"] > 0
        assert stats["noc_batch_contention_bailouts"] > 0


class TestMultipassStreamEquivalence:
    """Overlapping multipass convs on adjacent cores: the compiled
    weight-streaming workload whose loop bodies carry global ``MEM_CPY``
    + ``CIM_LOAD`` per pass, batched via iteration-major NoC replay."""

    @pytest.mark.parametrize(
        "branches,in_channels,width,kernel",
        [(2, 64, 4, 4), (3, 128, 8, 3)],
    )
    def test_weight_stream_bit_identical(
        self, branches, in_channels, width, kernel
    ):
        from repro.sim import blockengine as be

        compiled = compile_model(
            "weight_stream", small_test_arch(), "generic",
            branches=branches, in_channels=in_channels,
            width=width, kernel=kernel,
        )
        be.reset_stats()
        a = simulate(compiled, validate=True, engine="block")
        stats = dict(be.ENGINE_STATS)
        assert stats["noc_batch_attempts"] >= branches
        assert stats["noc_batch_successes"] >= branches
        b = simulate(compiled, validate=True, engine="interp")
        assert _report_fields(a.report) == _report_fields(b.report)
        for name in compiled.graph.outputs:
            assert np.array_equal(a.outputs[name], b.outputs[name])


class TestHandWrittenPrograms:
    def test_counted_loop_batched_replay(self):
        """A long counted loop (exercises the batched NumPy replay)."""
        rows, cols, iters = 32, 8, 200
        b = ProgramBuilder()
        b.li(1, GLOBAL_BASE)
        b.li(2, 0)
        b.li(3, rows * cols)
        b.emit("MEM_CPY", rs=1, rt=2, rd=3)
        b.set_sreg(SReg.MVM_ROWS, 10, rows)
        b.set_sreg(SReg.MVM_COLS, 10, cols)
        b.li(4, 0)
        b.li(5, 0)
        b.emit("CIM_LOAD", rs=4, rt=5)
        b.set_sreg(SReg.QMUL, 10, 3)
        b.set_sreg(SReg.QSHIFT, 10, 6)
        b.li(6, 512)      # input pointer (steps by 1)
        b.li(7, 1024)     # accumulator (fixed)
        b.li(8, 2048)     # output pointer (steps by cols)
        b.li(21, cols)
        b.li(1, 0)
        b.li(2, iters)
        with b.loop(1, 2):
            b.emit("CIM_MVM", rs=6, rt=5, re=7, flags=0)
            b.emit("CIM_MVM", rs=6, rt=5, re=7, flags=1)
            b.emit("VEC_QNT", rs=7, rd=8, re=21)
            b.emit("SC_ADDIW", rs=6, rt=6, offset=1)
            b.emit("SC_ADDIW", rs=8, rt=8, offset=cols)
        b.halt()
        rng = np.random.default_rng(11)
        image = rng.integers(-128, 128, 4096, dtype=np.int8).view(np.uint8)
        interp, block = _run_both({0: b.finalize()}, image=image)
        _assert_equal_state(interp, block)

    def test_accumulation_loop(self):
        """VEC_ACC32 loop (cumsum-batched) + gather/scatter traffic."""
        n = 16
        b = ProgramBuilder()
        b.li(1, GLOBAL_BASE)
        b.li(2, 0)
        b.li(3, 256)
        b.emit("MEM_CPY", rs=1, rt=2, rd=3)          # input rows -> local
        b.set_sreg(SReg.FILL_VALUE, 10, 0)
        b.li(4, 1024)
        b.li(5, n)
        b.emit("VEC_FILL", rd=4, re=5, funct=4)      # zero int32 acc
        b.li(6, 0)       # source pointer
        b.li(7, n)
        b.li(1, 0)
        b.li(2, 12)
        with b.loop(1, 2):
            b.emit("VEC_ACC32", rs=6, rd=4, re=7)
            b.emit("SC_ADDIW", rs=6, rt=6, offset=n)
        b.set_sreg(SReg.QMUL, 10, 5)
        b.set_sreg(SReg.QSHIFT, 10, 4)
        b.li(8, 2048)
        b.emit("VEC_QNT", rs=4, rd=8, re=7)
        b.li(9, GLOBAL_BASE + 512)
        b.emit("MEM_CPY", rs=8, rt=9, rd=7)
        b.halt()
        rng = np.random.default_rng(3)
        image = rng.integers(-128, 128, 1024, dtype=np.int8).view(np.uint8)
        interp, block = _run_both({0: b.finalize()}, image=image)
        _assert_equal_state(interp, block)

    def test_accumulator_reset_inside_loop(self):
        """VEC_FILL resetting the VEC_ACC32 region every iteration.

        Regression test: the cumsum closed form must refuse to batch an
        accumulator that another op writes (even the identical region),
        otherwise the running sum survives across iterations that the
        interpreter resets.
        """
        n = 8
        b = ProgramBuilder()
        b.li(1, GLOBAL_BASE)
        b.li(2, 0)
        b.li(3, 64)
        b.emit("MEM_CPY", rs=1, rt=2, rd=3)
        b.set_sreg(SReg.FILL_VALUE, 10, 5)
        b.li(4, 1024)     # accumulator, reset each iteration
        b.li(5, n)
        b.li(6, 0)        # source pointer (steps by n)
        b.li(1, 0)
        b.li(2, 40)
        with b.loop(1, 2):
            b.emit("VEC_FILL", rd=4, re=5, funct=4)
            b.emit("VEC_ACC32", rs=6, rd=4, re=5)
            b.emit("SC_ADDIW", rs=6, rt=6, offset=1)
        b.halt()
        rng = np.random.default_rng(5)
        image = rng.integers(-128, 128, 256, dtype=np.int8).view(np.uint8)
        interp, block = _run_both({0: b.finalize()}, image=image)
        _assert_equal_state(interp, block)

    def test_send_recv_barrier_ordering(self):
        """Producer/consumer chain across three cores with barriers."""
        nbytes = 24
        progs = {}
        for cid in range(3):
            b = ProgramBuilder()
            if cid == 0:
                b.li(1, GLOBAL_BASE)
                b.li(2, 0)
                b.li(3, nbytes)
                b.emit("MEM_CPY", rs=1, rt=2, rd=3)
            else:
                b.li(2, 64)
                b.li(4, cid - 1)
                b.li(3, nbytes)
                b.emit("RECV", rs=2, rt=4, rd=3)
            if cid < 2:
                b.li(5, cid + 1)
                b.li(6, 0 if cid == 0 else 64)
                b.li(3, nbytes)
                b.emit("SEND", rs=6, rt=5, rd=3)
            b.emit("BARRIER")
            if cid == 2:
                b.li(7, GLOBAL_BASE + 256)
                b.li(2, 64)
                b.li(3, nbytes)
                b.emit("MEM_CPY", rs=2, rt=7, rd=3)
            b.halt()
            progs[cid] = b.finalize()
        payload = np.arange(nbytes, dtype=np.uint8)
        image = np.concatenate([payload, np.zeros(512, np.uint8)])
        interp, block = _run_both(progs, image=image)
        _assert_equal_state(interp, block)
        out = block.memory.read_global(GLOBAL_BASE + 256, nbytes)
        assert np.array_equal(out.view(np.uint8), payload)

    def test_extension_instructions_equivalent(self):
        """Extension opcodes fall back to handler dispatch in the engine."""
        registry = ISARegistry()
        registry.register(InstructionDescriptor(
            mnemonic="VEC_NEG",
            opcode=int(Opcode.EXT0),
            category=Category.VECTOR,
            fmt=Format.VEC,
            operands=("rs", "rd", "re"),
            latency=4,
            energy_pj=2.0,
        ))

        def neg_handler(core, t):
            n = core.regs[t[4]]
            data = core.chip.memory.read(core.core_id, core.regs[t[1]], n)
            core.chip.memory.write(core.core_id, core.regs[t[3]], -data)

        b = ProgramBuilder(registry)
        b.li(1, GLOBAL_BASE)
        b.li(2, 0)
        b.li(3, 8)
        b.emit("MEM_CPY", rs=1, rt=2, rd=3)
        b.li(4, 64)
        b.emit("VEC_NEG", rs=2, rd=4, re=3)
        b.li(5, GLOBAL_BASE + 64)
        b.emit("MEM_CPY", rs=4, rt=5, rd=3)
        b.halt()
        image = np.arange(1, 9, dtype=np.int8).view(np.uint8)
        image = np.concatenate([image, np.zeros(128, np.uint8)])
        interp, block = _run_both(
            {0: b.finalize()}, image=image,
            registry=registry, handlers={"VEC_NEG": neg_handler},
        )
        _assert_equal_state(interp, block)
        out = block.memory.read_global(GLOBAL_BASE + 64, 8)
        assert list(out) == [-1, -2, -3, -4, -5, -6, -7, -8]


class TestEdgeCases:
    def _lonely_recv(self):
        b = ProgramBuilder()
        b.li(1, 0)
        b.li(2, 1)
        b.li(3, 4)
        b.emit("RECV", rs=1, rt=2, rd=3)
        b.halt()
        return b.finalize()

    @pytest.mark.parametrize("engine", ("interp", "block"))
    def test_deadlock_reported(self, engine):
        sim = ChipSimulator(
            small_test_arch(), {0: self._lonely_recv()}, engine=engine
        )
        with pytest.raises(SimulationError, match="deadlock"):
            sim.run()

    @pytest.mark.parametrize("engine", ("interp", "block"))
    def test_recv_size_mismatch_detected(self, engine):
        sender = ProgramBuilder()
        sender.li(1, 0)
        sender.li(2, 1)
        sender.li(3, 8)
        sender.emit("SEND", rs=1, rt=2, rd=3)
        sender.halt()
        receiver = ProgramBuilder()
        receiver.li(1, 0)
        receiver.li(2, 0)
        receiver.li(3, 4)  # expects 4, message has 8
        receiver.emit("RECV", rs=1, rt=2, rd=3)
        receiver.halt()
        sim = ChipSimulator(
            small_test_arch(),
            {0: sender.finalize(), 1: receiver.finalize()},
            engine=engine,
        )
        with pytest.raises(SimulationError, match="RECV expects"):
            sim.run()

    @pytest.mark.parametrize("engine", ("interp", "block"))
    def test_runaway_detection(self, engine):
        b = ProgramBuilder()
        b.program.label("spin")
        b.emit("JMP", target="spin")
        b.halt()
        sim = ChipSimulator(
            small_test_arch(), {0: b.finalize()}, engine=engine
        )
        with pytest.raises(SimulationError, match="runaway"):
            sim.cores[0].run(max_instructions=1000)

    def test_barrier_release_clocks_match(self):
        fast = ProgramBuilder()
        fast.emit("BARRIER")
        fast.emit("NOP")
        fast.halt()
        slow = ProgramBuilder()
        for _ in range(40):
            slow.emit("NOP")
        slow.emit("BARRIER")
        slow.emit("NOP")
        slow.halt()
        interp, block = _run_both(
            {0: fast.finalize(), 1: slow.finalize()}
        )
        _assert_equal_state(interp, block)


class TestEngineSelection:
    def test_env_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SIM_ENGINE", raising=False)
        assert default_engine() == "block"
        monkeypatch.setenv("REPRO_SIM_ENGINE", "interp")
        assert default_engine() == "interp"
        monkeypatch.setenv("REPRO_SIM_ENGINE", "bogus")
        with pytest.raises(ConfigError, match="unknown simulation engine"):
            default_engine()

    def test_env_selects_interpreter(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_ENGINE", "interp")
        sim = ChipSimulator(small_test_arch(), {})
        assert sim.engine == "interp"
        assert all(core._blockprog is None for core in sim.cores)

    def test_block_engine_installs_tables(self):
        sim = ChipSimulator(small_test_arch(), {}, engine="block")
        assert sim.engine == "block"
        assert all(core._blockprog is not None for core in sim.cores)

    def test_unknown_engine_rejected(self):
        with pytest.raises(ConfigError, match="unknown simulation engine"):
            ChipSimulator(small_test_arch(), {}, engine="turbo")

    def test_block_programs_shared_across_cores(self):
        b = ProgramBuilder()
        for _ in range(4):
            b.emit("NOP")
        b.halt()
        program = b.finalize()
        sim = ChipSimulator(
            small_test_arch(), {0: program, 1: program}, engine="block"
        )
        assert sim.cores[0]._blockprog is sim.cores[1]._blockprog


class TestPlanTemplates:
    """Plan-template caching: the affine walk + hazard analysis runs
    once per loop-block instance; re-entries instantiate the cached
    template.  Results must stay bit-identical (the fuzzer and every
    equivalence test above run with templates active)."""

    def test_nested_loop_reuses_template_across_entries(self):
        """An inner counted loop re-entered by an outer loop with
        translated base pointers: one template build, many hits."""
        from repro.sim import blockengine as be

        rows, cols, inner, outer = 16, 8, 24, 10
        b = ProgramBuilder()
        b.li(1, GLOBAL_BASE)
        b.li(2, 0)
        b.li(3, 2048)
        b.emit("MEM_CPY", rs=1, rt=2, rd=3)
        b.set_sreg(SReg.MVM_ROWS, 10, rows)
        b.set_sreg(SReg.MVM_COLS, 10, cols)
        b.li(4, 0)
        b.li(5, 0)
        b.emit("CIM_LOAD", rs=4, rt=5)
        b.set_sreg(SReg.QMUL, 10, 3)
        b.set_sreg(SReg.QSHIFT, 10, 6)
        b.li(21, cols)
        b.li(9, 0)        # outer counter
        b.li(10, outer)   # outer bound
        with b.loop(9, 10):
            # per-entry translated pointers: in = 256 + 32*outer_i,
            # out = 4096 + 256*outer_i
            b.emit("SC_MULI", rs=9, rt=6, imm=32)
            b.emit("SC_ADDIW", rs=6, rt=6, offset=256)
            b.emit("SC_MULI", rs=9, rt=8, imm=256)
            b.emit("SC_ADDIW", rs=8, rt=8, offset=4096)
            b.li(7, 1024)   # accumulator (fixed)
            b.li(1, 0)      # inner counter
            b.li(2, inner)  # inner bound
            with b.loop(1, 2):
                b.emit("CIM_MVM", rs=6, rt=5, re=7, flags=0)
                b.emit("VEC_QNT", rs=7, rd=8, re=21)
                b.emit("SC_ADDIW", rs=6, rt=6, offset=1)
                b.emit("SC_ADDIW", rs=8, rt=8, offset=cols)
        b.halt()
        rng = np.random.default_rng(17)
        image = rng.integers(-128, 128, 4096, dtype=np.int8).view(np.uint8)

        be.reset_stats()
        interp, block = _run_both({0: b.finalize()}, image=image)
        _assert_equal_state(interp, block)
        stats = be.ENGINE_STATS
        assert stats["batch_successes"] >= outer
        # one symbolic walk serves every translated re-entry
        assert stats["template_builds"] == 1
        assert stats["template_hits"] >= outer
        assert stats["template_misfits"] == 0

    @pytest.mark.parametrize("model", TINY_MODELS)
    def test_templates_active_and_bit_identical_on_models(self, model, arch):
        from repro.sim import blockengine as be

        compiled = compile_model(model, arch, "dp")
        be.reset_stats()
        a = simulate(compiled, validate=True, engine="block")
        first = dict(be.ENGINE_STATS)
        b = simulate(compiled, validate=True, engine="block")
        second = dict(be.ENGINE_STATS)
        if first["batch_successes"]:
            # every successful batch went through a template...
            assert first["template_hits"] == first["batch_successes"]
            # ...and re-simulation reuses the cached templates instead
            # of re-walking (content-addressed across simulator runs).
            assert second["template_builds"] == first["template_builds"]
            assert second["template_hits"] > first["template_hits"]
        interp = simulate(compiled, validate=True, engine="interp")
        assert _report_fields(a.report) == _report_fields(interp.report)
        for name in compiled.graph.outputs:
            assert np.array_equal(a.outputs[name], interp.outputs[name])
