"""Tests for the design-space exploration engine and its result cache."""

import json

import pytest

from repro.config import (
    arch_fingerprint,
    default_arch,
    small_test_arch,
    with_flit_bytes,
    with_mg_size,
)
from repro.errors import ConfigError
from repro.explore import (
    DesignPoint,
    PointSpec,
    SweepSpec,
    evaluate_fast,
    run_sweep,
)
from repro.explore_cache import CACHE_SCHEMA_VERSION, ResultCache, point_key
from repro.sim.fastmodel import FastReport


def tiny_spec(**overrides):
    base = dict(
        models=("tiny_cnn", "tiny_resnet"),
        strategies=("generic", "dp"),
        mg_sizes=(2,),
        flit_sizes=(8, 16),
        input_sizes=(8,),
        num_classes=10,
        base_arch=small_test_arch(),
    )
    base.update(overrides)
    return SweepSpec(**base)


class TestArchFingerprint:
    def test_stable_across_instances(self):
        assert arch_fingerprint(default_arch()) == arch_fingerprint(
            default_arch()
        )

    def test_sensitive_to_every_swept_axis(self):
        base = default_arch()
        prints = {
            arch_fingerprint(base),
            arch_fingerprint(with_mg_size(base, 4)),
            arch_fingerprint(with_flit_bytes(base, 16)),
        }
        assert len(prints) == 3


class TestSweepSpec:
    def test_cross_product_size_and_order(self):
        spec = tiny_spec()
        points = spec.points()
        assert len(points) == len(spec) == 2 * 2 * 1 * 2
        # model is the outermost axis, MG the innermost
        assert [p.model for p in points[:4]] == ["tiny_cnn"] * 4
        assert points[0].flit_bytes == 8 and points[1].flit_bytes == 16

    def test_none_axes_keep_base_arch(self):
        spec = tiny_spec(mg_sizes=None, flit_sizes=None)
        (first, *_) = spec.points()
        assert first.mg_size is None and first.flit_bytes is None
        assert first.resolve_arch(spec.arch()) == spec.arch()

    def test_per_model_closure_limits(self):
        spec = tiny_spec(
            closure_limit={"tiny_cnn": 4, "tiny_resnet": None}
        )
        limits = {p.model: p.closure_limit for p in spec.points()}
        assert limits == {"tiny_cnn": 4, "tiny_resnet": None}

    def test_spec_is_hashable_even_with_limit_map(self):
        plain = tiny_spec()
        mapped = tiny_spec(closure_limit={"tiny_cnn": 4})
        assert len({plain, mapped, tiny_spec()}) == 2

    def test_models_without_input_size_kwarg_sweep_fine(self):
        """tiny_mlp has a flat input; axis kwargs must not crash it."""
        result = run_sweep(tiny_spec(models=("tiny_mlp",), mg_sizes=None,
                                     flit_sizes=None))
        assert len(result) == 2  # two strategies
        assert all(p.cycles > 0 for p in result.points)

    def test_rejects_empty_axes(self):
        with pytest.raises(ConfigError):
            tiny_spec(models=())

    def test_normalises_lists_to_tuples(self):
        spec = tiny_spec(models=["tiny_cnn"], mg_sizes=[2])
        assert spec.models == ("tiny_cnn",)
        assert spec.mg_sizes == (2,)


class TestResultCache:
    def test_miss_then_hit_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path)
        report = FastReport(
            cycles=123, energy_breakdown_pj={"noc": 1.5}, macs=42,
            clock_mhz=1000, stage_cycles={0: 123},
        )
        key = point_key("tiny_cnn", small_test_arch(), "dp", 8, 10, None)
        assert cache.lookup(key) is None
        cache.store(key, report, meta={"model": "tiny_cnn"})
        assert cache.lookup(key) == report
        assert (cache.hits, cache.misses) == (1, 1)
        assert len(cache) == 1

    def test_key_distinguishes_every_coordinate(self):
        arch = small_test_arch()
        keys = {
            point_key("tiny_cnn", arch, "dp", 8, 10, None),
            point_key("tiny_resnet", arch, "dp", 8, 10, None),
            point_key("tiny_cnn", arch, "generic", 8, 10, None),
            point_key("tiny_cnn", arch, "dp", 16, 10, None),
            point_key("tiny_cnn", arch, "dp", 8, 2, None),
            point_key("tiny_cnn", arch, "dp", 8, 10, 4),
            point_key("tiny_cnn", with_mg_size(arch, 4), "dp", 8, 10, None),
            point_key("tiny_cnn", arch, "dp", 8, 10, None, chips=2),
            point_key("tiny_cnn", arch, "dp", 8, 10, None, batch=4),
            point_key("tiny_cnn", arch, "dp", 8, 10, None, chips=2, batch=4),
        }
        assert len(keys) == 10

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = point_key("tiny_cnn", small_test_arch(), "dp", 8, 10, None)
        path = cache.path_for(key)
        path.parent.mkdir(parents=True)
        path.write_text("{not json")
        assert cache.lookup(key) is None

    def test_schema_mismatch_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = point_key("tiny_cnn", small_test_arch(), "dp", 8, 10, None)
        report = FastReport(
            cycles=1, energy_breakdown_pj={}, macs=1, clock_mhz=1000,
        )
        path = cache.store(key, report)
        payload = json.loads(path.read_text())
        payload["schema"] = CACHE_SCHEMA_VERSION + 1
        path.write_text(json.dumps(payload))
        assert cache.lookup(key) is None

    def test_schema_bump_invalidates_existing_entries(
        self, tmp_path, monkeypatch
    ):
        """A CACHE_SCHEMA_VERSION bump must orphan every stored entry."""
        import repro.explore_cache as explore_cache

        cache = ResultCache(tmp_path)
        report = FastReport(
            cycles=9, energy_breakdown_pj={"noc": 1.0}, macs=3,
            clock_mhz=1000,
        )
        key = "ab" + "0" * 62
        cache.store(key, report)
        assert cache.lookup(key) == report
        monkeypatch.setattr(
            explore_cache, "CACHE_SCHEMA_VERSION", CACHE_SCHEMA_VERSION + 1
        )
        assert cache.lookup(key) is None
        assert cache.misses == 1

    def test_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        report = FastReport(
            cycles=1, energy_breakdown_pj={}, macs=1, clock_mhz=1000,
        )
        cache.store("ab" + "0" * 62, report)
        cache.store("cd" + "0" * 62, report)
        assert cache.clear() == 2
        assert len(cache) == 0


class TestRunSweep:
    def test_matches_direct_evaluation(self):
        spec = tiny_spec()
        result = run_sweep(spec)
        assert len(result) == len(spec)
        direct = evaluate_fast(
            "tiny_cnn",
            with_flit_bytes(with_mg_size(small_test_arch(), 2), 8),
            "generic", 8, 10,
        )
        assert result.points[0].report == direct.report
        assert result.points[0].plan is None  # engine drops plans

    def test_cache_miss_then_full_hit(self, tmp_path):
        spec = tiny_spec()
        first = run_sweep(spec, cache=ResultCache(tmp_path))
        assert first.stats.cache_hits == 0
        assert first.stats.evaluated == len(spec)
        second = run_sweep(spec, cache=ResultCache(tmp_path))
        assert second.stats.cache_hits == len(spec)
        assert second.stats.evaluated == 0
        assert second.stats.hit_rate == 1.0
        assert all(p.cached for p in second.points)
        assert [p.report for p in first.points] == [
            p.report for p in second.points
        ]

    def test_cache_keys_differ_across_strategies(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_sweep(tiny_spec(strategies=("generic",)), cache=cache)
        result = run_sweep(tiny_spec(strategies=("dp",)), cache=cache)
        assert result.stats.cache_hits == 0

    def test_parallel_equals_serial(self):
        spec = tiny_spec()
        serial = run_sweep(spec, workers=1)
        parallel = run_sweep(spec, workers=2)
        assert parallel.stats.workers == 2
        assert [p.report for p in parallel.points] == [
            p.report for p in serial.points
        ]
        assert [(p.model, p.strategy, p.mg_size, p.flit_bytes)
                for p in parallel.points] == [
            (p.model, p.strategy, p.mg_size, p.flit_bytes)
            for p in serial.points
        ]

    def test_parallel_with_cache_populates_and_hits(self, tmp_path):
        spec = tiny_spec()
        first = run_sweep(spec, workers=2, cache=ResultCache(tmp_path))
        assert first.stats.evaluated == len(spec)
        second = run_sweep(spec, workers=2, cache=ResultCache(tmp_path))
        assert second.stats.cache_hits == len(spec)

    def test_progress_callback_sees_every_point(self):
        spec = tiny_spec()
        seen = []
        run_sweep(spec, progress=lambda done, total, pt: seen.append(
            (done, total, pt.model)
        ))
        assert len(seen) == len(spec)
        assert seen[-1][0] == len(spec)
        assert all(total == len(spec) for _, total, _ in seen)

    def test_grouping_helpers_and_best(self):
        result = run_sweep(tiny_spec())
        by_model = result.by_model()
        assert set(by_model) == {"tiny_cnn", "tiny_resnet"}
        nested = result.by_model_strategy()
        assert set(nested["tiny_cnn"]) == {"generic", "dp"}
        best = result.best("tops")
        assert best.tops == max(p.tops for p in result.points)
        fastest = result.best("cycles")
        assert fastest.cycles == min(p.cycles for p in result.points)
        with pytest.raises(ConfigError):
            result.best("nope")

    def test_result_to_dict_is_json_safe(self):
        result = run_sweep(tiny_spec(models=("tiny_cnn",)))
        payload = json.loads(json.dumps(result.to_dict()))
        assert payload["spec"]["models"] == ["tiny_cnn"]
        assert len(payload["points"]) == len(result)
        restored = FastReport.from_dict(payload["points"][0]["report"])
        assert restored == result.points[0].report


class TestDesignPoint:
    def test_plan_is_optional(self):
        report = FastReport(
            cycles=1, energy_breakdown_pj={}, macs=1, clock_mhz=1000,
        )
        point = DesignPoint(
            model="m", strategy="dp", mg_size=8, flit_bytes=8, report=report,
        )
        assert point.plan is None

    def test_evaluate_fast_keeps_plan(self):
        point = evaluate_fast(
            "tiny_cnn", small_test_arch(), "dp", input_size=8, num_classes=10,
        )
        assert point.plan is not None
        assert point.input_size == 8 and point.num_classes == 10


class TestPointSpec:
    def test_resolve_arch_applies_overrides(self):
        base = small_test_arch()
        pspec = PointSpec(
            model="tiny_cnn", strategy="dp", input_size=8, num_classes=10,
            mg_size=4, flit_bytes=16,
        )
        arch = pspec.resolve_arch(base)
        assert arch.chip.core.cim_unit.macro_group.num_macros == 4
        assert arch.chip.noc.flit_bytes == 16

    def test_cache_key_matches_point_key(self):
        base = small_test_arch()
        pspec = PointSpec(
            model="tiny_cnn", strategy="dp", input_size=8, num_classes=10,
            mg_size=4, flit_bytes=16,
        )
        assert pspec.cache_key(base) == point_key(
            "tiny_cnn", pspec.resolve_arch(base), "dp", 8, 10, None
        )


class TestAdaptiveScheduling:
    def test_cost_estimate_orders_heavy_points_first(self):
        from repro.explore import estimate_point_cost

        heavy = PointSpec(model="vgg19", strategy="dp",
                          input_size=224, num_classes=1000)
        light = PointSpec(model="tiny_mlp", strategy="generic",
                          input_size=8, num_classes=10)
        assert estimate_point_cost(heavy) > 10 * estimate_point_cost(light)

    def test_closure_limit_discounts_dp_cost(self):
        from repro.explore import estimate_point_cost

        capped = PointSpec(model="efficientnetb0", strategy="dp",
                           input_size=224, num_classes=1000,
                           closure_limit=64)
        uncapped = PointSpec(model="efficientnetb0", strategy="dp",
                             input_size=224, num_classes=1000)
        assert estimate_point_cost(capped) < estimate_point_cost(uncapped)

    def test_parallel_results_identical_despite_reordering(self):
        spec = tiny_spec()
        serial = run_sweep(spec, workers=1)
        parallel = run_sweep(spec, workers=2)
        assert [p.to_dict() for p in serial] == [
            p.to_dict() for p in parallel
        ]


class TestCacheGC:
    def _fill(self, cache, report, n):
        for i in range(n):
            cache.store(f"{i:04x}" + "0" * 60, report)

    def test_lru_prune_on_write(self, tmp_path):
        report = evaluate_fast(
            "tiny_mlp", small_test_arch(), "generic",
            input_size=8, num_classes=10,
        ).report
        cache = ResultCache(tmp_path, max_bytes=4096)
        self._fill(cache, report, 64)
        assert cache.size_bytes() <= 4096
        assert cache.evictions > 0

    def test_lookup_refreshes_recency(self, tmp_path):
        import os
        import time

        report = evaluate_fast(
            "tiny_mlp", small_test_arch(), "generic",
            input_size=8, num_classes=10,
        ).report
        cache = ResultCache(tmp_path, max_bytes=0)  # no pruning yet
        keys = [f"{i:04x}" + "0" * 60 for i in range(6)]
        for key in keys:
            cache.store(key, report)
        # age everything, then touch the first entry via lookup
        past = time.time() - 3600
        for key in keys:
            os.utime(cache.path_for(key), (past, past))
        assert cache.lookup(keys[0]) is not None
        entry = cache.path_for(keys[0]).stat().st_size
        cache.max_bytes = 3 * entry
        removed = cache.gc()
        assert removed > 0
        assert cache.lookup(keys[0]) is not None      # recently used survives
        assert cache.lookup(keys[1]) is None          # oldest went first

    def test_zero_cap_disables_gc(self, tmp_path):
        report = evaluate_fast(
            "tiny_mlp", small_test_arch(), "generic",
            input_size=8, num_classes=10,
        ).report
        cache = ResultCache(tmp_path, max_bytes=0)
        self._fill(cache, report, 40)
        assert len(cache) == 40
        assert cache.gc() == 0

    def test_env_default_cap(self, monkeypatch, tmp_path):
        from repro.explore_cache import cache_max_bytes

        monkeypatch.delenv("REPRO_CACHE_MAX_MB", raising=False)
        assert cache_max_bytes() == 256 * 1024 * 1024
        monkeypatch.setenv("REPRO_CACHE_MAX_MB", "1")
        assert ResultCache(tmp_path).max_bytes == 1024 * 1024

    def test_env_cap_drives_lru_eviction(self, monkeypatch, tmp_path):
        """End-to-end: REPRO_CACHE_MAX_MB alone caps an env-configured
        cache, and the oldest entries are the ones evicted."""
        import os
        import time

        monkeypatch.setenv("REPRO_CACHE_MAX_MB", "1")
        cache = ResultCache(tmp_path)  # max_bytes from the environment
        # ~34 KB per entry so a few dozen stores cross the 1 MB cap
        # within one GC interval.
        fat = FastReport(
            cycles=1, energy_breakdown_pj={}, macs=1, clock_mhz=1000,
            stage_cycles={i: i for i in range(3000)},
        )
        keys = [f"{i:04x}" + "0" * 60 for i in range(40)]
        past = time.time() - 3600
        for i, key in enumerate(keys):
            path = cache.store(key, fat)
            if i < 20:  # age the first half so LRU order is unambiguous
                os.utime(path, (past, past))
        cache.gc()
        assert cache.size_bytes() <= 1024 * 1024
        assert cache.evictions > 0
        assert cache.lookup(keys[-1]) is not None   # newest survives
        assert cache.lookup(keys[0]) is None        # oldest evicted


class TestSpotCheck:
    def test_best_points_revalidated_cycle_accurately(self):
        from repro.explore import spot_check

        spec = tiny_spec(models=("tiny_resnet",), flit_sizes=(8,))
        result = run_sweep(spec)
        checks = spot_check(result, n=2, input_size=8, num_classes=10)
        assert len(checks) == 2
        best = result.best("tops")
        assert checks[0].point.to_dict() == best.to_dict()
        for chk in checks:
            assert chk.validated
            assert chk.report.cycles > 0
            assert chk.fast_cycles > 0
            assert chk.cycle_ratio > 0
            payload = chk.to_dict()
            assert payload["model"] == "tiny_resnet"
            assert payload["input_size"] == 8

    def test_zero_n_is_noop(self):
        from repro.explore import spot_check

        spec = tiny_spec(models=("tiny_cnn",), strategies=("generic",),
                         flit_sizes=(8,))
        result = run_sweep(spec)
        assert spot_check(result, n=0) == []

    def test_unknown_metric_rejected(self):
        from repro.explore import spot_check

        spec = tiny_spec(models=("tiny_cnn",), strategies=("generic",),
                         flit_sizes=(8,))
        result = run_sweep(spec)
        with pytest.raises(ConfigError):
            spot_check(result, n=1, metric="watts")


class TestParetoFront:
    def _point(self, energy, tops, model="tiny_cnn"):
        # tops = 2 * macs / seconds / 1e12; pick macs so tops comes out
        # exactly: cycles=1000 @ 1000 MHz -> 1 us -> macs = tops * 5e5.
        report = FastReport(
            cycles=1000,
            energy_breakdown_pj={"noc": energy * 1e9},
            macs=int(tops * 5e5),
            clock_mhz=1000,
        )
        return DesignPoint(
            model=model, strategy="dp", mg_size=2, flit_bytes=8,
            report=report, input_size=8, num_classes=10,
        )

    def _result(self, coords):
        from repro.explore import SweepResult, SweepStats

        points = [self._point(e, t) for e, t in coords]
        spec = tiny_spec(models=("tiny_cnn",), strategies=("dp",))
        return SweepResult(spec=spec, points=points,
                           stats=SweepStats(total_points=len(points)))

    def test_dominated_points_are_dropped(self):
        result = self._result([
            (1.0, 10.0),   # front (cheapest)
            (2.0, 20.0),   # front (fastest)
            (2.0, 10.0),   # dominated by both
            (1.5, 15.0),   # front (knee)
            (3.0, 19.0),   # dominated by (2.0, 20.0)
        ])
        front = result.pareto_front()
        assert [(p.energy_mj, p.tops) for p in front] == [
            (1.0, 10.0), (1.5, 15.0), (2.0, 20.0),
        ]

    def test_single_point_is_its_own_front(self):
        result = self._result([(1.0, 1.0)])
        assert len(result.pareto_front()) == 1

    def test_duplicate_coordinates_kept_once(self):
        result = self._result([(1.0, 10.0), (1.0, 10.0)])
        assert len(result.pareto_front()) == 1

    def test_empty_sweep_has_empty_front(self):
        from repro.explore import pareto_filter

        assert pareto_filter([], lambda p: (0.0, 0.0)) == []
        result = self._result([])
        assert result.pareto_front() == []

    def test_empty_sweep_best_raises_config_error(self):
        from repro.errors import ConfigError

        result = self._result([])
        with pytest.raises(ConfigError, match="no points"):
            result.best("tops")

    def test_tied_cost_keeps_only_higher_benefit(self):
        # Equal energy: the higher-throughput point strictly dominates.
        result = self._result([(1.0, 10.0), (1.0, 20.0)])
        front = result.pareto_front()
        assert [(p.energy_mj, p.tops) for p in front] == [(1.0, 20.0)]

    def test_tied_benefit_keeps_only_lower_cost(self):
        result = self._result([(2.0, 10.0), (1.0, 10.0)])
        front = result.pareto_front()
        assert [(p.energy_mj, p.tops) for p in front] == [(1.0, 10.0)]

    def test_all_points_tied_keeps_exactly_one(self):
        result = self._result([(1.0, 10.0)] * 5)
        assert len(result.pareto_front()) == 1

    def test_duplicates_of_a_dominated_point_all_drop(self):
        result = self._result([(2.0, 5.0), (2.0, 5.0), (1.0, 10.0)])
        front = result.pareto_front()
        assert [(p.energy_mj, p.tops) for p in front] == [(1.0, 10.0)]

    def test_front_from_real_sweep_is_nonempty_and_nondominated(self):
        result = run_sweep(tiny_spec())
        front = result.pareto_front()
        assert front
        for p in front:
            assert not any(
                (q.energy_mj <= p.energy_mj and q.tops >= p.tops)
                and (q.energy_mj < p.energy_mj or q.tops > p.tops)
                for q in result.points
            )


class TestArrivalRateAxis:
    def test_rate_axis_in_cross_product(self):
        spec = tiny_spec(
            models=("tiny_cnn",), strategies=("dp",), mg_sizes=None,
            flit_sizes=None, batch_sizes=(1, 4),
            arrival_rates=(None, 250000.0),
        )
        assert len(spec) == 4
        coords = [(p.batch, p.arrival_rate) for p in spec.points()]
        assert coords == [
            (1, None), (1, 250000.0), (4, None), (4, 250000.0),
        ]

    def test_rate_points_match_direct_evaluation(self):
        arch = small_test_arch()
        spec = tiny_spec(
            models=("tiny_cnn",), strategies=("dp",), mg_sizes=None,
            flit_sizes=None, batch_sizes=(1, 4),
            arrival_rates=(None, 250000.0),
        )
        result = run_sweep(spec)
        for point in result.points:
            direct = evaluate_fast(
                "tiny_cnn", arch, "dp", 8, 10, batch=point.batch,
                arrival_rate=point.arrival_rate,
            )
            assert point.report == direct.report
        served = [p for p in result.points if p.arrival_rate is not None]
        assert all(p.report.arrival_rate_inf_s == 250000.0 for p in served)
        assert all(
            p.report.p99_latency_cycles > 0 for p in served
        )

    def test_rate_points_share_one_base_analysis(self, monkeypatch):
        import repro.explore as explore

        calls = []
        real_plan_graph = explore.plan_graph

        def counting_plan_graph(*args, **kwargs):
            calls.append(1)
            return real_plan_graph(*args, **kwargs)

        monkeypatch.setattr(explore, "plan_graph", counting_plan_graph)
        spec = tiny_spec(
            models=("tiny_cnn",), strategies=("dp",), mg_sizes=None,
            flit_sizes=None, batch_sizes=(1, 8),
            arrival_rates=(None, 100000.0, 400000.0),
        )
        result = run_sweep(spec)
        assert len(result.points) == 6
        assert len(calls) == 1

    def test_parallel_rate_sweep_equals_serial(self):
        spec = tiny_spec(
            models=("tiny_cnn", "tiny_resnet"), strategies=("dp",),
            mg_sizes=None, flit_sizes=None, batch_sizes=(4,),
            arrival_rates=(None, 250000.0),
        )
        serial = run_sweep(spec)
        parallel = run_sweep(spec, workers=2)
        for a, b in zip(serial.points, parallel.points):
            assert a.report == b.report
            assert a.arrival_rate == b.arrival_rate

    def test_rate_in_cache_key_and_round_trip(self, tmp_path):
        arch = small_test_arch()
        assert point_key("tiny_cnn", arch, "dp", 8, 10, None, 1, 4, None) != \
            point_key("tiny_cnn", arch, "dp", 8, 10, None, 1, 4, 250000.0)
        spec = tiny_spec(
            models=("tiny_cnn",), strategies=("dp",), mg_sizes=None,
            flit_sizes=None, batch_sizes=(4,), arrival_rates=(250000.0,),
        )
        cache = ResultCache(tmp_path)
        first = run_sweep(spec, cache=cache)
        second = run_sweep(spec, cache=cache)
        assert second.stats.cache_hits == 1
        assert first.points[0].report == second.points[0].report
        assert second.points[0].report.p99_latency_cycles > 0

    def test_point_dict_has_latency_columns(self):
        arch = small_test_arch()
        point = evaluate_fast(
            "tiny_cnn", arch, "dp", 8, 10, batch=4, arrival_rate=250000.0
        )
        row = point.to_dict()
        assert row["arrival_rate"] == 250000.0
        assert row["p99_latency_ms"] == pytest.approx(
            point.report.p99_latency_cycles
            / (point.report.clock_mhz * 1e3)
        )
        plain = evaluate_fast("tiny_cnn", arch, "dp", 8, 10).to_dict()
        assert plain["arrival_rate"] is None
        assert plain["p99_latency_ms"] is None

    def test_invalid_rates_rejected(self):
        with pytest.raises(ConfigError, match="arrival rates"):
            tiny_spec(arrival_rates=(0.0,))
        with pytest.raises(ConfigError, match="arrival rates"):
            tiny_spec(arrival_rates=())


class TestSweepResume:
    def _spec(self):
        return tiny_spec(
            models=("tiny_cnn", "tiny_resnet"), strategies=("dp", "generic"),
            mg_sizes=None, flit_sizes=None,
        )

    class _Interrupt(RuntimeError):
        pass

    def _interrupt_after(self, n):
        def progress(done, total, point):
            if done >= n:
                raise self._Interrupt()
        return progress

    def test_interrupted_sweep_resumes_mid_cross_product(self, tmp_path):
        spec = self._spec()
        cache = ResultCache(tmp_path)
        with pytest.raises(self._Interrupt):
            run_sweep(spec, cache=cache, progress=self._interrupt_after(3))
        manifests = list(tmp_path.glob("manifests/*.jsonl"))
        assert len(manifests) == 1
        # restart: the three journalled points are resumed, the last
        # point is evaluated, and the manifest is cleaned up on success.
        result = run_sweep(spec, cache=ResultCache(tmp_path))
        assert result.stats.resumed_points == 3
        assert result.stats.evaluated == 1
        assert result.stats.cache_hits == 3
        assert not list(tmp_path.glob("manifests/*.jsonl"))
        # resumed results are bit-identical to a cold sweep
        cold = run_sweep(self._spec())
        for a, b in zip(result.points, cold.points):
            assert a.report == b.report

    def test_different_spec_does_not_resume(self, tmp_path):
        cache = ResultCache(tmp_path)
        with pytest.raises(self._Interrupt):
            run_sweep(
                self._spec(), cache=cache, progress=self._interrupt_after(2)
            )
        other = tiny_spec(
            models=("tiny_cnn",), strategies=("dp",),
            mg_sizes=None, flit_sizes=None,
        )
        result = run_sweep(other, cache=ResultCache(tmp_path))
        # the point itself is served from the shared result cache, but
        # it is not counted as resumed sweep progress
        assert result.stats.resumed_points == 0

    def test_resume_disabled_writes_no_manifest(self, tmp_path):
        cache = ResultCache(tmp_path)
        with pytest.raises(self._Interrupt):
            run_sweep(
                self._spec(), cache=cache,
                progress=self._interrupt_after(2), resume=False,
            )
        assert not list(tmp_path.glob("manifests/*.jsonl"))

    def test_corrupt_manifest_is_ignored(self, tmp_path):
        from repro.explore_cache import SweepManifest, sweep_fingerprint

        spec = self._spec()
        fingerprint = sweep_fingerprint(spec.to_dict())
        path = tmp_path / "manifests" / f"{fingerprint}.jsonl"
        path.parent.mkdir(parents=True)
        path.write_text("not json\n{\"key\": \"zzz\"}\n")
        assert SweepManifest(tmp_path, fingerprint).load() == frozenset()
        result = run_sweep(spec, cache=ResultCache(tmp_path))
        assert result.stats.resumed_points == 0
        assert len(result.points) == len(spec)

    def test_torn_tail_line_is_skipped(self, tmp_path):
        from repro.explore_cache import SweepManifest

        manifest = SweepManifest(tmp_path, "f" * 64)
        manifest.mark("a" * 64)
        manifest.mark("b" * 64)
        with open(manifest.path, "a") as fh:
            fh.write('{"key": "c')  # torn write from a crash
        assert SweepManifest(tmp_path, "f" * 64).load() == \
            frozenset({"a" * 64, "b" * 64})


class TestReplicasAxis:
    """The PR-6 fleet axis: replicas in the cross product and the cache."""

    def test_replicas_axis_in_cross_product(self):
        spec = tiny_spec(
            models=("tiny_cnn",), strategies=("dp",), mg_sizes=None,
            flit_sizes=None, batch_sizes=(4,), replica_counts=(1, 2, 4),
        )
        assert len(spec) == 3
        assert [p.replicas for p in spec.points()] == [1, 2, 4]

    def test_rejects_nonpositive_replica_counts(self):
        with pytest.raises(ConfigError, match="replica"):
            tiny_spec(replica_counts=(0,))

    def test_replica_points_match_direct_evaluation(self):
        arch = small_test_arch()
        spec = tiny_spec(
            models=("tiny_cnn",), strategies=("dp",), mg_sizes=None,
            flit_sizes=None, batch_sizes=(8,),
            arrival_rates=(None, 250000.0), replica_counts=(1, 2),
        )
        result = run_sweep(spec)
        assert len(result.points) == 4
        for point in result.points:
            direct = evaluate_fast(
                "tiny_cnn", arch, "dp", 8, 10, batch=8,
                arrival_rate=point.arrival_rate, replicas=point.replicas,
            )
            assert point.report == direct.report
            assert point.replicas == direct.replicas

    def test_fleet_throughput_scales_linearly(self):
        spec = tiny_spec(
            models=("tiny_cnn",), strategies=("dp",), mg_sizes=None,
            flit_sizes=None, batch_sizes=(8,), replica_counts=(1, 4),
        )
        single, fleet = run_sweep(spec).points
        assert fleet.throughput_inf_s == pytest.approx(
            4 * single.throughput_inf_s, rel=1e-9
        )

    def test_replica_points_share_one_base_analysis(self, monkeypatch):
        import repro.explore as explore

        calls = []
        real_plan_graph = explore.plan_graph

        def counting_plan_graph(*args, **kwargs):
            calls.append(1)
            return real_plan_graph(*args, **kwargs)

        monkeypatch.setattr(explore, "plan_graph", counting_plan_graph)
        spec = tiny_spec(
            models=("tiny_cnn",), strategies=("dp",), mg_sizes=None,
            flit_sizes=None, batch_sizes=(8,),
            arrival_rates=(None, 250000.0), replica_counts=(1, 2, 4),
        )
        result = run_sweep(spec)
        assert len(result.points) == 6
        assert len(calls) == 1

    def test_replicas_in_cache_key(self):
        arch = small_test_arch()
        assert point_key("tiny_cnn", arch, "dp", 8, 10, None, 1, 4, None) != \
            point_key(
                "tiny_cnn", arch, "dp", 8, 10, None, 1, 4, None, replicas=2
            )

    def test_replica_sweep_round_trips_through_cache(self, tmp_path):
        spec = tiny_spec(
            models=("tiny_cnn",), strategies=("dp",), mg_sizes=None,
            flit_sizes=None, batch_sizes=(4,), replica_counts=(1, 2),
        )
        cache = ResultCache(tmp_path)
        first = run_sweep(spec, cache=cache)
        second = run_sweep(spec, cache=cache)
        assert second.stats.cache_hits == 2
        for a, b in zip(first.points, second.points):
            assert a.report == b.report
            assert b.replicas == a.replicas
        assert second.points[1].replicas == 2

    def test_schema_v5_carries_the_replica_count(self):
        # The schema bump that introduced the replicas key: the version
        # participates in every key, so all v4 entries are misses now.
        assert CACHE_SCHEMA_VERSION >= 5

    def test_point_dict_has_replicas_column(self):
        arch = small_test_arch()
        row = evaluate_fast(
            "tiny_cnn", arch, "dp", 8, 10, batch=4, replicas=2
        ).to_dict()
        assert row["replicas"] == 2
        plain = evaluate_fast("tiny_cnn", arch, "dp", 8, 10).to_dict()
        assert plain["replicas"] == 1


class TestFaultPlanAxis:
    """The PR-7 availability axis: fault plans in the cross product."""

    def _plan(self):
        from repro.faults import FaultPlan, ReplicaCrash, RetryPolicy

        return FaultPlan(
            events=(ReplicaCrash(replica=1, at_cycle=200),),
            retry=RetryPolicy(max_attempts=3, backoff_cycles=10),
        )

    def test_fault_axis_in_cross_product(self):
        plan = self._plan()
        spec = tiny_spec(
            models=("tiny_cnn",), strategies=("dp",), mg_sizes=None,
            flit_sizes=None, batch_sizes=(4,), replica_counts=(3,),
            fault_plans=(None, plan),
        )
        assert len(spec) == 2
        assert [p.fault_plan for p in spec.points()] == [None, plan]

    def test_rejects_non_plan_entries(self):
        with pytest.raises(ConfigError, match="fault plans"):
            tiny_spec(fault_plans=("plan.json",))
        with pytest.raises(ConfigError, match="fault plans"):
            tiny_spec(fault_plans=())

    def test_fault_plan_in_cache_key(self):
        arch = small_test_arch()
        plain = point_key("tiny_cnn", arch, "dp", 8, 10, None, 1, 4, None, 3)
        faulted = point_key(
            "tiny_cnn", arch, "dp", 8, 10, None, 1, 4, None, 3,
            fault_fingerprint=self._plan().fingerprint(),
        )
        assert plain != faulted

    def test_fault_points_match_direct_evaluation(self):
        arch = small_test_arch()
        plan = self._plan()
        spec = tiny_spec(
            models=("tiny_cnn",), strategies=("dp",), mg_sizes=None,
            flit_sizes=None, batch_sizes=(6,), replica_counts=(3,),
            fault_plans=(None, plan),
        )
        result = run_sweep(spec)
        for point in result.points:
            direct = evaluate_fast(
                "tiny_cnn", arch, "dp", 8, 10, batch=6, replicas=3,
                fault_plan=point.fault_plan,
            )
            assert point.report == direct.report

    def test_fault_points_share_one_base_analysis(self, monkeypatch):
        import repro.explore as explore

        calls = []
        real_plan_graph = explore.plan_graph

        def counting_plan_graph(*args, **kwargs):
            calls.append(1)
            return real_plan_graph(*args, **kwargs)

        monkeypatch.setattr(explore, "plan_graph", counting_plan_graph)
        spec = tiny_spec(
            models=("tiny_cnn",), strategies=("dp",), mg_sizes=None,
            flit_sizes=None, batch_sizes=(6,), replica_counts=(1, 3),
            fault_plans=(None, self._plan()),
        )
        result = run_sweep(spec)
        assert len(result.points) == 4
        assert len(calls) == 1

    def test_fault_sweep_round_trips_through_cache(self, tmp_path):
        spec = tiny_spec(
            models=("tiny_cnn",), strategies=("dp",), mg_sizes=None,
            flit_sizes=None, batch_sizes=(6,), replica_counts=(3,),
            fault_plans=(None, self._plan()),
        )
        cache = ResultCache(tmp_path)
        first = run_sweep(spec, cache=cache)
        second = run_sweep(spec, cache=ResultCache(tmp_path))
        assert second.stats.cache_hits == 2
        for a, b in zip(first.points, second.points):
            assert a.report == b.report

    def test_point_dict_has_fault_columns(self):
        arch = small_test_arch()
        row = evaluate_fast(
            "tiny_cnn", arch, "dp", 8, 10, batch=6, replicas=3,
            fault_plan=self._plan(),
        ).to_dict()
        assert "crash" in row["fault_plan"]
        assert row["dropped"] == 0
        assert row["goodput_inf_s"] > 0
        plain = evaluate_fast("tiny_cnn", arch, "dp", 8, 10).to_dict()
        assert plain["fault_plan"] is None
        assert plain["dropped"] == 0

    def test_spec_to_dict_is_json_safe(self):
        spec = tiny_spec(fault_plans=(None, self._plan()))
        payload = json.dumps(spec.to_dict())
        assert "replica_crash" in payload

    def test_schema_v6_carries_the_fault_fingerprint(self):
        assert CACHE_SCHEMA_VERSION >= 6


class TestCacheCorruptionRecovery:
    """A corrupt cache entry is evicted and recomputed, never fatal."""

    TRIALS = 32

    def _store_one(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = tiny_spec(
            models=("tiny_cnn",), strategies=("dp",), mg_sizes=None,
            flit_sizes=None,
        )
        run_sweep(spec, cache=cache)
        key = spec.points()[0].cache_key(spec.arch())
        return spec, key, cache.path_for(key)

    def test_seeded_fuzz_recovers_from_any_corruption(self, tmp_path):
        import random

        spec, key, path = self._store_one(tmp_path)
        blob = path.read_bytes()
        rng = random.Random(1234)
        for trial in range(self.TRIALS):
            data = bytearray(blob)
            if trial % 2 == 0:
                cut = rng.randrange(0, len(data))
                data = data[:cut]
            else:
                pos = rng.randrange(0, len(data))
                data[pos] ^= 1 << rng.randrange(8)
            path.write_bytes(bytes(data))
            cache = ResultCache(tmp_path)
            report = cache.lookup(key)  # must never raise
            if report is None:
                # either a clean miss or a corrupt eviction; either way
                # the sweep recomputes and the cache heals itself
                result = run_sweep(spec, cache=cache)
                assert len(result.points) == 1
                assert path.exists()
                assert cache.lookup(key) is not None

    def test_corrupt_entry_is_evicted_with_warning(self, tmp_path, caplog):
        import logging

        _, key, path = self._store_one(tmp_path)
        path.write_text('{"schema":')
        cache = ResultCache(tmp_path)
        with caplog.at_level(logging.WARNING, logger="repro.explore_cache"):
            assert cache.lookup(key) is None
        assert cache.corrupt_evictions == 1
        assert not path.exists()
        assert any("corrupt" in r.message for r in caplog.records)

    def test_missing_entry_is_a_plain_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.lookup("0" * 64) is None
        assert cache.corrupt_evictions == 0

    def test_stale_schema_is_not_treated_as_corruption(self, tmp_path,
                                                       monkeypatch):
        import repro.explore_cache as explore_cache

        _, key, path = self._store_one(tmp_path)
        cache = ResultCache(tmp_path)
        with monkeypatch.context() as m:
            m.setattr(
                explore_cache, "CACHE_SCHEMA_VERSION",
                CACHE_SCHEMA_VERSION + 1,
            )
            assert cache.lookup(key) is None
        assert cache.corrupt_evictions == 0
        assert path.exists()


class TestManifestTornWrites:
    """A crash mid-append never breaks the next resume."""

    def test_torn_multibyte_tail_is_discarded(self, tmp_path):
        from repro.explore_cache import SweepManifest

        manifest = SweepManifest(tmp_path, "e" * 64)
        manifest.mark("a" * 64)
        manifest.mark("b" * 64)
        # a torn write that ends mid-way through a multibyte UTF-8
        # sequence: decoding must not raise, the tail is dropped
        with open(manifest.path, "ab") as fh:
            fh.write(b'{"key": "caf\xc3')
        assert SweepManifest(tmp_path, "e" * 64).load() == \
            frozenset({"a" * 64, "b" * 64})

    def test_binary_garbage_journal_yields_empty_set(self, tmp_path):
        from repro.explore_cache import SweepManifest

        manifest = SweepManifest(tmp_path, "d" * 64)
        manifest.path.parent.mkdir(parents=True, exist_ok=True)
        manifest.path.write_bytes(b"\xff\xfe\x00garbage\x80")
        assert manifest.load() == frozenset()
