"""Unit and property tests for the bit/math utilities."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils import ceil_div, clamp, prod
from repro.utils.bits import (
    extract_bits,
    insert_bits,
    popcount,
    sign_extend,
    to_twos_complement,
)


class TestMath:
    def test_ceil_div(self):
        assert ceil_div(10, 3) == 4
        assert ceil_div(9, 3) == 3
        assert ceil_div(0, 5) == 0

    def test_ceil_div_rejects_bad_divisor(self):
        with pytest.raises(ValueError):
            ceil_div(4, 0)

    def test_clamp(self):
        assert clamp(5, 0, 3) == 3
        assert clamp(-1, 0, 3) == 0
        assert clamp(2, 0, 3) == 2

    def test_clamp_rejects_empty_range(self):
        with pytest.raises(ValueError):
            clamp(1, 3, 0)

    def test_prod(self):
        assert prod([]) == 1
        assert prod([2, 3, 4]) == 24

    @given(st.integers(1, 10**6), st.integers(1, 10**4))
    def test_ceil_div_property(self, a, b):
        q = ceil_div(a, b)
        assert q * b >= a > (q - 1) * b


class TestBits:
    def test_popcount(self):
        assert popcount(0) == 0
        assert popcount(0b1011) == 3

    def test_popcount_rejects_negative(self):
        with pytest.raises(ValueError):
            popcount(-1)

    def test_extract_insert_round_trip(self):
        word = insert_bits(0, 5, 6, 0b101010)
        assert extract_bits(word, 5, 6) == 0b101010

    def test_insert_rejects_overflow(self):
        with pytest.raises(ValueError):
            insert_bits(0, 0, 3, 8)

    @given(st.integers(0, 2**32 - 1), st.integers(0, 26), st.integers(1, 6))
    def test_insert_extract_property(self, word, lo, width):
        value = word & ((1 << width) - 1)
        assert extract_bits(insert_bits(0, lo, width, value), lo, width) == value

    @given(st.integers(1, 31), st.data())
    def test_sign_round_trip(self, width, data):
        lo = -(1 << (width - 1))
        hi = (1 << (width - 1)) - 1
        value = data.draw(st.integers(lo, hi))
        assert sign_extend(to_twos_complement(value, width), width) == value
