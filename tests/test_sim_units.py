"""Direct simulator tests: hand-written programs through ChipSimulator."""

import numpy as np
import pytest

from repro.config import small_test_arch
from repro.config.arch import GLOBAL_BASE
from repro.errors import SimulationError
from repro.isa import (
    Category,
    Format,
    InstructionDescriptor,
    ISARegistry,
    Opcode,
    ProgramBuilder,
    SReg,
)
from repro.sim import ChipSimulator


def _run(programs, arch=None, image=None, registry=None, handlers=None):
    sim = ChipSimulator(
        arch or small_test_arch(),
        programs,
        registry=registry,
        global_image=image,
        extension_handlers=handlers,
    )
    report = sim.run()
    return sim, report


def _builder(registry=None):
    return ProgramBuilder(registry)


class TestScalarAndControl:
    def test_arithmetic_loop(self):
        b = _builder()
        b.li(1, 0)
        b.li(2, 5)
        b.li(3, 0)
        with b.loop(1, 2):
            b.emit("SC_ADDI", rs=3, rt=3, imm=2)
        # store result to global so we can observe it
        b.li(4, GLOBAL_BASE)
        b.emit("MEM_ST", rs=4, rt=3, offset=0)
        b.halt()
        sim, report = _run({0: b.finalize()})
        assert sim.memory.read_word(0, GLOBAL_BASE) == 10
        assert report.cycles > 0

    def test_r0_is_hardwired_zero(self):
        b = _builder()
        b.emit("SC_ADDI", rs=0, rt=0, imm=9)  # write to R0 ignored
        b.li(1, GLOBAL_BASE)
        b.emit("MEM_ST", rs=1, rt=0, offset=0)
        b.halt()
        sim, _ = _run({0: b.finalize()})
        assert sim.memory.read_word(0, GLOBAL_BASE) == 0

    def test_special_register_moves(self):
        b = _builder()
        b.emit("MV_S2G", rt=5, imm=int(SReg.CORE_ID))
        b.li(1, GLOBAL_BASE)
        b.emit("MEM_ST", rs=1, rt=5, offset=0)
        b.halt()
        programs = {2: b.finalize()}
        sim, _ = _run(programs)
        assert sim.memory.read_word(0, GLOBAL_BASE) == 2

    def test_runaway_detection(self):
        b = _builder()
        b.program.label("spin")
        b.emit("JMP", target="spin")
        b.halt()
        with pytest.raises(SimulationError):
            ChipSimulator(small_test_arch(), {0: b.finalize()}).cores[0].run(
                max_instructions=1000
            )


class TestMemoryOps:
    def test_copy_between_local_and_global(self):
        image = np.arange(64, dtype=np.uint8)
        b = _builder()
        b.li(1, GLOBAL_BASE)      # src
        b.li(2, 128)              # local dst
        b.li(3, 64)               # length
        b.emit("MEM_CPY", rs=1, rt=2, rd=3)
        b.li(4, GLOBAL_BASE + 256)
        b.emit("MEM_CPY", rs=2, rt=4, rd=3)
        b.halt()
        sim, _ = _run({0: b.finalize()}, image=np.concatenate(
            [image, np.zeros(512, np.uint8)]
        ))
        out = sim.memory.read_global(GLOBAL_BASE + 256, 64)
        assert np.array_equal(out.view(np.uint8), image)

    def test_gather_strided(self):
        b = _builder()
        # local[0:32] = pattern via global preload
        b.li(1, GLOBAL_BASE)
        b.li(2, 0)
        b.li(3, 32)
        b.emit("MEM_CPY", rs=1, rt=2, rd=3)
        b.set_sreg(SReg.CHUNK, 10, 2)
        b.set_sreg(SReg.STRIDE, 10, 8)
        b.emit("MV_G2S", rs=0, imm=0)  # no-op keeps builder simple
        b.li(4, 0)     # src
        b.li(5, 64)    # dst
        b.li(6, 4)     # count: 4 chunks of 2 bytes, stride 8
        b.emit("MEM_GATHER", rs=4, rt=5, rd=6)
        b.li(7, GLOBAL_BASE + 100)
        b.li(8, 8)
        b.emit("MEM_CPY", rs=5, rt=7, rd=8)
        b.halt()
        image = np.arange(32, dtype=np.uint8)
        sim, _ = _run({0: b.finalize()}, image=np.concatenate(
            [image, np.zeros(256, np.uint8)]
        ))
        out = sim.memory.read_global(GLOBAL_BASE + 100, 8).view(np.uint8)
        assert list(out) == [0, 1, 8, 9, 16, 17, 24, 25]

    def test_cross_core_isolation(self):
        # cores have separate local memories
        b0 = _builder()
        b0.li(1, 0)
        b0.li(2, 7)
        b0.emit("MEM_ST", rs=1, rt=2, offset=0)
        b0.halt()
        sim, _ = _run({0: b0.finalize()})
        assert sim.memory.read_word(1, 0) == 0


class TestVectorOps:
    def _vec_program(self, mnemonic, a, bvals=None, sregs=()):
        b = _builder()
        n = len(a)
        b.li(1, GLOBAL_BASE)
        b.li(2, 0)
        b.li(3, n)
        b.emit("MEM_CPY", rs=1, rt=2, rd=3)  # a -> local 0
        if bvals is not None:
            b.li(1, GLOBAL_BASE + n)
            b.li(2, 64)
            b.emit("MEM_CPY", rs=1, rt=2, rd=3)
        for sreg, value in sregs:
            b.set_sreg(sreg, 10, value)
        b.li(4, 0)
        b.li(5, 64)
        b.li(6, 128)
        b.li(7, n)
        fields = dict(rs=4, rd=6, re=7)
        if bvals is not None:
            fields["rt"] = 5
        b.emit(mnemonic, **fields)
        b.li(1, GLOBAL_BASE + 128)
        b.li(8, n)
        b.emit("MEM_CPY", rs=6, rt=1, rd=8)
        b.halt()
        data = np.zeros(512, np.int8)
        data[:n] = a
        if bvals is not None:
            data[n:2 * n] = bvals
        sim, _ = _run({0: b.finalize()}, image=data.view(np.uint8))
        return sim.memory.read_global(GLOBAL_BASE + 128, n)

    def test_vec_add_saturates(self):
        a = np.array([100, -100, 3], dtype=np.int8)
        out = self._vec_program("VEC_ADD", a, a)
        assert list(out) == [127, -128, 6]

    def test_vec_relu(self):
        a = np.array([-5, 0, 9], dtype=np.int8)
        assert list(self._vec_program("VEC_RELU", a)) == [0, 0, 9]

    def test_vec_max(self):
        a = np.array([1, -2, 3], dtype=np.int8)
        b = np.array([0, 5, 3], dtype=np.int8)
        assert list(self._vec_program("VEC_MAX", a, b)) == [1, 5, 3]

    def test_vec_sigmoid_lut(self):
        from repro.graph.quantize import SIGMOID_LUT, apply_lut

        a = np.array([-64, 0, 64], dtype=np.int8)
        out = self._vec_program("VEC_SIGMOID", a)
        assert np.array_equal(out, apply_lut(a, SIGMOID_LUT))


class TestCIMUnit:
    def test_mvm_matches_numpy(self):
        rng = np.random.default_rng(3)
        rows, cols = 16, 8
        weights = rng.integers(-64, 64, (rows, cols), dtype=np.int8)
        vec = rng.integers(-100, 100, rows, dtype=np.int8)

        b = _builder()
        # stage weights global -> local 0, vector -> local 256
        b.li(1, GLOBAL_BASE)
        b.li(2, 0)
        b.li(3, rows * cols)
        b.emit("MEM_CPY", rs=1, rt=2, rd=3)
        b.li(1, GLOBAL_BASE + rows * cols)
        b.li(2, 256)
        b.li(3, rows)
        b.emit("MEM_CPY", rs=1, rt=2, rd=3)
        b.set_sreg(SReg.MVM_ROWS, 10, rows)
        b.set_sreg(SReg.MVM_COLS, 10, cols)
        b.li(4, 0)
        b.li(5, 0)  # macro group 0
        b.emit("CIM_LOAD", rs=4, rt=5)
        b.li(6, 256)
        b.li(7, 512)
        b.emit("CIM_MVM", rs=6, rt=5, re=7, flags=0)
        b.emit("CIM_MVM", rs=6, rt=5, re=7, flags=1)  # accumulate once more
        b.li(1, GLOBAL_BASE + 300)
        b.li(8, 4 * cols)
        b.emit("MEM_CPY", rs=7, rt=1, rd=8)
        b.halt()

        image = np.zeros(1024, np.int8)
        image[: rows * cols] = weights.reshape(-1)
        image[rows * cols: rows * cols + rows] = vec
        sim, report = _run({0: b.finalize()}, image=image.view(np.uint8))
        out = sim.memory.read_global(GLOBAL_BASE + 300, 4 * cols).view(np.int32)
        expected = 2 * (vec.astype(np.int32) @ weights.astype(np.int32))
        assert np.array_equal(out, expected)
        assert report.macs == 2 * rows * cols

    def test_mvm_on_unloaded_mg_fails(self):
        b = _builder()
        b.li(1, 0)
        b.li(2, 1)
        b.li(3, 64)
        b.emit("CIM_MVM", rs=1, rt=2, re=3)
        b.halt()
        with pytest.raises(SimulationError):
            _run({0: b.finalize()})


class TestCommunication:
    def test_send_recv_pair(self):
        payload = np.arange(16, dtype=np.uint8)
        sender = _builder()
        sender.li(1, GLOBAL_BASE)
        sender.li(2, 0)
        sender.li(3, 16)
        sender.emit("MEM_CPY", rs=1, rt=2, rd=3)
        sender.li(4, 1)  # destination core
        sender.emit("SEND", rs=2, rt=4, rd=3)
        sender.emit("BARRIER")
        sender.halt()

        receiver = _builder()
        receiver.li(1, 64)
        receiver.li(2, 0)  # source core
        receiver.li(3, 16)
        receiver.emit("RECV", rs=1, rt=2, rd=3)
        receiver.li(4, GLOBAL_BASE + 128)
        receiver.emit("MEM_CPY", rs=1, rt=4, rd=3)
        receiver.emit("BARRIER")
        receiver.halt()

        sim, report = _run(
            {0: sender.finalize(), 1: receiver.finalize()},
            image=np.concatenate([payload, np.zeros(256, np.uint8)]),
        )
        out = sim.memory.read_global(GLOBAL_BASE + 128, 16).view(np.uint8)
        assert np.array_equal(out, payload)
        assert report.noc_bytes >= 16

    def test_recv_length_mismatch_detected(self):
        sender = _builder()
        sender.li(1, 0)
        sender.li(2, 1)
        sender.li(3, 8)
        sender.emit("SEND", rs=1, rt=2, rd=3)
        sender.halt()
        receiver = _builder()
        receiver.li(1, 0)
        receiver.li(2, 0)
        receiver.li(3, 4)  # expects 4, message has 8
        receiver.emit("RECV", rs=1, rt=2, rd=3)
        receiver.halt()
        with pytest.raises(SimulationError):
            _run({0: sender.finalize(), 1: receiver.finalize()})

    def test_barrier_synchronises_clocks(self):
        fast = _builder()
        fast.emit("BARRIER")
        fast.halt()
        slow = _builder()
        for _ in range(50):
            slow.emit("NOP")
        slow.emit("BARRIER")
        slow.halt()
        sim, _ = _run({0: fast.finalize(), 1: slow.finalize()})
        assert abs(sim.cores[0].clock - sim.cores[1].clock) <= 2

    def test_deadlock_reported(self):
        lonely = _builder()
        lonely.li(1, 0)
        lonely.li(2, 1)
        lonely.li(3, 4)
        lonely.emit("RECV", rs=1, rt=2, rd=3)  # nobody ever sends
        lonely.halt()
        with pytest.raises(SimulationError, match="deadlock"):
            _run({0: lonely.finalize()})


class TestExtensionInstructions:
    def test_custom_instruction_simulates(self):
        registry = ISARegistry()
        registry.register(InstructionDescriptor(
            mnemonic="VEC_NEG",
            opcode=int(Opcode.EXT0),
            category=Category.VECTOR,
            fmt=Format.VEC,
            operands=("rs", "rd", "re"),
            latency=4,
            energy_pj=2.0,
        ))

        def neg_handler(core, t):
            n = core.regs[t[4]]
            data = core.chip.memory.read(core.core_id, core.regs[t[1]], n)
            core.chip.memory.write(core.core_id, core.regs[t[3]], -data)

        b = _builder(registry)
        b.li(1, GLOBAL_BASE)
        b.li(2, 0)
        b.li(3, 4)
        b.emit("MEM_CPY", rs=1, rt=2, rd=3)
        b.li(4, 64)
        b.emit("VEC_NEG", rs=2, rd=4, re=3)
        b.li(5, GLOBAL_BASE + 64)
        b.emit("MEM_CPY", rs=4, rt=5, rd=3)
        b.halt()
        image = np.array([1, 2, 3, 4], dtype=np.int8)
        sim, _ = _run(
            {0: b.finalize()},
            image=np.concatenate([image, np.zeros(128, np.int8)]).view(np.uint8),
            registry=registry,
            handlers={"VEC_NEG": neg_handler},
        )
        out = sim.memory.read_global(GLOBAL_BASE + 64, 4)
        assert list(out) == [-1, -2, -3, -4]
