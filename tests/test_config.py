"""Tests for the hierarchical hardware abstraction and parameter library."""

import pytest

from repro.config import (
    ArchConfig,
    EnergyConfig,
    MacroConfig,
    arch_from_dict,
    arch_to_dict,
    default_arch,
    load_arch,
    save_arch,
    small_test_arch,
    with_flit_bytes,
    with_mg_size,
    with_num_cores,
)
from repro.errors import ConfigError


class TestTable1Defaults:
    """The default preset must match the paper's Table I."""

    def test_chip_level(self):
        arch = default_arch()
        assert arch.chip.num_cores == 64
        assert arch.chip.noc.flit_bytes == 8
        assert arch.chip.global_memory.size_bytes == 16 * 1024 * 1024

    def test_core_level(self):
        arch = default_arch()
        assert arch.chip.core.cim_unit.num_macro_groups == 16
        assert arch.chip.core.cim_unit.macro_group.num_macros == 8
        assert arch.chip.core.local_memory.size_bytes == 512 * 1024

    def test_unit_level(self):
        macro = default_arch().chip.core.cim_unit.macro_group.macro
        assert (macro.rows, macro.cols) == (512, 64)
        assert (macro.element_rows, macro.element_bits) == (32, 8)

    def test_derived_tile_shape(self):
        arch = default_arch()
        assert arch.mg_tile_rows == 512
        assert arch.mg_tile_cols == 64  # 8 macros x 8 int8 columns
        assert arch.core_cim_capacity_bytes == 512 * 1024

    def test_validates(self):
        default_arch().validate()
        small_test_arch().validate()


class TestVariants:
    def test_with_mg_size(self):
        arch = with_mg_size(default_arch(), 4)
        assert arch.chip.core.cim_unit.macro_group.num_macros == 4
        assert arch.mg_tile_cols == 32

    def test_with_flit_bytes(self):
        arch = with_flit_bytes(default_arch(), 16)
        assert arch.chip.noc.flit_bytes == 16

    def test_with_num_cores(self):
        arch = with_num_cores(default_arch(), 16)
        assert arch.num_cores == 16

    def test_variants_do_not_mutate_base(self):
        base = default_arch()
        with_mg_size(base, 4)
        assert base.chip.core.cim_unit.macro_group.num_macros == 8


class TestValidation:
    def test_bad_macro_cols(self):
        with pytest.raises(ConfigError):
            MacroConfig(cols=60).validate()  # not a weight_bits multiple

    def test_bad_element_rows(self):
        with pytest.raises(ConfigError):
            MacroConfig(rows=100, element_rows=32).validate()

    def test_negative_energy(self):
        with pytest.raises(ConfigError):
            EnergyConfig(cim_mac_pj=-1.0).validate()

    def test_mesh_positions(self):
        arch = default_arch()
        rows, cols = arch.chip.mesh_dims
        assert rows * cols >= 64
        assert arch.chip.core_position(0) == (0, 0)
        assert arch.chip.hop_distance(0, 63) == 14  # (7,7) in an 8x8 mesh

    def test_core_position_out_of_range(self):
        with pytest.raises(ConfigError):
            default_arch().chip.core_position(64)


class TestSerialization:
    def test_dict_round_trip(self):
        arch = default_arch()
        assert arch_from_dict(arch_to_dict(arch)) == arch

    def test_file_round_trip(self, tmp_path):
        arch = small_test_arch()
        path = tmp_path / "arch.json"
        save_arch(arch, path)
        assert load_arch(path) == arch

    def test_unknown_key_rejected(self):
        data = arch_to_dict(default_arch())
        data["chip"]["bogus_field"] = 1
        with pytest.raises(ConfigError):
            arch_from_dict(data)

    def test_malformed_file(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(ConfigError):
            load_arch(path)


class TestEnergyModel:
    def test_static_power_units(self):
        # 1000 mW at 1 GHz -> 1000 pJ per 1 ns cycle
        assert EnergyConfig(static_mw=1000.0).static_pj_per_cycle(1000) == 1000.0

    def test_mvm_timing_derivation(self):
        cim = default_arch().chip.core.cim_unit
        assert cim.mvm_issue_interval == 8  # bit-serial over 8 activation bits
        assert cim.mvm_latency == 8 + cim.mvm_setup_cycles + cim.pipeline_depth
