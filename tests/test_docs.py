"""Documentation link checker: relative links in README/docs must resolve.

Docs rot silently: a renamed file or retitled section breaks links
without failing anything.  This test walks every markdown file in the
repo root and ``docs/``, extracts inline links, and verifies that

- relative file targets exist on disk, and
- anchor fragments (``file.md#section``) match a real heading slug in
  the target file (GitHub's slug rules: lowercase, punctuation
  stripped, spaces to dashes).

External (``http``/``https``/``mailto``) links are skipped — CI must
not depend on the network.
"""

import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]

#: Markdown files whose links are checked.
DOC_FILES = sorted(
    [
        *REPO_ROOT.glob("*.md"),
        *(REPO_ROOT / "docs").glob("*.md"),
    ]
)

#: inline markdown links: [text](target) -- images excluded via (?<!!)
_LINK_RE = re.compile(r"(?<!!)\[[^\]]+\]\(([^)\s]+)\)")
_HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
_CODE_FENCE_RE = re.compile(r"```.*?```", re.DOTALL)


def github_slug(heading: str) -> str:
    """GitHub's anchor slug for a heading (backticks/punctuation drop)."""
    text = heading.strip().lower()
    text = text.replace("`", "")
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def heading_slugs(path: Path) -> set:
    text = _CODE_FENCE_RE.sub("", path.read_text())
    return {github_slug(m.group(1)) for m in _HEADING_RE.finditer(text)}


def iter_links(path: Path):
    text = _CODE_FENCE_RE.sub("", path.read_text())
    for match in _LINK_RE.finditer(text):
        yield match.group(1)


def test_doc_files_discovered():
    names = {p.name for p in DOC_FILES}
    assert {"README.md", "ARCHITECTURE.md", "CLI.md"} <= names


@pytest.mark.parametrize("doc", DOC_FILES, ids=lambda p: str(p.relative_to(REPO_ROOT)))
def test_relative_links_resolve(doc):
    broken = []
    for target in iter_links(doc):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        path_part, _, fragment = target.partition("#")
        if path_part:
            resolved = (doc.parent / path_part).resolve()
            if not resolved.exists():
                broken.append(f"{target}: file {path_part!r} not found")
                continue
        else:
            resolved = doc
        if fragment:
            if resolved.suffix != ".md":
                continue
            if fragment not in heading_slugs(resolved):
                broken.append(
                    f"{target}: no heading with slug {fragment!r} in "
                    f"{resolved.name}"
                )
    assert not broken, f"{doc.name}: broken links:\n  " + "\n  ".join(broken)
