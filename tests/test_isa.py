"""Tests for the ISA: formats, encoding, assembly, programs, extensions."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ISAError
from repro.isa import (
    FIELD_LAYOUT,
    Category,
    Format,
    Instruction,
    InstructionDescriptor,
    ISARegistry,
    Opcode,
    Program,
    ProgramBuilder,
    decode,
    default_registry,
    encode,
    format_instruction,
    format_program,
    parse_line,
    parse_program,
)

class TestFormats:
    def test_all_formats_are_32_bit(self):
        for fmt, layout in FIELD_LAYOUT.items():
            total = sum(width for _, width in layout.values())
            assert total == 32, f"{fmt} fields sum to {total} bits"

    def test_fields_do_not_overlap(self):
        for fmt, layout in FIELD_LAYOUT.items():
            seen = set()
            for lo, width in layout.values():
                bits = set(range(lo, lo + width))
                assert not bits & seen, f"{fmt} has overlapping fields"
                seen |= bits

    def test_opcode_always_at_top(self):
        for layout in FIELD_LAYOUT.values():
            assert layout["opcode"] == (26, 6)


def _field_strategy(desc, name, width):
    if desc.field_signed(name):
        return st.integers(-(1 << (width - 1)), (1 << (width - 1)) - 1)
    return st.integers(0, (1 << width) - 1)


@st.composite
def _random_instruction(draw, declared_only=False):
    registry = default_registry()
    mnemonic = draw(st.sampled_from(registry.mnemonics()))
    desc = registry.lookup(mnemonic)
    layout = FIELD_LAYOUT[desc.fmt]
    fields = {}
    for name, (_, width) in layout.items():
        if name == "opcode":
            continue
        if declared_only and name not in desc.operands:
            continue
        value = draw(_field_strategy(desc, name, width))
        if value:
            fields[name] = value
    return Instruction(mnemonic, fields)


class TestEncoding:
    @given(_random_instruction())
    def test_encode_decode_round_trip(self, instr):
        word = encode(instr)
        assert 0 <= word < (1 << 32)
        decoded = decode(word)
        assert decoded.mnemonic == instr.mnemonic
        expected = {k: v for k, v in instr.fields.items() if v != 0}
        assert decoded.fields == expected

    def test_field_overflow_rejected(self):
        with pytest.raises(ISAError):
            encode(Instruction("SC_ADDI", {"rs": 1, "rt": 2, "imm": 600}))

    def test_unresolved_target_rejected(self):
        with pytest.raises(ISAError):
            encode(Instruction("JMP", {}, target="loop"))

    def test_unknown_field_rejected(self):
        with pytest.raises(ISAError):
            encode(Instruction("JMP", {"funct": 1}))

    def test_decode_unknown_opcode(self):
        with pytest.raises(ISAError):
            decode(0x3B << 26)  # unassigned opcode

    @pytest.mark.parametrize("value", [0x8000, 0xABCD, 0xFFFF])
    def test_sc_ori_high_immediates_round_trip(self, value):
        """SC_ORI zero-extends: offsets >= 0x8000 must survive encoding.

        Regression for the ROADMAP item: the 16-bit offset field is
        signed at the format level, but ORI's semantics are unsigned, so
        the descriptor overrides the interpretation.
        """
        for mnemonic in ("SC_ORI", "SC_LUI"):
            fields = {"rt": 3, "offset": value}
            if mnemonic == "SC_ORI":
                fields["rs"] = 3
            instr = Instruction(mnemonic, fields)
            decoded = decode(encode(instr))
            assert decoded.mnemonic == mnemonic
            assert decoded.offset == value

    def test_branch_offsets_stay_signed(self):
        """CTL-format branches keep two's-complement offsets."""
        decoded = decode(encode(Instruction("BLT", {"rs": 1, "rt": 2,
                                                    "offset": -4})))
        assert decoded.offset == -4
        with pytest.raises(ISAError):
            encode(Instruction("BLT", {"rs": 1, "rt": 2, "offset": 0x8000}))

    def test_li_expansion_encodes_any_address(self):
        """li-expanded 32-bit constants with bit 15 set encode/decode."""
        builder = ProgramBuilder()
        builder.li(1, 0x4000_8000)  # GLOBAL_BASE | 0x8000: SC_ORI 0x8000
        program = builder.finalize()
        words = program.encode_all()
        assert [decode(w).mnemonic for w in words] == ["SC_LUI", "SC_ORI"]
        assert decode(words[1]).offset == 0x8000


class TestAssembly:
    def test_line_round_trip(self):
        instr = parse_line("CIM_MVM R7, R10, R9, 1")
        assert instr.mnemonic == "CIM_MVM"
        assert (instr.rs, instr.rt, instr.re, instr.flags) == (7, 10, 9, 1)
        assert format_instruction(instr) == "CIM_MVM R7, R10, R9, 1"

    def test_comments_and_blanks(self):
        assert parse_line("// just a comment") is None
        assert parse_line("   ") is None

    def test_wrong_operand_count(self):
        with pytest.raises(ISAError):
            parse_line("SC_ADD R1, R2")

    def test_register_expected(self):
        with pytest.raises(ISAError):
            parse_line("SC_ADD 1, R2, R3")

    def test_program_round_trip(self):
        text = """
        start:
          SC_ADDI R1, R1, 1
          BLT R1, R2, start
          HALT
        """
        program = parse_program(text)
        program.finalize()
        assert program.instructions[1].offset == -1
        rendered = format_program(program)
        assert "start:" in rendered and "HALT" in rendered

    def test_line_numbers_in_errors(self):
        with pytest.raises(ISAError, match="line 2"):
            parse_program("NOP\nBOGUS R1\n")

    @given(_random_instruction(declared_only=True))
    def test_asm_round_trip_property(self, instr):
        line = format_instruction(instr)
        parsed = parse_line(line)
        assert parsed.mnemonic == instr.mnemonic
        assert {k: v for k, v in parsed.fields.items() if v} == {
            k: v for k, v in instr.fields.items() if v
        }


class TestProgram:
    def test_labels_resolve_forward_and_back(self):
        program = Program()
        program.label("top")
        program.emit("NOP")
        program.emit("JMP", target="end")
        program.emit("JMP", target="top")
        program.label("end")
        program.finalize()
        assert program.instructions[1].offset == 2
        assert program.instructions[2].offset == -2

    def test_duplicate_label_rejected(self):
        program = Program()
        program.label("a")
        with pytest.raises(ISAError):
            program.label("a")

    def test_undefined_label_rejected(self):
        program = Program()
        program.emit("JMP", target="nowhere")
        with pytest.raises(ISAError):
            program.finalize()

    def test_encode_all(self):
        program = Program()
        program.emit("NOP")
        program.emit("HALT")
        words = program.encode_all()
        assert len(words) == 2
        assert program.size_bytes() == 8


class TestProgramBuilder:
    def test_li_small(self):
        builder = ProgramBuilder()
        builder.li(1, 42)
        assert [i.mnemonic for i in builder.program] == ["SC_ADDI"]

    def test_li_large_expands(self):
        builder = ProgramBuilder()
        builder.li(1, 418816)
        names = [i.mnemonic for i in builder.program]
        assert names == ["SC_LUI", "SC_ORI"]

    def test_li_rejects_r0(self):
        with pytest.raises(ISAError):
            ProgramBuilder().li(0, 1)

    def test_loop_emits_backedge(self):
        builder = ProgramBuilder()
        builder.li(1, 0)
        builder.li(2, 4)
        with builder.loop(1, 2):
            builder.emit("NOP")
        program = builder.finalize()
        assert program.instructions[-1].mnemonic == "BLT"
        assert program.instructions[-1].offset < 0


class TestExtensions:
    def test_register_custom_instruction(self):
        registry = ISARegistry()
        desc = InstructionDescriptor(
            mnemonic="VEC_GELU",
            opcode=int(Opcode.EXT0),
            category=Category.VECTOR,
            fmt=Format.VEC,
            operands=("rs", "rd", "re"),
            description="custom gelu activation",
            latency=6,
            energy_pj=12.0,
        )
        registry.register(desc)
        assert "VEC_GELU" in registry
        instr = parse_line("VEC_GELU R1, R2, R3", registry)
        word = encode(instr, registry)
        assert decode(word, registry).mnemonic == "VEC_GELU"

    def test_extension_requires_latency(self):
        registry = ISARegistry()
        desc = InstructionDescriptor(
            "X_NOP", int(Opcode.EXT1), Category.SCALAR, Format.CTL
        )
        with pytest.raises(ISAError):
            registry.register(desc)

    def test_duplicate_opcode_rejected(self):
        registry = ISARegistry()
        desc = InstructionDescriptor(
            "MY_MVM", int(Opcode.CIM_MVM), Category.CIM, Format.CIM, latency=1
        )
        with pytest.raises(ISAError):
            registry.register(desc)

    def test_free_extension_opcodes(self):
        registry = ISARegistry()
        free = registry.free_extension_opcodes()
        assert len(free) == 4


class TestBlockMetadata:
    """Loop-block discovery and content addressing (execution-engine
    metadata consumed by repro.sim.blockengine)."""

    def _counted_loop(self, body_nops=3, pre_nops=0):
        b = ProgramBuilder()
        for _ in range(pre_nops):
            b.emit("NOP")
        b.li(1, 0)
        b.li(2, 10)
        with b.loop(1, 2):
            for _ in range(body_nops):
                b.emit("NOP")
        b.halt()
        return b.finalize()

    def test_loop_blocks_found(self):
        program = self._counted_loop()
        blocks = program.loop_blocks()
        assert len(blocks) == 1
        block = blocks[0]
        assert program[block.branch].mnemonic == "BLT"
        assert program[block.branch].fields["offset"] == -block.span + 1
        assert block.span == 3 + 2  # body NOPs + SC_ADDI + BLT

    def test_control_flow_inside_span_disqualifies(self):
        b = ProgramBuilder()
        b.li(1, 0)
        b.li(2, 4)
        head = b.program.new_label("head")
        b.program.place_label(head)
        b.emit("NOP")
        b.emit("BARRIER")           # control transfer inside the span
        b.emit("SC_ADDI", rs=1, rt=1, imm=1)
        b.emit("BLT", rs=1, rt=2, target=head)
        b.halt()
        assert b.finalize().loop_blocks() == []

    def test_block_digest_position_independent(self):
        a = self._counted_loop(pre_nops=0)
        c = self._counted_loop(pre_nops=5)
        da = a.block_digest(a.loop_blocks()[0])
        dc = c.block_digest(c.loop_blocks()[0])
        assert da == dc
        assert a.content_digest() != c.content_digest()

    def test_digests_invalidate_on_mutation(self):
        program = self._counted_loop()
        before = program.content_digest()
        program.emit("NOP")
        program.finalize()
        assert program.content_digest() != before
