"""Queueing battery for the replicated serving :class:`repro.serve.Fleet`.

Locks down the fleet invariants PR 6 introduces: a one-replica fleet is
bit-identical to a plain :class:`~repro.serve.Deployment`; round-robin
and join-shortest-queue dispatch conserve requests under seeded Poisson
arrivals (no drop, no duplicate); back-to-back aggregate throughput
scales linearly with the replica count; and the tail latency is flat
below fleet saturation but grows above it -- in both fidelity tiers.
"""

import pytest

from repro.artifact import save_artifact
from repro.config import small_test_arch
from repro.errors import ConfigError
from repro.serve import (
    Deployment,
    FixedRate,
    Fleet,
    PoissonArrivals,
    TraceArrivals,
)

MODEL_KW = dict(input_size=8, num_classes=10)


@pytest.fixture(scope="module")
def march():
    return small_test_arch()


def make_fleet(march, tier="fast", **kwargs):
    return Fleet("tiny_mlp", march, strategy="generic", tier=tier,
                 **MODEL_KW, **kwargs)


class TestSingleReplicaIdentity:
    """Fleet(replicas=1) is bit-identical to a plain Deployment."""

    @pytest.mark.parametrize("tier", ["cyclesim", "fast"])
    def test_bit_identical_to_deployment(self, march, tier):
        arrivals = PoissonArrivals(150000, seed=3)
        dep = Deployment("tiny_mlp", march, strategy="generic", tier=tier,
                         **MODEL_KW)
        plain = dep.submit(batch=5, arrivals=arrivals, seed=1)
        fleet = make_fleet(march, tier=tier, replicas=1).submit(
            batch=5, arrivals=PoissonArrivals(150000, seed=3), seed=1
        )
        assert fleet.replica_reports[0].to_dict() == plain.to_dict()
        assert fleet.input_finishes == plain.input_finishes
        assert fleet.releases == plain.releases
        assert fleet.makespan_cycles == plain.makespan_cycles
        assert fleet.arrival == plain.arrival
        assert fleet.total_energy_pj == plain.total_energy_pj
        assert fleet.assignments == [0] * 5

    def test_summary_names_fleet(self, march):
        fleet = make_fleet(march, replicas=2, policy="jsq")
        assert "2 replica(s)" in fleet.summary()
        assert "jsq" in fleet.summary()


class TestConservation:
    """Dispatch conserves requests: every input served exactly once."""

    @pytest.mark.parametrize("policy", ["rr", "jsq"])
    @pytest.mark.parametrize("replicas", [2, 4])
    def test_fast_tier_poisson(self, march, policy, replicas):
        batch = 16
        report = make_fleet(march, replicas=replicas, policy=policy).submit(
            batch=batch, arrivals=PoissonArrivals(200000, seed=7)
        )
        assert report.batch == batch
        assert len(report.assignments) == batch
        assert all(0 <= a < replicas for a in report.assignments)
        assert sum(report.replica_batches) == batch
        assert [r.batch for r in report.replica_reports] == (
            report.replica_batches
        )
        # Every input finishes strictly after it was released.
        assert all(
            f > r for f, r in zip(report.input_finishes, report.releases)
        )
        # The merged finishes are exactly the per-replica finishes.
        for replica, rep in enumerate(report.replica_reports):
            merged = [
                f for f, a in zip(report.input_finishes, report.assignments)
                if a == replica
            ]
            assert merged == rep.input_finishes

    @pytest.mark.parametrize("policy", ["rr", "jsq"])
    def test_cyclesim_validates_every_input(self, march, policy):
        report = make_fleet(
            march, tier="cyclesim", replicas=2, policy=policy
        ).submit(batch=6, arrivals=PoissonArrivals(150000, seed=5))
        assert report.validated
        assert sum(report.replica_batches) == 6

    def test_round_robin_assignment_law(self, march):
        report = make_fleet(march, replicas=3).submit(batch=7)
        assert report.assignments == [i % 3 for i in range(7)]

    def test_jsq_balances_a_burst(self, march):
        # Four simultaneous releases on two idle replicas must alternate.
        report = make_fleet(march, replicas=2, policy="jsq").submit(
            batch=4, arrivals=TraceArrivals([0, 0, 0, 0])
        )
        assert report.assignments == [0, 1, 0, 1]


class TestThroughputScaling:
    """Back-to-back aggregate rate scales linearly with replicas."""

    @pytest.mark.parametrize("replicas", [2, 4])
    def test_fast_tier_linear_scaling(self, march, replicas):
        batch = 16
        single = make_fleet(march, replicas=1).submit(batch=batch)
        fleet = make_fleet(march, replicas=replicas).submit(batch=batch)
        ratio = fleet.throughput_inf_per_s / single.throughput_inf_per_s
        assert ratio == pytest.approx(replicas, rel=1e-9)
        assert fleet.saturation_inf_per_s == pytest.approx(
            replicas * single.saturation_inf_per_s, rel=1e-9
        )

    def test_cyclesim_linear_scaling(self, march):
        batch = 8
        single = make_fleet(march, tier="cyclesim", replicas=1).submit(
            batch=batch, validate=False
        )
        fleet = make_fleet(march, tier="cyclesim", replicas=2).submit(
            batch=batch, validate=False
        )
        ratio = fleet.throughput_inf_per_s / single.throughput_inf_per_s
        assert ratio == pytest.approx(2.0, rel=1e-9)


class TestTailLatency:
    """p99 is flat below fleet saturation and grows above it."""

    @pytest.mark.parametrize("tier", ["cyclesim", "fast"])
    def test_p99_flat_below_growing_above(self, march, tier):
        fleet = make_fleet(march, tier=tier, replicas=2)
        sat = fleet.submit(batch=2, validate=False).saturation_inf_per_s
        kw = dict(batch=10, validate=False)
        low = fleet.submit(
            arrivals=FixedRate(0.3 * sat), **kw
        ).p99_latency_cycles
        mid = fleet.submit(
            arrivals=FixedRate(0.6 * sat), **kw
        ).p99_latency_cycles
        high = fleet.submit(
            arrivals=FixedRate(3.0 * sat), **kw
        ).p99_latency_cycles
        # Under-saturated: queues stay empty, the tail is the service
        # latency itself at either rate.
        assert low == mid
        # Over-saturated: queueing delay accumulates into the tail.
        assert high > mid

    def test_fleet_raises_saturation_over_single(self, march):
        single = make_fleet(march, replicas=1)
        fleet = make_fleet(march, replicas=4)
        sat1 = single.submit(batch=2).saturation_inf_per_s
        # A rate that over-saturates one replica sits well below a
        # 4-replica fleet's ceiling: its tail stays flat.
        rate = 2.0 * sat1
        lone = single.submit(batch=10, arrivals=FixedRate(rate))
        spread = fleet.submit(batch=10, arrivals=FixedRate(rate))
        assert spread.saturation_inf_per_s == pytest.approx(
            4 * sat1, rel=1e-9
        )
        assert spread.p99_latency_cycles < lone.p99_latency_cycles


class TestArtifactFleet:
    def test_fleet_from_artifact(self, march, tmp_path):
        from repro.workflow import compile_model

        compiled = compile_model("tiny_mlp", march, "dp", **MODEL_KW)
        path = tmp_path / "m.artifact"
        save_artifact(compiled, path)
        report = Fleet(str(path), march, replicas=2, tier="fast").submit(
            batch=4
        )
        assert report.batch == 4
        assert report.replicas == 2

    def test_artifact_rejects_compile_keywords(self, march, tmp_path):
        from repro.workflow import compile_model

        compiled = compile_model("tiny_mlp", march, "dp", **MODEL_KW)
        path = tmp_path / "m.artifact"
        save_artifact(compiled, path)
        with pytest.raises(ConfigError, match="artifact"):
            Fleet(str(path), march, replicas=2, chips=2)


class TestValidation:
    def test_bad_policy_rejected(self, march):
        with pytest.raises(ConfigError, match="policy"):
            make_fleet(march, replicas=2, policy="lifo")

    def test_bad_replica_count_rejected(self, march):
        with pytest.raises(ConfigError, match="replicas"):
            make_fleet(march, replicas=0)

    def test_empty_submission(self, march):
        report = make_fleet(march, replicas=2).submit(batch=0)
        assert report.batch == 0
        assert report.assignments == []
        assert report.makespan_cycles == 0


class TestFaultMetricDenominators:
    """Fault-plan metrics divide by completed work, never by submitted."""

    def make_all_drop_plan(self):
        from repro.faults import (
            FaultPlan,
            RetryPolicy,
            TransientRequestFailure,
        )

        return FaultPlan(
            events=(TransientRequestFailure(prob=1.0, seed=1),),
            retry=RetryPolicy(max_attempts=2, backoff_cycles=10),
        )

    @pytest.mark.parametrize("tier", ["cyclesim", "fast"])
    def test_all_dropped_zeroes_rates(self, march, tier):
        plan = self.make_all_drop_plan()
        report = make_fleet(march, tier=tier, replicas=2).submit(
            batch=4, validate=False, faults=plan
        )
        assert report.completed == 0 and report.dropped == 4
        # Work WAS done (failed attempts burn energy), so dividing by
        # the submitted batch would fabricate a finite per-inference
        # cost and throughput; completed-denominators report zero.
        assert report.total_energy_pj > 0
        assert report.energy_per_inference_mj == 0.0
        assert report.throughput_inf_per_s == 0.0
        assert report.goodput_inf_per_s == 0.0

    @pytest.mark.parametrize("tier", ["cyclesim", "fast"])
    def test_all_dropped_has_no_latency_percentiles(self, march, tier):
        plan = self.make_all_drop_plan()
        report = make_fleet(march, tier=tier, replicas=2).submit(
            batch=4, validate=False, faults=plan
        )
        assert report.latency_cycles == []
        assert report.p50_latency_cycles is None
        assert report.p99_latency_cycles is None
        assert report.p99_latency_ms is None
        assert report.to_dict()["p99_latency_cycles"] is None
        assert "n/a (0 completed)" in str(report)

    def test_partial_drop_divides_by_completed(self, march):
        from repro.faults import FaultPlan, ReplicaCrash, RetryPolicy

        # Replica 1 dies mid-stream with no retries: its requests drop,
        # the survivor's complete.
        plan = FaultPlan(
            events=(ReplicaCrash(replica=1, at_cycle=100),),
            retry=RetryPolicy(max_attempts=1),
        )
        report = make_fleet(march, replicas=2).submit(
            batch=6, validate=False, faults=plan
        )
        assert 0 < report.completed < report.batch
        seconds = report.makespan_cycles * report.cycle_ns / 1e9
        assert report.throughput_inf_per_s == pytest.approx(
            report.completed / seconds
        )
        assert report.energy_per_inference_mj == pytest.approx(
            report.total_energy_mj / report.completed
        )

    @pytest.mark.parametrize("tier", ["cyclesim", "fast"])
    def test_utilization_from_attempt_windows(self, march, tier):
        from repro.faults import FaultPlan, ReplicaCrash, RetryPolicy

        plan = FaultPlan(
            events=(ReplicaCrash(replica=1, at_cycle=100),),
            retry=RetryPolicy(max_attempts=3, backoff_cycles=10),
        )
        report = make_fleet(march, tier=tier, replicas=2).submit(
            batch=6, validate=False, faults=plan
        )
        assert len(report.replica_busy_cycles) == 2
        # Pin the derivation: busy attempt windows over the makespan.
        for r, sub in enumerate(report.replica_reports):
            expected = report.replica_busy_cycles[r] / (
                sub.num_shards * report.makespan_cycles
            )
            assert report.replica_utilization[r] == pytest.approx(expected)
        # The crashed replica ran a partial window, not zero and not a
        # phantom full service row.
        row = sum(report.replica_reports[0].shard_cycles)
        assert 0 < report.replica_busy_cycles[1] < row

    def test_fault_free_keeps_closed_form(self, march):
        report = make_fleet(march, replicas=2).submit(batch=4, validate=False)
        assert report.replica_busy_cycles == []
        for r, sub in enumerate(report.replica_reports):
            expected = sub.batch * sum(sub.shard_cycles) / (
                sub.num_shards * report.makespan_cycles
            )
            assert report.replica_utilization[r] == pytest.approx(expected)
