"""End-to-end integration: compile + simulate + bit-exact validation."""

import numpy as np
import pytest

from repro import compile_model, run_workflow, simulate
from repro.config import default_arch, small_test_arch, with_mg_size
from repro.sim.functional import golden_outputs, random_input

TINY_MODELS = ("tiny_mlp", "tiny_cnn", "tiny_resnet")
STRATEGIES = ("generic", "duplication", "dp")


class TestTinyModels:
    @pytest.mark.parametrize("model", TINY_MODELS)
    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_bit_exact_on_test_arch(self, model, strategy, arch):
        result = run_workflow(model, arch=arch, strategy=strategy)
        assert result.validated
        assert result.report.cycles > 0
        assert result.report.total_energy_pj > 0

    def test_strategies_agree_functionally(self, arch):
        outs = []
        for strategy in STRATEGIES:
            result = run_workflow("tiny_resnet", arch=arch, strategy=strategy)
            outs.append(result.outputs[result.graph.outputs[0]])
        assert np.array_equal(outs[0], outs[1])
        assert np.array_equal(outs[1], outs[2])

    def test_dp_not_slower_than_generic(self, arch):
        generic = run_workflow("tiny_resnet", arch=arch, strategy="generic")
        dp = run_workflow("tiny_resnet", arch=arch, strategy="dp")
        assert dp.report.cycles <= generic.report.cycles

    def test_deterministic_simulation(self, arch):
        a = run_workflow("tiny_cnn", arch=arch, strategy="dp", seed=5)
        b = run_workflow("tiny_cnn", arch=arch, strategy="dp", seed=5)
        assert a.report.cycles == b.report.cycles
        assert a.report.total_energy_pj == b.report.total_energy_pj

    def test_different_inputs_change_outputs(self, arch):
        compiled = compile_model("tiny_mlp", arch, "generic")
        r1 = simulate(compiled, random_input(compiled.graph, seed=1))
        r2 = simulate(compiled, random_input(compiled.graph, seed=2))
        name = compiled.graph.outputs[0]
        assert not np.array_equal(r1.outputs[name], r2.outputs[name])


class TestPaperModelsSmallScale:
    """The four-paper-model suite at reduced resolution on Table I."""

    @pytest.mark.parametrize(
        "model,input_size",
        [
            ("resnet18", 16),
            ("vgg19", 32),  # five 2x2 pools need at least 32 px
            ("mobilenetv2", 16),
            ("efficientnetb0", 16),
        ],
    )
    def test_bit_exact_small_inputs(self, model, input_size, table1_arch):
        result = run_workflow(
            model, arch=table1_arch, strategy="generic",
            input_size=input_size, num_classes=10,
        )
        assert result.validated

    def test_resnet18_dp_at_32px(self, table1_arch):
        result = run_workflow(
            "resnet18", arch=table1_arch, strategy="dp",
            input_size=32, num_classes=10,
        )
        assert result.validated

    def test_mg_size_variant_still_exact(self, table1_arch):
        arch = with_mg_size(table1_arch, 4)
        result = run_workflow(
            "resnet18", arch=arch, strategy="generic",
            input_size=16, num_classes=10,
        )
        assert result.validated


class TestGoldenModel:
    def test_conv_of_zero_input_is_requantized_bias(self):
        from repro.graph import GraphBuilder

        b = GraphBuilder("bias_only", seed=4)
        x = b.input((4, 4, 4))
        b.output(b.conv(x, 8, 3, 1, 1))
        graph = b.build()
        conv = graph.operators[1]
        zero = np.zeros((4, 4, 4), dtype=np.int8)
        out = golden_outputs(graph, {graph.input_operators[0].output: zero})
        from repro.graph.quantize import requantize

        expected = requantize(conv.bias.astype(np.int32), conv.qparams)
        value = next(iter(out.values()))
        assert np.array_equal(value[0, 0], expected)

    def test_shape_mismatch_rejected(self):
        from repro.errors import ValidationError
        from repro.graph.models import get_model

        graph = get_model("tiny_mlp")
        with pytest.raises(ValidationError):
            golden_outputs(graph, {"input_out": np.zeros(3, np.int8)})
