"""The async serving runtime: live sessions replay to the offline law.

The contract under test (``docs/ARCHITECTURE.md``, "The async serving
runtime"):

- **clock mapping**: a submission's release cycle comes from the
  pluggable clock (``at=`` overrides it); release cycles must be
  non-decreasing, because the offline FIFO admission law the session
  replays to depends on submission order;
- **online == offline**: a drained session's report is bit-identical
  to the same releases run through ``run_trace`` /
  :class:`~repro.serve.TraceArrivals` -- in both fidelity tiers, with
  ``replicas > 1``, under fault plans, and in resident-weights
  sessions -- and every live-resolved future agreed with that report
  *before* the simulators executed;
- **determinism**: the same scripted session twice produces
  byte-identical event streams and final reports, including under a
  mid-stream crash.
"""

import asyncio
import json

import pytest

from repro import (
    Deployment,
    FaultPlan,
    Fleet,
    ReplicaCrash,
    RetryPolicy,
    TransientRequestFailure,
    VirtualClock,
    WallClock,
    serve_forever,
)
from repro.errors import ConfigError
from repro.faults import DROP_MAX_ATTEMPTS


def _deployment(arch, tier="cyclesim", **kw):
    return Deployment(
        "tiny_mlp", arch, tier=tier, input_size=8, num_classes=10, **kw
    )


def _fleet(arch, tier="cyclesim", **kw):
    return Fleet(
        "tiny_mlp", arch, tier=tier, input_size=8, num_classes=10, **kw
    )


def _run(coro):
    return asyncio.run(coro)


async def _script(server, releases, **serve_kw):
    """Drive ``releases`` through a virtual-clock session; return
    (handle, completions, drained report)."""
    clock = VirtualClock()
    handle = await serve_forever(server, clock=clock, **serve_kw)
    futures = []
    for release in releases:
        clock.advance_to(release)
        futures.append(await handle.submit())
    report = await handle.drain()
    completions = [await f for f in futures]
    return handle, completions, report


# ---------------------------------------------------------------------------
# Clocks
# ---------------------------------------------------------------------------

class TestClocks:
    def test_virtual_clock_advances(self):
        clock = VirtualClock()
        assert clock.now_cycles() == 0
        assert clock.advance(100) == 100
        assert clock.advance_to(250) == 250
        assert clock.now_cycles() == 250

    def test_virtual_clock_never_rewinds(self):
        clock = VirtualClock(start_cycle=50)
        with pytest.raises(ConfigError, match="forward"):
            clock.advance(-1)
        with pytest.raises(ConfigError, match="forward"):
            clock.advance_to(49)
        with pytest.raises(ConfigError, match="cycle 0"):
            VirtualClock(start_cycle=-1)

    def test_wall_clock_is_monotonic_on_the_cycle_grid(self):
        clock = WallClock(cycle_ns=2.0)
        clock.start()
        a = clock.now_cycles()
        b = clock.now_cycles()
        assert 0 <= a <= b

    def test_wall_clock_rejects_bad_cycle_time(self):
        with pytest.raises(ConfigError, match="cycle_ns"):
            WallClock(cycle_ns=0)


# ---------------------------------------------------------------------------
# Submission semantics
# ---------------------------------------------------------------------------

class TestSubmission:
    def test_releases_must_be_non_decreasing(self, arch):
        async def scenario():
            handle = await _deployment(arch).serve_forever(
                clock=VirtualClock()
            )
            await handle.submit(at=100)
            with pytest.raises(ConfigError, match="non-decreasing"):
                await handle.submit(at=99)
            await handle.submit(at=100)  # ties are fine
            await handle.drain()

        _run(scenario())

    def test_negative_release_rejected(self, arch):
        async def scenario():
            handle = await _deployment(arch).serve_forever(
                clock=VirtualClock()
            )
            with pytest.raises(ConfigError, match=">= 0"):
                await handle.submit(at=-5)
            await handle.drain()

        _run(scenario())

    def test_session_is_single_use(self, arch):
        async def scenario():
            handle = await _deployment(arch).serve_forever(
                clock=VirtualClock()
            )
            await handle.submit()
            report = await handle.drain()
            assert report is await handle.drain()  # idempotent
            with pytest.raises(ConfigError, match="drained"):
                await handle.submit()

        _run(scenario())

    def test_close_cancels_pending_without_executing(self, arch):
        async def scenario():
            handle = await _deployment(arch).serve_forever(
                clock=VirtualClock()
            )
            future = await handle.submit()
            await handle.close()
            # Unfaulted sessions resolve at admission, so the future
            # already carries its completion; the session just never
            # executed (no report).
            assert handle.report is None
            assert future.done()

        _run(scenario())

    def test_faults_need_a_fleet(self, arch):
        plan = FaultPlan(events=(ReplicaCrash(replica=0, at_cycle=10),))
        with pytest.raises(ConfigError, match="Fleet"):
            _run(serve_forever(
                _deployment(arch), clock=VirtualClock(), faults=plan
            ))

    def test_server_must_be_deployment_or_fleet(self):
        with pytest.raises(ConfigError, match="Deployment or Fleet"):
            _run(serve_forever(object(), clock=VirtualClock()))


# ---------------------------------------------------------------------------
# Online == offline (the acceptance criterion)
# ---------------------------------------------------------------------------

RELEASES = [0, 200, 200, 900, 1500, 1500, 1500, 4000]


class TestOfflineEquivalence:
    @pytest.mark.parametrize("tier", ["cyclesim", "fast"])
    def test_single_deployment_matches_trace(self, arch, tier):
        handle, completions, live = _run(
            _script(_deployment(arch, tier=tier), RELEASES)
        )
        offline = _deployment(arch, tier=tier).run_trace(RELEASES)
        assert live.to_dict() == offline.to_dict()
        assert [c.finish_cycle for c in completions] == live.input_finishes
        assert [c.latency_cycles for c in completions] == [
            f - r for f, r in zip(live.input_finishes, RELEASES)
        ]

    @pytest.mark.parametrize("tier", ["cyclesim", "fast"])
    @pytest.mark.parametrize("policy", ["rr", "jsq"])
    def test_fleet_matches_trace(self, arch, tier, policy):
        fleet_kw = dict(replicas=2, policy=policy)
        handle, completions, live = _run(
            _script(_fleet(arch, tier=tier, **fleet_kw), RELEASES)
        )
        offline = _fleet(arch, tier=tier, **fleet_kw).run_trace(RELEASES)
        assert live.to_dict() == offline.to_dict()
        assert [c.replica for c in completions] == live.assignments

    @pytest.mark.parametrize("tier", ["cyclesim", "fast"])
    def test_faulted_fleet_matches_trace(self, arch, tier):
        plan = FaultPlan(
            events=(ReplicaCrash(replica=1, at_cycle=1000),),
            retry=RetryPolicy(max_attempts=3, backoff_cycles=50),
        )
        handle, completions, live = _run(_script(
            _fleet(arch, tier=tier, replicas=2), RELEASES, faults=plan,
        ))
        offline = _fleet(arch, tier=tier, replicas=2).run_trace(
            RELEASES, faults=plan
        )
        assert live.to_dict() == offline.to_dict()
        assert live.submitted == live.completed + live.dropped

    @pytest.mark.parametrize("tier", ["cyclesim", "fast"])
    def test_resident_session_matches_trace(self, arch, tier):
        dep_kw = dict(resident_weights=True)
        handle, completions, live = _run(
            _script(_deployment(arch, tier=tier, **dep_kw), RELEASES)
        )
        offline = _deployment(arch, tier=tier, **dep_kw).run_trace(RELEASES)
        assert live.to_dict() == offline.to_dict()
        assert live.load_cycles > 0
        warm = [
            e for e in handle.events
            if type(e).__name__ == "ReplicaStateChanged"
            and e.state == "warm"
        ]
        assert len(warm) == 1
        assert warm[0].at_cycle == live.load_cycles

    def test_resident_fleet_matches_trace(self, arch):
        kw = dict(replicas=2, resident_weights=True)
        handle, completions, live = _run(_script(_fleet(arch, **kw), RELEASES))
        offline = _fleet(arch, **kw).run_trace(RELEASES)
        assert live.to_dict() == offline.to_dict()

    def test_empty_session_drains_to_empty_report(self, arch):
        handle, completions, live = _run(_script(_deployment(arch), []))
        assert live.batch == 0
        assert completions == []


# ---------------------------------------------------------------------------
# Futures resolve with the promised cycles
# ---------------------------------------------------------------------------

class TestCompletionFutures:
    def test_unfaulted_future_resolves_at_admission(self, arch):
        async def scenario():
            clock = VirtualClock()
            handle = await _deployment(arch).serve_forever(clock=clock)
            future = await handle.submit(at=0)
            completion = await future  # resolves before drain
            assert handle.report is None
            assert completion.completed
            assert completion.replica == 0
            assert completion.latency_cycles == completion.finish_cycle
            report = await handle.drain()
            assert completion.finish_cycle == report.input_finishes[0]

        _run(scenario())

    def test_dropped_request_resolves_with_reason(self, arch):
        # Every attempt fails transiently -> max_attempts exhausts.
        plan = FaultPlan(
            events=(TransientRequestFailure(prob=1.0, seed=7),),
            retry=RetryPolicy(max_attempts=2, backoff_cycles=10),
        )
        async def scenario():
            fleet = _fleet(arch, tier="fast", replicas=2)
            handle = await fleet.serve_forever(
                clock=VirtualClock(), faults=plan
            )
            futures = [await handle.submit(at=i * 100) for i in range(4)]
            report = await handle.drain()
            completions = [await f for f in futures]
            assert all(c.dropped for c in completions)
            assert all(c.status == DROP_MAX_ATTEMPTS for c in completions)
            assert all(c.replica == -1 for c in completions)
            assert all(c.latency_cycles is None for c in completions)
            assert all(c.attempts == 2 for c in completions)
            assert report.dropped == 4

        _run(scenario())


# ---------------------------------------------------------------------------
# Determinism: byte-identical event streams
# ---------------------------------------------------------------------------

def _event_bytes(handle):
    return json.dumps([e.to_dict() for e in handle.events]).encode()


class TestDeterminism:
    def test_scripted_session_is_byte_identical(self, arch):
        runs = []
        for _ in range(2):
            handle, _, report = _run(
                _script(_fleet(arch, tier="fast", replicas=3,
                               policy="jsq"), RELEASES)
            )
            runs.append((
                _event_bytes(handle),
                json.dumps(report.to_dict(), sort_keys=True).encode(),
            ))
        assert runs[0] == runs[1]

    def test_mid_stream_crash_is_byte_identical(self, arch):
        plan = FaultPlan(
            events=(
                ReplicaCrash(replica=0, at_cycle=800),
                TransientRequestFailure(prob=0.5, seed=3),
            ),
            retry=RetryPolicy(
                max_attempts=3, backoff_cycles=25,
                per_request_deadline_cycles=100_000,
            ),
        )
        runs = []
        for _ in range(2):
            handle, _, report = _run(_script(
                _fleet(arch, tier="fast", replicas=2), RELEASES,
                faults=plan,
            ))
            runs.append((
                _event_bytes(handle),
                json.dumps(report.to_dict(), sort_keys=True).encode(),
            ))
        assert runs[0] == runs[1]
        crashed = [
            e for e in handle.events
            if type(e).__name__ == "ReplicaStateChanged"
            and e.state == "crashed"
        ]
        assert [e.replica for e in crashed] == [0]

    def test_event_stream_covers_every_request(self, arch):
        handle, completions, report = _run(
            _script(_fleet(arch, tier="fast", replicas=2), RELEASES)
        )
        admitted = [
            e.request for e in handle.events
            if type(e).__name__ == "RequestAdmitted"
        ]
        completed = [
            e.request for e in handle.events
            if type(e).__name__ == "RequestCompleted"
        ]
        assert admitted == list(range(len(RELEASES)))
        assert completed == list(range(len(RELEASES)))

    def test_subscriber_sees_the_recorded_stream(self, arch):
        async def scenario():
            clock = VirtualClock()
            handle = await _deployment(arch).serve_forever(clock=clock)
            queue = handle.subscribe()
            for release in RELEASES:
                clock.advance_to(release)
                await handle.submit()
            await handle.drain()
            streamed = []
            while True:
                event = await queue.get()
                if event is None:
                    break
                streamed.append(event)
            # The initial replica-state event fired before subscribe().
            assert streamed == handle.events[1:]

        _run(scenario())
