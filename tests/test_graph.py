"""Tests for the computation-graph IR, model zoo and serialisation."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import GraphError
from repro.graph import (
    GraphBuilder,
    OpKind,
    QuantParams,
    graph_from_dict,
    graph_to_dict,
    load_graph,
    save_graph,
)
from repro.graph.models import PAPER_SUITE, available_models, get_model
from repro.graph.quantize import (
    RELU6_CLIP,
    SIGMOID_LUT,
    SILU_LUT,
    add_i8,
    apply_lut,
    cmul_i8,
    default_qparams,
    requantize,
    saturate_i8,
)
from repro.graph.shape_inference import conv_output_hw, infer_output_shape


class TestShapeInference:
    def test_conv_shapes(self):
        assert conv_output_hw(32, 32, 3, 1, 1) == (32, 32)
        assert conv_output_hw(32, 32, 3, 2, 1) == (16, 16)
        assert conv_output_hw(224, 224, 7, 2, 3) == (112, 112)

    def test_window_too_large(self):
        with pytest.raises(GraphError):
            conv_output_hw(2, 2, 5, 1, 0)

    def test_add_shape_mismatch(self):
        with pytest.raises(GraphError):
            infer_output_shape(OpKind.ADD, [(4, 4, 8), (4, 4, 16)], {})

    def test_flatten(self):
        assert infer_output_shape(OpKind.FLATTEN, [(2, 3, 4)], {}) == (24,)

    def test_mul_channel_scale_check(self):
        with pytest.raises(GraphError):
            infer_output_shape(OpKind.MUL_CHANNEL, [(4, 4, 8), (4,)], {})


class TestGraphBuilder:
    def test_builds_valid_graph(self):
        b = GraphBuilder("t", seed=1)
        x = b.input((8, 8, 4))
        x = b.conv(x, 8, 3, 1, 1)
        x = b.relu(x)
        b.output(x)
        g = b.build()
        assert len(g.operators) == 3
        assert g.tensor(g.outputs[0]).shape == (8, 8, 8)

    def test_weights_are_int8_with_bias(self):
        b = GraphBuilder("t")
        x = b.input((4, 4, 4))
        b.output(b.conv(x, 8, 3, 1, 1))
        conv = b.build().operators[1]
        assert conv.weight.dtype == np.int8
        assert conv.weight.shape == (3, 3, 4, 8)
        assert conv.bias.dtype == np.int32

    def test_gemm_requires_flat(self):
        b = GraphBuilder("t")
        x = b.input((4, 4, 4))
        with pytest.raises(GraphError):
            b.gemm(x, 10)

    def test_cycle_detection(self):
        from repro.graph.graph import ComputationGraph
        from repro.graph.ops import Operator
        from repro.graph.tensor import TensorInfo

        g = ComputationGraph("cyclic")
        g.add_tensor(TensorInfo("a", (4,)))
        g.add_tensor(TensorInfo("b", (4,)))
        g.add_operator(Operator("r1", OpKind.RELU, ["b"], "a"))
        g.add_operator(Operator("r2", OpKind.RELU, ["a"], "b"))
        with pytest.raises(GraphError):
            g.topological_order()

    def test_duplicate_names_rejected(self):
        b = GraphBuilder("t")
        x = b.input((4,))
        b.gemm(x, 4, name="fc")
        with pytest.raises(GraphError):
            b.gemm(x, 4, name="fc")


class TestModelZoo:
    def test_registry(self):
        assert set(PAPER_SUITE) <= set(available_models())
        with pytest.raises(GraphError):
            get_model("alexnet")

    @pytest.mark.parametrize("name", PAPER_SUITE)
    def test_paper_models_build(self, name):
        g = get_model(name, input_size=32, num_classes=10)
        g.validate()
        assert g.mvm_operators(), f"{name} has no MVM operators"

    def test_resnet18_structure(self):
        g = get_model("resnet18", input_size=224, num_classes=1000)
        convs = [o for o in g.operators if o.kind is OpKind.CONV]
        assert len(convs) == 20  # 16 block convs + stem + 3 downsamples
        assert g.tensor(g.outputs[0]).shape == (1000,)

    def test_vgg19_structure(self):
        g = get_model("vgg19", input_size=224, num_classes=1000)
        convs = [o for o in g.operators if o.kind is OpKind.CONV]
        gemms = [o for o in g.operators if o.kind is OpKind.GEMM]
        assert len(convs) == 16 and len(gemms) == 3

    def test_mobilenet_uses_depthwise(self):
        g = get_model("mobilenetv2", input_size=32)
        assert any(o.kind is OpKind.DWCONV for o in g.operators)

    def test_efficientnet_has_squeeze_excite(self):
        g = get_model("efficientnetb0", input_size=32)
        assert any(o.kind is OpKind.MUL_CHANNEL for o in g.operators)
        assert any(o.kind is OpKind.SIGMOID for o in g.operators)

    def test_width_mult_shrinks(self):
        full = get_model("resnet18", input_size=32).total_weight_bytes()
        slim = get_model("resnet18", input_size=32, width_mult=0.25).total_weight_bytes()
        assert slim < full / 4

    def test_seeded_reproducibility(self):
        a = get_model("tiny_cnn", seed=7)
        b = get_model("tiny_cnn", seed=7)
        wa = a.operators[1].weight
        wb = b.operators[1].weight
        assert np.array_equal(wa, wb)


class TestQuantize:
    def test_requantize_matches_reference(self):
        acc = np.array([1024, -1024, 70000], dtype=np.int32)
        out = requantize(acc, QuantParams(qmul=1, qshift=4))
        assert list(out) == [64, -64, 127]

    def test_saturate(self):
        assert list(saturate_i8(np.array([300, -300, 5]))) == [127, -128, 5]

    def test_add_saturates(self):
        a = np.array([120, -120], dtype=np.int8)
        assert list(add_i8(a, a)) == [127, -128]

    def test_luts_are_bounded_and_monotone(self):
        for lut in (SIGMOID_LUT, SILU_LUT):
            assert lut.dtype == np.int8
            assert len(lut) == 256
        diffs = np.diff(SIGMOID_LUT.astype(int))
        assert (diffs >= 0).all()  # sigmoid is monotone

    def test_relu6_clip_value(self):
        assert 0 < RELU6_CLIP <= 127

    def test_cmul_identity_at_q7_one(self):
        x = np.array([10, -20, 30], dtype=np.int8)
        nearly_one = np.array([127, 127, 127], dtype=np.int8)
        out = cmul_i8(x, nearly_one)
        assert np.abs(out.astype(int) - x.astype(int)).max() <= 1

    @given(st.integers(1, 10**6))
    def test_default_qparams_valid(self, fan_in):
        params = default_qparams(fan_in)
        assert params.qmul >= 1 and 0 <= params.qshift < 32

    @given(st.lists(st.integers(-(2**30), 2**30), min_size=1, max_size=50))
    def test_requantize_always_int8(self, values):
        acc = np.array(values, dtype=np.int32)
        out = requantize(acc, default_qparams(64))
        assert out.dtype == np.int8


class TestSerialization:
    def test_round_trip_with_weights(self):
        g = get_model("tiny_resnet")
        restored = graph_from_dict(graph_to_dict(g))
        assert restored.name == g.name
        assert len(restored.operators) == len(g.operators)
        for a, b in zip(g.operators, restored.operators):
            assert a.kind == b.kind
            if a.weight is not None:
                assert np.array_equal(a.weight, b.weight)

    def test_file_round_trip(self, tmp_path):
        g = get_model("tiny_mlp")
        path = tmp_path / "model.json"
        save_graph(g, path)
        assert load_graph(path).summary() == g.summary()

    def test_corrupted_shape_rejected(self):
        g = get_model("tiny_mlp")
        data = graph_to_dict(g)
        data["tensors"][-1]["shape"] = [999]
        with pytest.raises(GraphError):
            graph_from_dict(data)
