"""Public-API snapshot: the importable surface of ``repro`` is a contract.

The exact set of names exported from ``repro`` is frozen here; adding a
name means updating the snapshot *deliberately* in the same change, and
removing or renaming one fails CI.  The deprecation shims
(:func:`repro.run_workflow` / :func:`repro.simulate`) are part of that
contract: they must keep working (bit-identical legacy semantics) while
warning, and the serving API must be importable from the package root.
"""

import warnings

import pytest

import repro

#: The frozen public surface.  Update deliberately, never by accident.
PUBLIC_API = sorted([
    # configuration
    "ArchConfig",
    "EnergyConfig",
    "InterChipConfig",
    "default_arch",
    # serving API (primary entry points)
    "Deployment",
    "ServeReport",
    "ArrivalProcess",
    "BackToBack",
    "FixedInterval",
    "FixedRate",
    "PoissonArrivals",
    "TraceArrivals",
    "serve_arrivals",
    "serve_fleet",
    "Fleet",
    "FleetReport",
    # async real-time serving runtime
    "serve_forever",
    "ServerHandle",
    "VirtualClock",
    "WallClock",
    "RequestAdmitted",
    "RequestCompleted",
    "RequestDropped",
    "RequestCompletion",
    "ReplicaStateChanged",
    # fault injection & fault-tolerant serving
    "FaultPlan",
    "RetryPolicy",
    "ReplicaCrash",
    "ReplicaSlowdown",
    "LinkDegrade",
    "TransientRequestFailure",
    "load_fault_plan",
    "save_fault_plan",
    # compilation
    "compile_model",
    "compile_sharded",
    "shard_graph",
    "ShardingSpec",
    "MultiChipModel",
    # compiled artifacts (the shippable compile product)
    "save_artifact",
    "load_artifact",
    "inspect_artifact",
    # simulation
    "MultiChipSimulator",
    "MultiChipReport",
    "analyze_sharded",
    "stream_batched",
    "steady_state_interval",
    "streaming_schedule",
    "analyze_plan",
    "FastReport",
    # legacy one-shot workflow (deprecated shims, kept working)
    "simulate",
    "run_workflow",
    "WorkflowResult",
    # design-space exploration
    "evaluate_fast",
    "design_space",
    "mg_flit_sweep",
    "strategy_comparison",
    "SweepSpec",
    "SweepResult",
    "run_sweep",
    "ResultCache",
    "DesignPoint",
    # errors
    "ReproError",
    "ConfigError",
    "ISAError",
    "CompileError",
    "CapacityError",
    "ArtifactError",
    "FaultError",
    "SimulationError",
    "ValidationError",
    # metadata
    "__version__",
])


class TestPublicSurface:
    def test_all_matches_snapshot(self):
        assert sorted(repro.__all__) == PUBLIC_API

    def test_every_name_importable(self):
        for name in PUBLIC_API:
            assert hasattr(repro, name), f"repro.{name} missing"
            assert getattr(repro, name) is not None

    def test_serving_names_live_in_serve_module(self):
        from repro import serve

        assert repro.Deployment is serve.Deployment
        assert repro.ServeReport is serve.ServeReport
        assert repro.FixedRate is serve.FixedRate


class TestDeprecationShims:
    def test_run_workflow_warns_and_works(self, arch):
        with pytest.warns(DeprecationWarning, match="Deployment"):
            result = repro.run_workflow(
                "tiny_cnn", arch, input_size=8, num_classes=10
            )
        assert result.validated
        assert result.report.cycles > 0

    def test_simulate_warns_and_matches_deployment(self, arch):
        import numpy as np

        compiled = repro.compile_model(
            "tiny_cnn", arch, "dp", input_size=8, num_classes=10
        )
        with pytest.warns(DeprecationWarning, match="Deployment"):
            legacy = repro.simulate(compiled)
        fresh = repro.Deployment(compiled).run()
        assert legacy.report.cycles == fresh.report.cycles
        for name in legacy.outputs:
            assert np.array_equal(legacy.outputs[name], fresh.outputs[name])

    def test_deployment_does_not_warn(self, arch):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            repro.Deployment(
                "tiny_cnn", arch, input_size=8, num_classes=10
            ).run()
