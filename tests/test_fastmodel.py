"""Tests for the fast analytical model and the exploration drivers."""

import pytest

from repro import run_workflow
from repro.compiler.pipeline import plan_graph
from repro.config import default_arch, small_test_arch, with_flit_bytes, with_mg_size
from repro.explore import design_space, evaluate_fast, mg_flit_sweep
from repro.graph.models import get_model
from repro.sim.fastmodel import analyze_plan


class TestFastModel:
    def test_reports_positive_metrics(self, arch):
        plan = plan_graph(get_model("tiny_resnet"), arch, "dp")
        report = analyze_plan(plan)
        assert report.cycles > 0
        assert report.total_energy_pj > 0
        assert report.macs > 0
        assert report.tops > 0

    def test_stage_cycles_sum_close_to_total(self, arch):
        plan = plan_graph(get_model("tiny_resnet"), arch, "dp")
        report = analyze_plan(plan)
        total_stage = sum(report.stage_cycles.values())
        assert total_stage <= report.cycles <= total_stage + 100 * len(
            report.stage_cycles
        ) + 1

    def test_tracks_cycle_simulator_within_bounds(self, arch):
        """The fast model must land within a small factor of the cycle
        simulator -- it shares parameters but not mechanisms."""
        for model in ("tiny_cnn", "tiny_resnet"):
            for strategy in ("generic", "dp"):
                measured = run_workflow(model, arch=arch, strategy=strategy)
                fast = analyze_plan(measured.compiled.plan)
                ratio = fast.cycles / measured.report.cycles
                assert 0.2 < ratio < 5.0, (
                    f"{model}/{strategy}: fast {fast.cycles} vs cycle "
                    f"{measured.report.cycles}"
                )

    def test_duplication_reduces_fast_latency(self):
        generic = evaluate_fast("resnet18", strategy="generic", input_size=64,
                                num_classes=10)
        dp = evaluate_fast("resnet18", strategy="dp", input_size=64,
                           num_classes=10)
        assert dp.cycles <= generic.cycles

    def test_macs_independent_of_strategy(self):
        a = evaluate_fast("resnet18", strategy="generic", input_size=64,
                          num_classes=10)
        b = evaluate_fast("resnet18", strategy="dp", input_size=64,
                          num_classes=10)
        assert a.report.macs == b.report.macs


class TestExploreDrivers:
    def test_mg_flit_sweep_axes(self):
        points = mg_flit_sweep(
            "resnet18", "generic", mg_sizes=(4, 8), flit_sizes=(8, 16),
            input_size=64, num_classes=10,
        )
        assert len(points) == 4
        assert {(p.mg_size, p.flit_bytes) for p in points} == {
            (4, 8), (8, 8), (4, 16), (8, 16)
        }

    def test_design_space_is_cross_product(self):
        points = design_space(
            "resnet18", strategies=("generic",), mg_sizes=(4,),
            flit_sizes=(8, 16), input_size=64, num_classes=10,
        )
        assert len(points) == 2

    def test_arch_variants_change_results(self):
        base = default_arch()
        small_mg = evaluate_fast("resnet18", with_mg_size(base, 4), "generic",
                                 input_size=64, num_classes=10)
        big_mg = evaluate_fast("resnet18", with_mg_size(base, 16), "generic",
                               input_size=64, num_classes=10)
        assert small_mg.cycles != big_mg.cycles

    def test_flit_width_affects_arch(self):
        base = default_arch()
        assert with_flit_bytes(base, 16).chip.noc.flit_bytes == 16
