"""Tests for geometry, partitioning, mapping, and code generation."""

import numpy as np
import pytest

from repro.compiler import (
    CostModel,
    build_geometries,
    compile_graph,
    condense,
    dp_partition,
    greedy_partition,
    optimal_mapping,
    partition_with_strategy,
)
from repro.compiler.plan import assign_cores_and_rows, split_rows
from repro.config import default_arch, small_test_arch
from repro.errors import CapacityError, CompileError
from repro.graph import GraphBuilder
from repro.graph.models import get_model
from repro.graph.ops import OpKind


def _geoms(model, arch, **kwargs):
    graph = get_model(model, **kwargs) if isinstance(model, str) else model
    cgraph = condense(graph)
    return cgraph, build_geometries(cgraph, arch)


class TestGeometry:
    def test_conv_tiles_cover_weight_matrix(self, table1_arch):
        cgraph, geoms = _geoms("resnet18", table1_arch, input_size=32,
                               num_classes=10)
        for node in cgraph.nodes:
            if node.anchor.kind is not OpKind.CONV:
                continue
            geom = geoms[node.name]
            k = node.anchor.attrs["kernel"]
            c_in = node.anchor.weight.shape[2]
            matrix = node.anchor.weight.reshape(k * k * c_in, -1)
            rebuilt = np.zeros_like(matrix)
            for tile in geom.pack_tiles():
                rebuilt[
                    tile.vec_lo:tile.vec_lo + tile.rows_used,
                    tile.col_lo:tile.col_hi,
                ] = tile.data
            assert np.array_equal(rebuilt, matrix)

    def test_dwconv_block_diagonal_packing(self, table1_arch):
        cgraph, geoms = _geoms("mobilenetv2", table1_arch, input_size=32,
                               num_classes=10)
        node = next(n for n in cgraph.nodes if n.anchor.kind is OpKind.DWCONV)
        geom = geoms[node.name]
        k = node.anchor.attrs["kernel"]
        for tile in geom.pack_tiles():
            group = tile.channel_hi - tile.channel_lo
            assert tile.data.shape == (group * k * k, group)
            # every nonzero sits on its own channel's column
            rows, cols = np.nonzero(tile.data)
            assert ((rows % group) == cols).all()

    def test_core_roles_partition_channels(self, table1_arch):
        cgraph, geoms = _geoms("vgg19", table1_arch, input_size=32,
                               num_classes=10)
        for node in cgraph.nodes:
            geom = geoms[node.name]
            if not node.is_cim:
                continue
            roles = geom.core_roles()
            assert len(roles) == geom.cores_min
            bands = [r.band for r in roles]
            assert bands[0][0] == 0 and bands[-1][1] == geom.out_c
            for (a, b), (c, d) in zip(bands, bands[1:]):
                assert b == c  # contiguous, non-overlapping

    def test_multipass_for_giant_gemm(self, table1_arch):
        graph = get_model("vgg19", input_size=224, num_classes=1000)
        cgraph, geoms = _geoms(graph, table1_arch)
        fc1 = geoms["fc1"]
        assert fc1.multipass
        assert fc1.row_tiles > table1_arch.mgs_per_core

    def test_kernel_too_large_for_small_macro(self):
        arch = small_test_arch()
        b = GraphBuilder("big_dw")
        x = b.input((16, 16, 8))
        b.output(b.dwconv(x, 9, 1, 4))  # 81 taps > 64 macro rows
        with pytest.raises(CapacityError):
            _geoms(b.build(), arch)


class TestPartitioning:
    def test_split_rows_balanced(self):
        ranges = split_rows(10, 3)
        assert ranges == [(0, 4), (4, 7), (7, 10)]
        assert split_rows(2, 5) == [(0, 1), (1, 2)]

    def test_dp_never_worse_than_greedy(self, arch):
        for model in ("tiny_cnn", "tiny_resnet"):
            cgraph, geoms = _geoms(model, arch)
            cm = CostModel(arch)
            greedy = greedy_partition(cgraph, geoms, arch, cm, duplicate=True)
            dp = dp_partition(cgraph, geoms, arch, cm)
            assert dp.total_cost <= greedy.total_cost + 1e-9

    def test_dp_beats_no_duplication_when_possible(self, arch):
        cgraph, geoms = _geoms("tiny_resnet", arch)
        cm = CostModel(arch)
        generic = greedy_partition(cgraph, geoms, arch, cm, duplicate=False)
        dp = dp_partition(cgraph, geoms, arch, cm)
        assert dp.total_cost < generic.total_cost

    def test_stages_cover_all_nodes_once(self, arch):
        cgraph, geoms = _geoms("tiny_resnet", arch)
        result = partition_with_strategy("dp", cgraph, geoms, arch)
        seen = [i for s in result.stages for i in s.node_indices]
        assert sorted(seen) == list(range(len(cgraph)))

    def test_stages_respect_dependencies(self, arch):
        cgraph, geoms = _geoms("tiny_resnet", arch)
        result = partition_with_strategy("dp", cgraph, geoms, arch)
        position = {}
        for stage_idx, stage in enumerate(result.stages):
            for node_idx in stage.node_indices:
                position[node_idx] = stage_idx
        for node in cgraph.nodes:
            for dep in cgraph.deps(node):
                assert position[dep] <= position[node.index]

    def test_unknown_strategy(self, arch):
        cgraph, geoms = _geoms("tiny_mlp", arch)
        with pytest.raises(CompileError):
            partition_with_strategy("magic", cgraph, geoms, arch)


class TestMapping:
    def test_respects_core_budget(self, arch):
        cgraph, geoms = _geoms("tiny_resnet", arch)
        cm = CostModel(arch)
        all_geoms = [geoms[n.name] for n in cgraph.nodes]
        priced = optimal_mapping(all_geoms, arch, cm, duplicate=True)
        if priced is not None:
            replicas, _ = priced
            used = sum(
                replicas[g.node.name] * g.cores_min for g in all_geoms
            )
            assert used <= arch.num_cores

    def test_infeasible_returns_none(self):
        arch = small_test_arch(num_cores=1)
        cgraph, geoms = _geoms("tiny_resnet", arch)
        cm = CostModel(arch)
        all_geoms = [geoms[n.name] for n in cgraph.nodes]
        assert optimal_mapping(all_geoms, arch, cm) is None

    def test_assignment_is_disjoint(self, arch):
        cgraph, geoms = _geoms("tiny_resnet", arch)
        result = partition_with_strategy("dp", cgraph, geoms, arch)
        stages = assign_cores_and_rows(cgraph, geoms, result, arch)
        for stage in stages:
            cores = [c for m in stage.mappings.values() for c in m.all_cores]
            assert len(cores) == len(set(cores))
            assert max(cores) < arch.num_cores

    def test_replica_rows_partition_output(self, arch):
        cgraph, geoms = _geoms("tiny_resnet", arch)
        result = partition_with_strategy("dp", cgraph, geoms, arch)
        stages = assign_cores_and_rows(cgraph, geoms, result, arch)
        for stage in stages:
            for mapping in stage.mappings.values():
                covered = []
                for replica in mapping.replicas:
                    covered.extend(range(*replica.rows))
                assert covered == list(range(mapping.geometry.out_h))


class TestCodegen:
    def test_programs_for_all_cores(self, arch):
        compiled = compile_graph(get_model("tiny_cnn"), arch, "dp")
        assert set(compiled.programs) == set(range(arch.num_cores))
        for program in compiled.programs.values():
            assert program.instructions[-1].mnemonic == "HALT"

    def test_all_programs_encode(self, arch):
        compiled = compile_graph(get_model("tiny_resnet"), arch, "dp")
        for program in compiled.programs.values():
            words = program.encode_all()
            assert all(0 <= w < (1 << 32) for w in words)

    def test_register_convention_bounds(self, arch):
        compiled = compile_graph(get_model("tiny_resnet"), arch, "generic")
        for program in compiled.programs.values():
            for instr in program:
                for field in ("rs", "rt", "rd", "re"):
                    assert 0 <= instr.get(field) < 32

    def test_barrier_counts_match(self, arch):
        compiled = compile_graph(get_model("tiny_cnn"), arch, "dp")
        counts = {
            cid: sum(1 for i in p if i.mnemonic == "BARRIER")
            for cid, p in compiled.programs.items()
        }
        assert len(set(counts.values())) == 1  # same barrier count everywhere

    def test_global_image_contains_weights(self, arch):
        graph = get_model("tiny_mlp")
        compiled = compile_graph(graph, arch, "generic")
        assert compiled.global_image.any()
        assert len(compiled.global_image) == compiled.plan.global_bytes

    def test_local_memory_overflow_detected(self):
        arch = small_test_arch()
        b = GraphBuilder("wide")
        x = b.input((64, 64, 16))  # 64 KiB rows blow the 4 KiB segment
        b.output(b.conv(x, 8, 3, 1, 1))
        with pytest.raises(CapacityError):
            compile_graph(b.build(), arch, "generic")
