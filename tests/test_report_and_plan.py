"""Tests for simulation reports, plan summaries and memory layout."""

import numpy as np
import pytest

from repro import compile_model, run_workflow
from repro.compiler.plan import GLOBAL_BASE
from repro.config import small_test_arch
from repro.errors import CompileError


class TestSimulationReport:
    @pytest.fixture(scope="class")
    def result(self):
        return run_workflow("tiny_resnet", arch=small_test_arch(), strategy="dp")

    def test_derived_metrics_consistent(self, result):
        report = result.report
        assert report.time_ms == pytest.approx(
            report.cycles * result.compiled.arch.chip.cycle_ns / 1e6
        )
        assert report.total_energy_mj == pytest.approx(
            report.total_energy_pj / 1e9
        )
        assert report.tops == pytest.approx(
            2 * report.macs / (report.time_ms / 1e3) / 1e12
        )

    def test_energy_grouping_sums_to_total(self, result):
        grouped = result.report.grouped_energy_mj()
        assert sum(grouped.values()) == pytest.approx(
            result.report.total_energy_mj
        )

    def test_utilization_bounds(self, result):
        for unit, value in result.report.utilization.items():
            assert 0.0 <= value <= 1.0, unit

    def test_pretty_print_mentions_key_metrics(self, result):
        text = str(result.report)
        for token in ("cycles", "energy", "throughput", "utilization"):
            assert token in text

    def test_macs_match_model_arithmetic(self, result):
        from repro.compiler.cost import CostModel

        cm = CostModel(result.compiled.arch)
        expected = sum(
            cm.node_macs(g) for g in result.compiled.plan.geometries.values()
        )
        assert result.report.macs == expected


class TestPlanAndLayout:
    @pytest.fixture(scope="class")
    def compiled(self):
        return compile_model("tiny_resnet", small_test_arch(), "dp")

    def test_tensor_addresses_are_global_and_disjoint(self, compiled):
        plan = compiled.plan
        spans = []
        for tensor, addr in plan.tensor_address.items():
            size = plan.graph.tensor(tensor).size_bytes
            assert addr >= GLOBAL_BASE
            spans.append((addr, addr + size, tensor))
        spans.sort()
        for (_, end, a), (start, _, b) in zip(spans, spans[1:]):
            assert end <= start, f"tensors {a} and {b} overlap"

    def test_weight_tiles_disjoint_from_tensors(self, compiled):
        plan = compiled.plan
        tensor_end = max(
            addr + plan.graph.tensor(t).size_bytes
            for t, addr in plan.tensor_address.items()
        )
        for addr in plan.weight_address.values():
            assert addr >= GLOBAL_BASE
        # weights are allocated after all activations in the bump order
        assert min(plan.weight_address.values()) >= tensor_end - 64

    def test_stage_of_lookup(self, compiled):
        plan = compiled.plan
        for stage in plan.stages:
            for node in stage.nodes:
                assert plan.stage_of(node.name) == stage.index
        with pytest.raises(CompileError):
            plan.stage_of("not_a_node")

    def test_summary_lists_every_stage(self, compiled):
        text = compiled.plan.summary()
        for stage in compiled.plan.stages:
            assert f"stage {stage.index}" in text

    def test_global_image_matches_footprint(self, compiled):
        assert len(compiled.global_image) == compiled.plan.global_bytes
        assert compiled.global_image.dtype == np.uint8

    def test_spilled_outputs_include_graph_output(self, compiled):
        plan = compiled.plan
        resolved = plan.cgraph.resolve(plan.graph.outputs[0])
        assert resolved in plan.tensor_address
