"""Battery for deterministic fault injection (:mod:`repro.faults`).

Locks down the PR 7 availability contract: fault plans serialize and
validate with typed :class:`~repro.errors.FaultError`\\ s; an empty plan
forced through the failover engine is bit-identical to the unfaulted
PR 6 path in both fidelity tiers; every fault plan conserves requests
(``submitted == completed + dropped``) and reproduces byte-identical
:meth:`FleetReport.to_dict` output for identical seeds -- in the same
process and across process boundaries; and each fault type has the
effect it documents (crashes reroute to survivors, transient failures
exhaust retries, deadlines drop, slowdowns stretch the tail, link
degradation slows multi-chip pipelines).
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

import repro
from repro.config import small_test_arch
from repro.errors import FaultError
from repro.faults import (
    DROP_DEADLINE,
    DROP_MAX_ATTEMPTS,
    DROP_NO_REPLICA,
    FaultPlan,
    LinkDegrade,
    ReplicaCrash,
    ReplicaSlowdown,
    RetryPolicy,
    TransientRequestFailure,
    load_fault_plan,
    run_fault_schedule,
    save_fault_plan,
)
from repro.serve import Fleet
from repro.sim.fastmodel import serve_fleet

MODEL_KW = dict(input_size=8, num_classes=10)


@pytest.fixture(scope="module")
def march():
    return small_test_arch()


def make_fleet(march, tier="fast", **kwargs):
    return Fleet("tiny_mlp", march, strategy="generic", tier=tier,
                 **MODEL_KW, **kwargs)


def crash_plan(replica=1, at_cycle=200, **retry_kw):
    retry_kw.setdefault("max_attempts", 3)
    retry_kw.setdefault("backoff_cycles", 10)
    return FaultPlan(
        events=(ReplicaCrash(replica=replica, at_cycle=at_cycle),),
        retry=RetryPolicy(**retry_kw),
    )


# ---------------------------------------------------------------------------
# Plan construction, validation, serialization
# ---------------------------------------------------------------------------

class TestPlanValidation:
    @pytest.mark.parametrize("bad", [
        lambda: ReplicaCrash(replica=-1, at_cycle=0),
        lambda: ReplicaCrash(replica=0, at_cycle=-5),
        lambda: ReplicaSlowdown(replica=0, factor=0.5),
        lambda: ReplicaSlowdown(replica=0, factor=2.0,
                                start_cycle=10, end_cycle=10),
        lambda: LinkDegrade(bw_factor=0.0),
        lambda: LinkDegrade(bw_factor=1.5),
        lambda: TransientRequestFailure(prob=1.5),
        lambda: RetryPolicy(max_attempts=0),
        lambda: RetryPolicy(backoff_cycles=-1),
        lambda: RetryPolicy(per_request_deadline_cycles=0),
        lambda: FaultPlan(events=("not an event",)),
    ])
    def test_malformed_raises_fault_error(self, bad):
        with pytest.raises(FaultError):
            bad()

    def test_fault_error_is_repro_error(self):
        assert issubclass(FaultError, repro.ReproError)

    def test_empty_plan_is_identity_marker(self):
        plan = FaultPlan()
        assert plan.is_empty
        assert plan.retry is None
        assert plan.describe() == "no-fault"

    def test_crash_cycle_earliest_wins(self):
        plan = FaultPlan(events=(
            ReplicaCrash(replica=0, at_cycle=500),
            ReplicaCrash(replica=0, at_cycle=200),
        ))
        assert plan.crash_cycle(0) == 200
        assert plan.crash_cycle(1) is None


class TestPlanSerialization:
    def full_plan(self):
        return FaultPlan(
            events=(
                ReplicaCrash(replica=1, at_cycle=100),
                ReplicaSlowdown(replica=0, factor=2.5,
                                start_cycle=50, end_cycle=300),
                LinkDegrade(bw_factor=0.25, start_cycle=0, end_cycle=None,
                            replica=2),
                TransientRequestFailure(prob=0.125, seed=7),
            ),
            retry=RetryPolicy(max_attempts=4, backoff_cycles=20,
                              per_request_deadline_cycles=5000),
        )

    def test_dict_roundtrip(self):
        plan = self.full_plan()
        assert FaultPlan.from_dict(plan.to_dict()) == plan

    def test_file_roundtrip(self, tmp_path):
        plan = self.full_plan()
        path = tmp_path / "plan.json"
        save_fault_plan(plan, path)
        assert load_fault_plan(path) == plan

    def test_fingerprint_stable_and_sensitive(self):
        plan = self.full_plan()
        assert plan.fingerprint() == self.full_plan().fingerprint()
        other = FaultPlan(events=plan.events)
        assert other.fingerprint() != plan.fingerprint()

    @pytest.mark.parametrize("payload", [
        "not a dict",
        {"events": [{"no": "type"}]},
        {"events": [{"type": "meteor_strike"}]},
        {"events": [{"type": "replica_crash", "bogus_field": 1}]},
        {"retry": {"max_attempts": "many"}},
    ])
    def test_malformed_payload_raises_fault_error(self, payload):
        with pytest.raises(FaultError):
            FaultPlan.from_dict(payload)

    def test_load_missing_and_invalid_files(self, tmp_path):
        with pytest.raises(FaultError):
            load_fault_plan(tmp_path / "nope.json")
        bad = tmp_path / "bad.json"
        bad.write_text("{ not json")
        with pytest.raises(FaultError):
            load_fault_plan(bad)


class TestTransientDraws:
    def test_pure_function_of_seed_request_attempt(self):
        event = TransientRequestFailure(prob=0.5, seed=11)
        draws = [event.fails(i, a) for i in range(32) for a in range(1, 4)]
        again = [event.fails(i, a) for i in range(32) for a in range(1, 4)]
        assert draws == again
        assert any(draws) and not all(draws)

    def test_extremes(self):
        always = TransientRequestFailure(prob=1.0)
        never = TransientRequestFailure(prob=0.0)
        assert all(always.fails(i, 1) for i in range(16))
        assert not any(never.fails(i, 1) for i in range(16))


# ---------------------------------------------------------------------------
# The failover engine in isolation
# ---------------------------------------------------------------------------

ROW = [100, 80]
EDGES = [(0, 1, 64)]


def link():
    return small_test_arch().interchip


class TestFailoverEngine:
    def test_no_fault_schedule_is_round_robin(self):
        sched = run_fault_schedule(
            [0, 0, 0, 0], ROW, EDGES, link(), replicas=2,
        )
        assert sched.assignments == [0, 1, 0, 1]
        assert sched.dropped == []
        assert sched.retries == 0
        assert sched.attempt_counts == [1, 1, 1, 1]

    def test_crash_reroutes_to_survivors(self):
        plan = crash_plan(replica=0, at_cycle=150)
        sched = run_fault_schedule(
            [0, 0, 0, 0, 0, 0], ROW, EDGES, link(), replicas=3, plan=plan,
        )
        assert sched.dropped == []
        # everything completed lands on a survivor
        assert all(a in (1, 2) for i, a in enumerate(sched.assignments))
        assert sched.retries >= 1
        # the crashed replica's attempts are all crash-killed at the
        # crash cycle
        for record in sched.replica_attempts[0]:
            if record.status == "crashed":
                assert record.finish_cycle == 150
                assert not record.full_service

    def test_no_replica_left_drops_everything(self):
        plan = FaultPlan(
            events=(ReplicaCrash(replica=0, at_cycle=0),),
            retry=RetryPolicy(max_attempts=2),
        )
        sched = run_fault_schedule(
            [0, 10], ROW, EDGES, link(), replicas=1, plan=plan,
        )
        assert sched.statuses == [DROP_NO_REPLICA, DROP_NO_REPLICA]
        assert sched.completed == []

    def test_transient_prob_one_exhausts_attempts(self):
        plan = FaultPlan(
            events=(TransientRequestFailure(prob=1.0),),
            retry=RetryPolicy(max_attempts=3),
        )
        sched = run_fault_schedule(
            [0, 0], ROW, EDGES, link(), replicas=2, plan=plan,
        )
        assert sched.statuses == [DROP_MAX_ATTEMPTS, DROP_MAX_ATTEMPTS]
        assert sched.attempt_counts == [3, 3]
        assert sched.retries == 4  # 2 requests x 2 re-enqueues
        # failed attempts still ran the full inference
        assert all(a.full_service for a in sched.attempts)

    def test_deadline_drops_late_requests(self):
        # single replica, service 180 cycles per input back-to-back:
        # request k completes at (k+1)*180; a 400-cycle deadline admits
        # only the first two.
        row = [180]
        sched = run_fault_schedule(
            [0, 0, 0, 0], row, [], link(), replicas=1,
            retry=RetryPolicy(max_attempts=1,
                              per_request_deadline_cycles=400),
        )
        assert sched.statuses[:2] == ["completed", "completed"]
        assert set(sched.statuses[2:]) == {DROP_DEADLINE}

    def test_jsq_prefers_idle_survivor(self):
        plan = crash_plan(replica=0, at_cycle=0, backoff_cycles=0)
        sched = run_fault_schedule(
            [0, 0, 0], ROW, EDGES, link(), replicas=2, policy="jsq",
            plan=plan,
        )
        assert sched.dropped == []
        assert all(a == 1 for a in sched.assignments)

    def test_conservation_holds_across_plans(self):
        plans = [
            FaultPlan(),
            crash_plan(replica=1, at_cycle=90),
            FaultPlan(events=(TransientRequestFailure(prob=0.5, seed=3),),
                      retry=RetryPolicy(max_attempts=2)),
            FaultPlan(
                events=(
                    ReplicaCrash(replica=0, at_cycle=50),
                    ReplicaSlowdown(replica=1, factor=3.0),
                    TransientRequestFailure(prob=0.3, seed=9),
                ),
                retry=RetryPolicy(max_attempts=2, backoff_cycles=5,
                                  per_request_deadline_cycles=2000),
            ),
        ]
        for plan in plans:
            sched = run_fault_schedule(
                [i * 30 for i in range(10)], ROW, EDGES, link(),
                replicas=3, plan=plan,
            )
            assert len(sched.completed) + len(sched.dropped) == 10
            for i in sched.completed:
                assert sched.assignments[i] >= 0
                assert sched.finishes[i] > 0
            for i in sched.dropped:
                assert sched.assignments[i] == -1

    def test_slowdown_stretches_service(self):
        base = run_fault_schedule([0], [100], [], link(), replicas=1)
        slow = run_fault_schedule(
            [0], [100], [], link(), replicas=1,
            plan=FaultPlan(events=(
                ReplicaSlowdown(replica=0, factor=2.0),
            )),
        )
        assert slow.finishes[0] == 2 * base.finishes[0]
        outside = run_fault_schedule(
            [0], [100], [], link(), replicas=1,
            plan=FaultPlan(events=(
                ReplicaSlowdown(replica=0, factor=2.0, start_cycle=500),
            )),
        )
        assert outside.finishes[0] == base.finishes[0]

    def test_link_degrade_slows_pipeline(self):
        base = run_fault_schedule([0], ROW, EDGES, link(), replicas=1)
        degraded = run_fault_schedule(
            [0], ROW, EDGES, link(), replicas=1,
            plan=FaultPlan(events=(LinkDegrade(bw_factor=0.1),)),
        )
        assert degraded.finishes[0] > base.finishes[0]
        # propagation latency is unaffected: the delta is exactly the
        # stretched serialization
        ser = link().serialization_cycles(EDGES[0][2])
        stretched = -(-ser // 0.1)
        assert degraded.finishes[0] - base.finishes[0] == (
            int(stretched) - ser
        )


# ---------------------------------------------------------------------------
# Empty-plan degeneracy: the engine path equals the PR 6 path bit for bit
# ---------------------------------------------------------------------------

class TestEmptyPlanDegeneracy:
    @pytest.mark.parametrize("tier", ["cyclesim", "fast"])
    def test_fleet_engine_path_matches_unfaulted(self, march, tier):
        kwargs = dict(batch=6, seed=1)
        plain = make_fleet(march, tier=tier, replicas=3).submit(**kwargs)
        # an explicit default RetryPolicy forces the failover engine
        # even though the plan is empty
        forced = make_fleet(march, tier=tier, replicas=3).submit(
            faults=FaultPlan(), retry=RetryPolicy(), **kwargs
        )
        assert forced.assignments == plain.assignments
        assert forced.input_finishes == plain.input_finishes
        assert forced.makespan_cycles == plain.makespan_cycles
        assert forced.total_energy_pj == plain.total_energy_pj
        assert forced.dropped == 0
        assert [r.to_dict() for r in forced.replica_reports] == [
            r.to_dict() for r in plain.replica_reports
        ]

    @pytest.mark.parametrize("tier", ["cyclesim", "fast"])
    def test_none_and_empty_plan_take_unfaulted_path(self, march, tier):
        kwargs = dict(batch=5, seed=2)
        plain = make_fleet(march, tier=tier, replicas=2).submit(**kwargs)
        empty = make_fleet(march, tier=tier, replicas=2).submit(
            faults=FaultPlan(), **kwargs
        )
        assert empty.to_dict() == plain.to_dict()

    def test_fastmodel_serve_fleet_degeneracy(self, march):
        from repro.explore import evaluate_fast

        base = evaluate_fast("tiny_mlp", march, "generic", 8, 10).report
        releases = [0] * 6
        plain = serve_fleet(base, releases, march.interchip, 3)
        forced = serve_fleet(
            base, releases, march.interchip, 3,
            faults=FaultPlan(), retry=RetryPolicy(),
        )
        assert forced.to_dict() == plain.to_dict()


# ---------------------------------------------------------------------------
# Faulted Fleet serving, both tiers
# ---------------------------------------------------------------------------

class TestFaultedFleet:
    @pytest.mark.parametrize("tier", ["cyclesim", "fast"])
    def test_crash_one_of_three_conserves_and_reroutes(self, march, tier):
        plan = crash_plan(replica=1, at_cycle=200)
        report = make_fleet(march, tier=tier, replicas=3).submit(
            batch=9, faults=plan, seed=1,
        )
        assert report.submitted == 9
        assert report.submitted == report.completed + report.dropped
        assert report.dropped == 0
        assert report.goodput_inf_per_s > 0
        # the dead replica serves nothing after the crash cycle
        for record_list in [report.replica_downtime[1]]:
            assert any(w["kind"] == "crash" for w in record_list)
        text = str(report)
        assert "conservation" in text
        assert "goodput" in text
        assert "crash" in text

    def test_cyclesim_validates_under_faults(self, march):
        plan = FaultPlan(
            events=(
                ReplicaCrash(replica=0, at_cycle=300),
                ReplicaSlowdown(replica=1, factor=2.0, start_cycle=0,
                                end_cycle=10_000),
            ),
            retry=RetryPolicy(max_attempts=3, backoff_cycles=15),
        )
        report = make_fleet(march, tier="cyclesim", replicas=3).submit(
            batch=6, faults=plan, seed=4, validate=True,
        )
        assert report.validated
        assert report.submitted == report.completed + report.dropped

    def test_deadline_drops_are_recorded_not_lost(self, march):
        plan = FaultPlan(retry=RetryPolicy(
            max_attempts=1, per_request_deadline_cycles=500,
        ))
        report = make_fleet(march, tier="fast", replicas=1).submit(
            batch=8, faults=plan, retry=plan.retry, seed=0,
        )
        assert report.submitted == 8
        assert report.completed + report.dropped == 8
        assert report.dropped > 0
        assert set(report.drop_reasons.values()) == {DROP_DEADLINE}
        assert sorted(report.drop_reasons) == report.dropped_indices
        # dropped requests are excluded from the latency percentiles
        assert len(report.latency_cycles) == report.completed

    def test_transient_failures_retry_and_charge_energy(self, march):
        plan = FaultPlan(
            events=(TransientRequestFailure(prob=1.0),),
            retry=RetryPolicy(max_attempts=2),
        )
        clean = make_fleet(march, tier="fast", replicas=2).submit(batch=4)
        flaky = make_fleet(march, tier="fast", replicas=2).submit(
            batch=4, faults=plan,
        )
        assert flaky.dropped == 4
        assert flaky.retries == 4
        # every attempt ran to completion, so energy doubles
        assert flaky.total_energy_pj == 2 * clean.total_energy_pj

    def test_slowdown_grows_tail_latency(self, march):
        slow_plan = FaultPlan(
            events=(ReplicaSlowdown(replica=0, factor=4.0),),
            retry=RetryPolicy(),
        )
        base = make_fleet(march, tier="fast", replicas=2).submit(
            batch=8, faults=FaultPlan(), retry=RetryPolicy(),
        )
        slow = make_fleet(march, tier="fast", replicas=2).submit(
            batch=8, faults=slow_plan,
        )
        assert slow.dropped == 0
        assert max(slow.latency_cycles) > max(base.latency_cycles)


# ---------------------------------------------------------------------------
# Determinism: identical plans reproduce identical reports
# ---------------------------------------------------------------------------

DETERMINISM_SNIPPET = """
import json, sys
from repro.config import small_test_arch
from repro.faults import (FaultPlan, ReplicaCrash, ReplicaSlowdown,
                          RetryPolicy, TransientRequestFailure)
from repro.serve import Fleet

plan = FaultPlan(
    events=(
        ReplicaCrash(replica=1, at_cycle=250),
        ReplicaSlowdown(replica=0, factor=1.5, start_cycle=100,
                        end_cycle=4000),
        TransientRequestFailure(prob=0.4, seed=13),
    ),
    retry=RetryPolicy(max_attempts=3, backoff_cycles=25,
                      per_request_deadline_cycles=50_000),
)
fleet = Fleet("tiny_mlp", small_test_arch(), strategy="generic",
              tier="fast", input_size=8, num_classes=10, replicas=3)
report = fleet.submit(batch=10, faults=plan, seed=5)
json.dump(report.to_dict(), sys.stdout, sort_keys=True)
"""


class TestDeterminism:
    def run_once(self, march, tier="fast"):
        plan = FaultPlan(
            events=(
                ReplicaCrash(replica=1, at_cycle=250),
                TransientRequestFailure(prob=0.4, seed=13),
            ),
            retry=RetryPolicy(max_attempts=3, backoff_cycles=25),
        )
        return make_fleet(march, tier=tier, replicas=3).submit(
            batch=10, faults=plan, seed=5,
        ).to_dict()

    @pytest.mark.parametrize("tier", ["cyclesim", "fast"])
    def test_repeated_runs_byte_identical(self, march, tier):
        first = json.dumps(self.run_once(march, tier), sort_keys=True)
        second = json.dumps(self.run_once(march, tier), sort_keys=True)
        assert first == second

    def test_across_process_boundaries(self):
        src = str(Path(repro.__file__).resolve().parents[1])
        env = dict(os.environ)
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        outputs = set()
        for seed_flip in range(2):
            env["PYTHONHASHSEED"] = str(seed_flip)
            proc = subprocess.run(
                [sys.executable, "-c", DETERMINISM_SNIPPET],
                capture_output=True, text=True, env=env, timeout=240,
            )
            assert proc.returncode == 0, proc.stderr
            outputs.add(proc.stdout)
        assert len(outputs) == 1

    def test_fast_report_roundtrip_with_fault_fields(self, march):
        from repro.explore import evaluate_fast
        from repro.sim.fastmodel import FastReport

        plan = crash_plan(replica=1, at_cycle=150)
        point = evaluate_fast(
            "tiny_mlp", march, "generic", 8, 10,
            batch=6, replicas=3, fault_plan=plan,
        )
        payload = point.report.to_dict()
        assert payload["dropped"] == point.report.dropped
        assert payload["retries"] == point.report.retries
        assert FastReport.from_dict(payload).to_dict() == payload
