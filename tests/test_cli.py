"""Smoke tests for the ``python -m repro`` command line."""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

import repro
from repro.cli import main
from repro.config import save_arch, small_test_arch


def run_cli(*argv):
    return main(list(argv))


@pytest.fixture
def small_arch_file(tmp_path):
    path = tmp_path / "small.json"
    save_arch(small_test_arch(), path)
    return str(path)


class TestParser:
    @pytest.mark.parametrize("command", ["run", "sweep", "compare", "report"])
    def test_help_exits_zero(self, command, capsys):
        with pytest.raises(SystemExit) as exc:
            run_cli(command, "--help")
        assert exc.value.code == 0
        assert "usage:" in capsys.readouterr().out

    def test_module_invocation(self):
        """`python -m repro sweep --help` works as a real subprocess."""
        src = str(Path(repro.__file__).resolve().parents[1])
        env = dict(os.environ)
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "sweep", "--help"],
            capture_output=True, text=True, env=env, timeout=120,
        )
        assert proc.returncode == 0
        assert "--workers" in proc.stdout

    def test_unknown_model_is_reported(self, capsys):
        assert run_cli(
            "sweep", "--models", "no_such_model", "--preset", "small",
            "--input-sizes", "8", "--num-classes", "10", "--no-cache",
            "--quiet",
        ) == 2
        assert "error:" in capsys.readouterr().err


class TestSweepCommand:
    def test_tiny_sweep_with_cache_json_csv(self, tmp_path, capsys):
        out_json = tmp_path / "sweep.json"
        out_csv = tmp_path / "sweep.csv"
        cache_dir = tmp_path / "cache"
        argv = (
            "sweep", "--models", "tiny_cnn", "--strategies", "generic,dp",
            "--input-sizes", "8", "--num-classes", "10", "--preset", "small",
            "--cache-dir", str(cache_dir), "--quiet",
            "--json", str(out_json), "--csv", str(out_csv),
        )
        assert run_cli(*argv) == 0
        first = capsys.readouterr().out
        assert "2 evaluated, 0 cache hits" in first

        payload = json.loads(out_json.read_text())
        assert len(payload["points"]) == 2
        assert {p["strategy"] for p in payload["points"]} == {"generic", "dp"}
        assert out_csv.read_text().startswith("model,strategy,")

        # second run: everything served from the on-disk cache
        assert run_cli(*argv) == 0
        second = capsys.readouterr().out
        assert "0 evaluated, 2 cache hits (100%)" in second

    def test_arch_file_and_closure_limit(self, small_arch_file, capsys):
        assert run_cli(
            "sweep", "--models", "tiny_cnn", "--strategies", "dp",
            "--input-sizes", "8", "--num-classes", "10",
            "--arch", small_arch_file, "--closure-limit", "tiny_cnn=4",
            "--no-cache", "--quiet",
        ) == 0
        assert "tiny_cnn" in capsys.readouterr().out


class TestRunCommand:
    def test_run_tiny_model(self, tmp_path, capsys):
        out_json = tmp_path / "run.json"
        assert run_cli(
            "run", "tiny_resnet", "--preset", "small", "--input-size", "8",
            "--json", str(out_json),
        ) == 0
        out = capsys.readouterr().out
        assert "validated : bit-exact vs golden model" in out
        payload = json.loads(out_json.read_text())
        assert payload["validated"] is True
        assert payload["report"]["cycles"] > 0


class TestCompareCommand:
    def test_normalized_table(self, capsys):
        assert run_cli(
            "compare", "--models", "tiny_cnn", "--strategies", "generic,dp",
            "--input-size", "8", "--num-classes", "10", "--preset", "small",
            "--no-cache",
        ) == 0
        out = capsys.readouterr().out
        assert "generic = 1.00" in out
        assert "tiny_cnn" in out


class TestReportCommand:
    def test_roundtrip_from_sweep_json(self, tmp_path, capsys):
        out_json = tmp_path / "sweep.json"
        run_cli(
            "sweep", "--models", "tiny_cnn", "--strategies", "generic,dp",
            "--input-sizes", "8", "--num-classes", "10", "--preset", "small",
            "--no-cache", "--quiet", "--json", str(out_json),
        )
        capsys.readouterr()
        out_csv = tmp_path / "report.csv"
        assert run_cli(
            "report", str(out_json), "--best", "cycles", "--top", "1",
            "--csv", str(out_csv),
        ) == 0
        out = capsys.readouterr().out
        assert "top 1 by cycles" in out
        assert out_csv.exists()

    def test_missing_file_is_an_error(self, tmp_path, capsys):
        assert run_cli("report", str(tmp_path / "absent.json")) == 2
        assert "error:" in capsys.readouterr().err

    def test_empty_sweep_reports_cleanly(self, tmp_path, capsys):
        """A well-formed file with zero points must not crash --pareto
        or the ranked summary (regression: edge case was unhandled)."""
        out_json = tmp_path / "empty.json"
        out_json.write_text(json.dumps({"points": [], "spec": {}, "stats": {}}))
        out_csv = tmp_path / "empty.csv"
        assert run_cli(
            "report", str(out_json), "--pareto", "--csv", str(out_csv),
        ) == 0
        out = capsys.readouterr().out
        assert "(no points)" in out
        assert out_csv.read_text().startswith("model,")

    def test_single_row_pareto_is_that_row(self, tmp_path, capsys):
        out_json = tmp_path / "one.json"
        run_cli(
            "sweep", "--models", "tiny_cnn", "--strategies", "dp",
            "--input-sizes", "8", "--num-classes", "10", "--preset", "small",
            "--no-cache", "--quiet", "--json", str(out_json),
        )
        capsys.readouterr()
        assert run_cli("report", str(out_json), "--pareto") == 0
        out = capsys.readouterr().out
        assert "(1/1 points non-dominated)" in out

    def test_tied_points_pareto_keeps_one(self, tmp_path, capsys):
        """Coincident rows collapse to a single front entry."""
        out_json = tmp_path / "tied.json"
        row = {
            "model": "tiny_cnn", "strategy": "dp", "input_size": 8,
            "chips": 1, "batch": 1, "mg_size": 2, "flit_bytes": 8,
            "cycles": 100, "time_ms": 0.1, "energy_mj": 1.0, "tops": 2.0,
            "throughput_inf_s": 10.0, "energy_per_inf_mj": 1.0,
            "cached": False,
        }
        out_json.write_text(json.dumps({"points": [row, dict(row)]}))
        assert run_cli("report", str(out_json), "--pareto") == 0
        out = capsys.readouterr().out
        assert "(1/2 points non-dominated)" in out

    def test_best_metric_missing_from_old_file_is_graceful(
        self, tmp_path, capsys
    ):
        """Pre-batch result files lack the throughput column; ranking by
        it must exit 2 with a message, not a traceback."""
        out_json = tmp_path / "old.json"
        row = {
            "model": "tiny_cnn", "strategy": "dp", "input_size": 8,
            "mg_size": 2, "flit_bytes": 8, "cycles": 100, "time_ms": 0.1,
            "energy_mj": 1.0, "tops": 2.0, "cached": False,
        }
        out_json.write_text(json.dumps({"points": [row]}))
        assert run_cli(
            "report", str(out_json), "--best", "throughput_inf_s",
        ) == 2
        assert "predates" in capsys.readouterr().err
        # the table itself still renders (missing columns show as '-')
        assert run_cli("report", str(out_json)) == 0
        assert " -" in capsys.readouterr().out


class TestSpotCheckOption:
    def test_sweep_with_spot_check(self, tmp_path, capsys):
        out_json = tmp_path / "sweep.json"
        assert run_cli(
            "sweep", "--models", "tiny_resnet",
            "--strategies", "generic,dp",
            "--input-sizes", "8", "--num-classes", "10",
            "--preset", "small", "--no-cache", "--quiet",
            "--spot-check", "1", "--spot-input-size", "8",
            "--json", str(out_json),
        ) == 0
        out = capsys.readouterr().out
        assert "cycle-accurate spot check" in out
        assert "validated" in out
        payload = json.loads(out_json.read_text())
        assert len(payload["spot_checks"]) == 1
        check = payload["spot_checks"][0]
        assert check["validated"] is True
        assert check["cycles"] > 0 and check["fast_cycles"] > 0


@pytest.fixture
def fault_plan_file(tmp_path):
    from repro.faults import (
        FaultPlan, ReplicaCrash, RetryPolicy, save_fault_plan,
    )

    path = tmp_path / "plan.json"
    save_fault_plan(
        FaultPlan(
            events=(ReplicaCrash(replica=1, at_cycle=200),),
            retry=RetryPolicy(max_attempts=3, backoff_cycles=10),
        ),
        path,
    )
    return str(path)


class TestServeFaults:
    def test_serve_with_fault_plan(self, fault_plan_file, tmp_path, capsys):
        out_json = tmp_path / "serve.json"
        assert run_cli(
            "serve", "tiny_mlp", "--preset", "small", "--strategy",
            "generic", "--input-size", "8", "--num-classes", "10",
            "--tier", "fast", "--batch", "6", "--replicas", "3",
            "--faults", fault_plan_file, "--json", str(out_json),
        ) == 0
        out = capsys.readouterr().out
        assert "faults: crash(r1@200)" in out
        assert "conservation" in out
        assert "goodput" in out
        payload = json.loads(out_json.read_text())
        assert payload["faults"] is not None
        report = payload["report"]
        assert report["submitted"] == \
            report["completed"] + report["dropped"]
        assert report["goodput_inf_per_s"] > 0

    def test_faults_imply_fleet_even_with_one_replica(self, fault_plan_file,
                                                      capsys):
        assert run_cli(
            "serve", "tiny_mlp", "--preset", "small", "--strategy",
            "generic", "--input-size", "8", "--num-classes", "10",
            "--tier", "fast", "--batch", "4", "--faults", fault_plan_file,
        ) == 0
        assert "conservation" in capsys.readouterr().out

    def test_sweep_fault_plans_axis(self, fault_plan_file, tmp_path, capsys):
        out_csv = tmp_path / "sweep.csv"
        assert run_cli(
            "sweep", "--models", "tiny_mlp", "--strategies", "generic",
            "--input-sizes", "8", "--num-classes", "10", "--preset",
            "small", "--batch", "6", "--replicas", "3", "--fault-plans",
            f"none,{fault_plan_file}", "--no-cache", "--quiet",
            "--csv", str(out_csv),
        ) == 0
        out = capsys.readouterr().out
        assert "2 points" in out
        assert "good/s" in out  # fault columns appear in the table
        header, first, second = out_csv.read_text().splitlines()[:3]
        assert "fault_plan" in header and "goodput_inf_s" in header
        assert "crash" in second and "crash" not in first


class TestErrorHygiene:
    """Every CLI verb turns typed errors into one-line nonzero exits."""

    @pytest.mark.parametrize("argv", [
        ("run", "no_such_model", "--preset", "small"),
        ("run", "missing.artifact", "--preset", "small"),
        ("compile", "no_such_model", "--preset", "small", "-o", "x.artifact"),
        ("inspect", "missing.artifact"),
        ("serve", "no_such_model", "--preset", "small"),
        ("serve", "missing.artifact", "--preset", "small"),
        ("serve", "tiny_mlp", "--preset", "small", "--input-size", "8",
         "--num-classes", "10", "--tier", "fast",
         "--faults", "missing_plan.json"),
        ("sweep", "--models", "no_such_model", "--preset", "small",
         "--no-cache", "--quiet"),
        ("sweep", "--models", "tiny_mlp", "--preset", "small",
         "--fault-plans", "missing_plan.json", "--no-cache", "--quiet"),
    ])
    def test_bad_input_exits_nonzero_with_message(self, argv, capsys):
        code = run_cli(*argv)
        assert code != 0
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "Traceback" not in err

    def test_malformed_fault_plan_is_one_line(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text('{"events": [{"type": "meteor_strike"}]}')
        assert run_cli(
            "serve", "tiny_mlp", "--preset", "small", "--input-size", "8",
            "--num-classes", "10", "--tier", "fast", "--faults", str(bad),
        ) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "meteor_strike" in err

    def test_malformed_trace_is_one_line(self, tmp_path, capsys):
        trace = tmp_path / "trace.txt"
        trace.write_text("0 100 not_a_cycle")
        assert run_cli(
            "serve", "tiny_mlp", "--preset", "small", "--input-size", "8",
            "--num-classes", "10", "--tier", "fast", "--trace", str(trace),
        ) == 2
        assert capsys.readouterr().err.startswith("error:")
