"""Shared fixtures for the test suite."""

import pytest

from repro.config import default_arch, small_test_arch


@pytest.fixture
def arch():
    """The tiny test architecture (fast to simulate)."""
    return small_test_arch()


@pytest.fixture
def table1_arch():
    """The paper's default architecture (Table I)."""
    return default_arch()
