"""Resident-weights serving sessions (PR 9).

A ``Deployment(..., resident_weights=True)`` executes each shard's
input-invariant weight-load prologue once per session; every later input
replays only activation traffic.  These tests pin the contract in both
fidelity tiers:

- outputs are bit-identical to the non-resident path (first submission
  and warm submissions alike);
- the warm path executes the load program exactly once per shard
  (engine counters) and warm energy excludes the load tallies;
- the steady-state law ``makespan(B) = load + warm_makespan(1) +
  (B - 1) * warm_bottleneck`` is exact for 1, 2 and 4 chips;
- a replica crash invalidates resident weights, so failover re-pays the
  load phase;
- artifact-loaded deployments (no execution plan) reject resident mode;
- the fault engine's ``load_offsets`` are the identity when absent;
- the explore sweep prices a ``resident_weights`` axis under cache
  schema v7.
"""

import numpy as np
import pytest

from repro.config import small_test_arch
from repro.errors import ConfigError, SimulationError
from repro.explore import SweepSpec, evaluate_fast, run_sweep
from repro.explore_cache import CACHE_SCHEMA_VERSION, ResultCache, point_key
from repro.faults import (
    FaultPlan,
    ReplicaCrash,
    RetryPolicy,
    run_fault_schedule,
)
from repro.serve import Deployment, Fleet
from repro.sim.blockengine import ENGINE_STATS
from repro.sim.fastmodel import FastReport

MODEL_KW = dict(input_size=8, num_classes=10)

#: (model, chips): tiny_mlp shards to at most 2 chips; tiny_cnn covers 4.
SHARDINGS = [("tiny_mlp", 1), ("tiny_mlp", 2), ("tiny_cnn", 4)]


@pytest.fixture()
def march():
    return small_test_arch()


def make_deployment(march, resident, chips=1, model="tiny_mlp",
                    tier="cyclesim"):
    return Deployment(
        model, arch=march, chips=chips, strategy="generic", tier=tier,
        resident_weights=resident, **MODEL_KW,
    )


class TestBitIdentity:
    @pytest.mark.parametrize("model,chips", SHARDINGS)
    def test_outputs_match_non_resident(self, march, model, chips):
        base = make_deployment(march, False, chips=chips, model=model)
        res = make_deployment(march, True, chips=chips, model=model)
        cold = res.submit(batch=3, seed=7)
        plain = base.submit(batch=3, seed=7)
        assert cold.validated and plain.validated
        for a, b in zip(cold.per_input_outputs, plain.per_input_outputs):
            assert set(a) == set(b)
            for name in a:
                np.testing.assert_array_equal(a[name], b[name])
        # Warm submissions stay bit-identical too.
        warm = res.submit(batch=3, seed=7)
        assert warm.validated
        for a, b in zip(warm.per_input_outputs, plain.per_input_outputs):
            for name in a:
                np.testing.assert_array_equal(a[name], b[name])

    def test_first_submission_pays_load_then_warm(self, march):
        dep = make_deployment(march, True)
        cold = dep.submit(batch=2, validate=False)
        assert cold.resident and cold.load_cycles > 0
        warm = dep.submit(batch=2, validate=False)
        assert warm.resident and warm.load_cycles == 0
        assert warm.makespan_cycles < cold.makespan_cycles


class TestLoadOncePerShard:
    @pytest.mark.parametrize("model,chips", SHARDINGS)
    def test_engine_counters(self, march, model, chips):
        dep = make_deployment(march, True, chips=chips, model=model)
        loads0 = ENGINE_STATS["resident_load_runs"]
        warms0 = ENGINE_STATS["resident_warm_runs"]
        dep.submit(batch=3, validate=False)
        assert ENGINE_STATS["resident_load_runs"] - loads0 == chips
        assert ENGINE_STATS["resident_warm_runs"] - warms0 == 3 * chips
        dep.submit(batch=2, validate=False)
        # No further load runs: the session weights stayed resident.
        assert ENGINE_STATS["resident_load_runs"] - loads0 == chips
        assert ENGINE_STATS["resident_warm_runs"] - warms0 == 5 * chips

    def test_warm_energy_excludes_load_tallies(self, march):
        dep = make_deployment(march, True)
        cold = dep.submit(batch=1, seed=0, validate=False)
        warm = dep.submit(batch=1, seed=0, validate=False)
        assert cold.load_energy_pj and any(
            v > 0 for v in cold.load_energy_pj.values()
        )
        assert warm.load_energy_pj == {}
        # Cold energy = warm energy + the run-once load tallies, exactly.
        for key, value in cold.energy_breakdown_pj.items():
            expected = warm.energy_breakdown_pj.get(key, 0.0)
            expected += cold.load_energy_pj.get(key, 0.0)
            assert value == pytest.approx(expected)


class TestSteadyStateLaw:
    @pytest.mark.parametrize("tier", ["cyclesim", "fast"])
    @pytest.mark.parametrize("model,chips", SHARDINGS)
    def test_makespan_law(self, march, tier, model, chips):
        dep = make_deployment(march, True, chips=chips, model=model,
                              tier=tier)
        cold = dep.submit(batch=4, validate=False)
        w1 = dep.submit(batch=1, validate=False)
        w2 = dep.submit(batch=2, validate=False)
        w4 = dep.submit(batch=4, validate=False)
        assert cold.load_cycles > 0
        interval = w2.makespan_cycles - w1.makespan_cycles
        assert interval > 0
        # warm_makespan(B) = warm_makespan(1) + (B - 1) * bottleneck
        assert w4.makespan_cycles == w1.makespan_cycles + 3 * interval
        # makespan(B) = load + warm_makespan(B), exact
        assert cold.makespan_cycles == cold.load_cycles + w4.makespan_cycles

    @pytest.mark.parametrize("tier", ["cyclesim", "fast"])
    def test_warm_rate_beats_cold_rate(self, march, tier):
        res = make_deployment(march, True, tier=tier)
        base = make_deployment(march, False, tier=tier)
        res.submit(batch=1, validate=False)  # pay the load once
        warm = res.submit(batch=4, validate=False)
        plain = base.submit(batch=4, validate=False)
        assert warm.makespan_cycles < plain.makespan_cycles


class TestCrashFailover:
    @pytest.mark.parametrize("tier", ["cyclesim", "fast"])
    def test_crash_invalidates_resident_weights(self, march, tier):
        fleet = Fleet(
            "tiny_mlp", march, strategy="generic", tier=tier, replicas=2,
            resident_weights=True, **MODEL_KW,
        )
        cold = fleet.submit(batch=4, validate=False)
        assert cold.resident
        load = cold.replica_load_cycles[0]
        assert load > 0 and cold.replica_load_cycles == [load, load]
        warm = fleet.submit(batch=4, validate=False)
        assert warm.replica_load_cycles == [0, 0]
        plan = FaultPlan(
            events=(ReplicaCrash(replica=1, at_cycle=load + 50),),
            retry=RetryPolicy(max_attempts=3, backoff_cycles=10),
        )
        crashed = fleet.submit(batch=4, validate=False, faults=plan)
        assert crashed.replica_load_cycles == [0, 0]  # was warm going in
        # Failover re-pays the load on the crashed replica only.
        after = fleet.submit(batch=4, validate=False)
        assert after.replica_load_cycles == [0, load]
        assert after.makespan_cycles > warm.makespan_cycles


class TestArtifactRejection:
    @pytest.mark.parametrize("tier", ["cyclesim", "fast"])
    def test_artifact_cannot_open_resident_session(self, march, tier,
                                                   tmp_path):
        from repro.artifact import save_artifact
        from repro.workflow import compile_model

        compiled = compile_model(
            "tiny_mlp", arch=march, strategy="generic", **MODEL_KW
        )
        path = tmp_path / "tiny_mlp.artifact"
        save_artifact(compiled, path)
        with pytest.raises(ConfigError, match="resident"):
            Deployment.load(path, arch=march, tier=tier,
                            resident_weights=True)


class TestFaultEngineLoadOffsets:
    LINK = small_test_arch().interchip

    def run(self, **kwargs):
        return run_fault_schedule(
            [0, 0, 0, 0], [100], [], self.LINK, 2, **kwargs
        )

    def test_none_equals_zero_offsets(self):
        plain = self.run()
        zeros = self.run(load_offsets=[0, 0])
        assert plain.attempts == zeros.attempts
        assert plain.finishes == zeros.finishes
        assert plain.makespan == zeros.makespan

    def test_offsets_delay_first_service(self):
        shifted = self.run(load_offsets=[500, 500])
        plain = self.run()
        assert all(a.dispatch_cycle >= 500 for a in shifted.attempts)
        assert all(a.start_cycle >= 500 for a in shifted.attempts)
        assert shifted.makespan == plain.makespan + 500

    def test_offset_length_validated(self):
        with pytest.raises(SimulationError, match="load_offsets"):
            self.run(load_offsets=[10])


class TestResidentReportSerialization:
    def test_serve_report_conditional_block(self, march):
        res = make_deployment(march, True).submit(batch=1, validate=False)
        plain = make_deployment(march, False).submit(batch=1, validate=False)
        assert res.to_dict()["resident"] is True
        assert res.to_dict()["load_cycles"] > 0
        for key in ("resident", "load_cycles", "load_energy_pj"):
            assert key not in plain.to_dict()

    def test_fast_report_load_cycles_round_trip(self):
        loaded = FastReport(
            cycles=10, energy_breakdown_pj={"x": 1.0}, macs=5,
            clock_mhz=1000, load_cycles=7,
        )
        data = loaded.to_dict()
        assert data["load_cycles"] == 7
        assert FastReport.from_dict(data) == loaded
        bare = FastReport(
            cycles=10, energy_breakdown_pj={"x": 1.0}, macs=5,
            clock_mhz=1000,
        )
        assert "load_cycles" not in bare.to_dict()
        assert FastReport.from_dict(bare.to_dict()) == bare


class TestExploreResidentAxis:
    KW = dict(strategy="generic", input_size=8, num_classes=10)

    def test_single_shot_recomposes_exactly(self):
        plain = evaluate_fast("tiny_mlp", **self.KW)
        res = evaluate_fast("tiny_mlp", resident_weights=True, **self.KW)
        assert res.report.load_cycles > 0
        # warm + load recompose the non-resident single shot exactly.
        assert res.cycles == plain.cycles
        assert res.report.total_energy_pj == pytest.approx(
            plain.report.total_energy_pj
        )

    def test_batch_amortizes_load(self):
        b1 = evaluate_fast("tiny_mlp", resident_weights=True, **self.KW)
        b4 = evaluate_fast("tiny_mlp", batch=4, resident_weights=True,
                           **self.KW)
        plain4 = evaluate_fast("tiny_mlp", batch=4, **self.KW)
        load = b1.report.load_cycles
        warm = b1.cycles - load
        assert b4.cycles == load + 4 * warm
        assert b4.cycles < plain4.cycles
        assert b4.energy_per_inf_mj < plain4.energy_per_inf_mj

    def test_sweep_axis_and_derivation(self):
        spec = SweepSpec(
            models=("tiny_mlp",), strategies=("generic",), input_sizes=(8,),
            num_classes=10, batch_sizes=(1, 4),
            resident_modes=(False, True),
        )
        assert len(spec) == 4
        result = run_sweep(spec)
        by_coords = {
            (pt.batch, pt.resident_weights): pt for pt in result.points
        }
        assert set(by_coords) == {(1, False), (1, True), (4, False),
                                  (4, True)}
        direct = evaluate_fast("tiny_mlp", batch=4, resident_weights=True,
                               **self.KW)
        assert (by_coords[(4, True)].report.to_dict()
                == direct.report.to_dict())
        row = by_coords[(4, True)].to_dict()
        assert row["resident_weights"] is True
        assert row["load_cycles"] > 0

    def test_resident_modes_validated(self):
        with pytest.raises(ConfigError, match="resident modes"):
            SweepSpec(models=("tiny_mlp",), resident_modes=())
        with pytest.raises(ConfigError, match="resident modes"):
            SweepSpec(models=("tiny_mlp",), resident_modes=(1,))


class TestCacheSchemaV7:
    def test_schema_version_bumped(self):
        assert CACHE_SCHEMA_VERSION == 7

    def test_resident_flag_changes_point_key(self):
        arch = small_test_arch()
        kw = dict(strategy="generic", input_size=8, num_classes=10)
        assert point_key("tiny_mlp", arch, **kw) != point_key(
            "tiny_mlp", arch, resident=True, **kw
        )

    def test_resident_points_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path, max_bytes=0)
        spec = SweepSpec(
            models=("tiny_mlp",), strategies=("generic",), input_sizes=(8,),
            num_classes=10, resident_modes=(False, True),
        )
        first = run_sweep(spec, cache=cache)
        second = run_sweep(spec, cache=cache)
        assert second.stats.cache_hits == len(spec)
        for a, b in zip(first.points, second.points):
            assert b.cached
            assert a.report.to_dict() == b.report.to_dict()
            assert a.resident_weights == b.resident_weights


class TestFastTierEligibilityMirror:
    """The fast tier's hoisting rule must track the compiler's per-core
    split, including nodes that span eligible and ineligible cores."""

    def test_partial_node_hoist_matches_compiler(self, march):
        # tiny_cnn's first conv spreads over one single-stage core and
        # several multi-stage cores: the per-core program split hoists
        # only the single-stage core's load, so the fast tier must hoist
        # exactly the matching replicas -- not all-or-nothing per node.
        from repro import compile_model
        from repro.compiler.codegen.lowering import ProgramGenerator
        from repro.sim.fastmodel import (
            analyze_plan_resident,
            resident_plan_replicas,
        )

        compiled = compile_model(
            "tiny_cnn", arch=march, strategy="dp", **MODEL_KW
        )
        plan = compiled.plan
        per_node = resident_plan_replicas(plan)
        assert per_node, "fast tier found nothing hoistable"
        partial = False
        for stage in plan.stages:
            for node in stage.nodes:
                total = len(stage.mappings[node.name].replicas)
                hoisted = len(per_node.get(node.name, ()))
                if 0 < hoisted < total:
                    partial = True
        assert partial, "expected a partially-hoistable node in tiny_cnn"
        assert ProgramGenerator(plan).resident_cores()
        _, load_cycles, load_energy = analyze_plan_resident(plan)
        assert load_cycles > 0
        assert sum(load_energy.values()) > 0

    @pytest.mark.parametrize("model,chips", SHARDINGS)
    def test_tiers_agree_on_hoistability(self, march, model, chips):
        # Whenever the compiler hoists a load segment, the analytic tier
        # must price a nonzero load phase too (and vice versa), so a
        # sweep's resident column never contradicts a cyclesim serve.
        fast = make_deployment(
            march, True, chips=chips, model=model, tier="fast"
        ).submit(batch=1)
        cyc = make_deployment(
            march, True, chips=chips, model=model
        ).submit(batch=1, validate=False)
        assert (fast.load_cycles > 0) == (cyc.load_cycles > 0)
