"""Tests for dependency-closure enumeration (Alg. 1 state compression)."""

from itertools import combinations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler.closures import (
    closure_masks,
    is_subset,
    mask_nodes,
    prefix_masks,
)


def _brute_force_closures(deps):
    """All downward-closed subsets, by explicit enumeration."""
    n = len(deps)
    result = []
    for size in range(n + 1):
        for combo in combinations(range(n), size):
            chosen = set(combo)
            if all(deps[i] <= chosen for i in chosen):
                mask = sum(1 << i for i in chosen)
                result.append(mask)
    return sorted(result)


@st.composite
def _random_dag(draw):
    n = draw(st.integers(1, 8))
    deps = []
    for i in range(n):
        if i == 0:
            deps.append(set())
            continue
        preds = draw(st.sets(st.integers(0, i - 1), max_size=min(i, 3)))
        deps.append(preds)
    return deps


class TestClosures:
    def test_chain(self):
        deps = [set(), {0}, {1}, {2}]
        masks = closure_masks(deps)
        assert masks == prefix_masks(4)

    def test_diamond(self):
        #    0
        #   / \
        #  1   2
        #   \ /
        #    3
        deps = [set(), {0}, {0}, {1, 2}]
        masks = closure_masks(deps)
        assert sorted(masks) == _brute_force_closures(deps)
        assert len(masks) == 6  # {}, {0}, {01}, {02}, {012}, {0123}

    @settings(max_examples=60, deadline=None)
    @given(_random_dag())
    def test_matches_brute_force(self, deps):
        assert sorted(closure_masks(deps)) == _brute_force_closures(deps)

    def test_limit_falls_back_to_prefixes(self):
        # A wide antichain explodes; the fallback must stay valid.
        deps = [set() for _ in range(20)]
        masks = closure_masks(deps, limit=64)
        assert masks == prefix_masks(20)

    def test_full_mask_always_present(self):
        deps = [set(), {0}, {0}]
        masks = closure_masks(deps)
        assert (1 << 3) - 1 in masks

    def test_rejects_non_topological(self):
        import pytest

        from repro.errors import CompileError

        with pytest.raises(CompileError):
            closure_masks([{1}, set()])

    def test_helpers(self):
        assert mask_nodes(0b1011) == [0, 1, 3]
        assert is_subset(0b001, 0b011)
        assert not is_subset(0b100, 0b011)
