"""Batched streaming inference: the throughput-mode contract.

The contract under test (``docs/ARCHITECTURE.md``, "Batched streaming
inference"):

- **per-input isolation**: a batched run's per-input outputs are
  bit-identical to independent single-input runs (no cross-input
  state), on any chip count;
- **overlap**: for ``C >= 2`` chips the streamed makespan is strictly
  less than ``B`` times the single-input makespan (inputs really do
  overlap across chips); a single chip replays sequentially (exactly
  ``B`` times);
- **one steady-state law**: the closed-form bottleneck interval
  (:func:`steady_state_interval`, what ``analyze_sharded`` prices) is
  exactly the completion interval the streaming scheduler converges to,
  and ``makespan(B) = makespan(1) + (B-1) * interval`` on the golden
  configs;
- the batch axis reaches the sweep engine, cache keys and CLI.
"""

import numpy as np
import pytest

from repro import (
    compile_model,
    evaluate_fast,
    run_sweep,
    run_workflow,
    simulate,
    SweepSpec,
)
from repro.config import InterChipConfig
from repro.errors import ConfigError
from repro.sim.multichip import (
    pipeline_schedule,
    steady_state_interval,
    streaming_schedule,
)

BATCH = 4


# ---------------------------------------------------------------------------
# Schedule-level golden configs (both fidelity tiers share these functions)
# ---------------------------------------------------------------------------

class TestScheduleLaw:
    LINK = InterChipConfig(
        bandwidth_bytes_per_cycle=8, latency_cycles=100, energy_pj_per_byte=1.0
    )

    #: (name, chip_cycles, transfers) -- the golden streaming configs.
    GOLDEN = (
        ("chip_bound_chain", [1000, 500], [(0, 1, 80)]),
        ("link_bound_chain", [40, 40], [(0, 1, 4096)]),
        ("three_chip_mixed", [300, 900, 200], [(0, 1, 256), (1, 2, 64)]),
        ("skip_edge", [500, 200, 400], [(0, 1, 128), (0, 2, 128), (1, 2, 64)]),
        ("single_chip", [750], []),
    )

    @pytest.mark.parametrize(
        "name,cycles,transfers", GOLDEN, ids=[g[0] for g in GOLDEN]
    )
    @pytest.mark.parametrize("batch", (1, 2, 4, 7))
    def test_closed_form_matches_streaming_recurrence(
        self, name, cycles, transfers, batch
    ):
        """fill + drain + (B-1) * bottleneck, exactly."""
        starts, finishes, input_finishes, makespan = streaming_schedule(
            [cycles] * batch, transfers, self.LINK
        )
        _, _, single = pipeline_schedule(cycles, transfers, self.LINK)
        interval = steady_state_interval(cycles, transfers, self.LINK)
        assert len(input_finishes) == batch
        assert makespan == single + (batch - 1) * interval
        diffs = [
            b - a for a, b in zip(input_finishes, input_finishes[1:])
        ]
        assert diffs == [interval] * (batch - 1)

    def test_single_input_degenerates_to_pipeline_schedule(self):
        for _, cycles, transfers in self.GOLDEN:
            starts, finishes, input_finishes, makespan = streaming_schedule(
                [cycles], transfers, self.LINK
            )
            p_starts, p_finishes, p_makespan = pipeline_schedule(
                cycles, transfers, self.LINK
            )
            assert starts[0] == p_starts
            assert finishes[0] == p_finishes
            assert makespan == p_makespan == input_finishes[0]

    def test_bottleneck_is_busiest_resource(self):
        # chip-bound: the slowest shard sets the rate.
        assert steady_state_interval([1000, 500], [(0, 1, 80)], self.LINK) \
            == 1000
        # link-bound: per-input serialisation beats every chip.
        assert steady_state_interval([40, 40], [(0, 1, 4096)], self.LINK) \
            == 512
        # two transfers on one link accumulate; latency never contributes.
        assert steady_state_interval(
            [10], [(0, 1, 800), (0, 1, 800)], self.LINK
        ) == 200

    def test_empty_pipeline(self):
        assert steady_state_interval([], [], self.LINK) == 0
        assert pipeline_schedule([], [], self.LINK) == ([], [], 0)


# ---------------------------------------------------------------------------
# Cycle-level workflow: isolation, overlap, engines
# ---------------------------------------------------------------------------

def _run(arch, chips, batch=1, seed=0, **kwargs):
    return run_workflow(
        "tiny_resnet", arch=arch, strategy="dp", input_size=8,
        num_classes=10, chips=chips, batch=batch, seed=seed, **kwargs,
    )


class TestBatchedWorkflow:
    @pytest.mark.parametrize("chips", (1, 2, 4))
    def test_per_input_outputs_bit_identical_to_independent_runs(
        self, arch, chips
    ):
        batched = _run(arch, chips, batch=BATCH)
        assert batched.validated
        assert batched.batch == BATCH
        assert len(batched.per_input_outputs) == BATCH
        singles = [_run(arch, chips, seed=i) for i in range(BATCH)]
        for i, single in enumerate(singles):
            assert set(batched.per_input_outputs[i]) == set(single.outputs)
            for name, expected in single.outputs.items():
                assert np.array_equal(
                    batched.per_input_outputs[i][name], expected
                ), f"chips={chips} input {i} output {name!r} diverged"

    @pytest.mark.parametrize("chips", (2, 4))
    def test_streaming_overlaps_chips(self, arch, chips):
        single = _run(arch, chips).report.cycles
        batched = _run(arch, chips, batch=BATCH).report
        assert batched.cycles < BATCH * single
        assert batched.cycles > single
        assert batched.input_finishes[0] == single  # fill = one makespan

    def test_single_chip_replays_sequentially(self, arch):
        single = _run(arch, 1).report
        batched = _run(arch, 1, batch=BATCH).report
        assert batched.cycles == BATCH * single.cycles
        assert batched.num_chips == 1
        assert batched.steady_interval_cycles == single.cycles
        assert batched.input_finishes == [
            (i + 1) * single.cycles for i in range(BATCH)
        ]

    @pytest.mark.parametrize("chips", (2, 4))
    def test_scheduler_interval_matches_closed_form(self, arch, chips):
        report = _run(arch, chips, batch=BATCH).report
        diffs = [
            b - a
            for a, b in zip(report.input_finishes, report.input_finishes[1:])
        ]
        assert diffs == [report.steady_interval_cycles] * (BATCH - 1)
        # and the reported interval is the closed-form bottleneck of the
        # measured per-chip windows.
        compiled = _run(arch, chips).compiled
        edges = [
            (t.src_chip, t.dst_chip, t.nbytes) for t in compiled.transfers
        ]
        assert report.steady_interval_cycles == steady_state_interval(
            [r.cycles for r in report.chip_reports], edges, arch.interchip
        )
        assert report.cycles == report.input_finishes[0] + (
            BATCH - 1
        ) * report.steady_interval_cycles

    def test_report_aggregates_whole_stream(self, arch):
        single = _run(arch, 2).report
        batched = _run(arch, 2, batch=BATCH).report
        assert batched.macs == BATCH * single.macs
        assert batched.instructions == BATCH * single.instructions
        assert batched.interchip_bytes == BATCH * single.interchip_bytes
        assert batched.total_energy_pj == pytest.approx(
            BATCH * single.total_energy_pj
        )
        assert batched.energy_per_inference_mj == pytest.approx(
            single.total_energy_mj
        )
        assert batched.throughput_inf_per_s > 0
        payload = batched.to_dict()
        assert payload["batch"] == BATCH
        assert len(payload["input_finishes"]) == BATCH
        assert payload["steady_interval_cycles"] == \
            batched.steady_interval_cycles

    def test_engines_bit_identical_on_streams(self, arch):
        compiled = compile_model(
            "tiny_resnet", arch, "dp", chips=2, input_size=8, num_classes=10
        )
        a = simulate(compiled, batch=3, engine="interp")
        b = simulate(compiled, batch=3, engine="block")
        ra, rb = a.report, b.report
        assert ra.cycles == rb.cycles
        assert ra.input_finishes == rb.input_finishes
        assert ra.energy_breakdown_pj == rb.energy_breakdown_pj
        for i in range(3):
            for name in a.per_input_outputs[i]:
                assert np.array_equal(
                    a.per_input_outputs[i][name], b.per_input_outputs[i][name]
                )

    def test_explicit_input_list(self, arch):
        compiled = compile_model(
            "tiny_cnn", arch, "dp", input_size=8, num_classes=10
        )
        rng = np.random.default_rng(3)
        shape = compiled.graph.tensor(
            compiled.graph.input_operators[0].output
        ).shape
        inputs = [
            rng.integers(-100, 101, size=shape, dtype=np.int8)
            for _ in range(2)
        ]
        result = simulate(compiled, inputs, batch=2)
        assert result.validated and result.batch == 2
        # a bare list also sets the batch implicitly
        implicit = simulate(compiled, inputs)
        assert implicit.batch == 2
        assert implicit.report.cycles == result.report.cycles

    def test_stacked_array_and_nested_list_inputs(self, arch):
        compiled = compile_model(
            "tiny_cnn", arch, "dp", input_size=8, num_classes=10
        )
        shape = compiled.graph.tensor(
            compiled.graph.input_operators[0].output
        ).shape
        rng = np.random.default_rng(9)
        stack = rng.integers(-100, 101, size=(2, *shape), dtype=np.int8)
        # a stacked (B, *input_shape) array is a batch of B
        stacked = simulate(compiled, stack, batch=2)
        assert stacked.batch == 2 and stacked.validated
        as_list = simulate(compiled, [stack[0], stack[1]], batch=2)
        for i in range(2):
            for name in stacked.per_input_outputs[i]:
                assert np.array_equal(
                    stacked.per_input_outputs[i][name],
                    as_list.per_input_outputs[i][name],
                )
        # one input handed in as a nested Python list stays a batch of 1
        nested = simulate(compiled, stack[0].tolist())
        assert nested.batch == 1 and nested.validated
        # a stacked array with batch left at 1 sets the batch implicitly,
        # exactly like the equivalent list would
        implicit = simulate(compiled, stack)
        assert implicit.batch == 2 and implicit.validated

    def test_run_streaming_isolated_from_prior_run(self, arch):
        """run_streaming() on an already-consumed simulator must still
        honour per-input isolation (fresh chip state per input)."""
        from repro.sim.multichip import MultiChipSimulator
        from repro.sim.functional import random_input

        compiled = compile_model(
            "tiny_resnet", arch, "dp", chips=2, input_size=8, num_classes=10
        )
        inputs = [random_input(compiled.graph, seed=i) for i in range(2)]
        sim = MultiChipSimulator(compiled)
        sim.write_input(None, inputs[0])
        sim.run()  # dirty the chip state
        _, outs = sim.run_streaming(inputs)
        fresh = MultiChipSimulator(compiled)
        _, expected = fresh.run_streaming(inputs)
        for i in range(2):
            for name in expected[i]:
                assert np.array_equal(outs[i][name], expected[i][name])

    def test_invalid_batch_arguments_rejected(self, arch):
        compiled = compile_model(
            "tiny_cnn", arch, "dp", input_size=8, num_classes=10
        )
        shape = compiled.graph.tensor(
            compiled.graph.input_operators[0].output
        ).shape
        with pytest.raises(ConfigError, match="batch"):
            simulate(compiled, batch=0)
        with pytest.raises(ConfigError, match="batch"):
            simulate(compiled, np.zeros(shape, np.int8), batch=2)
        with pytest.raises(ConfigError, match="input arrays"):
            simulate(compiled, [np.zeros(shape, np.int8)], batch=3)
        with pytest.raises(ConfigError, match="shape"):
            simulate(
                compiled,
                [np.zeros(shape, np.int8), np.zeros((2, 2), np.int8)],
                batch=2,
            )


# ---------------------------------------------------------------------------
# The serving law under NoC-batched multipass bodies
# ---------------------------------------------------------------------------

class TestMultipassStreamingLaw:
    """``makespan(B) = makespan(1) + (B-1) * bottleneck`` must hold
    bit-exactly when the shard bodies are multipass weight-streaming
    loops executed through the engine's iteration-major NoC replay --
    the serving-rate law may not drift by a single cycle whether the
    NoC windows are replayed closed-form or stepped.  Covered for
    C in {1, 2, 4} chips in both fidelity tiers."""

    WS = dict(branches=4, in_channels=64, width=4, kernel=4)

    def _compiled(self, arch, chips):
        return compile_model(
            "weight_stream", arch, "generic", chips=chips, **self.WS
        )

    @pytest.mark.parametrize("chips", (1, 2, 4))
    def test_cycle_tier_law_bit_exact(self, arch, chips):
        from repro.sim import blockengine as be

        compiled = self._compiled(arch, chips)
        be.reset_stats()
        single = simulate(compiled, engine="block").report
        assert be.ENGINE_STATS["noc_batch_successes"] > 0, (
            "the multipass shard bodies did not take the NoC replay path"
        )
        batched = simulate(compiled, batch=BATCH, engine="block").report
        interval = batched.steady_interval_cycles
        assert interval > 0
        assert batched.cycles == single.cycles + (BATCH - 1) * interval
        diffs = [
            b - a
            for a, b in zip(batched.input_finishes, batched.input_finishes[1:])
        ]
        assert diffs == [interval] * (BATCH - 1)
        # The law must come out identically with every NoC window stepped.
        interp = simulate(compiled, batch=BATCH, engine="interp").report
        assert interp.cycles == batched.cycles
        assert interp.input_finishes == batched.input_finishes
        assert interp.energy_breakdown_pj == batched.energy_breakdown_pj

    @pytest.mark.parametrize("chips", (1, 2, 4))
    def test_fast_tier_law_bit_exact(self, arch, chips):
        from repro.sim.fastmodel import (
            analyze_plan,
            analyze_sharded,
            stream_batched,
        )

        compiled = self._compiled(arch, chips)
        if chips == 1:
            one = analyze_plan(compiled.plan)
        else:
            one = analyze_sharded(
                compiled.sharding, [c.plan for c in compiled.chips], arch
            )
        four = stream_batched(one, BATCH)
        interval = four.steady_interval_cycles
        assert interval > 0
        assert four.cycles == one.cycles + (BATCH - 1) * interval
        if chips == 1:
            # no pipeline to overlap: sequential replay, interval is one
            # whole makespan
            assert interval == one.cycles
            assert four.cycles == BATCH * one.cycles


# ---------------------------------------------------------------------------
# Fast model: the same law, closed form
# ---------------------------------------------------------------------------

class TestFastModelStreaming:
    @pytest.mark.parametrize("chips", (2, 4))
    def test_sharded_closed_form_law(self, arch, chips):
        one = evaluate_fast("tiny_resnet", arch, "dp", 8, 10, chips=chips)
        four = evaluate_fast(
            "tiny_resnet", arch, "dp", 8, 10, chips=chips, batch=BATCH
        )
        interval = four.report.steady_interval_cycles
        assert interval > 0
        assert four.report.cycles == one.report.cycles + (BATCH - 1) * interval
        assert four.report.cycles < BATCH * one.report.cycles
        assert four.report.macs == BATCH * one.report.macs
        assert four.report.total_energy_pj == pytest.approx(
            BATCH * one.report.total_energy_pj
        )

    def test_single_chip_sequential_replay(self, arch):
        one = evaluate_fast("tiny_cnn", arch, "dp", 8, 10)
        four = evaluate_fast("tiny_cnn", arch, "dp", 8, 10, batch=BATCH)
        assert four.report.cycles == BATCH * one.report.cycles
        assert four.report.steady_interval_cycles == one.report.cycles
        assert four.report.throughput_inf_per_s == pytest.approx(
            arch.chip.clock_mhz * 1e6 / one.report.cycles
        )
        assert four.report.energy_per_inference_mj == pytest.approx(
            one.report.total_energy_mj
        )

    def test_throughput_mode_beats_latency_mode_at_load(self, arch):
        """The co-design question batching answers: at load, a 2-chip
        pipeline sustains a higher rate than its single-shot latency
        suggests (bottleneck-bound vs makespan-bound)."""
        point = evaluate_fast(
            "tiny_resnet", arch, "dp", 8, 10, chips=2, batch=8
        )
        latency_rate = arch.chip.clock_mhz * 1e6 / point.report.cycles * 8
        assert point.report.throughput_inf_per_s > latency_rate

    def test_fast_report_round_trips_batch_fields(self, arch):
        from repro.sim.fastmodel import FastReport

        report = evaluate_fast(
            "tiny_cnn", arch, "dp", 8, 10, chips=2, batch=3
        ).report
        assert FastReport.from_dict(report.to_dict()) == report


# ---------------------------------------------------------------------------
# Sweep axis, cache keys, CLI
# ---------------------------------------------------------------------------

class TestBatchSweepAxis:
    def test_batch_is_a_sweep_axis(self, arch):
        spec = SweepSpec(
            models=("tiny_cnn",), strategies=("dp",), input_sizes=(8,),
            num_classes=10, base_arch=arch, chip_counts=(1, 2),
            batch_sizes=(1, 4),
        )
        assert len(spec) == 4
        result = run_sweep(spec)
        assert [(p.chips, p.batch) for p in result.points] == [
            (1, 1), (1, 4), (2, 1), (2, 4),
        ]
        by_coord = {(p.chips, p.batch): p for p in result.points}
        assert by_coord[(1, 4)].cycles == 4 * by_coord[(1, 1)].cycles
        assert by_coord[(2, 4)].cycles < 4 * by_coord[(2, 1)].cycles

    def test_batch_axis_shares_one_base_analysis(self, arch, monkeypatch):
        """The batch axis is a closed-form rescaling: sweeping
        batch_sizes=(1, 2, 4) must plan each base point once, and the
        derived reports must be bit-identical to direct evaluation."""
        import repro.explore as explore

        calls = []
        real_plan_graph = explore.plan_graph

        def counting_plan_graph(*args, **kwargs):
            calls.append(1)
            return real_plan_graph(*args, **kwargs)

        monkeypatch.setattr(explore, "plan_graph", counting_plan_graph)
        spec = SweepSpec(
            models=("tiny_cnn",), strategies=("dp",), input_sizes=(8,),
            num_classes=10, base_arch=arch, batch_sizes=(1, 2, 4),
        )
        result = run_sweep(spec)
        assert len(calls) == 1  # one base analysis for three batch points
        for point in result.points:
            direct = evaluate_fast(
                "tiny_cnn", arch, "dp", 8, 10, batch=point.batch
            )
            assert point.report == direct.report

    def test_parallel_batch_sweep_equals_serial(self, arch):
        """The pool path evaluates unique base points and derives batch
        variants in-parent; results must stay bit-identical to serial."""
        spec = SweepSpec(
            models=("tiny_cnn", "tiny_resnet"), strategies=("dp",),
            input_sizes=(8,), num_classes=10, base_arch=arch,
            chip_counts=(1, 2), batch_sizes=(1, 4),
        )
        serial = run_sweep(spec)
        parallel = run_sweep(spec, workers=2)
        for a, b in zip(serial.points, parallel.points):
            assert a.report == b.report
            assert (a.chips, a.batch) == (b.chips, b.batch)

    def test_cache_key_distinguishes_batch(self, arch):
        from repro.explore_cache import point_key

        assert point_key("tiny_cnn", arch, "dp", 8, 10, None, 2, 1) != \
            point_key("tiny_cnn", arch, "dp", 8, 10, None, 2, 4)

    def test_batched_points_round_trip_through_cache(self, arch, tmp_path):
        from repro.explore_cache import ResultCache

        spec = SweepSpec(
            models=("tiny_cnn",), strategies=("dp",), input_sizes=(8,),
            num_classes=10, base_arch=arch, batch_sizes=(1, 4),
        )
        cache = ResultCache(tmp_path)
        first = run_sweep(spec, cache=cache)
        second = run_sweep(spec, cache=cache)
        assert second.stats.cache_hits == 2
        for a, b in zip(first.points, second.points):
            assert a.report == b.report
            assert a.batch == b.batch

    def test_point_dict_has_throughput_columns(self, arch):
        point = evaluate_fast("tiny_cnn", arch, "dp", 8, 10, batch=2)
        row = point.to_dict()
        assert row["batch"] == 2
        assert row["throughput_inf_s"] == pytest.approx(
            point.report.throughput_inf_per_s
        )
        assert row["energy_per_inf_mj"] == pytest.approx(
            point.report.energy_per_inference_mj
        )

    def test_invalid_batch_sizes_rejected(self):
        with pytest.raises(ConfigError, match="batch sizes"):
            SweepSpec(models=("tiny_cnn",), batch_sizes=(0,))


class TestBatchCLI:
    def test_run_batch_flag(self, capsys):
        from repro.cli import main

        assert main([
            "run", "tiny_resnet", "--preset", "small", "--input-size", "8",
            "--chips", "2", "--batch", "3",
        ]) == 0
        out = capsys.readouterr().out
        assert "3 inputs streamed" in out
        assert "inferences/s" in out
        assert "each in isolation" in out

    def test_sweep_batch_axis_reaches_report(self, tmp_path, capsys):
        from repro.cli import main

        out_json = tmp_path / "sweep.json"
        assert main([
            "sweep", "--models", "tiny_cnn", "--strategies", "dp",
            "--input-sizes", "8", "--num-classes", "10", "--preset", "small",
            "--batch", "1,4", "--no-cache", "--quiet",
            "--json", str(out_json), "--csv", str(tmp_path / "sweep.csv"),
        ]) == 0
        capsys.readouterr()
        assert main([
            "report", str(out_json), "--best", "throughput_inf_s",
        ]) == 0
        out = capsys.readouterr().out
        assert "top 2 by throughput_inf_s" in out
        csv_text = (tmp_path / "sweep.csv").read_text()
        assert "batch" in csv_text.splitlines()[0]
        assert "throughput_inf_s" in csv_text.splitlines()[0]
