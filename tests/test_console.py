"""The operator console: event-stream tables + headless snapshot.

The snapshot contract: folding a drained session's recorded event
stream through :class:`~repro.console.ConsoleState` yields the operator
tables -- per-shard utilisation, replica health, queue depth, rolling
p50/p99 -- as one JSON-able dict, deterministic for virtual-clock
sessions, with the closed-form
:func:`~repro.sim.fastmodel.steady_state_utilization` cross-check next
to the measured numbers.  The live Textual app renders the same state;
its import is optional and failure points at ``--snapshot``.
"""

import json

import pytest

from repro import Fleet, FaultPlan, ReplicaCrash, RetryPolicy
from repro.config import InterChipConfig
from repro.console import (
    ConsoleState,
    console_snapshot,
    drive_session,
    headless_watch,
    snapshot_json,
)
from repro.errors import ConfigError
from repro.runtime import (
    ReplicaStateChanged,
    RequestAdmitted,
    RequestCompleted,
    RequestDropped,
)
from repro.serve import Deployment


def _deployment(arch, **kw):
    return Deployment(
        "tiny_mlp", arch, input_size=8, num_classes=10, **kw
    )


def _fleet(arch, **kw):
    return Fleet("tiny_mlp", arch, input_size=8, num_classes=10, **kw)


RELEASES = [0, 300, 600, 900, 1200, 1500]


# ---------------------------------------------------------------------------
# ConsoleState: pure event folding
# ---------------------------------------------------------------------------

class TestConsoleState:
    def test_window_must_be_positive(self):
        with pytest.raises(ConfigError, match="window"):
            ConsoleState([100], 1, window=0)

    def test_counts_and_queue_depth(self):
        state = ConsoleState([100], 2, window=8)
        state.observe(RequestAdmitted(0, 0, 0, 0))
        state.observe(RequestAdmitted(1, 0, 1, 0))
        assert state.counts()["in_flight"] == 2
        state.observe(RequestCompleted(0, 0, 0, 500, 500, 1))
        counts = state.counts()
        assert counts["completed"] == 1
        assert counts["in_flight"] == 1
        # Request 0's promised finish (500) is past now (release 0).
        assert state.queue_depth(0) == 1
        assert state.queue_depth(1) == 1

    def test_drop_reasons_accumulate(self):
        state = ConsoleState([100], 1, window=8)
        state.observe(RequestDropped(0, 10, "deadline", 1))
        state.observe(RequestDropped(1, 20, "deadline", 2))
        assert state.counts()["drop_reasons"] == {"deadline": 2}

    def test_crash_resets_in_flight(self):
        state = ConsoleState([100], 2, window=8)
        state.observe(RequestAdmitted(0, 0, 1, 0))
        state.observe(ReplicaStateChanged(1, "crashed", 50))
        assert state.replica_state[1] == "crashed"
        assert state.replica_in_flight[1] == 0

    def test_rolling_window_bounds_percentiles(self):
        state = ConsoleState([100], 1, window=2)
        for i, latency in enumerate([1000, 10, 20]):
            state.observe(RequestCompleted(i, 0, 0, latency, latency, 1))
        table = state.latency_table()
        # The window holds only the last two samples; the 1000 aged out.
        assert table["samples"] == 2
        assert table["rolling_p50_cycles"] == 10
        assert table["rolling_p99_cycles"] == 20

    def test_utilization_over_work_horizon(self):
        state = ConsoleState([400], 1, window=8)
        state.observe(RequestAdmitted(0, 0, 0, 0))
        state.observe(RequestCompleted(0, 0, 0, 400, 400, 1))
        state.observe(RequestAdmitted(1, 400, 0, 400))
        state.observe(RequestCompleted(1, 400, 0, 800, 400, 1))
        rows = state.shard_table()
        assert rows[0]["busy_cycles"] == 800
        assert rows[0]["utilization"] == 1.0


# ---------------------------------------------------------------------------
# Snapshots of real sessions
# ---------------------------------------------------------------------------

class TestSnapshot:
    def test_snapshot_shape_and_consistency(self, arch):
        snapshot = headless_watch(_deployment(arch), RELEASES)
        assert snapshot["schema"] == 1
        assert snapshot["replicas"] == 1
        counts = snapshot["counts"]
        assert counts["admitted"] == len(RELEASES)
        assert counts["completed"] + counts["dropped"] == len(RELEASES)
        assert snapshot["final_report"]["batch"] == len(RELEASES)
        for row in snapshot["shards"]:
            assert 0.0 <= row["utilization"] <= 1.0
        assert snapshot["latency"]["rolling_p50_cycles"] is not None
        # Snapshot must round-trip through JSON for CI consumption.
        assert json.loads(snapshot_json(snapshot)) == json.loads(
            json.dumps(snapshot)
        )

    def test_snapshot_is_deterministic(self, arch):
        a = headless_watch(_fleet(arch, replicas=2, policy="jsq"), RELEASES)
        b = headless_watch(_fleet(arch, replicas=2, policy="jsq"), RELEASES)
        assert snapshot_json(a) == snapshot_json(b)

    def test_model_cross_check_present(self, arch):
        snapshot = headless_watch(_deployment(arch), RELEASES)
        model = snapshot["model"]
        assert model["steady_interval_cycles"] > 0
        assert model["arrival_interval_cycles"] == 300.0
        assert len(model["utilization"]) == len(snapshot["shards"])

    def test_faulted_snapshot_reports_crash_and_drops(self, arch):
        plan = FaultPlan(
            events=(ReplicaCrash(replica=1, at_cycle=400),),
            retry=RetryPolicy(max_attempts=2, backoff_cycles=10),
        )
        snapshot = headless_watch(
            _fleet(arch, replicas=2), RELEASES, faults=plan,
        )
        states = {r["replica"]: r["state"] for r in snapshot["replicas_table"]}
        assert states[1] == "crashed"
        final = snapshot["final_report"]
        assert final["completed"] + final["dropped"] == len(RELEASES)

    def test_snapshot_before_drain_has_no_final_report(self, arch):
        import asyncio

        async def scenario():
            from repro.runtime import VirtualClock, serve_forever

            clock = VirtualClock()
            handle = await serve_forever(_deployment(arch), clock=clock)
            await handle.submit(at=0)
            for _ in range(4):  # let the scheduler task consume the queue
                await asyncio.sleep(0)
            snapshot = console_snapshot(handle)
            assert snapshot["final_report"] is None
            assert snapshot["counts"]["admitted"] == 1
            await handle.drain()
            return console_snapshot(handle)

        drained = asyncio.run(scenario())
        assert drained["final_report"]["batch"] == 1

    def test_drive_session_cross_checks(self, arch):
        import asyncio

        handle = asyncio.run(drive_session(_deployment(arch), RELEASES))
        assert handle.report is not None
        offline = _deployment(arch).run_trace(RELEASES)
        assert handle.report.to_dict() == offline.to_dict()


# ---------------------------------------------------------------------------
# steady_state_utilization (the model half of the cross-check)
# ---------------------------------------------------------------------------

class TestSteadyStateUtilization:
    LINK = InterChipConfig(
        bandwidth_bytes_per_cycle=8, latency_cycles=100,
        energy_pj_per_byte=1.0,
    )

    def test_below_saturation_scales_with_interval(self):
        from repro.sim.fastmodel import steady_state_utilization

        util = steady_state_utilization([500, 250], [(0, 1, 80)],
                                        self.LINK, 1000)
        assert util == [0.5, 0.25]

    def test_at_saturation_bottleneck_pins_to_one(self):
        from repro.sim.fastmodel import steady_state_utilization

        # Interval below the bottleneck (500): the initiation interval
        # pins to the bottleneck, the busiest shard runs at 1.0.
        util = steady_state_utilization([500, 250], [(0, 1, 80)],
                                        self.LINK, 100)
        assert util == [1.0, 0.5]
        # Back-to-back offered load (interval 0) is saturation too.
        assert steady_state_utilization([500], [], self.LINK, 0) == [1.0]

    def test_rejects_negative_interval_and_handles_empty(self):
        from repro.sim.fastmodel import steady_state_utilization

        with pytest.raises(ConfigError, match=">= 0"):
            steady_state_utilization([500], [], self.LINK, -1)
        assert steady_state_utilization([], [], self.LINK, 100) == []


# ---------------------------------------------------------------------------
# The live app import gate
# ---------------------------------------------------------------------------

class TestWatchAppGate:
    def test_missing_textual_points_at_snapshot(self, arch):
        try:
            import textual  # noqa: F401
            pytest.skip("textual installed; the gate cannot trip")
        except ImportError:
            pass
        from repro.console import run_watch_app

        with pytest.raises(ConfigError, match="--snapshot"):
            run_watch_app(_deployment(arch), RELEASES)


# ---------------------------------------------------------------------------
# CLI: repro watch --snapshot
# ---------------------------------------------------------------------------

class TestWatchCli:
    def test_snapshot_to_file(self, arch, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "snap.json"
        code = main([
            "watch", "tiny_mlp", "--preset", "small", "--input-size", "8",
            "--batch", "4", "--interval", "300", "--snapshot", str(out),
        ])
        assert code == 0
        snapshot = json.loads(out.read_text())
        assert snapshot["counts"]["completed"] == 4
        assert "wrote" in capsys.readouterr().out

    def test_snapshot_to_stdout_with_replicas(self, arch, capsys):
        from repro.cli import main

        code = main([
            "watch", "tiny_mlp", "--preset", "small", "--input-size", "8",
            "--batch", "6", "--interval", "200", "--replicas", "2",
            "--policy", "jsq", "--snapshot",
        ])
        assert code == 0
        snapshot = json.loads(capsys.readouterr().out)
        assert snapshot["replicas"] == 2
        assert snapshot["policy"] == "jsq"
        assert len(snapshot["replicas_table"]) == 2
