"""Tests for CG-level preprocessing: condensation and linearization."""

import pytest

from repro.compiler import condense
from repro.errors import CompileError
from repro.graph import GraphBuilder
from repro.graph.models import get_model
from repro.graph.ops import OpKind


class TestCondensation:
    def test_relu_fuses_into_conv(self):
        cg = condense(get_model("tiny_cnn"))
        conv1 = next(n for n in cg.nodes if n.name == "conv1")
        assert [op.kind for op in conv1.fused] == [OpKind.RELU]

    def test_residual_add_fuses_with_residual_input(self):
        cg = condense(get_model("tiny_resnet"))
        conv2 = next(n for n in cg.nodes if n.name == "block_conv2")
        kinds = [op.kind for op in conv2.fused]
        assert kinds == [OpKind.ADD, OpKind.RELU]
        roles = [ni.role for ni in conv2.inputs]
        assert "residual" in roles

    def test_residual_aliasing_node_input_blocks_fusion(self):
        """add(relu(conv(x)), x) must keep the add standalone.

        Regression (found by the engine-equivalence fuzzer): fusing the
        add into the conv node would make tensor ``x`` feed two buffer
        roles (main + residual) of one node, and a same-stage producer's
        row stream cannot serve two differently-paced readers over one
        channel -- rows land in the wrong buffers and outputs corrupt.
        """
        b = GraphBuilder("aliased_residual", seed=1)
        x = b.input((8, 8, 4))
        p = b.maxpool(x, 2, 2, name="pool")
        y = b.conv(p, 4, 3, 1, 1, name="conv")
        y = b.relu(y, name="relu")
        y = b.add(y, p, name="add")
        b.output(y)
        cg = condense(b.build())
        add = next(n for n in cg.nodes if n.anchor.kind is OpKind.ADD)
        assert add.name == "add"  # standalone, not fused into conv
        conv = next(n for n in cg.nodes if n.name == "conv")
        assert OpKind.ADD not in [op.kind for op in conv.fused]

    def test_aliased_residual_graph_validates_bit_exactly(self, arch):
        from repro import run_workflow

        b = GraphBuilder("aliased_residual_e2e", seed=2)
        x = b.input((8, 8, 4))
        p = b.maxpool(x, 2, 2, name="pool")
        y = b.conv(p, 4, 3, 1, 1, name="conv")
        y = b.relu(y, name="relu")
        y = b.add(y, p, name="add")
        b.output(y)
        result = run_workflow(b.build(), arch=arch, strategy="dp")
        assert result.validated

    def test_pool_is_standalone_vector_node(self):
        cg = condense(get_model("tiny_cnn"))
        pool = next(n for n in cg.nodes if n.anchor.kind is OpKind.MAXPOOL)
        assert not pool.is_cim

    def test_flatten_is_aliased_away(self):
        cg = condense(get_model("vgg19", input_size=32, num_classes=10))
        assert not any(
            n.anchor.kind is OpKind.FLATTEN for n in cg.nodes
        )
        fc1 = next(n for n in cg.nodes if n.name == "fc1")
        # fc1's input resolves through the flatten alias to the pooled map
        assert fc1.main_input.mode == "full"

    def test_linearization_is_topological(self):
        cg = condense(get_model("resnet18", input_size=32, num_classes=10))
        for i, node in enumerate(cg.nodes):
            assert all(d < i for d in cg.deps(node))

    def test_multi_consumer_blocks_fusion(self):
        b = GraphBuilder("branchy")
        x = b.input((4, 4, 8))
        y = b.conv(x, 8, 3, 1, 1, name="c1")
        r = b.relu(y, name="r1")  # y also consumed by c2 below -> no fusion
        z1 = b.conv(y, 8, 1, name="c2")
        out = b.add(r, z1)
        b.output(out)
        cg = condense(b.build())
        c1 = next(n for n in cg.nodes if n.name == "c1")
        assert not c1.fused  # r1 could not fuse: c1's output has 2 consumers

    def test_rows_needed_window(self):
        cg = condense(get_model("tiny_cnn"))
        conv1 = next(n for n in cg.nodes if n.name == "conv1")
        spec = conv1.main_input
        # 3x3 stride-1 pad-1 window, clipped to real input rows
        assert spec.rows_needed(0, 1, 100) == range(0, 2)
        assert spec.rows_needed(2, 4, 100) == range(1, 5)
        assert spec.rows_needed(99, 100, 100) == range(98, 100)

    def test_consumers_and_outputs(self):
        cg = condense(get_model("tiny_mlp"))
        fc1 = next(n for n in cg.nodes if n.name == "fc1")
        fc2 = next(n for n in cg.nodes if n.name == "fc2")
        assert fc2.index in cg.consumers(fc1)
        assert cg.is_graph_output(fc2)
        assert not cg.is_graph_output(fc1)

    def test_empty_model_rejected(self):
        b = GraphBuilder("empty")
        x = b.input((4,))
        b.output(x)
        with pytest.raises(CompileError):
            condense(b.build())
