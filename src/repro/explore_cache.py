"""Content-addressed on-disk cache for design-space exploration results.

Evaluating one (model, architecture, strategy) point with the fast model
costs 0.3-5 s of pure Python at paper scale; the Fig. 5-7 sweeps evaluate
dozens of points and re-anchored benchmark runs repeat them verbatim.
This module gives every point a deterministic content address -- the
SHA-256 of its identifying material (model, input resolution, strategy,
closure limit, and the :func:`repro.config.arch_fingerprint` of the exact
architecture) -- and stores the resulting :class:`~repro.sim.fastmodel.
FastReport` as a small JSON file under that address.  A second sweep over
the same points is then served from disk in milliseconds.

The cache is safe to share between processes: files are written atomically
(temp file + ``os.replace``) and a corrupt or version-mismatched entry is
treated as a miss, never an error.

Layout::

    <root>/<first two hex chars>/<full 64-hex key>.json

Default location: ``$REPRO_CACHE_DIR`` or ``~/.cache/repro/explore``.
"""

import hashlib
import json
import logging
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, Optional, Union

from repro.config import ArchConfig, arch_fingerprint
from repro.sim.fastmodel import FastReport

logger = logging.getLogger(__name__)

#: Bump when the fast model's semantics change; invalidates old entries.
#: v2: multi-chip sharding -- keys carry the chip count and architecture
#: fingerprints include the inter-chip link block.
#: v3: batched streaming inference -- keys carry the batch size and
#: reports carry batch/steady-interval fields.
#: v4: continuous-arrival serving -- keys carry the arrival rate and
#: reports carry shard occupancies / latency-percentile fields.
#: v5: replicated serving fleets -- keys carry the replica count.
#: v6: fault-tolerant serving -- keys carry the fault-plan fingerprint
#: and reports carry dropped/retry counts.
#: v7: resident-weights serving sessions -- keys carry the resident
#: flag and reports carry the run-once load phase (``load_cycles``).
CACHE_SCHEMA_VERSION = 7

#: Environment variable overriding the default cache root.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Environment variable capping the cache size in megabytes (least-
#: recently-used entries are pruned on write once the cap is exceeded).
CACHE_MAX_MB_ENV = "REPRO_CACHE_MAX_MB"

#: Default size cap in megabytes when the variable is unset.
DEFAULT_CACHE_MAX_MB = 256

#: How many stores may elapse between garbage-collection scans.
_GC_STORE_INTERVAL = 32


def cache_max_bytes() -> int:
    """Resolve the size cap (0 = unlimited) from the environment."""
    raw = os.environ.get(CACHE_MAX_MB_ENV, "")
    try:
        max_mb = int(raw) if raw else DEFAULT_CACHE_MAX_MB
    except ValueError:
        max_mb = DEFAULT_CACHE_MAX_MB
    return max(0, max_mb) * 1024 * 1024


def default_cache_dir() -> Path:
    """Resolve the default cache root (env override, then XDG-style)."""
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro" / "explore"


def point_key(
    model: str,
    arch: ArchConfig,
    strategy: str,
    input_size: int,
    num_classes: int,
    closure_limit: Optional[int] = None,
    chips: int = 1,
    batch: int = 1,
    arrival_rate: Optional[float] = None,
    replicas: int = 1,
    fault_fingerprint: Optional[str] = None,
    resident: bool = False,
) -> str:
    """Content address (hex SHA-256) of one design point.

    Everything that can change the fast-model report participates in the
    key -- including the multi-chip shard count, the streaming batch
    size, the continuous-arrival rate, the fleet replica count, the
    fault-plan fingerprint and the resident-weights flag; the
    architecture contributes through its own content fingerprint so
    structurally identical :class:`ArchConfig` instances collide (which
    is exactly what we want).
    """
    material = json.dumps(
        {
            "schema": CACHE_SCHEMA_VERSION,
            "model": model,
            "arch": arch_fingerprint(arch),
            "strategy": strategy,
            "input_size": input_size,
            "num_classes": num_classes,
            "closure_limit": closure_limit,
            "chips": chips,
            "batch": batch,
            "arrival_rate": arrival_rate,
            "replicas": replicas,
            "faults": fault_fingerprint,
            "resident": resident,
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(material.encode()).hexdigest()


class ResultCache:
    """On-disk result store addressed by :func:`point_key`.

    Tracks per-instance ``hits`` / ``misses`` counters so sweep drivers
    can report cache effectiveness (the CLI prints them after each sweep).
    """

    def __init__(self, root: Union[str, Path, None] = None,
                 max_bytes: Optional[int] = None):
        self.root = Path(root) if root is not None else default_cache_dir()
        #: Size cap in bytes; 0 disables pruning.  ``None`` defers to
        #: ``REPRO_CACHE_MAX_MB`` (default 256 MB).
        self.max_bytes = cache_max_bytes() if max_bytes is None else max_bytes
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.corrupt_evictions = 0
        self._stores_since_gc = 0

    # -- addressing ---------------------------------------------------------
    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    # -- read / write -------------------------------------------------------
    def lookup(self, key: str) -> Optional[FastReport]:
        """Return the cached report for ``key``, or ``None`` on a miss.

        Unreadable, corrupt, or schema-mismatched entries count as
        misses.  A corrupt entry (truncated write, bit flip, wrong
        shape) is additionally *evicted* so the recomputed result can be
        stored cleanly in its place -- the sweep recovers by recomputing
        one point instead of crashing or tripping over the same bad file
        forever.
        """
        path = self.path_for(key)
        try:
            raw = path.read_bytes()
        except OSError:
            self.misses += 1
            return None
        try:
            payload = json.loads(raw.decode("utf-8"))
            if not isinstance(payload, dict):
                raise ValueError("cache payload is not an object")
            schema = payload.get("schema")
            report = FastReport.from_dict(payload["report"])
        except (ValueError, KeyError, TypeError, AttributeError) as exc:
            self._evict_corrupt(path, key, exc)
            self.misses += 1
            return None
        if schema != CACHE_SCHEMA_VERSION:
            # A well-formed entry from an older schema: stale, not
            # corrupt.  Count a miss; the recompute overwrites in place.
            self.misses += 1
            return None
        try:
            os.utime(path)  # refresh LRU recency
        except OSError:
            pass
        self.hits += 1
        return report

    def store(
        self,
        key: str,
        report: FastReport,
        meta: Optional[Dict[str, Any]] = None,
    ) -> Path:
        """Atomically persist ``report`` under ``key``.

        ``meta`` (model name, strategy, ...) is stored alongside purely for
        human inspection of cache files; it never participates in lookup.
        """
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "schema": CACHE_SCHEMA_VERSION,
            "meta": meta or {},
            "report": report.to_dict(),
        }
        fd, tmp = tempfile.mkstemp(
            dir=path.parent, prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(payload, fh)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self._stores_since_gc += 1
        if self.max_bytes and self._stores_since_gc >= _GC_STORE_INTERVAL:
            self.gc()
        return path

    def _evict_corrupt(self, path: Path, key: str, exc: BaseException) -> None:
        """Remove an unparsable entry so the slot can be recomputed."""
        try:
            path.unlink()
        except OSError:
            return
        self.corrupt_evictions += 1
        logger.warning(
            "evicted corrupt cache entry %s (%s: %s); recomputing",
            key, type(exc).__name__, exc,
        )

    # -- maintenance --------------------------------------------------------
    def gc(self) -> int:
        """Prune least-recently-used entries down to ``max_bytes``.

        Runs automatically every few stores (lookups refresh an entry's
        mtime, so recency tracks actual use).  Safe under concurrent
        writers: a racing unlink is treated as already-evicted.  Returns
        the number of entries removed.
        """
        self._stores_since_gc = 0
        if not self.max_bytes or not self.root.is_dir():
            return 0
        entries = []
        total = 0
        for path in self.root.glob("??/*.json"):
            try:
                stat = path.stat()
            except OSError:
                continue
            entries.append((stat.st_mtime, stat.st_size, path))
            total += stat.st_size
        if total <= self.max_bytes:
            return 0
        removed = 0
        entries.sort()  # oldest mtime first
        for _, size, path in entries:
            if total <= self.max_bytes:
                break
            try:
                path.unlink()
            except OSError:
                pass
            total -= size
            removed += 1
        self.evictions += removed
        return removed

    def size_bytes(self) -> int:
        """Total size of all cache entries on disk.

        Tolerates concurrent GC/unlink races (a vanished entry counts 0).
        """
        if not self.root.is_dir():
            return 0
        total = 0
        for path in self.root.glob("??/*.json"):
            try:
                total += path.stat().st_size
            except OSError:
                pass
        return total

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("??/*.json"))

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        if not self.root.is_dir():
            return removed
        for entry in self.root.glob("??/*.json"):
            try:
                entry.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.requests if self.requests else 0.0


# ---------------------------------------------------------------------------
# Sweep-level resume manifests
# ---------------------------------------------------------------------------

#: Bump when the manifest layout changes; mismatched journals are ignored.
MANIFEST_SCHEMA_VERSION = 1


def sweep_fingerprint(spec_dict: Dict[str, Any]) -> str:
    """Content address of a whole sweep specification.

    Hashes the JSON-safe spec form (:meth:`repro.explore.SweepSpec.
    to_dict`), which already folds in the base-architecture fingerprint
    -- so two sweeps share a manifest iff they would evaluate the exact
    same cross product.
    """
    material = json.dumps(spec_dict, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(material.encode()).hexdigest()


class SweepManifest:
    """Append-only resume journal for one sweep specification.

    Lives next to the :class:`ResultCache`
    (``<root>/manifests/<spec fingerprint>.jsonl``).  The first line is
    a header (schema + fingerprint + the spec itself, for human
    inspection); every following line records one completed point key.
    An interrupted ``python -m repro sweep`` leaves the journal behind,
    so the next run of the same spec knows exactly which points of the
    cross product already completed (their reports are served from the
    result cache) and restarts mid-cross-product; a sweep that runs to
    completion removes its journal.

    Appends are one ``write`` call per point, so a crash can at worst
    leave a torn final line -- :meth:`load` skips unparsable lines, and
    a lost entry merely re-evaluates one point.
    """

    def __init__(
        self,
        root: Union[str, Path],
        fingerprint: str,
        spec_meta: Optional[Dict[str, Any]] = None,
    ):
        self.root = Path(root)
        self.fingerprint = fingerprint
        self.spec_meta = spec_meta
        self.path = self.root / "manifests" / f"{fingerprint}.jsonl"

    def load(self) -> frozenset:
        """Completed point keys from a previous (interrupted) run.

        An unreadable journal, a schema mismatch, or a fingerprint
        mismatch yields the empty set -- resume is best-effort, never an
        error.  A crash mid-append can tear the final line (including
        mid-way through a multibyte sequence), so the journal is decoded
        permissively and unparsable lines are discarded rather than
        raised.
        """
        try:
            raw = self.path.read_bytes()
        except OSError:
            return frozenset()
        lines = raw.decode("utf-8", errors="replace").splitlines()
        if not lines:
            return frozenset()
        try:
            header = json.loads(lines[0])
            if header.get("schema") != MANIFEST_SCHEMA_VERSION:
                return frozenset()
            if header.get("fingerprint") != self.fingerprint:
                return frozenset()
        except (ValueError, AttributeError):
            return frozenset()
        keys = set()
        for line in lines[1:]:
            try:
                keys.add(json.loads(line)["key"])
            except (ValueError, KeyError, TypeError):
                continue  # torn tail write from an interrupted run
        return frozenset(keys)

    def mark(self, key: str) -> None:
        """Record one completed point key (creates the journal lazily)."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        if not self.path.exists():
            header = json.dumps({
                "schema": MANIFEST_SCHEMA_VERSION,
                "fingerprint": self.fingerprint,
                "spec": self.spec_meta or {},
            })
            self.path.write_text(header + "\n")
        with open(self.path, "a") as fh:
            fh.write(json.dumps({"key": key}) + "\n")

    def complete(self) -> None:
        """Remove the journal: the sweep finished, nothing to resume."""
        try:
            self.path.unlink()
        except OSError:
            pass
