"""Energy and power parameter library.

The paper obtains component costs from post-layout analysis of the ISSCC'22
macro it cites ([11], 27.38 TOPS/W signed-INT8), memory compilers, Design
Compiler + PrimeTime PX for peripheral logic, and Noxim for the NoC.  None
of those proprietary flows are available offline, so this module substitutes
published per-event energies of the same technology class (28 nm digital
CIM); only relative results depend on them, as the paragraph below
explains.

All figures are **picojoules per event**.  Only *relative* results are
reproduced from the paper (normalized speed/energy, breakdown shares,
scaling trends), and those depend on the ratio structure of these numbers,
not on absolute calibration.  Every parameter can be overridden by
constructing a custom :class:`EnergyConfig`.
"""

from dataclasses import dataclass

from repro.errors import ConfigError


@dataclass(frozen=True)
class EnergyConfig:
    """Per-event energy parameters in picojoules.

    Attributes
    ----------
    cim_mac_pj:
        Energy of one INT8 x INT8 multiply-accumulate inside a macro.  The
        ISSCC'22 macro reports 27.38 TOPS/W at INT8, i.e. ~0.037 pJ/op or
        ~0.073 pJ/MAC at the macro boundary.
    cim_peripheral_pj_per_mvm_row:
        Adder-tree / shift-accumulate peripheral energy charged per active
        row of an MVM (bit-serial accumulation overhead).
    local_mem_read_pj_per_byte / local_mem_write_pj_per_byte:
        Scratchpad SRAM access energy (28 nm compiled SRAM class numbers).
    global_mem_pj_per_byte:
        Large shared SRAM access energy, including the bank periphery.
    noc_pj_per_byte_per_hop:
        Link + router traversal energy for one byte over one mesh hop.
    vector_op_pj_per_element:
        Vector ALU energy per INT8 element processed.
    scalar_op_pj:
        Scalar ALU operation energy.
    instruction_pj:
        Fetch + decode energy per instruction.
    reg_access_pj:
        Register-file read/write port energy per access.
    cim_write_pj_per_byte:
        Energy to load weight bytes into the CIM arrays.
    static_mw:
        Chip static + idle-clocking power in milliwatts, charged per
        cycle.  A 64-core 28 nm chip with always-on peripheral clocks
        idles in the watt range; at batch-1 inference utilisation this
        term dominates total energy, which is what makes the paper's
        energy reduction track its speedup (Fig. 5: 2.8x speedup with
        61.7% energy reduction implies energy ~ static power x time).
    """

    cim_mac_pj: float = 0.073
    cim_peripheral_pj_per_mvm_row: float = 0.05
    local_mem_read_pj_per_byte: float = 0.6
    local_mem_write_pj_per_byte: float = 0.8
    global_mem_pj_per_byte: float = 8.0
    noc_pj_per_byte_per_hop: float = 1.1
    vector_op_pj_per_element: float = 0.25
    scalar_op_pj: float = 0.8
    instruction_pj: float = 1.2
    reg_access_pj: float = 0.1
    cim_write_pj_per_byte: float = 1.5
    static_mw: float = 1500.0

    def validate(self) -> None:
        for name, value in self.__dict__.items():
            if value < 0:
                raise ConfigError(f"energy parameter {name} must be non-negative")

    def static_pj_per_cycle(self, clock_mhz: int) -> float:
        """Static energy charged per clock cycle at ``clock_mhz``."""
        if clock_mhz <= 0:
            raise ConfigError("clock frequency must be positive")
        cycle_ns = 1000.0 / clock_mhz
        return self.static_mw * cycle_ns  # mW x ns = pJ
