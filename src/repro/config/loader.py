"""Serialisation and fingerprinting of architecture configurations.

The paper's workflow takes a user-supplied architecture configuration file;
this module implements that interface.  The JSON layout mirrors the
dataclass hierarchy one-to-one, so a configuration file documents itself.

:func:`arch_fingerprint` hashes the canonical JSON form, giving every
architecture point a stable content address; the design-space exploration
cache (:mod:`repro.explore_cache`) keys results by it.
"""

import dataclasses
import hashlib
import json
from pathlib import Path
from typing import Any, Dict, Union

from repro.config.arch import (
    ArchConfig,
    ChipConfig,
    CIMUnitConfig,
    CoreConfig,
    GlobalMemoryConfig,
    InterChipConfig,
    LocalMemoryConfig,
    MacroConfig,
    MacroGroupConfig,
    NoCConfig,
    RegisterFileConfig,
    ScalarUnitConfig,
    VectorUnitConfig,
)
from repro.config.energy import EnergyConfig
from repro.errors import ConfigError


def arch_to_dict(arch: ArchConfig) -> Dict[str, Any]:
    """Convert an :class:`ArchConfig` into a plain, JSON-safe dictionary."""
    return dataclasses.asdict(arch)


def arch_canonical_json(arch: ArchConfig) -> str:
    """Canonical (sorted-key, compact) JSON form of an architecture.

    Two :class:`ArchConfig` instances describe the same hardware point iff
    their canonical JSON strings are equal.
    """
    return json.dumps(
        arch_to_dict(arch), sort_keys=True, separators=(",", ":")
    )


def arch_fingerprint(arch: ArchConfig) -> str:
    """Content address of an architecture point (hex SHA-256).

    Stable across processes and sessions, so it can key on-disk sweep
    caches and name generated artifacts.
    """
    return hashlib.sha256(arch_canonical_json(arch).encode()).hexdigest()


def _build(cls, data: Dict[str, Any], nested: Dict[str, Any]):
    """Construct dataclass ``cls`` from ``data``, recursing into ``nested``
    (a map of field name -> dataclass type).  Unknown keys are rejected so
    typos in config files fail loudly."""
    field_names = {f.name for f in dataclasses.fields(cls)}
    unknown = set(data) - field_names
    if unknown:
        raise ConfigError(
            f"unknown keys for {cls.__name__}: {sorted(unknown)}"
        )
    kwargs = {}
    for key, value in data.items():
        if key in nested and isinstance(value, dict):
            kwargs[key] = arch_component_from_dict(nested[key], value)
        else:
            kwargs[key] = value
    return cls(**kwargs)


_NESTED = {
    ArchConfig: {
        "chip": ChipConfig,
        "energy": EnergyConfig,
        "interchip": InterChipConfig,
    },
    ChipConfig: {
        "core": CoreConfig,
        "noc": NoCConfig,
        "global_memory": GlobalMemoryConfig,
    },
    CoreConfig: {
        "cim_unit": CIMUnitConfig,
        "vector_unit": VectorUnitConfig,
        "scalar_unit": ScalarUnitConfig,
        "local_memory": LocalMemoryConfig,
        "register_file": RegisterFileConfig,
    },
    CIMUnitConfig: {"macro_group": MacroGroupConfig},
    MacroGroupConfig: {"macro": MacroConfig},
}


def arch_component_from_dict(cls, data: Dict[str, Any]):
    """Build any component dataclass from its dictionary form."""
    return _build(cls, data, _NESTED.get(cls, {}))


def arch_from_dict(data: Dict[str, Any]) -> ArchConfig:
    """Reconstruct an :class:`ArchConfig` from :func:`arch_to_dict` output."""
    arch = arch_component_from_dict(ArchConfig, data)
    arch.validate()
    return arch


def save_arch(arch: ArchConfig, path: Union[str, Path]) -> None:
    """Write an architecture configuration file (JSON)."""
    Path(path).write_text(json.dumps(arch_to_dict(arch), indent=2))


def load_arch(path: Union[str, Path]) -> ArchConfig:
    """Read and validate an architecture configuration file (JSON)."""
    try:
        data = json.loads(Path(path).read_text())
    except json.JSONDecodeError as exc:
        raise ConfigError(f"malformed architecture file {path}: {exc}") from exc
    return arch_from_dict(data)
