"""Hierarchical hardware abstraction: chip-level, core-level and unit-level
architecture parameters (CIMFlow Sec. III-B, Fig. 3 and Table I).

The abstraction mirrors the paper's three levels:

- **Chip level**: number of cores, NoC interconnection, global memory.
- **Core level**: compute units, register file, segmented local memory and
  instruction memory.
- **Unit level**: the CIM compute unit's macro groups (MGs), the macros
  inside each group and the element arrays inside each macro.

Each level is a frozen dataclass so architecture points are hashable and can
be used as sweep keys.  Derived quantities (mesh dimensions, weight-tile
shapes, capacities) are exposed as properties so the compiler and simulator
never duplicate the arithmetic.
"""

import dataclasses
import math
from dataclasses import dataclass, field
from typing import Tuple

from repro.errors import ConfigError
from repro.utils import ceil_div

#: Base of the global-memory window in the unified address space shared by
#: the ISA, compiler, and simulator.  Addresses below it are core-local.
GLOBAL_BASE = 0x4000_0000


@dataclass(frozen=True)
class MacroConfig:
    """A single digital CIM macro: a modified SRAM array plus peripheral
    adder trees and shift-accumulate logic.

    ``rows`` x ``cols`` is the bitcell array (Table I: 512x64).  Weights are
    ``weight_bits`` wide and laid out along bitlines, so one macro stores a
    weight tile of ``rows`` input rows by ``cols // weight_bits`` output
    channels.  ``element_rows`` x ``element_bits`` describes the element
    sub-array feeding one adder tree (Table I: 32x8).
    """

    rows: int = 512
    cols: int = 64
    element_rows: int = 32
    element_bits: int = 8
    weight_bits: int = 8
    activation_bits: int = 8

    @property
    def out_channels(self) -> int:
        """Output channels (8-bit weight columns) provided by one macro."""
        return self.cols // self.weight_bits

    @property
    def weight_capacity(self) -> int:
        """Number of ``weight_bits``-wide weights stored in one macro."""
        return self.rows * self.out_channels

    @property
    def capacity_bytes(self) -> int:
        """Macro storage in bytes."""
        return self.rows * self.cols // 8

    @property
    def macs_per_mvm(self) -> int:
        """MAC operations performed by one full-array MVM activation."""
        return self.rows * self.out_channels

    def validate(self) -> None:
        if self.rows <= 0 or self.cols <= 0:
            raise ConfigError("macro rows/cols must be positive")
        if self.weight_bits <= 0 or self.cols % self.weight_bits != 0:
            raise ConfigError(
                f"macro cols ({self.cols}) must be a positive multiple of "
                f"weight_bits ({self.weight_bits})"
            )
        if self.element_rows <= 0 or self.element_bits <= 0:
            raise ConfigError("element dimensions must be positive")
        if self.rows % self.element_rows != 0:
            raise ConfigError(
                f"macro rows ({self.rows}) must be a multiple of element rows "
                f"({self.element_rows})"
            )
        if self.activation_bits <= 0:
            raise ConfigError("activation_bits must be positive")


@dataclass(frozen=True)
class MacroGroupConfig:
    """A macro group (MG): ``num_macros`` macros sharing an input broadcast.

    Weights inside an MG are organised along the output channel, so the MG
    as a whole holds a weight tile of ``macro.rows`` input rows by
    ``num_macros * macro.out_channels`` output channels and performs one
    matrix-vector multiply per activation.
    """

    num_macros: int = 8
    macro: MacroConfig = field(default_factory=MacroConfig)

    @property
    def tile_rows(self) -> int:
        """Input-dimension rows of the MG weight tile."""
        return self.macro.rows

    @property
    def tile_cols(self) -> int:
        """Output channels of the MG weight tile."""
        return self.num_macros * self.macro.out_channels

    @property
    def capacity_bytes(self) -> int:
        return self.num_macros * self.macro.capacity_bytes

    def validate(self) -> None:
        if self.num_macros <= 0:
            raise ConfigError("macro group must contain at least one macro")
        self.macro.validate()


@dataclass(frozen=True)
class CIMUnitConfig:
    """The CIM compute unit of a core: ``num_macro_groups`` macro groups.

    ``mvm_setup_cycles`` models instruction issue plus input broadcast
    setup; an MVM then streams ``activation_bits`` bit-serial cycles through
    the array and drains through ``pipeline_depth`` adder-tree/accumulator
    stages.  MGs operate in parallel; the unit is pipelined with an issue
    interval of ``activation_bits`` cycles per MG.
    """

    num_macro_groups: int = 16
    macro_group: MacroGroupConfig = field(default_factory=MacroGroupConfig)
    mvm_setup_cycles: int = 2
    pipeline_depth: int = 4

    @property
    def capacity_bytes(self) -> int:
        """Total CIM weight storage of the unit in bytes."""
        return self.num_macro_groups * self.macro_group.capacity_bytes

    @property
    def mvm_issue_interval(self) -> int:
        """Cycles between back-to-back MVM issues on one macro group."""
        return self.macro_group.macro.activation_bits

    @property
    def mvm_latency(self) -> int:
        """Total latency in cycles of a single MVM on one macro group."""
        return (
            self.mvm_setup_cycles
            + self.macro_group.macro.activation_bits
            + self.pipeline_depth
        )

    def validate(self) -> None:
        if self.num_macro_groups <= 0:
            raise ConfigError("CIM unit must contain at least one macro group")
        if self.mvm_setup_cycles < 0 or self.pipeline_depth < 0:
            raise ConfigError("CIM unit pipeline parameters must be non-negative")
        self.macro_group.validate()


@dataclass(frozen=True)
class VectorUnitConfig:
    """SIMD vector compute unit handling activation / pooling / elementwise /
    quantisation operations (``lanes`` INT8 lanes per cycle)."""

    lanes: int = 32
    pipeline_depth: int = 2

    def op_cycles(self, num_elements: int) -> int:
        """Cycles to process ``num_elements`` elements (pipelined)."""
        if num_elements < 0:
            raise ConfigError("element count must be non-negative")
        if num_elements == 0:
            return 0
        return ceil_div(num_elements, self.lanes) + self.pipeline_depth

    def validate(self) -> None:
        if self.lanes <= 0:
            raise ConfigError("vector unit needs at least one lane")
        if self.pipeline_depth < 0:
            raise ConfigError("vector pipeline depth must be non-negative")


@dataclass(frozen=True)
class ScalarUnitConfig:
    """Scalar compute unit for control flow and address arithmetic."""

    op_latency: int = 1

    def validate(self) -> None:
        if self.op_latency <= 0:
            raise ConfigError("scalar op latency must be positive")


@dataclass(frozen=True)
class LocalMemoryConfig:
    """Segmented core-local scratchpad memory (Table I: 512 KB).

    Segments hold DNN-layer inputs/outputs; the ISA exposes them through the
    unified address space.
    """

    size_bytes: int = 512 * 1024
    num_segments: int = 4
    bandwidth_bytes_per_cycle: int = 32
    access_latency: int = 1

    @property
    def segment_bytes(self) -> int:
        return self.size_bytes // self.num_segments

    def validate(self) -> None:
        if self.size_bytes <= 0:
            raise ConfigError("local memory size must be positive")
        if self.num_segments <= 0 or self.size_bytes % self.num_segments != 0:
            raise ConfigError(
                "local memory size must divide evenly into its segments"
            )
        if self.bandwidth_bytes_per_cycle <= 0:
            raise ConfigError("local memory bandwidth must be positive")
        if self.access_latency < 0:
            raise ConfigError("local memory latency must be non-negative")


@dataclass(frozen=True)
class RegisterFileConfig:
    """Register file: general-purpose (G_Reg) and special-purpose (S_Reg)
    registers.  Operand fields are 5 bits wide, so at most 32 general
    registers are addressable."""

    num_general: int = 32
    num_special: int = 16

    def validate(self) -> None:
        if not 1 <= self.num_general <= 32:
            raise ConfigError("general register count must be in [1, 32]")
        if self.num_special < 0:
            raise ConfigError("special register count must be non-negative")


@dataclass(frozen=True)
class CoreConfig:
    """Core-level resource organisation (Fig. 3, middle)."""

    cim_unit: CIMUnitConfig = field(default_factory=CIMUnitConfig)
    vector_unit: VectorUnitConfig = field(default_factory=VectorUnitConfig)
    scalar_unit: ScalarUnitConfig = field(default_factory=ScalarUnitConfig)
    local_memory: LocalMemoryConfig = field(default_factory=LocalMemoryConfig)
    register_file: RegisterFileConfig = field(default_factory=RegisterFileConfig)
    inst_memory_size: int = 64 * 1024

    @property
    def cim_capacity_bytes(self) -> int:
        """Weight bytes storable in this core's CIM arrays."""
        return self.cim_unit.capacity_bytes

    def validate(self) -> None:
        if self.inst_memory_size <= 0:
            raise ConfigError("instruction memory size must be positive")
        self.cim_unit.validate()
        self.vector_unit.validate()
        self.scalar_unit.validate()
        self.local_memory.validate()
        self.register_file.validate()


@dataclass(frozen=True)
class NoCConfig:
    """Mesh Network-on-Chip parameters.

    ``flit_bytes`` is the per-cycle link bandwidth explored in the paper's
    Fig. 6/7 (8 or 16 bytes).  Routing is dimension-ordered XY.
    """

    flit_bytes: int = 8
    hop_latency: int = 1
    router_latency: int = 1

    def validate(self) -> None:
        if self.flit_bytes <= 0:
            raise ConfigError("flit size must be positive")
        if self.hop_latency <= 0 or self.router_latency < 0:
            raise ConfigError("NoC latencies must be positive/non-negative")


@dataclass(frozen=True)
class GlobalMemoryConfig:
    """Chip-level shared memory (Table I: 16 MB) reached through the NoC."""

    size_bytes: int = 16 * 1024 * 1024
    access_latency: int = 20
    bandwidth_bytes_per_cycle: int = 64

    def validate(self) -> None:
        if self.size_bytes <= 0:
            raise ConfigError("global memory size must be positive")
        if self.access_latency < 0:
            raise ConfigError("global memory latency must be non-negative")
        if self.bandwidth_bytes_per_cycle <= 0:
            raise ConfigError("global memory bandwidth must be positive")


@dataclass(frozen=True)
class InterChipConfig:
    """Chip-to-chip link used by multi-chip sharding (die-to-die SerDes).

    When a model is pipeline-sharded across several chips
    (``docs/ARCHITECTURE.md``, "Multi-chip sharding"), boundary
    activation tensors cross this link.  Each ordered chip pair has a
    dedicated point-to-point link; transfers on the same link serialise.
    A transfer of ``n`` bytes occupies its link for
    ``ceil(n / bandwidth_bytes_per_cycle)`` cycles and arrives
    ``latency_cycles`` after its last flit leaves.
    """

    bandwidth_bytes_per_cycle: int = 16
    latency_cycles: int = 500
    energy_pj_per_byte: float = 12.0

    def transfer_cycles(self, nbytes: int) -> int:
        """Latency from departure to full arrival of an ``nbytes`` message."""
        return self.latency_cycles + ceil_div(
            max(1, nbytes), self.bandwidth_bytes_per_cycle
        )

    def serialization_cycles(self, nbytes: int) -> int:
        """Cycles the link is occupied by an ``nbytes`` message."""
        return ceil_div(max(1, nbytes), self.bandwidth_bytes_per_cycle)

    def validate(self) -> None:
        if self.bandwidth_bytes_per_cycle <= 0:
            raise ConfigError("inter-chip bandwidth must be positive")
        if self.latency_cycles < 0:
            raise ConfigError("inter-chip latency must be non-negative")
        if self.energy_pj_per_byte < 0:
            raise ConfigError("inter-chip energy must be non-negative")


@dataclass(frozen=True)
class ChipConfig:
    """Chip-level organisation: a mesh of cores plus global memory."""

    num_cores: int = 64
    core: CoreConfig = field(default_factory=CoreConfig)
    noc: NoCConfig = field(default_factory=NoCConfig)
    global_memory: GlobalMemoryConfig = field(default_factory=GlobalMemoryConfig)
    clock_mhz: int = 1000

    @property
    def mesh_dims(self) -> Tuple[int, int]:
        """(rows, cols) of the smallest near-square mesh holding all cores."""
        cols = int(math.ceil(math.sqrt(self.num_cores)))
        rows = ceil_div(self.num_cores, cols)
        return rows, cols

    @property
    def cycle_ns(self) -> float:
        """Clock period in nanoseconds."""
        return 1000.0 / self.clock_mhz

    @property
    def total_cim_capacity_bytes(self) -> int:
        return self.num_cores * self.core.cim_capacity_bytes

    def core_position(self, core_id: int) -> Tuple[int, int]:
        """Mesh (row, col) of a core id (row-major placement)."""
        if not 0 <= core_id < self.num_cores:
            raise ConfigError(f"core id {core_id} out of range")
        _, cols = self.mesh_dims
        return core_id // cols, core_id % cols

    def hop_distance(self, src_core: int, dst_core: int) -> int:
        """Manhattan hop count between two cores in the mesh."""
        r0, c0 = self.core_position(src_core)
        r1, c1 = self.core_position(dst_core)
        return abs(r0 - r1) + abs(c0 - c1)

    def validate(self) -> None:
        if self.num_cores <= 0:
            raise ConfigError("chip needs at least one core")
        if self.clock_mhz <= 0:
            raise ConfigError("clock frequency must be positive")
        self.core.validate()
        self.noc.validate()
        self.global_memory.validate()


@dataclass(frozen=True)
class ArchConfig:
    """A complete architecture point: chip organisation + energy model.

    This is the object the compiler and simulator consume, and the unit of
    design-space exploration sweeps.
    """

    chip: ChipConfig = field(default_factory=ChipConfig)
    energy: "EnergyConfig" = None  # type: ignore[assignment]
    interchip: InterChipConfig = field(default_factory=InterChipConfig)

    def __post_init__(self):
        if self.energy is None:
            from repro.config.energy import EnergyConfig

            object.__setattr__(self, "energy", EnergyConfig())

    def validate(self) -> None:
        self.chip.validate()
        self.energy.validate()
        self.interchip.validate()

    # Convenience pass-throughs used throughout the compiler --------------
    @property
    def num_cores(self) -> int:
        return self.chip.num_cores

    @property
    def mg_tile_rows(self) -> int:
        return self.chip.core.cim_unit.macro_group.tile_rows

    @property
    def mg_tile_cols(self) -> int:
        return self.chip.core.cim_unit.macro_group.tile_cols

    @property
    def mgs_per_core(self) -> int:
        return self.chip.core.cim_unit.num_macro_groups

    @property
    def core_cim_capacity_bytes(self) -> int:
        return self.chip.core.cim_capacity_bytes


def replace(config, **changes):
    """``dataclasses.replace`` re-export so callers need not import it."""
    return dataclasses.replace(config, **changes)
