"""Hierarchical hardware abstraction and parameter library (Sec. III-B)."""

from repro.config.arch import (
    ArchConfig,
    ChipConfig,
    CIMUnitConfig,
    CoreConfig,
    GlobalMemoryConfig,
    InterChipConfig,
    LocalMemoryConfig,
    MacroConfig,
    MacroGroupConfig,
    NoCConfig,
    RegisterFileConfig,
    ScalarUnitConfig,
    VectorUnitConfig,
)
from repro.config.energy import EnergyConfig
from repro.config.loader import (
    arch_canonical_json,
    arch_fingerprint,
    arch_from_dict,
    arch_to_dict,
    load_arch,
    save_arch,
)
from repro.config.presets import (
    default_arch,
    small_test_arch,
    with_flit_bytes,
    with_mg_size,
    with_num_cores,
)

__all__ = [
    "ArchConfig",
    "ChipConfig",
    "CoreConfig",
    "CIMUnitConfig",
    "MacroGroupConfig",
    "MacroConfig",
    "VectorUnitConfig",
    "ScalarUnitConfig",
    "LocalMemoryConfig",
    "RegisterFileConfig",
    "NoCConfig",
    "GlobalMemoryConfig",
    "InterChipConfig",
    "EnergyConfig",
    "default_arch",
    "small_test_arch",
    "with_mg_size",
    "with_flit_bytes",
    "with_num_cores",
    "arch_to_dict",
    "arch_from_dict",
    "arch_canonical_json",
    "arch_fingerprint",
    "save_arch",
    "load_arch",
]
