"""Architecture presets, including the paper's default configuration.

Table I of the paper:

=============  =======================  ==================
Chip level     Core level               Unit level
=============  =======================  ==================
Core num 64    CIM comp. unit 16 #MG    Macro 512 x 64
NoC flit 8 B   Macro group 8 #macro     Element 32 x 8
Global 16 MB   Local mem 512 KB
=============  =======================  ==================
"""

import dataclasses

from repro.config.arch import (
    ArchConfig,
    ChipConfig,
    CIMUnitConfig,
    CoreConfig,
    GlobalMemoryConfig,
    LocalMemoryConfig,
    MacroConfig,
    MacroGroupConfig,
    NoCConfig,
)
from repro.config.energy import EnergyConfig


def default_arch() -> ArchConfig:
    """The paper's default architecture (Table I)."""
    macro = MacroConfig(rows=512, cols=64, element_rows=32, element_bits=8)
    mg = MacroGroupConfig(num_macros=8, macro=macro)
    cim = CIMUnitConfig(num_macro_groups=16, macro_group=mg)
    core = CoreConfig(
        cim_unit=cim,
        local_memory=LocalMemoryConfig(size_bytes=512 * 1024),
    )
    chip = ChipConfig(
        num_cores=64,
        core=core,
        noc=NoCConfig(flit_bytes=8),
        global_memory=GlobalMemoryConfig(size_bytes=16 * 1024 * 1024),
    )
    return ArchConfig(chip=chip, energy=EnergyConfig())


def small_test_arch(num_cores: int = 4) -> ArchConfig:
    """A deliberately tiny architecture for fast unit tests.

    4 cores, 2 MGs of 2 macros each (64x16 arrays), 16 KB local memory.
    Small capacities force the partitioner and tiling passes to do real
    work even on toy models.
    """
    macro = MacroConfig(rows=64, cols=32, element_rows=16, element_bits=8)
    mg = MacroGroupConfig(num_macros=2, macro=macro)
    cim = CIMUnitConfig(num_macro_groups=4, macro_group=mg)
    core = CoreConfig(
        cim_unit=cim,
        local_memory=LocalMemoryConfig(size_bytes=16 * 1024, num_segments=4),
    )
    chip = ChipConfig(
        num_cores=num_cores,
        core=core,
        noc=NoCConfig(flit_bytes=8),
        global_memory=GlobalMemoryConfig(size_bytes=1024 * 1024, access_latency=10),
    )
    return ArchConfig(chip=chip, energy=EnergyConfig())


def with_mg_size(arch: ArchConfig, num_macros: int) -> ArchConfig:
    """Return a copy of ``arch`` with ``num_macros`` macros per macro group.

    This is the "MG size" axis of the paper's Fig. 6 / Fig. 7 sweeps
    (4 / 8 / 12 / 16 macros per group).
    """
    mg = dataclasses.replace(
        arch.chip.core.cim_unit.macro_group, num_macros=num_macros
    )
    cim = dataclasses.replace(arch.chip.core.cim_unit, macro_group=mg)
    core = dataclasses.replace(arch.chip.core, cim_unit=cim)
    chip = dataclasses.replace(arch.chip, core=core)
    return dataclasses.replace(arch, chip=chip)


def with_flit_bytes(arch: ArchConfig, flit_bytes: int) -> ArchConfig:
    """Return a copy of ``arch`` with the given NoC flit size (link
    bandwidth per cycle), the second axis of Fig. 6 / Fig. 7."""
    noc = dataclasses.replace(arch.chip.noc, flit_bytes=flit_bytes)
    chip = dataclasses.replace(arch.chip, noc=noc)
    return dataclasses.replace(arch, chip=chip)


def with_num_cores(arch: ArchConfig, num_cores: int) -> ArchConfig:
    """Return a copy of ``arch`` with a different core count."""
    chip = dataclasses.replace(arch.chip, num_cores=num_cores)
    return dataclasses.replace(arch, chip=chip)
