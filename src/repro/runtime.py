"""Async real-time serving runtime.

Every serving path below this module consumes a *precomputed* list of
release cycles (:class:`repro.serve.ArrivalProcess`); this one takes
requests as they happen on a wall clock.  ``await
deployment.serve_forever()`` opens a session and returns a
:class:`ServerHandle` whose :meth:`ServerHandle.submit` coroutine stamps
each request with a release cycle from a pluggable clock
(:class:`VirtualClock` for deterministic tests, :class:`WallClock` in
production), routes it through an event-driven admission scheduler --
a single asyncio task owning all shard occupancy -- and resolves a
future per request with its completion cycle and latency.

**The admission law is the offline one.**  The scheduler predicts every
start/finish through the exact incremental mirrors of the batch paths:
:class:`repro.serve._ReplicaState` (the per-input inner loop of
:func:`repro.sim.multichip.streaming_schedule`),
:class:`repro.serve._Dispatcher` (the fleet's rr/jsq routing law), and
:class:`repro.faults.FailoverEngine` (the health-aware retry engine)
-- so a drained session replayed offline through
:class:`~repro.serve.TraceArrivals` is bit-identical to what the live
session promised.  :meth:`ServerHandle.drain` performs exactly that
replay (it is where the simulators actually execute), cross-checks
every live prediction against the offline report, and raises
:class:`~repro.errors.SimulationError` on any divergence.

The session publishes a typed event stream -- :class:`RequestAdmitted`,
:class:`RequestCompleted`, :class:`RequestDropped`,
:class:`ReplicaStateChanged` -- consumed by the ``repro watch`` live
console (:mod:`repro.console`) and recorded on the handle for
deterministic byte-for-byte comparison in tests.
"""

import asyncio
import time
from dataclasses import asdict, dataclass
from typing import Dict, List, Optional, Union

from repro.errors import ConfigError, SimulationError
from repro.faults import (
    DROP_DEADLINE,
    DROP_MAX_ATTEMPTS,
    DROP_NO_REPLICA,
    FailoverEngine,
    FaultPlan,
    RetryPolicy,
)

__all__ = [
    "VirtualClock",
    "WallClock",
    "RequestAdmitted",
    "RequestCompleted",
    "RequestDropped",
    "ReplicaStateChanged",
    "RequestCompletion",
    "ServerHandle",
    "serve_forever",
]


# ---------------------------------------------------------------------------
# Clocks
# ---------------------------------------------------------------------------

class VirtualClock:
    """A deterministic, manually-advanced clock for scripted sessions.

    ``now_cycles()`` returns the current cycle; tests (and the headless
    console) script arrival times by calling :meth:`advance` /
    :meth:`advance_to` between submissions.  Never moves on its own,
    which is what makes a scripted request sequence reproducible byte
    for byte.
    """

    def __init__(self, start_cycle: int = 0):
        if start_cycle < 0:
            raise ConfigError(
                f"clock cannot start before cycle 0, got {start_cycle}"
            )
        self._now = int(start_cycle)

    def now_cycles(self) -> int:
        return self._now

    def advance(self, cycles: int) -> int:
        """Move forward by ``cycles`` (>= 0); returns the new cycle."""
        if cycles < 0:
            raise ConfigError(
                f"a clock only moves forward; cannot advance by {cycles}"
            )
        self._now += int(cycles)
        return self._now

    def advance_to(self, cycle: int) -> int:
        """Jump forward to absolute ``cycle`` (>= the current cycle)."""
        if cycle < self._now:
            raise ConfigError(
                f"a clock only moves forward; now at cycle {self._now}, "
                f"cannot rewind to {cycle}"
            )
        self._now = int(cycle)
        return self._now


class WallClock:
    """The production clock: monotonic wall time on the cycle grid.

    Maps ``time.monotonic_ns()`` since the session epoch (pinned when
    :func:`serve_forever` opens the session) onto the deployment's
    cycle grid via the architecture's ``cycle_ns``.  Monotonic by
    construction, so live submissions always satisfy the runtime's
    non-decreasing release-cycle requirement.
    """

    def __init__(self, cycle_ns: float):
        if cycle_ns <= 0:
            raise ConfigError(f"cycle_ns must be positive, got {cycle_ns}")
        self.cycle_ns = float(cycle_ns)
        self._epoch_ns: Optional[int] = None

    def start(self) -> None:
        """Pin the session epoch (idempotent)."""
        if self._epoch_ns is None:
            self._epoch_ns = time.monotonic_ns()

    def now_cycles(self) -> int:
        if self._epoch_ns is None:
            self.start()
        return int((time.monotonic_ns() - self._epoch_ns) / self.cycle_ns)


# ---------------------------------------------------------------------------
# Event stream
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class RequestAdmitted:
    """The scheduler dispatched a request onto a replica."""

    request: int
    release_cycle: int
    replica: int
    dispatch_cycle: int

    def to_dict(self) -> Dict:
        return {"event": type(self).__name__, **asdict(self)}


@dataclass(frozen=True)
class RequestCompleted:
    """A request's last shard finished; its future has resolved."""

    request: int
    release_cycle: int
    replica: int
    finish_cycle: int
    latency_cycles: int
    attempts: int

    def to_dict(self) -> Dict:
        return {"event": type(self).__name__, **asdict(self)}


@dataclass(frozen=True)
class RequestDropped:
    """A request was dropped (graceful degradation, never lost)."""

    request: int
    release_cycle: int
    reason: str
    attempts: int

    def to_dict(self) -> Dict:
        return {"event": type(self).__name__, **asdict(self)}


@dataclass(frozen=True)
class ReplicaStateChanged:
    """A replica's health/warmth changed (``up``/``cold``/``warm``/
    ``crashed``)."""

    replica: int
    state: str
    at_cycle: int

    def to_dict(self) -> Dict:
        return {"event": type(self).__name__, **asdict(self)}


RuntimeEvent = Union[
    RequestAdmitted, RequestCompleted, RequestDropped, ReplicaStateChanged
]


@dataclass(frozen=True)
class RequestCompletion:
    """What a submitted request's future resolves with.

    ``status`` is ``"completed"`` or a drop reason
    (:data:`~repro.faults.DROP_DEADLINE` /
    :data:`~repro.faults.DROP_MAX_ATTEMPTS` /
    :data:`~repro.faults.DROP_NO_REPLICA`); dropped requests carry
    ``replica == -1``, ``finish_cycle == 0`` and ``latency_cycles is
    None``, mirroring :class:`~repro.serve.FleetReport`.
    """

    request: int
    release_cycle: int
    replica: int
    finish_cycle: int
    latency_cycles: Optional[int]
    attempts: int = 1
    status: str = "completed"

    @property
    def completed(self) -> bool:
        return self.status == "completed"

    @property
    def dropped(self) -> bool:
        return not self.completed

    def to_dict(self) -> Dict:
        return asdict(self)


_DROP_REASONS = (DROP_DEADLINE, DROP_MAX_ATTEMPTS, DROP_NO_REPLICA)


# ---------------------------------------------------------------------------
# The serving session
# ---------------------------------------------------------------------------

class ServerHandle:
    """A live serving session over a Deployment or Fleet.

    Created by :func:`serve_forever`; owns the admission scheduler task,
    the recorded event stream (:attr:`events`), and one pending future
    per in-flight request.  Single-use: :meth:`drain` closes the session,
    executes the recorded trace offline, cross-checks it against every
    live prediction, and returns the resulting
    :class:`~repro.serve.ServeReport` /
    :class:`~repro.serve.FleetReport`.
    """

    def __init__(
        self,
        server,
        clock,
        *,
        seed: int,
        validate: bool,
        faults: Optional[FaultPlan],
        retry: Optional[RetryPolicy],
    ):
        from repro.serve import Deployment, Fleet, _Dispatcher, _ReplicaState

        self.server = server
        self.clock = clock
        self.seed = int(seed)
        self.validate = bool(validate)
        self.faults = faults
        self.retry = retry

        if isinstance(server, Fleet):
            dep = server.deployment
            self.num_replicas = server.num_replicas
            self.policy = server.policy
        elif isinstance(server, Deployment):
            dep = server
            self.num_replicas = 1
            self.policy = "rr"
        else:
            raise ConfigError(
                f"serve_forever needs a Deployment or Fleet, got "
                f"{type(server).__name__}"
            )
        self._dep = dep
        self._is_fleet = isinstance(server, Fleet)

        engine_needed = retry is not None or (
            faults is not None
            and not (faults.is_empty and faults.retry is None)
        )
        if engine_needed and not self._is_fleet:
            raise ConfigError(
                "fault injection needs a Fleet; wrap the deployment in "
                "Fleet(model, replicas=1) to serve under a FaultPlan"
            )

        row, edges = server._service_profile()
        link = server.arch.interchip
        self.shard_row: List[int] = list(row)
        self.shard_edges = list(edges)
        self.link = link

        # Resident sessions: warmth is frozen at session open (nothing
        # executes before drain), so the load clamp each cold replica's
        # sub-stream will apply offline is known up front.
        load_done = 0
        if dep.resident_weights:
            load_done = dep._resident_load_profile()[0]
        if self._is_fleet:
            warm = list(server._replica_warm)
        else:
            warm = [dep._resident_loaded]
        self._load_offsets = [
            0 if (not dep.resident_weights or warm[r]) else load_done
            for r in range(self.num_replicas)
        ]

        self._engine: Optional[FailoverEngine] = None
        self._dispatcher = None
        self._mirrors = None
        if engine_needed:
            self._engine = FailoverEngine(
                row, edges, link, self.num_replicas, policy=self.policy,
                plan=faults, retry=retry,
                load_offsets=(
                    self._load_offsets if dep.resident_weights else None
                ),
            )
            self._attempt_cursor = 0
        else:
            if self._is_fleet:
                self._dispatcher = _Dispatcher(
                    self.policy, self.num_replicas, row, edges, link
                )
            self._mirrors = [
                _ReplicaState(row, edges, link)
                for _ in range(self.num_replicas)
            ]

        # Live predictions, cross-checked against the offline replay.
        self._releases: List[int] = []
        self._assignments: List[int] = []
        self._starts: List[int] = []
        self._finishes: List[int] = []
        self._statuses: List[str] = []

        self.events: List[RuntimeEvent] = []
        self._subscribers: List[asyncio.Queue] = []
        self._pending: Dict[int, asyncio.Future] = {}
        self._queue: asyncio.Queue = asyncio.Queue()
        self._task: Optional[asyncio.Task] = None
        self._closed = False
        self._warm_emitted = [False] * self.num_replicas
        self._crash_emitted = [False] * self.num_replicas
        self.report = None

    # -- session lifecycle ---------------------------------------------------
    def _start(self) -> None:
        if hasattr(self.clock, "start"):
            self.clock.start()
        for r in range(self.num_replicas):
            state = "cold" if self._load_offsets[r] else "up"
            self._emit(ReplicaStateChanged(r, state, at_cycle=0))
        self._task = asyncio.get_running_loop().create_task(
            self._scheduler(), name="repro-admission-scheduler"
        )

    async def __aenter__(self) -> "ServerHandle":
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        if exc_type is None and self.report is None:
            await self.drain()
        else:
            await self.close()

    # -- event stream --------------------------------------------------------
    def _emit(self, event: RuntimeEvent) -> None:
        self.events.append(event)
        for queue in self._subscribers:
            queue.put_nowait(event)

    def subscribe(self) -> asyncio.Queue:
        """A queue receiving every event from this point on.

        The session's end is signalled by a ``None`` sentinel (pushed
        by :meth:`drain` / :meth:`close`).
        """
        queue: asyncio.Queue = asyncio.Queue()
        self._subscribers.append(queue)
        return queue

    # -- submission ----------------------------------------------------------
    @property
    def submitted(self) -> int:
        return len(self._releases)

    async def submit(self, *, at: Optional[int] = None) -> asyncio.Future:
        """Submit one request; returns the future resolving its fate.

        The request's release cycle is ``at`` when given, else the
        clock's current cycle.  Release cycles must be non-decreasing
        (wall clocks are monotonic; the offline FIFO admission law this
        session must replay to depends on it).  The returned
        :class:`asyncio.Future` resolves with a
        :class:`RequestCompletion` as soon as the scheduler settles the
        request -- immediately for fault-free sessions, after retries
        resolve for faulted ones.
        """
        if self._closed:
            raise ConfigError(
                "this serving session is drained; serve_forever() again "
                "to open a new one"
            )
        release = int(at) if at is not None else int(self.clock.now_cycles())
        if release < 0:
            raise ConfigError(
                f"release cycle must be >= 0, got {release}"
            )
        if self._releases and release < self._releases[-1]:
            raise ConfigError(
                f"release cycles must be non-decreasing (requests are "
                f"served FIFO in submission order): got {release} after "
                f"{self._releases[-1]}"
            )
        request = len(self._releases)
        self._releases.append(release)
        self._assignments.append(-1)
        self._starts.append(0)
        self._finishes.append(0)
        self._statuses.append("")
        future = asyncio.get_running_loop().create_future()
        self._pending[request] = future
        await self._queue.put((request, release))
        return future

    # -- the admission scheduler --------------------------------------------
    async def _scheduler(self) -> None:
        while True:
            item = await self._queue.get()
            if item is None:
                if self._engine is not None:
                    self._absorb_engine(self._engine.drain())
                break
            request, release = item
            if self._engine is not None:
                pushed = self._engine.push(release)
                assert pushed == request, (pushed, request)
                self._absorb_engine(self._engine.settle_through(release))
            else:
                self._admit_unfaulted(request, release)

    def _admit_unfaulted(self, request: int, release: int) -> None:
        if self._dispatcher is not None:
            replica = self._dispatcher.route(release)
        else:
            replica = 0
        dispatch = max(release, self._load_offsets[replica])
        start, finish = self._mirrors[replica].admit(dispatch)
        self._assignments[request] = replica
        self._starts[request] = start
        self._finishes[request] = finish
        self._statuses[request] = "completed"
        self._note_warm(replica)
        self._emit(RequestAdmitted(request, release, replica, dispatch))
        latency = finish - release
        self._emit(RequestCompleted(
            request, release, replica, finish, latency, attempts=1,
        ))
        self._resolve(RequestCompletion(
            request, release, replica, finish, latency,
        ))

    def _absorb_engine(self, outcomes) -> None:
        engine = self._engine
        for record in engine.attempts[self._attempt_cursor:]:
            if record.attempt == 1:
                self._note_warm(record.replica)
                self._emit(RequestAdmitted(
                    record.request,
                    engine.releases[record.request],
                    record.replica,
                    record.dispatch_cycle,
                ))
            if (
                record.status == "crashed"
                and not self._crash_emitted[record.replica]
            ):
                self._crash_emitted[record.replica] = True
                self._emit(ReplicaStateChanged(
                    record.replica, "crashed", at_cycle=record.finish_cycle,
                ))
        self._attempt_cursor = len(engine.attempts)
        for outcome in outcomes:
            request = outcome.request
            release = engine.releases[request]
            self._assignments[request] = outcome.replica
            self._finishes[request] = outcome.finish_cycle
            self._statuses[request] = outcome.status
            if outcome.completed:
                latency = outcome.finish_cycle - release
                self._emit(RequestCompleted(
                    request, release, outcome.replica,
                    outcome.finish_cycle, latency, outcome.attempts,
                ))
                self._resolve(RequestCompletion(
                    request, release, outcome.replica,
                    outcome.finish_cycle, latency, outcome.attempts,
                ))
            else:
                self._emit(RequestDropped(
                    request, release, outcome.status, outcome.attempts,
                ))
                self._resolve(RequestCompletion(
                    request, release, replica=-1, finish_cycle=0,
                    latency_cycles=None, attempts=outcome.attempts,
                    status=outcome.status,
                ))

    def _note_warm(self, replica: int) -> None:
        if self._load_offsets[replica] and not self._warm_emitted[replica]:
            self._warm_emitted[replica] = True
            self._emit(ReplicaStateChanged(
                replica, "warm", at_cycle=self._load_offsets[replica],
            ))

    def _resolve(self, completion: RequestCompletion) -> None:
        future = self._pending.pop(completion.request)
        if not future.cancelled():
            future.set_result(completion)

    # -- drain: execute offline, cross-check the live predictions -----------
    async def drain(self):
        """Close the session, execute its trace, return the report.

        The recorded releases replay through the ordinary offline path
        (:meth:`~repro.serve.Deployment.run_trace` /
        :meth:`~repro.serve.Fleet.run_trace` -- this is where the
        simulators actually execute and, in the cyclesim tier, validate
        bit-exactly against the golden model).  Every live prediction
        -- assignment, start, finish, drop -- is then cross-checked
        against the offline report; any divergence raises
        :class:`~repro.errors.SimulationError`, because it would mean
        the live session promised latencies the hardware model does not
        deliver.
        """
        if self.report is not None:
            return self.report
        await self._shutdown()
        if self._is_fleet:
            report = self.server.run_trace(
                list(self._releases), seed=self.seed, validate=self.validate,
                faults=self.faults, retry=self.retry,
            )
        else:
            report = self.server.run_trace(
                list(self._releases), seed=self.seed, validate=self.validate,
            )
        self._cross_check(report)
        self.report = report
        return report

    async def close(self) -> None:
        """Abandon the session without executing (pending futures cancel)."""
        await self._shutdown()
        for future in self._pending.values():
            if not future.done():
                future.cancel()
        self._pending.clear()

    async def _shutdown(self) -> None:
        if not self._closed:
            self._closed = True
            await self._queue.put(None)
        if self._task is not None:
            await self._task
            self._task = None
        for queue in self._subscribers:
            queue.put_nowait(None)

    def _cross_check(self, report) -> None:
        def mismatch(what, live, offline):
            raise SimulationError(
                f"live serving session diverged from the offline replay: "
                f"{what} predicted {live!r}, offline computed {offline!r}"
            )

        if list(report.releases) != self._releases:
            mismatch("releases", self._releases, list(report.releases))
        if self._is_fleet:
            if list(report.assignments) != self._assignments:
                mismatch(
                    "assignments", self._assignments,
                    list(report.assignments),
                )
            dropped = {
                i for i, s in enumerate(self._statuses) if s in _DROP_REASONS
            }
            if set(report.dropped_indices) != dropped:
                mismatch(
                    "dropped requests", sorted(dropped),
                    sorted(report.dropped_indices),
                )
        else:
            if list(report.service_starts) != self._starts:
                mismatch(
                    "service starts", self._starts,
                    list(report.service_starts),
                )
        if list(report.input_finishes) != self._finishes:
            mismatch(
                "finish cycles", self._finishes, list(report.input_finishes)
            )


async def serve_forever(
    server,
    *,
    clock=None,
    seed: int = 0,
    validate: bool = True,
    faults: Optional[FaultPlan] = None,
    retry: Optional[RetryPolicy] = None,
) -> ServerHandle:
    """Open an async real-time serving session; returns its handle.

    ``server`` is a :class:`~repro.serve.Deployment` or
    :class:`~repro.serve.Fleet` (fault plans need a fleet).  ``clock``
    maps submission times onto release cycles -- default a
    :class:`WallClock` on the architecture's cycle grid; pass a
    :class:`VirtualClock` for deterministic scripted sessions.  ``seed``
    and ``validate`` are handed to the drain-time offline replay
    exactly as :meth:`~repro.serve.Deployment.submit` takes them.

    Must be awaited inside a running event loop (the handle's scheduler
    task binds to it)::

        handle = await deployment.serve_forever(clock=VirtualClock())
        fut = await handle.submit()
        completion = await fut          # cycle-accurate promise
        report = await handle.drain()   # executes + cross-checks
    """
    if clock is None:
        clock = WallClock(server.arch.chip.cycle_ns)
    handle = ServerHandle(
        server, clock, seed=seed, validate=validate, faults=faults,
        retry=retry,
    )
    handle._start()
    return handle
