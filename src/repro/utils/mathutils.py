"""Arithmetic helpers shared across the compiler and simulator."""

from functools import reduce
from typing import Iterable


def ceil_div(a: int, b: int) -> int:
    """Integer ceiling division; ``b`` must be positive."""
    if b <= 0:
        raise ValueError("divisor must be positive")
    return -(-a // b)


def clamp(value: float, lo: float, hi: float) -> float:
    """Clamp ``value`` into the inclusive range [lo, hi]."""
    if lo > hi:
        raise ValueError("empty clamp range")
    return max(lo, min(hi, value))


def prod(values: Iterable[int]) -> int:
    """Product of an iterable of integers (1 for the empty iterable)."""
    return reduce(lambda a, b: a * b, values, 1)
