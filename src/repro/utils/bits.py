"""Bit-manipulation helpers used by the ISA encoder and the partitioner."""


def popcount(value: int) -> int:
    """Number of set bits in ``value`` (which must be non-negative)."""
    if value < 0:
        raise ValueError("popcount requires a non-negative integer")
    return bin(value).count("1")


def bit_length(value: int) -> int:
    """Number of bits needed to represent ``value``."""
    return max(1, int(value).bit_length())


def extract_bits(word: int, lo: int, width: int) -> int:
    """Extract ``width`` bits of ``word`` starting at bit ``lo`` (LSB = 0)."""
    if width <= 0:
        raise ValueError("width must be positive")
    return (word >> lo) & ((1 << width) - 1)


def insert_bits(word: int, lo: int, width: int, value: int) -> int:
    """Return ``word`` with ``width`` bits at ``lo`` replaced by ``value``.

    Raises ``ValueError`` if ``value`` does not fit in ``width`` bits.
    """
    if value < 0 or value >= (1 << width):
        raise ValueError(f"value {value} does not fit in {width} bits")
    mask = ((1 << width) - 1) << lo
    return (word & ~mask) | (value << lo)


def sign_extend(value: int, width: int) -> int:
    """Interpret the low ``width`` bits of ``value`` as a two's-complement
    signed integer and return the Python int."""
    value &= (1 << width) - 1
    sign_bit = 1 << (width - 1)
    return (value ^ sign_bit) - sign_bit


def to_twos_complement(value: int, width: int) -> int:
    """Encode a (possibly negative) integer into ``width`` bits, two's
    complement.  Raises ``ValueError`` when out of range."""
    lo = -(1 << (width - 1))
    hi = (1 << (width - 1)) - 1
    if not lo <= value <= hi:
        raise ValueError(f"value {value} out of signed {width}-bit range")
    return value & ((1 << width) - 1)
