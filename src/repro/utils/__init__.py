"""Small shared utilities (bit manipulation, math helpers)."""

from repro.utils.bits import bit_length, extract_bits, insert_bits, popcount, sign_extend
from repro.utils.mathutils import ceil_div, clamp, prod

__all__ = [
    "ceil_div",
    "clamp",
    "prod",
    "popcount",
    "bit_length",
    "extract_bits",
    "insert_bits",
    "sign_extend",
]
