"""Out-of-the-box workflow: model + architecture -> compile -> simulate ->
report (Fig. 2), with functional validation against the golden model.

This is the paper's "out-of-the-box workflow for implementing and
evaluating DNN workloads on digital CIM architectures"::

    from repro import run_workflow
    result = run_workflow("resnet18", input_size=32)
    print(result.report)

``arch`` may be an :class:`~repro.config.ArchConfig` or a path to a JSON
architecture file (the user-supplied configuration of Fig. 2); the same
workflow is available from the command line as ``python -m repro run``.
With ``chips=N`` the model is pipeline-sharded across ``N`` identical
chips (``python -m repro run --chips N``); outputs remain bit-exact
against the golden model either way.  See ``docs/ARCHITECTURE.md`` for
how this cycle-accurate path relates to the fast-model sweeps in
:mod:`repro.explore`, and its "Multi-chip sharding" section for the
shard/transfer contract.
"""

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Optional, Union

import numpy as np

from repro.config import ArchConfig, default_arch, load_arch
from repro.errors import CompileError, ValidationError
from repro.compiler import (
    CompiledModel,
    MultiChipModel,
    compile_graph,
    compile_sharded,
)
from repro.graph.graph import ComputationGraph
from repro.sim.chip import ChipSimulator
from repro.sim.functional import golden_outputs, random_input
from repro.sim.multichip import MultiChipReport, MultiChipSimulator
from repro.sim.report import SimulationReport


@dataclass
class WorkflowResult:
    """Everything one compile+simulate run produces.

    ``compiled`` / ``report`` are the single-chip types for ``chips=1``
    runs and :class:`MultiChipModel` / :class:`MultiChipReport` for
    sharded runs; both expose the same latency/energy surface.
    """

    compiled: Union[CompiledModel, MultiChipModel]
    report: Union[SimulationReport, MultiChipReport]
    outputs: Dict[str, np.ndarray]
    golden: Optional[Dict[str, np.ndarray]] = None
    validated: bool = False

    @property
    def graph(self) -> ComputationGraph:
        return self.compiled.graph


def _resolve_graph(
    model: Union[str, ComputationGraph], **model_kwargs
) -> ComputationGraph:
    if isinstance(model, ComputationGraph):
        return model
    from repro.graph.models import get_model

    return get_model(model, **model_kwargs)


ArchLike = Union[ArchConfig, str, Path, None]


def _resolve_arch(arch: ArchLike) -> ArchConfig:
    if arch is None:
        return default_arch()
    if isinstance(arch, (str, Path)):
        return load_arch(arch)
    return arch


def compile_model(
    model: Union[str, ComputationGraph],
    arch: ArchLike = None,
    strategy: str = "dp",
    chips: int = 1,
    **model_kwargs,
) -> Union[CompiledModel, MultiChipModel]:
    """Compile a model (zoo name or graph) for an architecture.

    ``arch`` accepts a ready :class:`ArchConfig` or the path of a JSON
    architecture configuration file (``None`` = the paper's Table I).
    With ``chips > 1`` the model is pipeline-sharded across that many
    identical chips and a :class:`MultiChipModel` is returned.
    """
    if chips < 1:
        raise CompileError(f"chip count must be >= 1, got {chips}")
    graph = _resolve_graph(model, **model_kwargs)
    resolved = _resolve_arch(arch)
    if chips > 1:
        return compile_sharded(graph, resolved, chips, strategy=strategy)
    return compile_graph(graph, resolved, strategy=strategy)


def simulate(
    compiled: Union[CompiledModel, MultiChipModel],
    input_data: Optional[np.ndarray] = None,
    validate: bool = True,
    seed: int = 0,
    engine: Optional[str] = None,
) -> WorkflowResult:
    """Simulate a compiled model on the cycle-level simulator.

    With ``validate=True`` (the execution-result check of Fig. 2) the
    simulated graph outputs are compared bit-exactly against the golden
    NumPy model; a mismatch raises :class:`ValidationError`.

    ``engine`` selects the execution engine: ``"block"`` (the hot-block
    engine, default) or ``"interp"`` (the legacy per-instruction
    interpreter); ``None`` defers to ``REPRO_SIM_ENGINE``.  Both produce
    bit-identical reports and outputs.

    A :class:`MultiChipModel` (from ``compile_model(..., chips=N)``) is
    routed to the multi-chip pipeline scheduler; the functional contract
    (bit-exact golden validation) is unchanged.
    """
    if isinstance(compiled, MultiChipModel):
        return _simulate_multichip(
            compiled, input_data, validate=validate, seed=seed, engine=engine
        )
    graph = compiled.graph
    if input_data is None:
        input_data = random_input(graph, seed=seed)
    input_tensor = graph.input_operators[0].output
    sim = ChipSimulator.from_compiled(compiled, engine=engine)
    sim.memory.write_global(
        compiled.input_address(input_tensor), np.asarray(input_data, np.int8)
    )
    report = sim.run()

    outputs: Dict[str, np.ndarray] = {}
    for name in graph.outputs:
        resolved = compiled.plan.cgraph.resolve(name)
        info = graph.tensor(name)
        raw = sim.memory.read_global(
            compiled.plan.tensor_address[resolved], info.size_bytes
        )
        outputs[name] = raw.reshape(info.shape)

    golden = None
    validated = False
    if validate:
        golden = golden_outputs(graph, {input_tensor: input_data})
        for name, expected in golden.items():
            got = outputs[name].reshape(expected.shape)
            if not np.array_equal(got, expected):
                bad = int(np.count_nonzero(got != expected))
                raise ValidationError(
                    f"{graph.name} [{compiled.plan.strategy}]: output "
                    f"{name!r} differs from golden model in {bad}/"
                    f"{expected.size} elements"
                )
        validated = True
    return WorkflowResult(
        compiled=compiled,
        report=report,
        outputs=outputs,
        golden=golden,
        validated=validated,
    )


def _simulate_multichip(
    compiled: MultiChipModel,
    input_data: Optional[np.ndarray],
    validate: bool,
    seed: int,
    engine: Optional[str],
) -> WorkflowResult:
    """Multi-chip twin of :func:`simulate` (same validation contract)."""
    graph = compiled.graph
    if input_data is None:
        input_data = random_input(graph, seed=seed)
    input_tensor = graph.input_operators[0].output
    sim = MultiChipSimulator(compiled, engine=engine)
    sim.write_input(input_tensor, input_data)
    report = sim.run()

    outputs: Dict[str, np.ndarray] = {}
    for name in graph.outputs:
        info = graph.tensor(name)
        outputs[name] = sim.read_output(name).reshape(info.shape)

    golden = None
    validated = False
    if validate:
        golden = golden_outputs(graph, {input_tensor: input_data})
        for name, expected in golden.items():
            got = outputs[name].reshape(expected.shape)
            if not np.array_equal(got, expected):
                bad = int(np.count_nonzero(got != expected))
                raise ValidationError(
                    f"{graph.name} [{compiled.num_chips} chips]: output "
                    f"{name!r} differs from golden model in {bad}/"
                    f"{expected.size} elements"
                )
        validated = True
    return WorkflowResult(
        compiled=compiled,
        report=report,
        outputs=outputs,
        golden=golden,
        validated=validated,
    )


def run_workflow(
    model: Union[str, ComputationGraph],
    arch: ArchLike = None,
    strategy: str = "dp",
    input_data: Optional[np.ndarray] = None,
    validate: bool = True,
    seed: int = 0,
    engine: Optional[str] = None,
    chips: int = 1,
    **model_kwargs,
) -> WorkflowResult:
    """The one-call pipeline: build/compile/simulate/validate/report.

    ``chips=N`` pipeline-shards the model across ``N`` identical chips
    (the multi-chip backend); results stay bit-exact vs the golden model.
    """
    compiled = compile_model(model, arch, strategy, chips=chips, **model_kwargs)
    return simulate(
        compiled, input_data, validate=validate, seed=seed, engine=engine
    )
