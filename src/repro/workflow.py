"""Out-of-the-box workflow: model + architecture -> compile -> simulate ->
report (Fig. 2), with functional validation against the golden model.

This is the paper's "out-of-the-box workflow for implementing and
evaluating DNN workloads on digital CIM architectures"::

    from repro import run_workflow
    result = run_workflow("resnet18", input_size=32)
    print(result.report)

The one-shot entry points here (:func:`run_workflow` / :func:`simulate`)
are **deprecated shims** over the serving API (:mod:`repro.serve`): a
:class:`~repro.serve.Deployment` compiles once and serves many
submissions, adds continuous-arrival streaming, and is the primary
entry point of the package.  The shims keep their exact legacy
semantics (bit-identical results) and remain supported.

``arch`` may be an :class:`~repro.config.ArchConfig` or a path to a JSON
architecture file (the user-supplied configuration of Fig. 2); the same
workflow is available from the command line as ``python -m repro run``.
With ``chips=N`` the model is pipeline-sharded across ``N`` identical
chips (``python -m repro run --chips N``); outputs remain bit-exact
against the golden model either way.  With ``batch=B`` a stream of
``B`` independent inputs runs through the configuration (``python -m
repro run --batch B``): multi-chip pipelines overlap inputs across
chips (throughput mode), a single chip replays them sequentially, and
every input is validated bit-exactly in isolation.  See
``docs/ARCHITECTURE.md`` for how this cycle-accurate path relates to
the fast-model sweeps in :mod:`repro.explore`, its "Multi-chip
sharding" section for the shard/transfer contract, and "Batched
streaming inference" for the throughput-mode contract.
"""

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.config import ArchConfig, default_arch, load_arch
from repro.errors import CompileError, ConfigError, ValidationError
from repro.compiler import (
    CompiledModel,
    MultiChipModel,
    compile_graph,
    compile_sharded,
)
from repro.graph.graph import ComputationGraph
from repro.sim.chip import ChipSimulator
from repro.sim.functional import random_input
from repro.sim.multichip import MultiChipReport
from repro.sim.report import SimulationReport


@dataclass
class WorkflowResult:
    """Everything one compile+simulate run produces.

    ``compiled`` / ``report`` are the single-chip types for ``chips=1``
    runs and :class:`MultiChipModel` / :class:`MultiChipReport` for
    sharded runs; both expose the same latency/energy surface.

    Batched runs (``batch > 1``) always carry a
    :class:`MultiChipReport` (streamed pipeline for multi-chip,
    sequential replay for one chip) so every configuration reports the
    same throughput / energy-per-inference metrics.  ``outputs`` /
    ``golden`` then describe the first input of the stream;
    ``per_input_outputs`` holds every input's outputs in order.
    """

    compiled: Union[CompiledModel, MultiChipModel]
    report: Union[SimulationReport, MultiChipReport]
    outputs: Dict[str, np.ndarray]
    golden: Optional[Dict[str, np.ndarray]] = None
    validated: bool = False
    batch: int = 1
    per_input_outputs: Optional[List[Dict[str, np.ndarray]]] = None

    @property
    def graph(self) -> ComputationGraph:
        return self.compiled.graph


def _resolve_graph(
    model: Union[str, ComputationGraph], **model_kwargs
) -> ComputationGraph:
    if isinstance(model, ComputationGraph):
        return model
    from repro.graph.models import get_model

    return get_model(model, **model_kwargs)


ArchLike = Union[ArchConfig, str, Path, None]


def _resolve_arch(arch: ArchLike) -> ArchConfig:
    if arch is None:
        return default_arch()
    if isinstance(arch, (str, Path)):
        return load_arch(arch)
    return arch


def compile_model(
    model: Union[str, ComputationGraph],
    arch: ArchLike = None,
    strategy: str = "dp",
    chips: int = 1,
    **model_kwargs,
) -> Union[CompiledModel, MultiChipModel]:
    """Compile a model (zoo name or graph) for an architecture.

    ``arch`` accepts a ready :class:`ArchConfig` or the path of a JSON
    architecture configuration file (``None`` = the paper's Table I).
    With ``chips > 1`` the model is pipeline-sharded across that many
    identical chips and a :class:`MultiChipModel` is returned.
    """
    if chips < 1:
        raise CompileError(f"chip count must be >= 1, got {chips}")
    graph = _resolve_graph(model, **model_kwargs)
    resolved = _resolve_arch(arch)
    if chips > 1:
        return compile_sharded(graph, resolved, chips, strategy=strategy)
    return compile_graph(graph, resolved, strategy=strategy)


def _resolve_batch_inputs(
    graph: ComputationGraph,
    input_data,
    batch: int,
    seed: int,
) -> List[np.ndarray]:
    """Normalise ``input_data`` / ``batch`` into a list of input tensors.

    ``None`` draws ``batch`` reproducible random inputs seeded ``seed``,
    ``seed + 1``, ... (so input ``i`` of a batched run is bit-identical
    to an independent run with ``seed=seed+i``); anything shaped like
    one model input (array or nested list) is a batch of one; a
    sequence of input-shaped arrays -- a list or a stacked ``(B, *input
    shape)`` array -- must match ``batch`` (or sets it when ``batch``
    was left at 1).  Every resolved input is shape-checked against the
    model's input tensor.
    """
    if batch < 1:
        raise ConfigError(f"batch must be >= 1, got {batch}")
    if input_data is None:
        return [random_input(graph, seed=seed + i) for i in range(batch)]
    expected = tuple(graph.tensor(graph.input_operators[0].output).shape)

    if isinstance(input_data, np.ndarray):
        whole = input_data
    else:
        try:
            whole = np.asarray(input_data)
        except ValueError:  # ragged sequence: definitely not one input
            whole = None
    if whole is not None and whole.shape == expected:
        inputs = [whole]  # exactly one model input
    elif whole is not None and whole.ndim and whole.shape[1:] == expected:
        inputs = list(whole)  # a stacked batch of inputs
    elif isinstance(input_data, np.ndarray):
        inputs = [input_data]  # wrong shape: reported below
    else:
        inputs = [np.asarray(item) for item in input_data]
    if batch == 1 and len(inputs) > 1:
        batch = len(inputs)
    if len(inputs) != batch:
        raise ConfigError(
            f"batch={batch} but {len(inputs)} input arrays were given"
        )
    for index, data in enumerate(inputs):
        if tuple(data.shape) != expected:
            raise ConfigError(
                f"input {index} has shape {tuple(data.shape)}; the model "
                f"input is {expected}"
            )
    return inputs


def _input_needs_batch_resolution(
    graph: ComputationGraph, input_data
) -> bool:
    """Should ``input_data`` go through :func:`_resolve_batch_inputs`?

    Any non-array sequence does (lists may be nested single inputs or
    per-input batches).  A plain ndarray normally takes the legacy
    single-input path unchecked -- except a stacked ``(B, *input
    shape)`` array, which is the documented implicit-batch form and
    must resolve like the equivalent list of ``B`` arrays.
    """
    if input_data is None:
        return False
    if not isinstance(input_data, np.ndarray):
        return True
    expected = tuple(graph.tensor(graph.input_operators[0].output).shape)
    shape = tuple(input_data.shape)
    return shape != expected and input_data.ndim >= 1 and shape[1:] == expected


def _run_single_chip(
    compiled: CompiledModel,
    input_data: np.ndarray,
    engine: Optional[str],
) -> Tuple[SimulationReport, Dict[str, np.ndarray]]:
    """One cycle-accurate single-chip execution: write input, run, read
    every graph output (shared by the single-shot and batched paths)."""
    graph = compiled.graph
    input_tensor = graph.input_operators[0].output
    sim = ChipSimulator.from_compiled(compiled, engine=engine)
    sim.memory.write_global(
        compiled.input_address(input_tensor), np.asarray(input_data, np.int8)
    )
    report = sim.run()
    outputs: Dict[str, np.ndarray] = {}
    for name in graph.outputs:
        resolved = compiled.plan.cgraph.resolve(name)
        info = graph.tensor(name)
        raw = sim.memory.read_global(
            compiled.plan.tensor_address[resolved], info.size_bytes
        )
        outputs[name] = raw.reshape(info.shape)
    return report, outputs


def _validate_outputs(
    graph: ComputationGraph,
    outputs: Dict[str, np.ndarray],
    golden: Dict[str, np.ndarray],
    label: str,
) -> None:
    """Bit-exact golden-model check (the execution-result check of Fig. 2)."""
    for name, expected in golden.items():
        got = outputs[name].reshape(expected.shape)
        if not np.array_equal(got, expected):
            bad = int(np.count_nonzero(got != expected))
            raise ValidationError(
                f"{graph.name} [{label}]: output {name!r} differs from "
                f"golden model in {bad}/{expected.size} elements"
            )


def _simulate_impl(
    compiled: Union[CompiledModel, MultiChipModel],
    input_data,
    validate: bool,
    seed: int,
    engine: Optional[str],
    batch: int,
) -> WorkflowResult:
    """Legacy one-shot semantics expressed over a :class:`Deployment`.

    Shared by the deprecated :func:`simulate` / :func:`run_workflow`
    shims and internal callers that must not emit deprecation warnings.
    Batched submissions go through ``Deployment.submit`` with
    back-to-back arrivals, which is bit-identical to the PR-4 batched
    scheduler; the returned :class:`WorkflowResult` is unchanged.
    """
    from repro.serve import Deployment

    deployment = Deployment(compiled, engine=engine)
    if batch != 1 or _input_needs_batch_resolution(compiled.graph, input_data):
        inputs = _resolve_batch_inputs(
            compiled.graph, input_data, batch, seed
        )
        if len(inputs) > 1:
            serve = deployment.submit(inputs, validate=validate)
            return WorkflowResult(
                compiled=compiled,
                report=serve.stream_report,
                outputs=serve.per_input_outputs[0],
                golden=serve.golden,
                validated=serve.validated,
                batch=serve.batch,
                per_input_outputs=list(serve.per_input_outputs),
            )
        input_data = inputs[0]
    return deployment.run(input_data, validate=validate, seed=seed)


def _deprecated(name: str, replacement: str) -> None:
    import warnings

    warnings.warn(
        f"{name} is deprecated; use {replacement} (repro.serve) instead -- "
        f"a Deployment compiles once and serves many submissions",
        DeprecationWarning,
        stacklevel=3,
    )


def simulate(
    compiled: Union[CompiledModel, MultiChipModel],
    input_data: Optional[np.ndarray] = None,
    validate: bool = True,
    seed: int = 0,
    engine: Optional[str] = None,
    batch: int = 1,
) -> WorkflowResult:
    """Simulate a compiled model on the cycle-level simulator.

    .. deprecated::
        ``simulate`` recompiles nothing but still owns no state across
        calls; prefer ``Deployment(compiled).run(...)`` /
        ``Deployment(compiled).submit(...)`` (:mod:`repro.serve`), which
        add continuous-arrival streaming and latency percentiles.  This
        shim keeps the exact legacy semantics and stays supported.

    With ``validate=True`` (the execution-result check of Fig. 2) the
    simulated graph outputs are compared bit-exactly against the golden
    NumPy model; a mismatch raises :class:`ValidationError`.

    ``engine`` selects the execution engine: ``"block"`` (the hot-block
    engine, default) or ``"interp"`` (the legacy per-instruction
    interpreter); ``None`` defers to ``REPRO_SIM_ENGINE``.  Both produce
    bit-identical reports and outputs.

    A :class:`MultiChipModel` (from ``compile_model(..., chips=N)``) is
    routed to the multi-chip pipeline scheduler; the functional contract
    (bit-exact golden validation) is unchanged.

    ``batch=B`` streams ``B`` independent inputs through the
    configuration (throughput mode): a multi-chip pipeline overlaps
    inputs across chips, a single chip replays them sequentially, and
    each input is simulated and validated in full isolation.
    ``input_data`` may then be a sequence of ``B`` arrays (``None``
    draws seeds ``seed .. seed+B-1``).
    """
    _deprecated("simulate()", "Deployment.run()/Deployment.submit()")
    return _simulate_impl(compiled, input_data, validate, seed, engine, batch)


def run_workflow(
    model: Union[str, ComputationGraph],
    arch: ArchLike = None,
    strategy: str = "dp",
    input_data: Optional[np.ndarray] = None,
    validate: bool = True,
    seed: int = 0,
    engine: Optional[str] = None,
    chips: int = 1,
    batch: int = 1,
    **model_kwargs,
) -> WorkflowResult:
    """The one-call pipeline: build/compile/simulate/validate/report.

    .. deprecated::
        ``run_workflow`` recompiles the model on every call; prefer
        ``Deployment(model, arch, chips=N)`` (:mod:`repro.serve`), which
        compiles once and serves many submissions.  This shim keeps the
        exact legacy semantics and stays supported.

    ``chips=N`` pipeline-shards the model across ``N`` identical chips
    (the multi-chip backend); results stay bit-exact vs the golden model.
    ``batch=B`` streams ``B`` independent inputs through the
    configuration (throughput mode): input ``i`` uses seed ``seed + i``
    and validates bit-exactly in isolation.
    """
    _deprecated("run_workflow()", "Deployment")
    compiled = compile_model(model, arch, strategy, chips=chips, **model_kwargs)
    return _simulate_impl(compiled, input_data, validate, seed, engine, batch)
