"""Content-addressed on-disk artifacts for compiled models.

The compiler's products (:class:`~repro.compiler.pipeline.CompiledModel`
and :class:`~repro.compiler.pipeline.MultiChipModel`) live in process
memory; this module makes them a shippable file, so a serving session
never re-runs the compiler::

    from repro import compile_model, save_artifact, load_artifact

    digest = save_artifact(compile_model("tiny_resnet", chips=2), "m.artifact")
    model = load_artifact("m.artifact")          # bit-identical product

**Container layout** (all integers little-endian)::

    offset 0   : 8-byte magic  b"RPROART\\0"
    offset 8   : u32 artifact format version
    offset 12  : u64 manifest length, then the manifest (canonical JSON)
    ...        : binary sections, back to back, in manifest order
    tail       : 32-byte SHA-256 digest over every preceding byte

The manifest is canonical JSON (sorted keys, compact separators) naming
the format version, the architecture fingerprint
(:func:`repro.config.arch_fingerprint`), model/chips/strategy metadata,
per-chip tensor addresses + fast-model reports, the inter-chip transfer
schedule, ISA extension descriptors, and the section index.  Sections
hold the architecture JSON, the full model graph (with weights), and per
chip the encoded programs and the global-memory weight image.

The trailing digest is the artifact's *content address*:
:func:`save_artifact` returns it, ``repro inspect`` prints it, and
:func:`load_artifact` refuses any file whose bytes do not hash to it --
corruption (truncation, bit flips) always raises a typed
:class:`~repro.errors.ArtifactError`, never a silently-wrong model.
Serialization is deterministic: saving the same compiled model twice
produces byte-identical files, and ``save -> load -> save`` round-trips
to the same bytes (the golden-fixture and round-trip tests in
``tests/test_artifact.py`` pin this).

**Programs** are stored as their 32-bit instruction encodings
(:func:`repro.isa.encode`).  The rare instruction whose ``li``-expanded
immediate exceeds its field's encodable range (see
:meth:`repro.isa.Program.content_digest`) is stored as a JSON field
override instead, so every program -- encodable or not -- round-trips to
the exact canonical instruction stream.

**Loading** rebuilds a real product: the graph is reconstructed from its
serialized form, multi-chip shards are re-derived with the *stored* cut
points (``shard_graph`` is deterministic given cuts), and each chip gets
a lightweight :class:`ArtifactPlan` carrying exactly the plan state the
simulators and the serving layer consume (tensor addresses, condensed-
graph aliases, the pre-computed fast-model report).  Cycle-level and
fast-tier results from a loaded artifact are bit-identical to a fresh
in-process compile -- ``tests/test_artifact.py`` enforces this on 1- and
2-chip models in both tiers.
"""

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.compiler.frontend import CondensedGraph, condense
from repro.compiler.partition import shard_graph
from repro.compiler.pipeline import (
    CompiledModel,
    InterChipTransfer,
    MultiChipModel,
)
from repro.config import (
    ArchConfig,
    arch_canonical_json,
    arch_fingerprint,
    arch_from_dict,
)
from repro.errors import ArtifactError, ISAError
from repro.graph.graph import ComputationGraph
from repro.graph.onnx_like import graph_from_dict, graph_to_dict
from repro.isa import (
    Category,
    Format,
    ISARegistry,
    Instruction,
    InstructionDescriptor,
    Program,
    decode,
    default_registry,
    encode,
)
from repro.sim.fastmodel import FastReport, analyze_plan

#: Bump on any change to the container layout or manifest schema.
ARTIFACT_FORMAT_VERSION = 1

MAGIC = b"RPROART\0"
_DIGEST_BYTES = 32


def _canonical_json_bytes(payload) -> bytes:
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")


# ---------------------------------------------------------------------------
# The loaded plan stub
# ---------------------------------------------------------------------------

@dataclass
class ArtifactPlan:
    """The plan state an artifact preserves (a lean ``ExecutionPlan``).

    A full :class:`~repro.compiler.plan.ExecutionPlan` carries the whole
    CG-level optimization state (geometries, stage mappings, replica
    assignments); the simulators and the serving layer only ever consume
    the fields below, so the artifact stores exactly these.  The
    ``fast_report`` is the plan's :func:`~repro.sim.fastmodel.analyze_plan`
    result computed at save time -- the fast tier reads it instead of
    re-analysing, which keeps fast-tier results from a loaded artifact
    bit-identical to a fresh compile.
    """

    graph: ComputationGraph
    cgraph: CondensedGraph
    arch: ArchConfig
    strategy: str
    tensor_address: Dict[str, int] = field(default_factory=dict)
    fast_report: Optional[FastReport] = None

    def summary(self) -> str:
        return (
            f"plan[{self.strategy}] {self.graph.name}: loaded from artifact, "
            f"{len(self.tensor_address)} global tensors"
        )


# ---------------------------------------------------------------------------
# Program (de)serialization
# ---------------------------------------------------------------------------

def _program_to_entry(program: Program) -> Dict:
    """One core's program as encoded words plus field overrides.

    A word is used only when ``decode(encode(instr))`` reproduces the
    instruction's canonical (non-zero) fields; anything else -- e.g. a
    ``li``-expanded immediate outside its field's encodable range --
    becomes a JSON override, so the stored form always round-trips to
    the exact instruction stream the compiler emitted.
    """
    if not program.finalized:
        program.finalize()
    words: List[int] = []
    overrides: Dict[str, Dict] = {}
    for index, instr in enumerate(program.instructions):
        canonical = {k: int(v) for k, v in instr.fields.items() if v != 0}
        try:
            word = encode(instr, program.registry)
            decoded = decode(word, program.registry)
            if decoded.mnemonic == instr.mnemonic and decoded.fields == canonical:
                words.append(word)
                continue
        except ISAError:
            pass
        words.append(0)
        overrides[str(index)] = {
            "mnemonic": instr.mnemonic,
            "fields": canonical,
        }
    return {"words": words, "overrides": overrides}


def _program_from_entry(entry: Dict, registry: ISARegistry) -> Program:
    program = Program(registry)
    overrides = entry.get("overrides", {})
    for index, word in enumerate(entry["words"]):
        override = overrides.get(str(index))
        if override is not None:
            instr = Instruction(
                override["mnemonic"],
                {k: int(v) for k, v in override["fields"].items()},
            )
            program.append(instr)
        else:
            program.append(decode(int(word), registry))
    return program.finalize()


def _descriptor_to_dict(desc: InstructionDescriptor) -> Dict:
    return {
        "mnemonic": desc.mnemonic,
        "opcode": int(desc.opcode),
        "category": desc.category.value,
        "fmt": desc.fmt.value,
        "operands": list(desc.operands),
        "description": desc.description,
        "latency": desc.latency,
        "energy_pj": desc.energy_pj,
        "unsigned_fields": list(desc.unsigned_fields),
    }


def _descriptor_from_dict(data: Dict) -> InstructionDescriptor:
    return InstructionDescriptor(
        mnemonic=data["mnemonic"],
        opcode=int(data["opcode"]),
        category=Category(data["category"]),
        fmt=Format(data["fmt"]),
        operands=tuple(data.get("operands", ())),
        description=data.get("description", ""),
        latency=data.get("latency"),
        energy_pj=data.get("energy_pj"),
        unsigned_fields=tuple(data.get("unsigned_fields", ())),
    )


def _extension_descriptors(registry: ISARegistry) -> List[Dict]:
    """Descriptors registered beyond the built-in instruction table."""
    builtin = default_registry()
    return [
        _descriptor_to_dict(registry.lookup(m))
        for m in registry.mnemonics()
        if m not in builtin
    ]


def _registry_from_manifest(manifest: Dict) -> ISARegistry:
    extensions = manifest.get("isa_extensions", [])
    if not extensions:
        return default_registry()
    registry = ISARegistry()
    for entry in extensions:
        try:
            registry.register(_descriptor_from_dict(entry))
        except (ISAError, KeyError, ValueError) as exc:
            raise ArtifactError(
                f"invalid ISA extension descriptor in manifest: {exc}"
            ) from exc
    return registry


# ---------------------------------------------------------------------------
# Save
# ---------------------------------------------------------------------------

def _chip_fast_report(compiled: CompiledModel) -> FastReport:
    stored = getattr(compiled.plan, "fast_report", None)
    return stored if stored is not None else analyze_plan(compiled.plan)


def _chip_manifest_and_sections(
    index: int, compiled: CompiledModel
) -> Tuple[Dict, List[Tuple[str, bytes]]]:
    cores = {
        str(cid): _program_to_entry(program)
        for cid, program in sorted(compiled.programs.items())
    }
    program_bytes = _canonical_json_bytes({"cores": cores})
    image_bytes = bytes(
        np.ascontiguousarray(compiled.global_image, dtype=np.uint8)
    )
    meta = {
        "tensor_address": {
            name: int(addr)
            for name, addr in sorted(compiled.plan.tensor_address.items())
        },
        "fast_report": _chip_fast_report(compiled).to_dict(),
        "num_instructions": int(compiled.total_instructions()),
        "image_bytes": len(image_bytes),
    }
    sections = [
        (f"program.{index}", program_bytes),
        (f"image.{index}", image_bytes),
    ]
    return meta, sections


def save_artifact(
    model: Union[CompiledModel, MultiChipModel],
    path: Union[str, Path],
) -> str:
    """Serialize a compiled model to ``path``; returns its hex digest.

    Deterministic: the same compiled model always produces byte-identical
    files, so the returned SHA-256 digest is a stable content address.
    """
    if isinstance(model, MultiChipModel):
        chips = model.chips
        strategy = chips[0].plan.strategy
        cuts = [int(c) for c in model.sharding.cuts]
        transfers = [
            {
                "src_chip": t.src_chip,
                "dst_chip": t.dst_chip,
                "tensor": t.tensor,
                "src_address": t.src_address,
                "dst_address": t.dst_address,
                "nbytes": t.nbytes,
            }
            for t in model.transfers
        ]
        registry = chips[0].registry
    elif isinstance(model, CompiledModel):
        chips = [model]
        strategy = model.plan.strategy
        cuts = None
        transfers = []
        registry = model.registry
    else:
        raise ArtifactError(
            f"save_artifact needs a CompiledModel or MultiChipModel, got "
            f"{type(model).__name__}"
        )

    graph = model.graph
    arch_bytes = arch_canonical_json(model.arch).encode("utf-8")
    graph_bytes = _canonical_json_bytes(graph_to_dict(graph))

    sections: List[Tuple[str, bytes]] = [
        ("arch", arch_bytes),
        ("graph", graph_bytes),
    ]
    chip_meta = []
    for index, compiled in enumerate(chips):
        meta, chip_sections = _chip_manifest_and_sections(index, compiled)
        chip_meta.append(meta)
        sections.extend(chip_sections)

    input_names = [op.output for op in graph.input_operators]
    manifest = {
        "format": "repro-artifact",
        "format_version": ARTIFACT_FORMAT_VERSION,
        "arch_fingerprint": arch_fingerprint(model.arch),
        "model": {
            "name": graph.name,
            "chips": len(chips),
            "strategy": strategy,
            "cuts": cuts,
            "inputs": input_names,
            "outputs": list(graph.outputs),
        },
        "chips": chip_meta,
        "transfers": transfers,
        "isa_extensions": _extension_descriptors(registry),
        "sections": [
            {"name": name, "nbytes": len(data)} for name, data in sections
        ],
    }
    manifest_bytes = _canonical_json_bytes(manifest)

    blob = bytearray()
    blob += MAGIC
    blob += ARTIFACT_FORMAT_VERSION.to_bytes(4, "little")
    blob += len(manifest_bytes).to_bytes(8, "little")
    blob += manifest_bytes
    for _, data in sections:
        blob += data
    digest = hashlib.sha256(bytes(blob)).hexdigest()
    blob += bytes.fromhex(digest)
    Path(path).write_bytes(bytes(blob))
    return digest


# ---------------------------------------------------------------------------
# Load
# ---------------------------------------------------------------------------

def _read_verified(path: Union[str, Path]) -> Tuple[Dict, Dict[str, bytes], str]:
    """Parse + digest-check an artifact; returns (manifest, sections, digest).

    Every integrity failure raises :class:`ArtifactError`: a wrong magic
    (not an artifact at all), a digest mismatch (truncation or bit
    corruption anywhere in the file), an unsupported format version, or
    a malformed manifest/section table.
    """
    try:
        raw = Path(path).read_bytes()
    except OSError as exc:
        raise ArtifactError(f"cannot read artifact {path}: {exc}") from exc
    header_len = len(MAGIC) + 4 + 8
    if len(raw) < header_len + _DIGEST_BYTES:
        raise ArtifactError(
            f"{path}: too short to be an artifact ({len(raw)} bytes)"
        )
    if raw[: len(MAGIC)] != MAGIC:
        raise ArtifactError(f"{path}: not a repro artifact (bad magic)")
    body, stored = raw[:-_DIGEST_BYTES], raw[-_DIGEST_BYTES:]
    actual = hashlib.sha256(body).digest()
    if actual != stored:
        raise ArtifactError(
            f"{path}: content digest mismatch (stored {stored.hex()}, "
            f"actual {actual.hex()}); the file is corrupt or truncated"
        )
    version = int.from_bytes(raw[len(MAGIC): len(MAGIC) + 4], "little")
    if version != ARTIFACT_FORMAT_VERSION:
        raise ArtifactError(
            f"{path}: unsupported artifact format version {version} "
            f"(this build reads version {ARTIFACT_FORMAT_VERSION})"
        )
    manifest_len = int.from_bytes(raw[len(MAGIC) + 4: header_len], "little")
    manifest_end = header_len + manifest_len
    if manifest_end > len(body):
        raise ArtifactError(f"{path}: manifest overruns the file")
    try:
        manifest = json.loads(body[header_len:manifest_end].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ArtifactError(f"{path}: malformed manifest: {exc}") from exc

    sections: Dict[str, bytes] = {}
    cursor = manifest_end
    try:
        table = manifest["sections"]
        for entry in table:
            name, nbytes = entry["name"], int(entry["nbytes"])
            sections[name] = body[cursor:cursor + nbytes]
            if len(sections[name]) != nbytes:
                raise ArtifactError(
                    f"{path}: section {name!r} overruns the file"
                )
            cursor += nbytes
    except (KeyError, TypeError) as exc:
        raise ArtifactError(f"{path}: malformed section table: {exc}") from exc
    if cursor != len(body):
        raise ArtifactError(
            f"{path}: {len(body) - cursor} trailing bytes after the last "
            f"section"
        )
    return manifest, sections, actual.hex()


def _load_chip(
    meta: Dict,
    program_bytes: bytes,
    image_bytes: bytes,
    graph: ComputationGraph,
    cgraph: CondensedGraph,
    arch: ArchConfig,
    strategy: str,
    registry: ISARegistry,
) -> CompiledModel:
    try:
        cores_entry = json.loads(program_bytes.decode("utf-8"))["cores"]
    except (UnicodeDecodeError, json.JSONDecodeError, KeyError) as exc:
        raise ArtifactError(f"malformed program section: {exc}") from exc
    try:
        programs = {
            int(cid): _program_from_entry(entry, registry)
            for cid, entry in cores_entry.items()
        }
    except ISAError as exc:
        raise ArtifactError(f"cannot decode program: {exc}") from exc
    plan = ArtifactPlan(
        graph=graph,
        cgraph=cgraph,
        arch=arch,
        strategy=strategy,
        tensor_address={
            name: int(addr) for name, addr in meta["tensor_address"].items()
        },
        fast_report=FastReport.from_dict(meta["fast_report"]),
    )
    image = np.frombuffer(image_bytes, dtype=np.uint8).copy()
    return CompiledModel(
        plan=plan, programs=programs, global_image=image, registry=registry
    )


def load_artifact(
    path: Union[str, Path],
    arch: Optional[ArchConfig] = None,
) -> Union[CompiledModel, MultiChipModel]:
    """Load a compiled model from an artifact file.

    Verifies the content digest, format version and manifest before
    touching any payload.  When ``arch`` is given (the session's
    :class:`ArchConfig`), its fingerprint must match the fingerprint the
    artifact was compiled for -- a mismatch raises
    :class:`ArtifactError` naming both fingerprints instead of producing
    undefined simulation results on the wrong hardware point.
    """
    manifest, sections, _ = _read_verified(path)
    try:
        stored_fp = manifest["arch_fingerprint"]
        model_meta = manifest["model"]
        chip_meta = manifest["chips"]
    except KeyError as exc:
        raise ArtifactError(f"{path}: manifest missing {exc}") from exc

    if arch is not None:
        session_fp = arch_fingerprint(arch)
        if session_fp != stored_fp:
            raise ArtifactError(
                f"{path}: architecture mismatch -- the artifact was "
                f"compiled for arch fingerprint {stored_fp} but the "
                f"session arch has fingerprint {session_fp}; recompile "
                f"for this architecture or load with the matching one"
            )

    try:
        loaded_arch = arch_from_dict(
            json.loads(sections["arch"].decode("utf-8"))
        )
        graph = graph_from_dict(json.loads(sections["graph"].decode("utf-8")))
    except ArtifactError:
        raise
    except Exception as exc:
        raise ArtifactError(
            f"{path}: cannot rebuild arch/graph payload: {exc}"
        ) from exc
    if arch_fingerprint(loaded_arch) != stored_fp:
        raise ArtifactError(
            f"{path}: manifest arch fingerprint {stored_fp} does not match "
            f"the embedded architecture ({arch_fingerprint(loaded_arch)})"
        )

    registry = _registry_from_manifest(manifest)
    strategy = model_meta["strategy"]
    num_chips = int(model_meta["chips"])
    if len(chip_meta) != num_chips:
        raise ArtifactError(
            f"{path}: manifest lists {num_chips} chips but has "
            f"{len(chip_meta)} chip records"
        )

    def chip_sections(index: int) -> Tuple[bytes, bytes]:
        try:
            return sections[f"program.{index}"], sections[f"image.{index}"]
        except KeyError as exc:
            raise ArtifactError(
                f"{path}: missing section for chip {index}: {exc}"
            ) from exc

    if num_chips == 1:
        program_bytes, image_bytes = chip_sections(0)
        return _load_chip(
            chip_meta[0], program_bytes, image_bytes,
            graph, condense(graph), loaded_arch, strategy, registry,
        )

    cuts = tuple(int(c) for c in model_meta["cuts"])
    sharding = shard_graph(graph, num_chips, cuts=cuts)
    chips: List[CompiledModel] = []
    for index, (shard, meta) in enumerate(zip(sharding.shards, chip_meta)):
        program_bytes, image_bytes = chip_sections(index)
        chips.append(
            _load_chip(
                meta, program_bytes, image_bytes,
                shard.graph, condense(shard.graph), loaded_arch, strategy,
                registry,
            )
        )
    transfers = [
        InterChipTransfer(
            src_chip=int(t["src_chip"]),
            dst_chip=int(t["dst_chip"]),
            tensor=t["tensor"],
            src_address=int(t["src_address"]),
            dst_address=int(t["dst_address"]),
            nbytes=int(t["nbytes"]),
        )
        for t in manifest.get("transfers", [])
    ]
    return MultiChipModel(
        sharding=sharding, arch=loaded_arch, chips=chips, transfers=transfers
    )


# ---------------------------------------------------------------------------
# Inspection
# ---------------------------------------------------------------------------

def inspect_artifact(path: Union[str, Path]) -> Dict:
    """Digest-verify an artifact and summarise its manifest (JSON-safe).

    The summary powers ``repro inspect``: content digest, format
    version, arch fingerprint, model/chips/strategy metadata, per-chip
    instruction and image sizes, and the transfer schedule.
    """
    manifest, sections, digest = _read_verified(path)
    model_meta = manifest.get("model", {})
    return {
        "path": str(path),
        "digest": digest,
        "file_bytes": Path(path).stat().st_size,
        "format_version": manifest.get("format_version"),
        "arch_fingerprint": manifest.get("arch_fingerprint"),
        "model": model_meta,
        "chips": [
            {
                "num_instructions": meta.get("num_instructions"),
                "image_bytes": meta.get("image_bytes"),
                "global_tensors": len(meta.get("tensor_address", {})),
                "fast_cycles": meta.get("fast_report", {}).get("cycles"),
            }
            for meta in manifest.get("chips", [])
        ],
        "transfers": len(manifest.get("transfers", [])),
        "interchip_bytes": sum(
            int(t["nbytes"]) for t in manifest.get("transfers", [])
        ),
        "isa_extensions": [
            e["mnemonic"] for e in manifest.get("isa_extensions", [])
        ],
        "sections": [
            {"name": s["name"], "nbytes": s["nbytes"]}
            for s in manifest.get("sections", [])
        ],
    }
