"""`repro watch`: the live operator console over the serving runtime.

Two halves, deliberately separable:

- :class:`ConsoleState` + :func:`console_snapshot` are **pure Python**:
  they fold the runtime's typed event stream
  (:mod:`repro.runtime`) into the operator tables -- per-shard
  utilisation, replica health, queue depth, rolling p50/p99 -- and dump
  them as JSON.  This is the ``repro watch --snapshot`` headless mode
  CI exercises, and the substrate the live app renders.
- :func:`run_watch_app` wraps the same state in a Textual
  ``DataTable`` dashboard (the gridworks-scada operator-console
  pattern).  Textual is an *optional* dependency: importing this
  module never requires it, and a missing install raises a
  :class:`~repro.errors.ConfigError` that points at ``--snapshot``.

The shard table carries the model-vs-measured cross-check: next to the
utilisation measured from completed requests it prints the closed-form
:func:`repro.sim.fastmodel.steady_state_utilization` at the observed
arrival interval, so an operator can see at a glance whether the live
session tracks the analytical steady state.
"""

import json
from collections import deque
from typing import Dict, List, Optional

from repro.errors import ConfigError
from repro.runtime import (
    ReplicaStateChanged,
    RequestAdmitted,
    RequestCompleted,
    RequestDropped,
    ServerHandle,
)

__all__ = [
    "ConsoleState",
    "console_snapshot",
    "drive_session",
    "headless_watch",
    "run_watch_app",
    "snapshot_json",
]

#: Versioned so CI assertions against the snapshot shape fail loudly.
SNAPSHOT_SCHEMA = 1


class ConsoleState:
    """Fold the runtime event stream into the operator tables.

    Pure aggregation -- no asyncio, no rendering -- so the live app
    and the headless snapshot share one implementation byte for byte.
    ``window`` bounds the rolling latency percentiles (a live console
    shows *recent* tail latency, not the all-time distribution).
    """

    def __init__(
        self,
        shard_row: List[int],
        num_replicas: int,
        *,
        window: int = 64,
        cycle_ns: Optional[float] = None,
    ):
        if window < 1:
            raise ConfigError(f"window must be >= 1, got {window}")
        self.shard_row = list(shard_row)
        self.num_replicas = int(num_replicas)
        self.window = int(window)
        self.cycle_ns = cycle_ns
        #: The arrival frontier: latest release cycle seen.  Queue
        #: depths are measured here (how much admitted work is still
        #: ahead of the newest request).
        self.now_cycle = 0
        #: The work frontier: latest promised finish cycle.  Utilisation
        #: and throughput are measured over this horizon, because the
        #: runtime's RequestCompleted events are cycle-accurate
        #: *promises* that may land past the arrival frontier.
        self.horizon_cycle = 0
        self.admitted = 0
        self.completed = 0
        self.dropped = 0
        self.first_release: Optional[int] = None
        self.last_release: Optional[int] = None
        self.drop_reasons: Dict[str, int] = {}
        self.replica_state = ["up"] * self.num_replicas
        self.replica_served = [0] * self.num_replicas
        self.replica_in_flight = [0] * self.num_replicas
        self.replica_finishes: List[deque] = [
            deque(maxlen=4096) for _ in range(self.num_replicas)
        ]
        self._latencies: deque = deque(maxlen=self.window)

    # -- event folding -------------------------------------------------------
    def observe(self, event) -> None:
        """Account one runtime event (order = the emitted stream)."""
        if isinstance(event, RequestAdmitted):
            self.admitted += 1
            self.replica_in_flight[event.replica] += 1
            if self.first_release is None:
                self.first_release = event.release_cycle
            self.last_release = event.release_cycle
            self.now_cycle = max(self.now_cycle, event.release_cycle)
        elif isinstance(event, RequestCompleted):
            self.completed += 1
            self.replica_served[event.replica] += 1
            self.replica_in_flight[event.replica] = max(
                0, self.replica_in_flight[event.replica] - 1
            )
            self.replica_finishes[event.replica].append(event.finish_cycle)
            self._latencies.append(event.latency_cycles)
            self.now_cycle = max(self.now_cycle, event.release_cycle)
            self.horizon_cycle = max(self.horizon_cycle, event.finish_cycle)
        elif isinstance(event, RequestDropped):
            self.dropped += 1
            self.drop_reasons[event.reason] = (
                self.drop_reasons.get(event.reason, 0) + 1
            )
            self.now_cycle = max(self.now_cycle, event.release_cycle)
        elif isinstance(event, ReplicaStateChanged):
            self.replica_state[event.replica] = event.state
            if event.state == "crashed":
                # In-flight work on a crashed replica is re-enqueued by
                # the failover engine; it is no longer this queue's.
                self.replica_in_flight[event.replica] = 0

    def observe_all(self, events) -> None:
        for event in events:
            self.observe(event)

    # -- tables --------------------------------------------------------------
    def queue_depth(self, replica: int) -> int:
        """Requests on ``replica`` still in service at ``now_cycle``."""
        backlog = sum(
            1 for f in self.replica_finishes[replica] if f > self.now_cycle
        )
        return backlog + self.replica_in_flight[replica]

    def arrival_interval_cycles(self) -> Optional[float]:
        """Mean observed inter-arrival interval (None before 2 arrivals)."""
        if (
            self.first_release is None
            or self.last_release is None
            or self.admitted < 2
        ):
            return None
        span = self.last_release - self.first_release
        return span / (self.admitted - 1)

    def shard_table(self) -> List[Dict]:
        """Measured utilisation per shard position, fleet-aggregated.

        Every completed request occupies shard ``k`` of its replica for
        ``shard_row[k]`` cycles; the denominator is the work horizon
        (latest promised finish) times the replica count, so a
        fully-loaded homogeneous fleet reads 1.0 on its bottleneck
        shard.
        """
        horizon = self.horizon_cycle * self.num_replicas
        rows = []
        for k, service in enumerate(self.shard_row):
            busy = self.completed * service
            rows.append({
                "shard": k,
                "service_cycles": service,
                "busy_cycles": busy,
                "utilization": round(busy / horizon, 4) if horizon else 0.0,
            })
        return rows

    def replica_table(self) -> List[Dict]:
        return [
            {
                "replica": r,
                "state": self.replica_state[r],
                "served": self.replica_served[r],
                "queue_depth": self.queue_depth(r),
            }
            for r in range(self.num_replicas)
        ]

    def latency_table(self) -> Dict:
        from repro.serve import latency_percentile

        recent = list(self._latencies)
        throughput = None
        if self.cycle_ns and self.horizon_cycle and self.completed:
            throughput = self.completed / (
                self.horizon_cycle * self.cycle_ns / 1e9
            )
        return {
            "window": self.window,
            "samples": len(recent),
            "rolling_p50_cycles": (
                latency_percentile(recent, 50) if recent else None
            ),
            "rolling_p99_cycles": (
                latency_percentile(recent, 99) if recent else None
            ),
            "throughput_inf_per_s": throughput,
        }

    def counts(self) -> Dict:
        return {
            "admitted": self.admitted,
            "completed": self.completed,
            "dropped": self.dropped,
            "in_flight": sum(self.replica_in_flight),
            "drop_reasons": dict(sorted(self.drop_reasons.items())),
        }


def console_snapshot(
    handle: ServerHandle, *, window: int = 64
) -> Dict:
    """The operator tables of a session as one JSON-able dict.

    Folds the handle's recorded event stream through a fresh
    :class:`ConsoleState`; deterministic for :class:`~repro.runtime.
    VirtualClock` sessions (same script, byte-identical snapshot).
    After :meth:`~repro.runtime.ServerHandle.drain` the snapshot also
    carries the final report's headline numbers under
    ``"final_report"`` -- the live view and the offline replay, side
    by side.
    """
    cycle_ns = handle.server.arch.chip.cycle_ns
    state = ConsoleState(
        handle.shard_row, handle.num_replicas, window=window,
        cycle_ns=cycle_ns,
    )
    state.observe_all(handle.events)

    interval = state.arrival_interval_cycles()
    from repro.sim.fastmodel import steady_state_utilization
    from repro.sim.multichip import steady_state_interval

    bottleneck = steady_state_interval(
        handle.shard_row, handle.shard_edges, handle.link
    )
    model = {
        "steady_interval_cycles": bottleneck,
        "arrival_interval_cycles": interval,
        "utilization": (
            [
                round(u, 4)
                for u in steady_state_utilization(
                    handle.shard_row, handle.shard_edges, handle.link,
                    interval,
                )
            ]
            if interval is not None else None
        ),
    }

    final = None
    if handle.report is not None:
        report = handle.report
        final = {
            "batch": report.batch,
            "makespan_cycles": report.makespan_cycles,
            "p50_latency_cycles": _report_percentile(report, 50),
            "p99_latency_cycles": _report_percentile(report, 99),
        }
        if hasattr(report, "dropped_indices"):
            final["completed"] = report.completed
            final["dropped"] = report.dropped

    return {
        "schema": SNAPSHOT_SCHEMA,
        "policy": handle.policy,
        "replicas": handle.num_replicas,
        "now_cycle": state.now_cycle,
        "horizon_cycle": state.horizon_cycle,
        "counts": state.counts(),
        "shards": state.shard_table(),
        "replicas_table": state.replica_table(),
        "latency": state.latency_table(),
        "model": model,
        "final_report": final,
    }


def _report_percentile(report, pct: float) -> Optional[int]:
    if hasattr(report, "latency_percentile_cycles"):  # FleetReport
        return report.latency_percentile_cycles(pct)
    if not report.batch:
        return None
    from repro.serve import latency_percentile

    latencies = [
        f - r for f, r in zip(report.input_finishes, report.releases)
    ]
    return latency_percentile(latencies, pct)


async def drive_session(
    server,
    releases: List[int],
    *,
    seed: int = 0,
    validate: bool = True,
    faults=None,
    retry=None,
) -> ServerHandle:
    """Script ``releases`` through a virtual-clock session and drain it.

    The reference driver the headless snapshot and CI smoke share:
    advance a :class:`~repro.runtime.VirtualClock` to each release,
    submit, drain.  Returns the drained handle (its ``report`` is the
    offline-replayed, cross-checked result).
    """
    from repro.runtime import VirtualClock, serve_forever

    clock = VirtualClock()
    handle = await serve_forever(
        server, clock=clock, seed=seed, validate=validate, faults=faults,
        retry=retry,
    )
    for release in releases:
        clock.advance_to(release)
        await handle.submit()
    await handle.drain()
    return handle


def headless_watch(
    server,
    releases: List[int],
    *,
    seed: int = 0,
    validate: bool = True,
    faults=None,
    retry=None,
    window: int = 64,
) -> Dict:
    """``repro watch --snapshot``: serve the script, return the tables.

    Pure Python (no Textual): runs :func:`drive_session` on a private
    event loop and folds the session into :func:`console_snapshot`.
    """
    import asyncio

    handle = asyncio.run(drive_session(
        server, releases, seed=seed, validate=validate, faults=faults,
        retry=retry,
    ))
    return console_snapshot(handle, window=window)


# ---------------------------------------------------------------------------
# The live Textual app (optional dependency)
# ---------------------------------------------------------------------------

def run_watch_app(
    server,
    releases: List[int],
    *,
    seed: int = 0,
    validate: bool = True,
    faults=None,
    retry=None,
    window: int = 64,
    pace_s: float = 0.2,
) -> Dict:
    """Serve ``releases`` live and render the console; returns a snapshot.

    Opens a :class:`~repro.runtime.VirtualClock` session on ``server``,
    paces one submission per ``pace_s`` wall seconds (advancing the
    virtual clock to each scripted release), and re-renders the
    ``DataTable`` dashboard on every runtime event.  Requires the
    optional ``textual`` package; without it a
    :class:`~repro.errors.ConfigError` points at the headless
    ``repro watch --snapshot`` mode, which needs nothing beyond the
    standard library.
    """
    try:
        from textual.app import App
        from textual.widgets import DataTable, Footer, Header, Static
    except ImportError as exc:
        raise ConfigError(
            "the live console needs the optional 'textual' package "
            "(pip install textual); for a dependency-free view use "
            "'repro watch --snapshot'"
        ) from exc

    import asyncio

    from repro.runtime import VirtualClock, serve_forever

    outcome: Dict = {}

    class WatchApp(App):
        TITLE = "repro watch"
        BINDINGS = [("q", "quit", "Quit")]

        def compose(self):
            yield Header(show_clock=True)
            yield Static("", id="counts")
            yield DataTable(id="shards", zebra_stripes=True)
            yield DataTable(id="replicas", zebra_stripes=True)
            yield DataTable(id="latency", zebra_stripes=True)
            yield Footer()

        async def on_mount(self) -> None:
            self.query_one("#shards", DataTable).add_columns(
                "shard", "service cycles", "busy cycles", "utilization",
                "model utilization",
            )
            self.query_one("#replicas", DataTable).add_columns(
                "replica", "state", "served", "queue depth",
            )
            self.query_one("#latency", DataTable).add_columns(
                "window", "rolling p50", "rolling p99", "throughput inf/s",
            )
            self._session = asyncio.ensure_future(self._serve())

        async def _serve(self) -> None:
            clock = VirtualClock()
            handle = await serve_forever(
                server, clock=clock, seed=seed, validate=validate,
                faults=faults, retry=retry,
            )
            state = ConsoleState(
                handle.shard_row, handle.num_replicas, window=window,
                cycle_ns=handle.server.arch.chip.cycle_ns,
            )
            stream = handle.subscribe()
            state.observe_all(handle.events)
            for release in releases:
                clock.advance_to(release)
                await handle.submit()
                while not stream.empty():
                    state.observe(stream.get_nowait())
                self._render(state)
                await asyncio.sleep(pace_s)
            # Drain resolves every still-pending future (a faulted
            # session may hold retries back until the stream closes).
            await handle.drain()
            while not stream.empty():
                event = stream.get_nowait()
                if event is not None:
                    state.observe(event)
            self._render(state)
            outcome.update(console_snapshot(handle, window=window))
            self.exit()

        def _render(self, state: ConsoleState) -> None:
            counts = state.counts()
            self.query_one("#counts", Static).update(
                f"cycle {state.now_cycle} · admitted {counts['admitted']} "
                f"· completed {counts['completed']} "
                f"· dropped {counts['dropped']} "
                f"· in flight {counts['in_flight']}"
            )
            from repro.sim.fastmodel import steady_state_utilization

            interval = state.arrival_interval_cycles()
            model = (
                steady_state_utilization(
                    state.shard_row, server._service_profile()[1],
                    server.arch.interchip, interval,
                )
                if interval is not None
                else [None] * len(state.shard_row)
            )
            shards = self.query_one("#shards", DataTable)
            shards.clear()
            for row, m in zip(state.shard_table(), model):
                shards.add_row(
                    str(row["shard"]), str(row["service_cycles"]),
                    str(row["busy_cycles"]), f"{row['utilization']:.4f}",
                    "-" if m is None else f"{m:.4f}",
                )
            replicas = self.query_one("#replicas", DataTable)
            replicas.clear()
            for row in state.replica_table():
                replicas.add_row(
                    str(row["replica"]), row["state"], str(row["served"]),
                    str(row["queue_depth"]),
                )
            latency = self.query_one("#latency", DataTable)
            latency.clear()
            lat = state.latency_table()
            latency.add_row(
                f"{lat['samples']}/{lat['window']}",
                str(lat["rolling_p50_cycles"]),
                str(lat["rolling_p99_cycles"]),
                (
                    f"{lat['throughput_inf_per_s']:.1f}"
                    if lat["throughput_inf_per_s"] else "-"
                ),
            )

    WatchApp().run()
    if not outcome:
        raise ConfigError("the watch session ended before draining")
    return outcome


def snapshot_json(snapshot: Dict) -> str:
    """Canonical serialisation of a snapshot (stable key order)."""
    return json.dumps(snapshot, indent=2, sort_keys=True)
