"""Chip-level simulation: cores + NoC + global memory + barriers.

Cores execute independently until they block (``RECV`` with no matching
message, or ``BARRIER``); the scheduler then resolves blocks and resumes.
Messages carry real data, so simulation is functionally exact and outputs
can be checked against the golden model.  ``SEND`` is buffered (never
blocks), which makes the dataflow deadlock-free for any DAG schedule; a
genuine schedule mismatch (lost or misordered message) is detected and
reported as a :class:`SimulationError` with per-core state.

Scheduling is event-driven: runnable cores sit in a ready queue and are
executed in core-id order, a ``RECV`` completes when a message is
*delivered into its channel* (no re-scanning of blocked cores), and
barrier release is a counter check.  Core execution itself is handled by
the hot-block engine (:mod:`repro.sim.blockengine`) by default; set
``REPRO_SIM_ENGINE=interp`` (or pass ``engine="interp"``) to select the
legacy per-instruction interpreter.  Both engines produce bit-identical
:class:`SimulationReport` fields and functional outputs -- the
engine-equivalence tests enforce this.
"""

import os
from collections import deque
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.config import ArchConfig
from repro.errors import ConfigError, SimulationError
from repro.isa import ISARegistry, Program, default_registry
from repro.sim.core import BLOCKED_BARRIER, BLOCKED_RECV, HALTED, RUNNING, Core
from repro.sim.energy import EnergyAccountant
from repro.sim.memory import MemorySystem
from repro.sim.noc import NoC
from repro.sim.report import SimulationReport
from repro.utils import ceil_div

#: Environment variable selecting the execution engine.
ENGINE_ENV = "REPRO_SIM_ENGINE"

_ENGINES = ("block", "interp")


def default_engine() -> str:
    """Resolve the engine choice from ``REPRO_SIM_ENGINE`` (default block).

    An unrecognized value raises :class:`ConfigError` -- the same
    validation the ``engine=`` keyword gets -- so a typo never silently
    runs the wrong engine.
    """
    engine = os.environ.get(ENGINE_ENV, "").strip().lower()
    if not engine:
        return "block"
    if engine not in _ENGINES:
        raise ConfigError(
            f"unknown simulation engine {engine!r} in ${ENGINE_ENV}; "
            f"expected one of {_ENGINES}"
        )
    return engine


class ChipSimulator:
    """Cycle-level simulator for one compiled workload."""

    def __init__(
        self,
        arch: ArchConfig,
        programs: Dict[int, Program],
        registry: Optional[ISARegistry] = None,
        global_image: Optional[np.ndarray] = None,
        extension_handlers: Optional[Dict[str, Callable]] = None,
        engine: Optional[str] = None,
    ):
        arch.validate()
        self.arch = arch
        self.registry = registry or default_registry()
        self.extension_handlers = extension_handlers or {}
        if engine is None:
            engine = default_engine()
        if engine not in _ENGINES:
            raise ConfigError(
                f"unknown simulation engine {engine!r}; expected one of "
                f"{_ENGINES}"
            )
        self.engine = engine
        global_size = len(global_image) if global_image is not None else (
            arch.chip.global_memory.size_bytes
        )
        self.memory = MemorySystem(arch, global_size)
        if global_image is not None:
            self.memory.load_global_image(global_image)
        self.noc = NoC(arch)
        self.acct = EnergyAccountant(arch.energy)
        self.channels: Dict[Tuple[int, int], deque] = {}
        #: (src, dst) -> core blocked on RECV from that channel.
        self._recv_waiters: Dict[Tuple[int, int], Core] = {}
        #: Cores unblocked during the current scheduler round.
        self._ready: List[Core] = []
        self.cores = [
            Core(cid, self, programs.get(cid, _empty_program(self.registry)))
            for cid in range(arch.chip.num_cores)
        ]
        if engine == "block":
            from repro.sim.blockengine import block_program_for

            for core in self.cores:
                core._blockprog = block_program_for(
                    core.program, self.registry
                )

    def reset_run(self, programs: Dict[int, Program]) -> None:
        """Rearm for another run, keeping memory + macro-group state.

        Resident-weights sessions call this between the load segment and
        each warm input: global/local memory contents and every core's
        loaded macro groups persist, while all timing state (core
        clocks, unit scoreboards), the NoC, message channels and the
        energy ledger start fresh -- each run is accounted exactly like
        an isolated run of ``programs`` against the persisted state.
        """
        self.noc = NoC(self.arch)
        self.acct = EnergyAccountant(self.arch.energy)
        self.channels = {}
        self._recv_waiters = {}
        self._ready = []
        for core in self.cores:
            core.reset_for_program(
                programs.get(core.core_id, _empty_program(self.registry))
            )
        if self.engine == "block":
            from repro.sim.blockengine import block_program_for

            for core in self.cores:
                core._blockprog = block_program_for(
                    core.program, self.registry
                )

    @classmethod
    def from_compiled(cls, compiled, **kwargs) -> "ChipSimulator":
        """Build a simulator for a :class:`CompiledModel`."""
        return cls(
            compiled.arch,
            compiled.programs,
            registry=compiled.registry,
            global_image=compiled.global_image,
            **kwargs,
        )

    # -- messaging ------------------------------------------------------------
    def deliver(self, src: int, dst: int, arrival: int, data: np.ndarray) -> None:
        if not 0 <= dst < len(self.cores):
            raise SimulationError(f"SEND to nonexistent core {dst}")
        self.channels.setdefault((src, dst), deque()).append((arrival, data))
        # Event-driven RECV completion: delivery into the channel a core is
        # blocked on resolves the receive immediately (the receiver runs in
        # the next scheduler round, preserving core-id execution order).
        waiter = self._recv_waiters.pop((src, dst), None)
        if waiter is not None:
            self._try_complete_recv(waiter)
            self._ready.append(waiter)

    def _try_complete_recv(self, core: Core) -> bool:
        addr, src, nbytes = core._pending_recv
        queue = self.channels.get((src, core.core_id))
        if not queue:
            return False
        arrival, data = queue[0]
        if len(data) != nbytes:
            raise SimulationError(
                f"core {core.core_id}: RECV expects {nbytes} B from core "
                f"{src} but the next message has {len(data)} B"
            )
        queue.popleft()
        local_bw = self.arch.chip.core.local_memory.bandwidth_bytes_per_cycle
        copy_cycles = ceil_div(max(1, nbytes), local_bw)
        core.clock = max(core.clock, arrival)
        core._issue("xfer", copy_cycles)
        self.memory.write(core.core_id, addr, data)
        self.acct.local_copy(nbytes)
        core._pending_recv = None
        core.pc += 1
        core.state = RUNNING
        return True

    # -- main loop ----------------------------------------------------------------
    def run(self, max_rounds: int = 1_000_000) -> SimulationReport:
        """Run to completion and return the performance report.

        Event-driven: each round executes the ready cores in core-id
        order until they block; cores unblocked during the round (by a
        message delivery completing their ``RECV``) form the next round.
        When the ready queue drains, either every active core sits at the
        barrier (release them) or nothing can make progress (deadlock).
        """
        self._ready = []
        self._recv_waiters.clear()
        current: List[Core] = [c for c in self.cores if c.state == RUNNING]
        for _ in range(max_rounds):
            if not current:
                active = [c for c in self.cores if c.state != HALTED]
                if not active:
                    return self._finish()
                waiting = [c for c in active if c.state == BLOCKED_BARRIER]
                if len(waiting) != len(active):
                    self._report_deadlock()
                release = max(c.clock for c in waiting) + 1
                for core in waiting:
                    core.clock = release
                    core.state = RUNNING
                current = waiting
                continue
            for core in current:
                state = core.run()
                if state == BLOCKED_RECV:
                    if self._try_complete_recv(core):
                        self._ready.append(core)
                    else:
                        src = core._pending_recv[1]
                        self._recv_waiters[(src, core.core_id)] = core
            current = sorted(self._ready, key=lambda c: c.core_id)
            self._ready = []
        raise SimulationError("simulation exceeded the round limit")

    def _report_deadlock(self) -> None:
        lines = []
        for core in self.cores:
            if core.state == HALTED:
                continue
            state = {BLOCKED_RECV: "RECV", BLOCKED_BARRIER: "BARRIER"}.get(
                core.state, "RUN"
            )
            pending = core._pending_recv
            lines.append(
                f"  core {core.core_id}: {state} pc={core.pc} "
                f"clock={core.clock} pending={pending}"
            )
        raise SimulationError("simulation deadlock:\n" + "\n".join(lines))

    def _finish(self) -> SimulationReport:
        cycles = max((c.clock for c in self.cores), default=0)
        self.acct.static(cycles, self.arch.chip.clock_mhz)
        busy: Dict[str, int] = {}
        for core in self.cores:
            for unit, value in core.busy.items():
                busy[unit] = busy.get(unit, 0) + value
        denominator = max(1, cycles) * len(self.cores)
        utilization = {u: v / denominator for u, v in busy.items()}
        instructions = sum(c.instructions_retired for c in self.cores)
        return SimulationReport(
            arch=self.arch,
            cycles=cycles,
            energy_breakdown_pj=self.acct.breakdown(),
            macs=self.acct.macs,
            instructions=instructions,
            utilization=utilization,
            noc_bytes=self.noc.total_bytes,
            noc_byte_hops=self.noc.total_byte_hops,
        )


def _empty_program(registry: ISARegistry) -> Program:
    program = Program(registry)
    program.emit("HALT")
    return program.finalize()
