"""Chip-level simulation: cores + NoC + global memory + barriers.

Cores execute independently until they block (``RECV`` with no matching
message, or ``BARRIER``); the scheduler then resolves blocks and resumes.
Messages carry real data, so simulation is functionally exact and outputs
can be checked against the golden model.  ``SEND`` is buffered (never
blocks), which makes the dataflow deadlock-free for any DAG schedule; a
genuine schedule mismatch (lost or misordered message) is detected and
reported as a :class:`SimulationError` with per-core state.
"""

from collections import deque
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from repro.config import ArchConfig
from repro.errors import SimulationError
from repro.isa import ISARegistry, Program, default_registry
from repro.sim.core import BLOCKED_BARRIER, BLOCKED_RECV, HALTED, RUNNING, Core
from repro.sim.energy import EnergyAccountant
from repro.sim.memory import MemorySystem
from repro.sim.noc import NoC
from repro.sim.report import SimulationReport
from repro.utils import ceil_div


class ChipSimulator:
    """Cycle-level simulator for one compiled workload."""

    def __init__(
        self,
        arch: ArchConfig,
        programs: Dict[int, Program],
        registry: Optional[ISARegistry] = None,
        global_image: Optional[np.ndarray] = None,
        extension_handlers: Optional[Dict[str, Callable]] = None,
    ):
        arch.validate()
        self.arch = arch
        self.registry = registry or default_registry()
        self.extension_handlers = extension_handlers or {}
        global_size = len(global_image) if global_image is not None else (
            arch.chip.global_memory.size_bytes
        )
        self.memory = MemorySystem(arch, global_size)
        if global_image is not None:
            self.memory.load_global_image(global_image)
        self.noc = NoC(arch)
        self.acct = EnergyAccountant(arch.energy)
        self.channels: Dict[Tuple[int, int], deque] = {}
        self.cores = [
            Core(cid, self, programs.get(cid, _empty_program(self.registry)))
            for cid in range(arch.chip.num_cores)
        ]

    @classmethod
    def from_compiled(cls, compiled, **kwargs) -> "ChipSimulator":
        """Build a simulator for a :class:`CompiledModel`."""
        return cls(
            compiled.arch,
            compiled.programs,
            registry=compiled.registry,
            global_image=compiled.global_image,
            **kwargs,
        )

    # -- messaging ------------------------------------------------------------
    def deliver(self, src: int, dst: int, arrival: int, data: np.ndarray) -> None:
        if not 0 <= dst < len(self.cores):
            raise SimulationError(f"SEND to nonexistent core {dst}")
        self.channels.setdefault((src, dst), deque()).append((arrival, data))

    def _try_complete_recv(self, core: Core) -> bool:
        addr, src, nbytes = core._pending_recv
        queue = self.channels.get((src, core.core_id))
        if not queue:
            return False
        arrival, data = queue[0]
        if len(data) != nbytes:
            raise SimulationError(
                f"core {core.core_id}: RECV expects {nbytes} B from core "
                f"{src} but the next message has {len(data)} B"
            )
        queue.popleft()
        local_bw = self.arch.chip.core.local_memory.bandwidth_bytes_per_cycle
        copy_cycles = ceil_div(max(1, nbytes), local_bw)
        core.clock = max(core.clock, arrival)
        core._issue("xfer", copy_cycles)
        self.memory.write(core.core_id, addr, data)
        self.acct.local_copy(nbytes)
        core._pending_recv = None
        core.pc += 1
        core.state = RUNNING
        return True

    # -- main loop ----------------------------------------------------------------
    def run(self, max_rounds: int = 1_000_000) -> SimulationReport:
        """Run to completion and return the performance report."""
        for _ in range(max_rounds):
            progress = False
            for core in self.cores:
                if core.state == RUNNING:
                    core.run()
                    progress = True
            for core in self.cores:
                if core.state == BLOCKED_RECV and self._try_complete_recv(core):
                    progress = True
            waiting = [c for c in self.cores if c.state == BLOCKED_BARRIER]
            active = [c for c in self.cores if c.state != HALTED]
            if active and len(waiting) == len(active):
                release = max(c.clock for c in waiting) + 1
                for core in waiting:
                    core.clock = release
                    core.state = RUNNING
                progress = True
            if not active:
                return self._finish()
            if not progress:
                self._report_deadlock()
        raise SimulationError("simulation exceeded the round limit")

    def _report_deadlock(self) -> None:
        lines = []
        for core in self.cores:
            if core.state == HALTED:
                continue
            state = {BLOCKED_RECV: "RECV", BLOCKED_BARRIER: "BARRIER"}.get(
                core.state, "RUN"
            )
            pending = core._pending_recv
            lines.append(
                f"  core {core.core_id}: {state} pc={core.pc} "
                f"clock={core.clock} pending={pending}"
            )
        raise SimulationError("simulation deadlock:\n" + "\n".join(lines))

    def _finish(self) -> SimulationReport:
        cycles = max((c.clock for c in self.cores), default=0)
        self.acct.static(cycles, self.arch.chip.clock_mhz)
        busy: Dict[str, int] = {}
        for core in self.cores:
            for unit, value in core.busy.items():
                busy[unit] = busy.get(unit, 0) + value
        denominator = max(1, cycles) * len(self.cores)
        utilization = {u: v / denominator for u, v in busy.items()}
        instructions = sum(c.instructions_retired for c in self.cores)
        return SimulationReport(
            arch=self.arch,
            cycles=cycles,
            energy_breakdown_pj=self.acct.breakdown(),
            macs=self.acct.macs,
            instructions=instructions,
            utilization=utilization,
            noc_bytes=self.noc.total_bytes,
            noc_byte_hops=self.noc.total_byte_hops,
        )


def _empty_program(registry: ISARegistry) -> Program:
    program = Program(registry)
    program.emit("HALT")
    return program.finalize()
