"""Simulation reports: latency, energy breakdown, throughput, utilization.

This is the "detailed report covering energy consumption, latency, and
hardware utilization" the paper's workflow produces.
"""

from dataclasses import dataclass, field
from typing import Dict

from repro.config import ArchConfig


def group_energy_mj(energy_breakdown_pj: Dict[str, float]) -> Dict[str, float]:
    """The paper's Fig. 6 energy grouping, shared by every report type.

    Local memory / compute units / NoC, plus global memory, the
    inter-chip link (zero for single-chip runs), and everything else
    (instruction fetch, static).  The buckets partition the breakdown:
    their sum equals the total energy.
    """
    e = {k: v / 1e9 for k, v in energy_breakdown_pj.items()}
    return {
        "local_mem": e.get("local_mem", 0.0),
        "compute": (
            e.get("cim_compute", 0.0) + e.get("cim_write", 0.0)
            + e.get("vector", 0.0) + e.get("scalar", 0.0)
        ),
        "noc": e.get("noc", 0.0),
        "global_mem": e.get("global_mem", 0.0),
        "interchip": e.get("interchip", 0.0),
        "other": e.get("instruction", 0.0) + e.get("static", 0.0),
    }


@dataclass
class SimulationReport:
    """Performance metrics of one simulated workload execution."""

    arch: ArchConfig
    cycles: int
    energy_breakdown_pj: Dict[str, float]
    macs: int
    instructions: int
    utilization: Dict[str, float] = field(default_factory=dict)
    noc_bytes: int = 0
    noc_byte_hops: int = 0

    # -- derived metrics ----------------------------------------------------
    @property
    def time_ms(self) -> float:
        return self.cycles * self.arch.chip.cycle_ns / 1e6

    @property
    def total_energy_pj(self) -> float:
        return sum(self.energy_breakdown_pj.values())

    @property
    def total_energy_mj(self) -> float:
        return self.total_energy_pj / 1e9

    @property
    def tops(self) -> float:
        """Achieved INT8 throughput in tera-operations/second (2 ops/MAC)."""
        seconds = self.cycles * self.arch.chip.cycle_ns / 1e9
        if seconds <= 0:
            return 0.0
        return 2.0 * self.macs / seconds / 1e12

    @property
    def energy_mj(self) -> Dict[str, float]:
        return {k: v / 1e9 for k, v in self.energy_breakdown_pj.items()}

    def grouped_energy_mj(self) -> Dict[str, float]:
        """Energy grouped as in the paper's Fig. 6: local memory / compute
        units / NoC (global memory, instruction and static reported too)."""
        return group_energy_mj(self.energy_breakdown_pj)

    def to_dict(self) -> Dict:
        """JSON-safe form (used by ``python -m repro run --json``).

        The architecture is summarised by its content fingerprint rather
        than inlined; use :func:`repro.config.save_arch` to persist it.
        """
        from repro.config import arch_fingerprint

        return {
            "arch_fingerprint": arch_fingerprint(self.arch),
            "cycles": int(self.cycles),
            "time_ms": self.time_ms,
            "total_energy_mj": self.total_energy_mj,
            "tops": self.tops,
            "macs": int(self.macs),
            "instructions": int(self.instructions),
            "noc_bytes": int(self.noc_bytes),
            "noc_byte_hops": int(self.noc_byte_hops),
            "utilization": {k: float(v) for k, v in self.utilization.items()},
            "energy_breakdown_pj": {
                k: float(v) for k, v in self.energy_breakdown_pj.items()
            },
            "energy_groups_mj": self.grouped_energy_mj(),
        }

    def __str__(self) -> str:
        lines = [
            f"cycles            : {self.cycles:,}",
            f"latency           : {self.time_ms:.3f} ms",
            f"energy            : {self.total_energy_mj:.4f} mJ",
            f"throughput        : {self.tops:.3f} TOPS",
            f"MACs              : {self.macs:,}",
            f"instructions      : {self.instructions:,}",
            f"NoC traffic       : {self.noc_bytes / 1024:.1f} KiB "
            f"({self.noc_byte_hops / 1024:.1f} KiB-hops)",
            "energy breakdown  :",
        ]
        for key, value in sorted(self.grouped_energy_mj().items()):
            lines.append(f"  {key:12s}: {value:.4f} mJ")
        lines.append("utilization       :")
        for unit, value in sorted(self.utilization.items()):
            lines.append(f"  {unit:12s}: {100 * value:.2f} %")
        return "\n".join(lines)
