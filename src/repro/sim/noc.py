"""Mesh Network-on-Chip model with XY routing and link contention.

Messages are modelled at message granularity (Noxim-style costs, standing
in for the paper's flit-level Noxim runs): a transfer serialises onto each
directed link of its XY route for ``ceil(bytes / flit)`` cycles, links
remember when they free up, and later messages queue behind earlier ones.  Global-memory traffic is
routed to a memory port at mesh node (0, 0).

Link reservation is exposed in two layers:

- :meth:`NoC.reserve` is the *pure* reservation chain -- given the
  current per-link free times it returns where one message's head
  passes each hop and the new free times, without mutating anything.
  :meth:`NoC.earliest_start` answers "earliest start >= t at which this
  route accepts a message without queueing" in closed form from the
  same arithmetic.
- :meth:`NoC.transfer` commits one reservation (the interpreter path),
  and :meth:`NoC.replay_affine` commits a whole affine *window* of
  reservations iteration-major (the batched-loop path): a short pure
  probe establishes the steady per-iteration advance of every touched
  link, the remaining iterations are advanced arithmetically, and any
  window that cannot be *proven* steady (a cross-core contention
  transient still draining) is refused without side effects so the
  caller falls back to stepped execution.
"""

from typing import Dict, List, Optional, Tuple

from repro.config import ArchConfig
from repro.utils import ceil_div

#: Sentinel node id for the global-memory port (mesh corner 0,0).
GLOBAL_PORT = -1


class NoC:
    """XY-routed mesh with per-link reservation."""

    def __init__(self, arch: ArchConfig):
        self.arch = arch
        self.flit_bytes = arch.chip.noc.flit_bytes
        self.hop_latency = arch.chip.noc.hop_latency
        self.router_latency = arch.chip.noc.router_latency
        self.rows, self.cols = arch.chip.mesh_dims
        self._link_free: Dict[Tuple[int, int, int, int], int] = {}
        self.total_bytes = 0
        self.total_byte_hops = 0
        self.busy_cycles = 0
        #: When a list, every committed transfer appends
        #: ``(src, dst, nbytes, start)``; the block engine turns this on
        #: while warming up a candidate loop to learn the loop's affine
        #: transaction pattern.
        self.trace: Optional[List[Tuple[int, int, int, int]]] = None
        #: When a dict, every committed transfer appends one
        #: ``(head_cycle, free_until, nbytes, src, dst)`` record per link
        #: of its route (plus a route-less record under the ``()`` key
        #: for port-local messages).  Capturing a timeline disables
        #: batched NoC replay so the event list stays complete.
        self.timeline: Optional[Dict[Tuple, List[Tuple]]] = None
        self._pos_cache: Dict[int, Tuple[int, int]] = {GLOBAL_PORT: (0, 0)}
        self._route_cache: Dict[Tuple[int, int], List] = {}

    def _position(self, node: int) -> Tuple[int, int]:
        pos = self._pos_cache.get(node)
        if pos is None:
            pos = self.arch.chip.core_position(node)
            self._pos_cache[node] = pos
        return pos

    def route(self, src: int, dst: int) -> List[Tuple[int, int, int, int]]:
        """Directed links of the XY route (X first, then Y); memoised."""
        cached = self._route_cache.get((src, dst))
        if cached is not None:
            return cached
        r0, c0 = self._position(src)
        r1, c1 = self._position(dst)
        links = []
        r, c = r0, c0
        while c != c1:
            step = 1 if c1 > c else -1
            links.append((r, c, r, c + step))
            c += step
        while r != r1:
            step = 1 if r1 > r else -1
            links.append((r, c, r + step, c))
            r += step
        self._route_cache[(src, dst)] = links
        return links

    def hops(self, src: int, dst: int) -> int:
        r0, c0 = self._position(src)
        r1, c1 = self._position(dst)
        return abs(r0 - r1) + abs(c0 - c1)

    def serialization(self, nbytes: int) -> int:
        """Cycles one message holds each link of its route."""
        return ceil_div(max(1, nbytes), self.flit_bytes)

    # -- pure reservation arithmetic -----------------------------------------

    def reserve(self, free: List[int], start: int, serialization: int):
        """Chain one message over links with the given free times.  Pure.

        Returns ``(head_exit, new_free, dominated)``: the cycle the head
        leaves the last link (the arrival for a non-empty route), the
        per-link free times after this reservation, and whether *every*
        hop queued behind a busy link (``free >= incoming head``) -- the
        regime in which the route's timing is governed by its own prior
        reservations rather than by the message's start time.
        """
        time = start + self.router_latency
        h = self.hop_latency
        dominated = True
        new_free = []
        for f in free:
            if f < time:
                dominated = False
            time = (f if f > time else time) + h
            new_free.append(time + serialization - 1)
        return time, new_free, dominated

    def earliest_start(self, src: int, dst: int, t: int) -> int:
        """Earliest start ``>= t`` at which this route accepts a message
        head without queueing on any link.  Pure closed form: the head
        reaches link ``j`` at ``start + router_latency + j * hop``, so it
        queues nowhere iff ``start >= free_j - router_latency - j * hop``
        for every link."""
        s = t
        R = self.router_latency
        h = self.hop_latency
        for j, link in enumerate(self.route(src, dst)):
            need = self._link_free.get(link, 0) - R - j * h
            if need > s:
                s = need
        return s

    # -- committing paths ----------------------------------------------------

    def transfer(self, src: int, dst: int, nbytes: int, start: int) -> int:
        """Schedule a message; returns its arrival cycle at ``dst``.

        The message head leaves at ``start`` after the router pipeline;
        each link is held for the serialisation time of the whole message
        (wormhole at message granularity).
        """
        serialization = self.serialization(nbytes)
        route = self.route(src, dst)
        free = [self._link_free.get(link, 0) for link in route]
        head_exit, new_free, _ = self.reserve(free, start, serialization)
        for link, f in zip(route, new_free):
            self._link_free[link] = f
        arrival = head_exit + serialization - 1
        hops = self.hops(src, dst)
        self.total_bytes += nbytes
        self.total_byte_hops += nbytes * hops
        self.busy_cycles += serialization * max(1, hops)
        if self.trace is not None:
            self.trace.append((src, dst, nbytes, start))
        if self.timeline is not None:
            if route:
                time = start + self.router_latency
                for link, f_old in zip(route, free):
                    time = max(time, f_old) + self.hop_latency
                    self.timeline.setdefault(link, []).append(
                        (time, time + serialization - 1, nbytes, src, dst)
                    )
            else:
                head = start + self.router_latency
                self.timeline.setdefault((), []).append(
                    (head, head + serialization - 1, nbytes, src, dst)
                )
        return max(arrival, start)

    def replay_affine(self, txns, step: int, count: int,
                      probe_limit: int = 8) -> bool:
        """Commit an affine window of transfers iteration-major.

        ``txns`` is the ordered transaction list of one loop iteration,
        ``[(src, dst, nbytes, start), ...]`` with the starts of the *last
        executed* iteration; the replay commits ``count`` further
        iterations whose starts advance by ``step`` per iteration.  The
        result is bit-identical to issuing every ``transfer`` in stepped
        order.  Returns ``False`` -- mutating nothing -- when steadiness
        cannot be proven within ``probe_limit`` probed iterations (e.g. a
        contention window against another core's reservations is still
        draining), or when two distinct routes of the window share a
        link; callers fall back to stepped execution.

        Soundness of the arithmetic advance (the link state is a max-plus
        system, so two equal deltas are *not* blindly extrapolated):

        - if one probed iteration advances every touched link's free time
          by exactly ``step``, the per-iteration reservation map ``F' =
          Psi(F, s)`` (monotone, shift-commuting) satisfies ``F_{i+1} =
          F_i + step`` forever by induction;
        - if one probed iteration is *dominated* (every hop of every
          message queued behind the link's own prior reservation) and
          advances every link uniformly by ``D >= step``, the system is
          autonomous: frees grow by exactly ``D`` per iteration while
          head arrivals grow by ``step``, so every margin is
          non-decreasing and the regime persists forever;
        - otherwise keep probing; a window fully probed within the limit
          is exact by construction, anything else is refused.
        """
        if self.timeline is not None or count <= 0 or not txns:
            return count <= 0
        # Group the iteration's messages by route; distinct routes must
        # not share a directed link, otherwise their interleaved
        # reservations couple and the per-route probe is unsound.
        groups: Dict[Tuple, List[Tuple[int, int, int]]] = {}
        seen_links: Dict[Tuple[int, int, int, int], Tuple] = {}
        for src, dst, nbytes, start in txns:
            route = tuple(self.route(src, dst))
            if route not in groups:
                for link in route:
                    owner = seen_links.get(link)
                    if owner is not None and owner != route:
                        return False
                    seen_links[link] = route
                groups[route] = []
            groups[route].append((self.serialization(nbytes), start))
        results = []
        for route, items in groups.items():
            if not route:
                continue  # port-local message: no links to reserve
            free = [self._link_free.get(link, 0) for link in route]
            it = 0
            while True:
                it += 1
                prev = free
                dominated_all = True
                for serialization, start0 in items:
                    _, free, dom = self.reserve(
                        free, start0 + it * step, serialization
                    )
                    dominated_all = dominated_all and dom
                if it == count:
                    break
                d0 = free[0] - prev[0]
                uniform = all(
                    a - b == d0 for a, b in zip(free, prev)
                )
                if uniform and (
                    d0 == step or (dominated_all and d0 >= step)
                ):
                    adv = (count - it) * d0
                    free = [f + adv for f in free]
                    break
                if it >= probe_limit:
                    return False
            results.append((route, free))
        # Commit: link state, then the closed-form counters.
        for route, free in results:
            for link, f in zip(route, free):
                self._link_free[link] = f
        for src, dst, nbytes, _ in txns:
            hops = self.hops(src, dst)
            self.total_bytes += count * nbytes
            self.total_byte_hops += count * nbytes * hops
            self.busy_cycles += count * self.serialization(nbytes) * max(
                1, hops
            )
        return True

    def energy_pj(self, nbytes: int, src: int, dst: int) -> float:
        """Link + router traversal energy of one message.

        Charged per *flit*: a wider link toggles its full width for every
        flit, so short messages on wide links pay padding energy -- the
        effect behind the paper's observation that doubling flit size can
        cost energy without commensurate benefit (Fig. 6b).
        """
        hops = max(1, self.hops(src, dst))
        flits = ceil_div(max(1, nbytes), self.flit_bytes)
        return (
            flits * self.flit_bytes * hops
            * self.arch.energy.noc_pj_per_byte_per_hop
        )
