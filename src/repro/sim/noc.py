"""Mesh Network-on-Chip model with XY routing and link contention.

Messages are modelled at message granularity (Noxim-style costs, standing
in for the paper's flit-level Noxim runs): a transfer serialises onto each
directed link of its XY route for ``ceil(bytes / flit)`` cycles, links
remember when they free up, and later messages queue behind earlier ones.  Global-memory traffic is
routed to a memory port at mesh node (0, 0).
"""

from typing import Dict, List, Tuple

from repro.config import ArchConfig
from repro.utils import ceil_div

#: Sentinel node id for the global-memory port (mesh corner 0,0).
GLOBAL_PORT = -1


class NoC:
    """XY-routed mesh with per-link reservation."""

    def __init__(self, arch: ArchConfig):
        self.arch = arch
        self.flit_bytes = arch.chip.noc.flit_bytes
        self.hop_latency = arch.chip.noc.hop_latency
        self.router_latency = arch.chip.noc.router_latency
        self.rows, self.cols = arch.chip.mesh_dims
        self._link_free: Dict[Tuple[int, int, int, int], int] = {}
        self.total_bytes = 0
        self.total_byte_hops = 0
        self.busy_cycles = 0
        self._pos_cache: Dict[int, Tuple[int, int]] = {GLOBAL_PORT: (0, 0)}
        self._route_cache: Dict[Tuple[int, int], List] = {}

    def _position(self, node: int) -> Tuple[int, int]:
        pos = self._pos_cache.get(node)
        if pos is None:
            pos = self.arch.chip.core_position(node)
            self._pos_cache[node] = pos
        return pos

    def route(self, src: int, dst: int) -> List[Tuple[int, int, int, int]]:
        """Directed links of the XY route (X first, then Y); memoised."""
        cached = self._route_cache.get((src, dst))
        if cached is not None:
            return cached
        r0, c0 = self._position(src)
        r1, c1 = self._position(dst)
        links = []
        r, c = r0, c0
        while c != c1:
            step = 1 if c1 > c else -1
            links.append((r, c, r, c + step))
            c += step
        while r != r1:
            step = 1 if r1 > r else -1
            links.append((r, c, r + step, c))
            r += step
        self._route_cache[(src, dst)] = links
        return links

    def hops(self, src: int, dst: int) -> int:
        r0, c0 = self._position(src)
        r1, c1 = self._position(dst)
        return abs(r0 - r1) + abs(c0 - c1)

    def transfer(self, src: int, dst: int, nbytes: int, start: int) -> int:
        """Schedule a message; returns its arrival cycle at ``dst``.

        The message head leaves at ``start`` after the router pipeline;
        each link is held for the serialisation time of the whole message
        (wormhole at message granularity).
        """
        serialization = ceil_div(max(1, nbytes), self.flit_bytes)
        time = start + self.router_latency
        route = self.route(src, dst)
        for link in route:
            free_at = self._link_free.get(link, 0)
            time = max(time, free_at) + self.hop_latency
            self._link_free[link] = time + serialization - 1
        arrival = time + serialization - 1 if route else (
            start + self.router_latency + serialization - 1
        )
        hops = self.hops(src, dst)
        self.total_bytes += nbytes
        self.total_byte_hops += nbytes * hops
        self.busy_cycles += serialization * max(1, hops)
        return max(arrival, start)

    def energy_pj(self, nbytes: int, src: int, dst: int) -> float:
        """Link + router traversal energy of one message.

        Charged per *flit*: a wider link toggles its full width for every
        flit, so short messages on wide links pay padding energy -- the
        effect behind the paper's observation that doubling flit size can
        cost energy without commensurate benefit (Fig. 6b).
        """
        hops = max(1, self.hops(src, dst))
        flits = ceil_div(max(1, nbytes), self.flit_bytes)
        return (
            flits * self.flit_bytes * hops
            * self.arch.energy.noc_pj_per_byte_per_hop
        )
