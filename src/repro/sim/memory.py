"""The simulated memory system: core-local scratchpads + global memory.

Addresses follow the unified address space of the ISA: ``[0, local_size)``
is the issuing core's local memory; ``[GLOBAL_BASE, ...)`` is the shared
global memory.  All data is stored as int8 numpy arrays; multi-byte views
(int32 accumulators) are taken on demand.
"""

from typing import Tuple

import numpy as np

from repro.config import ArchConfig
from repro.config.arch import GLOBAL_BASE
from repro.errors import SimulationError


class MemorySystem:
    """Backing storage for every core's scratchpad and the global memory."""

    def __init__(self, arch: ArchConfig, global_size: int):
        self.arch = arch
        self.local_size = arch.chip.core.local_memory.size_bytes
        self.locals = [
            np.zeros(self.local_size, dtype=np.int8)
            for _ in range(arch.chip.num_cores)
        ]
        # Allow the image to exceed the configured global capacity: the
        # surplus models the off-chip backing store behind the same port.
        self.global_size = global_size
        self.global_mem = np.zeros(max(1, global_size), dtype=np.int8)

    def _resolve(self, core_id: int, addr: int, nbytes: int) -> Tuple[np.ndarray, int]:
        if addr >= GLOBAL_BASE:
            offset = addr - GLOBAL_BASE
            if offset + nbytes > len(self.global_mem):
                raise SimulationError(
                    f"global access [{offset}, {offset + nbytes}) beyond "
                    f"image of {len(self.global_mem)} bytes"
                )
            return self.global_mem, offset
        if addr < 0 or addr + nbytes > self.local_size:
            raise SimulationError(
                f"core {core_id}: local access [{addr}, {addr + nbytes}) "
                f"outside scratchpad of {self.local_size} bytes"
            )
        return self.locals[core_id], addr

    def is_global(self, addr: int) -> bool:
        return addr >= GLOBAL_BASE

    def read(self, core_id: int, addr: int, nbytes: int) -> np.ndarray:
        """Read ``nbytes`` as int8 (copy)."""
        backing, offset = self._resolve(core_id, addr, nbytes)
        return backing[offset:offset + nbytes].copy()

    def write(self, core_id: int, addr: int, data: np.ndarray) -> None:
        """Write int8 bytes."""
        data = np.ascontiguousarray(data, dtype=np.int8).reshape(-1)
        backing, offset = self._resolve(core_id, addr, len(data))
        backing[offset:offset + len(data)] = data

    def read_i32(self, core_id: int, addr: int, count: int) -> np.ndarray:
        raw = self.read(core_id, addr, 4 * count)
        return raw.view(np.int32).copy()

    def write_i32(self, core_id: int, addr: int, data: np.ndarray) -> None:
        data = np.ascontiguousarray(data, dtype=np.int32).reshape(-1)
        self.write(core_id, addr, data.view(np.int8))

    def read_word(self, core_id: int, addr: int) -> int:
        return int(self.read_i32(core_id, addr, 1)[0])

    def write_word(self, core_id: int, addr: int, value: int) -> None:
        self.write_i32(
            core_id, addr, np.array([value], dtype=np.int64).astype(np.int32)
        )

    def load_global_image(self, image: np.ndarray) -> None:
        """Install the compiler's initial global-memory contents."""
        data = image.view(np.int8)
        if len(data) > len(self.global_mem):
            self.global_mem = np.zeros(len(data), dtype=np.int8)
        self.global_mem[: len(data)] = data

    def write_global(self, addr: int, data: np.ndarray) -> None:
        """Host-side write (e.g. the model input) into global memory."""
        offset = addr - GLOBAL_BASE
        data = np.ascontiguousarray(data, dtype=np.int8).reshape(-1)
        if offset < 0 or offset + len(data) > len(self.global_mem):
            grown = np.zeros(offset + len(data), dtype=np.int8)
            grown[: len(self.global_mem)] = self.global_mem
            self.global_mem = grown
        self.global_mem[offset:offset + len(data)] = data

    def read_global(self, addr: int, nbytes: int) -> np.ndarray:
        """Host-side read (e.g. fetching outputs after simulation)."""
        offset = addr - GLOBAL_BASE
        return self.global_mem[offset:offset + nbytes].copy()
