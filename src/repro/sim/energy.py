"""Energy accounting, broken down by component category.

Categories match the paper's Fig. 6 breakdown: local memory, compute
units (CIM + vector + scalar), NoC, plus global memory, instruction
delivery and static leakage tracked separately.
"""

from dataclasses import dataclass, field
from typing import Dict

from repro.config import EnergyConfig


@dataclass
class EnergyAccountant:
    """Accumulates picojoules per component category."""

    energy: EnergyConfig
    pj: Dict[str, float] = field(default_factory=lambda: {
        "cim_compute": 0.0,
        "cim_write": 0.0,
        "vector": 0.0,
        "scalar": 0.0,
        "local_mem": 0.0,
        "global_mem": 0.0,
        "noc": 0.0,
        "instruction": 0.0,
        "static": 0.0,
    })
    macs: int = 0

    def add(self, category: str, amount_pj: float) -> None:
        self.pj[category] += amount_pj

    def instruction(self) -> None:
        self.pj["instruction"] += self.energy.instruction_pj

    def cim_mvm(self, rows: int, cols: int) -> None:
        e = self.energy
        self.macs += rows * cols
        self.pj["cim_compute"] += (
            rows * cols * e.cim_mac_pj
            + rows * e.cim_peripheral_pj_per_mvm_row
        )
        # operand fetch / result write-back through the scratchpad
        self.pj["local_mem"] += (
            rows * e.local_mem_read_pj_per_byte
            + 4 * cols * e.local_mem_write_pj_per_byte
        )

    def cim_load(self, nbytes: int) -> None:
        self.pj["cim_write"] += nbytes * self.energy.cim_write_pj_per_byte
        self.pj["local_mem"] += nbytes * self.energy.local_mem_read_pj_per_byte

    def vector_op(self, elements: int, bytes_read: int, bytes_written: int) -> None:
        e = self.energy
        self.pj["vector"] += elements * e.vector_op_pj_per_element
        self.pj["local_mem"] += (
            bytes_read * e.local_mem_read_pj_per_byte
            + bytes_written * e.local_mem_write_pj_per_byte
        )

    def scalar_op(self) -> None:
        self.pj["scalar"] += self.energy.scalar_op_pj

    def local_copy(self, nbytes: int) -> None:
        e = self.energy
        self.pj["local_mem"] += nbytes * (
            e.local_mem_read_pj_per_byte + e.local_mem_write_pj_per_byte
        )

    def global_access(self, nbytes: int) -> None:
        self.pj["global_mem"] += nbytes * self.energy.global_mem_pj_per_byte

    def noc_transfer(self, pj: float) -> None:
        self.pj["noc"] += pj

    def static(self, cycles: int, clock_mhz: int) -> None:
        self.pj["static"] += cycles * self.energy.static_pj_per_cycle(clock_mhz)

    @property
    def total_pj(self) -> float:
        return sum(self.pj.values())

    def breakdown(self) -> Dict[str, float]:
        """Per-category energy in picojoules (copy)."""
        return dict(self.pj)
