"""Energy accounting, broken down by component category.

Categories match the paper's Fig. 6 breakdown: local memory, compute
units (CIM + vector + scalar), NoC, plus global memory, instruction
delivery and static leakage tracked separately.

The accountant accumulates *integer event tallies* (instruction counts,
bytes moved, MAC counts) and only multiplies them by the per-event energy
coefficients when :meth:`EnergyAccountant.breakdown` is called.  Integer
accumulation is exact and associative, so an execution engine that batches
thousands of events into one tally update (the hot-block engine of
:mod:`repro.sim.blockengine`) produces *bit-identical* energy numbers to
the per-instruction interpreter -- the exactness contract the simulator's
engine equivalence tests rely on.  The only floating-point accumulators
are the NoC per-message energies and user-extension energies.  Extension
energies are never batched; NoC energies *are* batched by the
iteration-major NoC replay, but as the identical sequence of repeated
float additions the stepped path would perform (one
:meth:`EnergyAccountant.noc_transfer` per message per iteration), so
the accumulated value stays bit-identical despite float addition being
non-associative.
"""

from dataclasses import dataclass, field
from typing import Dict

from repro.config import EnergyConfig

@dataclass
class EnergyAccountant:
    """Accumulates exact event tallies; converts to picojoules on demand."""

    energy: EnergyConfig
    # -- integer event tallies (exact, batchable) --------------------------
    n_instructions: int = 0
    n_scalar_ops: int = 0
    macs: int = 0
    mvm_rows: int = 0
    mvm_result_bytes: int = 0
    cim_load_bytes: int = 0
    vec_elements: int = 0
    local_bytes_read: int = 0
    local_bytes_written: int = 0
    global_bytes: int = 0
    # -- float accumulators (addition order is engine-invariant: batched
    #    NoC replay re-issues the exact per-message addition sequence) --
    noc_pj_total: float = 0.0
    static_pj_total: float = 0.0
    extra_pj: Dict[str, float] = field(default_factory=dict)

    def add(self, category: str, amount_pj: float) -> None:
        """Direct energy contribution (runtime-extension instructions)."""
        self.extra_pj[category] = self.extra_pj.get(category, 0.0) + amount_pj

    def instruction(self, count: int = 1) -> None:
        self.n_instructions += count

    def cim_mvm(self, rows: int, cols: int, count: int = 1) -> None:
        self.macs += rows * cols * count
        self.mvm_rows += rows * count
        self.mvm_result_bytes += 4 * cols * count
        # operand fetch / result write-back through the scratchpad
        self.local_bytes_read += rows * count
        self.local_bytes_written += 4 * cols * count

    def cim_load(self, nbytes: int) -> None:
        self.cim_load_bytes += nbytes
        self.local_bytes_read += nbytes

    def vector_op(self, elements: int, bytes_read: int, bytes_written: int,
                  count: int = 1) -> None:
        self.vec_elements += elements * count
        self.local_bytes_read += bytes_read * count
        self.local_bytes_written += bytes_written * count

    def scalar_op(self, count: int = 1) -> None:
        self.n_scalar_ops += count

    def local_copy(self, nbytes: int, count: int = 1) -> None:
        self.local_bytes_read += nbytes * count
        self.local_bytes_written += nbytes * count

    def global_access(self, nbytes: int, count: int = 1) -> None:
        self.global_bytes += nbytes * count

    def noc_transfer(self, pj: float) -> None:
        self.noc_pj_total += pj

    def static(self, cycles: int, clock_mhz: int) -> None:
        self.static_pj_total += cycles * self.energy.static_pj_per_cycle(
            clock_mhz
        )

    @property
    def total_pj(self) -> float:
        return sum(self.breakdown().values())

    def breakdown(self) -> Dict[str, float]:
        """Per-category energy in picojoules (freshly computed)."""
        e = self.energy
        pj = {
            "cim_compute": (
                self.macs * e.cim_mac_pj
                + self.mvm_rows * e.cim_peripheral_pj_per_mvm_row
            ),
            "cim_write": self.cim_load_bytes * e.cim_write_pj_per_byte,
            "vector": self.vec_elements * e.vector_op_pj_per_element,
            "scalar": self.n_scalar_ops * e.scalar_op_pj,
            "local_mem": (
                self.local_bytes_read * e.local_mem_read_pj_per_byte
                + self.local_bytes_written * e.local_mem_write_pj_per_byte
            ),
            "global_mem": self.global_bytes * e.global_mem_pj_per_byte,
            "noc": self.noc_pj_total,
            "instruction": self.n_instructions * e.instruction_pj,
            "static": self.static_pj_total,
        }
        for category, amount in self.extra_pj.items():
            pj[category] = pj.get(category, 0.0) + amount
        return pj
