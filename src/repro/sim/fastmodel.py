"""Fast analytical performance model: row-granular pipeline simulation.

The cycle-level simulator (:mod:`repro.sim.chip`) executes every
instruction and is exact at any scale, but full 224x224 models compile
into tens of millions of dynamic instructions -- too slow for wide design
sweeps in Python.  This module simulates an :class:`ExecutionPlan` at
*row* granularity instead: each node's replicas process output rows
sequentially, each row becomes ready only after the producer rows it
consumes are ready (true dataflow recurrences through the stage
pipeline), and per-row costs come from the same architecture parameters
the cycle simulator charges.

It is deliberately distinct from the closed-form estimates the DP
partitioner optimises (:class:`repro.compiler.cost.CostModel.estimate_stage`
uses max-plus-fill, with no dependency recurrences), so evaluating a plan
with the fast model is not circular.  Tests cross-validate it against the
cycle simulator at small scales.

See ``docs/ARCHITECTURE.md`` ("The simulation stack") for how this model
relates to the cycle-level simulator and the golden functional model.
"""

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.compiler.cost import CostModel
from repro.compiler.plan import ExecutionPlan
from repro.sim.report import group_energy_mj


@dataclass
class FastReport:
    """Performance estimate of one plan execution."""

    cycles: int
    energy_breakdown_pj: Dict[str, float]
    macs: int
    clock_mhz: int
    stage_cycles: Dict[int, int] = field(default_factory=dict)

    @property
    def time_ms(self) -> float:
        return self.cycles * (1000.0 / self.clock_mhz) / 1e6

    @property
    def total_energy_pj(self) -> float:
        return sum(self.energy_breakdown_pj.values())

    @property
    def total_energy_mj(self) -> float:
        return self.total_energy_pj / 1e9

    @property
    def tops(self) -> float:
        seconds = self.cycles / (self.clock_mhz * 1e6)
        if seconds <= 0:
            return 0.0
        return 2.0 * self.macs / seconds / 1e12

    def to_dict(self) -> Dict:
        """JSON-safe form (inverse of :meth:`from_dict`).

        Used by the on-disk sweep cache and the CLI exporters, so it must
        round-trip exactly: ``FastReport.from_dict(r.to_dict()) == r``.
        """
        return {
            "cycles": int(self.cycles),
            "energy_breakdown_pj": {
                k: float(v) for k, v in self.energy_breakdown_pj.items()
            },
            "macs": int(self.macs),
            "clock_mhz": int(self.clock_mhz),
            "stage_cycles": {
                str(k): int(v) for k, v in self.stage_cycles.items()
            },
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "FastReport":
        """Rebuild a report from :meth:`to_dict` output (e.g. a cache file)."""
        return cls(
            cycles=int(data["cycles"]),
            energy_breakdown_pj=dict(data["energy_breakdown_pj"]),
            macs=int(data["macs"]),
            clock_mhz=int(data["clock_mhz"]),
            stage_cycles={
                int(k): int(v) for k, v in data.get("stage_cycles", {}).items()
            },
        )

    def grouped_energy_mj(self) -> Dict[str, float]:
        """Fig. 6 grouping: local memory / compute / NoC (+ global, other).

        ``interchip`` is the chip-to-chip link energy of multi-chip
        sharded points (zero for single-chip points).
        """
        return group_energy_mj(self.energy_breakdown_pj)


def analyze_plan(
    plan: ExecutionPlan, cost_model: Optional[CostModel] = None
) -> FastReport:
    """Row-granular pipeline analysis of a compiled execution plan."""
    cm = cost_model or CostModel(plan.arch)
    clock = plan.arch.chip.clock_mhz
    energy: Dict[str, float] = {}
    macs = 0
    stage_cycles: Dict[int, int] = {}
    time_cursor = 0

    for stage in plan.stages:
        outputs_in_stage = {node.output for node in stage.nodes}
        ready: Dict[str, np.ndarray] = {}
        stage_end = time_cursor
        for node in stage.nodes:  # topological order within the stage
            geom = plan.geometries[node.name]
            mapping = stage.mappings[node.name]
            read_global = node.main_input.tensor not in outputs_in_stage
            consumers = sum(
                1
                for other in stage.nodes
                if other is not node
                and any(ni.tensor == node.output for ni in other.inputs)
            )
            write_global = stage.spill[node.name]
            row_cost = cm.row_cycles(geom, read_global, write_global, consumers)
            load = cm.load_cycles(geom)
            node_ready = np.zeros(geom.out_h, dtype=np.int64)
            for replica in mapping.replicas:
                t = time_cursor + load
                for y in range(*replica.rows):
                    dep = t
                    for spec in node.inputs:
                        if spec.tensor not in ready:
                            continue
                        src = ready[spec.tensor]
                        rows = spec.rows_needed(y, y + 1, len(src))
                        if len(rows):
                            dep = max(dep, int(src[rows.stop - 1]))
                    t = max(t, dep) + row_cost
                    node_ready[y] = t
                stage_end = max(stage_end, t)
            ready[node.output] = node_ready
            estimate = cm.estimate_node(
                geom,
                len(mapping.replicas),
                read_global=read_global,
                write_global=write_global,
                same_stage_consumers=consumers,
            )
            for key, value in estimate.energy_categories.items():
                energy[key] = energy.get(key, 0.0) + value
            macs += cm.node_macs(geom)
        stage_cycles[stage.index] = stage_end - time_cursor
        time_cursor = stage_end + 100  # barrier + stage turnaround

    energy["static"] = (
        energy.get("static", 0.0)
        + time_cursor * plan.arch.energy.static_pj_per_cycle(clock)
    )
    return FastReport(
        cycles=time_cursor,
        energy_breakdown_pj=energy,
        macs=macs,
        clock_mhz=clock,
        stage_cycles=stage_cycles,
    )


def analyze_sharded(sharding, plans, arch=None) -> FastReport:
    """Fast-model analysis of a multi-chip sharded execution.

    ``sharding`` is a :class:`~repro.compiler.partition.ShardingPlan`
    and ``plans`` the per-shard :class:`ExecutionPlan` list (one chip
    each).  Every shard is analysed with :func:`analyze_plan` unchanged;
    the chips are then composed with the same closed-form pipeline/link
    schedule the cycle-level multi-chip scheduler uses
    (:func:`repro.sim.multichip.pipeline_schedule`), and boundary-tensor
    bytes are charged at the inter-chip link energy.  Stage cycles are
    re-keyed as one global sequence (chip order, then stage order).
    """
    from repro.sim.multichip import merge_shard_energy, pipeline_schedule

    arch = arch or plans[0].arch
    reports = [analyze_plan(plan) for plan in plans]
    edges = []
    for shard in sharding.shards:
        for tensor in sorted(shard.incoming):
            edges.append((
                shard.incoming[tensor],
                shard.index,
                sharding.graph.tensor(tensor).size_bytes,
            ))
    edges.sort()
    _, _, makespan = pipeline_schedule(
        [r.cycles for r in reports], edges, arch.interchip
    )

    total_bytes = sum(nbytes for _, _, nbytes in edges)
    energy = merge_shard_energy(
        [r.energy_breakdown_pj for r in reports], total_bytes, arch.interchip
    )
    stage_cycles: Dict[int, int] = {}
    for report in reports:
        for _, cycles in sorted(report.stage_cycles.items()):
            stage_cycles[len(stage_cycles)] = cycles
    return FastReport(
        cycles=makespan,
        energy_breakdown_pj=energy,
        macs=sum(r.macs for r in reports),
        clock_mhz=arch.chip.clock_mhz,
        stage_cycles=stage_cycles,
    )
