"""Fast analytical performance model: row-granular pipeline simulation.

The cycle-level simulator (:mod:`repro.sim.chip`) executes every
instruction and is exact at any scale, but full 224x224 models compile
into tens of millions of dynamic instructions -- too slow for wide design
sweeps in Python.  This module simulates an :class:`ExecutionPlan` at
*row* granularity instead: each node's replicas process output rows
sequentially, each row becomes ready only after the producer rows it
consumes are ready (true dataflow recurrences through the stage
pipeline), and per-row costs come from the same architecture parameters
the cycle simulator charges.

It is deliberately distinct from the closed-form estimates the DP
partitioner optimises (:class:`repro.compiler.cost.CostModel.estimate_stage`
uses max-plus-fill, with no dependency recurrences), so evaluating a plan
with the fast model is not circular.  Tests cross-validate it against the
cycle simulator at small scales.

See ``docs/ARCHITECTURE.md`` ("The simulation stack") for how this model
relates to the cycle-level simulator and the golden functional model.
"""

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.compiler.cost import CostModel
from repro.compiler.plan import ExecutionPlan
from repro.errors import ConfigError
from repro.sim.report import group_energy_mj


@dataclass
class FastReport:
    """Performance estimate of one plan execution.

    ``batch > 1`` reports cover a whole input stream: ``cycles`` is the
    stream makespan, energies/MACs sum over every input, and
    ``steady_interval_cycles`` is the closed-form steady-state
    completion interval (``0`` means "no streaming analysis ran"; the
    throughput property then falls back to ``cycles``).
    ``stage_cycles`` always describes a single input.

    ``shard_cycles`` / ``shard_edges`` record the per-shard single-input
    occupancies and inter-chip transfer edges the streaming law needs,
    so a cached single-input report can be re-priced under any arrival
    process (:func:`serve_arrivals`) without re-analysis; a single-chip
    report leaves them empty (one implicit shard of ``cycles``).
    Reports derived under an arrival process additionally carry the
    offered rate and nearest-rank latency percentiles.

    Reports priced under a fault plan (:func:`serve_fleet` with
    ``faults``) additionally record availability: ``dropped`` requests
    never completed (conservation: ``batch == completed + dropped``;
    energy/MACs charge actual work done -- one full inference per
    full-service attempt, including retries), ``retries`` counts
    re-dispatches, and latency percentiles cover completed requests
    only.
    """

    cycles: int
    energy_breakdown_pj: Dict[str, float]
    macs: int
    clock_mhz: int
    stage_cycles: Dict[int, int] = field(default_factory=dict)
    batch: int = 1
    steady_interval_cycles: int = 0
    shard_cycles: List[int] = field(default_factory=list)
    shard_edges: List[Tuple[int, int, int]] = field(default_factory=list)
    arrival_rate_inf_s: Optional[float] = None
    p50_latency_cycles: int = 0
    p95_latency_cycles: int = 0
    p99_latency_cycles: int = 0
    dropped: int = 0
    retries: int = 0
    load_cycles: int = 0

    @property
    def time_ms(self) -> float:
        return self.cycles * (1000.0 / self.clock_mhz) / 1e6

    @property
    def total_energy_pj(self) -> float:
        return sum(self.energy_breakdown_pj.values())

    @property
    def total_energy_mj(self) -> float:
        return self.total_energy_pj / 1e9

    @property
    def tops(self) -> float:
        seconds = self.cycles / (self.clock_mhz * 1e6)
        if seconds <= 0:
            return 0.0
        return 2.0 * self.macs / seconds / 1e12

    @property
    def throughput_inf_per_s(self) -> float:
        """Sustained inferences/second at the steady-state interval."""
        interval = self.steady_interval_cycles or self.cycles
        if interval <= 0:
            return 0.0
        return self.clock_mhz * 1e6 / interval

    @property
    def energy_per_inference_mj(self) -> float:
        return self.total_energy_mj / max(1, self.batch)

    @property
    def completed(self) -> int:
        return self.batch - self.dropped

    @property
    def goodput_inf_per_s(self) -> float:
        """Completed inferences per second over the stream makespan."""
        if self.completed <= 0 or self.cycles <= 0:
            return 0.0
        return self.completed * self.clock_mhz * 1e6 / self.cycles

    def to_dict(self) -> Dict:
        """JSON-safe form (inverse of :meth:`from_dict`).

        Used by the on-disk sweep cache and the CLI exporters, so it must
        round-trip exactly: ``FastReport.from_dict(r.to_dict()) == r``.
        """
        payload = {
            "cycles": int(self.cycles),
            "energy_breakdown_pj": {
                k: float(v) for k, v in self.energy_breakdown_pj.items()
            },
            "macs": int(self.macs),
            "clock_mhz": int(self.clock_mhz),
            "stage_cycles": {
                str(k): int(v) for k, v in self.stage_cycles.items()
            },
            "batch": int(self.batch),
            "steady_interval_cycles": int(self.steady_interval_cycles),
            "shard_cycles": [int(c) for c in self.shard_cycles],
            "shard_edges": [list(edge) for edge in self.shard_edges],
            "arrival_rate_inf_s": self.arrival_rate_inf_s,
            "p50_latency_cycles": int(self.p50_latency_cycles),
            "p95_latency_cycles": int(self.p95_latency_cycles),
            "p99_latency_cycles": int(self.p99_latency_cycles),
        }
        # Availability fields appear only on fault-injected reports:
        # fault-free reports must serialize exactly as they did before
        # repro.faults existed (artifact manifests embed this dict and
        # re-saving a v1 artifact must stay byte-identical).
        if self.dropped or self.retries:
            payload["dropped"] = int(self.dropped)
            payload["retries"] = int(self.retries)
        # Same conditional contract for the resident-weights field: a
        # non-resident report serializes byte-identically to pre-v7 form.
        if self.load_cycles:
            payload["load_cycles"] = int(self.load_cycles)
        return payload

    @classmethod
    def from_dict(cls, data: Dict) -> "FastReport":
        """Rebuild a report from :meth:`to_dict` output (e.g. a cache file)."""
        rate = data.get("arrival_rate_inf_s")
        return cls(
            cycles=int(data["cycles"]),
            energy_breakdown_pj=dict(data["energy_breakdown_pj"]),
            macs=int(data["macs"]),
            clock_mhz=int(data["clock_mhz"]),
            stage_cycles={
                int(k): int(v) for k, v in data.get("stage_cycles", {}).items()
            },
            batch=int(data.get("batch", 1)),
            steady_interval_cycles=int(data.get("steady_interval_cycles", 0)),
            shard_cycles=[int(c) for c in data.get("shard_cycles", [])],
            shard_edges=[
                tuple(int(v) for v in edge)
                for edge in data.get("shard_edges", [])
            ],
            arrival_rate_inf_s=None if rate is None else float(rate),
            p50_latency_cycles=int(data.get("p50_latency_cycles", 0)),
            p95_latency_cycles=int(data.get("p95_latency_cycles", 0)),
            p99_latency_cycles=int(data.get("p99_latency_cycles", 0)),
            dropped=int(data.get("dropped", 0)),
            retries=int(data.get("retries", 0)),
            load_cycles=int(data.get("load_cycles", 0)),
        )

    def grouped_energy_mj(self) -> Dict[str, float]:
        """Fig. 6 grouping: local memory / compute / NoC (+ global, other).

        ``interchip`` is the chip-to-chip link energy of multi-chip
        sharded points (zero for single-chip points).
        """
        return group_energy_mj(self.energy_breakdown_pj)


def resident_plan_replicas(plan: ExecutionPlan) -> Dict[str, frozenset]:
    """Per-node replica indices whose weight loads a resident session hoists.

    The fast-tier mirror of the compiler's per-core separability rule
    (:meth:`repro.compiler.codegen.lowering.ProgramGenerator.resident_cores`):
    a replica's loads are hoistable when every core it occupies is
    assigned work in exactly one stage (multi-stage cores reuse their
    macro groups and staging buffers across stages, so their loads stay
    inline) and the node is not weight-streaming (multipass nodes
    re-stream tiles inside the compute body on every input; only their
    tiny bias copy is hoisted, which the row-granular model does not
    price separately).  Replica granularity matters: a node spanning
    both single- and multi-stage cores gets exactly its single-stage
    replicas' loads hoisted, matching the per-core program split.
    """
    stage_sets: Dict[int, set] = {}
    for stage in plan.stages:
        for node in stage.nodes:
            for replica in stage.mappings[node.name].replicas:
                for core in replica.cores:
                    stage_sets.setdefault(core, set()).add(stage.index)
    resident: Dict[str, frozenset] = {}
    for stage in plan.stages:
        for node in stage.nodes:
            geom = plan.geometries[node.name]
            if not node.is_cim or geom.multipass:
                continue
            hoistable = frozenset(
                index
                for index, replica in enumerate(
                    stage.mappings[node.name].replicas
                )
                if all(len(stage_sets[core]) == 1 for core in replica.cores)
            )
            if hoistable:
                resident[node.name] = hoistable
    return resident


def analyze_plan(
    plan: ExecutionPlan, cost_model: Optional[CostModel] = None
) -> FastReport:
    """Row-granular pipeline analysis of a compiled execution plan."""
    report, _, _ = _analyze_plan_impl(plan, cost_model, resident=False)
    return report


def analyze_plan_resident(
    plan: ExecutionPlan, cost_model: Optional[CostModel] = None
) -> Tuple[FastReport, int, Dict[str, float]]:
    """Resident-weights split of :func:`analyze_plan`.

    Returns ``(warm_report, load_cycles, load_energy_pj)``: the warm
    report prices one input with every hoistable replica's weight load
    removed (cycles and energy), ``load_cycles`` is the run-once load
    phase (hoisted loads execute concurrently across cores, so the phase
    is their max), and ``load_energy_pj`` the hoisted weight-load energy
    plus the load phase's own static draw.  The hoisted dynamic terms
    recompose the non-resident node energies exactly; static energy
    scales with each phase's own makespan, mirroring how the cycle tier
    accounts the load run and each warm run separately.
    """
    return _analyze_plan_impl(plan, cost_model, resident=True)


def _analyze_plan_impl(
    plan: ExecutionPlan,
    cost_model: Optional[CostModel],
    resident: bool,
) -> Tuple[FastReport, int, Dict[str, float]]:
    cm = cost_model or CostModel(plan.arch)
    clock = plan.arch.chip.clock_mhz
    resident_replicas = resident_plan_replicas(plan) if resident else {}
    energy: Dict[str, float] = {}
    load_energy: Dict[str, float] = {}
    load_phase = 0
    macs = 0
    stage_cycles: Dict[int, int] = {}
    time_cursor = 0

    for stage in plan.stages:
        outputs_in_stage = {node.output for node in stage.nodes}
        ready: Dict[str, np.ndarray] = {}
        stage_end = time_cursor
        for node in stage.nodes:  # topological order within the stage
            geom = plan.geometries[node.name]
            mapping = stage.mappings[node.name]
            read_global = node.main_input.tensor not in outputs_in_stage
            consumers = sum(
                1
                for other in stage.nodes
                if other is not node
                and any(ni.tensor == node.output for ni in other.inputs)
            )
            write_global = stage.spill[node.name]
            row_cost = cm.row_cycles(geom, read_global, write_global, consumers)
            load = cm.load_cycles(geom)
            hoisted_replicas = resident_replicas.get(node.name, frozenset())
            if hoisted_replicas and load:
                load_phase = max(load_phase, load)
            node_ready = np.zeros(geom.out_h, dtype=np.int64)
            for replica_index, replica in enumerate(mapping.replicas):
                t = time_cursor + (
                    0 if replica_index in hoisted_replicas else load
                )
                for y in range(*replica.rows):
                    dep = t
                    for spec in node.inputs:
                        if spec.tensor not in ready:
                            continue
                        src = ready[spec.tensor]
                        rows = spec.rows_needed(y, y + 1, len(src))
                        if len(rows):
                            dep = max(dep, int(src[rows.stop - 1]))
                    t = max(t, dep) + row_cost
                    node_ready[y] = t
                stage_end = max(stage_end, t)
            ready[node.output] = node_ready
            estimate = cm.estimate_node(
                geom,
                len(mapping.replicas),
                read_global=read_global,
                write_global=write_global,
                same_stage_consumers=consumers,
            )
            hoisted: Dict[str, float] = {}
            if hoisted_replicas:
                hoisted = cm.weight_load_energy(
                    geom, min(len(hoisted_replicas), estimate.replicas)
                )
                for key, value in hoisted.items():
                    load_energy[key] = load_energy.get(key, 0.0) + value
            for key, value in estimate.energy_categories.items():
                energy[key] = (
                    energy.get(key, 0.0) + value - hoisted.get(key, 0.0)
                )
            macs += cm.node_macs(geom)
        stage_cycles[stage.index] = stage_end - time_cursor
        time_cursor = stage_end + 100  # barrier + stage turnaround

    energy["static"] = (
        energy.get("static", 0.0)
        + time_cursor * plan.arch.energy.static_pj_per_cycle(clock)
    )
    if load_phase:
        load_energy["static"] = (
            load_energy.get("static", 0.0)
            + load_phase * plan.arch.energy.static_pj_per_cycle(clock)
        )
    report = FastReport(
        cycles=time_cursor,
        energy_breakdown_pj=energy,
        macs=macs,
        clock_mhz=clock,
        stage_cycles=stage_cycles,
        shard_cycles=[time_cursor],
        load_cycles=load_phase,
    )
    return report, load_phase, load_energy


def stream_batched(report: FastReport, batch: int) -> FastReport:
    """Closed-form batched continuation of a single-input report.

    The streaming law shared with the cycle-level scheduler
    (:func:`repro.sim.multichip.steady_state_interval`): the stream
    makespan is *fill + drain* (the single-input makespan) plus ``(batch
    - 1)`` steady-state intervals, while energy and MACs scale linearly
    per input (static energy is time-proportional, so it scales too).
    A report without a streaming analysis (``steady_interval_cycles ==
    0``, i.e. a single chip with no pipeline to overlap) degenerates to
    sequential replay: the interval is one input's makespan and the
    stream takes ``batch * cycles``.  Either way the derived report is
    bit-identical to re-running the analysis at ``batch`` -- which is
    why sweep points can share one batch-independent analysis across
    the whole batch axis.
    """
    if batch < 1:
        raise ConfigError(f"batch must be >= 1, got {batch}")
    if report.batch != 1:
        raise ConfigError(
            f"stream_batched needs a single-input report, got batch="
            f"{report.batch} (stacking batched reports would compound "
            f"energies and MACs)"
        )
    interval = report.steady_interval_cycles or report.cycles
    return FastReport(
        cycles=report.cycles + (batch - 1) * interval,
        energy_breakdown_pj={
            k: v * batch for k, v in report.energy_breakdown_pj.items()
        },
        macs=report.macs * batch,
        clock_mhz=report.clock_mhz,
        stage_cycles=dict(report.stage_cycles),
        batch=batch,
        steady_interval_cycles=interval,
        shard_cycles=list(report.shard_cycles),
        shard_edges=list(report.shard_edges),
    )


def serve_arrivals(
    report: FastReport,
    releases: Sequence[int],
    link,
    arrival_rate_inf_s: Optional[float] = None,
) -> FastReport:
    """Continuous-arrival continuation of a single-input report.

    The fast-model mirror of the serving queueing law
    (:mod:`repro.serve`): ``releases[i]`` is the cycle input ``i``
    arrives, and the stream is re-priced through the same
    :func:`repro.sim.multichip.streaming_schedule` recurrence the
    cycle-level :class:`~repro.serve.Deployment` uses, over the
    report's own per-shard occupancies (``shard_cycles`` /
    ``shard_edges``; a report without them is one implicit shard).
    ``link`` is the :class:`~repro.config.InterChipConfig` pricing the
    transfer edges.

    The derived report's makespan includes arrival idle time; latency
    percentiles (nearest-rank over ``finish_i - release_i``) land in
    the ``p50/p95/p99_latency_cycles`` fields.  Energy and MACs scale
    linearly per input, exactly as :func:`stream_batched` -- with
    all-zero releases the makespan is the batched schedule's, so the
    PR-4 law is the ``releases == [0] * B`` special case.  An empty
    release list yields an empty (zero-cycle, zero-energy) report.
    """
    from repro.serve import latency_percentile
    from repro.sim.multichip import streaming_schedule

    if report.batch != 1:
        raise ConfigError(
            f"serve_arrivals needs a single-input report, got batch="
            f"{report.batch}"
        )
    batch = len(releases)
    chip_cycles = list(report.shard_cycles) or [report.cycles]
    rows = [list(chip_cycles) for _ in range(batch)]
    _, _, input_finishes, makespan = streaming_schedule(
        rows, report.shard_edges, link, list(releases)
    )
    latencies = [f - r for f, r in zip(input_finishes, releases)]
    return FastReport(
        cycles=makespan,
        energy_breakdown_pj={
            k: v * batch for k, v in report.energy_breakdown_pj.items()
        },
        macs=report.macs * batch,
        clock_mhz=report.clock_mhz,
        stage_cycles=dict(report.stage_cycles),
        batch=batch,
        steady_interval_cycles=(
            report.steady_interval_cycles or report.cycles
        ),
        shard_cycles=list(report.shard_cycles),
        shard_edges=list(report.shard_edges),
        arrival_rate_inf_s=arrival_rate_inf_s,
        p50_latency_cycles=latency_percentile(latencies, 50),
        p95_latency_cycles=latency_percentile(latencies, 95),
        p99_latency_cycles=latency_percentile(latencies, 99),
    )


def steady_state_utilization(
    shard_cycles: Sequence[int],
    shard_edges: Sequence,
    link,
    arrival_interval_cycles: float,
) -> List[float]:
    """Closed-form per-shard utilisation at a sustained arrival interval.

    Below saturation each input occupies shard ``k`` for
    ``shard_cycles[k]`` out of every ``arrival_interval_cycles``; at or
    past saturation (interval at or below the bottleneck of
    :func:`repro.sim.multichip.steady_state_interval`) the initiation
    interval pins to the bottleneck and the busiest resource runs at
    1.0.  An interval of 0 (back-to-back offered load) is saturation by
    definition.  The live console (:mod:`repro.console`) prints this
    next to the measured utilisation from the runtime's event stream --
    the model-vs-measured cross-check for a running session.
    """
    from repro.sim.multichip import steady_state_interval

    if not shard_cycles:
        return []
    if arrival_interval_cycles < 0:
        raise ConfigError(
            f"arrival interval must be >= 0 cycles, got "
            f"{arrival_interval_cycles}"
        )
    bottleneck = steady_state_interval(
        list(shard_cycles), list(shard_edges), link
    )
    effective = max(float(arrival_interval_cycles), float(bottleneck))
    if effective <= 0:
        return [0.0 for _ in shard_cycles]
    return [cycles / effective for cycles in shard_cycles]


def serve_fleet(
    report: FastReport,
    releases: Sequence[int],
    link,
    replicas: int,
    arrival_rate_inf_s: Optional[float] = None,
    faults=None,
    retry=None,
    policy: str = "rr",
) -> FastReport:
    """Replicated-serving continuation of a single-input report.

    The fast-model mirror of :class:`repro.serve.Fleet` under
    round-robin dispatch: ``releases`` is split across ``replicas``
    identical copies of the report's pipeline (input ``i`` goes to
    replica ``i % replicas``), each replica's sub-stream is re-priced
    with :func:`repro.sim.multichip.streaming_schedule` at the inputs'
    *global* release cycles, and the per-input finishes are merged back
    into release order.  The fleet makespan is the latest replica
    finish; energy and MACs scale linearly per input as in
    :func:`serve_arrivals`.  ``replicas == 1`` degenerates to
    :func:`serve_arrivals` exactly, which is why the sweep engine can
    treat the replicas axis as a closed-form continuation of the same
    base analysis that prices the batch and arrival-rate axes.

    ``faults`` (a :class:`repro.faults.FaultPlan`) and/or ``retry`` (a
    :class:`repro.faults.RetryPolicy`) switch to the shared failover
    engine (:func:`repro.faults.run_fault_schedule`) -- the identical
    contract the cycle-exact tier implements: health-aware ``policy``
    dispatch over surviving replicas, retries on failure, drops past
    the deadline.  Energy/MACs then charge actual work (one full
    per-inference cost per full-service attempt, retries included,
    crash-killed attempts free), latency percentiles cover completed
    requests only, and ``dropped`` / ``retries`` land in the report.
    With ``faults=None`` and ``retry=None`` the unfaulted arithmetic is
    untouched -- bit-identical to the pre-fault model.
    """
    from repro.serve import latency_percentile
    from repro.sim.multichip import streaming_schedule

    if replicas < 1:
        raise ConfigError(f"replicas must be >= 1, got {replicas}")
    if faults is not None or retry is not None:
        return _serve_fleet_faulted(
            report, releases, link, replicas, arrival_rate_inf_s,
            faults, retry, policy,
        )
    if replicas == 1:
        return serve_arrivals(report, releases, link, arrival_rate_inf_s)
    if report.batch != 1:
        raise ConfigError(
            f"serve_fleet needs a single-input report, got batch="
            f"{report.batch}"
        )
    batch = len(releases)
    chip_cycles = list(report.shard_cycles) or [report.cycles]
    finishes = [0] * batch
    makespan = 0
    for replica in range(replicas):
        index = list(range(replica, batch, replicas))
        if not index:
            continue
        sub = [releases[i] for i in index]
        rows = [list(chip_cycles) for _ in index]
        _, _, sub_finishes, sub_makespan = streaming_schedule(
            rows, report.shard_edges, link, sub
        )
        makespan = max(makespan, sub_makespan)
        for i, finish in zip(index, sub_finishes):
            finishes[i] = finish
    latencies = [f - r for f, r in zip(finishes, releases)]
    return FastReport(
        cycles=makespan,
        energy_breakdown_pj={
            k: v * batch for k, v in report.energy_breakdown_pj.items()
        },
        macs=report.macs * batch,
        clock_mhz=report.clock_mhz,
        stage_cycles=dict(report.stage_cycles),
        batch=batch,
        steady_interval_cycles=(
            report.steady_interval_cycles or report.cycles
        ),
        shard_cycles=list(report.shard_cycles),
        shard_edges=list(report.shard_edges),
        arrival_rate_inf_s=arrival_rate_inf_s,
        p50_latency_cycles=latency_percentile(latencies, 50),
        p95_latency_cycles=latency_percentile(latencies, 95),
        p99_latency_cycles=latency_percentile(latencies, 99),
    )


def _serve_fleet_faulted(
    report: FastReport,
    releases: Sequence[int],
    link,
    replicas: int,
    arrival_rate_inf_s: Optional[float],
    faults,
    retry,
    policy: str,
) -> FastReport:
    """Fault-injected fleet pricing via the shared failover engine."""
    from repro.faults import FaultPlan, run_fault_schedule
    from repro.serve import latency_percentile

    if report.batch != 1:
        raise ConfigError(
            f"serve_fleet needs a single-input report, got batch="
            f"{report.batch}"
        )
    plan = faults if faults is not None else FaultPlan()
    chip_cycles = list(report.shard_cycles) or [report.cycles]
    schedule = run_fault_schedule(
        releases, chip_cycles, report.shard_edges, link, replicas,
        policy, plan, retry,
    )
    full_attempts = sum(1 for a in schedule.attempts if a.full_service)
    latencies = [
        schedule.finishes[i] - releases[i] for i in schedule.completed
    ]
    return FastReport(
        cycles=schedule.makespan,
        energy_breakdown_pj={
            k: v * full_attempts
            for k, v in report.energy_breakdown_pj.items()
        },
        macs=report.macs * full_attempts,
        clock_mhz=report.clock_mhz,
        stage_cycles=dict(report.stage_cycles),
        batch=len(releases),
        steady_interval_cycles=(
            report.steady_interval_cycles or report.cycles
        ),
        shard_cycles=list(report.shard_cycles),
        shard_edges=list(report.shard_edges),
        arrival_rate_inf_s=arrival_rate_inf_s,
        p50_latency_cycles=latency_percentile(latencies, 50),
        p95_latency_cycles=latency_percentile(latencies, 95),
        p99_latency_cycles=latency_percentile(latencies, 99),
        dropped=len(schedule.dropped),
        retries=schedule.retries,
    )


def analyze_sharded(sharding, plans, arch=None, batch: int = 1) -> FastReport:
    """Fast-model analysis of a multi-chip sharded execution.

    ``sharding`` is a :class:`~repro.compiler.partition.ShardingPlan`
    and ``plans`` the per-shard :class:`ExecutionPlan` list (one chip
    each).  Every shard is analysed with :func:`analyze_plan` unchanged;
    the chips are then composed with the same closed-form pipeline/link
    schedule the cycle-level multi-chip scheduler uses
    (:func:`repro.sim.multichip.pipeline_schedule`), and boundary-tensor
    bytes are charged at the inter-chip link energy.  Stage cycles are
    re-keyed as one global sequence (chip order, then stage order).

    With ``batch > 1`` the report covers a streamed input batch under
    the closed-form throughput law shared with the streaming scheduler:
    the single-input analysis is extended via :func:`stream_batched`
    (*fill + drain + (batch - 1) x bottleneck*, linear per-input
    energy/MACs), so the batch axis never re-runs the per-shard
    analysis.
    """
    arch = arch or plans[0].arch
    reports = [analyze_plan(plan) for plan in plans]
    base = _compose_shards(sharding, reports, arch)
    return stream_batched(base, batch) if batch > 1 else base


def analyze_sharded_resident(
    sharding, plans, arch=None
) -> Tuple[FastReport, int, Dict[str, float]]:
    """Resident-weights split of :func:`analyze_sharded`.

    Mirrors :func:`analyze_plan_resident` across a sharded pipeline:
    every shard is analysed warm (hoistable loads removed), the chips
    are composed with the same pipeline/link schedule, and the session
    pays one load phase before the first input enters the pipeline --
    the load completes on *every* shard first, so the phase is the max
    across shards while the hoisted load energy sums across them.
    """
    arch = arch or plans[0].arch
    split = [analyze_plan_resident(plan) for plan in plans]
    load_done = max(load for _, load, _ in split)
    load_energy: Dict[str, float] = {}
    for _, _, shard_load in split:
        for key, value in shard_load.items():
            load_energy[key] = load_energy.get(key, 0.0) + value
    base = _compose_shards(
        sharding, [report for report, _, _ in split], arch,
        load_cycles=load_done,
    )
    return base, load_done, load_energy


def _compose_shards(
    sharding, reports, arch, load_cycles: int = 0
) -> FastReport:
    """Compose per-shard single-input reports over the inter-chip link."""
    from repro.sim.multichip import (
        merge_shard_energy,
        pipeline_schedule,
        steady_state_interval,
    )

    edges = []
    for shard in sharding.shards:
        for tensor in sorted(shard.incoming):
            edges.append((
                shard.incoming[tensor],
                shard.index,
                sharding.graph.tensor(tensor).size_bytes,
            ))
    edges.sort()
    chip_cycles = [r.cycles for r in reports]
    _, _, makespan = pipeline_schedule(chip_cycles, edges, arch.interchip)
    interval = steady_state_interval(chip_cycles, edges, arch.interchip)

    total_bytes = sum(nbytes for _, _, nbytes in edges)
    energy = merge_shard_energy(
        [r.energy_breakdown_pj for r in reports], total_bytes, arch.interchip
    )
    stage_cycles: Dict[int, int] = {}
    for report in reports:
        for _, cycles in sorted(report.stage_cycles.items()):
            stage_cycles[len(stage_cycles)] = cycles
    return FastReport(
        cycles=makespan,
        energy_breakdown_pj=energy,
        macs=sum(r.macs for r in reports),
        clock_mhz=arch.chip.clock_mhz,
        stage_cycles=stage_cycles,
        batch=1,
        steady_interval_cycles=interval,
        shard_cycles=list(chip_cycles),
        shard_edges=[tuple(edge) for edge in edges],
        load_cycles=load_cycles,
    )
