"""Per-core execution: a three-stage (IF/DE/EX) in-order pipeline.

Each core executes its program functionally *in order* while timing is
tracked per execution unit: an instruction issues once its unit is free
and its register operands are ready (the bitmap scoreboard of Sec. III-D
reduces to per-register ready cycles plus per-unit busy-until counters),
occupies its unit for the parameter-derived duration, and retires.
Different units overlap, giving instruction-level parallelism between
scalar address arithmetic, scratchpad DMA, vector work and bit-serial CIM
MVMs.  ``RECV`` and ``BARRIER`` blocks return control to the chip
scheduler (:mod:`repro.sim.chip`).

Instructions are pre-translated into plain tuples so the interpreter loop
stays lean enough to execute the multi-hundred-thousand-instruction
streams real models compile into.
"""

import weakref
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import SimulationError
from repro.graph.quantize import (
    RELU6_CLIP,
    SIGMOID_LUT,
    SILU_LUT,
    apply_lut,
    cmul_i8,
    requantize,
    saturate_i8,
    QuantParams,
)
from repro.isa import ISARegistry, Opcode, Program, SReg
from repro.isa.opcodes import Category
from repro.utils import ceil_div

#: blocking states returned by Core.run()
RUNNING, BLOCKED_RECV, BLOCKED_BARRIER, HALTED = range(4)

_UNITS = ("scalar", "vector", "cim", "mem", "xfer")


#: registry -> {program content digest: translated tuples}.  Cores --
#: and repeated simulations -- running structurally identical programs
#: share one (immutable) translation instead of re-decoding per core.
#: Weakly keyed on the registry object so a dropped registry never
#: leaves stale descriptors behind for an id-reusing successor.
_TRANSLATE_CACHE: "weakref.WeakKeyDictionary[ISARegistry, Dict[str, list]]" \
    = weakref.WeakKeyDictionary()


def translate_program(program: Program, registry: ISARegistry):
    """Pre-decode a program into flat tuples for the interpreter."""
    per_registry = _TRANSLATE_CACHE.get(registry)
    if per_registry is None:
        per_registry = _TRANSLATE_CACHE.setdefault(registry, {})
    digest = program.content_digest()
    cached = per_registry.get(digest)
    if cached is not None:
        return cached
    translated = []
    for instr in program.instructions:
        desc = registry.lookup(instr.mnemonic)
        f = instr.fields
        translated.append((
            int(desc.opcode),
            f.get("rs", 0), f.get("rt", 0), f.get("rd", 0), f.get("re", 0),
            f.get("imm", 0), f.get("offset", 0), f.get("funct", 0),
            f.get("flags", 0), desc,
        ))
    if len(per_registry) > 512:
        per_registry.clear()
    per_registry[digest] = translated
    return translated


class Core:
    """One CIM core: register state, macro groups, pipeline timing."""

    def __init__(self, core_id: int, chip, program: Program):
        self.core_id = core_id
        self.chip = chip
        arch = chip.arch
        self.arch = arch
        self.registry = chip.registry
        self.program = program
        #: Set by the chip when the hot-block engine is selected
        #: (see :mod:`repro.sim.blockengine`); None = interpreter.
        self._blockprog = None
        self.code = translate_program(program, self.registry)
        self.pc = 0
        self.clock = 0
        self.regs: List[int] = [0] * 32
        self.sregs: List[int] = [0] * 16
        self.sregs[int(SReg.CORE_ID)] = core_id
        self.sregs[int(SReg.NUM_CORES)] = arch.chip.num_cores
        self.reg_ready: List[int] = [0] * 32
        self.unit_free: Dict[str, int] = {u: 0 for u in _UNITS}
        self.busy: Dict[str, int] = {u: 0 for u in _UNITS}
        mgs = arch.chip.core.cim_unit.num_macro_groups
        self.mgs: List[Optional[Tuple[np.ndarray, int, int]]] = [None] * mgs
        self.state = RUNNING
        self.instructions_retired = 0
        self._pending_recv: Optional[Tuple[int, int, int]] = None
        # cached unit parameters
        cim = arch.chip.core.cim_unit
        self._mvm_interval = cim.mvm_issue_interval
        self._mvm_latency = cim.mvm_latency
        vec = arch.chip.core.vector_unit
        self._lanes = vec.lanes
        self._vec_depth = vec.pipeline_depth
        local = arch.chip.core.local_memory
        self._local_bw = local.bandwidth_bytes_per_cycle
        self._local_lat = local.access_latency
        glb = arch.chip.global_memory
        self._glb_bw = glb.bandwidth_bytes_per_cycle
        self._glb_lat = glb.access_latency
        self._dispatch = _build_dispatch()

    def reset_for_program(self, program: Program) -> None:
        """Rebind to a new program, keeping macro groups + local memory.

        Resident-weights runs call this between program segments: the
        weight state loaded into ``self.mgs`` (and everything in the
        memory system) persists, while architectural registers, the
        timing scoreboard and the pipeline state restart exactly as a
        fresh core would -- so a warm run is indistinguishable from an
        isolated run of the warm program against the persisted state.
        """
        self.program = program
        self._blockprog = None
        self.code = translate_program(program, self.registry)
        self.pc = 0
        self.clock = 0
        self.regs = [0] * 32
        self.sregs = [0] * 16
        self.sregs[int(SReg.CORE_ID)] = self.core_id
        self.sregs[int(SReg.NUM_CORES)] = self.arch.chip.num_cores
        self.reg_ready = [0] * 32
        self.unit_free = {u: 0 for u in _UNITS}
        self.busy = {u: 0 for u in _UNITS}
        self.state = RUNNING
        self.instructions_retired = 0
        self._pending_recv = None

    # -- helpers ----------------------------------------------------------
    def _write_reg(self, index: int, value: int, ready: int) -> None:
        if index != 0:
            self.regs[index] = value
            self.reg_ready[index] = ready

    def _issue(self, unit: str, latency: int, occupancy: Optional[int] = None,
               deps: Tuple[int, ...] = ()) -> Tuple[int, int]:
        """Issue on ``unit``; returns (start, finish) and advances clock."""
        start = max(self.clock, self.unit_free[unit])
        for reg in deps:
            ready = self.reg_ready[reg]
            if ready > start:
                start = ready
        occupancy = latency if occupancy is None else occupancy
        self.unit_free[unit] = start + occupancy
        self.busy[unit] += occupancy
        self.clock = start + 1
        return start, start + latency

    def _mem(self):
        return self.chip.memory

    def _copy_cost(self, nbytes: int, src_global: bool, dst_global: bool) -> int:
        cycles = ceil_div(max(1, nbytes), self._local_bw) + self._local_lat
        if src_global or dst_global:
            cycles = max(
                cycles, ceil_div(max(1, nbytes), self._glb_bw) + self._glb_lat
            )
        return cycles

    def _charge_copy_energy(self, nbytes: int, src_global: bool,
                            dst_global: bool, start: int) -> None:
        acct = self.chip.acct
        if src_global or dst_global:
            acct.global_access(nbytes)
            acct.local_copy(nbytes)  # the local half of the transfer
            from repro.sim.noc import GLOBAL_PORT

            self.chip.noc.transfer(
                GLOBAL_PORT if src_global else self.core_id,
                self.core_id if src_global else GLOBAL_PORT,
                nbytes,
                start,
            )
            acct.noc_transfer(
                self.chip.noc.energy_pj(
                    nbytes,
                    GLOBAL_PORT if src_global else self.core_id,
                    self.core_id if src_global else GLOBAL_PORT,
                )
            )
        else:
            acct.local_copy(nbytes)

    # -- main loop ----------------------------------------------------------
    def run(self, max_instructions: int = 50_000_000) -> int:
        """Execute until HALT, a blocking RECV, or a BARRIER."""
        if self.state == HALTED:
            return HALTED
        self.state = RUNNING
        if self._blockprog is not None:
            from repro.sim.blockengine import run_core

            return run_core(self, max_instructions)
        executed = 0
        code = self.code
        dispatch = self._dispatch
        while True:
            if executed >= max_instructions:
                raise SimulationError(
                    f"core {self.core_id}: runaway execution "
                    f"(> {max_instructions} instructions without blocking)"
                )
            if not 0 <= self.pc < len(code):
                raise SimulationError(
                    f"core {self.core_id}: pc {self.pc} outside program "
                    f"of {len(code)} instructions"
                )
            tup = code[self.pc]
            self.chip.acct.instruction()
            result = dispatch[tup[0]](self, tup)
            executed += 1
            self.instructions_retired += 1
            if result is not None:
                self.state = result
                return result


# ---------------------------------------------------------------------------
# instruction handlers (module-level functions bound through a dispatch list)
# ---------------------------------------------------------------------------

def _h_scalar2(core: Core, t) -> None:
    op, rs, rt, rd = t[0], t[1], t[2], t[3]
    a, b = core.regs[rs], core.regs[rt]
    if op == Opcode.SC_ADD:
        value = a + b
    elif op == Opcode.SC_SUB:
        value = a - b
    elif op == Opcode.SC_MUL:
        value = a * b
    elif op == Opcode.SC_SLT:
        value = 1 if a < b else 0
    elif op == Opcode.SC_AND:
        value = a & b
    elif op == Opcode.SC_OR:
        value = a | b
    elif op == Opcode.SC_XOR:
        value = a ^ b
    elif op == Opcode.SC_SLL:
        value = a << (b & 31)
    else:  # SC_SRL
        value = (a & 0xFFFFFFFF) >> (b & 31)
    start, finish = core._issue("scalar", 1, deps=(rs, rt))
    core._write_reg(rd, value, finish)
    core.chip.acct.scalar_op()
    core.pc += 1


def _h_scalar_imm(core: Core, t) -> None:
    op, rs, rt, imm = t[0], t[1], t[2], t[5]
    a = core.regs[rs]
    if op == Opcode.SC_ADDI:
        value = a + imm
    elif op == Opcode.SC_MULI:
        value = a * imm
    else:  # SC_SLTI
        value = 1 if a < imm else 0
    start, finish = core._issue("scalar", 1, deps=(rs,))
    core._write_reg(rt, value, finish)
    core.chip.acct.scalar_op()
    core.pc += 1


def _h_lui(core: Core, t) -> None:
    rt, offset = t[2], t[6]
    start, finish = core._issue("scalar", 1)
    core._write_reg(rt, (offset & 0xFFFF) << 16, finish)
    core.chip.acct.scalar_op()
    core.pc += 1


def _h_ori(core: Core, t) -> None:
    rs, rt, offset = t[1], t[2], t[6]
    start, finish = core._issue("scalar", 1, deps=(rs,))
    core._write_reg(rt, core.regs[rs] | (offset & 0xFFFF), finish)
    core.chip.acct.scalar_op()
    core.pc += 1


def _h_addiw(core: Core, t) -> None:
    rs, rt, offset = t[1], t[2], t[6]
    start, finish = core._issue("scalar", 1, deps=(rs,))
    core._write_reg(rt, core.regs[rs] + offset, finish)
    core.chip.acct.scalar_op()
    core.pc += 1


def _h_mv_g2s(core: Core, t) -> None:
    rs, imm = t[1], t[5]
    core._issue("scalar", 1, deps=(rs,))
    if not 0 <= imm < len(core.sregs):
        raise SimulationError(f"core {core.core_id}: bad S_Reg index {imm}")
    core.sregs[imm] = core.regs[rs]
    core.chip.acct.scalar_op()
    core.pc += 1


def _h_mv_s2g(core: Core, t) -> None:
    rt, imm = t[2], t[5]
    start, finish = core._issue("scalar", 1)
    core._write_reg(rt, core.sregs[imm], finish)
    core.chip.acct.scalar_op()
    core.pc += 1


def _h_jmp(core: Core, t) -> None:
    core._issue("scalar", 1)
    core.pc += t[6]


def _h_branch(core: Core, t) -> None:
    op, rs, rt, offset = t[0], t[1], t[2], t[6]
    a, b = core.regs[rs], core.regs[rt]
    if op == Opcode.BEQ:
        taken = a == b
    elif op == Opcode.BNE:
        taken = a != b
    elif op == Opcode.BLT:
        taken = a < b
    else:  # BGE
        taken = a >= b
    core._issue("scalar", 1, deps=(rs, rt))
    core.chip.acct.scalar_op()
    core.pc += offset if taken else 1


def _h_nop(core: Core, t) -> None:
    core._issue("scalar", 1)
    core.pc += 1


def _h_halt(core: Core, t) -> int:
    core.pc += 1
    return HALTED


def _h_barrier(core: Core, t) -> int:
    core.pc += 1
    return BLOCKED_BARRIER


def _h_mem_cpy(core: Core, t) -> None:
    rs, rt, rd, offset = t[1], t[2], t[3], t[6]
    src = core.regs[rs]
    dst = core.regs[rt] + offset
    nbytes = core.regs[rd]
    mem = core._mem()
    src_g, dst_g = mem.is_global(src), mem.is_global(dst)
    cost = core._copy_cost(nbytes, src_g, dst_g)
    start, _ = core._issue("mem", cost, deps=(rs, rt, rd))
    data = mem.read(core.core_id, src, nbytes)
    mem.write(core.core_id, dst, data)
    core._charge_copy_energy(nbytes, src_g, dst_g, start)
    core.pc += 1


def _h_mem_ld(core: Core, t) -> None:
    rs, rt, offset = t[1], t[2], t[6]
    addr = core.regs[rs] + offset
    mem = core._mem()
    cost = core._copy_cost(4, mem.is_global(addr), False)
    start, finish = core._issue("mem", cost, deps=(rs,))
    core._write_reg(rt, mem.read_word(core.core_id, addr), finish)
    core._charge_copy_energy(4, mem.is_global(addr), False, start)
    core.pc += 1


def _h_mem_st(core: Core, t) -> None:
    rs, rt, offset = t[1], t[2], t[6]
    addr = core.regs[rs] + offset
    mem = core._mem()
    cost = core._copy_cost(4, False, mem.is_global(addr))
    start, _ = core._issue("mem", cost, deps=(rs, rt))
    mem.write_word(core.core_id, addr, core.regs[rt])
    core._charge_copy_energy(4, False, mem.is_global(addr), start)
    core.pc += 1


def _gather_indices(count: int, chunk: int, stride: int) -> np.ndarray:
    return (
        np.arange(count, dtype=np.int64)[:, None] * stride
        + np.arange(chunk, dtype=np.int64)[None, :]
    ).reshape(-1)


def _h_mem_gather(core: Core, t) -> None:
    rs, rt, rd = t[1], t[2], t[3]
    count = core.regs[rd]
    chunk = core.sregs[int(SReg.CHUNK)]
    stride = core.sregs[int(SReg.STRIDE)]
    if chunk <= 0 or stride <= 0 or count < 0:
        raise SimulationError(
            f"core {core.core_id}: bad gather chunk={chunk} stride={stride}"
        )
    src, dst = core.regs[rs], core.regs[rt]
    mem = core._mem()
    span = (count - 1) * stride + chunk if count else 0
    nbytes = count * chunk
    src_g, dst_g = mem.is_global(src), mem.is_global(dst)
    cost = core._copy_cost(nbytes, src_g, dst_g) + count
    start, _ = core._issue("mem", cost, deps=(rs, rt, rd))
    if count:
        window = mem.read(core.core_id, src, span)
        mem.write(core.core_id, dst, window[_gather_indices(count, chunk, stride)])
    core._charge_copy_energy(nbytes, src_g, dst_g, start)
    core.pc += 1


def _h_mem_scatter(core: Core, t) -> None:
    rs, rt, rd = t[1], t[2], t[3]
    count = core.regs[rd]
    chunk = core.sregs[int(SReg.CHUNK)]
    stride = core.sregs[int(SReg.STRIDE)]
    if chunk <= 0 or stride <= 0 or count < 0:
        raise SimulationError(
            f"core {core.core_id}: bad scatter chunk={chunk} stride={stride}"
        )
    src, dst = core.regs[rs], core.regs[rt]
    mem = core._mem()
    span = (count - 1) * stride + chunk if count else 0
    nbytes = count * chunk
    src_g, dst_g = mem.is_global(src), mem.is_global(dst)
    cost = core._copy_cost(nbytes, src_g, dst_g) + count
    start, _ = core._issue("mem", cost, deps=(rs, rt, rd))
    if count:
        data = mem.read(core.core_id, src, nbytes)
        window = mem.read(core.core_id, dst, span)
        window[_gather_indices(count, chunk, stride)] = data
        mem.write(core.core_id, dst, window)
    core._charge_copy_energy(nbytes, src_g, dst_g, start)
    core.pc += 1


def _h_send(core: Core, t) -> None:
    rs, rt, rd = t[1], t[2], t[3]
    src = core.regs[rs]
    dst_core = core.regs[rt]
    nbytes = core.regs[rd]
    mem = core._mem()
    serialization = ceil_div(max(1, nbytes), core.chip.noc.flit_bytes)
    start, _ = core._issue("xfer", serialization, deps=(rs, rt, rd))
    data = mem.read(core.core_id, src, nbytes)
    arrival = core.chip.noc.transfer(core.core_id, dst_core, nbytes, start)
    core.chip.deliver(core.core_id, dst_core, arrival, data)
    core.chip.acct.noc_transfer(
        core.chip.noc.energy_pj(nbytes, core.core_id, dst_core)
    )
    core.chip.acct.local_copy(nbytes)
    core.pc += 1


def _h_recv(core: Core, t) -> Optional[int]:
    rs, rt, rd = t[1], t[2], t[3]
    core._pending_recv = (core.regs[rs], core.regs[rt], core.regs[rd])
    # The chip scheduler completes the receive; pc advances there.
    return BLOCKED_RECV


def _h_sync(core: Core, t) -> None:
    core._issue("scalar", 1)
    core.pc += 1


def _h_cim_load(core: Core, t) -> None:
    rs, rt = t[1], t[2]
    mg = core.regs[rt]
    rows = core.sregs[int(SReg.MVM_ROWS)]
    cols = core.sregs[int(SReg.MVM_COLS)]
    if not 0 <= mg < len(core.mgs):
        raise SimulationError(f"core {core.core_id}: macro group {mg} out of range")
    if rows <= 0 or cols <= 0:
        raise SimulationError(
            f"core {core.core_id}: CIM_LOAD with rows={rows} cols={cols}"
        )
    nbytes = rows * cols
    data = core._mem().read(core.core_id, core.regs[rs], nbytes)
    matrix = data.reshape(rows, cols).astype(np.int32)
    core.mgs[mg] = (matrix, rows, cols)
    start, _ = core._issue("cim", rows + core._local_lat, deps=(rs, rt))
    core.chip.acct.cim_load(nbytes)
    core.pc += 1


def _h_cim_cfg(core: Core, t) -> None:
    rt = t[2]
    mg = core.regs[rt]
    rows = core.sregs[int(SReg.MVM_ROWS)]
    cols = core.sregs[int(SReg.MVM_COLS)]
    entry = core.mgs[mg]
    if entry is None:
        raise SimulationError(f"core {core.core_id}: CIM_CFG on empty MG {mg}")
    core.mgs[mg] = (entry[0], rows, cols)
    core._issue("cim", 1, deps=(rt,))
    core.pc += 1


def _h_cim_mvm(core: Core, t) -> None:
    rs, rt, re, flags = t[1], t[2], t[4], t[8]
    mg = core.regs[rt]
    entry = core.mgs[mg]
    if entry is None:
        raise SimulationError(
            f"core {core.core_id}: CIM_MVM on unloaded macro group {mg}"
        )
    matrix, rows, cols = entry
    mem = core._mem()
    vec = mem.read(core.core_id, core.regs[rs], rows).astype(np.int32)
    result = vec @ matrix[:rows, :cols]
    out_addr = core.regs[re]
    if flags & 1:
        result = result + mem.read_i32(core.core_id, out_addr, cols)
    mem.write_i32(core.core_id, out_addr, result.astype(np.int32))
    core._issue(
        "cim", core._mvm_latency, occupancy=core._mvm_interval,
        deps=(rs, rt, re),
    )
    core.chip.acct.cim_mvm(rows, cols)
    core.pc += 1


def _vec_cost(core: Core, elements: int) -> int:
    return ceil_div(max(1, elements), core._lanes) + core._vec_depth


def _h_vec(core: Core, t) -> None:
    op, rs, rt, rd, re = t[0], t[1], t[2], t[3], t[4]
    n = core.regs[re]
    mem = core._mem()
    cid = core.core_id
    acct = core.chip.acct

    if op == Opcode.VEC_QNT:
        acc = mem.read_i32(cid, core.regs[rs], n)
        params = QuantParams(
            qmul=max(1, core.sregs[int(SReg.QMUL)]),
            qshift=core.sregs[int(SReg.QSHIFT)],
        )
        mem.write(cid, core.regs[rd], requantize(acc, params))
        acct.vector_op(n, 4 * n, n)
    elif op == Opcode.VEC_ADD32:
        a = mem.read_i32(cid, core.regs[rs], n)
        b = mem.read_i32(cid, core.regs[rt], n)
        mem.write_i32(cid, core.regs[rd], a + b)
        acct.vector_op(n, 8 * n, 4 * n)
    elif op == Opcode.VEC_ACC32:
        a = mem.read(cid, core.regs[rs], n).astype(np.int32)
        b = mem.read_i32(cid, core.regs[rd], n)
        mem.write_i32(cid, core.regs[rd], a + b)
        acct.vector_op(n, 5 * n, 4 * n)
    elif op == Opcode.VEC_FILL:
        value = core.sregs[int(SReg.FILL_VALUE)] & 0xFF
        signed = value - 256 if value >= 128 else value
        if t[7] == 4:  # funct=4 -> int32 fill
            mem.write_i32(cid, core.regs[rd], np.full(n, signed, dtype=np.int32))
            acct.vector_op(n, 0, 4 * n)
        else:
            mem.write(cid, core.regs[rd], np.full(n, signed, dtype=np.int8))
            acct.vector_op(n, 0, n)
    elif op == Opcode.VEC_CMUL:
        channels = core.sregs[int(SReg.CHANNEL_LEN)]
        if channels <= 0 or n % channels:
            raise SimulationError(
                f"core {cid}: VEC_CMUL length {n} not a multiple of "
                f"channel count {channels}"
            )
        x = mem.read(cid, core.regs[rs], n)
        scale = mem.read(cid, core.regs[rt], channels)
        tiled = np.tile(scale, n // channels)
        mem.write(cid, core.regs[rd], cmul_i8(x, tiled))
        acct.vector_op(n, 2 * n, n)
    else:
        a = mem.read(cid, core.regs[rs], n)
        if op == Opcode.VEC_RELU:
            out = np.maximum(a, 0).astype(np.int8)
        elif op == Opcode.VEC_RELU6:
            out = np.clip(a, 0, RELU6_CLIP).astype(np.int8)
        elif op == Opcode.VEC_SILU:
            out = apply_lut(a, SILU_LUT)
        elif op == Opcode.VEC_SIGMOID:
            out = apply_lut(a, SIGMOID_LUT)
        elif op == Opcode.VEC_COPY:
            out = a
        else:
            b = mem.read(cid, core.regs[rt], n).astype(np.int16)
            a16 = a.astype(np.int16)
            if op == Opcode.VEC_ADD:
                out = saturate_i8(a16 + b)
            elif op == Opcode.VEC_SUB:
                out = saturate_i8(a16 - b)
            elif op == Opcode.VEC_MUL:
                out = saturate_i8(a16 * b)
            elif op == Opcode.VEC_MAX:
                out = np.maximum(a16, b).astype(np.int8)
            elif op == Opcode.VEC_MIN:
                out = np.minimum(a16, b).astype(np.int8)
            else:  # pragma: no cover
                raise SimulationError(f"unhandled vector opcode {op:#x}")
        mem.write(cid, core.regs[rd], out)
        acct.vector_op(n, 2 * n, n)
    core._issue("vector", _vec_cost(core, n), deps=(rs, rt, rd, re))
    core.pc += 1


def _h_extension(core: Core, t) -> None:
    desc = t[9]
    latency = desc.latency or 1
    core._issue("vector" if desc.category is Category.VECTOR else "scalar",
                latency)
    if desc.energy_pj:
        core.chip.acct.add("vector", desc.energy_pj)
    handler = core.chip.extension_handlers.get(desc.mnemonic)
    if handler is not None:
        handler(core, t)
    core.pc += 1


def _build_dispatch():
    table = [_h_extension] * 64
    for op in (Opcode.SC_ADD, Opcode.SC_SUB, Opcode.SC_MUL, Opcode.SC_SLT,
               Opcode.SC_AND, Opcode.SC_OR, Opcode.SC_XOR, Opcode.SC_SLL,
               Opcode.SC_SRL):
        table[op] = _h_scalar2
    for op in (Opcode.SC_ADDI, Opcode.SC_MULI, Opcode.SC_SLTI):
        table[op] = _h_scalar_imm
    table[Opcode.SC_LUI] = _h_lui
    table[Opcode.SC_ORI] = _h_ori
    table[Opcode.SC_ADDIW] = _h_addiw
    table[Opcode.MV_G2S] = _h_mv_g2s
    table[Opcode.MV_S2G] = _h_mv_s2g
    table[Opcode.JMP] = _h_jmp
    for op in (Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.BGE):
        table[op] = _h_branch
    table[Opcode.NOP] = _h_nop
    table[Opcode.HALT] = _h_halt
    table[Opcode.BARRIER] = _h_barrier
    table[Opcode.MEM_CPY] = _h_mem_cpy
    table[Opcode.MEM_LD] = _h_mem_ld
    table[Opcode.MEM_ST] = _h_mem_st
    table[Opcode.MEM_GATHER] = _h_mem_gather
    table[Opcode.MEM_SCATTER] = _h_mem_scatter
    table[Opcode.SEND] = _h_send
    table[Opcode.RECV] = _h_recv
    table[Opcode.SYNC] = _h_sync
    table[Opcode.CIM_LOAD] = _h_cim_load
    table[Opcode.CIM_CFG] = _h_cim_cfg
    table[Opcode.CIM_MVM] = _h_cim_mvm
    for op in (Opcode.VEC_ADD, Opcode.VEC_SUB, Opcode.VEC_MUL, Opcode.VEC_MAX,
               Opcode.VEC_MIN, Opcode.VEC_RELU, Opcode.VEC_RELU6,
               Opcode.VEC_SILU, Opcode.VEC_SIGMOID, Opcode.VEC_COPY,
               Opcode.VEC_ADD32, Opcode.VEC_QNT, Opcode.VEC_ACC32,
               Opcode.VEC_FILL, Opcode.VEC_CMUL):
        table[op] = _h_vec
    return table
