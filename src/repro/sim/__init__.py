"""The CIMFlow cycle-level simulator (Sec. III-D) and golden model.

Core execution runs on the hot-block engine
(:mod:`repro.sim.blockengine`) by default; set ``REPRO_SIM_ENGINE=interp``
to select the legacy per-instruction interpreter.  Both are bit-identical
(see ``docs/ARCHITECTURE.md``, "The hot-block execution engine").
"""

from repro.sim.chip import ChipSimulator, default_engine
from repro.sim.energy import EnergyAccountant
from repro.sim.functional import execute_graph, golden_outputs, random_input
from repro.sim.memory import MemorySystem
from repro.sim.multichip import (
    MultiChipReport,
    MultiChipSimulator,
    pipeline_schedule,
)
from repro.sim.noc import NoC
from repro.sim.report import SimulationReport

__all__ = [
    "ChipSimulator",
    "MultiChipSimulator",
    "MultiChipReport",
    "pipeline_schedule",
    "SimulationReport",
    "MemorySystem",
    "NoC",
    "EnergyAccountant",
    "default_engine",
    "execute_graph",
    "golden_outputs",
    "random_input",
]
