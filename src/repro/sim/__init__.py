"""The CIMFlow cycle-level simulator (Sec. III-D) and golden model."""

from repro.sim.chip import ChipSimulator
from repro.sim.energy import EnergyAccountant
from repro.sim.functional import execute_graph, golden_outputs, random_input
from repro.sim.memory import MemorySystem
from repro.sim.noc import NoC
from repro.sim.report import SimulationReport

__all__ = [
    "ChipSimulator",
    "SimulationReport",
    "MemorySystem",
    "NoC",
    "EnergyAccountant",
    "execute_graph",
    "golden_outputs",
    "random_input",
]
