"""Golden functional model: exact NumPy execution of a computation graph.

This is the reference for the paper's "Functional Validation / Exec.
Result Check": it executes the INT8 graph with bit-exact semantics shared
with the simulator (:mod:`repro.graph.quantize`), so any divergence
between golden and simulated outputs indicates a compiler or simulator
bug, never numerical noise.
"""

from typing import Dict, Optional

import numpy as np

from repro.errors import GraphError, ValidationError
from repro.graph.graph import ComputationGraph
from repro.graph.ops import Operator, OpKind
from repro.graph.quantize import (
    RELU6_CLIP,
    SIGMOID_LUT,
    SILU_LUT,
    add_i8,
    apply_lut,
    cmul_i8,
    requantize,
)


def _window_view(x: np.ndarray, kernel: int, stride: int, padding: int,
                 pad_value: int) -> np.ndarray:
    """Return (out_h, out_w, k, k, C) windows of an (H, W, C) map."""
    h, w, c = x.shape
    if padding:
        padded = np.full(
            (h + 2 * padding, w + 2 * padding, c), pad_value, dtype=x.dtype
        )
        padded[padding:padding + h, padding:padding + w] = x
        x = padded
        h, w = x.shape[:2]
    out_h = (h - kernel) // stride + 1
    out_w = (w - kernel) // stride + 1
    windows = np.empty((out_h, out_w, kernel, kernel, c), dtype=x.dtype)
    for ky in range(kernel):
        for kx in range(kernel):
            windows[:, :, ky, kx, :] = x[
                ky:ky + out_h * stride:stride, kx:kx + out_w * stride:stride, :
            ]
    return windows


def _conv(op: Operator, x: np.ndarray) -> np.ndarray:
    k, s, p = op.attrs["kernel"], op.attrs["stride"], op.attrs["padding"]
    windows = _window_view(x, k, s, p, 0)
    out_h, out_w = windows.shape[:2]
    cols = windows.reshape(out_h * out_w, -1).astype(np.int32)
    c_in = x.shape[2]
    matrix = op.weight.reshape(k * k * c_in, -1).astype(np.int32)
    acc = cols @ matrix
    acc = acc + op.bias.astype(np.int32)[None, :]
    out = requantize(acc, op.qparams)
    return out.reshape(out_h, out_w, -1)


def _dwconv(op: Operator, x: np.ndarray) -> np.ndarray:
    k, s, p = op.attrs["kernel"], op.attrs["stride"], op.attrs["padding"]
    windows = _window_view(x, k, s, p, 0)  # (oh, ow, k, k, C)
    acc = np.einsum(
        "hwklc,klc->hwc",
        windows.astype(np.int32),
        op.weight.astype(np.int32),
        dtype=np.int32,
    )
    acc = acc + op.bias.astype(np.int32)[None, None, :]
    return requantize(acc, op.qparams)


def _gemm(op: Operator, x: np.ndarray) -> np.ndarray:
    vec = x.reshape(-1).astype(np.int32)
    acc = vec @ op.weight.astype(np.int32)
    acc = acc + op.bias.astype(np.int32)
    return requantize(acc, op.qparams)


def _maxpool(op: Operator, x: np.ndarray) -> np.ndarray:
    k, s = op.attrs["kernel"], op.attrs["stride"]
    p = op.attrs.get("padding", 0)
    windows = _window_view(x, k, s, p, -128)
    return windows.max(axis=(2, 3)).astype(np.int8)


def _avgpool(op: Operator, x: np.ndarray) -> np.ndarray:
    k, s = op.attrs["kernel"], op.attrs["stride"]
    windows = _window_view(x, k, s, op.attrs.get("padding", 0), 0)
    acc = windows.astype(np.int32).sum(axis=(2, 3))
    return requantize(acc, op.qparams)


def _global_avgpool(op: Operator, x: np.ndarray) -> np.ndarray:
    acc = x.astype(np.int32).sum(axis=(0, 1))
    return requantize(acc, op.qparams)


def execute_graph(
    graph: ComputationGraph, inputs: Dict[str, np.ndarray]
) -> Dict[str, np.ndarray]:
    """Execute the graph; returns every tensor's value by name."""
    values: Dict[str, np.ndarray] = {}
    for op in graph.topological_order():
        if op.kind is OpKind.INPUT:
            if op.output not in inputs:
                raise ValidationError(f"missing input tensor {op.output!r}")
            data = np.asarray(inputs[op.output], dtype=np.int8)
            expected = graph.tensor(op.output).shape
            if tuple(data.shape) != tuple(expected):
                raise ValidationError(
                    f"input {op.output!r}: shape {data.shape} != {expected}"
                )
            values[op.output] = data
            continue
        args = [values[name] for name in op.inputs]
        x = args[0]
        if op.kind is OpKind.CONV:
            out = _conv(op, x)
        elif op.kind is OpKind.DWCONV:
            out = _dwconv(op, x)
        elif op.kind is OpKind.GEMM:
            out = _gemm(op, x)
        elif op.kind is OpKind.RELU:
            out = np.maximum(x, 0).astype(np.int8)
        elif op.kind is OpKind.RELU6:
            out = np.clip(x, 0, RELU6_CLIP).astype(np.int8)
        elif op.kind is OpKind.SILU:
            out = apply_lut(x, SILU_LUT)
        elif op.kind is OpKind.SIGMOID:
            out = apply_lut(x, SIGMOID_LUT)
        elif op.kind is OpKind.ADD:
            out = add_i8(x, args[1])
        elif op.kind is OpKind.MUL_CHANNEL:
            out = cmul_i8(x, args[1])
        elif op.kind is OpKind.MAXPOOL:
            out = _maxpool(op, x)
        elif op.kind is OpKind.AVGPOOL:
            out = _avgpool(op, x)
        elif op.kind is OpKind.GLOBALAVGPOOL:
            out = _global_avgpool(op, x)
        elif op.kind is OpKind.FLATTEN:
            out = x.reshape(-1)
        else:
            raise GraphError(f"golden model: unhandled op kind {op.kind}")
        values[op.output] = out
    return values


def golden_outputs(
    graph: ComputationGraph, inputs: Dict[str, np.ndarray]
) -> Dict[str, np.ndarray]:
    """Only the graph outputs."""
    values = execute_graph(graph, inputs)
    return {name: values[name] for name in graph.outputs}


def random_input(
    graph: ComputationGraph, seed: int = 0, tensor: Optional[str] = None
) -> np.ndarray:
    """A reproducible random int8 input for the (single-input) graph."""
    ops = graph.input_operators
    if tensor is None:
        if len(ops) != 1:
            raise GraphError("graph has multiple inputs; name one")
        tensor = ops[0].output
    rng = np.random.default_rng(seed)
    shape = graph.tensor(tensor).shape
    return rng.integers(-100, 101, size=shape, dtype=np.int8)
