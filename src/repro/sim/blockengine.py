"""Hot-block execution engine: specialised superblocks + vectorized replay.

The per-instruction interpreter in :mod:`repro.sim.core` pays Python
dispatch, dict lookups and small-array NumPy call overhead for every
dynamic instruction.  This module removes that overhead in two stages
while keeping results **bit-identical** (the exactness contract the
engine-equivalence tests enforce):

1. **Superblock specialisation.**  Translated programs are partitioned
   into maximal straight-line blocks (leaders at branch targets and after
   control transfers).  Each block is compiled -- once per *shape*, the
   sequence of opcodes and register fields with immediates lifted into a
   constants tuple -- into a specialised Python function with the
   pipeline-timing model, memory fast paths and integer energy tallies
   inlined.  Structurally identical blocks (the same unrolled row body on
   every core, for instance) share one code object through a
   content-addressed shape cache; per-instance constants (addresses,
   immediates, branch targets) are passed as a tuple.  Blocks ending in a
   backward conditional branch to their own first instruction are *loop
   blocks* and iterate inside the generated function, so a counted loop
   executes with no per-iteration dispatch at all.

2. **Batched loop replay.**  A loop block whose body is affine -- every
   register evolves by a constant per-iteration step, lengths and special
   registers are loop-invariant, and all touched memory is core-local --
   reaches a *steady state* after a few warm-up iterations: the full
   timing vector (clock, unit-free times, register-ready times, busy and
   energy tallies) advances by the same delta every iteration.  The
   engine detects this empirically (two consecutive equal delta vectors,
   plus a deadness check that any non-advancing timing component already
   lies in the past), computes the remaining trip count in closed form,
   replays the *dataflow* of all remaining iterations with batched NumPy
   operations (one strided gather per copy, one ``(M, rows) @ matrix``
   product per MVM site, one vectorised requantise per epilogue), and
   advances the architectural state by ``M * delta``.  Integer timing and
   integer energy tallies make the closed form exact, and NumPy integer
   arithmetic is associative modulo 2**32, so the batched replay is
   bit-identical to per-iteration execution.

Loops whose bodies *stream from global memory* (a weight-streaming pass:
``MEM_CPY`` from the global image, ``CIM_LOAD``, ``CIM_MVM``) batch too:
the warm-up iterations record the body's NoC transactions through
:attr:`repro.sim.noc.NoC.trace`, the planner cross-checks them against
the planned global copies, and the remaining iterations are replayed
iteration-major through :meth:`repro.sim.noc.NoC.replay_affine` -- a
pure probe proves every touched link advances steadily, closed-form
arithmetic commits the reservations, and the per-message float energies
are re-added in stepped order so the accumulator stays bit-identical.
A contention window the probe cannot prove steady refuses the batch
(``noc_batch_contention_bailouts``) and the loop steps instead.

Blocks containing ``RECV``/``BARRIER``/``HALT``, extension opcodes or
anything else the code generator does not support simply fall back to the
interpreter's handlers one instruction at a time; loops that *write*
global memory or send core-to-core messages (order-sensitive against
other cores) execute inside the generated function but are never
batched.  Engine selection is ``REPRO_SIM_ENGINE`` (``block``, the
default, or ``interp`` for the legacy interpreter).
"""

import weakref
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.config.arch import GLOBAL_BASE
from repro.errors import SimulationError
from repro.graph.quantize import (
    RELU6_CLIP,
    SIGMOID_LUT,
    SILU_LUT,
    QuantParams,
    apply_lut,
    cmul_i8,
    requantize,
    saturate_i8,
)
from repro.isa import Opcode
from repro.sim.noc import GLOBAL_PORT

Op = Opcode

#: Units in the order used by timing snapshots (matches core._UNITS).
_UNITS = ("scalar", "vector", "cim", "mem", "xfer")

#: Opcodes that end a block and are executed by the trampoline/scheduler.
_EXIT_OPS = frozenset({int(Op.RECV), int(Op.BARRIER), int(Op.HALT)})

_BRANCH_OPS = frozenset({int(Op.BEQ), int(Op.BNE), int(Op.BLT), int(Op.BGE)})

_SCALAR2_OPS = frozenset({
    int(Op.SC_ADD), int(Op.SC_SUB), int(Op.SC_MUL), int(Op.SC_SLT),
    int(Op.SC_AND), int(Op.SC_OR), int(Op.SC_XOR), int(Op.SC_SLL),
    int(Op.SC_SRL),
})

_VEC_OPS = frozenset({
    int(Op.VEC_ADD), int(Op.VEC_SUB), int(Op.VEC_MUL), int(Op.VEC_MAX),
    int(Op.VEC_MIN), int(Op.VEC_RELU), int(Op.VEC_RELU6), int(Op.VEC_SILU),
    int(Op.VEC_SIGMOID), int(Op.VEC_COPY), int(Op.VEC_ADD32),
    int(Op.VEC_QNT), int(Op.VEC_ACC32), int(Op.VEC_FILL), int(Op.VEC_CMUL),
})

#: Everything the code generator can compile.
_SUPPORTED = (
    _SCALAR2_OPS | _VEC_OPS | _BRANCH_OPS
    | frozenset({
        int(Op.SC_ADDI), int(Op.SC_MULI), int(Op.SC_SLTI), int(Op.SC_LUI),
        int(Op.SC_ORI), int(Op.SC_ADDIW), int(Op.MV_G2S), int(Op.MV_S2G),
        int(Op.JMP), int(Op.NOP), int(Op.SYNC),
        int(Op.MEM_CPY), int(Op.MEM_LD), int(Op.MEM_ST),
        int(Op.MEM_GATHER), int(Op.MEM_SCATTER), int(Op.SEND),
        int(Op.CIM_LOAD), int(Op.CIM_CFG), int(Op.CIM_MVM),
    })
)

#: Opcodes eligible for batched loop replay (a strict subset: no sends,
#: no global-memory writes, no register-load operations).
_BATCHABLE = (
    _SCALAR2_OPS | _VEC_OPS
    | frozenset({
        int(Op.SC_ADDI), int(Op.SC_MULI), int(Op.SC_SLTI), int(Op.SC_LUI),
        int(Op.SC_ORI), int(Op.SC_ADDIW), int(Op.MV_G2S), int(Op.MV_S2G),
        int(Op.NOP), int(Op.SYNC),
        int(Op.MEM_CPY), int(Op.MEM_GATHER), int(Op.CIM_LOAD),
        int(Op.CIM_MVM),
    })
)

#: Do not bother batching loops expected to run fewer iterations.
_MIN_BATCH = 4

#: Give up batching a loop instance after this many failed plans.
_MAX_BATCH_FAILS = 3

#: Cheap engine counters (reset with :func:`reset_stats`); the perf
#: harness reports them alongside wall-clock numbers.
ENGINE_STATS = {
    "fallback_instructions": 0,   # executed via interpreter handlers
    "loop_entries": 0,
    "loop_iterations_stepped": 0,  # executed one iteration at a time
    "loop_iterations_batched": 0,  # replayed in closed form
    "batch_attempts": 0,
    "batch_successes": 0,
    "template_builds": 0,          # symbolic plan templates constructed
    "template_hits": 0,            # batch plans instantiated from a template
    "template_misfits": 0,         # guard mismatch -> concrete re-walk
    "noc_batch_attempts": 0,       # batch attempts on NoC-touching loops
    "noc_batch_successes": 0,      # NoC windows replayed iteration-major
    "noc_batch_contention_bailouts": 0,  # replay refused: link not steady
    "resident_load_runs": 0,       # per-shard weight-load segments executed
    "resident_warm_runs": 0,       # per-shard warm (load-free) input replays
}


def reset_stats() -> None:
    for key in ENGINE_STATS:
        ENGINE_STATS[key] = 0


# ---------------------------------------------------------------------------
# runtime helpers shared with generated code
# ---------------------------------------------------------------------------

def _copy_energy(core, nbytes, src_g, dst_g, start):
    """Exact mirror of ``Core._charge_copy_energy``."""
    chip = core.chip
    acct = chip.acct
    if src_g or dst_g:
        acct.global_access(nbytes)
        acct.local_copy(nbytes)
        a = GLOBAL_PORT if src_g else core.core_id
        b = core.core_id if src_g else GLOBAL_PORT
        chip.noc.transfer(a, b, nbytes, start)
        acct.noc_transfer(chip.noc.energy_pj(nbytes, a, b))
    else:
        acct.local_copy(nbytes)


def _global_copy(core, src, dst, nbytes, start):
    """Functional + energy half of a MEM_CPY touching global memory."""
    mem = core.chip.memory
    data = mem.read(core.core_id, src, nbytes)
    mem.write(core.core_id, dst, data)
    _copy_energy(core, nbytes, src >= GLOBAL_BASE, dst >= GLOBAL_BASE, start)


_GIDX_CACHE: Dict[Tuple[int, int, int], np.ndarray] = {}


def _gidx(count: int, chunk: int, stride: int) -> np.ndarray:
    """Memoised gather/scatter index pattern (same values as the
    interpreter's ``_gather_indices``)."""
    key = (count, chunk, stride)
    idx = _GIDX_CACHE.get(key)
    if idx is None:
        if len(_GIDX_CACHE) > 512:
            _GIDX_CACHE.clear()
        idx = (
            np.arange(count, dtype=np.int64)[:, None] * stride
            + np.arange(chunk, dtype=np.int64)[None, :]
        ).reshape(-1)
        _GIDX_CACHE[key] = idx
    return idx


# ---------------------------------------------------------------------------
# code generation
# ---------------------------------------------------------------------------

class _Emit:
    """Accumulates the source of one specialised block function."""

    def __init__(self):
        self.lines: List[str] = []
        self.units = set()
        self.dep_regs = set()
        self.uses = set()   # feature flags: mem, cost, vec, cim, send, sregs
        self.has_scalar_tally = False
        self.tallies = set()

    def w(self, line: str) -> None:
        self.lines.append(line)

    def issue(self, unit: str, lat: str, occ: Optional[str] = None,
              deps: Tuple[int, ...] = ()) -> None:
        """Inline ``Core._issue``: leaves the start cycle in ``_t``."""
        u = unit[0]
        self.units.add(unit)
        self.w(f"_t = f_{u} if f_{u} > clk else clk")
        seen = set()
        for reg in deps:
            if reg == 0 or reg in seen:
                continue
            seen.add(reg)
            self.dep_regs.add(reg)
            self.w(f"_dp = rr[{reg}]")
            self.w("if _dp > _t: _t = _dp")
        occ = lat if occ is None else occ
        self.w(f"f_{u} = _t + {occ}")
        self.w(f"b_{u} += {occ}")
        self.w("clk = _t + 1")

    def scalar_tally(self) -> None:
        self.has_scalar_tally = True
        self.w("ns += 1")

    def write_reg(self, reg: int, value: str, ready: str) -> None:
        if reg != 0:
            self.w(f"r[{reg}] = {value}")
            self.w(f"rr[{reg}] = {ready}")


def _emit_instr(em: _Emit, i: int, t: Tuple) -> None:
    """Emit the exact equivalent of the interpreter handler for ``t``.

    ``C[2*i]`` is the instruction's ``imm`` field, ``C[2*i + 1]`` its
    ``offset`` field; everything else is baked into the source.
    """
    op, rs, rt, rd, re, _, _, funct, flags = (
        t[0], t[1], t[2], t[3], t[4], t[5], t[6], t[7], t[8]
    )
    imm = f"C[{2 * i}]"
    off = f"C[{2 * i + 1}]"

    if op in _SCALAR2_OPS:
        a, b = f"r[{rs}]", f"r[{rt}]"
        expr = {
            int(Op.SC_ADD): f"{a} + {b}",
            int(Op.SC_SUB): f"{a} - {b}",
            int(Op.SC_MUL): f"{a} * {b}",
            int(Op.SC_SLT): f"1 if {a} < {b} else 0",
            int(Op.SC_AND): f"{a} & {b}",
            int(Op.SC_OR): f"{a} | {b}",
            int(Op.SC_XOR): f"{a} ^ {b}",
            int(Op.SC_SLL): f"{a} << ({b} & 31)",
            int(Op.SC_SRL): f"({a} & 0xFFFFFFFF) >> ({b} & 31)",
        }[op]
        em.w(f"_v = {expr}")
        em.issue("scalar", "1", deps=(rs, rt))
        em.write_reg(rd, "_v", "_t + 1")
        em.scalar_tally()
    elif op in (int(Op.SC_ADDI), int(Op.SC_MULI), int(Op.SC_SLTI)):
        a = f"r[{rs}]"
        expr = {
            int(Op.SC_ADDI): f"{a} + {imm}",
            int(Op.SC_MULI): f"{a} * {imm}",
            int(Op.SC_SLTI): f"1 if {a} < {imm} else 0",
        }[op]
        em.w(f"_v = {expr}")
        em.issue("scalar", "1", deps=(rs,))
        em.write_reg(rt, "_v", "_t + 1")
        em.scalar_tally()
    elif op == int(Op.SC_LUI):
        em.issue("scalar", "1")
        em.write_reg(rt, f"({off} & 0xFFFF) << 16", "_t + 1")
        em.scalar_tally()
    elif op == int(Op.SC_ORI):
        em.issue("scalar", "1", deps=(rs,))
        em.write_reg(rt, f"r[{rs}] | ({off} & 0xFFFF)", "_t + 1")
        em.scalar_tally()
    elif op == int(Op.SC_ADDIW):
        em.issue("scalar", "1", deps=(rs,))
        em.write_reg(rt, f"r[{rs}] + {off}", "_t + 1")
        em.scalar_tally()
    elif op == int(Op.MV_G2S):
        em.uses.add("sregs")
        em.issue("scalar", "1", deps=(rs,))
        em.w(f"_i = {imm}")
        em.w("if not 0 <= _i < len(s): "
             "raise SimulationError(f\"core {cid}: bad S_Reg index {_i}\")")
        em.w(f"s[_i] = r[{rs}]")
        em.scalar_tally()
    elif op == int(Op.MV_S2G):
        em.uses.add("sregs")
        em.issue("scalar", "1")
        em.write_reg(rt, f"s[{imm}]", "_t + 1")
        em.scalar_tally()
    elif op in (int(Op.NOP), int(Op.SYNC)):
        em.issue("scalar", "1")
    elif op == int(Op.MEM_CPY):
        em.uses.update(("mem", "cost"))
        em.w(f"_a = r[{rs}]")
        em.w(f"_b = r[{rt}] + {off}")
        em.w(f"_n = r[{rd}]")
        em.w("_m = _n if _n > 0 else 1")
        em.w("_c = (_m + LBW - 1) // LBW + LLT")
        em.w("if _a >= GB or _b >= GB:")
        em.w("    _g = (_m + GBW - 1) // GBW + GLT")
        em.w("    if _g > _c: _c = _g")
        em.issue("mem", "_c", deps=(rs, rt, rd))
        em.w("if _a >= GB or _b >= GB:")
        em.w("    _gc(core, _a, _b, _n, _t)")
        em.w("elif 0 <= _a and _a + _n <= LSZ and 0 <= _b and _b + _n <= LSZ:")
        em.w("    if _a + _n <= _b or _b + _n <= _a or _a == _b:")
        em.w("        lm[_b:_b + _n] = lm[_a:_a + _n]")
        em.w("    else:")
        em.w("        lm[_b:_b + _n] = lm[_a:_a + _n].copy()")
        em.w("    t_lr += _n; t_lw += _n")
        em.w("else:")
        em.w("    mem.write(cid, _b, mem.read(cid, _a, _n))")
        em.w("    t_lr += _n; t_lw += _n")
        em.tallies.update(("t_lr", "t_lw"))
    elif op == int(Op.MEM_LD):
        em.uses.update(("mem", "cost"))
        em.w(f"_a = r[{rs}] + {off}")
        em.w("_sg = _a >= GB")
        em.w("_c = (4 + LBW - 1) // LBW + LLT")
        em.w("if _sg:")
        em.w("    _g = (4 + GBW - 1) // GBW + GLT")
        em.w("    if _g > _c: _c = _g")
        em.issue("mem", "_c", deps=(rs,))
        em.w("_v = mem.read_word(cid, _a)")
        em.write_reg(rt, "_v", "_t + _c")
        em.w("_ce(core, 4, _sg, False, _t)")
    elif op == int(Op.MEM_ST):
        em.uses.update(("mem", "cost"))
        em.w(f"_a = r[{rs}] + {off}")
        em.w("_dg = _a >= GB")
        em.w("_c = (4 + LBW - 1) // LBW + LLT")
        em.w("if _dg:")
        em.w("    _g = (4 + GBW - 1) // GBW + GLT")
        em.w("    if _g > _c: _c = _g")
        em.issue("mem", "_c", deps=(rs, rt))
        em.w(f"mem.write_word(cid, _a, r[{rt}])")
        em.w("_ce(core, 4, False, _dg, _t)")
    elif op in (int(Op.MEM_GATHER), int(Op.MEM_SCATTER)):
        kind = "gather" if op == int(Op.MEM_GATHER) else "scatter"
        em.uses.update(("mem", "cost", "sregs"))
        em.w(f"_n = r[{rd}]")
        em.w("_ck = s[13]")
        em.w("_st = s[7]")
        em.w("if _ck <= 0 or _st <= 0 or _n < 0: "
             "raise SimulationError("
             f"f\"core {{cid}}: bad {kind} chunk={{_ck}} stride={{_st}}\")")
        em.w(f"_a = r[{rs}]")
        em.w(f"_b = r[{rt}]")
        em.w("_sp = (_n - 1) * _st + _ck if _n else 0")
        em.w("_nb = _n * _ck")
        em.w("_sg = _a >= GB")
        em.w("_dg = _b >= GB")
        em.w("_m = _nb if _nb > 0 else 1")
        em.w("_c = (_m + LBW - 1) // LBW + LLT")
        em.w("if _sg or _dg:")
        em.w("    _g = (_m + GBW - 1) // GBW + GLT")
        em.w("    if _g > _c: _c = _g")
        em.w("_c += _n")
        em.issue("mem", "_c", deps=(rs, rt, rd))
        em.w("if _n:")
        if op == int(Op.MEM_GATHER):
            em.w("    _w = mem.read(cid, _a, _sp)")
            em.w("    mem.write(cid, _b, _w[_gidx(_n, _ck, _st)])")
        else:
            em.w("    _x = mem.read(cid, _a, _nb)")
            em.w("    _w = mem.read(cid, _b, _sp)")
            em.w("    _w[_gidx(_n, _ck, _st)] = _x")
            em.w("    mem.write(cid, _b, _w)")
        em.w("_ce(core, _nb, _sg, _dg, _t)")
    elif op == int(Op.SEND):
        em.uses.update(("mem", "send"))
        em.w(f"_a = r[{rs}]")
        em.w(f"_d = r[{rt}]")
        em.w(f"_n = r[{rd}]")
        em.w("_m = _n if _n > 0 else 1")
        em.w("_c = (_m + FLT - 1) // FLT")
        em.issue("xfer", "_c", deps=(rs, rt, rd))
        em.w("if 0 <= _a and _a + _n <= LSZ:")
        em.w("    _x = lm[_a:_a + _n].copy()")
        em.w("else:")
        em.w("    _x = mem.read(cid, _a, _n)")
        em.w("_v = noc.transfer(cid, _d, _n, _t)")
        em.w("chip.deliver(cid, _d, _v, _x)")
        em.w("acct.noc_transfer(noc.energy_pj(_n, cid, _d))")
        em.w("t_lr += _n; t_lw += _n")
        em.tallies.update(("t_lr", "t_lw"))
    elif op == int(Op.CIM_LOAD):
        em.uses.update(("mem", "cim", "sregs"))
        em.w(f"_g = r[{rt}]")
        em.w("_rw = s[2]")
        em.w("_cl = s[3]")
        em.w("if not 0 <= _g < len(mgs): raise SimulationError("
             "f\"core {cid}: macro group {_g} out of range\")")
        em.w("if _rw <= 0 or _cl <= 0: raise SimulationError("
             "f\"core {cid}: CIM_LOAD with rows={_rw} cols={_cl}\")")
        em.w("_n = _rw * _cl")
        em.w(f"_a = r[{rs}]")
        em.w("if 0 <= _a and _a + _n <= LSZ:")
        em.w("    _x = lm[_a:_a + _n]")
        em.w("else:")
        em.w("    _x = mem.read(cid, _a, _n)")
        em.w("mgs[_g] = (_x.reshape(_rw, _cl).astype(np.int32), _rw, _cl)")
        em.issue("cim", "_rw + LLT", deps=(rs, rt))
        em.w("t_clb += _n; t_lr += _n")
        em.tallies.update(("t_clb", "t_lr"))
    elif op == int(Op.CIM_CFG):
        em.uses.update(("cim", "sregs"))
        em.w(f"_g = r[{rt}]")
        em.w("_rw = s[2]")
        em.w("_cl = s[3]")
        em.w("_e = mgs[_g]")
        em.w("if _e is None: raise SimulationError("
             "f\"core {cid}: CIM_CFG on empty MG {_g}\")")
        em.w("mgs[_g] = (_e[0], _rw, _cl)")
        em.issue("cim", "1", deps=(rt,))
    elif op == int(Op.CIM_MVM):
        em.uses.update(("mem", "cim"))
        em.w(f"_g = r[{rt}]")
        em.w("_e = mgs[_g]")
        em.w("if _e is None: raise SimulationError("
             "f\"core {cid}: CIM_MVM on unloaded macro group {_g}\")")
        em.w("_w, _rw, _cl = _e")
        em.w(f"_a = r[{rs}]")
        em.w("if 0 <= _a and _a + _rw <= LSZ:")
        em.w("    _x = lm[_a:_a + _rw].astype(np.int32)")
        em.w("else:")
        em.w("    _x = mem.read(cid, _a, _rw).astype(np.int32)")
        em.w("_v = _x @ _w[:_rw, :_cl]")
        em.w(f"_o = r[{re}]")
        if flags & 1:
            em.w("_n4 = 4 * _cl")
            em.w("if 0 <= _o and _o + _n4 <= LSZ:")
            em.w("    _v = _v + lm[_o:_o + _n4].view(np.int32)")
            em.w("else:")
            em.w("    _v = _v + mem.read_i32(cid, _o, _cl)")
        # _v is already int32 (int32 @ int32, plus int32 accumulate) and
        # freshly allocated, so the interpreter's astype copy is skipped.
        em.w("if 0 <= _o and _o + 4 * _cl <= LSZ:")
        em.w("    lm[_o:_o + 4 * _cl] = _v.view(np.int8)")
        em.w("else:")
        em.w("    mem.write_i32(cid, _o, _v)")
        em.issue("cim", "MVL", occ="MVI", deps=(rs, rt, re))
        em.w("t_mac += _rw * _cl; t_mvr += _rw; t_mvb += 4 * _cl")
        em.w("t_lr += _rw; t_lw += 4 * _cl")
        em.tallies.update(("t_mac", "t_mvr", "t_mvb", "t_lr", "t_lw"))
    elif op in _VEC_OPS:
        _emit_vec(em, op, rs, rt, rd, re, funct)
    elif op == int(Op.JMP):
        em.issue("scalar", "1")
    elif op in _BRANCH_OPS:
        a, b = f"r[{rs}]", f"r[{rt}]"
        cond = {
            int(Op.BEQ): f"{a} == {b}",
            int(Op.BNE): f"{a} != {b}",
            int(Op.BLT): f"{a} < {b}",
            int(Op.BGE): f"{a} >= {b}",
        }[op]
        em.w(f"_v = {cond}")
        em.issue("scalar", "1", deps=(rs, rt))
        em.scalar_tally()
    else:  # pragma: no cover - discovery never compiles these
        raise AssertionError(f"cannot compile opcode {op:#x}")


def _emit_vec(em: _Emit, op: int, rs: int, rt: int, rd: int, re: int,
              funct: int) -> None:
    """Mirror of ``core._h_vec`` for one concrete vector opcode."""
    em.uses.update(("mem", "vec"))

    def read8(reg: int, n: str, out: str, copy: bool = False) -> None:
        em.w(f"_a = r[{reg}]")
        em.w(f"if 0 <= _a and _a + {n} <= LSZ:")
        em.w(f"    {out} = lm[_a:_a + {n}]{'.copy()' if copy else ''}")
        em.w("else:")
        em.w(f"    {out} = mem.read(cid, _a, {n})")

    def read32(reg: int, n: str, out: str) -> None:
        em.w(f"_a = r[{reg}]")
        em.w(f"if 0 <= _a and _a + 4 * {n} <= LSZ:")
        em.w(f"    {out} = lm[_a:_a + 4 * {n}].view(np.int32)")
        em.w("else:")
        em.w(f"    {out} = mem.read_i32(cid, _a, {n})")

    def write8(reg: int, n: str, value: str) -> None:
        em.w(f"_o = r[{reg}]")
        em.w(f"if 0 <= _o and _o + {n} <= LSZ:")
        em.w(f"    lm[_o:_o + {n}] = {value}")
        em.w("else:")
        em.w(f"    mem.write(cid, _o, {value})")

    def write32(reg: int, n: str, value: str) -> None:
        em.w(f"_o = r[{reg}]")
        em.w(f"if 0 <= _o and _o + 4 * {n} <= LSZ:")
        em.w(f"    lm[_o:_o + 4 * {n}] = {value}.view(np.int8)")
        em.w("else:")
        em.w(f"    mem.write_i32(cid, _o, {value})")

    def energy(elems: str, br: str, bw: str) -> None:
        em.w(f"t_ve += {elems}; t_lr += {br}; t_lw += {bw}")
        em.tallies.update(("t_ve", "t_lr", "t_lw"))

    em.w(f"_n = r[{re}]")
    if op == int(Op.VEC_QNT):
        em.uses.add("sregs")
        read32(rs, "_n", "_x")
        em.w("_q = s[4]")
        em.w("if _q < 1: _q = 1")
        em.w("_y = requantize(_x, QuantParams(qmul=_q, qshift=s[5]))")
        write8(rd, "_n", "_y")
        energy("_n", "4 * _n", "_n")
    elif op == int(Op.VEC_ADD32):
        read32(rs, "_n", "_x")
        read32(rt, "_n", "_b")
        em.w("_y = _x + _b")
        write32(rd, "_n", "_y")
        energy("_n", "8 * _n", "4 * _n")
    elif op == int(Op.VEC_ACC32):
        read8(rs, "_n", "_x")
        em.w("_x = _x.astype(np.int32)")
        read32(rd, "_n", "_b")
        em.w("_y = _x + _b")
        write32(rd, "_n", "_y")
        energy("_n", "5 * _n", "4 * _n")
    elif op == int(Op.VEC_FILL):
        em.uses.add("sregs")
        em.w("_f = s[6] & 0xFF")
        em.w("_f = _f - 256 if _f >= 128 else _f")
        if funct == 4:
            em.w("_y = np.full(_n, _f, dtype=np.int32)")
            write32(rd, "_n", "_y")
            energy("_n", "0", "4 * _n")
        else:
            em.w("_y = np.full(_n, _f, dtype=np.int8)")
            write8(rd, "_n", "_y")
            energy("_n", "0", "_n")
    elif op == int(Op.VEC_CMUL):
        em.uses.add("sregs")
        em.w("_ch = s[12]")
        em.w("if _ch <= 0 or _n % _ch: raise SimulationError("
             "f\"core {cid}: VEC_CMUL length {_n} not a multiple of "
             "channel count {_ch}\")")
        read8(rs, "_n", "_x")
        read8(rt, "_ch", "_b")
        em.w("_y = cmul_i8(_x, np.tile(_b, _n // _ch))")
        write8(rd, "_n", "_y")
        energy("_n", "2 * _n", "_n")
    else:
        copy = op == int(Op.VEC_COPY)
        read8(rs, "_n", "_x", copy=copy)
        if op == int(Op.VEC_RELU):
            em.w("_y = np.maximum(_x, 0).astype(np.int8)")
        elif op == int(Op.VEC_RELU6):
            em.w("_y = np.clip(_x, 0, RELU6_CLIP).astype(np.int8)")
        elif op == int(Op.VEC_SILU):
            em.w("_y = apply_lut(_x, SILU_LUT)")
        elif op == int(Op.VEC_SIGMOID):
            em.w("_y = apply_lut(_x, SIGMOID_LUT)")
        elif op == int(Op.VEC_COPY):
            em.w("_y = _x")
        else:
            read8(rt, "_n", "_b")
            if op == int(Op.VEC_MAX):
                # max/min of int8 cannot overflow: same bits, no widening.
                em.w("_y = np.maximum(_x, _b)")
            elif op == int(Op.VEC_MIN):
                em.w("_y = np.minimum(_x, _b)")
            else:
                em.w("_b = _b.astype(np.int16)")
                em.w("_x16 = _x.astype(np.int16)")
                if op == int(Op.VEC_ADD):
                    em.w("_y = saturate_i8(_x16 + _b)")
                elif op == int(Op.VEC_SUB):
                    em.w("_y = saturate_i8(_x16 - _b)")
                else:
                    em.w("_y = saturate_i8(_x16 * _b)")
        write8(rd, "_n", "_y")
        energy("_n", "2 * _n", "_n")
    em.issue("vector", "(( _n if _n > 0 else 1) + LAN - 1) // LAN + VDP",
             deps=(rs, rt, rd, re))


def _build_source(shape: Tuple) -> Tuple[str, set, set, set]:
    """Generate the function source for one block shape.

    Returns (source, used units, dep registers, feature uses).
    """
    instrs, kind, term = shape
    em = _Emit()
    for i, t in enumerate(instrs):
        _emit_instr(em, i, t)

    length = len(instrs)
    tail = len(instrs) * 2        # C[tail] = fall pc, C[tail + 1] = target pc

    head: List[str] = []
    if kind == "loop":
        head.append("def _block(core, C, max_iter):")
    else:
        head.append("def _block(core, C):")
    body: List[str] = []
    body.append("r = core.regs")
    body.append("rr = core.reg_ready")
    body.append("clk = core.clock")
    body.append("acct = core.chip.acct")
    body.append("ni = 0")
    uf_needed = sorted(em.units)
    for unit in uf_needed:
        u = unit[0]
        body.append(f"f_{u} = core.unit_free['{unit}']")
        body.append(f"b_{u} = 0")
    if em.has_scalar_tally:
        body.append("ns = 0")
    if "sregs" in em.uses:
        body.append("s = core.sregs")
    if "mem" in em.uses:
        body.append("cid = core.core_id")
        body.append("mem = core.chip.memory")
        body.append("lm = mem.locals[cid]")
        body.append("LSZ = mem.local_size")
    if "cost" in em.uses:
        body.append("LBW = core._local_bw")
        body.append("LLT = core._local_lat")
        body.append("GBW = core._glb_bw")
        body.append("GLT = core._glb_lat")
    if "cim" in em.uses:
        body.append("mgs = core.mgs")
        body.append("MVL = core._mvm_latency")
        body.append("MVI = core._mvm_interval")
        if "cost" not in em.uses:
            body.append("LLT = core._local_lat")
    if "vec" in em.uses:
        body.append("LAN = core._lanes")
        body.append("VDP = core._vec_depth")
    if "send" in em.uses:
        body.append("chip = core.chip")
        body.append("noc = chip.noc")
        body.append("FLT = noc.flit_bytes")
    for tally in sorted(em.tallies):
        body.append(f"{tally} = 0")

    code_lines: List[str] = []
    if kind == "loop":
        code_lines.append("_it = 0")
        code_lines.append("_ex = False")
        code_lines.append("while True:")
        inner = ["    " + ln for ln in em.lines]
        code_lines.extend(inner)
        code_lines.append(f"    ni += {length}")
        code_lines.append("    if not _v:")
        code_lines.append("        _ex = True")
        code_lines.append("        break")
        code_lines.append("    _it += 1")
        code_lines.append("    if _it >= max_iter:")
        code_lines.append("        break")
    else:
        code_lines.extend(em.lines)
        code_lines.append(f"ni += {length}")

    epi: List[str] = []
    epi.append("core.clock = clk")
    if uf_needed:
        epi.append("uf = core.unit_free")
        epi.append("bz = core.busy")
        for unit in uf_needed:
            u = unit[0]
            epi.append(f"uf['{unit}'] = f_{u}")
            epi.append(f"bz['{unit}'] += b_{u}")
    epi.append("acct.n_instructions += ni")
    if em.has_scalar_tally:
        epi.append("acct.n_scalar_ops += ns")
    tally_field = {
        "t_lr": "local_bytes_read", "t_lw": "local_bytes_written",
        "t_mac": "macs", "t_mvr": "mvm_rows", "t_mvb": "mvm_result_bytes",
        "t_clb": "cim_load_bytes", "t_ve": "vec_elements",
    }
    for tally in sorted(em.tallies):
        epi.append(f"acct.{tally_field[tally]} += {tally}")
    epi.append("core.instructions_retired += ni")
    if kind == "loop":
        epi.append("return _ex")
    elif term == "branch":
        epi.append(f"return C[{tail + 1}] if _v else C[{tail}]")
    elif term == "jmp":
        epi.append(f"return C[{tail + 1}]")
    else:
        epi.append(f"return C[{tail}]")

    source = "\n".join(
        head + ["    " + ln for ln in body + code_lines + epi]
    )
    return source, em.units, em.dep_regs, em.uses


_EXEC_GLOBALS = {
    "np": np,
    "SimulationError": SimulationError,
    "QuantParams": QuantParams,
    "requantize": requantize,
    "saturate_i8": saturate_i8,
    "apply_lut": apply_lut,
    "cmul_i8": cmul_i8,
    "SILU_LUT": SILU_LUT,
    "SIGMOID_LUT": SIGMOID_LUT,
    "RELU6_CLIP": RELU6_CLIP,
    "GB": GLOBAL_BASE,
    "_ce": _copy_energy,
    "_gc": _global_copy,
    "_gidx": _gidx,
}

#: shape key -> (function, used units, dep regs)
_SHAPE_CACHE: Dict[Tuple, Tuple] = {}


def _compile_shape(shape: Tuple):
    entry = _SHAPE_CACHE.get(shape)
    if entry is None:
        if len(_SHAPE_CACHE) > 2048:
            _SHAPE_CACHE.clear()
        source, units, dep_regs, _ = _build_source(shape)
        namespace: Dict = {}
        exec(compile(source, "<blockengine>", "exec"), _EXEC_GLOBALS, namespace)
        entry = (namespace["_block"], frozenset(units), frozenset(dep_regs))
        _SHAPE_CACHE[shape] = entry
    return entry


# ---------------------------------------------------------------------------
# block discovery
# ---------------------------------------------------------------------------

class BlockInstance:
    """One compiled block of one program (shares its code by shape)."""

    __slots__ = (
        "fn", "consts", "start", "length", "is_loop", "exit_pc",
        "batch_ok", "code", "units", "dep_regs", "batch_fails",
        "cnt_reg", "bound_reg", "templates",
    )

    def __init__(self, fn, consts, start, length, is_loop, exit_pc,
                 batch_ok, code, units, dep_regs, cnt_reg, bound_reg):
        self.fn = fn
        self.consts = consts
        self.start = start
        self.length = length
        self.is_loop = is_loop
        self.exit_pc = exit_pc
        self.batch_ok = batch_ok
        self.code = code
        self.units = units
        self.dep_regs = dep_regs
        self.batch_fails = 0
        self.cnt_reg = cnt_reg
        self.bound_reg = bound_reg
        #: step-delta key -> plan template (None = provably never
        #: batchable under that delta, _TPL_CONCRETE = not symbolisable).
        self.templates: Dict[Tuple, object] = {}


class BlockProgram:
    """Block table for one translated program."""

    __slots__ = ("code", "table", "n")

    def __init__(self, code, table):
        self.code = code
        self.table = table
        self.n = len(code)


#: registry -> {program content digest: BlockProgram}; weakly keyed on
#: the registry object (see core._TRANSLATE_CACHE for the rationale).
_BP_CACHE = weakref.WeakKeyDictionary()

#: Minimum block length worth compiling (shorter runs fall back to the
#: interpreter's handlers through the trampoline).
_MIN_COMPILE_LEN = 2


def block_program_for(program, registry) -> BlockProgram:
    """Build (or fetch) the block table for ``program``.

    Content-addressed: cores -- and simulator instances -- running
    structurally identical programs share one :class:`BlockProgram` and
    therefore every compiled block.
    """
    from repro.sim.core import translate_program

    per_registry = _BP_CACHE.get(registry)
    if per_registry is None:
        per_registry = _BP_CACHE.setdefault(registry, {})
    digest = program.content_digest()
    bp = per_registry.get(digest)
    if bp is not None:
        return bp
    if len(per_registry) > 512:
        per_registry.clear()

    code = translate_program(program, registry)
    n = len(code)
    #: Straight-line loop bodies from the program's own block metadata
    #: (isa/program.py); discovery below must agree with it on which
    #: branch-terminated blocks iterate in place.
    loop_heads = {
        (block.head, block.branch) for block in program.loop_blocks()
    }
    leaders = {0}
    for pc, t in enumerate(code):
        op = t[0]
        if op in _BRANCH_OPS or op == int(Op.JMP):
            leaders.add(pc + 1)
            target = pc + t[6]
            if 0 <= target < n:
                leaders.add(target)
        elif op in _EXIT_OPS or op not in _SUPPORTED:
            leaders.add(pc + 1)

    table: List[Optional[BlockInstance]] = [None] * n
    starts = sorted(leaders)
    for idx, start in enumerate(starts):
        if start >= n:
            continue
        limit = starts[idx + 1] if idx + 1 < len(starts) else n
        end = start
        term = "fall"
        while end < limit:
            op = code[end][0]
            if op in _EXIT_OPS or op not in _SUPPORTED:
                break
            end += 1
            if op in _BRANCH_OPS:
                term = "branch"
                break
            if op == int(Op.JMP):
                term = "jmp"
                break
        length = end - start
        if length < _MIN_COMPILE_LEN:
            continue
        block_code = tuple(code[start:end])
        is_loop = term == "branch" and (start, end - 1) in loop_heads
        shape = (
            tuple((t[0], t[1], t[2], t[3], t[4], 0, 0, t[7], t[8])
                  for t in block_code),
            "loop" if is_loop else "line",
            term,
        )
        fn, units, dep_regs = _compile_shape(shape)
        consts: List[int] = []
        for t in block_code:
            consts.append(t[5])
            consts.append(t[6])
        consts.append(end)                      # fall-through pc
        if term == "branch":
            consts.append(end - 1 + block_code[-1][6])
        elif term == "jmp":
            consts.append(end - 1 + block_code[-1][6])
        else:
            consts.append(end)
        batch_ok = (
            is_loop
            and block_code[-1][0] == int(Op.BLT)
            and all(t[0] in _BATCHABLE for t in block_code[:-1])
        )
        inst = BlockInstance(
            fn=fn, consts=tuple(consts), start=start, length=length,
            is_loop=is_loop, exit_pc=end, batch_ok=batch_ok,
            code=block_code, units=units, dep_regs=dep_regs,
            cnt_reg=block_code[-1][1], bound_reg=block_code[-1][2],
        )
        table[start] = inst

    bp = BlockProgram(code, table)
    per_registry[digest] = bp
    return bp


# ---------------------------------------------------------------------------
# trampoline
# ---------------------------------------------------------------------------

def run_core(core, max_instructions: int = 50_000_000) -> int:
    """Engine replacement for ``Core.run`` (same contract, same states)."""
    bp = core._blockprog
    table = bp.table
    code = bp.code
    n = bp.n
    dispatch = core._dispatch
    acct = core.chip.acct
    start_retired = core.instructions_retired
    while True:
        pc = core.pc
        if not 0 <= pc < n:
            raise SimulationError(
                f"core {core.core_id}: pc {pc} outside program "
                f"of {n} instructions"
            )
        inst = table[pc]
        if inst is None:
            tup = code[pc]
            acct.instruction()
            result = dispatch[tup[0]](core, tup)
            core.instructions_retired += 1
            ENGINE_STATS["fallback_instructions"] += 1
            if result is not None:
                core.state = result
                return result
        elif inst.is_loop:
            budget = max_instructions - (
                core.instructions_retired - start_retired
            )
            core.pc = _run_loop(core, inst, budget, max_instructions)
        else:
            core.pc = inst.fn(core, inst.consts)
        if core.instructions_retired - start_retired >= max_instructions:
            raise SimulationError(
                f"core {core.core_id}: runaway execution "
                f"(> {max_instructions} instructions without blocking)"
            )


# ---------------------------------------------------------------------------
# loop driver: warm-up, steady-state detection, batched replay
# ---------------------------------------------------------------------------

_ACCT_FIELDS = (
    "n_instructions", "n_scalar_ops", "macs", "mvm_rows",
    "mvm_result_bytes", "cim_load_bytes", "vec_elements",
    "local_bytes_read", "local_bytes_written", "global_bytes",
)

# snapshot layout offsets
_S_CLK = 0
_S_UF = 1                  # 5 entries
_S_BUSY = 6                # 5 entries
_S_REGS = 11               # 32 entries
_S_RR = 43                 # 32 entries
_S_SREGS = 75              # 16 entries
_S_ACCT = 91               # len(_ACCT_FIELDS) entries
_S_RETIRED = _S_ACCT + len(_ACCT_FIELDS)
_S_LEN = _S_RETIRED + 1


def _snapshot(core) -> Tuple[int, ...]:
    uf = core.unit_free
    bz = core.busy
    acct = core.chip.acct
    return (
        core.clock,
        uf["scalar"], uf["vector"], uf["cim"], uf["mem"], uf["xfer"],
        bz["scalar"], bz["vector"], bz["cim"], bz["mem"], bz["xfer"],
        *core.regs,
        *core.reg_ready,
        *core.sregs,
        acct.n_instructions, acct.n_scalar_ops, acct.macs, acct.mvm_rows,
        acct.mvm_result_bytes, acct.cim_load_bytes, acct.vec_elements,
        acct.local_bytes_read, acct.local_bytes_written, acct.global_bytes,
        core.instructions_retired,
    )


def _apply_delta(core, d: Tuple[int, ...], m: int) -> None:
    core.clock += m * d[_S_CLK]
    uf = core.unit_free
    bz = core.busy
    for i, unit in enumerate(_UNITS):
        dv = d[_S_UF + i]
        if dv:
            uf[unit] += m * dv
        dv = d[_S_BUSY + i]
        if dv:
            bz[unit] += m * dv
    r = core.regs
    rr = core.reg_ready
    s = core.sregs
    for i in range(32):
        dv = d[_S_REGS + i]
        if dv:
            r[i] += m * dv
        dv = d[_S_RR + i]
        if dv:
            rr[i] += m * dv
    for i in range(16):
        dv = d[_S_SREGS + i]
        if dv:
            s[i] += m * dv
    acct = core.chip.acct
    for i, field in enumerate(_ACCT_FIELDS):
        dv = d[_S_ACCT + i]
        if dv:
            setattr(acct, field, getattr(acct, field) + m * dv)
    core.instructions_retired += m * d[_S_RETIRED]


def _eager_sound(inst: BlockInstance, prev: Tuple[int, ...],
                 delta: Tuple[int, ...]) -> bool:
    """Whether ONE measured delta already proves steady timing.

    The loop body is a max-plus system over (clock, unit-free times,
    dependency reg-ready times).  The measured iteration is the steady
    behaviour -- and therefore extrapolates -- iff every timing component
    the body consults either advanced in lockstep with the clock (its
    relative offset is unchanged, so every max resolves identically next
    iteration) or was already in the past *before* the measured iteration
    and did not move (it lost every max then and keeps losing as the
    clock grows).  A component that advanced by anything else may have
    absorbed a one-off stall that will not recur, so the usual
    two-equal-deltas filter must arbitrate instead.
    """
    d_clk = delta[_S_CLK]
    clk0 = prev[_S_CLK]
    for i, unit in enumerate(_UNITS):
        if unit in inst.units:
            d = delta[_S_UF + i]
            if d != d_clk and not (d == 0 and prev[_S_UF + i] <= clk0):
                return False
    for reg in inst.dep_regs:
        d = delta[_S_RR + reg]
        if d != d_clk and not (d == 0 and prev[_S_RR + reg] <= clk0):
            return False
    return True


def _txns_affine(prev_txns, txns, d_clk: int) -> bool:
    """Whether two consecutive iterations' NoC transaction lists match in
    (src, dst, nbytes) with start times advancing by exactly the clock
    step -- the empirical twin of the planner's affine model."""
    if not txns:
        return not prev_txns
    if prev_txns is None or len(prev_txns) != len(txns):
        return False
    for (s0, d0, n0, t0), (s1, d1, n1, t1) in zip(prev_txns, txns):
        if s0 != s1 or d0 != d1 or n0 != n1 or t1 - t0 != d_clk:
            return False
    return True


def _run_loop(core, inst: BlockInstance, budget: int,
              max_instructions: int) -> int:
    """Execute one loop block to completion; returns the exit pc."""
    fn = inst.fn
    consts = inst.consts
    span = inst.length
    if budget <= 0:
        raise SimulationError(
            f"core {core.core_id}: runaway execution "
            f"(> {max_instructions} instructions without blocking)"
        )
    max_iter = max(1, budget // span)
    ENGINE_STATS["loop_entries"] += 1
    retired0 = core.instructions_retired

    def stepped_exit():
        ENGINE_STATS["loop_iterations_stepped"] += (
            core.instructions_retired - retired0
        ) // span
        return inst.exit_pc

    noc = core.chip.noc
    batchable = (
        inst.batch_ok and inst.batch_fails < _MAX_BATCH_FAILS
        # Timeline capture needs every per-link reservation event;
        # batching elides them, so it is disabled while recording.
        and noc.timeline is None
    )
    if batchable:
        # Quick trip estimate (exact when the counter steps by 1, an
        # over-estimate otherwise -- either way fine for a threshold).
        est = core.regs[inst.bound_reg] - core.regs[inst.cnt_reg]
        if est < _MIN_BATCH:
            batchable = False

    if not batchable:
        exited = fn(core, consts, max_iter)
        if not exited:
            raise SimulationError(
                f"core {core.core_id}: runaway execution "
                f"(> {max_instructions} instructions without blocking)"
            )
        return stepped_exit()

    # Record this core's NoC transactions while stepping, so a body that
    # streams from global memory exposes its per-iteration transaction
    # pattern to the batch planner.  The chip scheduler runs one core at
    # a time, so the trace sees only this loop's messages.
    outer_trace = noc.trace
    trace: List[Tuple[int, int, int, int]] = []
    noc.trace = trace
    try:
        prev_delta = None
        prev = _snapshot(core)
        prev_txns = None
        tpos = 0
        done = 0
        while True:
            exited = fn(core, consts, 1)
            done += 1
            txns = trace[tpos:]
            tpos = len(trace)
            if exited:
                return stepped_exit()
            if done >= max_iter:
                raise SimulationError(
                    f"core {core.core_id}: runaway execution "
                    f"(> {max_instructions} instructions without blocking)"
                )
            now = _snapshot(core)
            delta = tuple(a - b for a, b in zip(now, prev))
            eager = False
            if delta == prev_delta:
                attempt = _txns_affine(prev_txns, txns, delta[_S_CLK])
            elif prev_delta is None and _eager_sound(inst, prev, delta):
                # First delta, timing provably steady: attempt now.  A
                # miss costs no batch_fails strike -- the plan
                # cross-check arbitrates, not the two-delta filter.
                attempt = True
                eager = True
            else:
                attempt = False
            if attempt:
                ENGINE_STATS["batch_attempts"] += 1
                if txns:
                    ENGINE_STATS["noc_batch_attempts"] += 1
                if _try_batch(core, inst, delta, max_iter - done, txns):
                    ENGINE_STATS["batch_successes"] += 1
                    ENGINE_STATS["loop_iterations_stepped"] += done
                    ENGINE_STATS["loop_iterations_batched"] += (
                        core.instructions_retired - retired0
                    ) // span - done
                    return inst.exit_pc
                if not eager:
                    inst.batch_fails += 1
                    exited = fn(core, consts, max_iter - done)
                    if not exited:
                        raise SimulationError(
                            f"core {core.core_id}: runaway execution "
                            f"(> {max_instructions} instructions "
                            f"without blocking)"
                        )
                    return stepped_exit()
            if done > 24:
                # No steady state in sight; run the rest in the JIT loop.
                exited = fn(core, consts, max_iter - done)
                if not exited:
                    raise SimulationError(
                        f"core {core.core_id}: runaway execution "
                        f"(> {max_instructions} instructions "
                        f"without blocking)"
                    )
                return stepped_exit()
            prev_delta = delta
            prev = now
            prev_txns = txns
    finally:
        noc.trace = outer_trace


class _Bail(Exception):
    """Internal: the batched replay cannot be applied; fall back."""


def _noc_plan_ok(core, gcpys, noc_txns) -> bool:
    """Every NoC transaction the measured iteration issued must be
    explained by a planned global copy, in body order, with matching
    direction and size -- otherwise the batch cannot account for the
    loop's NoC side effects and must not apply."""
    if len(gcpys) != len(noc_txns):
        return False
    cid = core.core_id
    for op, (src, dst, nbytes, _) in zip(gcpys, noc_txns):
        if src != GLOBAL_PORT or dst != cid or nbytes != op[3]:
            return False
    return True


def _try_batch(core, inst: BlockInstance, delta: Tuple[int, ...],
               max_iterations: int, noc_txns) -> bool:
    """Attempt closed-form + batched replay of the remaining iterations.

    Called with the core at a loop head whose measured state delta is
    proven steady (two identical deltas, or one delta passing
    :func:`_eager_sound`).  ``noc_txns`` is the last stepped iteration's
    NoC transaction list.  Returns True when the loop was completed
    (state advanced past the final branch), False to fall back to the
    generated loop -- in which case no state has been mutated.
    ``max_iterations`` bounds the replayable trip count (the caller's
    instruction budget), so a runaway counted loop still surfaces as the
    interpreter's runaway error instead of an allocation blow-up.
    """
    d_clk = delta[_S_CLK]
    uf = core.unit_free
    clk = core.clock
    # Deadness check: every timing component the body consults must either
    # advance in lockstep with the clock or already be in the past (and
    # therefore lose every future max() against start times >= clock).
    for i, unit in enumerate(_UNITS):
        if unit in inst.units and delta[_S_UF + i] != d_clk:
            if uf[unit] > clk:
                return False
    rr = core.reg_ready
    for reg in inst.dep_regs:
        if delta[_S_RR + reg] != d_clk and rr[reg] > clk:
            return False

    try:
        template = _template_for(core, inst, delta)
        if template is None:
            # Symbolically proven: this loop never batches under this
            # step delta, for any entry state.  Skip the affine walk.
            return False
        if template is _TPL_CONCRETE:
            plan, m = _plan_batch(core, inst, delta, max_iterations)
        else:
            try:
                plan, m = template.instantiate(core, max_iterations)
                ENGINE_STATS["template_hits"] += 1
            except _TemplateUnfit:
                # A runtime guard (e.g. macro-group shape) diverged from
                # the build-time environment; plan concretely this entry.
                ENGINE_STATS["template_misfits"] += 1
                plan, m = _plan_batch(core, inst, delta, max_iterations)
        gcpys = [op for op in plan[0] if op[0] == "gcpy"]
        if gcpys or noc_txns:
            if not _noc_plan_ok(core, gcpys, noc_txns):
                raise _Bail()
            noc = core.chip.noc
            acct = core.chip.acct
            energies = [
                noc.energy_pj(nbytes, src, dst)
                for src, dst, nbytes, _ in noc_txns
            ]

            def commit_noc():
                # Runs between the executor's pure compute phase and its
                # memory flush: a replay refusal here aborts the batch
                # with no state mutated anywhere.
                if not noc.replay_affine(noc_txns, d_clk, m):
                    ENGINE_STATS["noc_batch_contention_bailouts"] += 1
                    raise _Bail()
                # The NoC energy accumulator is a float, so the closed
                # form must repeat the per-message additions in stepped
                # order to stay bit-identical.
                for _ in range(m):
                    for pj in energies:
                        acct.noc_transfer(pj)

            _exec_batch(core, plan, m, commit_noc)
            ENGINE_STATS["noc_batch_successes"] += 1
        else:
            _exec_batch(core, plan, m)
    except _Bail:
        return False
    _apply_delta(core, delta, m)
    return True


def _plan_batch(core, inst: BlockInstance, delta: Tuple[int, ...],
                max_iterations: int):
    """Affine walk of the loop body with concrete (value, step) pairs.

    Produces the batched dataflow plan and the remaining trip count, or
    raises :class:`_Bail`.  Read-only: performs no mutation.
    """
    regs = [(v, delta[_S_REGS + i]) for i, v in enumerate(core.regs)]
    sregs = [(v, delta[_S_SREGS + i]) for i, v in enumerate(core.sregs)]
    entry_regs = list(regs)
    entry_sregs = list(sregs)
    mgs = core.mgs
    ops: List[Tuple] = []
    writes: List[Tuple[int, int, int]] = []     # (base, step, nbytes)
    vmg_shapes: Dict[int, Tuple[int, int]] = {}  # mgs loaded inside the body
    entry_mg_used: set = set()                   # mgs read from entry state

    def invariant(pair):
        v, s = pair
        if s != 0:
            raise _Bail()
        return v

    body = inst.code[:-1]
    branch = inst.code[-1]
    for t in body:
        op = t[0]
        rs, rt, rd, re = t[1], t[2], t[3], t[4]
        imm, off, funct, flags = t[5], t[6], t[7], t[8]
        if op == int(Op.SC_ADD):
            _wr(regs, rd, (regs[rs][0] + regs[rt][0],
                           regs[rs][1] + regs[rt][1]))
        elif op == int(Op.SC_SUB):
            _wr(regs, rd, (regs[rs][0] - regs[rt][0],
                           regs[rs][1] - regs[rt][1]))
        elif op == int(Op.SC_MUL):
            a, b = regs[rs], regs[rt]
            if a[1] == 0:
                _wr(regs, rd, (a[0] * b[0], a[0] * b[1]))
            elif b[1] == 0:
                _wr(regs, rd, (a[0] * b[0], a[1] * b[0]))
            else:
                raise _Bail()
        elif op in (int(Op.SC_SLT), int(Op.SC_AND), int(Op.SC_OR),
                    int(Op.SC_XOR), int(Op.SC_SLL), int(Op.SC_SRL)):
            a = invariant(regs[rs])
            b = invariant(regs[rt])
            if op == int(Op.SC_SLT):
                v = 1 if a < b else 0
            elif op == int(Op.SC_AND):
                v = a & b
            elif op == int(Op.SC_OR):
                v = a | b
            elif op == int(Op.SC_XOR):
                v = a ^ b
            elif op == int(Op.SC_SLL):
                v = a << (b & 31)
            else:
                v = (a & 0xFFFFFFFF) >> (b & 31)
            _wr(regs, rd, (v, 0))
        elif op == int(Op.SC_ADDI):
            _wr(regs, rt, (regs[rs][0] + imm, regs[rs][1]))
        elif op == int(Op.SC_MULI):
            _wr(regs, rt, (regs[rs][0] * imm, regs[rs][1] * imm))
        elif op == int(Op.SC_SLTI):
            _wr(regs, rt, (1 if invariant(regs[rs]) < imm else 0, 0))
        elif op == int(Op.SC_LUI):
            _wr(regs, rt, ((off & 0xFFFF) << 16, 0))
        elif op == int(Op.SC_ORI):
            _wr(regs, rt, (invariant(regs[rs]) | (off & 0xFFFF), 0))
        elif op == int(Op.SC_ADDIW):
            _wr(regs, rt, (regs[rs][0] + off, regs[rs][1]))
        elif op == int(Op.MV_G2S):
            if not 0 <= imm < 16:
                raise _Bail()
            sregs[imm] = regs[rs]
        elif op == int(Op.MV_S2G):
            _wr(regs, rt, sregs[imm])
        elif op in (int(Op.NOP), int(Op.SYNC)):
            pass
        elif op == int(Op.MEM_CPY):
            n = invariant(regs[rd])
            if n <= 0:
                raise _Bail()
            sb, ss = regs[rs]
            db, ds = regs[rt][0] + off, regs[rt][1]
            if db >= GLOBAL_BASE:
                # Global-memory writes are visible to other cores;
                # replay order matters, so never batch them.
                raise _Bail()
            if sb >= GLOBAL_BASE:
                # Weight/activation streaming: read the global image,
                # write locally, one NoC message per iteration.
                ops.append(("gcpy", sb, ss, n, db, ds))
            else:
                ops.append(("cpy", sb, ss, n, db, ds, None))
            writes.append((db, ds, n))
        elif op == int(Op.MEM_GATHER):
            count = invariant(regs[rd])
            chunk = invariant(sregs[13])
            stride = invariant(sregs[7])
            if count <= 0 or chunk <= 0 or stride <= 0:
                raise _Bail()
            sb, ss = regs[rs]
            db, ds = regs[rt]
            span = (count - 1) * stride + chunk
            nb = count * chunk
            ops.append(("cpy", sb, ss, span, db, ds,
                        (count, chunk, stride, nb)))
            writes.append((db, ds, nb))
        elif op == int(Op.CIM_LOAD):
            mg = invariant(regs[rt])
            rows = invariant(sregs[2])
            cols = invariant(sregs[3])
            if not 0 <= mg < len(mgs) or rows <= 0 or cols <= 0:
                raise _Bail()
            if mg in entry_mg_used:
                # An earlier MVM on this mg reads the *previous*
                # iteration's load: a loop-carried macro-group
                # dependency the batched replay does not model.
                raise _Bail()
            sb, ss = regs[rs]
            ops.append(("cimload", sb, ss, rows, cols, mg))
            vmg_shapes[mg] = (rows, cols)
        elif op == int(Op.CIM_MVM):
            mg = invariant(regs[rt])
            if not 0 <= mg < len(mgs):
                raise _Bail()
            shape = vmg_shapes.get(mg)
            virt = shape is not None
            if virt:
                rows, cols = shape
            else:
                if mgs[mg] is None:
                    raise _Bail()
                _, rows, cols = mgs[mg]
                entry_mg_used.add(mg)
            vb, vs = regs[rs]
            ob, os_ = regs[re]
            ops.append(("mvm", vb, vs, rows, cols, ob, os_, mg, flags, virt))
            writes.append((ob, os_, 4 * cols))
        elif op in _VEC_OPS:
            n = invariant(regs[re])
            if n <= 0:
                raise _Bail()
            if op == int(Op.VEC_QNT):
                qmul = max(1, invariant(sregs[4]))
                qshift = invariant(sregs[5])
                ops.append(("qnt", regs[rs][0], regs[rs][1], n,
                            regs[rd][0], regs[rd][1], qmul, qshift))
                writes.append((regs[rd][0], regs[rd][1], n))
            elif op == int(Op.VEC_ADD32):
                ops.append(("add32", regs[rs][0], regs[rs][1],
                            regs[rt][0], regs[rt][1], n,
                            regs[rd][0], regs[rd][1]))
                writes.append((regs[rd][0], regs[rd][1], 4 * n))
            elif op == int(Op.VEC_ACC32):
                if regs[rd][1] != 0:
                    raise _Bail()
                ops.append(("acc32", regs[rs][0], regs[rs][1], n,
                            regs[rd][0]))
                writes.append((regs[rd][0], 0, 4 * n))
            elif op == int(Op.VEC_FILL):
                value = invariant(sregs[6]) & 0xFF
                value = value - 256 if value >= 128 else value
                ops.append(("fill", value, funct, n,
                            regs[rd][0], regs[rd][1]))
                nb = 4 * n if funct == 4 else n
                writes.append((regs[rd][0], regs[rd][1], nb))
            elif op == int(Op.VEC_CMUL):
                ch = invariant(sregs[12])
                if ch <= 0 or n % ch:
                    raise _Bail()
                ops.append(("cmul", regs[rs][0], regs[rs][1],
                            regs[rt][0], regs[rt][1], ch, n,
                            regs[rd][0], regs[rd][1]))
                writes.append((regs[rd][0], regs[rd][1], n))
            elif op in (int(Op.VEC_ADD), int(Op.VEC_SUB), int(Op.VEC_MUL),
                        int(Op.VEC_MAX), int(Op.VEC_MIN)):
                ops.append(("bin", op, regs[rs][0], regs[rs][1],
                            regs[rt][0], regs[rt][1], n,
                            regs[rd][0], regs[rd][1]))
                writes.append((regs[rd][0], regs[rd][1], n))
            else:
                ops.append(("un", op, regs[rs][0], regs[rs][1], n,
                            regs[rd][0], regs[rd][1]))
                writes.append((regs[rd][0], regs[rd][1], n))
        else:
            raise _Bail()

    # Cross-check the affine model against the measured per-iteration
    # deltas: the walked end-of-body value of every register must equal
    # its entry value plus its measured delta.
    for i in range(32):
        v0, s0 = entry_regs[i]
        v1, s1 = regs[i]
        if v1 != v0 + s0 or s1 != s0:
            raise _Bail()
    for i in range(16):
        v0, s0 = entry_sregs[i]
        v1, s1 = sregs[i]
        if v1 != v0 + s0 or s1 != s0:
            raise _Bail()

    # Trip count from the closing BLT: body executes while cnt < bound at
    # the branch; walked end-of-body values give the first batched branch.
    cnt_v, cnt_s = regs[branch[1]]
    bound_v, bound_s = regs[branch[2]]
    if cnt_s <= 0 or bound_s != 0:
        raise _Bail()
    if cnt_v >= bound_v:
        m = 1
    else:
        m = 1 + (bound_v - cnt_v + cnt_s - 1) // cnt_s
    if m > max_iterations:
        # Over the caller's instruction budget: fall back to the stepped
        # path, which raises the interpreter's runaway error cleanly.
        raise _Bail()

    # Every write must stay inside local memory for the whole batch.
    spans = [_span(b, s, l, m) for b, s, l in writes]
    lsz = core.chip.memory.local_size
    for lo, hi in spans:
        if lo < 0 or hi > lsz:
            raise _Bail()
    # Pairwise write-overlap check: distinct regions must never touch a
    # common byte at any pair of iterations (iteration-aware for regions
    # sharing a step; conservative span test otherwise).
    for i in range(len(writes)):
        for j in range(i + 1, len(writes)):
            if writes[i] == writes[j]:
                continue
            if _writes_collide(writes[i], writes[j], spans[i], spans[j], m):
                raise _Bail()

    return (ops, writes), m


def _writes_collide(w1, w2, span1, span2, m: int) -> bool:
    """Write-vs-write hazard between two planned regions.

    Two *step-0* writes overlapping is benign even though they touch the
    same bytes every iteration: the flush applies final rows in op order
    (exactly the stepped outcome) and reads resolve through the same
    newest-cover forwarding the stepped execution implies.  Every other
    overlap is a real hazard.  Note :func:`_regions_collide` itself must
    stay strict -- a read piece resolved from *memory* does treat a
    step-0 overlap as loop-carried interference.
    """
    if w1[1] == 0 and w2[1] == 0:
        return False
    return _regions_collide(w1, w2, span1, span2, m)


def _regions_collide(w1, w2, span1, span2, m: int) -> bool:
    """Whether two write regions can touch a common byte across any pair
    of iterations ``(i, j)`` in ``[0, m)``."""
    b1, s1, l1 = w1
    b2, s2, l2 = w2
    lo1, hi1 = span1
    lo2, hi2 = span2
    if hi1 <= lo2 or hi2 <= lo1:
        return False
    if s1 == s2 and s1 > 0:
        # Bytes collide iff [b2 + k*s, b2 + k*s + l2) meets [b1, b1 + l1)
        # for some iteration difference k with |k| < m.
        s = s1
        k_lo = (b1 - b2 - l2) // s + 1
        k_hi = (b1 - b2 + l1 - 1) // s
        k_lo = max(k_lo, -(m - 1))
        k_hi = min(k_hi, m - 1)
        return k_lo <= k_hi
    if s1 == s2 == 0:
        return b1 < b2 + l2 and b2 < b1 + l1
    return True


def _wr(regs, index: int, pair) -> None:
    if index != 0:
        regs[index] = pair


def _span(b: int, s: int, l: int, m: int) -> Tuple[int, int]:
    lo = b + (s * (m - 1) if s < 0 else 0)
    hi = b + l + (s * (m - 1) if s > 0 else 0)
    return lo, hi


# ---------------------------------------------------------------------------
# plan templates: cache the affine walk + hazard analysis per loop instance
# ---------------------------------------------------------------------------
#
# The affine walk (:func:`_plan_batch`) re-runs at every loop entry even
# though, for a given per-iteration step delta, its *structure* never
# changes: operand bases are affine in the entry registers, and every
# structural decision (which ops batch, their lengths, the hazard
# geometry) depends only on the steps and the program immediates.  A
# :class:`_PlanTemplate` captures one symbolic walk -- values as linear
# expressions over the 48 entry slots (32 registers + 16 S-registers) --
# and re-entries instantiate it with a handful of dot products instead of
# re-walking the body.  The pairwise write-collision verdict is memoised
# on the translation-invariant signature (trip count, relative bases),
# so the hazard analysis is also amortised; only the cheap O(writes)
# bounds check runs fresh per entry.  Instantiated plans are identical
# tuples to what the concrete walk would build, so batched replay stays
# bit-exact; anything the symbolic walk cannot decide for *all* entry
# states falls back to the concrete walk (never to a wrong answer).

class _TemplateUnfit(Exception):
    """The symbolic walk (or a runtime guard) cannot cover this entry;
    fall back to the concrete affine walk."""


#: Sentinel: the walk is not symbolisable; always plan concretely.
_TPL_CONCRETE = object()

#: Sentinel: no cached decision yet for this (instance, delta) pair.
_TPL_UNSET = object()

#: Linear expression over entry slots: (constant, ((slot, coeff), ...)).
#: Slots 0..31 are registers, 32..47 are S-registers.
_E_ZERO = (0, ())


def _e_const(c: int) -> Tuple:
    return (c, ())


def _e_slot(slot: int) -> Tuple:
    return (0, ((slot, 1),))


def _e_is_const(e: Tuple) -> bool:
    return not e[1]


def _e_combine(a: Tuple, b: Tuple, sign: int) -> Tuple:
    coeffs = dict(a[1])
    for slot, k in b[1]:
        v = coeffs.get(slot, 0) + sign * k
        if v:
            coeffs[slot] = v
        else:
            coeffs.pop(slot, None)
    return (a[0] + sign * b[0], tuple(sorted(coeffs.items())))


def _e_scale(a: Tuple, k: int) -> Tuple:
    if k == 0:
        return _E_ZERO
    return (a[0] * k, tuple((slot, c * k) for slot, c in a[1]))


def _e_shift(a: Tuple, c: int) -> Tuple:
    return (a[0] + c, a[1])


class _PlanTemplate:
    """One symbolic batch plan, instantiable against any entry state."""

    __slots__ = (
        "ops", "writes", "cnt", "bound", "guards", "mvm_guards", "_hazards",
    )

    def __init__(self, ops, writes, cnt, bound, guards, mvm_guards):
        self.ops = ops            # op tuples with exprs in base positions
        self.writes = writes      # (base expr, step, nbytes)
        self.cnt = cnt            # (expr, step) of the BLT counter
        self.bound = bound        # expr of the BLT bound (step 0)
        self.guards = guards      # (expr, expected value) bindings
        self.mvm_guards = mvm_guards   # (mg, rows, cols) build-time shapes
        self._hazards: Dict[Tuple, bool] = {}

    def instantiate(self, core, max_iterations: int):
        """Materialise the concrete ``(plan, m)`` for the current entry.

        Raises :class:`_Bail` exactly where the concrete walk would
        (trip budget, bounds, collisions) and :class:`_TemplateUnfit`
        when a guard shows the build-time environment no longer matches
        (the caller then re-walks concretely).
        """
        regs = core.regs
        sregs = core.sregs
        mgs = core.mgs

        def ev(e: Tuple) -> int:
            value, coeffs = e
            for slot, k in coeffs:
                value += k * (regs[slot] if slot < 32 else sregs[slot - 32])
            return value

        for expr, expected in self.guards:
            if ev(expr) != expected:
                raise _TemplateUnfit()
        for mg, rows, cols in self.mvm_guards:
            if not 0 <= mg < len(mgs) or mgs[mg] is None:
                raise _Bail()
            entry = mgs[mg]
            if entry[1] != rows or entry[2] != cols:
                raise _TemplateUnfit()

        cnt_v = ev(self.cnt[0])
        cnt_s = self.cnt[1]
        bound_v = ev(self.bound)
        if cnt_v >= bound_v:
            m = 1
        else:
            m = 1 + (bound_v - cnt_v + cnt_s - 1) // cnt_s
        if m > max_iterations:
            raise _Bail()

        ops: List[Tuple] = []
        for op in self.ops:
            tag = op[0]
            if tag == "cpy":
                _, sb, ss, n, db, ds, gather = op
                ops.append(("cpy", ev(sb), ss, n, ev(db), ds, gather))
            elif tag == "gcpy":
                _, sb, ss, n, db, ds = op
                ops.append(("gcpy", ev(sb), ss, n, ev(db), ds))
            elif tag == "cimload":
                _, sb, ss, rows, cols, mg = op
                ops.append(("cimload", ev(sb), ss, rows, cols, mg))
            elif tag == "mvm":
                _, vb, vs, rows, cols, ob, os_, mg, flags, virt = op
                ops.append(
                    ("mvm", ev(vb), vs, rows, cols, ev(ob), os_, mg, flags,
                     virt)
                )
            elif tag == "qnt":
                _, ab, as_, n, db, ds, qmul, qshift = op
                ops.append(("qnt", ev(ab), as_, n, ev(db), ds, qmul, qshift))
            elif tag == "add32":
                _, ab, as_, bb, bs, n, db, ds = op
                ops.append(("add32", ev(ab), as_, ev(bb), bs, n, ev(db), ds))
            elif tag == "acc32":
                _, ab, as_, n, db = op
                ops.append(("acc32", ev(ab), as_, n, ev(db)))
            elif tag == "fill":
                _, value, funct, n, db, ds = op
                ops.append(("fill", value, funct, n, ev(db), ds))
            elif tag == "cmul":
                _, ab, as_, scb, scs, ch, n, db, ds = op
                ops.append(
                    ("cmul", ev(ab), as_, ev(scb), scs, ch, n, ev(db), ds)
                )
            elif tag == "bin":
                _, vop, ab, as_, bb, bs, n, db, ds = op
                ops.append(
                    ("bin", vop, ev(ab), as_, ev(bb), bs, n, ev(db), ds)
                )
            else:  # "un"
                _, vop, ab, as_, n, db, ds = op
                ops.append(("un", vop, ev(ab), as_, n, ev(db), ds))

        writes = [(ev(b), s, l) for b, s, l in self.writes]
        spans = [_span(b, s, l, m) for b, s, l in writes]
        lsz = core.chip.memory.local_size
        for lo, hi in spans:
            if lo < 0 or hi > lsz:
                raise _Bail()
        # The pairwise collision verdict depends only on *relative*
        # bases (steps, lengths and m are template constants), so it is
        # memoised across entries that differ by a pure translation.
        base0 = writes[0][0] if writes else 0
        signature = (m, tuple(b - base0 for b, _, _ in writes))
        collide = self._hazards.get(signature)
        if collide is None:
            collide = False
            for i in range(len(writes)):
                for j in range(i + 1, len(writes)):
                    if writes[i] == writes[j]:
                        continue
                    if _writes_collide(
                        writes[i], writes[j], spans[i], spans[j], m
                    ):
                        collide = True
                        break
                if collide:
                    break
            if len(self._hazards) > 64:
                self._hazards.clear()
            self._hazards[signature] = collide
        if collide:
            raise _Bail()
        return (ops, writes), m


def _template_key(delta: Tuple[int, ...]) -> Tuple[int, ...]:
    """The delta components the affine walk consults: reg + sreg steps."""
    return (
        delta[_S_REGS:_S_REGS + 32] + delta[_S_SREGS:_S_SREGS + 16]
    )


def _template_for(core, inst: BlockInstance, delta: Tuple[int, ...]):
    """Fetch (or build) the plan template for this instance + step delta.

    Returns a :class:`_PlanTemplate`, ``None`` (the loop provably never
    batches under this delta, regardless of entry state), or
    :data:`_TPL_CONCRETE` (not symbolisable; use the concrete walk).
    """
    key = _template_key(delta)
    entry = inst.templates.get(key, _TPL_UNSET)
    if entry is _TPL_UNSET:
        if len(inst.templates) > 4:
            inst.templates.clear()
        ENGINE_STATS["template_builds"] += 1
        try:
            entry = _build_template(core, inst, delta)
        except _Bail:
            entry = None
        except _TemplateUnfit:
            entry = _TPL_CONCRETE
        inst.templates[key] = entry
    return entry


def _build_template(core, inst: BlockInstance, delta: Tuple[int, ...]):
    """Symbolic twin of :func:`_plan_batch`.

    Walks the loop body once with register *values* as linear
    expressions over the entry slots while steps stay concrete (they
    derive from the delta and immediates only).  Where the walk needs a
    concrete value (an op length, a macro-group index, a multiplier),
    the build-time value is *bound* and recorded as an instantiation
    guard, so the template applies to every entry that agrees on those
    values -- in practice all of them, since bound values are loop
    parameters while operand bases stay symbolic.

    Raises :class:`_Bail` only for bails that hold for every entry
    state (pure walks, cached as "never batches") and
    :class:`_TemplateUnfit` when the walk cannot be symbolised (cached
    as "plan concretely").  Build-time macro-group shapes become
    instantiation guards too, so a template never outlives the
    environment it was derived from.
    """
    regs: List[Tuple[Tuple, int]] = [
        (_e_slot(i), delta[_S_REGS + i]) for i in range(32)
    ]
    sregs: List[Tuple[Tuple, int]] = [
        (_e_slot(32 + i), delta[_S_SREGS + i]) for i in range(16)
    ]
    entry_steps = [s for _, s in regs]
    entry_ssteps = [s for _, s in sregs]
    entry_regs = list(core.regs)
    entry_sregs = list(core.sregs)
    mgs = core.mgs
    ops: List[Tuple] = []
    writes: List[Tuple[Tuple, int, int]] = []
    guards: List[Tuple[Tuple, int]] = []
    mvm_guards: List[Tuple[int, int, int]] = []
    vmg_shapes: Dict[int, Tuple[int, int]] = {}
    entry_mg_used: set = set()
    pure = True  # no guard bound yet -> bails are entry-independent

    def ev_entry(e: Tuple) -> int:
        value, coeffs = e
        for slot, k in coeffs:
            value += k * (
                entry_regs[slot] if slot < 32 else entry_sregs[slot - 32]
            )
        return value

    def bind(e: Tuple) -> int:
        """The concrete value of ``e``, guarded if entry-dependent."""
        nonlocal pure
        if _e_is_const(e):
            return e[0]
        value = ev_entry(e)
        guards.append((e, value))
        pure = False
        return value

    def definite_bail() -> None:
        """Bail that is universal only while no value has been bound."""
        raise _Bail() if pure else _TemplateUnfit()

    def invariant(pair) -> Tuple:
        e, s = pair
        if s != 0:
            definite_bail()
        return e

    body = inst.code[:-1]
    branch = inst.code[-1]
    for t in body:
        op = t[0]
        rs, rt, rd, re = t[1], t[2], t[3], t[4]
        imm, off, funct, flags = t[5], t[6], t[7], t[8]
        if op == int(Op.SC_ADD):
            _wr(regs, rd, (_e_combine(regs[rs][0], regs[rt][0], 1),
                           regs[rs][1] + regs[rt][1]))
        elif op == int(Op.SC_SUB):
            _wr(regs, rd, (_e_combine(regs[rs][0], regs[rt][0], -1),
                           regs[rs][1] - regs[rt][1]))
        elif op == int(Op.SC_MUL):
            (a_e, a_s), (b_e, b_s) = regs[rs], regs[rt]
            if a_s == 0:
                # concrete result: (a0 * b0, a0 * b1)
                if _e_is_const(b_e) and b_s == 0 and not _e_is_const(a_e):
                    _wr(regs, rd, (_e_scale(a_e, b_e[0]), 0))
                else:
                    c = bind(a_e)
                    _wr(regs, rd, (_e_scale(b_e, c), c * b_s))
            elif b_s == 0:
                # concrete result: (a0 * b0, a1 * b0)
                c = bind(b_e)
                _wr(regs, rd, (_e_scale(a_e, c), a_s * c))
            else:
                definite_bail()
        elif op in (int(Op.SC_SLT), int(Op.SC_AND), int(Op.SC_OR),
                    int(Op.SC_XOR), int(Op.SC_SLL), int(Op.SC_SRL)):
            a = bind(invariant(regs[rs]))
            b = bind(invariant(regs[rt]))
            if op == int(Op.SC_SLT):
                v = 1 if a < b else 0
            elif op == int(Op.SC_AND):
                v = a & b
            elif op == int(Op.SC_OR):
                v = a | b
            elif op == int(Op.SC_XOR):
                v = a ^ b
            elif op == int(Op.SC_SLL):
                v = a << (b & 31)
            else:
                v = (a & 0xFFFFFFFF) >> (b & 31)
            _wr(regs, rd, (_e_const(v), 0))
        elif op == int(Op.SC_ADDI):
            _wr(regs, rt, (_e_shift(regs[rs][0], imm), regs[rs][1]))
        elif op == int(Op.SC_MULI):
            _wr(regs, rt, (_e_scale(regs[rs][0], imm), regs[rs][1] * imm))
        elif op == int(Op.SC_SLTI):
            v = 1 if bind(invariant(regs[rs])) < imm else 0
            _wr(regs, rt, (_e_const(v), 0))
        elif op == int(Op.SC_LUI):
            _wr(regs, rt, (_e_const((off & 0xFFFF) << 16), 0))
        elif op == int(Op.SC_ORI):
            v = bind(invariant(regs[rs])) | (off & 0xFFFF)
            _wr(regs, rt, (_e_const(v), 0))
        elif op == int(Op.SC_ADDIW):
            _wr(regs, rt, (_e_shift(regs[rs][0], off), regs[rs][1]))
        elif op == int(Op.MV_G2S):
            if not 0 <= imm < 16:
                raise _Bail()
            sregs[imm] = regs[rs]
        elif op == int(Op.MV_S2G):
            _wr(regs, rt, sregs[imm])
        elif op in (int(Op.NOP), int(Op.SYNC)):
            pass
        elif op == int(Op.MEM_CPY):
            n = bind(invariant(regs[rd]))
            if n <= 0:
                definite_bail()
            sb, ss = regs[rs]
            db, ds = _e_shift(regs[rt][0], off), regs[rt][1]
            if ev_entry(db) >= GLOBAL_BASE:
                # Entry-dependent classification: other entries may keep
                # the destination local, so never cache a definite bail.
                raise _TemplateUnfit()
            if ev_entry(sb) >= GLOBAL_BASE:
                # Classified by this entry's value, unguarded: an entry
                # that flips the source's locality fails the executor's
                # region bounds check and falls back safely.
                ops.append(("gcpy", sb, ss, n, db, ds))
            else:
                ops.append(("cpy", sb, ss, n, db, ds, None))
            writes.append((db, ds, n))
        elif op == int(Op.MEM_GATHER):
            count = bind(invariant(regs[rd]))
            chunk = bind(invariant(sregs[13]))
            stride = bind(invariant(sregs[7]))
            if count <= 0 or chunk <= 0 or stride <= 0:
                definite_bail()
            sb, ss = regs[rs]
            db, ds = regs[rt]
            span = (count - 1) * stride + chunk
            nb = count * chunk
            ops.append(("cpy", sb, ss, span, db, ds,
                        (count, chunk, stride, nb)))
            writes.append((db, ds, nb))
        elif op == int(Op.CIM_LOAD):
            mg = bind(invariant(regs[rt]))
            rows = bind(invariant(sregs[2]))
            cols = bind(invariant(sregs[3]))
            if not 0 <= mg < len(mgs) or rows <= 0 or cols <= 0:
                definite_bail()
            if mg in entry_mg_used:
                definite_bail()
            sb, ss = regs[rs]
            ops.append(("cimload", sb, ss, rows, cols, mg))
            vmg_shapes[mg] = (rows, cols)
        elif op == int(Op.CIM_MVM):
            mg = bind(invariant(regs[rt]))
            if not 0 <= mg < len(mgs):
                definite_bail()
            shape = vmg_shapes.get(mg)
            virt = shape is not None
            if virt:
                rows, cols = shape
            else:
                if mgs[mg] is None:
                    # Environment-dependent (another entry may have the
                    # MG loaded): cannot be cached as a definite bail.
                    raise _TemplateUnfit()
                _, rows, cols = mgs[mg]
                mvm_guards.append((mg, rows, cols))
                entry_mg_used.add(mg)
            vb, vs = regs[rs]
            ob, os_ = regs[re]
            ops.append(("mvm", vb, vs, rows, cols, ob, os_, mg, flags, virt))
            writes.append((ob, os_, 4 * cols))
        elif op in _VEC_OPS:
            n = bind(invariant(regs[re]))
            if n <= 0:
                definite_bail()
            if op == int(Op.VEC_QNT):
                qmul = max(1, bind(invariant(sregs[4])))
                qshift = bind(invariant(sregs[5]))
                ops.append(("qnt", regs[rs][0], regs[rs][1], n,
                            regs[rd][0], regs[rd][1], qmul, qshift))
                writes.append((regs[rd][0], regs[rd][1], n))
            elif op == int(Op.VEC_ADD32):
                ops.append(("add32", regs[rs][0], regs[rs][1],
                            regs[rt][0], regs[rt][1], n,
                            regs[rd][0], regs[rd][1]))
                writes.append((regs[rd][0], regs[rd][1], 4 * n))
            elif op == int(Op.VEC_ACC32):
                if regs[rd][1] != 0:
                    definite_bail()
                ops.append(("acc32", regs[rs][0], regs[rs][1], n,
                            regs[rd][0]))
                writes.append((regs[rd][0], 0, 4 * n))
            elif op == int(Op.VEC_FILL):
                value = bind(invariant(sregs[6])) & 0xFF
                value = value - 256 if value >= 128 else value
                ops.append(("fill", value, funct, n,
                            regs[rd][0], regs[rd][1]))
                nb = 4 * n if funct == 4 else n
                writes.append((regs[rd][0], regs[rd][1], nb))
            elif op == int(Op.VEC_CMUL):
                ch = bind(invariant(sregs[12]))
                if ch <= 0 or n % ch:
                    definite_bail()
                ops.append(("cmul", regs[rs][0], regs[rs][1],
                            regs[rt][0], regs[rt][1], ch, n,
                            regs[rd][0], regs[rd][1]))
                writes.append((regs[rd][0], regs[rd][1], n))
            elif op in (int(Op.VEC_ADD), int(Op.VEC_SUB), int(Op.VEC_MUL),
                        int(Op.VEC_MAX), int(Op.VEC_MIN)):
                ops.append(("bin", op, regs[rs][0], regs[rs][1],
                            regs[rt][0], regs[rt][1], n,
                            regs[rd][0], regs[rd][1]))
                writes.append((regs[rd][0], regs[rd][1], n))
            else:
                ops.append(("un", op, regs[rs][0], regs[rs][1], n,
                            regs[rd][0], regs[rd][1]))
                writes.append((regs[rd][0], regs[rd][1], n))
        else:
            definite_bail()

    # Symbolic cross-check, the template twin of _plan_batch's numeric
    # one: every end-of-body value must equal its entry value plus the
    # measured step.  An identical expression match holds for every
    # entry state (no runtime check needed); any other shape is guarded
    # numerically -- the guard is exactly the concrete walk's check, so
    # entries it rejects fall back to the concrete walk.
    def cross_check(slot: int, pair, step0: int) -> None:
        nonlocal pure
        e, s = pair
        if s != step0:
            definite_bail()
        if e == _e_shift(_e_slot(slot), step0):
            return
        diff = _e_combine(e, _e_slot(slot), -1)
        if ev_entry(diff) != step0:
            # The concrete walk bails this entry too, but the mismatch
            # is entry-dependent; never cache it as a definite bail.
            raise _TemplateUnfit()
        guards.append((diff, step0))
        pure = False

    for i in range(32):
        cross_check(i, regs[i], entry_steps[i])
    for i in range(16):
        cross_check(32 + i, sregs[i], entry_ssteps[i])

    cnt_e, cnt_s = regs[branch[1]]
    bound_e, bound_s = regs[branch[2]]
    if cnt_s <= 0 or bound_s != 0:
        definite_bail()
    return _PlanTemplate(
        ops, writes, (cnt_e, cnt_s), bound_e, guards, mvm_guards
    )


def _exec_batch(core, plan, m: int, pre_flush=None) -> None:
    """Run the batched dataflow for ``m`` iterations and flush memory.

    Phase A computes every value (raising :class:`_Bail` without side
    effects when a region cannot be resolved); phase B flushes.
    ``pre_flush``, when given, runs between the phases: it may still
    raise :class:`_Bail` (nothing has been mutated yet) but must leave
    no side effects behind when it does -- it is how the NoC replay
    commits atomically with the memory flush.
    """
    ops, plan_writes = plan
    mem = core.chip.memory
    lm = mem.locals[core.core_id]
    gm = mem.global_mem
    lsz = mem.local_size
    mgs = core.mgs
    out: List[Tuple[int, int, int, np.ndarray]] = []
    vmgs: Dict[int, np.ndarray] = {}
    mg_final: Dict[int, Tuple[np.ndarray, int, int]] = {}
    all_spans = [_span(b, s, l, m) for b, s, l in plan_writes]

    def _piece_hazard(pb, s, plen, forwarded):
        """Bail on loop-carried interference with this read piece.

        A forwarded piece is shadowed by its (newest, same-step, whole-
        piece) cover, so only differently-stepped writes endanger it; a
        memory-resolved piece must not collide with any planned write.
        """
        region = (pb, s, plen)
        pspan = _span(pb, s, plen, m)
        for w, wspan in zip(plan_writes, all_spans):
            if forwarded and w[1] == s:
                continue
            if _regions_collide(region, w, pspan, wspan, m):
                raise _Bail()

    def read(b, s, l):
        """Resolve an ``(M, l)`` int8 view of the read region, composing
        forwarded slices of earlier writes with strided memory reads."""
        lo, hi = _span(b, s, l, m)
        if lo < 0 or hi > lsz:
            raise _Bail()
        pieces = []
        off = 0
        while off < l:
            pb = b + off
            rem = l - off
            plen = rem
            chosen = None
            chosen_idx = -1
            for k in range(len(out) - 1, -1, -1):
                wb, ws, wl, arr = out[k]
                if ws == s and wb <= pb < wb + wl:
                    chosen = out[k]
                    chosen_idx = k
                    plen = min(plen, wb + wl - pb)
                    break
            if chosen is None:
                # memory piece up to the next same-step write start
                for wb, ws, wl, arr in out:
                    if ws == s and pb < wb < pb + plen:
                        plen = wb - pb
            else:
                # a newer same-step write starting strictly inside the
                # piece shadows the chosen cover from that point on
                for wb, ws, wl, arr in out[chosen_idx + 1:]:
                    if ws == s and pb < wb < pb + plen:
                        plen = wb - pb
            _piece_hazard(pb, s, plen, chosen is not None)
            if chosen is not None:
                wb, _, _, arr = chosen
                o = pb - wb
                pieces.append((off, plen, arr[:, o:o + plen]))
            elif s == 0:
                row = lm[pb:pb + plen].copy()
                pieces.append((off, plen, np.broadcast_to(row, (m, plen))))
            elif s > 0:
                # zero-copy strided window over local memory (bounds were
                # checked above); consumers read it before any flush.
                view = np.lib.stride_tricks.as_strided(
                    lm[pb:], shape=(m, plen), strides=(s, 1)
                )
                pieces.append((off, plen, view))
            else:
                idx = (
                    pb
                    + np.arange(m, dtype=np.int64)[:, None] * s
                    + np.arange(plen, dtype=np.int64)[None, :]
                )
                pieces.append((off, plen, lm[idx]))
            off += plen
        if len(pieces) == 1:
            return pieces[0][2]
        buf = np.empty((m, l), dtype=np.int8)
        for off, plen, arr in pieces:
            buf[:, off:off + plen] = arr
        return buf

    # Map each op to its slot in ``plan_writes`` (cimload is the only op
    # that plans no memory write).
    _w_of_op: List[int] = []
    _wi = 0
    for _op in ops:
        if _op[0] == "cimload":
            _w_of_op.append(-1)
        else:
            _w_of_op.append(_wi)
            _wi += 1

    def read_acc_init(b, l, op_index):
        """Initial int32 row for a cumsum accumulator.

        Must be memory-resolved and untouched by any planned write other
        than the accumulating op's own -- another op writing even the
        *identical* region (e.g. a VEC_FILL reset each iteration) breaks
        the running-sum recurrence the cumsum closed form assumes.
        """
        if b < 0 or b + l > lsz:
            raise _Bail()
        own = _w_of_op[op_index]
        for k, sp in enumerate(all_spans):
            if k != own and sp[0] < b + l and b < sp[1]:
                raise _Bail()
        return lm[b:b + l].copy().view(np.int32)

    def as_i32(arr):
        return np.ascontiguousarray(arr).view(np.int32)

    for op_index, op in enumerate(ops):
        tag = op[0]
        if tag == "cpy":
            _, sb, ss, l, db, ds, gather = op
            data = read(sb, ss, l)
            if gather is not None:
                data = np.ascontiguousarray(data)[:, _gidx(*gather[:3])]
                l = gather[0] * gather[1]
            out.append((db, ds, l, data))
        elif tag == "gcpy":
            _, sb, ss, l, db, ds = op
            lo, hi = _span(sb, ss, l, m)
            if lo < GLOBAL_BASE or hi - GLOBAL_BASE > gm.size:
                raise _Bail()
            b0 = sb - GLOBAL_BASE
            if ss == 0:
                row = gm[b0:b0 + l].copy()
                data = np.broadcast_to(row, (m, l))
            elif ss > 0:
                # zero-copy window is safe: plans never write global
                # memory, so the view stays valid through the flush
                data = np.lib.stride_tricks.as_strided(
                    gm[b0:], shape=(m, l), strides=(ss, 1)
                )
            else:
                idx = (
                    b0
                    + np.arange(m, dtype=np.int64)[:, None] * ss
                    + np.arange(l, dtype=np.int64)[None, :]
                )
                data = gm[idx]
            out.append((db, ds, l, data))
        elif tag == "cimload":
            _, sb, ss, rows, cols, mg = op
            data = read(sb, ss, rows * cols)
            # Kept int8: the MVM handler casts to int32 before its einsum
            # accumulates, so values match the interpreter's int32 store.
            mats = np.ascontiguousarray(data).reshape(m, rows, cols)
            vmgs[mg] = mats
            mg_final[mg] = (mats, rows, cols)
        elif tag == "mvm":
            _, vb, vs, rows, cols, ob, os_, mg, flags, virt = op
            if virt:
                mats = vmgs[mg]
            else:
                entry = mgs[mg]
                if entry is None or entry[1] != rows or entry[2] != cols:
                    raise _Bail()
            vec = read(vb, vs, rows)
            if virt:
                # int32 wraparound addition is associative, so einsum's
                # accumulation order matches sequential MVMs bit-exactly.
                res = np.einsum(
                    "mr,mrc->mc",
                    vec.astype(np.int32),
                    mats.astype(np.int32),
                )
            else:
                res = vec.astype(np.int32) @ entry[0][:rows, :cols]
            if flags & 1:
                if os_ == 0:
                    # Loop-carried accumulation into one row: forward it
                    # as a running sum when the region is untouched by
                    # any other planned write (read() would have to
                    # resolve a step-0 self-read, which it refuses).
                    try:
                        prev = read(ob, os_, 4 * cols)
                        res = res + as_i32(prev)
                    except _Bail:
                        init = read_acc_init(ob, 4 * cols, op_index)
                        res = init[None, :] + np.cumsum(
                            res, axis=0, dtype=np.int32
                        )
                else:
                    prev = read(ob, os_, 4 * cols)
                    res = res + as_i32(prev)
            res = np.ascontiguousarray(res.astype(np.int32))
            out.append((ob, os_, 4 * cols, res.view(np.int8)))
        elif tag == "qnt":
            _, ab, as_, n, db, ds, qmul, qshift = op
            acc = as_i32(read(ab, as_, 4 * n))
            y = requantize(acc, QuantParams(qmul=qmul, qshift=qshift))
            out.append((db, ds, n, np.ascontiguousarray(y)))
        elif tag == "add32":
            _, ab, as_, bb, bs, n, db, ds = op
            a = as_i32(read(ab, as_, 4 * n))
            b = as_i32(read(bb, bs, 4 * n))
            y = np.ascontiguousarray((a + b).astype(np.int32))
            out.append((db, ds, 4 * n, y.view(np.int8)))
        elif tag == "acc32":
            _, ab, as_, n, db = op
            src = np.ascontiguousarray(read(ab, as_, n)).astype(np.int32)
            init = read_acc_init(db, 4 * n, op_index)
            y = init[None, :] + np.cumsum(src, axis=0, dtype=np.int32)
            y = np.ascontiguousarray(y.astype(np.int32))
            out.append((db, 0, 4 * n, y.view(np.int8)))
        elif tag == "fill":
            _, value, funct, n, db, ds = op
            if funct == 4:
                row = np.full(n, value, dtype=np.int32).view(np.int8)
                out.append((db, ds, 4 * n,
                            np.broadcast_to(row, (m, 4 * n))))
            else:
                row = np.full(n, value, dtype=np.int8)
                out.append((db, ds, n, np.broadcast_to(row, (m, n))))
        elif tag == "cmul":
            _, ab, as_, scb, scs, ch, n, db, ds = op
            x = read(ab, as_, n)
            sc = read(scb, scs, ch)
            tiled = np.tile(np.ascontiguousarray(sc), (1, n // ch))
            y = cmul_i8(np.ascontiguousarray(x), tiled)
            out.append((db, ds, n, np.ascontiguousarray(y)))
        elif tag == "bin":
            _, vop, ab, as_, bb, bs, n, db, ds = op
            a = read(ab, as_, n)
            b = read(bb, bs, n)
            if vop == int(Op.VEC_MAX):
                y = np.maximum(a, b)
            elif vop == int(Op.VEC_MIN):
                y = np.minimum(a, b)
            else:
                a16 = np.ascontiguousarray(a).astype(np.int16)
                b16 = np.ascontiguousarray(b).astype(np.int16)
                if vop == int(Op.VEC_ADD):
                    y = saturate_i8(a16 + b16)
                elif vop == int(Op.VEC_SUB):
                    y = saturate_i8(a16 - b16)
                else:
                    y = saturate_i8(a16 * b16)
            out.append((db, ds, n, np.ascontiguousarray(y)))
        elif tag == "un":
            _, vop, ab, as_, n, db, ds = op
            x = read(ab, as_, n)
            if vop == int(Op.VEC_RELU):
                y = np.maximum(x, 0).astype(np.int8)
            elif vop == int(Op.VEC_RELU6):
                y = np.clip(x, 0, RELU6_CLIP).astype(np.int8)
            elif vop == int(Op.VEC_SILU):
                y = apply_lut(x, SILU_LUT)
            elif vop == int(Op.VEC_SIGMOID):
                y = apply_lut(x, SIGMOID_LUT)
            else:  # VEC_COPY
                y = np.ascontiguousarray(x)
            out.append((db, ds, n, y))
        else:  # pragma: no cover
            raise _Bail()

    if pre_flush is not None:
        pre_flush()

    # Phase B: flush in op order.
    for mg, shape in mg_final.items():
        mats, rows, cols = shape
        mgs[mg] = (mats[-1].astype(np.int32), rows, cols)
    for b, s, l, arr in out:
        if s == 0:
            lm[b:b + l] = arr[-1]
        elif s >= l:
            np.lib.stride_tricks.as_strided(
                lm[b:], shape=(m, l), strides=(s, 1)
            )[:] = arr
        elif -s >= l:
            idx = (
                b
                + np.arange(m, dtype=np.int64)[:, None] * s
                + np.arange(l, dtype=np.int64)[None, :]
            )
            lm[idx] = arr
        else:
            for i in range(m):
                lm[b + i * s:b + i * s + l] = arr[i]
