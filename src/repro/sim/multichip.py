"""Multi-chip simulation: lock-step pipeline of chip simulators.

A :class:`~repro.compiler.pipeline.MultiChipModel` carries one compiled
single-chip workload per shard plus the explicit
:class:`~repro.compiler.pipeline.InterChipTransfer` schedule between
them.  :class:`MultiChipSimulator` instantiates one unchanged
:class:`~repro.sim.chip.ChipSimulator` per chip (hot-block engine and
all) and executes the pipeline:

1. chips run in shard order; chip ``k`` starts at the cycle its last
   inbound transfer arrives (chip 0 starts at 0);
2. when a chip finishes, its outbound transfers depart over the modeled
   chip-to-chip link (:class:`~repro.config.InterChipConfig`): each
   ordered chip pair has a dedicated point-to-point link, transfers on
   the same link serialise, and a transfer of ``n`` bytes occupies its
   link for ``ceil(n / bandwidth)`` cycles and arrives ``latency``
   cycles later;
3. transfer payloads are moved between the chips' global memories, so
   simulation remains functionally exact and the final outputs can be
   validated bit-exactly against the golden model.

The same closed-form schedule (:func:`pipeline_schedule`) prices
inter-chip transfers in the fast analytical model
(:func:`repro.sim.fastmodel.analyze_sharded`), so the two fidelity
levels share one timing contract.  See ``docs/ARCHITECTURE.md``
("Multi-chip sharding").

**Batched streaming** (``docs/ARCHITECTURE.md``, "Batched streaming
inference"): :meth:`MultiChipSimulator.run_streaming` injects ``B``
independent inputs into the chip pipeline.  Input ``i+1`` enters shard 0
while input ``i`` occupies shard 1, so sustained throughput is bounded by
the *bottleneck* resource (slowest shard or busiest link), not the
end-to-end makespan.  Each input executes in full per-input isolation --
fresh chip state, no cross-input carry-over -- so per-input outputs stay
bit-identical to ``B`` independent single-input runs.
:func:`streaming_schedule` is the timing recurrence and
:func:`steady_state_interval` its closed-form steady-state law
(``makespan(B) = makespan(1) + (B-1) * bottleneck``), shared with
:func:`repro.sim.fastmodel.analyze_sharded`.
"""

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.config import ArchConfig, InterChipConfig
from repro.errors import SimulationError
from repro.sim.chip import ChipSimulator
from repro.sim.report import SimulationReport, group_energy_mj

#: (src_chip, dst_chip, nbytes) -- the schedule-level view of a transfer.
TransferEdge = Tuple[int, int, int]


def streaming_schedule(
    batch_chip_cycles: Sequence[Sequence[int]],
    transfers: Sequence[TransferEdge],
    link: InterChipConfig,
    releases: Optional[Sequence[int]] = None,
    service_time=None,
    link_time=None,
) -> Tuple[List[List[int]], List[List[int]], List[int], int]:
    """Timing recurrence for ``B`` inputs streamed through the pipeline.

    ``batch_chip_cycles[i][k]`` is chip ``k``'s execution time for input
    ``i``; ``transfers`` lists the per-input (src, dst, nbytes) edges in
    schedule order (src < dst).  ``releases[i]`` is the cycle input
    ``i`` becomes available to the system (``None`` = every input is
    available at cycle 0, the PR-4 batched special case -- the
    continuous-arrival generalisation behind :mod:`repro.serve`).
    Resource constraints:

    - input ``i`` cannot enter the first chip before ``releases[i]``
      (inputs are served FIFO, in submission order);
    - chip ``k`` processes inputs in order: input ``i`` starts once chip
      ``k`` has finished input ``i-1`` *and* every inbound transfer for
      input ``i`` has fully arrived;
    - all transfers of input ``i`` out of a chip depart after that chip
      finishes input ``i``; transfers sharing a (src, dst) link
      serialise across the whole stream in (input, schedule) order, each
      occupying the link for ``serialization_cycles`` and arriving
      ``transfer_cycles`` after departure.

    so ``start[i][k] = max(release_i if k == 0, finish[i-1][k], last
    inbound arrival)``.  Returns ``(starts, finishes, input_finishes,
    makespan)``: per-input per-chip start/finish cycles, the completion
    cycle of each input (its last chip finish), and the stream makespan.
    With one input released at 0 this degenerates to
    :func:`pipeline_schedule` exactly; with all-zero releases it is
    bit-identical to the ``releases=None`` batched schedule.

    ``service_time`` / ``link_time`` are the fault-injection hooks
    (:mod:`repro.faults`): ``service_time(k, start, base)`` returns chip
    ``k``'s (possibly slowed) occupancy for a pass starting at ``start``
    with base time ``base``; ``link_time(src, dst, depart, nbytes)``
    returns ``(serialization, latency)`` cycles for a transfer departing
    at ``depart``.  Both default to ``None``, which is the identity --
    the no-fault schedule is bit-identical to the hook-free one.
    """
    if releases is not None:
        if len(releases) != len(batch_chip_cycles):
            raise SimulationError(
                f"streaming_schedule got {len(batch_chip_cycles)} inputs "
                f"but {len(releases)} release cycles"
            )
        if any(r < 0 for r in releases):
            raise SimulationError("release cycles must be >= 0")
    n = len(batch_chip_cycles[0]) if batch_chip_cycles else 0
    link_free: Dict[Tuple[int, int], int] = {}
    prev_finish = [0] * n
    all_starts: List[List[int]] = []
    all_finishes: List[List[int]] = []
    input_finishes: List[int] = []
    for index, chip_cycles in enumerate(batch_chip_cycles):
        arrival = [0] * n
        if releases is not None and n:
            arrival[0] = releases[index]
        starts = [0] * n
        finishes = [0] * n
        for k in range(n):
            starts[k] = max(arrival[k], prev_finish[k])
            occupancy = chip_cycles[k]
            if service_time is not None:
                occupancy = service_time(k, starts[k], occupancy)
            finishes[k] = starts[k] + occupancy
            for src, dst, nbytes in transfers:
                if src != k:
                    continue
                depart = max(finishes[k], link_free.get((src, dst), 0))
                if link_time is None:
                    ser = link.serialization_cycles(nbytes)
                    lat = link.transfer_cycles(nbytes)
                else:
                    ser, lat = link_time(src, dst, depart, nbytes)
                link_free[(src, dst)] = depart + ser
                arrive = depart + lat
                arrival[dst] = max(arrival[dst], arrive)
        prev_finish = finishes
        all_starts.append(starts)
        all_finishes.append(finishes)
        input_finishes.append(max(finishes) if finishes else 0)
    makespan = max(input_finishes) if input_finishes else 0
    return all_starts, all_finishes, input_finishes, makespan


def pipeline_schedule(
    chip_cycles: Sequence[int],
    transfers: Sequence[TransferEdge],
    link: InterChipConfig,
) -> Tuple[List[int], List[int], int]:
    """Closed-form pipeline timing shared by both simulation tiers.

    ``chip_cycles[k]`` is chip ``k``'s own execution time; ``transfers``
    lists (src, dst, nbytes) edges in schedule order (src < dst).
    Returns ``(starts, finishes, makespan)`` in cycles.  All transfers
    out of a chip depart after it finishes; transfers sharing a (src,
    dst) link serialise in schedule order; a chip starts once every
    inbound transfer has fully arrived.  This is
    :func:`streaming_schedule` with a single input.
    """
    starts, finishes, _, makespan = streaming_schedule(
        [list(chip_cycles)], transfers, link
    )
    return starts[0], finishes[0], makespan


def steady_state_interval(
    chip_cycles: Sequence[int],
    transfers: Sequence[TransferEdge],
    link: InterChipConfig,
) -> int:
    """Closed-form steady-state initiation interval of a streamed batch.

    Once the pipeline is full, consecutive inputs complete exactly one
    *bottleneck occupancy* apart: every input occupies each chip for its
    execution time and each (src, dst) link for the serialisation cycles
    of that link's per-input traffic, so the sustained rate is bounded
    by the busiest resource.  Link *latency* is a pure delay (it adds to
    fill, never to the interval).  Both fidelity tiers share this law:
    ``makespan(B) = makespan(1) + (B-1) * steady_state_interval`` -- the
    streaming-contract tests assert the recurrence
    (:func:`streaming_schedule`) reproduces it exactly.
    """
    interval = max(chip_cycles) if chip_cycles else 0
    link_occupancy: Dict[Tuple[int, int], int] = {}
    for src, dst, nbytes in transfers:
        link_occupancy[(src, dst)] = (
            link_occupancy.get((src, dst), 0)
            + link.serialization_cycles(nbytes)
        )
    for occupancy in link_occupancy.values():
        interval = max(interval, occupancy)
    return interval


def merge_shard_energy(
    breakdowns: Sequence[Dict[str, float]],
    interchip_bytes: int,
    link: InterChipConfig,
) -> Dict[str, float]:
    """Sum per-chip energy breakdowns and charge the inter-chip link.

    The energy half of the multi-chip contract, shared verbatim by the
    cycle-level scheduler and the fast model (:func:`repro.sim.fastmodel.
    analyze_sharded`): per-chip categories add, and boundary traffic is
    charged at ``link.energy_pj_per_byte`` under the ``interchip`` key.
    """
    energy: Dict[str, float] = {}
    for breakdown in breakdowns:
        for key, value in breakdown.items():
            energy[key] = energy.get(key, 0.0) + value
    if interchip_bytes:
        energy["interchip"] = (
            energy.get("interchip", 0.0)
            + interchip_bytes * link.energy_pj_per_byte
        )
    return energy


def assemble_stream_report(
    arch: ArchConfig,
    per_input_reports: Sequence[Sequence[SimulationReport]],
    edges: Sequence[TransferEdge],
    schedule: Tuple[List[List[int]], List[List[int]], List[int], int],
    interchip_bytes_per_input: int = 0,
) -> "MultiChipReport":
    """Aggregate a streamed execution + its schedule into one report.

    The single assembly shared by batched mode
    (:meth:`MultiChipSimulator.run_streaming`), the legacy single-chip
    sequential replay, and the serving API
    (:class:`repro.serve.Deployment`): energies/MACs/instructions sum
    over the stream, ``chip_reports`` / ``chip_starts`` /
    ``chip_finishes`` describe the first input's pass, and the
    steady-state interval is the closed-form bottleneck of the first
    input's per-chip windows.
    """
    link = arch.interchip
    starts, finishes, input_finishes, makespan = schedule
    batch = len(per_input_reports)
    flat = [r for reports in per_input_reports for r in reports]
    total_bytes = interchip_bytes_per_input * batch
    energy = merge_shard_energy(
        [r.energy_breakdown_pj for r in flat], total_bytes, link
    )
    first = per_input_reports[0]
    return MultiChipReport(
        arch=arch,
        cycles=makespan,
        energy_breakdown_pj=energy,
        macs=sum(r.macs for r in flat),
        instructions=sum(r.instructions for r in flat),
        chip_reports=list(first),
        chip_starts=starts[0],
        chip_finishes=finishes[0],
        interchip_bytes=total_bytes,
        noc_bytes=sum(r.noc_bytes for r in flat),
        noc_byte_hops=sum(r.noc_byte_hops for r in flat),
        utilization=_mean_utilization(first),
        batch=batch,
        input_finishes=input_finishes,
        steady_interval_cycles=steady_state_interval(
            [r.cycles for r in first], edges, link
        ),
    )


def _mean_utilization(
    reports: Sequence[SimulationReport],
) -> Dict[str, float]:
    """Per-unit utilization averaged over the chip pipeline."""
    utilization: Dict[str, float] = {}
    for report in reports:
        for unit, value in report.utilization.items():
            utilization[unit] = (
                utilization.get(unit, 0.0) + value / len(reports)
            )
    return utilization


@dataclass
class MultiChipReport:
    """Aggregate performance report of one multi-chip pipeline run.

    Mirrors :class:`~repro.sim.report.SimulationReport` (``cycles`` is
    the pipeline makespan, energies are summed across chips plus the
    ``interchip`` link energy) and keeps the per-chip reports and the
    pipeline schedule for inspection.

    Batched streaming runs (``batch > 1``) aggregate the whole stream:
    ``cycles`` is the stream makespan, energies/MACs/instructions sum
    over every input, ``input_finishes`` records when each input
    completed, and ``steady_interval_cycles`` is the closed-form
    steady-state completion interval (the throughput-mode metric).
    ``chip_reports`` / ``chip_starts`` / ``chip_finishes`` describe the
    *first* input's pass through the pipeline (per-input isolation makes
    every input's per-chip execution identical in timing).
    """

    arch: ArchConfig
    cycles: int
    energy_breakdown_pj: Dict[str, float]
    macs: int
    instructions: int
    chip_reports: List[SimulationReport]
    chip_starts: List[int]
    chip_finishes: List[int]
    interchip_bytes: int = 0
    noc_bytes: int = 0
    noc_byte_hops: int = 0
    utilization: Dict[str, float] = field(default_factory=dict)
    batch: int = 1
    input_finishes: List[int] = field(default_factory=list)
    steady_interval_cycles: int = 0

    @property
    def num_chips(self) -> int:
        return len(self.chip_reports)

    @property
    def time_ms(self) -> float:
        return self.cycles * self.arch.chip.cycle_ns / 1e6

    @property
    def total_energy_pj(self) -> float:
        return sum(self.energy_breakdown_pj.values())

    @property
    def total_energy_mj(self) -> float:
        return self.total_energy_pj / 1e9

    @property
    def tops(self) -> float:
        seconds = self.cycles * self.arch.chip.cycle_ns / 1e9
        if seconds <= 0:
            return 0.0
        return 2.0 * self.macs / seconds / 1e12

    @property
    def throughput_inf_per_s(self) -> float:
        """Sustained inferences/second at the steady-state interval."""
        interval = self.steady_interval_cycles or self.cycles
        seconds = interval * self.arch.chip.cycle_ns / 1e9
        if seconds <= 0:
            return 0.0
        return 1.0 / seconds

    @property
    def energy_per_inference_mj(self) -> float:
        return self.total_energy_mj / max(1, self.batch)

    def grouped_energy_mj(self) -> Dict[str, float]:
        """Fig. 6 grouping with the inter-chip link as its own bucket."""
        return group_energy_mj(self.energy_breakdown_pj)

    def to_dict(self) -> Dict:
        from repro.config import arch_fingerprint

        return {
            "arch_fingerprint": arch_fingerprint(self.arch),
            "num_chips": self.num_chips,
            "cycles": int(self.cycles),
            "time_ms": self.time_ms,
            "total_energy_mj": self.total_energy_mj,
            "tops": self.tops,
            "macs": int(self.macs),
            "instructions": int(self.instructions),
            "interchip_bytes": int(self.interchip_bytes),
            "noc_bytes": int(self.noc_bytes),
            "noc_byte_hops": int(self.noc_byte_hops),
            "batch": int(self.batch),
            "input_finishes": [int(c) for c in self.input_finishes],
            "steady_interval_cycles": int(self.steady_interval_cycles),
            "throughput_inf_per_s": self.throughput_inf_per_s,
            "energy_per_inference_mj": self.energy_per_inference_mj,
            "chip_starts": [int(c) for c in self.chip_starts],
            "chip_finishes": [int(c) for c in self.chip_finishes],
            "utilization": {k: float(v) for k, v in self.utilization.items()},
            "energy_breakdown_pj": {
                k: float(v) for k, v in self.energy_breakdown_pj.items()
            },
            "energy_groups_mj": self.grouped_energy_mj(),
            "chips": [r.to_dict() for r in self.chip_reports],
        }

    def __str__(self) -> str:
        lines = [
            f"chips             : {self.num_chips}",
            f"cycles (makespan) : {self.cycles:,}",
            f"latency           : {self.time_ms:.3f} ms",
            f"energy            : {self.total_energy_mj:.4f} mJ",
            f"throughput        : {self.tops:.3f} TOPS",
            f"MACs              : {self.macs:,}",
            f"instructions      : {self.instructions:,}",
            f"inter-chip bytes  : {self.interchip_bytes / 1024:.1f} KiB",
        ]
        if self.batch > 1:
            lines += [
                f"batch             : {self.batch} inputs streamed",
                f"steady interval   : {self.steady_interval_cycles:,} "
                f"cycles/inference",
                f"sustained rate    : {self.throughput_inf_per_s:,.0f} "
                f"inferences/s",
                f"energy/inference  : {self.energy_per_inference_mj:.4f} mJ",
            ]
        lines.append("pipeline          :")
        for k, (s, f) in enumerate(zip(self.chip_starts, self.chip_finishes)):
            lines.append(f"  chip {k}: cycles [{s:,}, {f:,})")
        lines.append("energy breakdown  :")
        for key, value in sorted(self.grouped_energy_mj().items()):
            lines.append(f"  {key:12s}: {value:.4f} mJ")
        return "\n".join(lines)


class MultiChipSimulator:
    """Runs a :class:`MultiChipModel`: one :class:`ChipSimulator` per
    shard, lock-step over the inter-chip link."""

    def __init__(self, model, engine: Optional[str] = None):
        self.model = model
        self.arch: ArchConfig = model.arch
        self._engine = engine
        self.chips = self._fresh_chips()

    def _fresh_chips(self) -> List[ChipSimulator]:
        """One pristine simulator per shard (reset memory and cores).

        Streaming runs rebuild the chip set per input: per-input
        isolation is the batching contract (no cross-input state), and it
        is what keeps batched outputs bit-identical to independent runs.
        """
        return [
            ChipSimulator.from_compiled(compiled, engine=self._engine)
            for compiled in self.model.chips
        ]

    def write_input(self, tensor: Optional[str], data) -> None:
        """Write one model input into every chip that consumes it."""
        import numpy as np

        for chip, address in self.model.input_placements(tensor):
            self.chips[chip].memory.write_global(
                address, np.asarray(data, np.int8)
            )

    def read_output(self, tensor: Optional[str] = None):
        """Read one model output from the chip that produced it."""
        chip, address = self.model.output_placement(tensor)
        name = tensor if tensor is not None else self.model.graph.outputs[0]
        resolved = self.model.sharding.cgraph.resolve(name)
        info = self.model.graph.tensor(resolved)
        raw = self.chips[chip].memory.read_global(address, info.size_bytes)
        return raw.reshape(info.shape)

    def _execute_pipeline(self) -> List[SimulationReport]:
        """Run every chip of ``self.chips`` once, moving transfer payloads.

        Chips execute in shard order (data dependencies only flow
        forward), each on its own unchanged cycle-level simulator; the
        transfer schedule moves boundary tensors between the chips'
        global memories.  Timing is assembled separately by the
        closed-form link schedule.
        """
        reports: List[SimulationReport] = []
        for k, chip in enumerate(self.chips):
            reports.append(chip.run())
            for tr in self.model.transfers:
                if tr.src_chip != k:
                    continue
                payload = chip.memory.read_global(tr.src_address, tr.nbytes)
                self.chips[tr.dst_chip].memory.write_global(
                    tr.dst_address, payload
                )
        return reports

    def _transfer_edges(self) -> List[TransferEdge]:
        return [
            (t.src_chip, t.dst_chip, t.nbytes) for t in self.model.transfers
        ]

    def run(self) -> MultiChipReport:
        """Execute one input through the pipeline and aggregate reports."""
        link = self.arch.interchip
        reports = self._execute_pipeline()
        edges = self._transfer_edges()
        starts, finishes, makespan = pipeline_schedule(
            [r.cycles for r in reports], edges, link
        )

        total_bytes = self.model.interchip_bytes()
        energy = merge_shard_energy(
            [r.energy_breakdown_pj for r in reports], total_bytes, link
        )

        return MultiChipReport(
            arch=self.arch,
            cycles=makespan,
            energy_breakdown_pj=energy,
            macs=sum(r.macs for r in reports),
            instructions=sum(r.instructions for r in reports),
            chip_reports=reports,
            chip_starts=starts,
            chip_finishes=finishes,
            interchip_bytes=total_bytes,
            noc_bytes=sum(r.noc_bytes for r in reports),
            noc_byte_hops=sum(r.noc_byte_hops for r in reports),
            utilization=_mean_utilization(reports),
            batch=1,
            input_finishes=[makespan],
            steady_interval_cycles=steady_state_interval(
                [r.cycles for r in reports], edges, link
            ),
        )

    def execute_stream(
        self, inputs: Sequence, tensor: Optional[str] = None
    ) -> Tuple[List[List[SimulationReport]], List[Dict[str, "np.ndarray"]]]:
        """Execute every input in full per-input isolation, no scheduling.

        The functional half of streaming: each input runs on fresh chip
        state (so its outputs are bit-identical to an independent
        single-input run) and the per-input per-chip reports are
        returned for a scheduler -- :func:`streaming_schedule` under any
        arrival process -- to assemble timing from.  ``self.chips`` is
        left holding the final input's state, so :meth:`read_output`
        reads the last input afterwards.
        """
        output_names = list(self.model.graph.outputs)
        per_input_reports: List[List[SimulationReport]] = []
        per_input_outputs: List[Dict[str, "np.ndarray"]] = []
        for data in inputs:
            # Per-input isolation holds even if run()/run_streaming()
            # already consumed this simulator's chip state.
            self.chips = self._fresh_chips()
            self.write_input(tensor, data)
            per_input_reports.append(self._execute_pipeline())
            per_input_outputs.append(
                {name: self.read_output(name) for name in output_names}
            )
        return per_input_reports, per_input_outputs

    def execute_resident_stream(
        self, inputs: Sequence, tensor: Optional[str] = None
    ) -> Tuple[
        List[SimulationReport],
        List[List[SimulationReport]],
        List[Dict[str, "np.ndarray"]],
    ]:
        """Resident-weights functional execution: load once, warm per input.

        Each shard's run-once load segment
        (:meth:`repro.compiler.pipeline.CompiledModel.resident_segments`)
        executes first on fresh chips -- weight tiles enter the macro
        groups, bias bands the local constant segments.  Every input then
        replays only the warm activation program against the persisted
        chip state (:meth:`repro.sim.chip.ChipSimulator.reset_run`), so
        no weight-load traffic recurs; outputs stay bit-identical to
        isolated full runs because warm bodies re-acquire every
        activation row they read and overwrite accumulators before use.
        All warm passes of one session have identical timing (timing is
        data-independent), which is what keeps the steady-state law
        ``makespan(B) = load + warm_makespan(1) + (B-1) * warm_bottleneck``
        exact.  Returns ``(load_reports, per_input_reports,
        per_input_outputs)``; ``load_reports[k]`` prices shard ``k``'s
        load segment (all shards load in parallel, so the session's load
        phase is their max).
        """
        load_reports = self.load_resident()
        per_input_reports, per_input_outputs = self.execute_warm_stream(
            inputs, tensor
        )
        return load_reports, per_input_reports, per_input_outputs

    def load_resident(self) -> List[SimulationReport]:
        """Run every shard's run-once weight-load segment on fresh chips.

        After this the simulator's chips hold the loaded macro groups and
        constant bands; :meth:`execute_warm_stream` may then be called
        any number of times (a serving session's repeated submissions)
        without re-paying the load.  Returns one report per shard --
        shards load in parallel, so the session's load phase is their
        max cycle count.
        """
        from repro.sim.blockengine import ENGINE_STATS

        self._resident_segments = [
            c.resident_segments() for c in self.model.chips
        ]
        self.chips = self._fresh_chips()
        load_reports: List[SimulationReport] = []
        for chip, (_, load) in zip(self.chips, self._resident_segments):
            chip.reset_run(load)
            load_reports.append(chip.run())
            ENGINE_STATS["resident_load_runs"] += 1
        return load_reports

    def execute_warm_stream(
        self, inputs: Sequence, tensor: Optional[str] = None
    ) -> Tuple[List[List[SimulationReport]], List[Dict[str, "np.ndarray"]]]:
        """Warm half of a resident session: activation-only replays.

        Requires a prior :meth:`load_resident` on this simulator.  Each
        input re-arms the chips with the warm (load-free) programs
        against the persisted weight state; no weight-load traffic
        recurs, and per-input isolation of the *activation* state keeps
        outputs bit-identical to isolated full runs.
        """
        from repro.sim.blockengine import ENGINE_STATS

        if getattr(self, "_resident_segments", None) is None:
            raise SimulationError(
                "execute_warm_stream needs load_resident() first"
            )
        output_names = list(self.model.graph.outputs)
        per_input_reports: List[List[SimulationReport]] = []
        per_input_outputs: List[Dict[str, "np.ndarray"]] = []
        for data in inputs:
            for chip, (warm, _) in zip(self.chips, self._resident_segments):
                chip.reset_run(warm)
                ENGINE_STATS["resident_warm_runs"] += 1
            self.write_input(tensor, data)
            per_input_reports.append(self._execute_pipeline())
            per_input_outputs.append(
                {name: self.read_output(name) for name in output_names}
            )
        return per_input_reports, per_input_outputs

    def run_streaming(
        self,
        inputs: Sequence,
        tensor: Optional[str] = None,
        releases: Optional[Sequence[int]] = None,
    ) -> Tuple[MultiChipReport, List[Dict[str, "np.ndarray"]]]:
        """Stream a batch of inputs through the chip pipeline.

        Each input executes in full isolation (fresh chip state per
        input), so per-input outputs are bit-identical to independent
        single-input runs; the streaming schedule then overlaps the
        per-input chip windows -- input ``i+1`` occupies shard 0 while
        input ``i`` occupies shard 1 -- bounding sustained throughput by
        the bottleneck resource instead of the makespan.  ``releases``
        optionally gates each input's entry into the first shard at its
        arrival cycle (``None`` = all inputs available at cycle 0).

        Returns ``(report, per_input_outputs)``; ``self.chips`` is left
        holding the final input's state, so :meth:`read_output` reads the
        last input afterwards.
        """
        if not len(inputs):
            raise SimulationError("run_streaming needs at least one input")
        link = self.arch.interchip
        edges = self._transfer_edges()
        per_input_reports, per_input_outputs = self.execute_stream(
            inputs, tensor
        )

        schedule = streaming_schedule(
            [[r.cycles for r in reports] for reports in per_input_reports],
            edges, link, releases,
        )
        return assemble_stream_report(
            self.arch, per_input_reports, edges, schedule,
            self.model.interchip_bytes(),
        ), per_input_outputs
