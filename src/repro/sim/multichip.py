"""Multi-chip simulation: lock-step pipeline of chip simulators.

A :class:`~repro.compiler.pipeline.MultiChipModel` carries one compiled
single-chip workload per shard plus the explicit
:class:`~repro.compiler.pipeline.InterChipTransfer` schedule between
them.  :class:`MultiChipSimulator` instantiates one unchanged
:class:`~repro.sim.chip.ChipSimulator` per chip (hot-block engine and
all) and executes the pipeline:

1. chips run in shard order; chip ``k`` starts at the cycle its last
   inbound transfer arrives (chip 0 starts at 0);
2. when a chip finishes, its outbound transfers depart over the modeled
   chip-to-chip link (:class:`~repro.config.InterChipConfig`): each
   ordered chip pair has a dedicated point-to-point link, transfers on
   the same link serialise, and a transfer of ``n`` bytes occupies its
   link for ``ceil(n / bandwidth)`` cycles and arrives ``latency``
   cycles later;
3. transfer payloads are moved between the chips' global memories, so
   simulation remains functionally exact and the final outputs can be
   validated bit-exactly against the golden model.

The same closed-form schedule (:func:`pipeline_schedule`) prices
inter-chip transfers in the fast analytical model
(:func:`repro.sim.fastmodel.analyze_sharded`), so the two fidelity
levels share one timing contract.  See ``docs/ARCHITECTURE.md``
("Multi-chip sharding").
"""

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.config import ArchConfig, InterChipConfig
from repro.sim.chip import ChipSimulator
from repro.sim.report import SimulationReport, group_energy_mj

#: (src_chip, dst_chip, nbytes) -- the schedule-level view of a transfer.
TransferEdge = Tuple[int, int, int]


def pipeline_schedule(
    chip_cycles: Sequence[int],
    transfers: Sequence[TransferEdge],
    link: InterChipConfig,
) -> Tuple[List[int], List[int], int]:
    """Closed-form pipeline timing shared by both simulation tiers.

    ``chip_cycles[k]`` is chip ``k``'s own execution time; ``transfers``
    lists (src, dst, nbytes) edges in schedule order (src < dst).
    Returns ``(starts, finishes, makespan)`` in cycles.  All transfers
    out of a chip depart after it finishes; transfers sharing a (src,
    dst) link serialise in schedule order; a chip starts once every
    inbound transfer has fully arrived.
    """
    n = len(chip_cycles)
    starts = [0] * n
    finishes = [0] * n
    arrival = [0] * n
    link_free: Dict[Tuple[int, int], int] = {}
    for k in range(n):
        starts[k] = max(starts[k], arrival[k])
        finishes[k] = starts[k] + chip_cycles[k]
        for src, dst, nbytes in transfers:
            if src != k:
                continue
            depart = max(finishes[k], link_free.get((src, dst), 0))
            link_free[(src, dst)] = depart + link.serialization_cycles(nbytes)
            arrive = depart + link.transfer_cycles(nbytes)
            arrival[dst] = max(arrival[dst], arrive)
    makespan = max(finishes) if finishes else 0
    return starts, finishes, makespan


def merge_shard_energy(
    breakdowns: Sequence[Dict[str, float]],
    interchip_bytes: int,
    link: InterChipConfig,
) -> Dict[str, float]:
    """Sum per-chip energy breakdowns and charge the inter-chip link.

    The energy half of the multi-chip contract, shared verbatim by the
    cycle-level scheduler and the fast model (:func:`repro.sim.fastmodel.
    analyze_sharded`): per-chip categories add, and boundary traffic is
    charged at ``link.energy_pj_per_byte`` under the ``interchip`` key.
    """
    energy: Dict[str, float] = {}
    for breakdown in breakdowns:
        for key, value in breakdown.items():
            energy[key] = energy.get(key, 0.0) + value
    if interchip_bytes:
        energy["interchip"] = (
            energy.get("interchip", 0.0)
            + interchip_bytes * link.energy_pj_per_byte
        )
    return energy


@dataclass
class MultiChipReport:
    """Aggregate performance report of one multi-chip pipeline run.

    Mirrors :class:`~repro.sim.report.SimulationReport` (``cycles`` is
    the pipeline makespan, energies are summed across chips plus the
    ``interchip`` link energy) and keeps the per-chip reports and the
    pipeline schedule for inspection.
    """

    arch: ArchConfig
    cycles: int
    energy_breakdown_pj: Dict[str, float]
    macs: int
    instructions: int
    chip_reports: List[SimulationReport]
    chip_starts: List[int]
    chip_finishes: List[int]
    interchip_bytes: int = 0
    noc_bytes: int = 0
    noc_byte_hops: int = 0
    utilization: Dict[str, float] = field(default_factory=dict)

    @property
    def num_chips(self) -> int:
        return len(self.chip_reports)

    @property
    def time_ms(self) -> float:
        return self.cycles * self.arch.chip.cycle_ns / 1e6

    @property
    def total_energy_pj(self) -> float:
        return sum(self.energy_breakdown_pj.values())

    @property
    def total_energy_mj(self) -> float:
        return self.total_energy_pj / 1e9

    @property
    def tops(self) -> float:
        seconds = self.cycles * self.arch.chip.cycle_ns / 1e9
        if seconds <= 0:
            return 0.0
        return 2.0 * self.macs / seconds / 1e12

    def grouped_energy_mj(self) -> Dict[str, float]:
        """Fig. 6 grouping with the inter-chip link as its own bucket."""
        return group_energy_mj(self.energy_breakdown_pj)

    def to_dict(self) -> Dict:
        from repro.config import arch_fingerprint

        return {
            "arch_fingerprint": arch_fingerprint(self.arch),
            "num_chips": self.num_chips,
            "cycles": int(self.cycles),
            "time_ms": self.time_ms,
            "total_energy_mj": self.total_energy_mj,
            "tops": self.tops,
            "macs": int(self.macs),
            "instructions": int(self.instructions),
            "interchip_bytes": int(self.interchip_bytes),
            "noc_bytes": int(self.noc_bytes),
            "noc_byte_hops": int(self.noc_byte_hops),
            "chip_starts": [int(c) for c in self.chip_starts],
            "chip_finishes": [int(c) for c in self.chip_finishes],
            "utilization": {k: float(v) for k, v in self.utilization.items()},
            "energy_breakdown_pj": {
                k: float(v) for k, v in self.energy_breakdown_pj.items()
            },
            "energy_groups_mj": self.grouped_energy_mj(),
            "chips": [r.to_dict() for r in self.chip_reports],
        }

    def __str__(self) -> str:
        lines = [
            f"chips             : {self.num_chips}",
            f"cycles (makespan) : {self.cycles:,}",
            f"latency           : {self.time_ms:.3f} ms",
            f"energy            : {self.total_energy_mj:.4f} mJ",
            f"throughput        : {self.tops:.3f} TOPS",
            f"MACs              : {self.macs:,}",
            f"instructions      : {self.instructions:,}",
            f"inter-chip bytes  : {self.interchip_bytes / 1024:.1f} KiB",
            "pipeline          :",
        ]
        for k, (s, f) in enumerate(zip(self.chip_starts, self.chip_finishes)):
            lines.append(f"  chip {k}: cycles [{s:,}, {f:,})")
        lines.append("energy breakdown  :")
        for key, value in sorted(self.grouped_energy_mj().items()):
            lines.append(f"  {key:12s}: {value:.4f} mJ")
        return "\n".join(lines)


class MultiChipSimulator:
    """Runs a :class:`MultiChipModel`: one :class:`ChipSimulator` per
    shard, lock-step over the inter-chip link."""

    def __init__(self, model, engine: Optional[str] = None):
        self.model = model
        self.arch: ArchConfig = model.arch
        self.chips = [
            ChipSimulator.from_compiled(compiled, engine=engine)
            for compiled in model.chips
        ]

    def write_input(self, tensor: Optional[str], data) -> None:
        """Write one model input into every chip that consumes it."""
        import numpy as np

        for chip, address in self.model.input_placements(tensor):
            self.chips[chip].memory.write_global(
                address, np.asarray(data, np.int8)
            )

    def read_output(self, tensor: Optional[str] = None):
        """Read one model output from the chip that produced it."""
        chip, address = self.model.output_placement(tensor)
        name = tensor if tensor is not None else self.model.graph.outputs[0]
        resolved = self.model.sharding.cgraph.resolve(name)
        info = self.model.graph.tensor(resolved)
        raw = self.chips[chip].memory.read_global(address, info.size_bytes)
        return raw.reshape(info.shape)

    def run(self) -> MultiChipReport:
        """Execute the pipeline and aggregate the per-chip reports.

        Chips execute in shard order (data dependencies only flow
        forward), each on its own unchanged cycle-level simulator; the
        transfer schedule moves boundary tensors between the chips'
        global memories and the closed-form link model assembles the
        pipeline timing.
        """
        link = self.arch.interchip
        reports: List[SimulationReport] = []
        for k, chip in enumerate(self.chips):
            reports.append(chip.run())
            for tr in self.model.transfers:
                if tr.src_chip != k:
                    continue
                payload = chip.memory.read_global(tr.src_address, tr.nbytes)
                self.chips[tr.dst_chip].memory.write_global(
                    tr.dst_address, payload
                )
        edges = [
            (t.src_chip, t.dst_chip, t.nbytes) for t in self.model.transfers
        ]
        starts, finishes, makespan = pipeline_schedule(
            [r.cycles for r in reports], edges, link
        )

        total_bytes = self.model.interchip_bytes()
        energy = merge_shard_energy(
            [r.energy_breakdown_pj for r in reports], total_bytes, link
        )

        utilization: Dict[str, float] = {}
        for report in reports:
            for unit, value in report.utilization.items():
                utilization[unit] = (
                    utilization.get(unit, 0.0) + value / len(reports)
                )

        return MultiChipReport(
            arch=self.arch,
            cycles=makespan,
            energy_breakdown_pj=energy,
            macs=sum(r.macs for r in reports),
            instructions=sum(r.instructions for r in reports),
            chip_reports=reports,
            chip_starts=starts,
            chip_finishes=finishes,
            interchip_bytes=total_bytes,
            noc_bytes=sum(r.noc_bytes for r in reports),
            noc_byte_hops=sum(r.noc_byte_hops for r in reports),
            utilization=utilization,
        )
