"""Command-line interface: ``python -m repro <command>``.

Seven subcommands expose the serving API and the design-space
exploration engine without writing any Python:

- ``run``     -- compile one model and execute it on the cycle-accurate
  simulator, validating against the golden model (Fig. 2 workflow);
  ``--chips N`` pipeline-shards the model across N chips, ``--batch B``
  streams B inputs through it (throughput mode);
- ``compile`` -- compile once and write a content-addressed
  ``.artifact`` file (:mod:`repro.artifact`): the shippable compile
  product ``run``/``serve`` and :meth:`repro.serve.Deployment.load`
  accept in place of a model name;
- ``inspect`` -- print the manifest of an ``.artifact`` file (digest,
  arch fingerprint, per-chip programs/images) without loading weights
  into a simulator;
- ``serve``   -- deploy one model (compile once) and drive it with a
  stream of inputs under an explicit arrival process (``--rate`` /
  ``--interval`` / ``--poisson`` / ``--trace``), reporting p50/p95/p99
  latency, queueing delay, per-shard utilisation and sustained
  throughput; ``--tier fast`` prices the same schedule analytically;
  ``--replicas R`` round-robins (or ``--policy jsq`` queue-balances)
  the stream across R replicas of the deployment; ``--faults PLAN``
  replays a deterministic fault plan (:mod:`repro.faults`) against the
  fleet, reporting conservation, goodput, drops and retries;
- ``sweep``   -- evaluate a cross-product design space with the fast
  analytical model, in parallel and through the on-disk result cache
  (``--chips`` adds the multi-chip axis, ``--batch`` the streaming
  batch axis, ``--arrival-rates`` the serving axis, ``--replicas``
  the fleet axis, ``--fault-plans`` the availability axis; an
  interrupted sweep resumes mid-cross-product via the sweep manifest);
- ``compare`` -- the Fig. 5 strategy comparison (normalized speed/energy
  per compilation strategy);
- ``report``  -- re-render / convert a saved ``sweep --json`` file
  (``--pareto`` extracts the energy/throughput Pareto front).

Examples::

    python -m repro run tiny_resnet --preset small --chips 2
    python -m repro compile tiny_resnet --preset small --chips 2 \\
        -o tiny_resnet.artifact
    python -m repro inspect tiny_resnet.artifact
    python -m repro serve tiny_resnet.artifact --preset small \\
        --batch 16 --rate 200000 --replicas 4 --policy jsq
    python -m repro sweep --models resnet18 --strategies generic,dp \\
        --mg-sizes 4,8,12,16 --flit-sizes 8,16 --workers 4 --json out.json
    python -m repro compare --models resnet18,mobilenetv2
    python -m repro report out.json --best tops --pareto --csv out.csv

The full flag/environment-variable reference lives in ``docs/CLI.md``.
"""

import argparse
import csv
import json
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

from repro.config import default_arch, load_arch, small_test_arch
from repro.errors import ConfigError, ReproError
from repro.explore import SweepSpec, run_sweep, spot_check, strategy_comparison
from repro.explore_cache import ResultCache, default_cache_dir
from repro.graph.models import available_models

_PRESETS = {"default": default_arch, "small": small_test_arch}

_POINT_COLUMNS = (
    "model", "strategy", "input_size", "chips", "batch", "arrival_rate",
    "replicas", "fault_plan", "resident_weights", "load_cycles",
    "mg_size", "flit_bytes", "cycles", "time_ms", "energy_mj", "tops",
    "throughput_inf_s", "energy_per_inf_mj",
    "p50_latency_ms", "p95_latency_ms", "p99_latency_ms",
    "dropped", "retries", "goodput_inf_s", "cached",
)

#: Fallbacks for sweep-result rows written before the column existed
#: (pre-batch files lack batch/throughput/energy-per-inference,
#: pre-serve files lack arrival-rate/latency-percentile columns,
#: pre-fleet files lack the replicas column, pre-fault files lack the
#: fault-plan/dropped/retries/goodput columns, pre-resident files lack
#: the resident-weights/load-cycles columns).
_COLUMN_DEFAULTS = {"chips": 1, "batch": 1, "replicas": 1,
                    "dropped": 0, "retries": 0,
                    "resident_weights": False, "load_cycles": 0}

_BEST_METRICS = (
    "tops", "throughput_inf_s", "energy_mj", "energy_per_inf_mj", "cycles",
)
_ASCENDING_METRICS = ("energy_mj", "energy_per_inf_mj", "cycles")


# ---------------------------------------------------------------------------
# Small argument helpers
# ---------------------------------------------------------------------------

def _split_csv(value: str) -> List[str]:
    return [item.strip() for item in value.split(",") if item.strip()]


def _int_list(value: str) -> List[int]:
    try:
        return [int(item) for item in _split_csv(value)]
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected comma-separated integers, got {value!r}"
        )


def _rate_list(value: str) -> List[Optional[float]]:
    """Comma-separated arrival rates; ``none`` keeps back-to-back mode."""
    out: List[Optional[float]] = []
    for item in _split_csv(value):
        if item.lower() == "none":
            out.append(None)
            continue
        try:
            out.append(float(item))
        except ValueError:
            raise argparse.ArgumentTypeError(
                f"expected comma-separated rates (inf/s) or 'none', "
                f"got {item!r}"
            )
    return out


def _bool_list(value: str) -> List[bool]:
    """Comma-separated booleans (``true``/``false``, ``1``/``0``)."""
    out: List[bool] = []
    for item in _split_csv(value):
        lowered = item.lower()
        if lowered in ("true", "1", "yes", "on"):
            out.append(True)
        elif lowered in ("false", "0", "no", "off"):
            out.append(False)
        else:
            raise argparse.ArgumentTypeError(
                f"expected comma-separated booleans, got {item!r}"
            )
    return out


def _closure_limit(value: str):
    """``64`` | ``none`` | ``model=64,other=none`` -> engine form."""
    items = _split_csv(value)
    if len(items) == 1 and "=" not in items[0]:
        return None if items[0].lower() == "none" else int(items[0])
    limits: Dict[str, Optional[int]] = {}
    for item in items:
        if "=" not in item:
            raise argparse.ArgumentTypeError(
                f"expected model=limit pairs, got {item!r}"
            )
        model, _, limit = item.partition("=")
        limits[model.strip()] = (
            None if limit.strip().lower() == "none" else int(limit)
        )
    return limits


def _resolve_arch(args):
    if getattr(args, "arch", None):
        return load_arch(args.arch)
    return _PRESETS[args.preset]()


def _add_arch_options(parser: argparse.ArgumentParser) -> None:
    group = parser.add_mutually_exclusive_group()
    group.add_argument(
        "--arch", metavar="FILE",
        help="JSON architecture configuration file (see repro.config.save_arch)",
    )
    group.add_argument(
        "--preset", choices=sorted(_PRESETS), default="default",
        help="built-in architecture preset (default: the paper's Table I)",
    )


# ---------------------------------------------------------------------------
# Output helpers
# ---------------------------------------------------------------------------

def _optional_cell(row: Dict[str, Any], key: str, fmt: str, width: int) -> str:
    """Format a possibly-missing numeric column (old result files)."""
    value = row.get(key)
    if value is None:
        return f"{'-':>{width}s}"
    return f"{value:>{width}{fmt}}"


def _format_table(rows: Sequence[Dict[str, Any]]) -> str:
    faulted = any(row.get("fault_plan") for row in rows)
    resident = any(row.get("resident_weights") for row in rows)
    header = (
        f"{'model':<16s}{'strat':>7s}{'in':>5s}{'chips':>6s}{'B':>4s}"
        f"{'rate/s':>9s}{'R':>3s}{'MG':>4s}{'flit':>6s}"
        f"{'cycles':>12s}{'ms':>9s}{'E mJ':>9s}{'TOPS':>8s}"
        f"{'inf/s':>11s}{'mJ/inf':>9s}{'p99 ms':>9s}"
        + (f"{'drop':>6s}{'retry':>7s}{'good/s':>11s}" if faulted else "")
        + (f"{'res':>5s}{'load cyc':>10s}" if resident else "")
        + f"{'cache':>7s}"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        fault_cells = ""
        if faulted:
            fault_cells = (
                f"{row.get('dropped', 0):>6d}{row.get('retries', 0):>7d}"
                f"{_optional_cell(row, 'goodput_inf_s', ',.0f', 11)}"
            )
        resident_cells = ""
        if resident:
            resident_cells = (
                f"{'yes' if row.get('resident_weights') else '-':>5s}"
                f"{row.get('load_cycles', 0):>10,d}"
            )
        lines.append(
            f"{row['model']:<16s}{row['strategy']:>7s}{row['input_size']:>5d}"
            f"{row.get('chips', 1):>6d}{row.get('batch', 1):>4d}"
            f"{_optional_cell(row, 'arrival_rate', ',.0f', 9)}"
            f"{row.get('replicas', 1):>3d}"
            f"{row['mg_size']:>4d}{row['flit_bytes']:>6d}"
            f"{row['cycles']:>12,d}{row['time_ms']:>9.2f}"
            f"{row['energy_mj']:>9.2f}{row['tops']:>8.2f}"
            f"{_optional_cell(row, 'throughput_inf_s', ',.0f', 11)}"
            f"{_optional_cell(row, 'energy_per_inf_mj', '.2f', 9)}"
            f"{_optional_cell(row, 'p99_latency_ms', '.3f', 9)}"
            + fault_cells
            + resident_cells
            + f"{'hit' if row.get('cached') else '-':>7s}"
        )
    return "\n".join(lines)


def _write_csv(rows: Sequence[Dict[str, Any]], path: str) -> None:
    with open(path, "w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=_POINT_COLUMNS)
        writer.writeheader()
        for row in rows:
            writer.writerow(
                {col: row.get(col, _COLUMN_DEFAULTS.get(col, ""))
                 for col in _POINT_COLUMNS}
            )


def _write_json(payload: Dict[str, Any], path: str) -> None:
    Path(path).write_text(json.dumps(payload, indent=2) + "\n")


# ---------------------------------------------------------------------------
# Subcommands
# ---------------------------------------------------------------------------

def _build_deployment(args, tier: str = "cyclesim"):
    from repro.serve import Deployment, _is_artifact_path

    resident = getattr(args, "resident", False)
    if _is_artifact_path(args.model):
        # An artifact carries its own graph, sharding and programs; the
        # session arch is cross-checked against its fingerprint.
        return Deployment.load(
            args.model, arch=_resolve_arch(args), tier=tier,
            resident_weights=resident,
        )
    return Deployment(
        args.model,
        arch=_resolve_arch(args),
        chips=args.chips,
        strategy=args.strategy,
        tier=tier,
        input_size=args.input_size,
        num_classes=args.num_classes,
        resident_weights=resident,
    )


def _cmd_run(args) -> int:
    deployment = _build_deployment(args)
    validate = not args.no_validate
    if args.batch > 1:
        serve = deployment.submit(
            batch=args.batch, seed=args.seed, validate=validate
        )
        report = serve.stream_report
        validated = serve.validated
    else:
        result = deployment.run(seed=args.seed, validate=validate)
        report = result.report
        validated = result.validated
    print(deployment.summary())
    if validate:
        if args.batch > 1:
            print(
                f"validated : bit-exact vs golden model "
                f"({args.batch} inputs, each in isolation)"
            )
        else:
            print("validated : bit-exact vs golden model")
    print()
    print(report)
    if args.json:
        _write_json(
            {
                "model": args.model,
                "strategy": args.strategy,
                "input_size": args.input_size,
                "num_classes": args.num_classes,
                "chips": args.chips,
                "batch": args.batch,
                "validated": validated,
                "report": report.to_dict(),
            },
            args.json,
        )
        print(f"\nwrote {args.json}")
    return 0


def _cmd_compile(args) -> int:
    from repro.artifact import inspect_artifact, save_artifact
    from repro.workflow import compile_model

    model = args.model
    if model.endswith(".json"):
        from repro.graph.onnx_like import load_graph

        model = load_graph(model)
    compiled = compile_model(
        model,
        arch=_resolve_arch(args),
        strategy=args.strategy,
        chips=args.chips,
        input_size=args.input_size,
        num_classes=args.num_classes,
    )
    digest = save_artifact(compiled, args.output)
    info = inspect_artifact(args.output)
    print(
        f"compiled  : {args.model} ({args.strategy}, "
        f"{args.chips} chip{'s' if args.chips != 1 else ''})"
    )
    print(f"artifact  : {args.output} ({info['file_bytes']:,d} bytes)")
    print(f"digest    : sha256:{digest}")
    print(f"arch      : {info['arch_fingerprint']}")
    return 0


def _cmd_inspect(args) -> int:
    from repro.artifact import inspect_artifact

    info = inspect_artifact(args.artifact)
    if args.json:
        print(json.dumps(info, indent=2))
        return 0
    model = info["model"]
    print(f"artifact  : {info['path']} ({info['file_bytes']:,d} bytes)")
    print(f"format    : v{info['format_version']}")
    print(f"digest    : sha256:{info['digest']}")
    print(f"arch      : {info['arch_fingerprint']}")
    print(
        f"model     : {model['name']} ({model['strategy']}, "
        f"{model['chips']} chip{'s' if model['chips'] != 1 else ''})"
    )
    for index, chip in enumerate(info["chips"]):
        print(
            f"  chip {index}  : {chip['num_instructions']:,d} instructions, "
            f"{chip['image_bytes']:,d} B image, "
            f"{chip['global_tensors']} global tensors, "
            f"{chip['fast_cycles']:,d} fast-model cycles"
        )
    if info["transfers"]:
        print(
            f"transfers : {info['transfers']} inter-chip edges, "
            f"{info['interchip_bytes']:,d} B per inference"
        )
    if info["isa_extensions"]:
        print(f"isa ext   : {', '.join(info['isa_extensions'])}")
    return 0


def _read_trace(path: str) -> List[int]:
    """Release cycles from a trace file: JSON array or whitespace ints."""
    text = Path(path).read_text().strip()
    try:
        if not text:
            return []
        if text.startswith("["):
            return [int(c) for c in json.loads(text)]
        return [int(token) for token in text.split()]
    except (ValueError, TypeError) as exc:
        raise ConfigError(f"malformed arrival trace {path!r}: {exc}")


def _cmd_serve(args) -> int:
    plan = None
    if args.faults is not None:
        from repro.faults import load_fault_plan

        plan = load_fault_plan(args.faults)
    arrivals, batch = _watch_arrivals(args)
    server = _build_server(args, plan)
    print(server.summary())
    if plan is not None:
        print(f"  faults: {plan.describe()} [{plan.fingerprint()}]")
    print()
    fault_kwargs = {} if plan is None else {"faults": plan}
    if batch == 0:
        report = server.run_trace([], **fault_kwargs)
    else:
        report = server.submit(
            batch=batch, arrivals=arrivals, seed=args.seed,
            validate=not args.no_validate, **fault_kwargs,
        )
    if report.validated:
        print(
            f"validated : bit-exact vs golden model "
            f"({report.batch} inputs, each in isolation)"
        )
        print()
    print(report)
    if args.json:
        _write_json(
            {
                "model": args.model,
                "strategy": args.strategy,
                "input_size": args.input_size,
                "num_classes": args.num_classes,
                "chips": args.chips,
                "replicas": args.replicas,
                "faults": plan.fingerprint() if plan is not None else None,
                "resident": args.resident,
                "report": report.to_dict(),
            },
            args.json,
        )
        print(f"\nwrote {args.json}")
    return 0


def _build_server(args, plan):
    """Deployment or Fleet from serve/watch-style arguments."""
    if args.replicas > 1 or plan is not None:
        from repro.serve import Fleet, _is_artifact_path

        if _is_artifact_path(args.model):
            return Fleet(
                args.model, arch=_resolve_arch(args),
                replicas=args.replicas, policy=args.policy, tier=args.tier,
                resident_weights=args.resident,
            )
        return Fleet(
            args.model, arch=_resolve_arch(args),
            replicas=args.replicas, policy=args.policy,
            chips=args.chips, strategy=args.strategy, tier=args.tier,
            input_size=args.input_size, num_classes=args.num_classes,
            resident_weights=args.resident,
        )
    return _build_deployment(args, tier=args.tier)


def _watch_arrivals(args):
    """(arrivals, batch) from watch-style arrival flags."""
    from repro.serve import (
        BackToBack,
        FixedInterval,
        FixedRate,
        PoissonArrivals,
        TraceArrivals,
    )

    batch = args.batch
    if args.trace is not None:
        trace = _read_trace(args.trace)
        return TraceArrivals(trace), len(trace)
    if args.poisson is not None:
        return PoissonArrivals(args.poisson, seed=args.arrival_seed), batch
    if args.rate is not None:
        return FixedRate(args.rate), batch
    if args.interval is not None:
        return FixedInterval(args.interval), batch
    return BackToBack(), batch


def _cmd_watch(args) -> int:
    from repro.console import headless_watch, run_watch_app, snapshot_json

    plan = None
    if args.faults is not None:
        from repro.faults import load_fault_plan

        plan = load_fault_plan(args.faults)
    arrivals, batch = _watch_arrivals(args)
    server = _build_server(args, plan)
    releases = arrivals.release_cycles(batch, server.arch.chip.cycle_ns)

    if args.snapshot is not None:
        snapshot = headless_watch(
            server, releases, seed=args.seed,
            validate=not args.no_validate, faults=plan,
            window=args.window,
        )
        text = snapshot_json(snapshot)
        if args.snapshot == "-":
            print(text)
        else:
            Path(args.snapshot).write_text(text + "\n")
            print(f"wrote {args.snapshot}")
        return 0

    snapshot = run_watch_app(
        server, releases, seed=args.seed, validate=not args.no_validate,
        faults=plan, window=args.window, pace_s=args.pace,
    )
    print(snapshot_json(snapshot))
    return 0


def _build_cache(args) -> Optional[ResultCache]:
    if args.no_cache:
        return None
    return ResultCache(args.cache_dir or default_cache_dir())


def _progress_printer(quiet: bool):
    if quiet:
        return None

    def progress(done, total, point):
        tag = "cache hit" if point.cached else "evaluated"
        print(
            f"[{done:>3d}/{total}] {point.model:<16s}{point.strategy:>12s}"
            f"  chips={point.chips:<2d}B={point.batch:<3d}"
            f"MG={point.mg_size:<3d}flit={point.flit_bytes:<3d}"
            f" TOPS={point.tops:6.2f}  ({tag})",
            flush=True,
        )

    return progress


def _fault_plans(entries: List[str]):
    """``plan.json`` / ``none`` entries -> FaultPlan axis tuple."""
    from repro.faults import load_fault_plan

    return tuple(
        None if entry.lower() == "none" else load_fault_plan(entry)
        for entry in entries
    )


def _cmd_sweep(args) -> int:
    spec = SweepSpec(
        models=tuple(args.models),
        strategies=tuple(args.strategies),
        mg_sizes=tuple(args.mg_sizes) if args.mg_sizes else None,
        flit_sizes=tuple(args.flit_sizes) if args.flit_sizes else None,
        input_sizes=tuple(args.input_sizes),
        num_classes=args.num_classes,
        base_arch=_resolve_arch(args),
        closure_limit=args.closure_limit,
        chip_counts=tuple(args.chips),
        batch_sizes=tuple(args.batch),
        arrival_rates=tuple(args.arrival_rates),
        replica_counts=tuple(args.replicas),
        fault_plans=_fault_plans(args.fault_plans),
        resident_modes=tuple(args.resident_modes),
    )
    cache = _build_cache(args)
    result = run_sweep(
        spec,
        workers=args.workers,
        cache=cache,
        progress=_progress_printer(args.quiet),
        resume=not args.no_resume,
    )
    rows = [pt.to_dict() for pt in result.points]
    print()
    print(_format_table(rows))
    stats = result.stats
    print(
        f"\n{stats.total_points} points in {stats.wall_time_s:.1f}s "
        f"({stats.workers} worker{'s' if stats.workers != 1 else ''}): "
        f"{stats.evaluated} evaluated, {stats.cache_hits} cache hits "
        f"({100 * stats.hit_rate:.0f}%)"
    )
    if stats.resumed_points:
        print(
            f"resumed: {stats.resumed_points} points completed by a "
            f"previous interrupted run of this sweep"
        )
    if cache is not None:
        print(f"cache: {cache.root} ({len(cache)} entries)")
    checks = []
    if args.spot_check:
        checks = spot_check(
            result,
            n=args.spot_check,
            input_size=args.spot_input_size,
            num_classes=min(args.num_classes, 10),
        )
        print(
            f"\ncycle-accurate spot check of the top {len(checks)} "
            f"point{'s' if len(checks) != 1 else ''} "
            f"(at {args.spot_input_size} px, bit-exact vs golden model):"
        )
        for chk in checks:
            d = chk.to_dict()
            print(
                f"  {d['model']:<16s}{d['strategy']:>6s}  MG={d['mg_size']:<3d}"
                f"flit={d['flit_bytes']:<3d} cycle-sim {d['cycles']:>12,d}  "
                f"fast model {d['fast_cycles']:>12,d}  "
                f"ratio {d['cycle_ratio']:.2f}  "
                f"{'validated' if d['validated'] else 'UNVALIDATED'}"
            )
    if args.json:
        payload = result.to_dict()
        if checks:
            payload["spot_checks"] = [chk.to_dict() for chk in checks]
        _write_json(payload, args.json)
        print(f"wrote {args.json}")
    if args.csv:
        _write_csv(rows, args.csv)
        print(f"wrote {args.csv}")
    return 0


def _cmd_compare(args) -> int:
    cache = _build_cache(args)
    results = strategy_comparison(
        args.models,
        arch=_resolve_arch(args),
        strategies=tuple(args.strategies),
        input_size=args.input_size,
        num_classes=args.num_classes,
        workers=args.workers,
        cache=cache,
    )
    baseline = args.strategies[0]
    print(
        f"normalized speed / energy ({baseline} = 1.00), "
        f"input {args.input_size}x{args.input_size}"
    )
    print(f"{'model':<16s}" + "".join(f"{s:>22s}" for s in args.strategies))
    for model, by_strategy in results.items():
        base = by_strategy[baseline].report
        cells = []
        for strategy in args.strategies:
            report = by_strategy[strategy].report
            speed = base.cycles / report.cycles
            energy = report.total_energy_mj / base.total_energy_mj
            cells.append(f"{speed:7.2f}x /{energy:6.2f}E")
        print(f"{model:<16s}" + "".join(f"{c:>22s}" for c in cells))
    if args.json:
        _write_json(
            {
                model: {
                    strategy: point.to_dict()
                    for strategy, point in by_strategy.items()
                }
                for model, by_strategy in results.items()
            },
            args.json,
        )
        print(f"wrote {args.json}")
    return 0


def _pareto_rows(rows: Sequence[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Non-dominated (energy_mj minimised, tops maximised) rows.

    The same :func:`repro.explore.pareto_filter` backing
    :meth:`SweepResult.pareto_front`, applied to the JSON row
    dictionaries a saved sweep file carries.
    """
    from repro.explore import pareto_filter

    return pareto_filter(list(rows), lambda r: (r["energy_mj"], r["tops"]))


def _cmd_report(args) -> int:
    try:
        payload = json.loads(Path(args.results).read_text())
        rows = payload["points"]
    except (OSError, ValueError, KeyError) as exc:
        print(f"error: cannot read sweep results {args.results!r}: {exc}",
              file=sys.stderr)
        return 2
    print(_format_table(rows))
    spec = payload.get("spec", {})
    stats = payload.get("stats", {})
    if spec:
        print(
            f"\nsweep of {spec.get('num_points', len(rows))} points over "
            f"models={spec.get('models')} strategies={spec.get('strategies')}"
        )
    if stats:
        print(
            f"executed with {stats.get('workers')} worker(s) in "
            f"{stats.get('wall_time_s', 0.0):.1f}s, "
            f"{stats.get('cache_hits', 0)} cache hits"
        )
    if not rows:
        # An empty sweep file is well-formed (e.g. a filtered export):
        # there is nothing to rank or filter, but it is not an error.
        print("\n(no points)")
        if args.csv:
            _write_csv(rows, args.csv)
            print(f"wrote {args.csv}")
        return 0
    if any(args.best not in row for row in rows):
        print(
            f"error: results file predates the {args.best!r} column; "
            f"re-run the sweep to rank by it",
            file=sys.stderr,
        )
        return 2
    reverse = args.best not in _ASCENDING_METRICS
    ranked = sorted(rows, key=lambda r: r[args.best], reverse=reverse)
    print(f"\ntop {min(args.top, len(ranked))} by {args.best}:")
    print(_format_table(ranked[: args.top]))
    if args.pareto:
        front = _pareto_rows(rows)
        print(
            f"\nenergy/throughput Pareto front "
            f"({len(front)}/{len(rows)} points non-dominated):"
        )
        print(_format_table(front))
    if args.csv:
        _write_csv(rows, args.csv)
        print(f"wrote {args.csv}")
    return 0


# ---------------------------------------------------------------------------
# Parser
# ---------------------------------------------------------------------------

def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description=(
            "CIMFlow reproduction: compile, simulate and explore DNN "
            "workloads on digital CIM architectures."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    # run -------------------------------------------------------------------
    run = sub.add_parser(
        "run",
        help="compile + cycle-accurately simulate one model (Fig. 2 workflow)",
    )
    run.add_argument(
        "model",
        help=f"model zoo name ({', '.join(available_models())}) "
             f"or a compiled .artifact file",
    )
    _add_arch_options(run)
    run.add_argument("--strategy", default="dp",
                     choices=("generic", "duplication", "dp"))
    run.add_argument("--chips", type=int, default=1, metavar="N",
                     help="pipeline-shard the model across N identical "
                          "chips (default 1: single chip)")
    run.add_argument("--batch", type=int, default=1, metavar="B",
                     help="stream B independent inputs through the "
                          "configuration (throughput mode: a multi-chip "
                          "pipeline overlaps inputs across chips, one chip "
                          "replays them sequentially; default 1)")
    run.add_argument("--input-size", type=int, default=32,
                     help="input resolution (cycle sim; keep small)")
    run.add_argument("--num-classes", type=int, default=10)
    run.add_argument("--seed", type=int, default=0,
                     help="seed for the random input tensor")
    run.add_argument("--no-validate", action="store_true",
                     help="skip the golden-model output check")
    run.add_argument("--json", metavar="FILE", help="write the report as JSON")
    run.set_defaults(func=_cmd_run)

    # compile ---------------------------------------------------------------
    compile_ = sub.add_parser(
        "compile",
        help="compile once and write a content-addressed .artifact file",
    )
    compile_.add_argument(
        "model",
        help=f"model zoo name ({', '.join(available_models())}) "
             f"or a graph JSON file (see repro.graph.save_graph)",
    )
    compile_.add_argument("-o", "--output", required=True, metavar="FILE",
                          help="artifact file to write (convention: "
                               "model.artifact)")
    _add_arch_options(compile_)
    compile_.add_argument("--strategy", default="dp",
                          choices=("generic", "duplication", "dp"))
    compile_.add_argument("--chips", type=int, default=1, metavar="N",
                          help="pipeline-shard across N chips (default 1)")
    compile_.add_argument("--input-size", type=int, default=32,
                          help="input resolution baked into the artifact "
                               "(zoo models only)")
    compile_.add_argument("--num-classes", type=int, default=10)
    compile_.set_defaults(func=_cmd_compile)

    # inspect ---------------------------------------------------------------
    inspect_ = sub.add_parser(
        "inspect",
        help="print the manifest of a compiled .artifact file",
    )
    inspect_.add_argument("artifact", help="artifact file to inspect")
    inspect_.add_argument("--json", action="store_true",
                          help="emit the manifest as JSON")
    inspect_.set_defaults(func=_cmd_inspect)

    # serve -----------------------------------------------------------------
    def _add_serving_flags(parser, batch_default):
        """The serving surface shared by ``serve`` and ``watch``."""
        parser.add_argument(
            "model",
            help=f"model zoo name ({', '.join(available_models())}) "
                 f"or a compiled .artifact file",
        )
        _add_arch_options(parser)
        parser.add_argument("--strategy", default="dp",
                            choices=("generic", "duplication", "dp"))
        parser.add_argument("--chips", type=int, default=1, metavar="N",
                            help="pipeline-shard the deployment across N "
                                 "chips")
        parser.add_argument("--replicas", type=int, default=1, metavar="R",
                            help="serve through a fleet of R identical "
                                 "replicas fed from one arrival stream "
                                 "(default 1)")
        parser.add_argument("--policy", choices=("rr", "jsq"), default="rr",
                            help="fleet dispatch policy: round-robin or "
                                 "join-shortest-queue (with --replicas > 1)")
        parser.add_argument("--batch", type=int, default=batch_default,
                            metavar="B",
                            help=f"number of inputs to submit (default "
                                 f"{batch_default}; ignored with --trace, "
                                 f"which sets it)")
        arrival = parser.add_mutually_exclusive_group()
        arrival.add_argument("--rate", type=float, default=None,
                             metavar="INF_S",
                             help="fixed-rate arrivals in inferences/second "
                                  "(default: back-to-back)")
        arrival.add_argument("--interval", type=int, default=None,
                             metavar="CYC",
                             help="fixed arrival interval in cycles")
        arrival.add_argument("--poisson", type=float, default=None,
                             metavar="INF_S",
                             help="Poisson arrivals at a mean rate "
                                  "(seeded by --arrival-seed)")
        arrival.add_argument("--trace", metavar="FILE", default=None,
                             help="recorded arrival trace: JSON array or "
                                  "whitespace-separated release cycles")
        parser.add_argument("--arrival-seed", type=int, default=0,
                            help="seed for --poisson arrival draws")
        parser.add_argument("--faults", metavar="FILE", default=None,
                            help="JSON fault plan (repro.faults."
                                 "save_fault_plan) to replay "
                                 "deterministically against the fleet: "
                                 "crashes, slowdowns, link degradation, "
                                 "transient failures with retries/deadlines")
        parser.add_argument("--resident", action="store_true",
                            help="open a resident-weights session: weights "
                                 "load once per shard on the first "
                                 "submission, later inputs replay only "
                                 "activation traffic (bit-identical "
                                 "outputs; needs a full compilation, not a "
                                 ".artifact)")
        parser.add_argument("--tier", choices=("cyclesim", "fast"),
                            default="cyclesim",
                            help="cyclesim = exact execution + bit-exact "
                                 "validation; fast = analytical pricing of "
                                 "the same schedule (paper-scale models)")
        parser.add_argument("--input-size", type=int, default=32,
                            help="input resolution (keep small on cyclesim)")
        parser.add_argument("--num-classes", type=int, default=10)
        parser.add_argument("--seed", type=int, default=0,
                            help="seed for the random input tensors")
        parser.add_argument("--no-validate", action="store_true",
                            help="skip the golden-model output checks")

    serve = sub.add_parser(
        "serve",
        help="deploy one model and stream inputs through it under an "
             "arrival process (latency percentiles, utilisation)",
    )
    _add_serving_flags(serve, batch_default=8)
    serve.add_argument("--json", metavar="FILE",
                       help="write the serving report as JSON")
    serve.set_defaults(func=_cmd_serve)

    # watch -----------------------------------------------------------------
    watch = sub.add_parser(
        "watch",
        help="serve a scripted arrival stream through the async runtime "
             "and watch it live (Textual console), or dump the operator "
             "tables as JSON with --snapshot",
    )
    _add_serving_flags(watch, batch_default=16)
    watch.add_argument("--snapshot", metavar="FILE", nargs="?", const="-",
                       default=None,
                       help="headless mode: run the whole session "
                            "immediately and dump the console tables as "
                            "JSON to FILE ('-' or no value = stdout); "
                            "needs no optional dependencies")
    watch.add_argument("--window", type=int, default=64, metavar="N",
                       help="rolling window (completions) for the live "
                            "p50/p99 latency columns (default 64)")
    watch.add_argument("--pace", type=float, default=0.2, metavar="S",
                       help="live mode: wall seconds between submissions "
                            "(default 0.2)")
    watch.set_defaults(func=_cmd_watch)

    # sweep -----------------------------------------------------------------
    sweep = sub.add_parser(
        "sweep",
        help="fast-model design-space sweep (parallel, cached)",
    )
    sweep.add_argument("--models", type=_split_csv, required=True,
                       metavar="M[,M...]")
    sweep.add_argument("--strategies", type=_split_csv, default=["dp"],
                       metavar="S[,S...]")
    sweep.add_argument("--mg-sizes", type=_int_list, default=None,
                       metavar="N[,N...]",
                       help="macro-group sizes to sweep (default: base arch)")
    sweep.add_argument("--flit-sizes", type=_int_list, default=None,
                       metavar="N[,N...]",
                       help="NoC flit widths to sweep (default: base arch)")
    sweep.add_argument("--input-sizes", type=_int_list, default=[224],
                       metavar="N[,N...]")
    sweep.add_argument("--chips", type=_int_list, default=[1],
                       metavar="N[,N...]",
                       help="chip counts to sweep (multi-chip pipeline "
                            "sharding; default: single chip)")
    sweep.add_argument("--batch", type=_int_list, default=[1],
                       metavar="B[,B...]",
                       help="streaming batch sizes to sweep (throughput "
                            "mode; default: single-shot latency)")
    sweep.add_argument("--arrival-rates", type=_rate_list, default=[None],
                       metavar="R[,R...]",
                       help="arrival rates (inferences/s) to sweep through "
                            "the serving queueing law; 'none' = "
                            "back-to-back (the default)")
    sweep.add_argument("--replicas", type=_int_list, default=[1],
                       metavar="R[,R...]",
                       help="fleet replica counts to sweep (round-robin "
                            "dispatch across R identical replicas; "
                            "default: single deployment)")
    sweep.add_argument("--fault-plans", type=_split_csv, default=["none"],
                       metavar="F[,F...]",
                       help="fault-plan JSON files to sweep as an "
                            "availability axis; 'none' = fault-free "
                            "serving (the default)")
    sweep.add_argument("--resident-modes", type=_bool_list, default=[False],
                       metavar="B[,B...]",
                       help="resident-weights modes to sweep "
                            "(e.g. 'false,true'): true prices a resident "
                            "serving session -- warm per-input replay after "
                            "a run-once weight-load phase (default: reload "
                            "per input)")
    sweep.add_argument("--num-classes", type=int, default=1000)
    sweep.add_argument("--closure-limit", type=_closure_limit, default=None,
                       metavar="N|model=N,...",
                       help="DP closure enumeration cap (int, 'none', or "
                            "per-model model=N pairs)")
    _add_arch_options(sweep)
    sweep.add_argument("--workers", type=int, default=1,
                       help="process-pool size (1 = serial)")
    sweep.add_argument("--cache-dir", metavar="DIR",
                       help=f"result cache location (default: {default_cache_dir()})")
    sweep.add_argument("--no-cache", action="store_true",
                       help="evaluate every point, bypassing the cache")
    sweep.add_argument("--no-resume", action="store_true",
                       help="ignore (and do not write) the sweep-level "
                            "resume manifest")
    sweep.add_argument("--spot-check", type=int, default=0, metavar="N",
                       help="re-run the best N points on the cycle-accurate "
                            "simulator to bound fast-model error")
    sweep.add_argument("--spot-input-size", type=int, default=32, metavar="PX",
                       help="input resolution for --spot-check re-runs "
                            "(default 32; keep small)")
    sweep.add_argument("--json", metavar="FILE",
                       help="write full results (readable by 'report')")
    sweep.add_argument("--csv", metavar="FILE", help="write results as CSV")
    sweep.add_argument("--quiet", action="store_true",
                       help="suppress per-point progress lines")
    sweep.set_defaults(func=_cmd_sweep)

    # compare ---------------------------------------------------------------
    compare = sub.add_parser(
        "compare",
        help="normalized strategy comparison (Fig. 5)",
    )
    compare.add_argument("--models", type=_split_csv, required=True,
                         metavar="M[,M...]")
    compare.add_argument("--strategies", type=_split_csv,
                         default=["generic", "duplication", "dp"],
                         metavar="S[,S...]",
                         help="first strategy is the normalization baseline")
    compare.add_argument("--input-size", type=int, default=224)
    compare.add_argument("--num-classes", type=int, default=1000)
    _add_arch_options(compare)
    compare.add_argument("--workers", type=int, default=1)
    compare.add_argument("--cache-dir", metavar="DIR")
    compare.add_argument("--no-cache", action="store_true")
    compare.add_argument("--json", metavar="FILE")
    compare.set_defaults(func=_cmd_compare)

    # report ----------------------------------------------------------------
    report = sub.add_parser(
        "report",
        help="re-render or convert a saved 'sweep --json' results file",
    )
    report.add_argument("results", help="JSON file written by 'sweep --json'")
    report.add_argument("--best", default="tops",
                        choices=_BEST_METRICS,
                        help="metric for the ranked summary")
    report.add_argument("--top", type=int, default=5,
                        help="how many top points to list")
    report.add_argument("--pareto", action="store_true",
                        help="list the energy/throughput Pareto front "
                             "(non-dominated energy_mj vs tops points)")
    report.add_argument("--csv", metavar="FILE", help="convert points to CSV")
    report.set_defaults(func=_cmd_report)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except (ReproError, OSError) as exc:
        # Every typed framework error (and plain file-system failure on
        # user-supplied paths) exits nonzero with a one-line message --
        # a raw traceback from a CLI verb is always a bug.
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
