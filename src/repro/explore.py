"""Design-space exploration drivers behind the paper's evaluation section.

These functions regenerate the experiments of Sec. IV:

- :func:`evaluate_fast` -- plan a (model, architecture, strategy) point and
  analyse it with the row-granular fast model (used at paper-scale
  224x224 resolution, DESIGN.md substitution #5);
- :func:`strategy_comparison` -- Fig. 5 (normalized speed/energy of the
  three compilation strategies);
- :func:`mg_flit_sweep` -- Fig. 6 (energy breakdown and throughput across
  macro-group sizes and NoC flit widths);
- :func:`design_space` -- Fig. 7 (the SW/HW co-design scatter).
"""

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.config import ArchConfig, default_arch, with_flit_bytes, with_mg_size
from repro.compiler.pipeline import plan_graph
from repro.compiler.plan import ExecutionPlan
from repro.graph.graph import ComputationGraph
from repro.graph.models import get_model
from repro.sim.fastmodel import FastReport, analyze_plan

#: Axes the paper sweeps in Fig. 6 / Fig. 7.
MG_SIZES = (4, 8, 12, 16)
FLIT_SIZES = (8, 16)


@dataclass
class DesignPoint:
    """One evaluated (model, architecture, strategy) combination."""

    model: str
    strategy: str
    mg_size: int
    flit_bytes: int
    report: FastReport
    plan: ExecutionPlan = field(repr=False, default=None)

    @property
    def cycles(self) -> int:
        return self.report.cycles

    @property
    def energy_mj(self) -> float:
        return self.report.total_energy_mj

    @property
    def tops(self) -> float:
        return self.report.tops


_graph_cache: Dict[Tuple[str, int, int], ComputationGraph] = {}


def _cached_graph(model: str, input_size: int, num_classes: int) -> ComputationGraph:
    key = (model, input_size, num_classes)
    if key not in _graph_cache:
        _graph_cache[key] = get_model(
            model, input_size=input_size, num_classes=num_classes
        )
    return _graph_cache[key]


def evaluate_fast(
    model: str,
    arch: Optional[ArchConfig] = None,
    strategy: str = "dp",
    input_size: int = 224,
    num_classes: int = 1000,
    closure_limit: Optional[int] = None,
) -> DesignPoint:
    """Plan and analyse one design point with the fast model."""
    arch = arch or default_arch()
    graph = _cached_graph(model, input_size, num_classes)
    plan = plan_graph(graph, arch, strategy, closure_limit)
    report = analyze_plan(plan)
    return DesignPoint(
        model=model,
        strategy=strategy,
        mg_size=arch.chip.core.cim_unit.macro_group.num_macros,
        flit_bytes=arch.chip.noc.flit_bytes,
        report=report,
        plan=plan,
    )


def strategy_comparison(
    models: Iterable[str],
    arch: Optional[ArchConfig] = None,
    strategies: Iterable[str] = ("generic", "duplication", "dp"),
    input_size: int = 224,
    num_classes: int = 1000,
) -> Dict[str, Dict[str, DesignPoint]]:
    """Fig. 5: every strategy on every model at the default architecture."""
    arch = arch or default_arch()
    results: Dict[str, Dict[str, DesignPoint]] = {}
    for model in models:
        results[model] = {}
        for strategy in strategies:
            results[model][strategy] = evaluate_fast(
                model, arch, strategy, input_size, num_classes
            )
    return results


def mg_flit_sweep(
    model: str,
    strategy: str = "generic",
    mg_sizes: Iterable[int] = MG_SIZES,
    flit_sizes: Iterable[int] = FLIT_SIZES,
    base_arch: Optional[ArchConfig] = None,
    input_size: int = 224,
    num_classes: int = 1000,
) -> List[DesignPoint]:
    """Fig. 6 / Fig. 7 hardware axes: MG size x NoC flit width."""
    base = base_arch or default_arch()
    points = []
    for flit in flit_sizes:
        for mg in mg_sizes:
            arch = with_flit_bytes(with_mg_size(base, mg), flit)
            points.append(
                evaluate_fast(model, arch, strategy, input_size, num_classes)
            )
    return points


def design_space(
    model: str,
    strategies: Iterable[str] = ("generic", "dp"),
    mg_sizes: Iterable[int] = MG_SIZES,
    flit_sizes: Iterable[int] = FLIT_SIZES,
    base_arch: Optional[ArchConfig] = None,
    input_size: int = 224,
    num_classes: int = 1000,
) -> List[DesignPoint]:
    """Fig. 7: the full SW/HW cross product for one model."""
    points = []
    for strategy in strategies:
        points.extend(
            mg_flit_sweep(
                model, strategy, mg_sizes, flit_sizes, base_arch,
                input_size, num_classes,
            )
        )
    return points
