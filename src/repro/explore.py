"""Design-space exploration engine behind the paper's evaluation section.

The paper's Sec. IV experiments are all cross-product sweeps over the
same axes -- models x compilation strategies x macro-group sizes x NoC
flit widths x input resolutions.  This module turns that into a proper
subsystem:

- :class:`SweepSpec` declaratively describes the cross product;
- :func:`run_sweep` executes it, fanning points out over a
  ``concurrent.futures.ProcessPoolExecutor`` (each worker keeps its own
  model-graph cache) and consulting an optional content-addressed on-disk
  :class:`~repro.explore_cache.ResultCache` so repeated sweeps skip
  already-evaluated points;
- :func:`evaluate_fast` plans and analyses a single point in-process
  (returning the full :class:`~repro.compiler.plan.ExecutionPlan` for
  inspection).

The figure drivers are thin wrappers over the engine:

- :func:`strategy_comparison` -- Fig. 5 (normalized speed/energy of the
  three compilation strategies);
- :func:`mg_flit_sweep` -- Fig. 6 (energy breakdown and throughput across
  macro-group sizes and NoC flit widths);
- :func:`design_space` -- Fig. 7 (the SW/HW co-design scatter).

The ``python -m repro sweep`` CLI (:mod:`repro.cli`) exposes the engine
from the command line with JSON/CSV export.  See ``docs/ARCHITECTURE.md``
("Design-space exploration") for the full picture.
"""

import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field, replace
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Tuple,
    Union,
)

from repro.config import (
    ArchConfig,
    arch_fingerprint,
    default_arch,
    with_flit_bytes,
    with_mg_size,
)
from repro.compiler.partition import shard_graph
from repro.compiler.pipeline import plan_graph
from repro.compiler.plan import ExecutionPlan
from repro.errors import ConfigError
from repro.faults import FaultPlan
from repro.explore_cache import (
    ResultCache,
    SweepManifest,
    point_key,
    sweep_fingerprint,
)
from repro.graph.graph import ComputationGraph
from repro.graph.models import get_model
from repro.sim.fastmodel import (
    FastReport,
    analyze_plan,
    analyze_plan_resident,
    analyze_sharded,
    analyze_sharded_resident,
    serve_arrivals,
    serve_fleet,
    stream_batched,
)

#: Axes the paper sweeps in Fig. 6 / Fig. 7.
MG_SIZES = (4, 8, 12, 16)
FLIT_SIZES = (8, 16)

#: Rough relative evaluation cost of each zoo model (dominated by DP
#: closure enumeration and per-node lowering at paper resolution),
#: used only to order sweep work -- never to change results.
_MODEL_COST = {
    "vgg19": 8.0,
    "efficientnetb0": 6.0,
    "resnet18": 3.0,
    "mobilenetv2": 2.5,
    "tiny_mlp": 0.05,
    "tiny_cnn": 0.08,
    "tiny_resnet": 0.1,
}

_STRATEGY_COST = {"generic": 1.0, "duplication": 1.6, "dp": 4.0}

#: Per-model closure limit: a plain int, a {model: limit} map, or None.
#: Mappings are normalised to sorted (model, limit) tuples inside
#: :class:`SweepSpec` so specs stay hashable.
ClosureLimit = Union[
    None,
    int,
    Mapping[str, Optional[int]],
    Tuple[Tuple[str, Optional[int]], ...],
]


@dataclass
class DesignPoint:
    """One evaluated (model, architecture, strategy) combination."""

    model: str
    strategy: str
    mg_size: int
    flit_bytes: int
    report: FastReport
    plan: Optional[ExecutionPlan] = field(repr=False, default=None)
    input_size: int = 224
    num_classes: int = 1000
    chips: int = 1
    batch: int = 1
    arrival_rate: Optional[float] = None
    replicas: int = 1
    fault_plan: Optional[FaultPlan] = None
    resident_weights: bool = False
    cached: bool = field(default=False, compare=False)

    @property
    def cycles(self) -> int:
        return self.report.cycles

    @property
    def energy_mj(self) -> float:
        return self.report.total_energy_mj

    @property
    def tops(self) -> float:
        return self.report.tops

    @property
    def throughput_inf_s(self) -> float:
        """Sustained inferences/second (steady-state streaming rate).

        Fleet points (``replicas > 1``) scale linearly: each replica
        sustains the per-replica steady-state rate independently.
        """
        return self.report.throughput_inf_per_s * self.replicas

    @property
    def energy_per_inf_mj(self) -> float:
        return self.report.energy_per_inference_mj

    def _cycles_to_ms(self, cycles: int) -> float:
        return cycles / (self.report.clock_mhz * 1e3)

    @property
    def p50_latency_ms(self) -> Optional[float]:
        """p50 serving latency (arrival-rate points only, else ``None``)."""
        if self.arrival_rate is None:
            return None
        return self._cycles_to_ms(self.report.p50_latency_cycles)

    @property
    def p95_latency_ms(self) -> Optional[float]:
        if self.arrival_rate is None:
            return None
        return self._cycles_to_ms(self.report.p95_latency_cycles)

    @property
    def p99_latency_ms(self) -> Optional[float]:
        if self.arrival_rate is None:
            return None
        return self._cycles_to_ms(self.report.p99_latency_cycles)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe form used by the CLI exporters (plan is not included)."""
        return {
            "model": self.model,
            "strategy": self.strategy,
            "mg_size": self.mg_size,
            "flit_bytes": self.flit_bytes,
            "input_size": self.input_size,
            "num_classes": self.num_classes,
            "chips": self.chips,
            "batch": self.batch,
            "arrival_rate": self.arrival_rate,
            "replicas": self.replicas,
            "fault_plan": (
                self.fault_plan.describe()
                if self.fault_plan is not None else None
            ),
            "resident_weights": self.resident_weights,
            "load_cycles": self.report.load_cycles,
            "dropped": self.report.dropped,
            "retries": self.report.retries,
            "goodput_inf_s": self.report.goodput_inf_per_s,
            "cycles": self.cycles,
            "time_ms": self.report.time_ms,
            "energy_mj": self.energy_mj,
            "tops": self.tops,
            "throughput_inf_s": self.throughput_inf_s,
            "energy_per_inf_mj": self.energy_per_inf_mj,
            "p50_latency_ms": self.p50_latency_ms,
            "p95_latency_ms": self.p95_latency_ms,
            "p99_latency_ms": self.p99_latency_ms,
            "cached": self.cached,
            "energy_groups_mj": self.report.grouped_energy_mj(),
            "report": self.report.to_dict(),
        }


def pareto_filter(items, coords: Callable[[Any], Tuple[float, float]]):
    """Non-dominated subset of ``items`` under (minimise, maximise).

    ``coords(item)`` returns ``(cost, benefit)``; an item survives iff
    no other item has cost <= and benefit >= with at least one strict
    inequality.  Coincident duplicates keep only the first occurrence;
    the result is sorted by ascending cost.  Shared by
    :meth:`SweepResult.pareto_front` and the CLI's ``report --pareto``.
    """
    items = list(items)
    pairs = [coords(item) for item in items]
    seen = set()
    front = []
    for (cost, benefit), item in zip(pairs, items):
        if (cost, benefit) in seen:
            continue
        dominated = any(
            (oc <= cost and ob >= benefit) and (oc < cost or ob > benefit)
            for oc, ob in pairs
        )
        if not dominated:
            seen.add((cost, benefit))
            front.append(item)
    return sorted(front, key=lambda item: (coords(item)[0], -coords(item)[1]))


_graph_cache: Dict[Tuple[str, int, int], ComputationGraph] = {}


def _cached_graph(model: str, input_size: int, num_classes: int) -> ComputationGraph:
    """Process-local model-graph cache.

    Sweep workers are separate processes, so each naturally keeps its own
    copy and a model built once per worker is reused for every strategy /
    architecture point that worker evaluates.
    """
    key = (model, input_size, num_classes)
    if key not in _graph_cache:
        _graph_cache[key] = get_model(
            model, input_size=input_size, num_classes=num_classes
        )
    return _graph_cache[key]


def _rate_releases(arch: ArchConfig, rate: float, batch: int) -> List[int]:
    """Fixed-rate release cycles for an ``arrival_rate`` sweep point."""
    from repro.serve import FixedRate

    return FixedRate(rate).release_cycles(batch, arch.chip.cycle_ns)


def evaluate_fast(
    model: str,
    arch: Optional[ArchConfig] = None,
    strategy: str = "dp",
    input_size: int = 224,
    num_classes: int = 1000,
    closure_limit: Optional[int] = None,
    chips: int = 1,
    batch: int = 1,
    arrival_rate: Optional[float] = None,
    replicas: int = 1,
    fault_plan: Optional[FaultPlan] = None,
    resident_weights: bool = False,
) -> DesignPoint:
    """Plan and analyse one design point with the fast model.

    Unlike :func:`run_sweep` results, the returned point carries the full
    :class:`ExecutionPlan` for inspection (the *first shard's* plan for
    multi-chip points -- ``chips > 1`` pipeline-shards the model and
    composes the per-shard analyses over the inter-chip link model).
    ``batch > 1`` evaluates the point in throughput mode: a multi-chip
    pipeline streams the batch (closed-form ``fill + drain + (B-1) *
    bottleneck`` law), a single chip replays it sequentially.
    ``arrival_rate`` (inferences/s) instead releases the batch at a
    fixed rate through the serving queueing law
    (:func:`repro.sim.fastmodel.serve_arrivals`), adding latency
    percentiles to the report.  ``replicas > 1`` prices a serving
    fleet: the releases are round-robined across that many identical
    replicas (:func:`repro.sim.fastmodel.serve_fleet`).  ``fault_plan``
    replays a deterministic :class:`repro.faults.FaultPlan` against the
    fleet, adding dropped/retry counts and goodput to the report.
    ``resident_weights`` prices a resident-weights serving session
    (:class:`repro.serve.Deployment` with ``resident_weights=True``):
    every input replays the *warm* per-shard analysis (hoistable weight
    loads removed), the session pays the run-once load phase before the
    first release, and the hoisted load energy is charged exactly once
    rather than per input.
    """
    if batch < 1:
        raise ConfigError(f"batch must be >= 1, got {batch}")
    if replicas < 1:
        raise ConfigError(f"replicas must be >= 1, got {replicas}")
    arch = arch or default_arch()
    pspec = PointSpec(
        model=model,
        strategy=strategy,
        input_size=input_size,
        num_classes=num_classes,
        closure_limit=closure_limit,
        chips=chips,
        batch=batch,
        arrival_rate=arrival_rate,
        replicas=replicas,
        fault_plan=fault_plan,
        resident_weights=resident_weights,
    )
    report, load_done, load_energy, plan = _analyze_base(pspec, arch)
    report = _derive_report(pspec, arch, (report, load_done, load_energy))
    return DesignPoint(
        model=model,
        strategy=strategy,
        mg_size=arch.chip.core.cim_unit.macro_group.num_macros,
        flit_bytes=arch.chip.noc.flit_bytes,
        report=report,
        plan=plan,
        input_size=input_size,
        num_classes=num_classes,
        chips=chips,
        batch=batch,
        arrival_rate=arrival_rate,
        replicas=replicas,
        fault_plan=fault_plan,
        resident_weights=resident_weights,
    )


# ---------------------------------------------------------------------------
# Sweep specification
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class PointSpec:
    """Fully-resolved coordinates of one sweep point (picklable).

    ``mg_size`` / ``flit_bytes`` of ``None`` mean "keep the base
    architecture's value" -- used by sweeps that only vary software axes.
    """

    model: str
    strategy: str
    input_size: int
    num_classes: int
    mg_size: Optional[int] = None
    flit_bytes: Optional[int] = None
    closure_limit: Optional[int] = None
    chips: int = 1
    batch: int = 1
    arrival_rate: Optional[float] = None
    replicas: int = 1
    fault_plan: Optional[FaultPlan] = None
    resident_weights: bool = False

    def resolve_arch(self, base: ArchConfig) -> ArchConfig:
        arch = base
        if self.mg_size is not None:
            arch = with_mg_size(arch, self.mg_size)
        if self.flit_bytes is not None:
            arch = with_flit_bytes(arch, self.flit_bytes)
        return arch

    def cache_key(self, base: ArchConfig) -> str:
        return point_key(
            self.model,
            self.resolve_arch(base),
            self.strategy,
            self.input_size,
            self.num_classes,
            self.closure_limit,
            self.chips,
            self.batch,
            self.arrival_rate,
            self.replicas,
            fault_fingerprint=(
                self.fault_plan.fingerprint()
                if self.fault_plan is not None else None
            ),
            resident=self.resident_weights,
        )


@dataclass(frozen=True)
class SweepSpec:
    """Declarative description of a cross-product design-space sweep.

    Axes with value ``None`` are not varied: the corresponding parameter
    of ``base_arch`` is used unchanged.  ``chip_counts`` is the
    multi-chip sharding axis (``(1,)`` by default: single chip);
    ``batch_sizes`` is the streaming-batch axis (``(1,)`` by default:
    single-shot latency mode); ``arrival_rates`` is the serving axis
    (inferences/s offered at a fixed rate -- ``(None,)`` by default:
    back-to-back batched mode; rate points add p50/p95/p99 latency to
    the report); ``replica_counts`` is the fleet axis (``(1,)`` by
    default: a single deployment; ``R > 1`` round-robins the offered
    stream across R identical replicas, pricing replicas-vs-chips
    trade-offs); ``fault_plans`` is the availability axis (``(None,)``
    by default: fault-free serving; a :class:`repro.faults.FaultPlan`
    entry replays that deterministic fault schedule against the fleet,
    pricing capacity under failures); ``resident_modes`` is the
    resident-weights axis (``(False,)`` by default: every input re-pays
    its weight loads; a ``True`` entry prices a resident serving
    session -- warm per-input replay after a run-once load phase, load
    energy charged once per session).  ``closure_limit`` bounds the DP
    partitioner's closure
    enumeration and may be given per model (Fig. 7 caps EfficientNetB0
    at 64 to keep the sweep tractable).
    """

    models: Tuple[str, ...]
    strategies: Tuple[str, ...] = ("dp",)
    mg_sizes: Optional[Tuple[int, ...]] = None
    flit_sizes: Optional[Tuple[int, ...]] = None
    input_sizes: Tuple[int, ...] = (224,)
    num_classes: int = 1000
    base_arch: Optional[ArchConfig] = None
    closure_limit: ClosureLimit = None
    chip_counts: Tuple[int, ...] = (1,)
    batch_sizes: Tuple[int, ...] = (1,)
    arrival_rates: Tuple[Optional[float], ...] = (None,)
    replica_counts: Tuple[int, ...] = (1,)
    fault_plans: Tuple[Optional[FaultPlan], ...] = (None,)
    resident_modes: Tuple[bool, ...] = (False,)

    def __post_init__(self):
        # Normalise iterables handed in as lists/generators to tuples so
        # the spec stays hashable and its cross product is re-iterable.
        for name in ("models", "strategies", "mg_sizes", "flit_sizes",
                     "input_sizes", "chip_counts", "batch_sizes",
                     "arrival_rates", "replica_counts", "fault_plans",
                     "resident_modes"):
            value = getattr(self, name)
            if value is not None and not isinstance(value, tuple):
                object.__setattr__(self, name, tuple(value))
        if isinstance(self.closure_limit, Mapping):
            object.__setattr__(
                self,
                "closure_limit",
                tuple(sorted(self.closure_limit.items())),
            )
        if not self.models:
            raise ConfigError("sweep needs at least one model")
        if not self.strategies:
            raise ConfigError("sweep needs at least one strategy")
        if not self.input_sizes:
            raise ConfigError("sweep needs at least one input size")
        if not self.chip_counts or any(c <= 0 for c in self.chip_counts):
            raise ConfigError("chip counts must be positive")
        if not self.batch_sizes or any(b <= 0 for b in self.batch_sizes):
            raise ConfigError("batch sizes must be positive")
        if not self.arrival_rates or any(
            r is not None and r <= 0 for r in self.arrival_rates
        ):
            raise ConfigError(
                "arrival rates must be positive (None = back-to-back)"
            )
        if not self.replica_counts or any(
            r <= 0 for r in self.replica_counts
        ):
            raise ConfigError("replica counts must be positive")
        if not self.fault_plans or any(
            p is not None and not isinstance(p, FaultPlan)
            for p in self.fault_plans
        ):
            raise ConfigError(
                "fault plans must be FaultPlan instances "
                "(None = fault-free)"
            )
        if not self.resident_modes or any(
            not isinstance(m, bool) for m in self.resident_modes
        ):
            raise ConfigError(
                "resident modes must be booleans "
                "(False = reload weights per input)"
            )

    def arch(self) -> ArchConfig:
        return self.base_arch or default_arch()

    def limit_for(self, model: str) -> Optional[int]:
        if isinstance(self.closure_limit, tuple):
            return dict(self.closure_limit).get(model)
        return self.closure_limit

    def points(self) -> List[PointSpec]:
        """The cross product, in deterministic order.

        Order (outer to inner): model, strategy, input size, chip count,
        batch size, arrival rate, replica count, fault plan, resident
        mode, flit width, MG size -- matching the row order of the
        paper's figure tables (the serving axes ride between the
        software and hardware axes).
        """
        mg_axis: Tuple[Optional[int], ...] = self.mg_sizes or (None,)
        flit_axis: Tuple[Optional[int], ...] = self.flit_sizes or (None,)
        out: List[PointSpec] = []
        serving_axes = [
            (batch, rate, replicas, plan, resident)
            for batch in self.batch_sizes
            for rate in self.arrival_rates
            for replicas in self.replica_counts
            for plan in self.fault_plans
            for resident in self.resident_modes
        ]
        for model in self.models:
            for strategy in self.strategies:
                for input_size in self.input_sizes:
                    for chips in self.chip_counts:
                        for batch, rate, replicas, plan, resident in (
                                serving_axes):
                            for flit in flit_axis:
                                for mg in mg_axis:
                                    out.append(PointSpec(
                                        model=model,
                                        strategy=strategy,
                                        input_size=input_size,
                                        num_classes=self.num_classes,
                                        mg_size=mg,
                                        flit_bytes=flit,
                                        closure_limit=(
                                            self.limit_for(model)
                                        ),
                                        chips=chips,
                                        batch=batch,
                                        arrival_rate=rate,
                                        replicas=replicas,
                                        fault_plan=plan,
                                        resident_weights=resident,
                                    ))
        return out

    def __len__(self) -> int:
        return (
            len(self.models) * len(self.strategies) * len(self.input_sizes)
            * len(self.chip_counts) * len(self.batch_sizes)
            * len(self.arrival_rates) * len(self.replica_counts)
            * len(self.fault_plans) * len(self.resident_modes)
            * len(self.mg_sizes or (None,)) * len(self.flit_sizes or (None,))
        )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe form for sweep-result files (base arch by fingerprint)."""
        limit = self.closure_limit
        if isinstance(limit, tuple):
            limit = dict(limit)
        return {
            "models": list(self.models),
            "strategies": list(self.strategies),
            "mg_sizes": list(self.mg_sizes) if self.mg_sizes else None,
            "flit_sizes": list(self.flit_sizes) if self.flit_sizes else None,
            "input_sizes": list(self.input_sizes),
            "num_classes": self.num_classes,
            "closure_limit": limit,
            "chip_counts": list(self.chip_counts),
            "batch_sizes": list(self.batch_sizes),
            "arrival_rates": list(self.arrival_rates),
            "replica_counts": list(self.replica_counts),
            "fault_plans": [
                p.to_dict() if p is not None else None
                for p in self.fault_plans
            ],
            "resident_modes": list(self.resident_modes),
            "arch_fingerprint": arch_fingerprint(self.arch()),
            "num_points": len(self),
        }


# ---------------------------------------------------------------------------
# Execution engine
# ---------------------------------------------------------------------------

@dataclass
class SweepStats:
    """Bookkeeping of one :func:`run_sweep` execution.

    ``resumed_points`` counts cache hits whose keys a previous
    *interrupted* run of the same spec had journalled in the sweep
    manifest -- i.e. how far through the cross product the restart
    picked up.
    """

    total_points: int = 0
    evaluated: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    resumed_points: int = 0
    workers: int = 1
    wall_time_s: float = 0.0

    @property
    def hit_rate(self) -> float:
        return self.cache_hits / self.total_points if self.total_points else 0.0


@dataclass
class SweepResult:
    """Evaluated sweep: points in :meth:`SweepSpec.points` order + stats."""

    spec: SweepSpec
    points: List[DesignPoint]
    stats: SweepStats

    def __iter__(self):
        return iter(self.points)

    def __len__(self) -> int:
        return len(self.points)

    def by_model(self) -> Dict[str, List[DesignPoint]]:
        out: Dict[str, List[DesignPoint]] = {}
        for pt in self.points:
            out.setdefault(pt.model, []).append(pt)
        return out

    def by_model_strategy(self) -> Dict[str, Dict[str, List[DesignPoint]]]:
        out: Dict[str, Dict[str, List[DesignPoint]]] = {}
        for pt in self.points:
            out.setdefault(pt.model, {}).setdefault(pt.strategy, []).append(pt)
        return out

    def best(self, metric: str = "tops") -> DesignPoint:
        """Best point: highest ``tops``/``throughput_inf_s``, or lowest
        ``energy_mj``/``energy_per_inf_mj``/``cycles``."""
        if not self.points:
            raise ConfigError("sweep has no points; cannot rank an empty sweep")
        if metric in ("tops", "throughput_inf_s"):
            return max(self.points, key=lambda p: getattr(p, metric))
        if metric in ("energy_mj", "energy_per_inf_mj", "cycles"):
            return min(self.points, key=lambda p: getattr(p, metric))
        raise ConfigError(
            f"unknown metric {metric!r}; expected tops/throughput_inf_s/"
            f"energy_mj/energy_per_inf_mj/cycles"
        )

    def pareto_front(self) -> List[DesignPoint]:
        """Energy/throughput Pareto front (Fig. 7's co-design frontier).

        A point survives iff no other point has both lower-or-equal
        ``energy_mj`` and higher-or-equal ``tops`` with at least one
        strict improvement.  Returned sorted by ascending energy, which
        makes the front directly plottable.  The CLI's ``report
        --pareto`` applies the same :func:`pareto_filter` to saved rows.
        """
        return pareto_filter(self.points, lambda p: (p.energy_mj, p.tops))

    def to_dict(self) -> Dict[str, Any]:
        return {
            "spec": self.spec.to_dict(),
            "stats": {
                "total_points": self.stats.total_points,
                "evaluated": self.stats.evaluated,
                "cache_hits": self.stats.cache_hits,
                "cache_misses": self.stats.cache_misses,
                "workers": self.stats.workers,
                "wall_time_s": self.stats.wall_time_s,
            },
            "points": [pt.to_dict() for pt in self.points],
        }


#: Batch-independent analysis of one point: the (possibly warm) base
#: report, the run-once load phase and its energy (zero / empty for
#: non-resident points).  This is what the sweep memo and the pool
#: workers ship around; the execution plan never travels with it.
_BaseBundle = Tuple[FastReport, int, Dict[str, float]]


def _analyze_base(
    pspec: PointSpec, base_arch: ArchConfig
) -> Tuple[FastReport, int, Dict[str, float], Optional[ExecutionPlan]]:
    """Plan and analyse a point's batch-independent coordinates.

    Returns ``(report, load_cycles, load_energy_pj, plan)``: for
    resident points the report is the *warm* per-input analysis
    (hoistable weight loads removed) and the load fields carry the
    run-once load phase; otherwise the plain analysis with zero load.
    ``plan`` is the (first shard's) execution plan for inspection.
    """
    arch = pspec.resolve_arch(base_arch)
    graph = _cached_graph(pspec.model, pspec.input_size, pspec.num_classes)
    if pspec.chips > 1:
        sharding = shard_graph(graph, pspec.chips)
        plans = [
            plan_graph(shard.graph, arch, pspec.strategy,
                       pspec.closure_limit)
            for shard in sharding.shards
        ]
        if pspec.resident_weights:
            report, load_done, load_energy = analyze_sharded_resident(
                sharding, plans, arch
            )
            return report, load_done, load_energy, plans[0]
        return analyze_sharded(sharding, plans, arch), 0, {}, plans[0]
    plan = plan_graph(graph, arch, pspec.strategy, pspec.closure_limit)
    if pspec.resident_weights:
        report, load_done, load_energy = analyze_plan_resident(plan)
        return report, load_done, load_energy, plan
    return analyze_plan(plan), 0, {}, plan


def _charge_session_load(
    report: FastReport,
    load_done: int,
    load_energy: Dict[str, float],
    extra_cycles: int,
) -> FastReport:
    """Fold a resident session's run-once load phase into a report.

    The hoisted load energy is paid exactly once per session (it does
    not scale with the batch); ``extra_cycles`` extends the makespan for
    continuations that never saw the load-clamped releases (plain batch
    streaming and single-shot points).
    """
    energy = dict(report.energy_breakdown_pj)
    for key, value in load_energy.items():
        energy[key] = energy.get(key, 0.0) + value
    return replace(
        report,
        cycles=report.cycles + extra_cycles,
        energy_breakdown_pj=energy,
        load_cycles=load_done,
    )


def _derive_report(
    pspec: PointSpec, base_arch: ArchConfig, bundle: _BaseBundle
) -> FastReport:
    """Closed-form serving/batch continuation of a base (batch=1) bundle.

    Arrival-rate points go through the serving queueing law
    (:func:`repro.sim.fastmodel.serve_arrivals`, fixed-rate releases);
    fleet points (``replicas > 1``) round-robin the releases across the
    replicas (:func:`repro.sim.fastmodel.serve_fleet`); fault points
    additionally replay the plan's deterministic fault schedule against
    the fleet; plain batch points go through the PR-4 streaming law
    (:func:`stream_batched`).  Either way the derivation is
    bit-identical to evaluating the point from scratch, which is what
    lets one base analysis serve a whole batch x rate x replicas x
    faults sub-grid.

    Resident points continue the *warm* base report: serving releases
    clamp to the load phase (the session loads before the first input
    enters the pipeline, so latency percentiles measure warm service),
    non-serving continuations extend the makespan by the load phase,
    and the hoisted load energy lands exactly once either way.
    """
    report, load_done, load_energy = bundle
    if (pspec.arrival_rate is not None or pspec.replicas > 1
            or pspec.fault_plan is not None):
        arch = pspec.resolve_arch(base_arch)
        releases = (
            _rate_releases(arch, pspec.arrival_rate, pspec.batch)
            if pspec.arrival_rate is not None else [0] * pspec.batch
        )
        if pspec.resident_weights:
            releases = [max(r, load_done) for r in releases]
        derived = serve_fleet(
            report, releases, arch.interchip, pspec.replicas,
            arrival_rate_inf_s=pspec.arrival_rate,
            faults=pspec.fault_plan,
        )
        extra_cycles = 0
    elif pspec.batch > 1:
        derived = stream_batched(report, pspec.batch)
        extra_cycles = load_done
    else:
        derived = report
        extra_cycles = load_done
    if pspec.resident_weights:
        derived = _charge_session_load(
            derived, load_done, load_energy, extra_cycles
        )
    return derived


def _base_spec(pspec: PointSpec) -> PointSpec:
    """The batch-independent, arrival-free, fault-free coordinates.

    ``resident_weights`` survives: it changes the base analysis itself
    (warm report + load split), not just the continuation.
    """
    return replace(
        pspec, batch=1, arrival_rate=None, replicas=1, fault_plan=None
    )


def _evaluate_spec(
    pspec: PointSpec,
    base_arch: ArchConfig,
    memo: Optional[Dict[str, _BaseBundle]] = None,
) -> DesignPoint:
    """Evaluate one point; shared by the serial path and pool workers.

    Drops the (large, partly unpicklable) execution plan so results are
    cheap to ship between processes and identical to cache-served points.

    The batch and arrival-rate axes are closed-form continuations of the
    batch-independent analysis (:func:`_derive_report`), so ``memo``
    (keyed by the batch=1/rate=None cache key, scoped to one sweep) lets
    a sweep over ``batch_sizes=(1, 4, 8)`` x ``arrival_rates`` plan and
    analyse each base point once and derive the variants in O(1) --
    bit-identical to evaluating every point from scratch.
    """
    base_key = (
        _base_spec(pspec).cache_key(base_arch)
        if memo is not None else None
    )
    bundle = memo.get(base_key) if memo is not None else None
    if bundle is None:
        report, load_done, load_energy, _ = _analyze_base(pspec, base_arch)
        bundle = (report, load_done, load_energy)
        if memo is not None:
            memo[base_key] = bundle
    return _point_from_report(
        pspec, base_arch, _derive_report(pspec, base_arch, bundle),
        cached=False,
    )


def _worker_evaluate(
    args: Tuple[int, PointSpec, ArchConfig]
) -> Tuple[int, _BaseBundle]:
    """Top-level pool entry point (must be importable for pickling)."""
    index, pspec, base_arch = args
    report, load_done, load_energy, _ = _analyze_base(pspec, base_arch)
    return index, (report, load_done, load_energy)


def estimate_point_cost(pspec: PointSpec) -> float:
    """Relative evaluation-cost estimate of one sweep point.

    Points differ by more than 10x in cost (VGG19 under DP vs tiny
    models), so submitting expensive points to the worker pool *first*
    cuts the tail latency of wide sweeps: a worker is never left alone
    with the most expensive point while the rest of the pool idles.
    The estimate only orders work -- results are index-ordered and
    bit-identical regardless.
    """
    cost = _MODEL_COST.get(pspec.model, 1.0)
    cost *= _STRATEGY_COST.get(pspec.strategy, 1.0)
    cost *= max((pspec.input_size / 224.0) ** 2, 0.05)
    if pspec.closure_limit is not None and pspec.strategy == "dp":
        cost *= min(1.0, 0.25 + pspec.closure_limit / 256.0)
    return cost


def _point_from_report(pspec: PointSpec, base: ArchConfig,
                       report: FastReport, cached: bool) -> DesignPoint:
    arch = pspec.resolve_arch(base)
    return DesignPoint(
        model=pspec.model,
        strategy=pspec.strategy,
        mg_size=arch.chip.core.cim_unit.macro_group.num_macros,
        flit_bytes=arch.chip.noc.flit_bytes,
        report=report,
        plan=None,
        input_size=pspec.input_size,
        num_classes=pspec.num_classes,
        chips=pspec.chips,
        batch=pspec.batch,
        arrival_rate=pspec.arrival_rate,
        replicas=pspec.replicas,
        fault_plan=pspec.fault_plan,
        resident_weights=pspec.resident_weights,
        cached=cached,
    )


def run_sweep(
    spec: SweepSpec,
    workers: Optional[int] = None,
    cache: Optional[ResultCache] = None,
    progress: Optional[Callable[[int, int, DesignPoint], None]] = None,
    resume: bool = True,
) -> SweepResult:
    """Execute a sweep, optionally in parallel and/or through the cache.

    ``workers``: ``None``/``0``/``1`` evaluates serially in-process;
    ``N > 1`` fans uncached points out over a process pool (each worker
    keeps its own model-graph cache).  Results are returned in
    :meth:`SweepSpec.points` order regardless of completion order, so the
    parallel path is bit-identical to the serial one.

    ``cache``: a :class:`ResultCache`; hits skip evaluation entirely and
    fresh results are stored for the next run.

    ``resume``: when a cache is given, a sweep-level manifest
    (:class:`~repro.explore_cache.SweepManifest`, journalled next to the
    cache) records every completed point key as the sweep runs, so an
    interrupted ``python -m repro sweep`` restarts mid-cross-product:
    the restart reports how many points the previous run completed
    (``stats.resumed_points``) and only evaluates the remainder.  A
    sweep that finishes removes its manifest.

    ``progress``: called as ``progress(done, total, point)`` after every
    point completes (cache hits included).
    """
    base = spec.arch()
    base.validate()
    pspecs = spec.points()
    stats = SweepStats(total_points=len(pspecs), workers=max(1, workers or 1))
    started = time.perf_counter()

    manifest: Optional[SweepManifest] = None
    previously: frozenset = frozenset()
    if cache is not None and resume:
        spec_dict = spec.to_dict()
        manifest = SweepManifest(
            cache.root, sweep_fingerprint(spec_dict), spec_meta=spec_dict
        )
        previously = manifest.load()

    results: List[Optional[DesignPoint]] = [None] * len(pspecs)
    done = 0

    def finish(index: int, point: DesignPoint) -> None:
        nonlocal done
        results[index] = point
        done += 1
        if progress is not None:
            progress(done, len(pspecs), point)

    def journal(key: str) -> None:
        if manifest is not None and key not in previously:
            manifest.mark(key)

    # Pass 1: serve what we can from the cache.
    pending: List[Tuple[int, PointSpec]] = []
    keys: Dict[int, str] = {}
    for index, pspec in enumerate(pspecs):
        if cache is not None:
            key = pspec.cache_key(base)
            keys[index] = key
            report = cache.lookup(key)
            if report is not None:
                stats.cache_hits += 1
                if key in previously:
                    stats.resumed_points += 1
                journal(key)
                finish(index, _point_from_report(pspec, base, report, True))
                continue
            stats.cache_misses += 1
        pending.append((index, pspec))

    # Pass 2: evaluate the misses (serially or across the pool).
    def record(index: int, pspec: PointSpec, point: DesignPoint) -> None:
        stats.evaluated += 1
        if cache is not None:
            cache.store(
                keys[index],
                point.report,
                meta={
                    "model": pspec.model,
                    "strategy": pspec.strategy,
                    "input_size": pspec.input_size,
                    "num_classes": pspec.num_classes,
                    "mg_size": point.mg_size,
                    "flit_bytes": point.flit_bytes,
                    "closure_limit": pspec.closure_limit,
                    "chips": pspec.chips,
                    "batch": pspec.batch,
                    "arrival_rate": pspec.arrival_rate,
                    "replicas": pspec.replicas,
                    "fault_plan": (
                        pspec.fault_plan.fingerprint()
                        if pspec.fault_plan is not None else None
                    ),
                    "resident": pspec.resident_weights,
                },
            )
            journal(keys[index])
        finish(index, point)

    if stats.workers <= 1 or len(pending) <= 1:
        memo: Dict[str, _BaseBundle] = {}
        for index, pspec in pending:
            record(index, pspec, _evaluate_spec(pspec, base, memo))
    else:
        by_index = dict(pending)
        # The batch, arrival-rate, replicas, and fault-plan axes are
        # closed-form continuations of the base (batch=1, rate=None,
        # replicas=1, fault-free) analysis, so the pool only
        # ever evaluates *unique base points*; every pending variant is
        # derived in-parent via _derive_report -- bit-identical to
        # evaluating it directly, and each base is planned exactly once
        # no matter how the pool schedules it.
        groups: Dict[str, List[int]] = {}
        base_specs: Dict[str, PointSpec] = {}
        for index, pspec in pending:
            key = _base_spec(pspec).cache_key(base)
            groups.setdefault(key, []).append(index)
            base_specs.setdefault(key, _base_spec(pspec))
        # Adaptive scheduling: submit expensive points first (stable on
        # first pending index for determinism); results are re-indexed,
        # so ordering only affects wall time, never output.
        ordered = sorted(
            groups,
            key=lambda key: (
                -estimate_point_cost(base_specs[key]), groups[key][0]
            ),
        )
        with ProcessPoolExecutor(max_workers=stats.workers) as pool:
            jobs = [(job, base_specs[key], base) for job, key in enumerate(ordered)]
            for job, bundle in pool.map(_worker_evaluate, jobs):
                for index in groups[ordered[job]]:
                    pspec = by_index[index]
                    report = _derive_report(pspec, base, bundle)
                    record(
                        index, pspec,
                        _point_from_report(pspec, base, report, False),
                    )

    if manifest is not None:
        manifest.complete()
    stats.wall_time_s = time.perf_counter() - started
    assert all(pt is not None for pt in results)
    return SweepResult(spec=spec, points=results, stats=stats)


# ---------------------------------------------------------------------------
# Cycle-accurate spot checks
# ---------------------------------------------------------------------------

@dataclass
class SpotCheckResult:
    """One sweep point re-validated on the cycle-accurate simulator.

    The check recompiles the point's (model, architecture, strategy)
    coordinates at a reduced ``input_size`` (full paper resolution is
    fast-model territory), runs the exact simulator with bit-exact
    golden-model validation, and compares the fast model's latency
    prediction *for the same compiled plan*, bounding the fast-model
    error at those coordinates.
    """

    point: DesignPoint
    input_size: int
    report: "SimulationReport"
    fast_cycles: int
    validated: bool

    @property
    def cycle_ratio(self) -> float:
        """fast-model cycles / cycle-accurate cycles (1.0 = perfect)."""
        return self.fast_cycles / self.report.cycles if self.report.cycles else 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "model": self.point.model,
            "strategy": self.point.strategy,
            "mg_size": self.point.mg_size,
            "flit_bytes": self.point.flit_bytes,
            "chips": self.point.chips,
            "batch": self.point.batch,
            "input_size": self.input_size,
            "cycles": int(self.report.cycles),
            "fast_cycles": int(self.fast_cycles),
            "cycle_ratio": self.cycle_ratio,
            "energy_mj": self.report.total_energy_mj,
            "validated": self.validated,
        }


def spot_check(
    result: SweepResult,
    n: int = 1,
    metric: str = "tops",
    input_size: int = 32,
    num_classes: int = 10,
    engine: Optional[str] = None,
    validate: bool = True,
) -> List[SpotCheckResult]:
    """Re-run the best ``n`` points of a sweep cycle-accurately.

    Closes the ROADMAP item "cycle-accurate spot checks inside sweeps":
    after a fast-model sweep, the most promising points are re-validated
    on the exact simulator (hot-block engine by default) so every sweep
    ships with an empirical fast-model error bound.  Exposed on the CLI
    as ``python -m repro sweep --spot-check N``.

    Arrival-rate and fleet points are re-checked at their *batch*
    coordinates (back-to-back, one replica): the cycle-level comparison
    bounds execution-model error, and arrival/dispatch idle time --
    identical in both tiers by construction -- would only dilute the
    ratio.
    """
    from repro.compiler.pipeline import compile_graph, compile_sharded
    from repro.sim.fastmodel import analyze_plan as analyze
    from repro.workflow import _simulate_impl

    if n <= 0:
        return []
    reverse = metric == "tops"
    if metric not in ("tops", "energy_mj", "cycles"):
        raise ConfigError(
            f"unknown metric {metric!r}; expected tops/energy_mj/cycles"
        )
    ranked = sorted(
        result.points, key=lambda p: getattr(p, metric), reverse=reverse
    )
    spec = result.spec
    checks: List[SpotCheckResult] = []
    for pt in ranked[:n]:
        arch = with_flit_bytes(
            with_mg_size(spec.arch(), pt.mg_size), pt.flit_bytes
        )
        graph = _cached_graph(pt.model, input_size, num_classes)
        if pt.chips > 1:
            compiled = compile_sharded(
                graph, arch, pt.chips, pt.strategy,
                closure_limit=spec.limit_for(pt.model),
            )
            fast_cycles = analyze_sharded(
                compiled.sharding, [c.plan for c in compiled.chips], arch,
                batch=pt.batch,
            ).cycles
        else:
            compiled = compile_graph(
                graph, arch, pt.strategy, closure_limit=spec.limit_for(pt.model)
            )
            fast = analyze(compiled.plan)
            if pt.batch > 1:
                fast = stream_batched(fast, pt.batch)
            fast_cycles = fast.cycles
        outcome = _simulate_impl(
            compiled, None, validate, 0, engine, pt.batch
        )
        checks.append(SpotCheckResult(
            point=pt,
            input_size=input_size,
            report=outcome.report,
            fast_cycles=fast_cycles,
            validated=outcome.validated,
        ))
    return checks


# ---------------------------------------------------------------------------
# Figure drivers (thin wrappers over the engine)
# ---------------------------------------------------------------------------

def strategy_comparison(
    models: Iterable[str],
    arch: Optional[ArchConfig] = None,
    strategies: Iterable[str] = ("generic", "duplication", "dp"),
    input_size: int = 224,
    num_classes: int = 1000,
    workers: Optional[int] = None,
    cache: Optional[ResultCache] = None,
) -> Dict[str, Dict[str, DesignPoint]]:
    """Fig. 5: every strategy on every model at the default architecture."""
    spec = SweepSpec(
        models=tuple(models),
        strategies=tuple(strategies),
        input_sizes=(input_size,),
        num_classes=num_classes,
        base_arch=arch,
    )
    result = run_sweep(spec, workers=workers, cache=cache)
    return {
        model: {strategy: points[0] for strategy, points in by_strategy.items()}
        for model, by_strategy in result.by_model_strategy().items()
    }


def mg_flit_sweep(
    model: str,
    strategy: str = "generic",
    mg_sizes: Iterable[int] = MG_SIZES,
    flit_sizes: Iterable[int] = FLIT_SIZES,
    base_arch: Optional[ArchConfig] = None,
    input_size: int = 224,
    num_classes: int = 1000,
    workers: Optional[int] = None,
    cache: Optional[ResultCache] = None,
) -> List[DesignPoint]:
    """Fig. 6 / Fig. 7 hardware axes: MG size x NoC flit width."""
    spec = SweepSpec(
        models=(model,),
        strategies=(strategy,),
        mg_sizes=tuple(mg_sizes),
        flit_sizes=tuple(flit_sizes),
        input_sizes=(input_size,),
        num_classes=num_classes,
        base_arch=base_arch,
    )
    return run_sweep(spec, workers=workers, cache=cache).points


def design_space(
    model: str,
    strategies: Iterable[str] = ("generic", "dp"),
    mg_sizes: Iterable[int] = MG_SIZES,
    flit_sizes: Iterable[int] = FLIT_SIZES,
    base_arch: Optional[ArchConfig] = None,
    input_size: int = 224,
    num_classes: int = 1000,
    workers: Optional[int] = None,
    cache: Optional[ResultCache] = None,
) -> List[DesignPoint]:
    """Fig. 7: the full SW/HW cross product for one model."""
    spec = SweepSpec(
        models=(model,),
        strategies=tuple(strategies),
        mg_sizes=tuple(mg_sizes),
        flit_sizes=tuple(flit_sizes),
        input_sizes=(input_size,),
        num_classes=num_classes,
        base_arch=base_arch,
    )
    return run_sweep(spec, workers=workers, cache=cache).points
