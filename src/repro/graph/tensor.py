"""Tensor metadata for the computation-graph IR.

All activations use an NHWC-like layout with the batch dimension fixed at 1
(inference), so feature maps are ``(H, W, C)`` and flat vectors are
``(N,)``.  Channels-innermost matches the digital CIM dataflow: the input
rows broadcast into a macro group are contiguous channel runs.
"""

from dataclasses import dataclass
from typing import Tuple

from repro.errors import GraphError
from repro.utils import prod

#: Supported element types and their byte widths.
DTYPE_BYTES = {"int8": 1, "int32": 4}


@dataclass(frozen=True)
class TensorInfo:
    """Shape and dtype of one tensor in the graph."""

    name: str
    shape: Tuple[int, ...]
    dtype: str = "int8"

    def __post_init__(self):
        if self.dtype not in DTYPE_BYTES:
            raise GraphError(f"unsupported dtype {self.dtype!r}")
        if not self.shape or any(d <= 0 for d in self.shape):
            raise GraphError(f"tensor {self.name}: bad shape {self.shape}")

    @property
    def num_elements(self) -> int:
        return prod(self.shape)

    @property
    def size_bytes(self) -> int:
        return self.num_elements * DTYPE_BYTES[self.dtype]

    @property
    def is_feature_map(self) -> bool:
        """True for (H, W, C) activations, False for flat vectors."""
        return len(self.shape) == 3

    @property
    def spatial_rows(self) -> int:
        """Number of H rows (1 for flat vectors)."""
        return self.shape[0] if self.is_feature_map else 1

    @property
    def row_bytes(self) -> int:
        """Bytes of one H row (the whole tensor for flat vectors)."""
        if self.is_feature_map:
            return self.shape[1] * self.shape[2] * DTYPE_BYTES[self.dtype]
        return self.size_bytes
