"""The computation graph: a DAG of operators over named tensors."""

from collections import deque
from typing import Dict, Iterable, List, Optional

from repro.errors import GraphError
from repro.graph.ops import Operator, OpKind
from repro.graph.tensor import TensorInfo


class ComputationGraph:
    """A directed acyclic graph of :class:`Operator` nodes.

    Tensors are identified by name; each tensor has exactly one producer
    (graph inputs are produced by explicit ``INPUT`` operators) and any
    number of consumers.
    """

    def __init__(self, name: str = "graph"):
        self.name = name
        self.tensors: Dict[str, TensorInfo] = {}
        self.operators: List[Operator] = []
        self._producer: Dict[str, Operator] = {}
        self.outputs: List[str] = []

    # --- construction ------------------------------------------------------
    def add_tensor(self, info: TensorInfo) -> TensorInfo:
        if info.name in self.tensors:
            raise GraphError(f"duplicate tensor {info.name!r}")
        self.tensors[info.name] = info
        return info

    def add_operator(self, op: Operator) -> Operator:
        if any(existing.name == op.name for existing in self.operators):
            raise GraphError(f"duplicate operator {op.name!r}")
        for tensor in op.inputs:
            if tensor not in self.tensors:
                raise GraphError(f"{op.name}: unknown input tensor {tensor!r}")
        if op.output in self._producer:
            raise GraphError(f"{op.name}: tensor {op.output!r} already produced")
        if op.output not in self.tensors:
            raise GraphError(f"{op.name}: output tensor {op.output!r} undeclared")
        self.operators.append(op)
        self._producer[op.output] = op
        return op

    def mark_output(self, tensor: str) -> None:
        if tensor not in self.tensors:
            raise GraphError(f"unknown output tensor {tensor!r}")
        if tensor not in self.outputs:
            self.outputs.append(tensor)

    # --- queries -----------------------------------------------------------
    def tensor(self, name: str) -> TensorInfo:
        try:
            return self.tensors[name]
        except KeyError:
            raise GraphError(f"unknown tensor {name!r}") from None

    def operator(self, name: str) -> Operator:
        for op in self.operators:
            if op.name == name:
                return op
        raise GraphError(f"unknown operator {name!r}")

    def producer(self, tensor: str) -> Optional[Operator]:
        """The operator producing ``tensor`` (None for dangling tensors)."""
        return self._producer.get(tensor)

    def consumers(self, tensor: str) -> List[Operator]:
        """Operators consuming ``tensor``, in graph order."""
        return [op for op in self.operators if tensor in op.inputs]

    def predecessors(self, op: Operator) -> List[Operator]:
        """Producer operators of ``op``'s inputs (deduplicated, ordered)."""
        preds: List[Operator] = []
        for tensor in op.inputs:
            producer = self._producer.get(tensor)
            if producer is not None and producer not in preds:
                preds.append(producer)
        return preds

    def successors(self, op: Operator) -> List[Operator]:
        return self.consumers(op.output)

    @property
    def input_operators(self) -> List[Operator]:
        return [op for op in self.operators if op.kind is OpKind.INPUT]

    # --- structure ---------------------------------------------------------
    def topological_order(self) -> List[Operator]:
        """Kahn topological sort; raises :class:`GraphError` on cycles."""
        indegree = {op.name: len(self.predecessors(op)) for op in self.operators}
        by_name = {op.name: op for op in self.operators}
        ready = deque(
            op.name for op in self.operators if indegree[op.name] == 0
        )
        order: List[Operator] = []
        while ready:
            name = ready.popleft()
            op = by_name[name]
            order.append(op)
            for succ in self.successors(op):
                indegree[succ.name] -= 1
                if indegree[succ.name] == 0:
                    ready.append(succ.name)
        if len(order) != len(self.operators):
            raise GraphError("computation graph contains a cycle")
        return order

    def validate(self) -> None:
        """Check the graph is a well-formed DAG with complete shapes."""
        if not self.input_operators:
            raise GraphError("graph has no INPUT operator")
        if not self.outputs:
            raise GraphError("graph has no marked outputs")
        self.topological_order()
        for op in self.operators:
            if op.output not in self.tensors:
                raise GraphError(f"{op.name}: missing output tensor info")

    def mvm_operators(self) -> List[Operator]:
        """The MVM-based operators, in topological order."""
        return [op for op in self.topological_order() if op.is_mvm]

    def total_weight_bytes(self) -> int:
        """Total parameter footprint of the model."""
        return sum(op.weight_bytes() for op in self.operators)

    def summary(self) -> str:
        """A short human-readable description."""
        mvm = len(self.mvm_operators())
        return (
            f"{self.name}: {len(self.operators)} operators ({mvm} MVM), "
            f"{len(self.tensors)} tensors, "
            f"{self.total_weight_bytes() / 1024:.1f} KiB weights"
        )

    def subgraph_operators(self, names: Iterable[str]) -> List[Operator]:
        """Operators with the given names, in this graph's topological order."""
        wanted = set(names)
        return [op for op in self.topological_order() if op.name in wanted]
