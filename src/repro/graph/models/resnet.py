"""ResNet-18 (He et al., 2016) with BatchNorm folded into convolutions.

The layer topology matches torchvision's ``resnet18``: a 7x7/2 stem,
3x3/2 max-pool, four stages of two BasicBlocks (64/128/256/512 channels,
stride-2 downsampling with 1x1 projection shortcuts), global average
pooling and a final fully-connected classifier.
"""

from repro.graph.builder import GraphBuilder
from repro.graph.graph import ComputationGraph

_STAGES = ((64, 1), (128, 2), (256, 2), (512, 2))
_BLOCKS_PER_STAGE = 2


def _round_channels(channels: int, width_mult: float) -> int:
    return max(8, int(round(channels * width_mult / 8)) * 8)


def _basic_block(
    b: GraphBuilder, x: str, in_c: int, out_c: int, stride: int, tag: str
) -> str:
    identity = x
    y = b.conv(x, out_c, 3, stride, 1, name=f"{tag}_conv1")
    y = b.relu(y, name=f"{tag}_relu1")
    y = b.conv(y, out_c, 3, 1, 1, name=f"{tag}_conv2")
    if stride != 1 or in_c != out_c:
        identity = b.conv(x, out_c, 1, stride, 0, name=f"{tag}_down")
    y = b.add(y, identity, name=f"{tag}_add")
    return b.relu(y, name=f"{tag}_relu2")


def resnet18(
    input_size: int = 224,
    num_classes: int = 1000,
    width_mult: float = 1.0,
    seed: int = 18,
) -> ComputationGraph:
    """Build ResNet-18 at the given input resolution.

    ``width_mult`` scales all channel counts (rounded to multiples of 8),
    which the test suite uses for fast narrow variants.
    """
    b = GraphBuilder(f"resnet18_{input_size}", seed=seed)
    x = b.input((input_size, input_size, 3))
    stem_c = _round_channels(64, width_mult)
    x = b.conv(x, stem_c, 7, 2, 3, name="stem_conv")
    x = b.relu(x, name="stem_relu")
    x = b.maxpool(x, 3, 2, 1, name="stem_pool")

    in_c = stem_c
    for stage_idx, (channels, first_stride) in enumerate(_STAGES, start=1):
        out_c = _round_channels(channels, width_mult)
        for block_idx in range(_BLOCKS_PER_STAGE):
            stride = first_stride if block_idx == 0 else 1
            tag = f"s{stage_idx}b{block_idx}"
            x = _basic_block(b, x, in_c, out_c, stride, tag)
            in_c = out_c

    x = b.global_avgpool(x, name="gap")
    x = b.gemm(x, num_classes, name="fc")
    b.output(x)
    return b.build()
