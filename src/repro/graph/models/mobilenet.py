"""MobileNetV2 (Sandler et al., 2018): inverted residuals with linear
bottlenecks and depthwise separable convolutions.

The compact-weight-footprint structure of this model is what makes the
paper's DP-based partitioning shine (Sec. IV-B): its small layers leave
greedy partitioners with few vacant cores to exploit.
"""

from repro.graph.builder import GraphBuilder
from repro.graph.graph import ComputationGraph

#: (expand_ratio t, output channels c, repeats n, first stride s)
_CFG = (
    (1, 16, 1, 1),
    (6, 24, 2, 2),
    (6, 32, 3, 2),
    (6, 64, 4, 2),
    (6, 96, 3, 1),
    (6, 160, 3, 2),
    (6, 320, 1, 1),
)


def _round_channels(channels: int, width_mult: float) -> int:
    return max(8, int(round(channels * width_mult / 8)) * 8)


def _inverted_residual(
    b: GraphBuilder, x: str, in_c: int, out_c: int, stride: int, expand: int,
    tag: str,
) -> str:
    identity = x
    hidden = in_c * expand
    y = x
    if expand != 1:
        y = b.conv(y, hidden, 1, 1, 0, name=f"{tag}_expand")
        y = b.relu6(y, name=f"{tag}_expand_relu")
    y = b.dwconv(y, 3, stride, 1, name=f"{tag}_dw")
    y = b.relu6(y, name=f"{tag}_dw_relu")
    y = b.conv(y, out_c, 1, 1, 0, name=f"{tag}_project")
    if stride == 1 and in_c == out_c:
        y = b.add(y, identity, name=f"{tag}_add")
    return y


def mobilenet_v2(
    input_size: int = 224,
    num_classes: int = 1000,
    width_mult: float = 1.0,
    seed: int = 22,
) -> ComputationGraph:
    """Build MobileNetV2 at the given input resolution."""
    b = GraphBuilder(f"mobilenetv2_{input_size}", seed=seed)
    x = b.input((input_size, input_size, 3))
    stem_c = _round_channels(32, width_mult)
    x = b.conv(x, stem_c, 3, 2, 1, name="stem_conv")
    x = b.relu6(x, name="stem_relu")

    in_c = stem_c
    for stage_idx, (t, c, n, s) in enumerate(_CFG, start=1):
        out_c = _round_channels(c, width_mult)
        for block_idx in range(n):
            stride = s if block_idx == 0 else 1
            tag = f"ir{stage_idx}_{block_idx}"
            x = _inverted_residual(b, x, in_c, out_c, stride, t, tag)
            in_c = out_c

    head_c = _round_channels(1280, width_mult)
    x = b.conv(x, head_c, 1, 1, 0, name="head_conv")
    x = b.relu6(x, name="head_relu")
    x = b.global_avgpool(x, name="gap")
    x = b.gemm(x, num_classes, name="fc")
    b.output(x)
    return b.build()
