"""EfficientNet-B0 (Tan & Le, 2019): MBConv blocks with squeeze-excite
gating and SiLU activations.

Squeeze-excite is kept (global average pool -> two FC layers -> sigmoid ->
per-channel scale) because its tiny tensors and channel-broadcast multiply
stress exactly the auxiliary-operator paths of the compiler and vector
unit.
"""

from repro.graph.builder import GraphBuilder
from repro.graph.graph import ComputationGraph

#: (expand t, channels c, repeats n, first stride s, kernel k)
_CFG = (
    (1, 16, 1, 1, 3),
    (6, 24, 2, 2, 3),
    (6, 40, 2, 2, 5),
    (6, 80, 3, 2, 3),
    (6, 112, 3, 1, 5),
    (6, 192, 4, 2, 5),
    (6, 320, 1, 1, 3),
)

_SE_RATIO = 4  # squeeze dimension = block input channels / 4


def _round_channels(channels: int, width_mult: float) -> int:
    return max(8, int(round(channels * width_mult / 8)) * 8)


def _squeeze_excite(
    b: GraphBuilder, x: str, gated_c: int, se_dim: int, tag: str
) -> str:
    s = b.global_avgpool(x, name=f"{tag}_se_gap")
    s = b.gemm(s, se_dim, name=f"{tag}_se_fc1")
    s = b.silu(s, name=f"{tag}_se_silu")
    s = b.gemm(s, gated_c, name=f"{tag}_se_fc2")
    s = b.sigmoid(s, name=f"{tag}_se_gate")
    return b.mul_channel(x, s, name=f"{tag}_se_scale")


def _mbconv(
    b: GraphBuilder, x: str, in_c: int, out_c: int, stride: int, expand: int,
    kernel: int, tag: str,
) -> str:
    identity = x
    hidden = in_c * expand
    y = x
    if expand != 1:
        y = b.conv(y, hidden, 1, 1, 0, name=f"{tag}_expand")
        y = b.silu(y, name=f"{tag}_expand_silu")
    y = b.dwconv(y, kernel, stride, kernel // 2, name=f"{tag}_dw")
    y = b.silu(y, name=f"{tag}_dw_silu")
    se_dim = max(8, in_c // _SE_RATIO)
    y = _squeeze_excite(b, y, hidden, se_dim, tag)
    y = b.conv(y, out_c, 1, 1, 0, name=f"{tag}_project")
    if stride == 1 and in_c == out_c:
        y = b.add(y, identity, name=f"{tag}_add")
    return y


def efficientnet_b0(
    input_size: int = 224,
    num_classes: int = 1000,
    width_mult: float = 1.0,
    seed: int = 30,
) -> ComputationGraph:
    """Build EfficientNet-B0 at the given input resolution."""
    b = GraphBuilder(f"efficientnetb0_{input_size}", seed=seed)
    x = b.input((input_size, input_size, 3))
    stem_c = _round_channels(32, width_mult)
    x = b.conv(x, stem_c, 3, 2, 1, name="stem_conv")
    x = b.silu(x, name="stem_silu")

    in_c = stem_c
    for stage_idx, (t, c, n, s, k) in enumerate(_CFG, start=1):
        out_c = _round_channels(c, width_mult)
        for block_idx in range(n):
            stride = s if block_idx == 0 else 1
            tag = f"mb{stage_idx}_{block_idx}"
            x = _mbconv(b, x, in_c, out_c, stride, t, k, tag)
            in_c = out_c

    head_c = _round_channels(1280, width_mult)
    x = b.conv(x, head_c, 1, 1, 0, name="head_conv")
    x = b.silu(x, name="head_silu")
    x = b.global_avgpool(x, name="gap")
    x = b.gemm(x, num_classes, name="fc")
    b.output(x)
    return b.build()
