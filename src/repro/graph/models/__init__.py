"""Model zoo: the paper's evaluation suite plus small test models.

Every builder takes ``input_size`` so benchmarks can run the full-depth
layer stacks at reduced resolution (compilation and simulation behaviour
depend on topology and shapes, not on trained weights) and ``seed`` for
reproducible synthetic INT8 weights.  See ``docs/ARCHITECTURE.md``
("Graph IR and model zoo").
"""

import inspect
from typing import Callable, Dict, List

from repro.errors import GraphError
from repro.graph.graph import ComputationGraph
from repro.graph.models.efficientnet import efficientnet_b0
from repro.graph.models.mobilenet import mobilenet_v2
from repro.graph.models.resnet import resnet18
from repro.graph.models.simple import (
    tiny_cnn,
    tiny_mlp,
    tiny_resnet,
    weight_stream,
)
from repro.graph.models.vgg import vgg19

_REGISTRY: Dict[str, Callable[..., ComputationGraph]] = {
    "resnet18": resnet18,
    "vgg19": vgg19,
    "mobilenetv2": mobilenet_v2,
    "efficientnetb0": efficientnet_b0,
    "tiny_cnn": tiny_cnn,
    "tiny_mlp": tiny_mlp,
    "tiny_resnet": tiny_resnet,
    "weight_stream": weight_stream,
}

#: The four DNNs of the paper's evaluation suite (Sec. IV-A).
PAPER_SUITE = ("resnet18", "vgg19", "mobilenetv2", "efficientnetb0")


def available_models() -> List[str]:
    """Names accepted by :func:`get_model`."""
    return sorted(_REGISTRY)


#: Sweep axes every builder is assumed to understand; silently dropped for
#: builders that don't take them (tiny_mlp has a flat input, so sweeping
#: input_size over the whole zoo must not crash on it).
_AXIS_KWARGS = ("input_size", "num_classes")


def get_model(name: str, **kwargs) -> ComputationGraph:
    """Build a model from the zoo by name.

    The sweep-axis kwargs (``input_size``, ``num_classes``) are dropped
    for builders whose signature lacks them; any other unknown kwarg
    still fails loudly.
    """
    try:
        builder = _REGISTRY[name]
    except KeyError:
        raise GraphError(
            f"unknown model {name!r}; available: {available_models()}"
        ) from None
    accepted = set(inspect.signature(builder).parameters)
    for axis in _AXIS_KWARGS:
        if axis in kwargs and axis not in accepted:
            kwargs.pop(axis)
    return builder(**kwargs)


__all__ = [
    "resnet18",
    "vgg19",
    "mobilenet_v2",
    "efficientnet_b0",
    "tiny_cnn",
    "tiny_mlp",
    "tiny_resnet",
    "weight_stream",
    "get_model",
    "available_models",
    "PAPER_SUITE",
]
