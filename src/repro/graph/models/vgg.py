"""VGG-19 (Simonyan & Zisserman, 2015), configuration E.

Sixteen 3x3 convolutions in five max-pooled stages followed by the
three-layer fully-connected classifier.  The first classifier layer adapts
to the flattened feature size, so the model is valid at any input
resolution divisible by 32.
"""

from repro.graph.builder import GraphBuilder
from repro.graph.graph import ComputationGraph

#: Configuration E: channel counts with 'M' max-pool markers.
_CFG = (
    64, 64, "M",
    128, 128, "M",
    256, 256, 256, 256, "M",
    512, 512, 512, 512, "M",
    512, 512, 512, 512, "M",
)


def _round_channels(channels: int, width_mult: float) -> int:
    return max(8, int(round(channels * width_mult / 8)) * 8)


def vgg19(
    input_size: int = 224,
    num_classes: int = 1000,
    width_mult: float = 1.0,
    fc_features: int = 4096,
    seed: int = 19,
) -> ComputationGraph:
    """Build VGG-19 at the given input resolution."""
    b = GraphBuilder(f"vgg19_{input_size}", seed=seed)
    x = b.input((input_size, input_size, 3))
    conv_idx = 0
    pool_idx = 0
    for entry in _CFG:
        if entry == "M":
            pool_idx += 1
            x = b.maxpool(x, 2, 2, name=f"pool{pool_idx}")
        else:
            conv_idx += 1
            channels = _round_channels(int(entry), width_mult)
            x = b.conv(x, channels, 3, 1, 1, name=f"conv{conv_idx}")
            x = b.relu(x, name=f"relu{conv_idx}")
    x = b.flatten(x, name="flatten")
    fc_dim = _round_channels(fc_features, width_mult)
    x = b.gemm(x, fc_dim, name="fc1")
    x = b.relu(x, name="fc1_relu")
    x = b.gemm(x, fc_dim, name="fc2")
    x = b.relu(x, name="fc2_relu")
    x = b.gemm(x, num_classes, name="fc3")
    b.output(x)
    return b.build()
