"""Small models for tests, examples and quickstarts."""

from repro.graph.builder import GraphBuilder
from repro.graph.graph import ComputationGraph


def tiny_mlp(
    in_features: int = 64,
    hidden: int = 32,
    num_classes: int = 10,
    seed: int = 1,
) -> ComputationGraph:
    """A two-layer MLP over a flat input vector."""
    b = GraphBuilder("tiny_mlp", seed=seed)
    x = b.input((in_features,))
    x = b.gemm(x, hidden, name="fc1")
    x = b.relu(x, name="fc1_relu")
    x = b.gemm(x, num_classes, name="fc2")
    b.output(x)
    return b.build()


def weight_stream(
    branches: int = 4,
    in_channels: int = 1024,
    width: int = 16,
    kernel: int = 7,
    seed: int = 5,
) -> ComputationGraph:
    """Parallel single-position convs whose row tiles exceed the CIM
    macro-group capacity, so every branch lowers to a multipass
    weight-streaming loop (``MEM_CPY`` from global + ``CIM_LOAD`` per
    pass).  This is the workload class the block engine's iteration-major
    NoC replay targets; each branch occupies its own core column slice.
    """
    b = GraphBuilder(f"weight_stream_{branches}x{in_channels}", seed=seed)
    x = b.input((kernel, kernel, in_channels))
    for i in range(branches):
        b.output(b.conv(x, width, kernel, 1, 0, name=f"stream{i}"))
    return b.build()


def tiny_cnn(
    input_size: int = 8,
    channels: int = 8,
    num_classes: int = 10,
    seed: int = 2,
) -> ComputationGraph:
    """A two-convolution CNN with pooling, sized for the test architecture."""
    b = GraphBuilder(f"tiny_cnn_{input_size}", seed=seed)
    x = b.input((input_size, input_size, channels))
    x = b.conv(x, channels, 3, 1, 1, name="conv1")
    x = b.relu(x, name="relu1")
    x = b.maxpool(x, 2, 2, name="pool1")
    x = b.conv(x, 2 * channels, 3, 1, 1, name="conv2")
    x = b.relu(x, name="relu2")
    x = b.global_avgpool(x, name="gap")
    x = b.gemm(x, num_classes, name="fc")
    b.output(x)
    return b.build()


def tiny_resnet(
    input_size: int = 8,
    channels: int = 8,
    num_classes: int = 10,
    seed: int = 3,
) -> ComputationGraph:
    """A single residual block plus classifier; exercises fused adds."""
    b = GraphBuilder(f"tiny_resnet_{input_size}", seed=seed)
    x = b.input((input_size, input_size, channels))
    x = b.conv(x, channels, 3, 1, 1, name="stem")
    x = b.relu(x, name="stem_relu")
    identity = x
    y = b.conv(x, channels, 3, 1, 1, name="block_conv1")
    y = b.relu(y, name="block_relu1")
    y = b.conv(y, channels, 3, 1, 1, name="block_conv2")
    y = b.add(y, identity, name="block_add")
    y = b.relu(y, name="block_relu2")
    y = b.global_avgpool(y, name="gap")
    y = b.gemm(y, num_classes, name="fc")
    b.output(y)
    return b.build()
