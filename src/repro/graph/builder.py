"""Fluent construction of computation graphs with generated INT8 weights.

:class:`GraphBuilder` performs shape inference as operators are added and
fills in seeded-random INT8 weights / INT32 biases plus deterministic
requantisation parameters, standing in for the trained ONNX models the
paper consumes -- compilation and simulation behaviour depend on
topology and shapes, not on weight values.
"""

from typing import Optional, Sequence

import numpy as np

from repro.errors import GraphError
from repro.graph.graph import ComputationGraph
from repro.graph.ops import Operator, OpKind
from repro.graph.quantize import QuantParams, avgpool_qparams, default_qparams
from repro.graph.shape_inference import infer_output_shape
from repro.graph.tensor import TensorInfo

#: Weights are drawn from this half-open interval so int32 accumulators
#: cannot overflow even at the largest fan-in in the model zoo.
WEIGHT_LOW, WEIGHT_HIGH = -64, 64
BIAS_LOW, BIAS_HIGH = -512, 512


class GraphBuilder:
    """Builds a :class:`ComputationGraph` operator by operator."""

    def __init__(self, name: str = "graph", seed: int = 0):
        self.graph = ComputationGraph(name)
        self.rng = np.random.default_rng(seed)
        self._counter = 0

    # --- internals ---------------------------------------------------------
    def _fresh(self, stem: str) -> str:
        self._counter += 1
        return f"{stem}_{self._counter}"

    def _add(
        self,
        kind: OpKind,
        inputs: Sequence[str],
        attrs: Optional[dict] = None,
        name: Optional[str] = None,
        weight: Optional[np.ndarray] = None,
        bias: Optional[np.ndarray] = None,
        qparams: Optional[QuantParams] = None,
    ) -> str:
        attrs = dict(attrs or {})
        name = name or self._fresh(kind.value)
        input_shapes = [self.graph.tensor(t).shape for t in inputs]
        out_shape = infer_output_shape(kind, input_shapes, attrs)
        out_name = f"{name}_out"
        self.graph.add_tensor(TensorInfo(out_name, out_shape))
        op = Operator(
            name=name,
            kind=kind,
            inputs=list(inputs),
            output=out_name,
            attrs=attrs,
            weight=weight,
            bias=bias,
            qparams=qparams,
        )
        self.graph.add_operator(op)
        return out_name

    def _rand_weight(self, shape) -> np.ndarray:
        return self.rng.integers(WEIGHT_LOW, WEIGHT_HIGH, size=shape, dtype=np.int8)

    def _rand_bias(self, n: int) -> np.ndarray:
        return self.rng.integers(BIAS_LOW, BIAS_HIGH, size=n, dtype=np.int32)

    # --- operators ---------------------------------------------------------
    def input(self, shape, name: str = "input") -> str:
        """Declare the graph input tensor."""
        return self._add(OpKind.INPUT, [], {"shape": tuple(shape)}, name=name)

    def conv(
        self,
        x: str,
        out_channels: int,
        kernel: int,
        stride: int = 1,
        padding: int = 0,
        name: Optional[str] = None,
    ) -> str:
        """Standard convolution with HWIO int8 weights and int32 bias."""
        in_c = self.graph.tensor(x).shape[-1]
        weight = self._rand_weight((kernel, kernel, in_c, out_channels))
        bias = self._rand_bias(out_channels)
        fan_in = kernel * kernel * in_c
        return self._add(
            OpKind.CONV,
            [x],
            {
                "out_channels": out_channels,
                "kernel": kernel,
                "stride": stride,
                "padding": padding,
            },
            name=name,
            weight=weight,
            bias=bias,
            qparams=default_qparams(fan_in),
        )

    def dwconv(
        self,
        x: str,
        kernel: int,
        stride: int = 1,
        padding: int = 0,
        name: Optional[str] = None,
    ) -> str:
        """Depthwise convolution (channel multiplier 1)."""
        channels = self.graph.tensor(x).shape[-1]
        weight = self._rand_weight((kernel, kernel, channels))
        bias = self._rand_bias(channels)
        return self._add(
            OpKind.DWCONV,
            [x],
            {"kernel": kernel, "stride": stride, "padding": padding},
            name=name,
            weight=weight,
            bias=bias,
            qparams=default_qparams(kernel * kernel),
        )

    def gemm(self, x: str, out_features: int, name: Optional[str] = None) -> str:
        """Fully-connected layer over a flat vector."""
        shape = self.graph.tensor(x).shape
        if len(shape) != 1:
            raise GraphError(f"gemm input must be flat, got {shape}; flatten first")
        in_features = shape[0]
        weight = self._rand_weight((in_features, out_features))
        bias = self._rand_bias(out_features)
        return self._add(
            OpKind.GEMM,
            [x],
            {"out_features": out_features},
            name=name,
            weight=weight,
            bias=bias,
            qparams=default_qparams(in_features),
        )

    def relu(self, x: str, name: Optional[str] = None) -> str:
        return self._add(OpKind.RELU, [x], name=name)

    def relu6(self, x: str, name: Optional[str] = None) -> str:
        return self._add(OpKind.RELU6, [x], name=name)

    def silu(self, x: str, name: Optional[str] = None) -> str:
        return self._add(OpKind.SILU, [x], name=name)

    def sigmoid(self, x: str, name: Optional[str] = None) -> str:
        return self._add(OpKind.SIGMOID, [x], name=name)

    def add(self, a: str, b: str, name: Optional[str] = None) -> str:
        """Saturating residual add."""
        return self._add(OpKind.ADD, [a, b], name=name)

    def mul_channel(self, x: str, scale: str, name: Optional[str] = None) -> str:
        """Per-channel Q7 scale (squeeze-excite gating)."""
        return self._add(OpKind.MUL_CHANNEL, [x, scale], name=name)

    def maxpool(
        self, x: str, kernel: int, stride: int, padding: int = 0,
        name: Optional[str] = None,
    ) -> str:
        return self._add(
            OpKind.MAXPOOL,
            [x],
            {"kernel": kernel, "stride": stride, "padding": padding},
            name=name,
        )

    def avgpool(
        self, x: str, kernel: int, stride: int, name: Optional[str] = None
    ) -> str:
        return self._add(
            OpKind.AVGPOOL,
            [x],
            {"kernel": kernel, "stride": stride, "padding": 0},
            name=name,
            qparams=avgpool_qparams(kernel * kernel),
        )

    def global_avgpool(self, x: str, name: Optional[str] = None) -> str:
        h, w, _ = self.graph.tensor(x).shape
        return self._add(
            OpKind.GLOBALAVGPOOL,
            [x],
            name=name,
            qparams=avgpool_qparams(h * w),
        )

    def flatten(self, x: str, name: Optional[str] = None) -> str:
        return self._add(OpKind.FLATTEN, [x], name=name)

    def output(self, tensor: str) -> str:
        """Mark ``tensor`` as a graph output."""
        self.graph.mark_output(tensor)
        return tensor

    def build(self) -> ComputationGraph:
        """Validate and return the finished graph."""
        self.graph.validate()
        return self.graph
