"""Shape inference for every operator kind.

Layout conventions (see :mod:`repro.graph.tensor`): feature maps are
``(H, W, C)``, flat vectors are ``(N,)``.  Convolutions use square kernels
with symmetric padding.
"""

from typing import Any, Dict, List, Tuple

from repro.errors import GraphError
from repro.graph.ops import OpKind

Shape = Tuple[int, ...]


def conv_output_hw(h: int, w: int, kernel: int, stride: int, padding: int) -> Tuple[int, int]:
    """Spatial output size of a convolution/pooling window."""
    if kernel <= 0 or stride <= 0 or padding < 0:
        raise GraphError("kernel/stride must be positive, padding non-negative")
    out_h = (h + 2 * padding - kernel) // stride + 1
    out_w = (w + 2 * padding - kernel) // stride + 1
    if out_h <= 0 or out_w <= 0:
        raise GraphError(
            f"window k={kernel} s={stride} p={padding} does not fit input "
            f"{h}x{w}"
        )
    return out_h, out_w


def _expect_fmap(shape: Shape, kind: OpKind) -> Shape:
    if len(shape) != 3:
        raise GraphError(f"{kind.value} expects an (H, W, C) input, got {shape}")
    return shape


def infer_output_shape(
    kind: OpKind, input_shapes: List[Shape], attrs: Dict[str, Any]
) -> Shape:
    """Output shape of an operator given its input shapes and attributes."""
    if kind is OpKind.INPUT:
        shape = attrs.get("shape")
        if not shape:
            raise GraphError("INPUT operator needs a 'shape' attribute")
        return tuple(shape)

    first = tuple(input_shapes[0])
    if kind is OpKind.CONV:
        h, w, _ = _expect_fmap(first, kind)
        out_h, out_w = conv_output_hw(
            h, w, attrs["kernel"], attrs["stride"], attrs["padding"]
        )
        return (out_h, out_w, attrs["out_channels"])

    if kind is OpKind.DWCONV:
        h, w, c = _expect_fmap(first, kind)
        out_h, out_w = conv_output_hw(
            h, w, attrs["kernel"], attrs["stride"], attrs["padding"]
        )
        return (out_h, out_w, c)

    if kind is OpKind.GEMM:
        if len(first) != 1:
            raise GraphError(f"gemm expects a flat (N,) input, got {first}")
        return (attrs["out_features"],)

    if kind in (OpKind.MAXPOOL, OpKind.AVGPOOL):
        h, w, c = _expect_fmap(first, kind)
        out_h, out_w = conv_output_hw(
            h, w, attrs["kernel"], attrs["stride"], attrs.get("padding", 0)
        )
        return (out_h, out_w, c)

    if kind is OpKind.GLOBALAVGPOOL:
        _, _, c = _expect_fmap(first, kind)
        return (c,)

    if kind is OpKind.FLATTEN:
        total = 1
        for dim in first:
            total *= dim
        return (total,)

    if kind is OpKind.ADD:
        second = tuple(input_shapes[1])
        if first != second:
            raise GraphError(f"add shape mismatch: {first} vs {second}")
        return first

    if kind is OpKind.MUL_CHANNEL:
        scale = tuple(input_shapes[1])
        channels = first[-1]
        if scale != (channels,):
            raise GraphError(
                f"mul_channel scale shape {scale} != ({channels},)"
            )
        return first

    if kind in (OpKind.RELU, OpKind.RELU6, OpKind.SILU, OpKind.SIGMOID):
        return first

    raise GraphError(f"no shape rule for operator kind {kind}")
