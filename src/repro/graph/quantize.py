"""Shared INT8 quantisation arithmetic.

Both the golden functional model (:mod:`repro.sim.functional`) and the
simulator's vector/CIM units import these helpers, so the two always agree
bit-for-bit; any residual mismatch is a genuine compiler or simulator bug
and is caught by functional validation.

The scheme is the standard fixed-point one used by INT8 inference stacks:
32-bit accumulators are requantised by ``clip((acc * qmul) >> qshift)``
with a per-operator multiplier/shift pair; nonlinearities act on the int8
domain through 256-entry lookup tables.
"""

import math
from dataclasses import dataclass

import numpy as np

I8_MIN, I8_MAX = -128, 127

#: Quantized representation constants for the activation LUTs: int8 code x
#: represents the real value x / ACT_SCALE.
ACT_SCALE = 16.0
#: ReLU6 clip point in int8 codes (6.0 * ACT_SCALE, saturated).
RELU6_CLIP = min(I8_MAX, int(round(6.0 * ACT_SCALE)))


@dataclass(frozen=True)
class QuantParams:
    """Requantisation parameters of one operator: out = (acc*qmul) >> qshift."""

    qmul: int = 1
    qshift: int = 0

    def __post_init__(self):
        if self.qmul <= 0 or not 0 <= self.qshift < 32:
            raise ValueError(f"bad quantisation parameters {self}")


def default_qparams(fan_in: int) -> QuantParams:
    """Deterministic requantisation parameters for a given accumulation
    fan-in, sized so int8 outputs neither saturate constantly nor vanish."""
    if fan_in <= 0:
        raise ValueError("fan_in must be positive")
    # weights ~ U[-64,63], activations ~ int8: acc std ~ sqrt(fan_in)*37*40
    shift = max(0, int(math.ceil(math.log2(math.sqrt(fan_in) * 64))))
    return QuantParams(qmul=1, qshift=shift)


def avgpool_qparams(window: int, qshift: int = 8) -> QuantParams:
    """Fixed-point divide-by-``window`` for average pooling."""
    if window <= 0:
        raise ValueError("window must be positive")
    return QuantParams(qmul=max(1, round((1 << qshift) / window)), qshift=qshift)


def saturate_i8(values: np.ndarray) -> np.ndarray:
    """Clip int values into int8 range and cast."""
    return np.clip(values, I8_MIN, I8_MAX).astype(np.int8)


def requantize(acc: np.ndarray, params: QuantParams) -> np.ndarray:
    """int32 accumulators -> int8 activations (arithmetic right shift)."""
    acc = acc.astype(np.int64)
    return saturate_i8((acc * params.qmul) >> params.qshift)


def _lut(fn) -> np.ndarray:
    """Build a 256-entry int8 LUT over the int8 input domain."""
    codes = np.arange(-128, 128, dtype=np.int64)
    real = codes.astype(np.float64) / ACT_SCALE
    out = np.round(fn(real) * ACT_SCALE)
    return saturate_i8(out)


SIGMOID_LUT = _lut(lambda x: 1.0 / (1.0 + np.exp(-x)))
SILU_LUT = _lut(lambda x: x / (1.0 + np.exp(-x)))
TANH_LUT = _lut(np.tanh)


def apply_lut(values: np.ndarray, lut: np.ndarray) -> np.ndarray:
    """Apply a 256-entry LUT to int8 data (index = code + 128)."""
    return lut[values.astype(np.int16) + 128]


def relu_i8(values: np.ndarray) -> np.ndarray:
    return np.maximum(values, 0).astype(np.int8)


def relu6_i8(values: np.ndarray) -> np.ndarray:
    return np.clip(values, 0, RELU6_CLIP).astype(np.int8)


def add_i8(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Saturating int8 elementwise add."""
    return saturate_i8(a.astype(np.int16) + b.astype(np.int16))


def cmul_i8(x: np.ndarray, scale: np.ndarray) -> np.ndarray:
    """Per-channel Q7 scale multiply: (x * s) >> 7, saturated.

    ``x`` has channels in its last axis; ``scale`` is one int8 value per
    channel (typically a sigmoid gate output, interpreted as Q7 in [0, 1)).
    """
    prod = x.astype(np.int32) * scale.astype(np.int32)
    return saturate_i8(prod >> 7)
