"""ONNX-like JSON serialisation of computation graphs.

The paper's workflow starts from "a DNN model description in ONNX format".
ONNX protobufs are not available offline, so this module provides the
equivalent interchange surface: a complete, self-describing JSON format
that round-trips graphs (optionally including weights), giving CIMFlow its
"model file in, report out" workflow.
"""

import json
from pathlib import Path
from typing import Any, Dict, Union

import numpy as np

from repro.errors import GraphError
from repro.graph.graph import ComputationGraph
from repro.graph.ops import Operator, OpKind
from repro.graph.quantize import QuantParams
from repro.graph.shape_inference import infer_output_shape
from repro.graph.tensor import TensorInfo

FORMAT_VERSION = 1


def _array_to_json(array: np.ndarray) -> Dict[str, Any]:
    return {
        "dtype": str(array.dtype),
        "shape": list(array.shape),
        "data": array.reshape(-1).tolist(),
    }


def _array_from_json(data: Dict[str, Any]) -> np.ndarray:
    return np.array(data["data"], dtype=data["dtype"]).reshape(data["shape"])


def graph_to_dict(
    graph: ComputationGraph, include_weights: bool = True
) -> Dict[str, Any]:
    """Serialise a graph (and optionally its parameters) to a dictionary."""
    ops = []
    for op in graph.operators:
        entry: Dict[str, Any] = {
            "name": op.name,
            "kind": op.kind.value,
            "inputs": list(op.inputs),
            "output": op.output,
            "attrs": {
                k: (list(v) if isinstance(v, tuple) else v)
                for k, v in op.attrs.items()
            },
        }
        if op.qparams is not None:
            entry["qparams"] = {"qmul": op.qparams.qmul, "qshift": op.qparams.qshift}
        if include_weights and op.weight is not None:
            entry["weight"] = _array_to_json(op.weight)
        if include_weights and op.bias is not None:
            entry["bias"] = _array_to_json(op.bias)
        ops.append(entry)
    return {
        "format_version": FORMAT_VERSION,
        "name": graph.name,
        "tensors": [
            {"name": t.name, "shape": list(t.shape), "dtype": t.dtype}
            for t in graph.tensors.values()
        ],
        "operators": ops,
        "outputs": list(graph.outputs),
    }


def graph_from_dict(data: Dict[str, Any]) -> ComputationGraph:
    """Reconstruct a graph from :func:`graph_to_dict` output.

    Shapes are re-inferred and checked against the stored tensor table, so
    a corrupted file fails loudly instead of mis-simulating.
    """
    if data.get("format_version") != FORMAT_VERSION:
        raise GraphError(
            f"unsupported model format version {data.get('format_version')!r}"
        )
    graph = ComputationGraph(data.get("name", "graph"))
    for entry in data["tensors"]:
        graph.add_tensor(
            TensorInfo(entry["name"], tuple(entry["shape"]), entry.get("dtype", "int8"))
        )
    for entry in data["operators"]:
        kind = OpKind(entry["kind"])
        qparams = None
        if "qparams" in entry:
            qparams = QuantParams(**entry["qparams"])
        op = Operator(
            name=entry["name"],
            kind=kind,
            inputs=list(entry["inputs"]),
            output=entry["output"],
            attrs=dict(entry.get("attrs", {})),
            weight=_array_from_json(entry["weight"]) if "weight" in entry else None,
            bias=_array_from_json(entry["bias"]) if "bias" in entry else None,
            qparams=qparams,
        )
        input_shapes = [graph.tensor(t).shape for t in op.inputs]
        inferred = infer_output_shape(kind, input_shapes, op.attrs)
        declared = graph.tensor(op.output).shape
        if tuple(inferred) != tuple(declared):
            raise GraphError(
                f"{op.name}: stored shape {declared} contradicts inferred "
                f"{inferred}"
            )
        graph.add_operator(op)
    for tensor in data.get("outputs", []):
        graph.mark_output(tensor)
    graph.validate()
    return graph


def save_graph(
    graph: ComputationGraph,
    path: Union[str, Path],
    include_weights: bool = True,
) -> None:
    """Write a model description file."""
    payload = graph_to_dict(graph, include_weights=include_weights)
    Path(path).write_text(json.dumps(payload))


def load_graph(path: Union[str, Path]) -> ComputationGraph:
    """Read a model description file."""
    try:
        data = json.loads(Path(path).read_text())
    except json.JSONDecodeError as exc:
        raise GraphError(f"malformed model file {path}: {exc}") from exc
    return graph_from_dict(data)
