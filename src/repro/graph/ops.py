"""Operator nodes of the computation-graph IR.

The operator vocabulary covers everything the paper's benchmark suite
(ResNet18, VGG19, MobileNetV2, EfficientNetB0) needs after BatchNorm
folding: convolutions (standard and depthwise), fully-connected layers,
the elementwise nonlinearities, residual adds, pooling, squeeze-excite
channel scaling, and flatten.

Operators carrying weights (``CONV``, ``DWCONV``, ``GEMM``) are the
MVM-based operators the compiler maps onto CIM macro groups; everything
else executes on the vector unit or is pure data movement.
"""

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

import numpy as np

from repro.errors import GraphError
from repro.graph.quantize import QuantParams


class OpKind(enum.Enum):
    """Operator vocabulary."""

    INPUT = "input"
    CONV = "conv"            # standard convolution (NHWC, square kernel)
    DWCONV = "dwconv"        # depthwise convolution
    GEMM = "gemm"            # fully-connected layer
    RELU = "relu"
    RELU6 = "relu6"
    SILU = "silu"
    SIGMOID = "sigmoid"
    ADD = "add"              # elementwise residual add (two inputs)
    MUL_CHANNEL = "mul_channel"  # x * per-channel scale (squeeze-excite)
    MAXPOOL = "maxpool"
    AVGPOOL = "avgpool"
    GLOBALAVGPOOL = "globalavgpool"
    FLATTEN = "flatten"


#: Operators the compiler maps onto CIM macro groups.
MVM_KINDS = frozenset({OpKind.CONV, OpKind.DWCONV, OpKind.GEMM})

#: Pure elementwise operators fusable into a producer's epilogue.
ELEMENTWISE_KINDS = frozenset(
    {OpKind.RELU, OpKind.RELU6, OpKind.SILU, OpKind.SIGMOID, OpKind.ADD}
)

#: Operators that execute on the vector compute unit as standalone nodes.
VECTOR_KINDS = frozenset(
    {
        OpKind.MAXPOOL,
        OpKind.AVGPOOL,
        OpKind.GLOBALAVGPOOL,
        OpKind.MUL_CHANNEL,
        OpKind.ADD,
        OpKind.RELU,
        OpKind.RELU6,
        OpKind.SILU,
        OpKind.SIGMOID,
    }
)

_REQUIRED_ATTRS = {
    OpKind.CONV: ("out_channels", "kernel", "stride", "padding"),
    OpKind.DWCONV: ("kernel", "stride", "padding"),
    OpKind.GEMM: ("out_features",),
    OpKind.MAXPOOL: ("kernel", "stride"),
    OpKind.AVGPOOL: ("kernel", "stride"),
}


@dataclass
class Operator:
    """One node of the computation graph.

    Attributes
    ----------
    name:
        Unique operator name.
    kind:
        Operator vocabulary entry.
    inputs:
        Input tensor names (order matters; e.g. ``ADD`` is ``[a, b]`` and
        ``MUL_CHANNEL`` is ``[x, scale]``).
    output:
        Output tensor name (single-output operators suffice for the suite).
    attrs:
        Kind-specific attributes (kernel / stride / padding / channels).
    weight / bias:
        Parameter arrays for MVM operators.  Conv weights are
        ``(k, k, C_in, C_out)`` int8 (HWIO, matching the NHWC dataflow);
        depthwise weights are ``(k, k, C)``; GEMM weights are
        ``(in_features, out_features)``.  Bias is int32 per output channel.
    qparams:
        Requantisation parameters for operators producing int8 from int32
        accumulators (MVM ops, average pools).
    """

    name: str
    kind: OpKind
    inputs: List[str]
    output: str
    attrs: Dict[str, Any] = field(default_factory=dict)
    weight: Optional[np.ndarray] = None
    bias: Optional[np.ndarray] = None
    qparams: Optional[QuantParams] = None

    def __post_init__(self):
        for attr in _REQUIRED_ATTRS.get(self.kind, ()):
            if attr not in self.attrs:
                raise GraphError(f"{self.name} ({self.kind.value}): missing attr {attr!r}")
        expected_inputs = 2 if self.kind in (OpKind.ADD, OpKind.MUL_CHANNEL) else (
            0 if self.kind is OpKind.INPUT else 1
        )
        if len(self.inputs) != expected_inputs:
            raise GraphError(
                f"{self.name} ({self.kind.value}): expected {expected_inputs} "
                f"inputs, got {len(self.inputs)}"
            )

    @property
    def is_mvm(self) -> bool:
        """True when this operator maps onto CIM macro groups."""
        return self.kind in MVM_KINDS

    @property
    def is_elementwise(self) -> bool:
        return self.kind in ELEMENTWISE_KINDS

    def attr(self, name: str, default: Any = None) -> Any:
        return self.attrs.get(name, default)

    def weight_bytes(self) -> int:
        """Parameter footprint in bytes (weights only; bias is int32)."""
        total = 0
        if self.weight is not None:
            total += self.weight.size
        return total

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Operator({self.name}, {self.kind.value}, "
            f"in={self.inputs}, out={self.output})"
        )
