"""DNN computation-graph IR, quantisation, serialisation and model zoo."""

from repro.graph.builder import GraphBuilder
from repro.graph.graph import ComputationGraph
from repro.graph.onnx_like import (
    graph_from_dict,
    graph_to_dict,
    load_graph,
    save_graph,
)
from repro.graph.ops import ELEMENTWISE_KINDS, MVM_KINDS, Operator, OpKind
from repro.graph.quantize import QuantParams
from repro.graph.shape_inference import infer_output_shape
from repro.graph.tensor import TensorInfo

__all__ = [
    "ComputationGraph",
    "GraphBuilder",
    "Operator",
    "OpKind",
    "MVM_KINDS",
    "ELEMENTWISE_KINDS",
    "TensorInfo",
    "QuantParams",
    "infer_output_shape",
    "graph_to_dict",
    "graph_from_dict",
    "save_graph",
    "load_graph",
]
