"""Deterministic fault injection for replicated serving.

A :class:`FaultPlan` is a seeded, typed description of everything that
goes wrong during a serving run: replicas crash
(:class:`ReplicaCrash`), run slow for a window
(:class:`ReplicaSlowdown`), lose link bandwidth
(:class:`LinkDegrade`), or fail individual requests at completion time
(:class:`TransientRequestFailure`).  Every event is a pure function of
cycle counts and seeds -- no wall clock, no global RNG -- so the same
plan replayed against the same arrival stream reproduces the same
report byte for byte, in the same process or across processes.

:func:`run_fault_schedule` is the shared failover engine both fidelity
tiers drive (``docs/ARCHITECTURE.md``, "Fault model & failover
contract"): health-aware dispatch (dead replicas stop receiving work),
a :class:`RetryPolicy` that re-enqueues failed or crash-killed attempts
onto surviving replicas, and graceful degradation -- a request that
exhausts its attempts, outlives its deadline, or finds no live replica
is recorded as *dropped*, never silently lost.  Conservation is an
invariant the engine itself asserts::

    submitted == completed + dropped

Timing faults reuse the exact streaming recurrence: each replica's
admission mirror applies the same per-shard inner loop as
:func:`repro.sim.multichip.streaming_schedule`, and the plan's
:meth:`FaultPlan.schedule_hooks` plug straight into that function's
``service_time`` / ``link_time`` parameters, so a cycle-exact replay of
one replica's admitted attempts reproduces the engine's predicted
start/finish cycles exactly.  An empty plan with no retry policy is the
identity: :class:`repro.serve.Fleet` routes it through the unfaulted
PR-6 path, bit-identical in both tiers.
"""

import hashlib
import json
import math
from dataclasses import dataclass, replace
from heapq import heappop, heappush
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.config import InterChipConfig
from repro.errors import FaultError, SimulationError
from repro.sim.multichip import TransferEdge

#: Why a request was dropped (the graceful-degradation taxonomy).
DROP_DEADLINE = "deadline"
DROP_MAX_ATTEMPTS = "max_attempts"
DROP_NO_REPLICA = "no_replica"


# ---------------------------------------------------------------------------
# Fault events
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ReplicaCrash:
    """Replica ``replica`` dies permanently at ``at_cycle``.

    From ``at_cycle`` on the replica accepts no new dispatches; any
    attempt still in flight whose finish would land after the crash is
    killed *at* the crash cycle (its partial service is lost and it
    consumes no energy) and becomes eligible for retry on a survivor.
    """

    replica: int
    at_cycle: int

    def __post_init__(self):
        if self.replica < 0:
            raise FaultError(
                f"crash replica must be >= 0, got {self.replica}"
            )
        if self.at_cycle < 0:
            raise FaultError(
                f"crash cycle must be >= 0, got {self.at_cycle}"
            )

    def to_dict(self) -> Dict:
        return {
            "type": "replica_crash",
            "replica": int(self.replica),
            "at_cycle": int(self.at_cycle),
        }

    def describe(self) -> str:
        return f"crash(r{self.replica}@{self.at_cycle})"


@dataclass(frozen=True)
class ReplicaSlowdown:
    """Replica ``replica`` runs ``factor``x slower inside a cycle window.

    A shard pass *starting* inside ``[start_cycle, end_cycle)`` takes
    ``ceil(base * factor)`` cycles instead of ``base``.  Overlapping
    slowdowns multiply.  ``end_cycle=None`` means the window never
    closes.
    """

    replica: int
    factor: float
    start_cycle: int = 0
    end_cycle: Optional[int] = None

    def __post_init__(self):
        if self.replica < 0:
            raise FaultError(
                f"slowdown replica must be >= 0, got {self.replica}"
            )
        if not self.factor >= 1.0:
            raise FaultError(
                f"slowdown factor must be >= 1.0, got {self.factor}"
            )
        if self.start_cycle < 0:
            raise FaultError("slowdown window must start at cycle >= 0")
        if self.end_cycle is not None and self.end_cycle <= self.start_cycle:
            raise FaultError(
                f"slowdown window [{self.start_cycle}, {self.end_cycle}) "
                f"is empty"
            )

    def active_at(self, cycle: int) -> bool:
        if cycle < self.start_cycle:
            return False
        return self.end_cycle is None or cycle < self.end_cycle

    def to_dict(self) -> Dict:
        return {
            "type": "replica_slowdown",
            "replica": int(self.replica),
            "factor": float(self.factor),
            "start_cycle": int(self.start_cycle),
            "end_cycle": (
                None if self.end_cycle is None else int(self.end_cycle)
            ),
        }

    def describe(self) -> str:
        return f"slow(r{self.replica} x{self.factor:g})"


@dataclass(frozen=True)
class LinkDegrade:
    """Inter-chip links lose bandwidth inside a cycle window.

    A transfer *departing* inside ``[start_cycle, end_cycle)`` sees its
    serialization stretched by ``1 / bw_factor`` (propagation latency is
    unaffected -- bandwidth loss, not distance).  ``replica=None``
    degrades every replica's links; otherwise only the named replica's.
    Overlapping degrades multiply.
    """

    bw_factor: float
    start_cycle: int = 0
    end_cycle: Optional[int] = None
    replica: Optional[int] = None

    def __post_init__(self):
        if not 0.0 < self.bw_factor <= 1.0:
            raise FaultError(
                f"link bw_factor must be in (0, 1], got {self.bw_factor}"
            )
        if self.start_cycle < 0:
            raise FaultError("link-degrade window must start at cycle >= 0")
        if self.end_cycle is not None and self.end_cycle <= self.start_cycle:
            raise FaultError(
                f"link-degrade window [{self.start_cycle}, "
                f"{self.end_cycle}) is empty"
            )
        if self.replica is not None and self.replica < 0:
            raise FaultError(
                f"link-degrade replica must be >= 0, got {self.replica}"
            )

    def active_at(self, cycle: int) -> bool:
        if cycle < self.start_cycle:
            return False
        return self.end_cycle is None or cycle < self.end_cycle

    def applies_to(self, replica: int) -> bool:
        return self.replica is None or self.replica == replica

    def to_dict(self) -> Dict:
        return {
            "type": "link_degrade",
            "bw_factor": float(self.bw_factor),
            "start_cycle": int(self.start_cycle),
            "end_cycle": (
                None if self.end_cycle is None else int(self.end_cycle)
            ),
            "replica": (
                None if self.replica is None else int(self.replica)
            ),
        }

    def describe(self) -> str:
        scope = "all" if self.replica is None else f"r{self.replica}"
        return f"link({scope} x{self.bw_factor:g})"


@dataclass(frozen=True)
class TransientRequestFailure:
    """Each attempt independently fails with probability ``prob``.

    The draw is a pure hash of ``(seed, request, attempt)`` -- stable
    across processes, platforms and Python hash randomisation -- so the
    same plan always fails the same attempts.  A failed attempt consumed
    full service (the work ran, the result was lost) and is retried
    under the :class:`RetryPolicy`.
    """

    prob: float
    seed: int = 0

    def __post_init__(self):
        if not 0.0 <= self.prob <= 1.0:
            raise FaultError(
                f"transient failure prob must be in [0, 1], got {self.prob}"
            )

    def fails(self, request: int, attempt: int) -> bool:
        token = f"{int(self.seed)}:{int(request)}:{int(attempt)}"
        digest = hashlib.sha256(token.encode("ascii")).digest()
        draw = int.from_bytes(digest[:8], "big") / 2.0 ** 64
        return draw < self.prob

    def to_dict(self) -> Dict:
        return {
            "type": "transient_request_failure",
            "prob": float(self.prob),
            "seed": int(self.seed),
        }

    def describe(self) -> str:
        return f"flaky(p={self.prob:g}, seed {self.seed})"


FaultEvent = Union[
    ReplicaCrash, ReplicaSlowdown, LinkDegrade, TransientRequestFailure
]

_EVENT_TYPES = {
    "replica_crash": ReplicaCrash,
    "replica_slowdown": ReplicaSlowdown,
    "link_degrade": LinkDegrade,
    "transient_request_failure": TransientRequestFailure,
}


# ---------------------------------------------------------------------------
# Retry policy
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class RetryPolicy:
    """What the fleet does when an attempt fails.

    A failed attempt (transient failure or crash kill) is re-enqueued
    ``backoff_cycles`` after the failure, up to ``max_attempts`` total
    attempts per request.  ``per_request_deadline_cycles`` bounds the
    client-visible latency: a request whose completion (or whose next
    retry opportunity) lands past ``release + deadline`` is dropped with
    reason ``"deadline"`` rather than retried forever.
    """

    max_attempts: int = 3
    backoff_cycles: int = 0
    per_request_deadline_cycles: Optional[int] = None

    def __post_init__(self):
        if self.max_attempts < 1:
            raise FaultError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.backoff_cycles < 0:
            raise FaultError(
                f"backoff_cycles must be >= 0, got {self.backoff_cycles}"
            )
        if (
            self.per_request_deadline_cycles is not None
            and self.per_request_deadline_cycles <= 0
        ):
            raise FaultError(
                f"per_request_deadline_cycles must be > 0, got "
                f"{self.per_request_deadline_cycles}"
            )

    def to_dict(self) -> Dict:
        return {
            "max_attempts": int(self.max_attempts),
            "backoff_cycles": int(self.backoff_cycles),
            "per_request_deadline_cycles": (
                None if self.per_request_deadline_cycles is None
                else int(self.per_request_deadline_cycles)
            ),
        }

    @classmethod
    def from_dict(cls, payload: Dict) -> "RetryPolicy":
        try:
            return cls(
                max_attempts=int(payload.get("max_attempts", 3)),
                backoff_cycles=int(payload.get("backoff_cycles", 0)),
                per_request_deadline_cycles=(
                    None
                    if payload.get("per_request_deadline_cycles") is None
                    else int(payload["per_request_deadline_cycles"])
                ),
            )
        except (TypeError, ValueError) as exc:
            raise FaultError(f"malformed retry policy: {exc}") from exc

    def describe(self) -> str:
        parts = [f"attempts<={self.max_attempts}"]
        if self.backoff_cycles:
            parts.append(f"backoff {self.backoff_cycles}")
        if self.per_request_deadline_cycles is not None:
            parts.append(f"deadline {self.per_request_deadline_cycles}")
        return "retry(" + ", ".join(parts) + ")"


# ---------------------------------------------------------------------------
# Fault plan
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class FaultPlan:
    """An immutable, seeded schedule of fault events plus an optional
    embedded :class:`RetryPolicy`.

    Hashable and picklable, so plans ride through sweep cache keys and
    process pools unchanged.  The empty plan is the identity:
    ``FaultPlan()`` injected nothing and (absent an explicit retry
    policy) leaves :class:`repro.serve.Fleet` on the exact unfaulted
    code path.
    """

    events: Tuple[FaultEvent, ...] = ()
    retry: Optional[RetryPolicy] = None

    def __post_init__(self):
        events = tuple(self.events)
        for event in events:
            if not isinstance(event, tuple(_EVENT_TYPES.values())):
                raise FaultError(
                    f"unknown fault event {type(event).__name__}"
                )
        object.__setattr__(self, "events", events)

    # -- queries -------------------------------------------------------------
    @property
    def is_empty(self) -> bool:
        return not self.events

    def crash_cycle(self, replica: int) -> Optional[int]:
        """Cycle at which ``replica`` dies (earliest crash wins)."""
        cycles = [
            e.at_cycle for e in self.events
            if isinstance(e, ReplicaCrash) and e.replica == replica
        ]
        return min(cycles) if cycles else None

    def attempt_fails(self, request: int, attempt: int) -> bool:
        """Whether any transient-failure event kills this attempt."""
        return any(
            e.fails(request, attempt) for e in self.events
            if isinstance(e, TransientRequestFailure)
        )

    def schedule_hooks(self, replica: int, link: InterChipConfig):
        """``(service_time, link_time)`` hooks for one replica's replay.

        The exact callables :func:`repro.sim.multichip.streaming_schedule`
        accepts; ``(None, None)`` when no timing event touches the
        replica, so the unfaulted arithmetic stays untouched.
        """
        slowdowns = tuple(
            e for e in self.events
            if isinstance(e, ReplicaSlowdown) and e.replica == replica
        )
        degrades = tuple(
            e for e in self.events
            if isinstance(e, LinkDegrade) and e.applies_to(replica)
        )
        service_time = None
        if slowdowns:
            def service_time(k, start, base):
                factor = 1.0
                for event in slowdowns:
                    if event.active_at(start):
                        factor *= event.factor
                if factor == 1.0:
                    return base
                return int(math.ceil(base * factor))
        link_time = None
        if degrades:
            def link_time(src, dst, depart, nbytes):
                ser = link.serialization_cycles(nbytes)
                bw = 1.0
                for event in degrades:
                    if event.active_at(depart):
                        bw *= event.bw_factor
                if bw < 1.0:
                    ser = int(math.ceil(ser / bw))
                return ser, link.latency_cycles + ser
        return service_time, link_time

    def replica_timeline(self, replicas: int) -> List[List[Dict]]:
        """Per-replica downtime/degradation windows, for reports."""
        timeline: List[List[Dict]] = [[] for _ in range(replicas)]
        for event in self.events:
            if isinstance(event, ReplicaCrash):
                if event.replica < replicas:
                    timeline[event.replica].append({
                        "kind": "crash",
                        "start_cycle": int(event.at_cycle),
                        "end_cycle": None,
                    })
            elif isinstance(event, ReplicaSlowdown):
                if event.replica < replicas:
                    timeline[event.replica].append({
                        "kind": "slowdown",
                        "factor": float(event.factor),
                        "start_cycle": int(event.start_cycle),
                        "end_cycle": event.end_cycle,
                    })
            elif isinstance(event, LinkDegrade):
                targets = (
                    range(replicas) if event.replica is None
                    else [event.replica]
                )
                for r in targets:
                    if r < replicas:
                        timeline[r].append({
                            "kind": "link_degrade",
                            "bw_factor": float(event.bw_factor),
                            "start_cycle": int(event.start_cycle),
                            "end_cycle": event.end_cycle,
                        })
        for windows in timeline:
            windows.sort(
                key=lambda w: (w["start_cycle"], w["kind"])
            )
        return timeline

    # -- serialization -------------------------------------------------------
    def to_dict(self) -> Dict:
        return {
            "events": [e.to_dict() for e in self.events],
            "retry": None if self.retry is None else self.retry.to_dict(),
        }

    @classmethod
    def from_dict(cls, payload: Dict) -> "FaultPlan":
        if not isinstance(payload, dict):
            raise FaultError(
                f"fault plan must be a JSON object, got "
                f"{type(payload).__name__}"
            )
        events: List[FaultEvent] = []
        for entry in payload.get("events", []):
            if not isinstance(entry, dict) or "type" not in entry:
                raise FaultError(
                    "each fault event needs a 'type' tag; got "
                    f"{entry!r}"
                )
            kind = entry["type"]
            klass = _EVENT_TYPES.get(kind)
            if klass is None:
                raise FaultError(
                    f"unknown fault event type {kind!r}; expected one of "
                    f"{sorted(_EVENT_TYPES)}"
                )
            kwargs = {k: v for k, v in entry.items() if k != "type"}
            try:
                events.append(klass(**kwargs))
            except TypeError as exc:
                raise FaultError(
                    f"malformed {kind} event {entry!r}: {exc}"
                ) from exc
        retry = payload.get("retry")
        return cls(
            events=tuple(events),
            retry=None if retry is None else RetryPolicy.from_dict(retry),
        )

    def fingerprint(self) -> str:
        """Stable content hash; the sweep-cache key material for plans."""
        canonical = json.dumps(self.to_dict(), sort_keys=True)
        return hashlib.sha256(canonical.encode("ascii")).hexdigest()[:16]

    def describe(self) -> str:
        if self.is_empty and self.retry is None:
            return "no-fault"
        parts = [e.describe() for e in self.events]
        if self.retry is not None:
            parts.append(self.retry.describe())
        return "+".join(parts) if parts else "no-fault"

    def with_retry(self, retry: RetryPolicy) -> "FaultPlan":
        return replace(self, retry=retry)


def save_fault_plan(plan: FaultPlan, path) -> None:
    """Write a plan (and its embedded retry policy) as a JSON file."""
    Path(path).write_text(json.dumps(plan.to_dict(), indent=2) + "\n")


def load_fault_plan(path) -> FaultPlan:
    """Load a :class:`FaultPlan` from a JSON file.

    Raises :class:`~repro.errors.FaultError` (a
    :class:`~repro.errors.ReproError`) for a missing, unreadable or
    malformed file, so CLI verbs can fail with a one-line message.
    """
    try:
        text = Path(path).read_text()
    except OSError as exc:
        raise FaultError(f"cannot read fault plan {path}: {exc}") from exc
    try:
        payload = json.loads(text)
    except ValueError as exc:
        raise FaultError(
            f"fault plan {path} is not valid JSON: {exc}"
        ) from exc
    return FaultPlan.from_dict(payload)


# ---------------------------------------------------------------------------
# Failover engine
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class AttemptRecord:
    """One dispatch of one request onto one replica."""

    request: int
    attempt: int
    replica: int
    dispatch_cycle: int
    finish_cycle: int  #: completion cycle, or the crash cycle if killed
    status: str  #: "completed" | "transient" | "crashed" | "late"
    start_cycle: int = 0  #: shard-0 service-entry cycle of this attempt

    @property
    def full_service(self) -> bool:
        """Whether the replica ran the whole inference (energy charged).

        Crash-killed attempts lose their partial work and consume no
        modeled energy; completed, transiently-failed and past-deadline
        attempts all did the full compute.
        """
        return self.status != "crashed"


class _FaultyReplicaState:
    """One replica's admission mirror under a fault plan.

    The same incremental recurrence as
    :class:`repro.serve._ReplicaState`, with the plan's timing hooks
    applied -- so replaying the admitted dispatch cycles through
    :func:`repro.sim.multichip.streaming_schedule` with the same hooks
    reproduces these finish cycles exactly (the cycle-exact tier
    contract).
    """

    def __init__(
        self,
        row: Sequence[int],
        edges: Sequence[TransferEdge],
        link: InterChipConfig,
        plan: FaultPlan,
        replica: int,
        load_offset: int = 0,
    ):
        self.row = list(row)
        self.edges = list(edges)
        self.link = link
        self.replica = replica
        #: Resident-weights sessions: a cold replica cannot start service
        #: before its weight-load phase completes; every dispatch onto it
        #: is clamped to this cycle (0 = warm / non-resident, identity).
        self.load_offset = int(load_offset)
        self.crash = plan.crash_cycle(replica)
        self.service_time, self.link_time = plan.schedule_hooks(
            replica, link
        )
        self.prev_finish = [0] * len(self.row)
        self.link_free: Dict[Tuple[int, int], int] = {}
        self.in_flight: List[int] = []  #: effective finish cycles

    def alive_at(self, cycle: int) -> bool:
        return self.crash is None or cycle < self.crash

    def admit(self, release: int) -> Tuple[int, int]:
        """Account one attempt dispatched at ``release``.

        Returns ``(start, finish)`` where ``start`` is the shard-0 entry
        cycle and ``finish`` the last-shard completion cycle, ignoring
        any crash (the caller decides whether the crash kills it).
        """
        n = len(self.row)
        arrival = [0] * n
        if n:
            arrival[0] = release
        starts = [0] * n
        finishes = [0] * n
        for k in range(n):
            starts[k] = max(arrival[k], self.prev_finish[k])
            occupancy = self.row[k]
            if self.service_time is not None:
                occupancy = self.service_time(k, starts[k], occupancy)
            finishes[k] = starts[k] + occupancy
            for src, dst, nbytes in self.edges:
                if src != k:
                    continue
                depart = max(
                    finishes[k], self.link_free.get((src, dst), 0)
                )
                if self.link_time is None:
                    ser = self.link.serialization_cycles(nbytes)
                    lat = self.link.transfer_cycles(nbytes)
                else:
                    ser, lat = self.link_time(src, dst, depart, nbytes)
                self.link_free[(src, dst)] = depart + ser
                arrive = depart + lat
                arrival[dst] = max(arrival[dst], arrive)
        self.prev_finish = finishes
        finish = max(finishes) if finishes else release
        effective = finish if self.crash is None else min(finish, self.crash)
        self.in_flight.append(effective)
        return (starts[0] if n else release), finish

    def queue_depth(self, now: int) -> int:
        return sum(1 for f in self.in_flight if f > now)


@dataclass
class FaultSchedule:
    """The failover engine's complete, deterministic account of one run.

    Per global request ``i``: ``assignments[i]`` is the replica that
    *completed* it (``-1`` if dropped), ``finishes[i]`` its completion
    cycle (``0`` if dropped), ``statuses[i]`` either ``"completed"`` or
    a drop reason, and ``attempt_counts[i]`` how many dispatches it
    took.  ``attempts`` is every dispatch in engine order;
    ``replica_attempts[r]`` replica ``r``'s admissions in admission
    order (the replay order).  Conservation
    (``submitted == completed + dropped``) is asserted at construction.
    """

    batch: int
    replicas: int
    assignments: List[int]
    finishes: List[int]
    statuses: List[str]
    attempt_counts: List[int]
    retries: int
    attempts: List[AttemptRecord]
    replica_attempts: List[List[AttemptRecord]]
    makespan: int

    @property
    def completed(self) -> List[int]:
        return [
            i for i, s in enumerate(self.statuses) if s == "completed"
        ]

    @property
    def dropped(self) -> List[int]:
        return [
            i for i, s in enumerate(self.statuses) if s != "completed"
        ]

    @property
    def drop_reasons(self) -> Dict[int, str]:
        return {
            i: s for i, s in enumerate(self.statuses) if s != "completed"
        }

    def check_conservation(self) -> None:
        if len(self.completed) + len(self.dropped) != self.batch:
            raise SimulationError(
                f"request conservation violated: {self.batch} submitted "
                f"!= {len(self.completed)} completed + "
                f"{len(self.dropped)} dropped"
            )


@dataclass(frozen=True)
class EngineOutcome:
    """One request's final verdict as the engine settles it.

    ``status`` is ``"completed"`` or a drop reason
    (:data:`DROP_DEADLINE` / :data:`DROP_MAX_ATTEMPTS` /
    :data:`DROP_NO_REPLICA`); dropped requests carry ``replica == -1``
    and ``finish_cycle == 0``, mirroring :class:`FaultSchedule`.
    """

    request: int
    status: str
    finish_cycle: int
    replica: int
    attempts: int

    @property
    def completed(self) -> bool:
        return self.status == "completed"


class FailoverEngine:
    """The failover engine, exposed one event at a time.

    This is the exact event loop of :func:`run_fault_schedule` (which
    is now a thin batch driver over it), restructured so the async
    serving runtime (:mod:`repro.runtime`) can feed wall-clock arrivals
    in as they happen and learn each request's fate as soon as it is
    determined.  Events are processed in ``(ready_cycle, request,
    attempt)`` order; because :meth:`push` requires non-decreasing
    release cycles (and request ids grow monotonically), every event
    whose key is at or below the latest pushed release can never be
    preceded by a future submission -- :meth:`settle_through` processes
    exactly those, so incremental driving is a pure reordering of the
    batch loop and reproduces it bit for bit.
    """

    def __init__(
        self,
        row: Sequence[int],
        edges: Sequence[TransferEdge],
        link: InterChipConfig,
        replicas: int,
        policy: str = "rr",
        plan: Optional[FaultPlan] = None,
        retry: Optional[RetryPolicy] = None,
        load_offsets: Optional[Sequence[int]] = None,
    ):
        self.plan = plan if plan is not None else FaultPlan()
        policy_retry = retry if retry is not None else self.plan.retry
        self.retry_policy = (
            policy_retry if policy_retry is not None else RetryPolicy()
        )
        self.policy = policy
        self.replicas = int(replicas)
        self._deadline = self.retry_policy.per_request_deadline_cycles
        if load_offsets is None:
            load_offsets = [0] * self.replicas
        elif len(load_offsets) != self.replicas:
            raise SimulationError(
                f"load_offsets has {len(load_offsets)} entries for "
                f"{self.replicas} replicas"
            )
        self.states = [
            _FaultyReplicaState(
                row, edges, link, self.plan, r, load_offset=load_offsets[r]
            )
            for r in range(self.replicas)
        ]
        self.releases: List[int] = []
        self.assignments: List[int] = []
        self.finishes: List[int] = []
        self.statuses: List[str] = []
        self.attempt_counts: List[int] = []
        self.attempts: List[AttemptRecord] = []
        self.replica_attempts: List[List[AttemptRecord]] = [
            [] for _ in range(self.replicas)
        ]
        self.retries = 0
        self.makespan = 0
        self._rr_cursor = 0
        self._heap: List[Tuple[int, int, int]] = []

    def push(self, release: int) -> int:
        """Submit one request released at ``release``; returns its id.

        Releases must be non-decreasing (wall clocks are monotonic);
        a regression raises :class:`~repro.errors.SimulationError`
        because it would break the settled-outcome-is-final guarantee.
        """
        release = int(release)
        if self.releases and release < self.releases[-1]:
            raise SimulationError(
                f"failover engine requires non-decreasing releases: got "
                f"{release} after {self.releases[-1]}"
            )
        request = len(self.releases)
        self.releases.append(release)
        self.assignments.append(-1)
        self.finishes.append(0)
        self.statuses.append("")
        self.attempt_counts.append(0)
        heappush(self._heap, (release, request, 1))
        return request

    def settle_through(self, cycle: int) -> List[EngineOutcome]:
        """Process every queued event with ``ready_cycle <= cycle``.

        Safe (final) whenever ``cycle`` is at most the latest pushed
        release: any future submission keys strictly after every event
        processed here.  Returns the requests whose fate was decided,
        in decision order.
        """
        outcomes: List[EngineOutcome] = []
        while self._heap and self._heap[0][0] <= cycle:
            outcome = self._step()
            if outcome is not None:
                outcomes.append(outcome)
        return outcomes

    def drain(self) -> List[EngineOutcome]:
        """Process everything still queued (no more pushes may follow)."""
        outcomes: List[EngineOutcome] = []
        while self._heap:
            outcome = self._step()
            if outcome is not None:
                outcomes.append(outcome)
        return outcomes

    def _terminal(self, request: int, status: str) -> EngineOutcome:
        self.statuses[request] = status
        return EngineOutcome(
            request=request,
            status=status,
            finish_cycle=self.finishes[request],
            replica=self.assignments[request],
            attempts=self.attempt_counts[request],
        )

    def _step(self) -> Optional[EngineOutcome]:
        """Process one ``(ready, request, attempt)`` event.

        Returns the request's :class:`EngineOutcome` when this event
        decided its fate, ``None`` when a retry was scheduled instead.
        """
        rp = self.retry_policy
        ready, request, attempt = heappop(self._heap)
        release = self.releases[request]
        if self._deadline is not None and ready > release + self._deadline:
            return self._terminal(request, DROP_DEADLINE)
        alive = [
            r for r in range(self.replicas)
            if self.states[r].alive_at(ready)
        ]
        if not alive:
            return self._terminal(request, DROP_NO_REPLICA)
        if self.policy == "jsq":
            choice = min(
                alive, key=lambda r: (self.states[r].queue_depth(ready), r)
            )
        else:
            choice = alive[self._rr_cursor % len(alive)]
            self._rr_cursor += 1
        state = self.states[choice]
        self.attempt_counts[request] = attempt
        dispatch = max(ready, state.load_offset)
        start, finish = state.admit(dispatch)

        if state.crash is not None and finish > state.crash:
            record = AttemptRecord(
                request, attempt, choice, dispatch, state.crash, "crashed",
                start_cycle=start,
            )
            self.attempts.append(record)
            self.replica_attempts[choice].append(record)
            self.makespan = max(self.makespan, state.crash)
            if attempt < rp.max_attempts:
                self.retries += 1
                heappush(
                    self._heap,
                    (state.crash + rp.backoff_cycles, request, attempt + 1),
                )
                return None
            return self._terminal(request, DROP_MAX_ATTEMPTS)

        self.makespan = max(self.makespan, finish)
        if self.plan.attempt_fails(request, attempt):
            record = AttemptRecord(
                request, attempt, choice, dispatch, finish, "transient",
                start_cycle=start,
            )
            self.attempts.append(record)
            self.replica_attempts[choice].append(record)
            if attempt < rp.max_attempts:
                self.retries += 1
                heappush(
                    self._heap,
                    (finish + rp.backoff_cycles, request, attempt + 1),
                )
                return None
            return self._terminal(request, DROP_MAX_ATTEMPTS)

        if self._deadline is not None and finish > release + self._deadline:
            record = AttemptRecord(
                request, attempt, choice, dispatch, finish, "late",
                start_cycle=start,
            )
            self.attempts.append(record)
            self.replica_attempts[choice].append(record)
            return self._terminal(request, DROP_DEADLINE)

        record = AttemptRecord(
            request, attempt, choice, dispatch, finish, "completed",
            start_cycle=start,
        )
        self.attempts.append(record)
        self.replica_attempts[choice].append(record)
        self.assignments[request] = choice
        self.finishes[request] = finish
        return self._terminal(request, "completed")

    def finish(self) -> FaultSchedule:
        """Drain the queue and return the complete account of the run."""
        self.drain()
        schedule = FaultSchedule(
            batch=len(self.releases),
            replicas=self.replicas,
            assignments=list(self.assignments),
            finishes=list(self.finishes),
            statuses=list(self.statuses),
            attempt_counts=list(self.attempt_counts),
            retries=self.retries,
            attempts=list(self.attempts),
            replica_attempts=[list(rs) for rs in self.replica_attempts],
            makespan=self.makespan,
        )
        schedule.check_conservation()
        return schedule


def run_fault_schedule(
    releases: Sequence[int],
    row: Sequence[int],
    edges: Sequence[TransferEdge],
    link: InterChipConfig,
    replicas: int,
    policy: str = "rr",
    plan: Optional[FaultPlan] = None,
    retry: Optional[RetryPolicy] = None,
    load_offsets: Optional[Sequence[int]] = None,
) -> FaultSchedule:
    """Run the health-aware dispatch + retry engine over one stream.

    ``row`` is the per-shard service profile of one input (timing is
    data-independent under per-input isolation), ``edges`` the per-input
    transfer schedule; both fidelity tiers feed the same values, which
    is what makes the availability law tier-equivalent.  Dispatch:
    ``"rr"`` rotates over the replicas *alive at dispatch time*
    (degenerating to ``i % R`` while all survive), ``"jsq"`` joins the
    live replica with the fewest predicted in-flight attempts.  Events
    are processed in ``(ready_cycle, request, attempt)`` order, so the
    outcome is a pure function of the inputs.

    ``load_offsets[r]`` (resident-weights sessions) delays replica
    ``r``'s first service entry to its weight-load completion cycle:
    dispatches onto it are clamped to the offset, and the clamped cycle
    is what :class:`AttemptRecord.dispatch_cycle` records -- so
    replaying the records through the plain streaming recurrence still
    reproduces the engine's finishes exactly.  ``None`` (or all zeros)
    is the identity and keeps the schedule bit-identical to the
    non-resident engine.

    This is the batch driver over :class:`FailoverEngine`; the async
    runtime drives the same engine incrementally, which is why a
    drained-then-replayed live session reproduces this function's
    schedule exactly.
    """
    engine = FailoverEngine(
        row, edges, link, replicas, policy=policy, plan=plan, retry=retry,
        load_offsets=load_offsets,
    )
    for release in releases:
        engine.push(release)
    return engine.finish()
