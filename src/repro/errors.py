"""Exception hierarchy for the CIMFlow reproduction.

Every error raised by this package derives from :class:`ReproError`, so
callers can catch framework failures without masking programming errors.
"""


class ReproError(Exception):
    """Base class for all framework errors."""


class ConfigError(ReproError):
    """An architecture or energy configuration is invalid."""


class ISAError(ReproError):
    """An instruction is malformed, unknown, or cannot be encoded/decoded."""


class GraphError(ReproError):
    """A computation graph is malformed (bad shapes, cycles, unknown ops)."""


class CompileError(ReproError):
    """The compiler could not lower the workload to the target."""


class CapacityError(CompileError):
    """A workload (or partition stage) does not fit the CIM capacity."""


class MappingError(CompileError):
    """No legal core mapping exists for a partition stage."""


class ArtifactError(ReproError):
    """A compiled artifact is corrupt, incompatible, or mismatched."""


class FaultError(ReproError):
    """A fault plan or retry policy is malformed or cannot be loaded."""


class SimulationError(ReproError):
    """The simulator reached an inconsistent state."""


class ValidationError(ReproError):
    """Functional validation failed (simulated output != golden output)."""
