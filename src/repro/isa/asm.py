"""Two-way textual assembly for the CIMFlow ISA.

The textual syntax is the one the paper's Fig. 2/4 sketches use::

    CIM_MVM   R7, R10, R9
    SC_ADDI   R7, R2, 1
    JMP       -26
    loop_body:
    BNE       R1, R2, loop_body

Register operands are written ``R<n>``; immediates/offsets are decimal
integers; branch targets may be labels.  ``format_instruction`` and
``parse_program`` round-trip.
"""

import re
from typing import List, Optional

from repro.errors import ISAError
from repro.isa.extension import ISARegistry, default_registry
from repro.isa.formats import REGISTER_FIELDS
from repro.isa.instruction import Instruction
from repro.isa.program import Program

_LABEL_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")
_REG_RE = re.compile(r"^[Rr](\d+)$")


def format_operand(name: str, value: int) -> str:
    """Render one operand field as assembly text."""
    if name in REGISTER_FIELDS:
        return f"R{value}"
    return str(value)


def format_instruction(
    instr: Instruction, registry: Optional[ISARegistry] = None
) -> str:
    """Render one instruction as a line of assembly."""
    registry = registry or default_registry()
    desc = registry.lookup(instr.mnemonic)
    parts = []
    for name in desc.operands:
        if name == "offset" and instr.target is not None:
            parts.append(instr.target)
        else:
            parts.append(format_operand(name, instr.get(name)))
    if not parts:
        return instr.mnemonic
    return f"{instr.mnemonic} {', '.join(parts)}"


def format_program(
    program: Program, with_labels: bool = True, with_pc: bool = False
) -> str:
    """Render a full program, optionally interleaving its labels."""
    position_labels = {}
    if with_labels:
        for name, pos in program.labels.items():
            position_labels.setdefault(pos, []).append(name)
    lines: List[str] = []
    for pc, instr in enumerate(program.instructions):
        for name in sorted(position_labels.get(pc, [])):
            lines.append(f"{name}:")
        prefix = f"{pc:6d}:  " if with_pc else "    "
        lines.append(prefix + format_instruction(instr, program.registry))
    for name in sorted(position_labels.get(len(program.instructions), [])):
        lines.append(f"{name}:")
    return "\n".join(lines)


def _parse_operand(name: str, token: str) -> object:
    """Parse one operand token into (value or label) for field ``name``."""
    token = token.strip()
    if name in REGISTER_FIELDS:
        match = _REG_RE.match(token)
        if not match:
            raise ISAError(f"expected a register for {name}, got {token!r}")
        return int(match.group(1))
    try:
        return int(token, 0)
    except ValueError:
        if name == "offset" and _LABEL_RE.match(token):
            return token  # symbolic branch target
        raise ISAError(f"bad operand {token!r} for field {name}") from None


def parse_line(
    line: str, registry: Optional[ISARegistry] = None
) -> Optional[Instruction]:
    """Parse one assembly line; returns ``None`` for blanks and comments.

    Label-definition lines (``name:``) are handled by
    :func:`parse_program`, not here.
    """
    registry = registry or default_registry()
    code = line.split("//", 1)[0].split("#", 1)[0].strip()
    if not code:
        return None
    if code.endswith(":"):
        raise ISAError(f"label line {line!r} must go through parse_program")
    parts = code.split(None, 1)
    mnemonic = parts[0]
    desc = registry.lookup(mnemonic)
    tokens = [t for t in parts[1].split(",")] if len(parts) > 1 else []
    if len(tokens) != len(desc.operands):
        raise ISAError(
            f"{mnemonic} expects {len(desc.operands)} operands "
            f"{desc.operands}, got {len(tokens)}"
        )
    fields = {}
    target = None
    for name, token in zip(desc.operands, tokens):
        value = _parse_operand(name, token)
        if isinstance(value, str):
            target = value
        else:
            fields[name] = value
    return Instruction(mnemonic, fields, target)


def parse_program(
    text: str, registry: Optional[ISARegistry] = None
) -> Program:
    """Assemble a multi-line program (labels, comments, blank lines ok)."""
    registry = registry or default_registry()
    program = Program(registry)
    for lineno, raw in enumerate(text.splitlines(), start=1):
        code = raw.split("//", 1)[0].split("#", 1)[0].strip()
        if not code:
            continue
        try:
            if code.endswith(":"):
                name = code[:-1].strip()
                if not _LABEL_RE.match(name):
                    raise ISAError(f"invalid label name {name!r}")
                program.label(name)
            else:
                instr = parse_line(code, registry)
                if instr is not None:
                    program.append(instr)
        except ISAError as exc:
            raise ISAError(f"line {lineno}: {exc}") from exc
    return program
