"""High-level program construction helpers used by the code generator.

:class:`ProgramBuilder` wraps a :class:`~repro.isa.program.Program` with the
idioms code generation needs constantly: loading arbitrary 32-bit
immediates (``li`` expands into ``SC_LUI``/``SC_ORI`` pairs when needed,
mirroring how the paper's ISA handles its large ``G_LI`` constants),
counted loops, and special-register setup.
"""

from contextlib import contextmanager
from typing import Iterator, Optional

from repro.errors import ISAError
from repro.isa.extension import ISARegistry
from repro.isa.program import Program
from repro.isa.registers import SReg, ZERO_REG


class ProgramBuilder:
    """Convenience wrapper emitting common instruction sequences."""

    def __init__(self, registry: Optional[ISARegistry] = None):
        self.program = Program(registry)

    def emit(self, mnemonic: str, **fields):
        """Append a raw instruction."""
        return self.program.emit(mnemonic, **fields)

    def li(self, reg: int, value: int) -> None:
        """Load a 32-bit constant into ``reg``.

        Uses a single ``SC_ADDI`` from R0 when the value fits the signed
        10-bit immediate, otherwise an ``SC_LUI`` + ``SC_ORI`` pair (the
        standard expansion of the ``G_LI`` pseudo-instruction).
        """
        if reg == ZERO_REG:
            raise ISAError("cannot load an immediate into R0")
        if not 0 <= value < (1 << 32):
            if -(1 << 31) <= value < 0:
                value &= (1 << 32) - 1
            else:
                raise ISAError(f"immediate {value} out of 32-bit range")
        if value < (1 << 9):  # fits signed 10-bit as non-negative
            self.emit("SC_ADDI", rs=ZERO_REG, rt=reg, imm=value)
            return
        upper = value >> 16
        lower = value & 0xFFFF
        self.emit("SC_LUI", rt=reg, offset=upper)
        if lower:
            self.emit("SC_ORI", rs=reg, rt=reg, offset=lower)

    def set_sreg(self, sreg: SReg, scratch_reg: int, value: int) -> None:
        """Set special register ``sreg`` to ``value`` via ``scratch_reg``."""
        self.li(scratch_reg, value)
        self.emit("MV_G2S", rs=scratch_reg, imm=int(sreg))

    @contextmanager
    def loop(self, counter_reg: int, bound_reg: int, step: int = 1) -> Iterator[None]:
        """Counted loop: ``for counter in range(0, bound, step)``.

        ``counter_reg`` must be initialised to 0 by the caller (or reused
        deliberately); ``bound_reg`` holds the trip bound.  The loop body
        is whatever the ``with`` block emits.
        """
        head = self.program.new_label("loop")
        self.program.place_label(head)
        yield
        self.emit("SC_ADDI", rs=counter_reg, rt=counter_reg, imm=step)
        self.emit("BLT", rs=counter_reg, rt=bound_reg, target=head)

    def halt(self) -> None:
        self.emit("HALT")

    def finalize(self) -> Program:
        """Resolve labels and return the finished program."""
        return self.program.finalize()
