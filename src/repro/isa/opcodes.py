"""Opcode space of the CIMFlow ISA (Fig. 3, "Instruction Design").

Instructions are 32 bits with a 6-bit opcode and are categorised into
compute (CIM / vector / scalar), communication, and control-flow classes.
The concrete numeric assignments below are our own (the paper does not
publish an opcode map); they are stable, contiguous per category, and leave
headroom for user extensions registered at runtime (Sec. III-B,
"instruction description template").
"""

import enum


class Category(enum.Enum):
    """Top-level instruction classes from the paper."""

    CIM = "cim"
    VECTOR = "vector"
    SCALAR = "scalar"
    COMMUNICATION = "communication"
    CONTROL = "control"


class Opcode(enum.IntEnum):
    """Built-in opcode assignments (6-bit space, 0..63).

    0x00-0x07  CIM compute
    0x08-0x17  vector compute
    0x18-0x27  scalar compute
    0x28-0x2F  communication / memory
    0x30-0x3B  control flow
    0x3C-0x3F  reserved for runtime extensions
    """

    # --- CIM compute unit -------------------------------------------------
    CIM_MVM = 0x00    # matrix-vector multiply on one macro group
    CIM_LOAD = 0x01   # load a weight tile into a macro group
    CIM_CFG = 0x02    # configure macro-group tile metadata from S_Regs

    # --- Vector compute unit ---------------------------------------------
    VEC_ADD = 0x08    # int8 elementwise add (saturating)
    VEC_SUB = 0x09
    VEC_MUL = 0x0A
    VEC_MAX = 0x0B
    VEC_MIN = 0x0C
    VEC_RELU = 0x0D
    VEC_RELU6 = 0x0E
    VEC_SILU = 0x0F   # x * sigmoid(x), LUT semantics
    VEC_SIGMOID = 0x10
    VEC_COPY = 0x11
    VEC_ADD32 = 0x12  # int32 elementwise add (bias / partial-sum merge)
    VEC_QNT = 0x13    # int32 -> int8 requantize via S_QMUL / S_QSHIFT
    VEC_ACC32 = 0x14  # int32 dst += widened int8 src (pool accumulation)
    VEC_FILL = 0x15   # broadcast a scalar register value
    VEC_CMUL = 0x16   # per-channel scale multiply (squeeze-excite)

    # --- Scalar compute unit ----------------------------------------------
    SC_ADD = 0x18
    SC_SUB = 0x19
    SC_MUL = 0x1A
    SC_SLT = 0x1B     # set-if-less-than
    SC_AND = 0x1C
    SC_OR = 0x1D
    SC_XOR = 0x1E
    SC_SLL = 0x1F     # shift left logical
    SC_SRL = 0x20     # shift right logical
    SC_ADDI = 0x21    # add 10-bit signed immediate
    SC_MULI = 0x22
    SC_SLTI = 0x23
    SC_LUI = 0x24     # load upper immediate (imm << 16) -- uses control fmt
    SC_ORI = 0x25     # or with zero-extended immediate
    MV_G2S = 0x26     # move general register -> special register
    MV_S2G = 0x27     # move special register -> general register

    # --- Communication / memory -------------------------------------------
    MEM_CPY = 0x28    # copy rd bytes from [rs] to [rt] in unified space
    MEM_LD = 0x29     # load a 32-bit word  [rs + offset] -> rt
    MEM_ST = 0x2A     # store a 32-bit word rt -> [rs + offset]
    SEND = 0x2B       # send rd bytes at [rs] to core (rt) over the NoC
    RECV = 0x2C       # receive rd bytes into [rs] from core (rt)
    SYNC = 0x2D       # point-to-point ready/ack with core (rt)
    MEM_GATHER = 0x2E # strided DMA gather: strided [rs] -> contiguous [rt]
    MEM_SCATTER = 0x2F# strided DMA scatter: contiguous [rs] -> strided [rt]

    # --- Control flow -------------------------------------------------------
    JMP = 0x30        # unconditional relative jump
    BEQ = 0x31
    BNE = 0x32
    BLT = 0x33
    BGE = 0x34
    BARRIER = 0x35    # chip-wide barrier
    NOP = 0x36
    HALT = 0x37
    SC_ADDIW = 0x38   # scalar add with wide 16-bit immediate (CTL format)

    # --- Reserved extension space ------------------------------------------
    EXT0 = 0x3C
    EXT1 = 0x3D
    EXT2 = 0x3E
    EXT3 = 0x3F


#: Opcodes reserved for user-registered extension instructions.
EXTENSION_OPCODES = (Opcode.EXT0, Opcode.EXT1, Opcode.EXT2, Opcode.EXT3)

OPCODE_BITS = 6
