"""The CIMFlow instruction set architecture (Sec. III-B)."""

from repro.isa.asm import format_instruction, format_program, parse_line, parse_program
from repro.isa.builder import ProgramBuilder
from repro.isa.encoding import decode, encode
from repro.isa.extension import ISARegistry, default_registry
from repro.isa.formats import FIELD_LAYOUT, Format
from repro.isa.instruction import Instruction, InstructionDescriptor
from repro.isa.opcodes import Category, Opcode
from repro.isa.program import Program
from repro.isa.registers import (
    NUM_GENERAL_REGS,
    NUM_SPECIAL_REGS,
    SReg,
    ZERO_REG,
    reg_name,
    sreg_name,
)

__all__ = [
    "Category",
    "Opcode",
    "Format",
    "FIELD_LAYOUT",
    "Instruction",
    "InstructionDescriptor",
    "ISARegistry",
    "default_registry",
    "encode",
    "decode",
    "Program",
    "ProgramBuilder",
    "parse_line",
    "parse_program",
    "format_instruction",
    "format_program",
    "SReg",
    "ZERO_REG",
    "NUM_GENERAL_REGS",
    "NUM_SPECIAL_REGS",
    "reg_name",
    "sreg_name",
]
