"""The ISA registry: built-in instruction table plus runtime extensions.

The paper's ISA "is designed for extensibility through incorporating a
customized instruction description template, which enables seamless
integration of new operations into the framework when provided with their
associated performance parameters."  :class:`ISARegistry` implements that:
a new :class:`InstructionDescriptor` with a latency (and optionally an
energy figure) can be registered at runtime, after which the assembler,
encoder, and simulator all accept the new operation.
"""

from typing import Dict, Iterable, List, Optional

from repro.errors import ISAError
from repro.isa.formats import Format
from repro.isa.instruction import InstructionDescriptor
from repro.isa.opcodes import EXTENSION_OPCODES, Category, Opcode

_D = InstructionDescriptor
_C = Category
_F = Format

#: The built-in instruction table (mnemonic, opcode, category, format,
#: operands, one-line documentation).
_BUILTINS: List[InstructionDescriptor] = [
    # CIM compute -----------------------------------------------------------
    _D("CIM_MVM", Opcode.CIM_MVM, _C.CIM, _F.CIM, ("rs", "rt", "re", "flags"),
       "MVM on macro group [rt]: input vector at [rs] -> int32 outputs at "
       "[re]; flags bit0 = accumulate into existing outputs"),
    _D("CIM_LOAD", Opcode.CIM_LOAD, _C.CIM, _F.CIM, ("rs", "rt"),
       "Load a weight tile from memory [rs] into macro group [rt]; tile "
       "shape is taken from S_MVM_ROWS x S_MVM_COLS"),
    _D("CIM_CFG", Opcode.CIM_CFG, _C.CIM, _F.CIM, ("rt",),
       "Reconfigure macro group [rt] tile metadata from S_MVM_ROWS/COLS"),
    # Vector compute ---------------------------------------------------------
    _D("VEC_ADD", Opcode.VEC_ADD, _C.VECTOR, _F.VEC, ("rs", "rt", "rd", "re"),
       "int8 [rd][i] = sat(int8 [rs][i] + int8 [rt][i]) for re elements"),
    _D("VEC_SUB", Opcode.VEC_SUB, _C.VECTOR, _F.VEC, ("rs", "rt", "rd", "re"),
       "int8 saturating elementwise subtract"),
    _D("VEC_MUL", Opcode.VEC_MUL, _C.VECTOR, _F.VEC, ("rs", "rt", "rd", "re"),
       "int8 saturating elementwise multiply"),
    _D("VEC_MAX", Opcode.VEC_MAX, _C.VECTOR, _F.VEC, ("rs", "rt", "rd", "re"),
       "int8 elementwise maximum"),
    _D("VEC_MIN", Opcode.VEC_MIN, _C.VECTOR, _F.VEC, ("rs", "rt", "rd", "re"),
       "int8 elementwise minimum"),
    _D("VEC_RELU", Opcode.VEC_RELU, _C.VECTOR, _F.VEC, ("rs", "rd", "re"),
       "int8 [rd][i] = max(0, [rs][i])"),
    _D("VEC_RELU6", Opcode.VEC_RELU6, _C.VECTOR, _F.VEC, ("rs", "rd", "re"),
       "quantized ReLU6 clamp"),
    _D("VEC_SILU", Opcode.VEC_SILU, _C.VECTOR, _F.VEC, ("rs", "rd", "re"),
       "quantized SiLU (x * sigmoid(x)) via lookup table"),
    _D("VEC_SIGMOID", Opcode.VEC_SIGMOID, _C.VECTOR, _F.VEC, ("rs", "rd", "re"),
       "quantized sigmoid via lookup table"),
    _D("VEC_COPY", Opcode.VEC_COPY, _C.VECTOR, _F.VEC, ("rs", "rd", "re"),
       "copy re int8 elements"),
    _D("VEC_ADD32", Opcode.VEC_ADD32, _C.VECTOR, _F.VEC, ("rs", "rt", "rd", "re"),
       "int32 [rd][i] = [rs][i] + [rt][i] (bias / partial-sum merge)"),
    _D("VEC_QNT", Opcode.VEC_QNT, _C.VECTOR, _F.VEC, ("rs", "rd", "re"),
       "requantize re int32 accumulators to int8: "
       "clip(([rs][i] * S_QMUL) >> S_QSHIFT)"),
    _D("VEC_ACC32", Opcode.VEC_ACC32, _C.VECTOR, _F.VEC, ("rs", "rd", "re"),
       "int32 [rd][i] += widened int8 [rs][i] (pooling accumulation)"),
    _D("VEC_FILL", Opcode.VEC_FILL, _C.VECTOR, _F.VEC, ("rd", "re", "funct"),
       "fill re elements at [rd] with S_FILL_VALUE; funct=4 fills int32"),
    _D("VEC_CMUL", Opcode.VEC_CMUL, _C.VECTOR, _F.VEC, ("rs", "rt", "rd", "re"),
       "per-channel scale: int8 [rd][i] = ([rs][i] * [rt][i % C]) >> 7 "
       "with C = S_CHANNEL_LEN (squeeze-excite broadcast multiply)"),
    # Scalar compute ----------------------------------------------------------
    _D("SC_ADD", Opcode.SC_ADD, _C.SCALAR, _F.VEC, ("rs", "rt", "rd"),
       "rd = rs + rt"),
    _D("SC_SUB", Opcode.SC_SUB, _C.SCALAR, _F.VEC, ("rs", "rt", "rd"),
       "rd = rs - rt"),
    _D("SC_MUL", Opcode.SC_MUL, _C.SCALAR, _F.VEC, ("rs", "rt", "rd"),
       "rd = rs * rt"),
    _D("SC_SLT", Opcode.SC_SLT, _C.SCALAR, _F.VEC, ("rs", "rt", "rd"),
       "rd = 1 if rs < rt else 0"),
    _D("SC_AND", Opcode.SC_AND, _C.SCALAR, _F.VEC, ("rs", "rt", "rd"),
       "rd = rs & rt"),
    _D("SC_OR", Opcode.SC_OR, _C.SCALAR, _F.VEC, ("rs", "rt", "rd"),
       "rd = rs | rt"),
    _D("SC_XOR", Opcode.SC_XOR, _C.SCALAR, _F.VEC, ("rs", "rt", "rd"),
       "rd = rs ^ rt"),
    _D("SC_SLL", Opcode.SC_SLL, _C.SCALAR, _F.VEC, ("rs", "rt", "rd"),
       "rd = rs << rt"),
    _D("SC_SRL", Opcode.SC_SRL, _C.SCALAR, _F.VEC, ("rs", "rt", "rd"),
       "rd = rs >> rt (logical)"),
    _D("SC_ADDI", Opcode.SC_ADDI, _C.SCALAR, _F.SCALAR_I, ("rs", "rt", "imm"),
       "rt = rs + signed 10-bit immediate"),
    _D("SC_MULI", Opcode.SC_MULI, _C.SCALAR, _F.SCALAR_I, ("rs", "rt", "imm"),
       "rt = rs * signed 10-bit immediate"),
    _D("SC_SLTI", Opcode.SC_SLTI, _C.SCALAR, _F.SCALAR_I, ("rs", "rt", "imm"),
       "rt = 1 if rs < imm else 0"),
    _D("SC_LUI", Opcode.SC_LUI, _C.SCALAR, _F.CTL, ("rt", "offset"),
       "rt = offset << 16 (load upper immediate, zero-extending)",
       unsigned_fields=("offset",)),
    _D("SC_ORI", Opcode.SC_ORI, _C.SCALAR, _F.CTL, ("rs", "rt", "offset"),
       "rt = rs | zero-extended 16-bit immediate",
       unsigned_fields=("offset",)),
    _D("MV_G2S", Opcode.MV_G2S, _C.SCALAR, _F.SCALAR_I, ("rs", "imm"),
       "special register [imm] = general register rs"),
    _D("MV_S2G", Opcode.MV_S2G, _C.SCALAR, _F.SCALAR_I, ("rt", "imm"),
       "general register rt = special register [imm]"),
    # Communication / memory ---------------------------------------------------
    _D("MEM_CPY", Opcode.MEM_CPY, _C.COMMUNICATION, _F.MEM,
       ("rs", "rt", "rd", "offset"),
       "copy (rd) bytes from [rs] to [rt + offset] in the unified space"),
    _D("MEM_LD", Opcode.MEM_LD, _C.COMMUNICATION, _F.MEM, ("rs", "rt", "offset"),
       "rt = 32-bit word at [rs + offset]"),
    _D("MEM_ST", Opcode.MEM_ST, _C.COMMUNICATION, _F.MEM, ("rs", "rt", "offset"),
       "store 32-bit word rt at [rs + offset]"),
    _D("SEND", Opcode.SEND, _C.COMMUNICATION, _F.MEM, ("rs", "rt", "rd", "offset"),
       "send (rd) bytes at local [rs] to core (rt), arriving at the "
       "receiver's address given by its matching RECV"),
    _D("RECV", Opcode.RECV, _C.COMMUNICATION, _F.MEM, ("rs", "rt", "rd"),
       "receive (rd) bytes from core (rt) into local [rs] (blocking)"),
    _D("SYNC", Opcode.SYNC, _C.COMMUNICATION, _F.MEM, ("rt",),
       "handshake with core (rt)"),
    _D("MEM_GATHER", Opcode.MEM_GATHER, _C.COMMUNICATION, _F.MEM,
       ("rs", "rt", "rd"),
       "DMA gather: copy (rd) chunks of S_CHUNK bytes from [rs] stepping "
       "S_STRIDE bytes per chunk, packed contiguously at [rt]"),
    _D("MEM_SCATTER", Opcode.MEM_SCATTER, _C.COMMUNICATION, _F.MEM,
       ("rs", "rt", "rd"),
       "DMA scatter: copy (rd) contiguous S_CHUNK-byte chunks from [rs] to "
       "[rt] stepping S_STRIDE bytes per chunk"),
    # Control flow -----------------------------------------------------------
    _D("JMP", Opcode.JMP, _C.CONTROL, _F.CTL, ("offset",),
       "pc += offset (relative, in instructions)"),
    _D("BEQ", Opcode.BEQ, _C.CONTROL, _F.CTL, ("rs", "rt", "offset"),
       "if rs == rt: pc += offset"),
    _D("BNE", Opcode.BNE, _C.CONTROL, _F.CTL, ("rs", "rt", "offset"),
       "if rs != rt: pc += offset"),
    _D("BLT", Opcode.BLT, _C.CONTROL, _F.CTL, ("rs", "rt", "offset"),
       "if rs < rt: pc += offset"),
    _D("BGE", Opcode.BGE, _C.CONTROL, _F.CTL, ("rs", "rt", "offset"),
       "if rs >= rt: pc += offset"),
    _D("BARRIER", Opcode.BARRIER, _C.CONTROL, _F.CTL, (),
       "wait until every core reaches its barrier"),
    _D("NOP", Opcode.NOP, _C.CONTROL, _F.CTL, (), "no operation"),
    _D("HALT", Opcode.HALT, _C.CONTROL, _F.CTL, (), "stop this core"),
    _D("SC_ADDIW", Opcode.SC_ADDIW, _C.SCALAR, _F.CTL, ("rs", "rt", "offset"),
       "rt = rs + signed 16-bit immediate (address arithmetic)"),
]


class ISARegistry:
    """Lookup table from mnemonics and opcodes to descriptors.

    A registry starts from the built-in table; extension instructions can
    be added with :meth:`register`.  Separate registries are independent,
    so tests and users can extend the ISA without global state.
    """

    def __init__(self, descriptors: Optional[Iterable[InstructionDescriptor]] = None):
        self._by_mnemonic: Dict[str, InstructionDescriptor] = {}
        self._by_opcode: Dict[int, InstructionDescriptor] = {}
        for desc in descriptors if descriptors is not None else _BUILTINS:
            self._add(desc)

    def _add(self, desc: InstructionDescriptor) -> None:
        if desc.mnemonic in self._by_mnemonic:
            raise ISAError(f"duplicate mnemonic {desc.mnemonic}")
        if desc.opcode in self._by_opcode:
            other = self._by_opcode[desc.opcode]
            raise ISAError(
                f"opcode {desc.opcode:#x} already used by {other.mnemonic}"
            )
        self._by_mnemonic[desc.mnemonic] = desc
        self._by_opcode[int(desc.opcode)] = desc

    def register(self, desc: InstructionDescriptor) -> InstructionDescriptor:
        """Register an extension instruction.

        Extensions must provide a ``latency`` (their performance parameter,
        per the paper's extension template); an ``energy_pj`` defaults to 0.
        """
        if desc.latency is None:
            raise ISAError(
                f"extension instruction {desc.mnemonic} must declare a latency"
            )
        self._add(desc)
        return desc

    def lookup(self, mnemonic: str) -> InstructionDescriptor:
        """Descriptor for ``mnemonic``; raises :class:`ISAError` if unknown."""
        try:
            return self._by_mnemonic[mnemonic]
        except KeyError:
            raise ISAError(f"unknown instruction mnemonic {mnemonic!r}") from None

    def lookup_opcode(self, opcode: int) -> InstructionDescriptor:
        """Descriptor for an opcode value; raises if unassigned."""
        try:
            return self._by_opcode[opcode]
        except KeyError:
            raise ISAError(f"unassigned opcode {opcode:#x}") from None

    def __contains__(self, mnemonic: str) -> bool:
        return mnemonic in self._by_mnemonic

    def mnemonics(self) -> List[str]:
        """All registered mnemonics, sorted."""
        return sorted(self._by_mnemonic)

    def free_extension_opcodes(self) -> List[int]:
        """Extension opcodes not yet taken."""
        return [int(op) for op in EXTENSION_OPCODES if int(op) not in self._by_opcode]


_DEFAULT_REGISTRY = ISARegistry()


def default_registry() -> ISARegistry:
    """The shared registry with only the built-in instruction set."""
    return _DEFAULT_REGISTRY
