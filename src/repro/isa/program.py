"""Per-core instruction programs with label resolution.

A :class:`Program` is the unit the compiler emits for each core and the
simulator loads into a core's instruction memory.  Branch targets may be
symbolic labels while a program is being built; :meth:`Program.finalize`
resolves them into relative instruction offsets (``pc += offset``
semantics, matching the paper's generated-code example ``JMP -26``).
"""

from typing import Dict, Iterator, List, Optional

from repro.errors import ISAError
from repro.isa.encoding import encode
from repro.isa.extension import ISARegistry, default_registry
from repro.isa.formats import Format, field_width
from repro.isa.instruction import Instruction


class Program:
    """An ordered list of instructions plus a label table."""

    def __init__(self, registry: Optional[ISARegistry] = None):
        self.registry = registry or default_registry()
        self.instructions: List[Instruction] = []
        self.labels: Dict[str, int] = {}
        self._finalized = False

    def __len__(self) -> int:
        return len(self.instructions)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def __getitem__(self, index: int) -> Instruction:
        return self.instructions[index]

    def emit(self, mnemonic: str, **fields) -> Instruction:
        """Append an instruction; ``target=`` may name a label."""
        target = fields.pop("target", None)
        self.registry.lookup(mnemonic)  # validate early
        instr = Instruction(mnemonic, fields, target)
        self.instructions.append(instr)
        self._finalized = False
        return instr

    def append(self, instr: Instruction) -> Instruction:
        """Append an already-constructed instruction."""
        self.registry.lookup(instr.mnemonic)
        self.instructions.append(instr)
        self._finalized = False
        return instr

    def label(self, name: str) -> str:
        """Define ``name`` at the current position (the next instruction)."""
        if name in self.labels:
            raise ISAError(f"duplicate label {name!r}")
        self.labels[name] = len(self.instructions)
        return name

    def new_label(self, stem: str = "L") -> str:
        """Generate a fresh, not-yet-placed label name."""
        index = len(self.labels)
        while f"{stem}{index}" in self.labels:
            index += 1
        return f"{stem}{index}"

    def place_label(self, name: str) -> None:
        """Place a label generated earlier with :meth:`new_label`."""
        if name in self.labels:
            raise ISAError(f"label {name!r} already placed")
        self.labels[name] = len(self.instructions)

    def finalize(self) -> "Program":
        """Resolve symbolic branch targets into relative offsets.

        Branch semantics are ``pc += offset`` when taken, so the offset for
        an instruction at ``pc`` targeting label position ``L`` is
        ``L - pc``.  Raises :class:`ISAError` for unknown labels or offsets
        that do not fit the 16-bit field.
        """
        limit = 1 << (field_width(Format.CTL, "offset") - 1)
        for pc, instr in enumerate(self.instructions):
            if instr.target is None:
                continue
            if instr.target not in self.labels:
                raise ISAError(f"undefined label {instr.target!r}")
            offset = self.labels[instr.target] - pc
            if not -limit <= offset < limit:
                raise ISAError(
                    f"branch at {pc} to {instr.target!r}: offset {offset} "
                    f"exceeds the 16-bit field"
                )
            instr.fields["offset"] = offset
            instr.target = None
        self._finalized = True
        return self

    @property
    def finalized(self) -> bool:
        return self._finalized

    def encode_all(self) -> List[int]:
        """Encode the whole program into 32-bit words."""
        if any(instr.target is not None for instr in self.instructions):
            self.finalize()
        return [encode(instr, self.registry) for instr in self.instructions]

    def size_bytes(self) -> int:
        """Program footprint in instruction memory."""
        return 4 * len(self.instructions)
