"""Per-core instruction programs with label resolution.

A :class:`Program` is the unit the compiler emits for each core and the
simulator loads into a core's instruction memory.  Branch targets may be
symbolic labels while a program is being built; :meth:`Program.finalize`
resolves them into relative instruction offsets (``pc += offset``
semantics, matching the paper's generated-code example ``JMP -26``).
"""

import hashlib
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional

from repro.errors import ISAError
from repro.isa.encoding import encode
from repro.isa.extension import ISARegistry, default_registry
from repro.isa.formats import Format, field_width
from repro.isa.instruction import Instruction

#: Mnemonics that transfer control (loop-block discovery must not cross
#: these, except for the backward conditional branch that closes a block).
BRANCH_MNEMONICS = frozenset({"BEQ", "BNE", "BLT", "BGE"})
CONTROL_MNEMONICS = BRANCH_MNEMONICS | {"JMP", "HALT", "BARRIER"}


@dataclass(frozen=True)
class LoopBlock:
    """A straight-line loop body discovered in a finalized program.

    ``head`` is the target of the backward conditional branch at
    ``branch``; instructions ``[head, branch]`` form the block, with no
    other control transfer inside.  ``span`` is the static instruction
    count of one iteration.
    """

    head: int
    branch: int

    @property
    def span(self) -> int:
        return self.branch - self.head + 1


class Program:
    """An ordered list of instructions plus a label table."""

    def __init__(self, registry: Optional[ISARegistry] = None):
        self.registry = registry or default_registry()
        self.instructions: List[Instruction] = []
        self.labels: Dict[str, int] = {}
        self._finalized = False
        self._loop_blocks: Optional[List[LoopBlock]] = None
        self._words: Optional[List[int]] = None
        self._digest: Optional[str] = None

    def __len__(self) -> int:
        return len(self.instructions)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def __getitem__(self, index: int) -> Instruction:
        return self.instructions[index]

    def emit(self, mnemonic: str, **fields) -> Instruction:
        """Append an instruction; ``target=`` may name a label."""
        target = fields.pop("target", None)
        self.registry.lookup(mnemonic)  # validate early
        instr = Instruction(mnemonic, fields, target)
        self.instructions.append(instr)
        self._invalidate()
        return instr

    def append(self, instr: Instruction) -> Instruction:
        """Append an already-constructed instruction."""
        self.registry.lookup(instr.mnemonic)
        self.instructions.append(instr)
        self._invalidate()
        return instr

    def _invalidate(self) -> None:
        self._finalized = False
        self._loop_blocks = None
        self._words = None
        self._digest = None

    def label(self, name: str) -> str:
        """Define ``name`` at the current position (the next instruction)."""
        if name in self.labels:
            raise ISAError(f"duplicate label {name!r}")
        self.labels[name] = len(self.instructions)
        return name

    def new_label(self, stem: str = "L") -> str:
        """Generate a fresh, not-yet-placed label name."""
        index = len(self.labels)
        while f"{stem}{index}" in self.labels:
            index += 1
        return f"{stem}{index}"

    def place_label(self, name: str) -> None:
        """Place a label generated earlier with :meth:`new_label`."""
        if name in self.labels:
            raise ISAError(f"label {name!r} already placed")
        self.labels[name] = len(self.instructions)

    def finalize(self) -> "Program":
        """Resolve symbolic branch targets into relative offsets.

        Branch semantics are ``pc += offset`` when taken, so the offset for
        an instruction at ``pc`` targeting label position ``L`` is
        ``L - pc``.  Raises :class:`ISAError` for unknown labels or offsets
        that do not fit the 16-bit field.
        """
        limit = 1 << (field_width(Format.CTL, "offset") - 1)
        for pc, instr in enumerate(self.instructions):
            if instr.target is None:
                continue
            if instr.target not in self.labels:
                raise ISAError(f"undefined label {instr.target!r}")
            offset = self.labels[instr.target] - pc
            if not -limit <= offset < limit:
                raise ISAError(
                    f"branch at {pc} to {instr.target!r}: offset {offset} "
                    f"exceeds the 16-bit field"
                )
            instr.fields["offset"] = offset
            instr.target = None
        self._finalized = True
        return self

    @property
    def finalized(self) -> bool:
        return self._finalized

    def encode_all(self) -> List[int]:
        """Encode the whole program into 32-bit words."""
        if any(instr.target is not None for instr in self.instructions):
            self.finalize()
        if self._words is None:
            self._words = [
                encode(instr, self.registry) for instr in self.instructions
            ]
        return self._words

    # -- execution-engine metadata ------------------------------------------
    def loop_blocks(self) -> List[LoopBlock]:
        """Straight-line loop bodies closed by backward conditional branches.

        A :class:`LoopBlock` covers ``[head, branch]`` where the
        instruction at ``branch`` is a conditional branch with a negative
        resolved offset targeting ``head`` and no instruction strictly
        inside the span transfers control.  These are the hot-block
        candidates the vectorized execution engine
        (:mod:`repro.sim.blockengine`) replays without per-instruction
        dispatch.  Results are cached until the program is mutated.
        """
        if self._loop_blocks is not None:
            return self._loop_blocks
        if not self._finalized:
            self.finalize()
        blocks: List[LoopBlock] = []
        mnemonics = [instr.mnemonic for instr in self.instructions]
        for branch, instr in enumerate(self.instructions):
            if instr.mnemonic not in BRANCH_MNEMONICS:
                continue
            offset = instr.fields.get("offset", 0)
            if offset >= 0:
                continue
            head = branch + offset
            if head < 0:
                continue
            if any(
                mnemonics[pc] in CONTROL_MNEMONICS
                for pc in range(head, branch)
            ):
                continue
            blocks.append(LoopBlock(head=head, branch=branch))
        self._loop_blocks = blocks
        return blocks

    def _digest_over(self, instructions: List[Instruction]) -> str:
        parts = []
        for instr in instructions:
            fields = ",".join(
                f"{k}={v}" for k, v in sorted(instr.fields.items())
            )
            parts.append(f"{instr.mnemonic}({fields})")
        return hashlib.sha256(";".join(parts).encode()).hexdigest()

    def content_digest(self) -> str:
        """Hex SHA-256 over the instruction stream (content address).

        Hashes mnemonics and resolved fields rather than encoded words:
        immediates produced by ``li`` expansion may exceed the signed
        encoding range of their field, which is irrelevant to simulation.
        Cached until the program is mutated.
        """
        if self._digest is None:
            if not self._finalized:
                self.finalize()
            self._digest = self._digest_over(self.instructions)
        return self._digest

    def block_digest(self, block: LoopBlock) -> str:
        """Content address of one loop block.

        Branch offsets are relative, so structurally identical loop
        bodies on different cores -- or at different positions in the
        same program -- share a digest and therefore a cached block
        analysis.
        """
        if not self._finalized:
            self.finalize()
        return self._digest_over(self.instructions[block.head:block.branch + 1])

    def size_bytes(self) -> int:
        """Program footprint in instruction memory."""
        return 4 * len(self.instructions)
