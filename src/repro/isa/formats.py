"""Binary instruction formats of the 32-bit CIMFlow ISA (Fig. 3, right).

Five formats share a 6-bit opcode in bits [31:26] and 5-bit register
operand fields; they differ in their tail fields (flags, funct, immediates,
offsets), exactly as the paper's format diagram shows:

=========  =====================================================
CIM        ``opcode | rs | rt | re | flags(11)``
VEC        ``opcode | rs | rt | re | rd | funct(6)``
SCALAR_I   ``opcode | rs | rt | funct(6) | imm(10)``
MEM        ``opcode | rs | rt | rd | offset(11)``
CTL        ``opcode | rs | rt | offset(16)``
=========  =====================================================

Immediates and offsets are two's-complement signed by default; all other
fields are unsigned.  Individual instructions with zero-extending
semantics (``SC_LUI`` / ``SC_ORI``) override the default through their
descriptor's ``unsigned_fields``
(:class:`repro.isa.instruction.InstructionDescriptor`).
"""

import enum
from typing import Dict, Tuple


class Format(enum.Enum):
    """The five instruction encodings."""

    CIM = "cim"
    VEC = "vec"
    SCALAR_I = "scalar_i"
    MEM = "mem"
    CTL = "ctl"


#: field name -> (low bit, width) for each format.  Bit 31 is the MSB.
FIELD_LAYOUT: Dict[Format, Dict[str, Tuple[int, int]]] = {
    Format.CIM: {
        "opcode": (26, 6),
        "rs": (21, 5),
        "rt": (16, 5),
        "re": (11, 5),
        "flags": (0, 11),
    },
    Format.VEC: {
        "opcode": (26, 6),
        "rs": (21, 5),
        "rt": (16, 5),
        "re": (11, 5),
        "rd": (6, 5),
        "funct": (0, 6),
    },
    Format.SCALAR_I: {
        "opcode": (26, 6),
        "rs": (21, 5),
        "rt": (16, 5),
        "funct": (10, 6),
        "imm": (0, 10),
    },
    Format.MEM: {
        "opcode": (26, 6),
        "rs": (21, 5),
        "rt": (16, 5),
        "rd": (11, 5),
        "offset": (0, 11),
    },
    Format.CTL: {
        "opcode": (26, 6),
        "rs": (21, 5),
        "rt": (16, 5),
        "offset": (0, 16),
    },
}

#: fields interpreted as two's-complement signed values (unless the
#: instruction's descriptor lists them in ``unsigned_fields``).
SIGNED_FIELDS = frozenset({"imm", "offset"})

#: operand fields that name general-purpose registers.
REGISTER_FIELDS = ("rs", "rt", "rd", "re")


def format_fields(fmt: Format) -> Dict[str, Tuple[int, int]]:
    """The (lo, width) field map for a format."""
    return FIELD_LAYOUT[fmt]


def field_width(fmt: Format, name: str) -> int:
    """Width in bits of field ``name`` in format ``fmt``."""
    return FIELD_LAYOUT[fmt][name][1]
