"""Binary encoding and decoding of 32-bit CIMFlow instructions."""

from typing import Optional

from repro.errors import ISAError
from repro.isa.extension import ISARegistry, default_registry
from repro.isa.formats import FIELD_LAYOUT
from repro.isa.instruction import Instruction
from repro.utils.bits import extract_bits, insert_bits, sign_extend, to_twos_complement

WORD_BITS = 32
WORD_MASK = (1 << WORD_BITS) - 1


def encode(instr: Instruction, registry: Optional[ISARegistry] = None) -> int:
    """Encode an instruction into its 32-bit word.

    Unresolved symbolic branch targets and field values that do not fit
    their bit widths raise :class:`ISAError`.
    """
    registry = registry or default_registry()
    desc = registry.lookup(instr.mnemonic)
    if instr.target is not None:
        raise ISAError(
            f"cannot encode {instr.mnemonic} with unresolved target "
            f"{instr.target!r}; finalize the program first"
        )
    layout = FIELD_LAYOUT[desc.fmt]
    unknown = set(instr.fields) - set(layout)
    if unknown:
        raise ISAError(
            f"{instr.mnemonic}: fields {sorted(unknown)} not in format "
            f"{desc.fmt.value}"
        )
    word = 0
    word = insert_bits(word, *layout["opcode"], value=int(desc.opcode))
    for name, (lo, width) in layout.items():
        if name == "opcode":
            continue
        value = instr.get(name)
        try:
            raw = (
                to_twos_complement(value, width)
                if desc.field_signed(name)
                else value
            )
            word = insert_bits(word, lo, width, raw)
        except ValueError as exc:
            raise ISAError(f"{instr.mnemonic}: field {name}: {exc}") from exc
    return word


def decode(word: int, registry: Optional[ISARegistry] = None) -> Instruction:
    """Decode a 32-bit word back into an :class:`Instruction`."""
    if not 0 <= word <= WORD_MASK:
        raise ISAError(f"instruction word {word:#x} out of 32-bit range")
    registry = registry or default_registry()
    opcode = extract_bits(word, 26, 6)
    desc = registry.lookup_opcode(opcode)
    layout = FIELD_LAYOUT[desc.fmt]
    fields = {}
    for name, (lo, width) in layout.items():
        if name == "opcode":
            continue
        raw = extract_bits(word, lo, width)
        value = sign_extend(raw, width) if desc.field_signed(name) else raw
        if value != 0:
            fields[name] = value
    return Instruction(desc.mnemonic, fields)
