"""Instruction descriptors and the :class:`Instruction` value type.

A :class:`InstructionDescriptor` is the "instruction description template"
from the paper (Sec. III-B): it names an operation, assigns it an opcode,
binds it to one of the five binary formats, documents its operand fields,
and -- for user extensions -- carries the performance parameters the
simulator needs to model it without a hand-written execution handler.
"""

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.errors import ISAError
from repro.isa.formats import FIELD_LAYOUT, Format, SIGNED_FIELDS
from repro.isa.opcodes import Category


@dataclass(frozen=True)
class InstructionDescriptor:
    """Static description of one operation in the instruction set.

    Attributes
    ----------
    mnemonic:
        Assembly name, e.g. ``"CIM_MVM"``.
    opcode:
        6-bit opcode value.
    category:
        Instruction class (CIM / vector / scalar / communication / control).
    fmt:
        Binary format that lays out the operand fields.
    operands:
        Names of the fields that are meaningful for this operation, in
        assembly order.  Fields of the format not listed here must be zero.
    description:
        One-line human documentation.
    latency:
        Fixed execution latency in cycles.  Required for extension
        instructions; built-in instructions use the detailed unit models
        instead and leave this ``None``.
    energy_pj:
        Fixed per-execution energy in picojoules (extensions only).
    unsigned_fields:
        Immediate/offset fields this operation interprets as *unsigned*
        (zero-extending), overriding the format-level two's-complement
        default of :data:`~repro.isa.formats.SIGNED_FIELDS`.  ``SC_LUI``
        and ``SC_ORI`` declare their 16-bit ``offset`` here, so
        ``li``-expanded constants with the high bit set (>= 0x8000)
        round-trip through binary encoding.
    """

    mnemonic: str
    opcode: int
    category: Category
    fmt: Format
    operands: Tuple[str, ...] = ()
    description: str = ""
    latency: Optional[int] = None
    energy_pj: Optional[float] = None
    unsigned_fields: Tuple[str, ...] = ()

    def __post_init__(self):
        if not 0 <= self.opcode < 64:
            raise ISAError(f"opcode {self.opcode} out of 6-bit range")
        layout = FIELD_LAYOUT[self.fmt]
        for operand in self.operands:
            if operand not in layout:
                raise ISAError(
                    f"{self.mnemonic}: operand '{operand}' not present in "
                    f"format {self.fmt.value}"
                )
        for name in self.unsigned_fields:
            if name not in layout:
                raise ISAError(
                    f"{self.mnemonic}: unsigned field '{name}' not present "
                    f"in format {self.fmt.value}"
                )

    def field_signed(self, name: str) -> bool:
        """Whether field ``name`` encodes as two's-complement signed."""
        return name in SIGNED_FIELDS and name not in self.unsigned_fields


@dataclass
class Instruction:
    """One concrete instruction: a mnemonic plus operand field values.

    Field values live in ``fields``; unset fields default to zero.  Branch
    and jump instructions may instead carry a symbolic ``target`` label that
    :meth:`repro.isa.program.Program.finalize` resolves into the ``offset``
    field.
    """

    mnemonic: str
    fields: Dict[str, int] = field(default_factory=dict)
    target: Optional[str] = None

    def get(self, name: str) -> int:
        """Value of field ``name`` (0 when unset)."""
        return self.fields.get(name, 0)

    # Convenience accessors used pervasively by the simulator -----------
    @property
    def rs(self) -> int:
        return self.get("rs")

    @property
    def rt(self) -> int:
        return self.get("rt")

    @property
    def rd(self) -> int:
        return self.get("rd")

    @property
    def re(self) -> int:
        return self.get("re")

    @property
    def imm(self) -> int:
        return self.get("imm")

    @property
    def offset(self) -> int:
        return self.get("offset")

    @property
    def funct(self) -> int:
        return self.get("funct")

    @property
    def flags(self) -> int:
        return self.get("flags")

    def with_field(self, name: str, value: int) -> "Instruction":
        """Return a copy with field ``name`` set to ``value``."""
        fields = dict(self.fields)
        fields[name] = value
        return Instruction(self.mnemonic, fields, self.target)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = ", ".join(f"{k}={v}" for k, v in sorted(self.fields.items()))
        tgt = f", target={self.target!r}" if self.target else ""
        return f"Instruction({self.mnemonic}, {parts}{tgt})"
