"""Register file specification: general-purpose (G_Reg) and
special-purpose (S_Reg) registers (Fig. 3, core level).

General registers are named ``R0``..``R31``; ``R0`` is hardwired to zero
(writes are ignored), which gives the code generator a free constant and a
discard target.  Special registers carry operation-specific state consumed
implicitly by CIM and vector instructions.
"""

import enum

from repro.errors import ISAError

NUM_GENERAL_REGS = 32
ZERO_REG = 0


class SReg(enum.IntEnum):
    """Special-purpose register indices.

    The CIM and vector units read these implicitly:

    - ``MVM_ROWS`` / ``MVM_COLS``: the logical tile shape used by
      ``CIM_CFG`` when (re)configuring a macro group.
    - ``QMUL`` / ``QSHIFT``: fixed-point requantisation parameters used by
      ``VEC_QNT`` (out = clip((acc * QMUL) >> QSHIFT)).
    - ``CORE_ID`` / ``NUM_CORES``: read-only topology information.
    """

    CORE_ID = 0
    NUM_CORES = 1
    MVM_ROWS = 2
    MVM_COLS = 3
    QMUL = 4
    QSHIFT = 5
    FILL_VALUE = 6
    STRIDE = 7
    CHANNEL_LEN = 12
    CHUNK = 13
    USER0 = 8
    USER1 = 9
    USER2 = 10
    USER3 = 11


NUM_SPECIAL_REGS = 16

#: Special registers the program may not write.
READ_ONLY_SREGS = frozenset({SReg.CORE_ID, SReg.NUM_CORES})


def check_greg(index: int) -> int:
    """Validate a general-register index and return it."""
    if not 0 <= index < NUM_GENERAL_REGS:
        raise ISAError(f"general register index {index} out of range [0, 32)")
    return index


def check_sreg(index: int) -> int:
    """Validate a special-register index and return it."""
    if not 0 <= index < NUM_SPECIAL_REGS:
        raise ISAError(f"special register index {index} out of range [0, 16)")
    return index


def reg_name(index: int) -> str:
    """Assembly name of a general register."""
    return f"R{check_greg(index)}"


def sreg_name(index: int) -> str:
    """Assembly name of a special register."""
    check_sreg(index)
    try:
        return f"S_{SReg(index).name}"
    except ValueError:
        return f"S{index}"
