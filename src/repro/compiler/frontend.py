"""CG-level preprocessing: condensation and linearization (Fig. 4a, left).

The compiler "first identifies and extracts MVM-based operators, then
groups adjacent operators with them to create a condensed CG", producing
"a dependency-preserving linear sequence of operators".  Concretely:

- ``FLATTEN`` disappears: in the NHWC byte layout flattening is a no-op, so
  its output tensor is aliased to its input.
- Every MVM operator (conv / dwconv / gemm) anchors a *condensed node*;
  single-consumer elementwise successors (activations, residual adds) fuse
  into the anchor's epilogue.
- Pooling, squeeze-excite scaling and unfusable elementwise operators
  become standalone *vector nodes* executed on the vector compute unit.

The resulting :class:`CondensedGraph` is the unit of partitioning, mapping
and code generation.
"""

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.errors import CompileError
from repro.graph.graph import ComputationGraph
from repro.graph.ops import Operator, OpKind

#: Elementwise kinds that can ride along in an MVM epilogue.
_FUSABLE = (OpKind.RELU, OpKind.RELU6, OpKind.SILU, OpKind.SIGMOID, OpKind.ADD)


@dataclass(frozen=True)
class NodeInput:
    """One data input of a condensed node.

    ``mode`` describes how output rows map to input rows:

    - ``"window"``: sliding window with ``kernel`` / ``stride`` / ``padding``
      (convolutions, pooling);
    - ``"one2one"``: row ``y`` needs exactly input row ``y`` (elementwise,
      residual);
    - ``"full"``: every output row needs the whole input (GEMM over a
      flattened map, global pooling, broadcast scale vectors).
    """

    tensor: str
    role: str  # 'main' | 'residual' | 'scale'
    mode: str  # 'window' | 'one2one' | 'full'
    kernel: int = 1
    stride: int = 1
    padding: int = 0

    def rows_needed(self, y0: int, y1: int, in_rows: int) -> range:
        """Input row range needed to produce output rows [y0, y1)."""
        if self.mode == "full":
            return range(0, in_rows)
        if self.mode == "one2one":
            return range(y0, y1)
        lo = max(0, y0 * self.stride - self.padding)
        hi = min(in_rows, (y1 - 1) * self.stride - self.padding + self.kernel)
        return range(lo, max(lo, hi))


@dataclass
class CondensedNode:
    """An anchor operator plus its fused elementwise epilogue."""

    name: str
    anchor: Operator
    fused: List[Operator] = field(default_factory=list)
    inputs: List[NodeInput] = field(default_factory=list)
    output: str = ""
    index: int = -1

    @property
    def is_cim(self) -> bool:
        """True when the anchor maps onto CIM macro groups."""
        return self.anchor.is_mvm

    @property
    def operators(self) -> List[Operator]:
        return [self.anchor] + self.fused

    def input_by_role(self, role: str) -> Optional[NodeInput]:
        for node_input in self.inputs:
            if node_input.role == role:
                return node_input
        return None

    @property
    def main_input(self) -> NodeInput:
        node_input = self.input_by_role("main")
        if node_input is None:
            raise CompileError(f"node {self.name} has no main input")
        return node_input

    def __repr__(self) -> str:  # pragma: no cover
        tail = "+".join(op.kind.value for op in self.fused)
        return f"CondensedNode({self.name}{'+' + tail if tail else ''})"


class CondensedGraph:
    """The condensed computation graph and its linearization."""

    def __init__(self, graph: ComputationGraph):
        self.graph = graph
        self.nodes: List[CondensedNode] = []
        #: resolves flattened tensor names to their storage tensor.
        self.alias: Dict[str, str] = {}
        #: tensor name -> producing node index (for node outputs).
        self.producer_index: Dict[str, int] = {}
        #: graph input tensors (produced by INPUT operators).
        self.source_tensors: Set[str] = set()
        self._build()

    # -- construction -------------------------------------------------------
    def resolve(self, tensor: str) -> str:
        """Follow flatten aliases to the storage tensor."""
        while tensor in self.alias:
            tensor = self.alias[tensor]
        return tensor

    def _consumer_count(self, tensor: str) -> int:
        count = 0
        for op in self.graph.operators:
            count += sum(1 for t in op.inputs if self.resolve(t) == tensor)
        return count

    def _main_input_spec(self, op: Operator) -> NodeInput:
        tensor = self.resolve(op.inputs[0])
        if op.kind in (OpKind.CONV, OpKind.DWCONV):
            return NodeInput(
                tensor, "main", "window",
                op.attrs["kernel"], op.attrs["stride"], op.attrs["padding"],
            )
        if op.kind in (OpKind.MAXPOOL, OpKind.AVGPOOL):
            return NodeInput(
                tensor, "main", "window",
                op.attrs["kernel"], op.attrs["stride"], op.attrs.get("padding", 0),
            )
        if op.kind in (OpKind.GEMM, OpKind.GLOBALAVGPOOL):
            return NodeInput(tensor, "main", "full")
        return NodeInput(tensor, "main", "one2one")

    def _new_node(self, op: Operator) -> CondensedNode:
        node = CondensedNode(name=op.name, anchor=op, output=op.output)
        node.inputs.append(self._main_input_spec(op))
        if op.kind is OpKind.MUL_CHANNEL:
            node.inputs.append(
                NodeInput(self.resolve(op.inputs[1]), "scale", "full")
            )
        elif op.kind is OpKind.ADD:
            node.inputs.append(
                NodeInput(self.resolve(op.inputs[1]), "residual", "one2one")
            )
        node.index = len(self.nodes)
        self.nodes.append(node)
        self.producer_index[op.output] = node.index
        return node

    def _try_fuse(self, op: Operator) -> bool:
        """Fuse an elementwise op into the node producing one of its inputs.

        Fusion requires the candidate node's current output to feed *only*
        this operator, so fusing cannot steal a tensor other consumers need
        -- including the graph's marked outputs, which must stay
        materialised even when a single operator consumes them (sharded
        subgraphs spill them across the chip boundary).
        """
        marked = {self.resolve(t) for t in self.graph.outputs}
        for position, tensor in enumerate(op.inputs):
            resolved = self.resolve(tensor)
            index = self.producer_index.get(resolved)
            if index is None:
                continue
            node = self.nodes[index]
            if node.output != resolved:
                continue  # an epilogue was already appended past this tensor
            if self._consumer_count(resolved) != 1:
                continue
            if resolved in marked:
                continue  # fusing would swallow a marked graph output
            residual: Optional[str] = None
            if op.kind is OpKind.ADD:
                # The non-fused input must come from this node's past so
                # the linear order stays dependency-preserving.
                residual = self.resolve(op.inputs[1 - position])
                other_index = self.producer_index.get(residual)
                if other_index is not None and other_index > node.index:
                    continue
                if any(ni.tensor == residual for ni in node.inputs):
                    # The residual would alias an input this node already
                    # reads (e.g. add(relu(conv(x)), x)): one tensor would
                    # then feed two buffer roles of the same node, and a
                    # same-stage producer's row stream cannot serve two
                    # differently-paced readers over one channel.  Keep
                    # the add as its own node instead.
                    continue
            node.fused.append(op)
            node.output = op.output
            del self.producer_index[resolved]
            self.producer_index[op.output] = node.index
            if residual is not None:
                node.inputs.append(NodeInput(residual, "residual", "one2one"))
            return True
        return False

    def _build(self) -> None:
        for op in self.graph.topological_order():
            if op.kind is OpKind.INPUT:
                self.source_tensors.add(op.output)
            elif op.kind is OpKind.FLATTEN:
                self.alias[op.output] = self.resolve(op.inputs[0])
            elif op.is_mvm:
                self._new_node(op)
            elif op.kind in _FUSABLE and self._try_fuse(op):
                pass
            else:
                self._new_node(op)
        if not self.nodes:
            raise CompileError("model contains no computation to map")

    # -- queries -------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.nodes)

    def deps(self, node: CondensedNode) -> Set[int]:
        """Indices of nodes whose outputs this node consumes."""
        result = set()
        for node_input in node.inputs:
            index = self.producer_index.get(node_input.tensor)
            if index is not None:
                result.add(index)
        return result

    def dep_list(self) -> List[Set[int]]:
        """deps() for every node, indexed by node position."""
        return [self.deps(node) for node in self.nodes]

    def consumers(self, node: CondensedNode) -> List[int]:
        """Indices of nodes consuming this node's output."""
        return sorted(
            other.index
            for other in self.nodes
            if any(ni.tensor == node.output for ni in other.inputs)
        )

    def is_graph_output(self, node: CondensedNode) -> bool:
        resolved = {self.resolve(t) for t in self.graph.outputs}
        return node.output in resolved

    def summary(self) -> str:
        cim = sum(1 for node in self.nodes if node.is_cim)
        return (
            f"{self.graph.name}: {len(self.nodes)} condensed nodes "
            f"({cim} CIM, {len(self.nodes) - cim} vector)"
        )


def condense(graph: ComputationGraph) -> CondensedGraph:
    """Preprocess a computation graph into its condensed form."""
    graph.validate()
    return CondensedGraph(graph)
