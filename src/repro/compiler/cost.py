"""Analytic cost estimation guiding CG-level optimization (Sec. III-C).

"To balance parallel execution benefits against communication costs, the
estimation model accounts for both computation costs and data transfer
overheads across inter- and intra-cluster communications."

The estimates here mirror the structure of the code the backend actually
emits (patch assembly, bit-serial MVMs, epilogues, row transfers), using
the same architecture parameters the cycle-accurate simulator charges, so
DP decisions and simulated outcomes track each other.  The fast analytic
performance model (:mod:`repro.sim.fastmodel`) reuses this module.
"""

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.config import ArchConfig
from repro.compiler.geometry import NodeGeometry
from repro.graph.ops import OpKind
from repro.utils import ceil_div

#: fixed per-instruction issue overhead (IF/DE + scalar address set-up).
_ISSUE = 2
#: scalar loop-control instructions per x-loop iteration.
_LOOP_OVERHEAD = 4
#: cycles to cross the chip to the global-memory port, on average.
_GLOBAL_HOPS = 4


@dataclass
class NodeEstimate:
    """Latency/energy estimate of one node at a given duplication factor."""

    replicas: int
    cores: int
    load_cycles: int
    row_cycles: int
    rows_per_replica: int
    latency: int
    energy_pj: float
    energy_categories: Dict[str, float] = None  # type: ignore[assignment]


class CostModel:
    """Analytic per-node and per-stage cost estimation."""

    def __init__(self, arch: ArchConfig):
        self.arch = arch
        self.energy = arch.energy
        self._node_cache: Dict[tuple, NodeEstimate] = {}
        core = arch.chip.core
        self.local_bw = core.local_memory.bandwidth_bytes_per_cycle
        self.lanes = core.vector_unit.lanes
        self.flit = arch.chip.noc.flit_bytes
        self.glb_bw = arch.chip.global_memory.bandwidth_bytes_per_cycle
        self.glb_lat = arch.chip.global_memory.access_latency
        self.mvm_interval = core.cim_unit.mvm_issue_interval
        self.mvm_latency = core.cim_unit.mvm_latency

    # -- primitive costs -----------------------------------------------------
    def copy_cycles(self, nbytes: int) -> int:
        return ceil_div(nbytes, self.local_bw) + _ISSUE

    def vector_cycles(self, elements: int) -> int:
        return ceil_div(max(1, elements), self.lanes) + _ISSUE

    def noc_cycles(self, nbytes: int, hops: int = 2) -> int:
        return ceil_div(nbytes, self.flit) + hops * self.arch.chip.noc.hop_latency

    def global_cycles(self, nbytes: int) -> int:
        return (
            ceil_div(nbytes, self.glb_bw)
            + self.glb_lat
            + _GLOBAL_HOPS * self.arch.chip.noc.hop_latency
        )

    # -- node-level estimates ---------------------------------------------------
    def _input_row_bytes(self, geom: NodeGeometry) -> int:
        node = geom.node
        graph = geom._graph_ref
        main = node.main_input
        info = graph.tensor(main.tensor)
        if info.is_feature_map:
            return info.shape[1] * info.shape[2]
        return info.size_bytes

    def _per_position_cycles(self, geom: NodeGeometry) -> int:
        """Compute cycles for one output position on the busiest core."""
        node = geom.node
        anchor = node.anchor
        slices_owned = min(geom.col_slices, geom.slices_per_core) or 1
        if not node.is_cim:
            # vector nodes: dominated by gather + vector ops over channels
            k = anchor.attrs.get("kernel", 1)
            work = k * k * self.vector_cycles(geom.out_c)
            return work + _LOOP_OVERHEAD
        if anchor.kind is OpKind.DWCONV:
            k = anchor.attrs["kernel"]
            c_in = anchor.weight.shape[2]
            patch = k * k * self.copy_cycles(c_in)
            per_tile = (
                self.copy_cycles(k * k * geom.dw_group)  # gather
                + self.mvm_interval + _ISSUE * 3
                + 2 * self.vector_cycles(geom.dw_group)
            )
            return patch + slices_owned * per_tile + _LOOP_OVERHEAD
        if anchor.kind is OpKind.CONV:
            k = anchor.attrs["kernel"]
            c_in = anchor.weight.shape[2]
            patch = k * self.copy_cycles(k * c_in)
        else:  # GEMM: input vector already contiguous
            patch = 0
        mvms = slices_owned * geom.row_tiles * (self.mvm_interval + _ISSUE * 3)
        epilogue = slices_owned * 2 * self.vector_cycles(
            min(geom.out_c, geom.tile_cols)
        )
        return patch + mvms + epilogue + _LOOP_OVERHEAD

    def row_cycles(
        self,
        geom: NodeGeometry,
        read_global: bool,
        write_global: bool,
        same_stage_consumers: int,
    ) -> int:
        """Cycles the busiest core spends per output row."""
        per_pos = self._per_position_cycles(geom)
        in_bytes = self._input_row_bytes(geom)
        main = geom.node.main_input
        rows_in_per_out = main.stride if main.mode == "window" else 1
        if read_global:
            acquire = rows_in_per_out * self.global_cycles(in_bytes)
        else:
            acquire = rows_in_per_out * self.noc_cycles(in_bytes)
        band = geom.out_w * ceil_div(geom.out_c, max(1, geom.cores_min))
        emit = same_stage_consumers * self.noc_cycles(band)
        if write_global:
            emit += self.global_cycles(band)
        return geom.out_w * per_pos + acquire + emit

    def load_cycles(self, geom: NodeGeometry) -> int:
        """Weight-load cycles for the busiest core of one replica."""
        if not geom.node.is_cim:
            return 0
        tile_bytes = geom.tile_rows * geom.tile_cols
        tiles_per_core = min(
            geom.tiles_total,
            geom.slices_per_core * geom.row_tiles,
        )
        per_tile = self.global_cycles(tile_bytes) + self.copy_cycles(tile_bytes)
        return tiles_per_core * per_tile

    def estimate_node(
        self,
        geom: NodeGeometry,
        replicas: int,
        read_global: bool = True,
        write_global: bool = True,
        same_stage_consumers: int = 0,
    ) -> NodeEstimate:
        """Latency and energy of one node at duplication factor ``replicas``."""
        key = (
            geom.node.name, replicas, read_global, write_global,
            same_stage_consumers,
        )
        cached = self._node_cache.get(key)
        if cached is not None:
            return cached
        replicas = max(1, min(replicas, geom.max_replicas))
        rows = ceil_div(geom.out_h, replicas)
        row_cost = self.row_cycles(
            geom, read_global, write_global, same_stage_consumers
        )
        load = self.load_cycles(geom)
        latency = load + rows * row_cost
        categories = self._node_energy(
            geom, replicas, read_global, write_global, same_stage_consumers
        )
        energy = sum(categories.values())
        estimate = NodeEstimate(
            replicas=replicas,
            cores=replicas * geom.cores_min,
            load_cycles=load,
            row_cycles=row_cost,
            rows_per_replica=rows,
            latency=latency,
            energy_pj=energy,
            energy_categories=categories,
        )
        self._node_cache[key] = estimate
        return estimate

    def weight_load_energy(
        self, geom: NodeGeometry, replicas: int
    ) -> Dict[str, float]:
        """The weight-load share of one node execution's energy.

        The exact terms :meth:`_node_energy` charges for staging weight
        tiles from global memory and writing them into the macro groups.
        Resident-weights sessions pay these once per session instead of
        once per input, so the fast model splits them out of the warm
        per-input energy (:func:`repro.sim.fastmodel.analyze_plan_resident`).
        """
        if not geom.node.is_cim:
            return {}
        e = self.energy
        weight_bytes = geom.tiles_total * geom.tile_rows * geom.tile_cols
        return {
            "global_mem": replicas * weight_bytes * e.global_mem_pj_per_byte,
            "cim_write": replicas * weight_bytes * e.cim_write_pj_per_byte,
            "noc": (
                replicas * weight_bytes * _GLOBAL_HOPS
                * e.noc_pj_per_byte_per_hop
            ),
        }

    def node_macs(self, geom: NodeGeometry) -> int:
        """MAC operations one execution of the node performs."""
        if not geom.node.is_cim:
            return 0
        anchor = geom.node.anchor
        positions = geom.out_h * geom.out_w
        if anchor.kind is OpKind.DWCONV:
            k = anchor.attrs["kernel"]
            return positions * anchor.weight.shape[2] * k * k
        return positions * geom.vec_rows * geom.out_c

    def _node_energy(
        self,
        geom: NodeGeometry,
        replicas: int,
        read_global: bool,
        write_global: bool,
        same_stage_consumers: int,
    ) -> Dict[str, float]:
        e = self.energy
        node = geom.node
        positions = geom.out_h * geom.out_w
        cat = {
            "cim_compute": 0.0, "cim_write": 0.0, "vector": 0.0,
            "local_mem": 0.0, "global_mem": 0.0, "noc": 0.0,
        }
        if node.is_cim:
            anchor = node.anchor
            macs = self.node_macs(geom)
            if anchor.kind is OpKind.DWCONV:
                k = anchor.attrs["kernel"]
                active_rows = geom.col_slices * geom.dw_group * k * k
            else:
                active_rows = geom.vec_rows
            cat["cim_compute"] += macs * e.cim_mac_pj
            cat["cim_compute"] += (
                positions * active_rows * e.cim_peripheral_pj_per_mvm_row
            )
            # weight loading: every replica reloads the full tile set
            for key, value in self.weight_load_energy(geom, replicas).items():
                cat[key] += value
            # im2col patch assembly traffic (read + write scratchpad)
            patch_bytes = positions * geom.vec_rows
            cat["local_mem"] += patch_bytes * (
                e.local_mem_read_pj_per_byte + e.local_mem_write_pj_per_byte
            )
        out_bytes = positions * geom.out_c
        # epilogue / vector work over the output activations
        cat["vector"] += out_bytes * e.vector_op_pj_per_element
        cat["local_mem"] += out_bytes * (
            e.local_mem_read_pj_per_byte + e.local_mem_write_pj_per_byte
        )

        def noc_pj(row_bytes: int, rows: int, hops: int) -> float:
            """Per-flit NoC energy: rows messages of row_bytes each."""
            flits = ceil_div(max(1, row_bytes), self.flit)
            return rows * flits * self.flit * hops * e.noc_pj_per_byte_per_hop

        in_row = self._input_row_bytes(geom)
        in_rows = geom.out_h * (
            geom.node.main_input.stride
            if geom.node.main_input.mode == "window" else 1
        )
        if read_global:
            cat["global_mem"] += in_row * in_rows * e.global_mem_pj_per_byte
            cat["noc"] += noc_pj(in_row, in_rows, _GLOBAL_HOPS)
        else:
            cat["noc"] += noc_pj(in_row, in_rows * replicas, 2)
        out_row = geom.out_w * geom.out_c
        if same_stage_consumers:
            cat["noc"] += noc_pj(out_row, geom.out_h * same_stage_consumers, 2)
        if write_global:
            cat["global_mem"] += out_bytes * e.global_mem_pj_per_byte
            cat["noc"] += noc_pj(out_row, geom.out_h, _GLOBAL_HOPS)
        return cat

    # -- stage-level estimate ---------------------------------------------------
    def estimate_stage(
        self,
        geoms: List[NodeGeometry],
        replicas: Dict[str, int],
        spill: Optional[Dict[str, bool]] = None,
    ) -> "StageEstimate":
        """Pipelined stage estimate.

        Nodes in a stage form an inter-operator pipeline: steady-state
        latency is set by the slowest node, plus one pipeline-fill term per
        node, plus the (parallel) weight loads.  ``spill`` marks nodes whose
        output must also be written to global memory (consumed by a later
        stage or a graph output); when omitted every node spills.
        """
        spill = spill if spill is not None else {}
        outputs_in_stage = {g.node.output for g in geoms}
        node_costs: List[NodeEstimate] = []
        for geom in geoms:
            main = geom.node.main_input
            read_global = main.tensor not in outputs_in_stage
            consumers = sum(
                1
                for other in geoms
                if other is not geom
                and any(ni.tensor == geom.node.output for ni in other.node.inputs)
            )
            write_global = spill.get(geom.node.name, True)
            node_costs.append(
                self.estimate_node(
                    geom,
                    replicas.get(geom.node.name, 1),
                    read_global=read_global,
                    write_global=write_global,
                    same_stage_consumers=consumers,
                )
            )
        if not node_costs:
            return StageEstimate(0, 0.0, [])
        steady = max(c.latency for c in node_costs)
        fill = sum(c.row_cycles for c in node_costs) - max(
            c.row_cycles for c in node_costs
        )
        barrier = 100  # stage start synchronisation overhead
        latency = steady + fill + barrier
        energy = sum(c.energy_pj for c in node_costs)
        energy += latency * self.energy.static_pj_per_cycle(self.arch.chip.clock_mhz)
        return StageEstimate(latency, energy, node_costs)


@dataclass
class StageEstimate:
    """Estimated cost of one execution stage."""

    latency: int
    energy_pj: float
    node_costs: List[NodeEstimate]

    @property
    def cost(self) -> float:
        """Scalar DP objective (latency-driven)."""
        return float(self.latency)
