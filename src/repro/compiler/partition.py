"""DP-based model partitioning and mapping (Algorithm 1), plus the
inter-chip sharding front-end.

**Within one chip** the model is divided into sequential *execution
stages* so each stage's weights fit the chip's CIM capacity
simultaneously.  Dependency closures of the condensed DAG are enumerated
as bitmasks; every pair of nested closures ``D[j] subset D[i]`` defines a
candidate stage ``D[i] - D[j]``; ``OptimalMapping`` prices each candidate
(with duplication), and dynamic programming selects the partition chain
with minimum total cost.

**Across chips**, :func:`shard_graph` pipeline-shards the condensed
linearization into contiguous per-chip segments (:class:`ShardingSpec`
/ :class:`ShardingPlan`): each shard becomes a standalone
:class:`~repro.graph.graph.ComputationGraph` whose boundary tensors are
explicit ``INPUT`` operators / marked outputs, so the single-chip
compiler runs unchanged per shard and boundary tensors become explicit
inter-chip transfers (see ``docs/ARCHITECTURE.md``, "Multi-chip
sharding").
"""

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.config import ArchConfig
from repro.errors import CompileError
from repro.compiler.closures import (
    DEFAULT_CLOSURE_LIMIT,
    closure_masks,
    is_subset,
    mask_nodes,
)
from repro.compiler.cost import CostModel, StageEstimate
from repro.compiler.frontend import CondensedGraph, condense
from repro.compiler.geometry import NodeGeometry
from repro.compiler.mapping import optimal_mapping
from repro.graph.graph import ComputationGraph
from repro.graph.ops import Operator, OpKind


@dataclass
class StageDecision:
    """One chosen stage: its node indices and replica counts."""

    node_indices: List[int]
    replicas: Dict[str, int]
    estimate: StageEstimate


@dataclass
class PartitionResult:
    """The full partition chain plus its estimated cost."""

    stages: List[StageDecision]
    total_cost: float

    @property
    def total_latency(self) -> int:
        return sum(s.estimate.latency for s in self.stages)

    @property
    def total_energy_pj(self) -> float:
        return sum(s.estimate.energy_pj for s in self.stages)


def _spill_flags(cgraph: CondensedGraph, stage_nodes: List[int]) -> Dict[str, bool]:
    """Which stage nodes must write their output to global memory."""
    in_stage = set(stage_nodes)
    flags: Dict[str, bool] = {}
    for index in stage_nodes:
        node = cgraph.nodes[index]
        consumers = cgraph.consumers(node)
        external = any(c not in in_stage for c in consumers)
        flags[node.name] = external or cgraph.is_graph_output(node) or not consumers
    return flags


def dp_partition(
    cgraph: CondensedGraph,
    geometries: Dict[str, NodeGeometry],
    arch: ArchConfig,
    cost_model: Optional[CostModel] = None,
    duplicate: bool = True,
    closure_limit: int = DEFAULT_CLOSURE_LIMIT,
) -> PartitionResult:
    """Algorithm 1: DP-based partitioning and mapping."""
    cost_model = cost_model or CostModel(arch)
    deps = cgraph.dep_list()
    masks = closure_masks(deps, closure_limit)
    index_of = {mask: i for i, mask in enumerate(masks)}
    full = (1 << len(cgraph)) - 1
    if full not in index_of:
        raise CompileError("closure enumeration lost the full graph")

    INF = float("inf")
    dp = [INF] * len(masks)
    prev = [-1] * len(masks)
    decision: List[Optional[StageDecision]] = [None] * len(masks)
    stage_cache: Dict[int, Optional[Tuple[Dict[str, int], StageEstimate]]] = {}

    def price_stage(stage_mask: int) -> Optional[Tuple[Dict[str, int], StageEstimate]]:
        if stage_mask not in stage_cache:
            nodes = mask_nodes(stage_mask)
            geoms = [geometries[cgraph.nodes[i].name] for i in nodes]
            spill = _spill_flags(cgraph, nodes)
            stage_cache[stage_mask] = optimal_mapping(
                geoms, arch, cost_model, duplicate=duplicate, spill=spill
            )
        return stage_cache[stage_mask]

    for i, mask_i in enumerate(masks):
        if mask_i == 0:
            dp[i] = 0.0
            continue
        for j in range(len(masks)):
            mask_j = masks[j]
            if mask_j == mask_i or not is_subset(mask_j, mask_i):
                continue
            if dp[j] == INF:
                continue
            stage_mask = mask_i & ~mask_j
            priced = price_stage(stage_mask)
            if priced is None:
                continue
            replicas, estimate = priced
            cost = dp[j] + estimate.cost
            if cost < dp[i]:
                dp[i] = cost
                prev[i] = j
                decision[i] = StageDecision(
                    node_indices=mask_nodes(stage_mask),
                    replicas=replicas,
                    estimate=estimate,
                )

    final = index_of[full]
    if dp[final] == INF:
        raise CompileError(
            "no feasible partition: some stage cannot fit the chip even alone"
        )
    stages: List[StageDecision] = []
    cursor = final
    while masks[cursor] != 0:
        stages.append(decision[cursor])
        cursor = prev[cursor]
    stages.reverse()
    return PartitionResult(stages=stages, total_cost=dp[final])


def greedy_partition(
    cgraph: CondensedGraph,
    geometries: Dict[str, NodeGeometry],
    arch: ArchConfig,
    cost_model: Optional[CostModel] = None,
    duplicate: bool = False,
) -> PartitionResult:
    """Baseline partitioning: pack the linear order greedily by capacity.

    This is the conventional scheme both baselines in Sec. IV-B use:
    stages are maximal prefixes of the linearization whose single-replica
    mappings fit the chip.  With ``duplicate=True`` the leftover cores of
    each stage are then filled by opportunistic weight duplication
    (CIM-MLC's strategy); with ``False`` it is the generic mapping.
    """
    cost_model = cost_model or CostModel(arch)
    stages: List[StageDecision] = []
    current: List[int] = []

    def close_stage() -> None:
        if not current:
            return
        geoms = [geometries[cgraph.nodes[i].name] for i in current]
        spill = _spill_flags(cgraph, current)
        priced = optimal_mapping(
            geoms, arch, cost_model, duplicate=duplicate, spill=spill
        )
        if priced is None:  # pragma: no cover - guarded by the fit check
            raise CompileError("greedy stage unexpectedly infeasible")
        replicas, estimate = priced
        stages.append(
            StageDecision(
                node_indices=list(current), replicas=replicas, estimate=estimate
            )
        )
        current.clear()

    used_cores = 0
    for index, node in enumerate(cgraph.nodes):
        need = geometries[node.name].cores_min
        if current and used_cores + need > arch.num_cores:
            close_stage()
            used_cores = 0
        if need > arch.num_cores:
            raise CompileError(
                f"{node.name} needs {need} cores, chip has {arch.num_cores}"
            )
        current.append(index)
        used_cores += need
    close_stage()
    total = sum(s.estimate.cost for s in stages)
    return PartitionResult(stages=stages, total_cost=total)


# ---------------------------------------------------------------------------
# Inter-chip pipeline sharding
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ShardingSpec:
    """How to split one model across several chips.

    ``num_chips`` chips execute a pipeline: chip ``k`` runs a contiguous
    segment of the condensed linearization (which is dependency-
    preserving, so every contiguous cut is a valid pipeline stage).
    ``cuts`` optionally pins the interior cut points -- ``cuts[k]`` is
    the first condensed-node index of chip ``k + 1``; when ``None`` the
    cuts are chosen automatically to balance per-chip weight bytes.
    """

    num_chips: int
    cuts: Optional[Tuple[int, ...]] = None

    def __post_init__(self):
        if self.num_chips <= 0:
            raise CompileError("sharding needs at least one chip")
        if self.cuts is not None:
            if not isinstance(self.cuts, tuple):
                object.__setattr__(self, "cuts", tuple(self.cuts))
            if len(self.cuts) != self.num_chips - 1:
                raise CompileError(
                    f"{self.num_chips} chips need {self.num_chips - 1} "
                    f"interior cuts, got {len(self.cuts)}"
                )


@dataclass
class GraphShard:
    """One chip's slice of the model: a standalone computation graph.

    ``graph`` contains the shard's operators plus one ``INPUT`` operator
    per boundary tensor; every tensor another shard (or the host)
    consumes is a marked graph output, so the single-chip compiler
    spills it to global memory, where the inter-chip scheduler picks it
    up.
    """

    index: int
    node_indices: List[int]
    graph: ComputationGraph
    #: boundary tensors arriving from an earlier shard (tensor -> shard).
    incoming: Dict[str, int] = field(default_factory=dict)
    #: boundary tensors departing to later shards, in layout order.
    outgoing: List[str] = field(default_factory=list)
    #: original model inputs consumed by this shard (host-written).
    external_inputs: List[str] = field(default_factory=list)
    #: original model outputs produced by this shard (host-read).
    final_outputs: List[str] = field(default_factory=list)


@dataclass
class ShardingPlan:
    """The resolved sharding: per-chip subgraphs plus boundary metadata."""

    spec: ShardingSpec
    graph: ComputationGraph
    cgraph: CondensedGraph
    cuts: Tuple[int, ...]
    shards: List[GraphShard]

    @property
    def num_chips(self) -> int:
        return len(self.shards)

    def summary(self) -> str:
        lines = [
            f"sharding {self.graph.name}: {self.num_chips} chips, cuts "
            f"{list(self.cuts)}"
        ]
        for shard in self.shards:
            weights = shard.graph.total_weight_bytes()
            lines.append(
                f"  chip {shard.index}: {len(shard.node_indices)} condensed "
                f"nodes, {weights / 1024:.1f} KiB weights, "
                f"{len(shard.incoming)} in / {len(shard.outgoing)} out "
                f"boundary tensors"
            )
        return "\n".join(lines)


def _balanced_cuts(cgraph: CondensedGraph, num_chips: int) -> Tuple[int, ...]:
    """Cut the linearization so per-chip weight bytes are balanced.

    Greedy prefix packing against the ideal per-chip share, constrained
    so every chip gets at least one condensed node (and later chips are
    never starved of the nodes they need to exist).
    """
    weights = [
        sum(op.weight_bytes() for op in node.operators)
        for node in cgraph.nodes
    ]
    total = sum(weights)
    n = len(cgraph)
    prefix = [0]
    for w in weights:
        prefix.append(prefix[-1] + w)
    cuts: List[int] = []
    cursor = 0
    for chip in range(num_chips - 1):
        target = total * (chip + 1) / num_chips
        # leave at least one node for each remaining chip
        hi = n - (num_chips - 1 - chip)
        cut = cursor + 1
        while cut < hi and prefix[cut] < target:
            cut += 1
        cuts.append(cut)
        cursor = cut
    return tuple(cuts)


def _shard_segments(
    cgraph: CondensedGraph, spec: ShardingSpec
) -> Tuple[Tuple[int, ...], List[List[int]]]:
    n = len(cgraph)
    if spec.num_chips > n:
        raise CompileError(
            f"cannot shard {n} condensed nodes across {spec.num_chips} "
            f"chips; at most {n} chips are usable"
        )
    cuts = spec.cuts if spec.cuts is not None else _balanced_cuts(
        cgraph, spec.num_chips
    )
    bounds = [0, *cuts, n]
    # Strict monotonicity against the 0 / n sentinels also rejects any
    # cut outside (0, n), so this is the single range check needed.
    if list(bounds) != sorted(set(bounds)):
        raise CompileError(
            f"sharding cuts {list(cuts)} must be strictly increasing in "
            f"(0, {n}) so every chip gets at least one node"
        )
    segments = [
        list(range(bounds[k], bounds[k + 1])) for k in range(spec.num_chips)
    ]
    return tuple(cuts), segments


def _build_shard_graph(
    graph: ComputationGraph,
    cgraph: CondensedGraph,
    node_indices: List[int],
    shard_index: int,
) -> GraphShard:
    """Extract one shard as a standalone computation graph."""
    member: Set[str] = set()
    for i in node_indices:
        for op in cgraph.nodes[i].operators:
            member.add(op.name)

    topo = graph.topological_order()
    included: List[Operator] = []
    included_names: Set[str] = set()
    # FLATTEN operators belong to no condensed node (they are aliases);
    # pull in, right-to-left, every flatten chain feeding a member op.
    consumed_here: Set[str] = set()
    for op in topo:
        if op.name in member:
            consumed_here.update(op.inputs)
    for op in reversed(topo):
        if op.kind is OpKind.FLATTEN and op.output in consumed_here:
            member.add(op.name)
            consumed_here.update(op.inputs)
    for op in topo:
        if op.name in member:
            included.append(op)
            included_names.add(op.name)

    produced = {op.output for op in included}
    boundary: List[str] = []
    for op in included:
        for tensor in op.inputs:
            if tensor not in produced and tensor not in boundary:
                boundary.append(tensor)

    sub = ComputationGraph(f"{graph.name}@chip{shard_index}")
    for tensor in boundary:
        sub.add_tensor(graph.tensor(tensor))
    for op in included:
        if op.output not in sub.tensors:
            sub.add_tensor(graph.tensor(op.output))
    for tensor in boundary:
        sub.add_operator(
            Operator(
                name=f"in:{tensor}",
                kind=OpKind.INPUT,
                inputs=[],
                output=tensor,
                attrs={"shape": graph.tensor(tensor).shape},
            )
        )
    for op in included:
        sub.add_operator(op)

    external = {op.output for op in graph.input_operators}
    shard = GraphShard(
        index=shard_index,
        node_indices=list(node_indices),
        graph=sub,
        external_inputs=[t for t in boundary if t in external],
    )
    shard.incoming = {t: -1 for t in boundary if t not in external}
    return shard


def shard_graph(
    graph: ComputationGraph,
    num_chips: int,
    cuts: Optional[Tuple[int, ...]] = None,
    cgraph: Optional[CondensedGraph] = None,
) -> ShardingPlan:
    """Pipeline-shard a model across ``num_chips`` chips at layer cuts.

    The condensed linearization is dependency-preserving, so contiguous
    segments are valid pipeline stages: every tensor a shard consumes is
    produced by an earlier shard (an inter-chip transfer), by the host
    (a model input), or within the shard.  Capacity feasibility of each
    shard is checked by the per-shard compiler pass
    (:func:`repro.compiler.pipeline.compile_sharded`), which raises
    :class:`CompileError` naming the offending shard.
    """
    spec = ShardingSpec(num_chips=num_chips, cuts=cuts)
    cgraph = cgraph or condense(graph)
    resolved_cuts, segments = _shard_segments(cgraph, spec)
    shards = [
        _build_shard_graph(graph, cgraph, segment, index)
        for index, segment in enumerate(segments)
    ]

    producer_shard: Dict[str, int] = {}
    for shard in shards:
        for op in shard.graph.operators:
            if op.kind is not OpKind.INPUT:
                producer_shard[op.output] = shard.index

    final_outputs = {cgraph.resolve(t) for t in graph.outputs}
    for shard in shards:
        for tensor in list(shard.incoming):
            src = producer_shard.get(tensor)
            if src is None or src >= shard.index:
                raise CompileError(
                    f"shard {shard.index}: boundary tensor {tensor!r} is "
                    f"not produced by an earlier shard (cuts are not "
                    f"dependency-preserving)"
                )
            shard.incoming[tensor] = src

    for shard in shards:
        outgoing = []
        for op in shard.graph.operators:
            if op.kind is OpKind.INPUT:
                continue
            consumers = [
                other
                for other in shards
                if other.index > shard.index and op.output in other.incoming
            ]
            if consumers:
                outgoing.append(op.output)
            if op.output in final_outputs or op.output in graph.outputs:
                shard.final_outputs.append(op.output)
        shard.outgoing = outgoing
        for tensor in [*outgoing, *shard.final_outputs]:
            shard.graph.mark_output(tensor)
        if not shard.graph.outputs:
            raise CompileError(
                f"shard {shard.index} produces no boundary or model "
                f"outputs; adjust the cuts"
            )
        shard.graph.validate()

    return ShardingPlan(
        spec=spec,
        graph=graph,
        cgraph=cgraph,
        cuts=resolved_cuts,
        shards=shards,
    )
