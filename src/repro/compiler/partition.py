"""DP-based model partitioning and mapping (Algorithm 1).

The model is divided into sequential *execution stages* so each stage's
weights fit the chip's CIM capacity simultaneously.  Dependency closures
of the condensed DAG are enumerated as bitmasks; every pair of nested
closures ``D[j] subset D[i]`` defines a candidate stage ``D[i] - D[j]``;
``OptimalMapping`` prices each candidate (with duplication), and dynamic
programming selects the partition chain with minimum total cost.
"""

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.config import ArchConfig
from repro.errors import CompileError
from repro.compiler.closures import (
    DEFAULT_CLOSURE_LIMIT,
    closure_masks,
    is_subset,
    mask_nodes,
)
from repro.compiler.cost import CostModel, StageEstimate
from repro.compiler.frontend import CondensedGraph
from repro.compiler.geometry import NodeGeometry
from repro.compiler.mapping import optimal_mapping


@dataclass
class StageDecision:
    """One chosen stage: its node indices and replica counts."""

    node_indices: List[int]
    replicas: Dict[str, int]
    estimate: StageEstimate


@dataclass
class PartitionResult:
    """The full partition chain plus its estimated cost."""

    stages: List[StageDecision]
    total_cost: float

    @property
    def total_latency(self) -> int:
        return sum(s.estimate.latency for s in self.stages)

    @property
    def total_energy_pj(self) -> float:
        return sum(s.estimate.energy_pj for s in self.stages)


def _spill_flags(cgraph: CondensedGraph, stage_nodes: List[int]) -> Dict[str, bool]:
    """Which stage nodes must write their output to global memory."""
    in_stage = set(stage_nodes)
    flags: Dict[str, bool] = {}
    for index in stage_nodes:
        node = cgraph.nodes[index]
        consumers = cgraph.consumers(node)
        external = any(c not in in_stage for c in consumers)
        flags[node.name] = external or cgraph.is_graph_output(node) or not consumers
    return flags


def dp_partition(
    cgraph: CondensedGraph,
    geometries: Dict[str, NodeGeometry],
    arch: ArchConfig,
    cost_model: Optional[CostModel] = None,
    duplicate: bool = True,
    closure_limit: int = DEFAULT_CLOSURE_LIMIT,
) -> PartitionResult:
    """Algorithm 1: DP-based partitioning and mapping."""
    cost_model = cost_model or CostModel(arch)
    deps = cgraph.dep_list()
    masks = closure_masks(deps, closure_limit)
    index_of = {mask: i for i, mask in enumerate(masks)}
    full = (1 << len(cgraph)) - 1
    if full not in index_of:
        raise CompileError("closure enumeration lost the full graph")

    INF = float("inf")
    dp = [INF] * len(masks)
    prev = [-1] * len(masks)
    decision: List[Optional[StageDecision]] = [None] * len(masks)
    stage_cache: Dict[int, Optional[Tuple[Dict[str, int], StageEstimate]]] = {}

    def price_stage(stage_mask: int) -> Optional[Tuple[Dict[str, int], StageEstimate]]:
        if stage_mask not in stage_cache:
            nodes = mask_nodes(stage_mask)
            geoms = [geometries[cgraph.nodes[i].name] for i in nodes]
            spill = _spill_flags(cgraph, nodes)
            stage_cache[stage_mask] = optimal_mapping(
                geoms, arch, cost_model, duplicate=duplicate, spill=spill
            )
        return stage_cache[stage_mask]

    for i, mask_i in enumerate(masks):
        if mask_i == 0:
            dp[i] = 0.0
            continue
        for j in range(len(masks)):
            mask_j = masks[j]
            if mask_j == mask_i or not is_subset(mask_j, mask_i):
                continue
            if dp[j] == INF:
                continue
            stage_mask = mask_i & ~mask_j
            priced = price_stage(stage_mask)
            if priced is None:
                continue
            replicas, estimate = priced
            cost = dp[j] + estimate.cost
            if cost < dp[i]:
                dp[i] = cost
                prev[i] = j
                decision[i] = StageDecision(
                    node_indices=mask_nodes(stage_mask),
                    replicas=replicas,
                    estimate=estimate,
                )

    final = index_of[full]
    if dp[final] == INF:
        raise CompileError(
            "no feasible partition: some stage cannot fit the chip even alone"
        )
    stages: List[StageDecision] = []
    cursor = final
    while masks[cursor] != 0:
        stages.append(decision[cursor])
        cursor = prev[cursor]
    stages.reverse()
    return PartitionResult(stages=stages, total_cost=dp[final])


def greedy_partition(
    cgraph: CondensedGraph,
    geometries: Dict[str, NodeGeometry],
    arch: ArchConfig,
    cost_model: Optional[CostModel] = None,
    duplicate: bool = False,
) -> PartitionResult:
    """Baseline partitioning: pack the linear order greedily by capacity.

    This is the conventional scheme both baselines in Sec. IV-B use:
    stages are maximal prefixes of the linearization whose single-replica
    mappings fit the chip.  With ``duplicate=True`` the leftover cores of
    each stage are then filled by opportunistic weight duplication
    (CIM-MLC's strategy); with ``False`` it is the generic mapping.
    """
    cost_model = cost_model or CostModel(arch)
    stages: List[StageDecision] = []
    current: List[int] = []

    def close_stage() -> None:
        if not current:
            return
        geoms = [geometries[cgraph.nodes[i].name] for i in current]
        spill = _spill_flags(cgraph, current)
        priced = optimal_mapping(
            geoms, arch, cost_model, duplicate=duplicate, spill=spill
        )
        if priced is None:  # pragma: no cover - guarded by the fit check
            raise CompileError("greedy stage unexpectedly infeasible")
        replicas, estimate = priced
        stages.append(
            StageDecision(
                node_indices=list(current), replicas=replicas, estimate=estimate
            )
        )
        current.clear()

    used_cores = 0
    for index, node in enumerate(cgraph.nodes):
        need = geometries[node.name].cores_min
        if current and used_cores + need > arch.num_cores:
            close_stage()
            used_cores = 0
        if need > arch.num_cores:
            raise CompileError(
                f"{node.name} needs {need} cores, chip has {arch.num_cores}"
            )
        current.append(index)
        used_cores += need
    close_stage()
    total = sum(s.estimate.cost for s in stages)
    return PartitionResult(stages=stages, total_cost=total)
