"""Mapping geometry: how a condensed node occupies CIM macro groups.

This module implements the *dimension matching* of the paper's OP-level
virtual-mapping phase (Fig. 4b): the software weight dimensions of each
MVM operator are laid onto the two-dimensional ``tile_rows x tile_cols``
macro-group array:

- **conv**: im2col turns the ``(k, k, C_in, C_out)`` kernel into a dense
  ``(k*k*C_in) x C_out`` matrix; rows are sliced into ``row_tiles`` chunks
  of ``tile_rows`` and columns into ``col_slices`` chunks of ``tile_cols``.
- **dwconv**: the block-diagonal depthwise matrix packs ``group`` channels
  per tile (``group * k * k`` rows by ``group`` columns), wasting the
  off-diagonal cells -- the structural reason compact models have small
  CIM footprints.
- **gemm**: the weight matrix maps directly.

Column slices are distributed over cores (a column slice never splits
across cores, so no cross-core partial sums exist); whole-node *replicas*
(the paper's weight duplication) split the output spatial rows.
"""

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.config import ArchConfig
from repro.errors import CapacityError, CompileError
from repro.compiler.frontend import CondensedNode
from repro.graph.ops import OpKind
from repro.utils import ceil_div


@dataclass(frozen=True)
class WeightTile:
    """One macro-group-sized weight tile of a node.

    ``data`` is the dense int8 matrix loaded into the macro group
    (``rows_used x cols_used``).  ``vec_lo`` is the tile's starting row in
    the node's im2col input vector (dwconv tiles gather their own vectors
    and use ``channel_lo/hi`` instead); ``col_lo/hi`` is the output-channel
    range the tile produces.
    """

    slice_index: int
    tile_index: int
    rows_used: int
    cols_used: int
    vec_lo: int
    col_lo: int
    col_hi: int
    data: Optional[np.ndarray] = None
    channel_lo: int = 0
    channel_hi: int = 0

    @property
    def nbytes(self) -> int:
        return self.rows_used * self.cols_used


@dataclass(frozen=True)
class CoreRole:
    """The column slices one core of a replica owns.

    ``band`` is the contiguous output-channel range [c0, c1) the core
    produces; ``tiles`` are the weight tiles it loads (one macro group
    each, in MG index order).
    """

    position: int  # core ordinal within the replica
    band: Tuple[int, int]
    tiles: Tuple[WeightTile, ...]


class NodeGeometry:
    """Everything the mapper and code generator need to place one node."""

    def __init__(self, node: CondensedNode, arch: ArchConfig, graph):
        self.node = node
        self.arch = arch
        self._graph_ref = graph
        shape = self._output_shape()
        if len(shape) == 3:
            self.out_h, self.out_w, self.out_c = shape
        else:
            self.out_h, self.out_w, self.out_c = 1, 1, shape[0]
        self.tile_rows = arch.mg_tile_rows
        self.tile_cols = arch.mg_tile_cols
        self.mgs_per_core = arch.mgs_per_core
        self.row_tiles = 0
        self.col_slices = 0
        self.slices_per_core = 0
        self.cores_min = 1
        self.dw_group = 0
        self.vec_rows = 0  # im2col vector length (conv / gemm)
        #: weight streaming: a column slice has more row tiles than macro
        #: groups, so tiles stream through the array (single-position
        #: operators only -- large fully-connected layers).
        self.multipass = False
        if node.is_cim:
            self._cim_geometry()

    # -- shape helpers -------------------------------------------------------
    def _output_shape(self) -> Tuple[int, ...]:
        # The node's output tensor shape comes from the underlying graph.
        return tuple(self._graph().tensor(self.node.output).shape)

    def _graph(self):
        return self._graph_ref

    # -- CIM occupancy --------------------------------------------------------
    def _cim_geometry(self) -> None:
        anchor = self.node.anchor
        if anchor.kind is OpKind.CONV:
            k = anchor.attrs["kernel"]
            c_in = anchor.weight.shape[2]
            self.vec_rows = k * k * c_in
            self.row_tiles = ceil_div(self.vec_rows, self.tile_rows)
            self.col_slices = ceil_div(self.out_c, self.tile_cols)
        elif anchor.kind is OpKind.GEMM:
            self.vec_rows = anchor.weight.shape[0]
            self.row_tiles = ceil_div(self.vec_rows, self.tile_rows)
            self.col_slices = ceil_div(self.out_c, self.tile_cols)
        elif anchor.kind is OpKind.DWCONV:
            k = anchor.attrs["kernel"]
            channels = anchor.weight.shape[2]
            group = min(self.tile_cols, self.tile_rows // (k * k))
            if group < 1:
                raise CapacityError(
                    f"{anchor.name}: {k}x{k} depthwise window does not fit "
                    f"{self.tile_rows} macro rows"
                )
            self.dw_group = group
            self.row_tiles = 1
            self.col_slices = ceil_div(channels, group)
        else:  # pragma: no cover - guarded by is_cim
            raise CompileError(f"unexpected CIM anchor {anchor.kind}")
        if self.row_tiles > self.mgs_per_core:
            if self.out_h * self.out_w != 1:
                raise CapacityError(
                    f"{anchor.name}: a column slice needs {self.row_tiles} "
                    f"macro groups but a core only has {self.mgs_per_core}, "
                    f"and weight streaming only applies to single-position "
                    f"operators"
                )
            self.multipass = True
            self.slices_per_core = 1
        else:
            self.slices_per_core = max(1, self.mgs_per_core // self.row_tiles)
        self.cores_min = ceil_div(self.col_slices, self.slices_per_core)
        if self.cores_min > self.arch.num_cores:
            raise CapacityError(
                f"{anchor.name}: needs {self.cores_min} cores, chip has "
                f"{self.arch.num_cores}"
            )

    @property
    def tiles_total(self) -> int:
        """Macro groups occupied by one replica of this node."""
        return self.row_tiles * self.col_slices if self.node.is_cim else 0

    @property
    def max_replicas(self) -> int:
        """Duplication is bounded by the output rows available to split."""
        return max(1, self.out_h)

    # -- weight packing --------------------------------------------------------
    def _weight_matrix(self) -> np.ndarray:
        anchor = self.node.anchor
        if anchor.kind is OpKind.CONV:
            k = anchor.attrs["kernel"]
            c_in = anchor.weight.shape[2]
            return anchor.weight.reshape(k * k * c_in, self.out_c)
        if anchor.kind is OpKind.GEMM:
            return anchor.weight
        raise CompileError(f"{anchor.name}: no dense weight matrix")

    def pack_tiles(self) -> List[WeightTile]:
        """Cut the node's weights into macro-group tiles.

        Tiles are listed slice-major (all row tiles of column slice 0,
        then slice 1, ...), the order cores load them into macro groups.
        """
        if not self.node.is_cim:
            return []
        anchor = self.node.anchor
        tiles: List[WeightTile] = []
        if anchor.kind is OpKind.DWCONV:
            k = anchor.attrs["kernel"]
            channels = anchor.weight.shape[2]
            for s in range(self.col_slices):
                g0 = s * self.dw_group
                g1 = min(channels, g0 + self.dw_group)
                group = g1 - g0
                rows = group * k * k
                data = np.zeros((rows, group), dtype=np.int8)
                for kk in range(k * k):
                    kr, kc = divmod(kk, k)
                    for g in range(group):
                        data[kk * group + g, g] = anchor.weight[kr, kc, g0 + g]
                tiles.append(
                    WeightTile(
                        slice_index=s, tile_index=0,
                        rows_used=rows, cols_used=group,
                        vec_lo=0, col_lo=g0, col_hi=g1,
                        data=data, channel_lo=g0, channel_hi=g1,
                    )
                )
            return tiles
        matrix = self._weight_matrix()
        for s in range(self.col_slices):
            c0 = s * self.tile_cols
            c1 = min(self.out_c, c0 + self.tile_cols)
            for t in range(self.row_tiles):
                r0 = t * self.tile_rows
                r1 = min(self.vec_rows, r0 + self.tile_rows)
                tiles.append(
                    WeightTile(
                        slice_index=s, tile_index=t,
                        rows_used=r1 - r0, cols_used=c1 - c0,
                        vec_lo=r0, col_lo=c0, col_hi=c1,
                        data=np.ascontiguousarray(matrix[r0:r1, c0:c1]),
                    )
                )
        return tiles

    def core_roles(self) -> List[CoreRole]:
        """Distribute column slices over the replica's cores.

        Consecutive slices go to the same core so each core owns one
        contiguous output-channel band.
        """
        if not self.node.is_cim:
            return [CoreRole(position=0, band=(0, self.out_c), tiles=())]
        tiles = self.pack_tiles()
        by_slice: List[List[WeightTile]] = [[] for _ in range(self.col_slices)]
        for tile in tiles:
            by_slice[tile.slice_index].append(tile)
        roles: List[CoreRole] = []
        for position in range(self.cores_min):
            s0 = position * self.slices_per_core
            s1 = min(self.col_slices, s0 + self.slices_per_core)
            owned = [tile for s in range(s0, s1) for tile in by_slice[s]]
            band = (by_slice[s0][0].col_lo, by_slice[s1 - 1][0].col_hi)
            roles.append(CoreRole(position=position, band=band, tiles=tuple(owned)))
        return roles


def build_geometry(node: CondensedNode, arch: ArchConfig, graph) -> NodeGeometry:
    """Construct geometry for one node (graph supplies tensor shapes)."""
    return NodeGeometry(node, arch, graph)
