"""Execution-plan data structures: stages, clusters, replicas, memory map.

An :class:`ExecutionPlan` is the compiler's CG-level product: the chosen
partition stages, the core clusters and replica row-splits of every node,
and the global-memory layout (weight tiles, biases, spilled activation
tensors).  OP-level code generation consumes a plan and emits one ISA
program per core.
"""

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.config import ArchConfig
from repro.config.arch import GLOBAL_BASE
from repro.errors import CompileError
from repro.compiler.cost import StageEstimate
from repro.compiler.frontend import CondensedGraph, CondensedNode
from repro.compiler.geometry import NodeGeometry, WeightTile
from repro.compiler.partition import PartitionResult
from repro.graph.graph import ComputationGraph


def split_rows(total: int, parts: int) -> List[Tuple[int, int]]:
    """Split ``total`` rows into ``parts`` balanced contiguous ranges."""
    if parts <= 0 or total <= 0:
        raise CompileError("rows and parts must be positive")
    parts = min(parts, total)
    base, extra = divmod(total, parts)
    ranges = []
    start = 0
    for p in range(parts):
        size = base + (1 if p < extra else 0)
        ranges.append((start, start + size))
        start += size
    return ranges


@dataclass
class ReplicaAssignment:
    """One replica (duplication copy) of a node: its cores and row range."""

    index: int
    cores: List[int]
    rows: Tuple[int, int]

    @property
    def num_rows(self) -> int:
        return self.rows[1] - self.rows[0]


@dataclass
class NodeMapping:
    """Complete placement of one node within its stage."""

    node: CondensedNode
    geometry: NodeGeometry
    replicas: List[ReplicaAssignment]

    @property
    def all_cores(self) -> List[int]:
        return [core for replica in self.replicas for core in replica.cores]

    def replica_for_row(self, row: int) -> ReplicaAssignment:
        """The replica producing output row ``row``."""
        for replica in self.replicas:
            if replica.rows[0] <= row < replica.rows[1]:
                return replica
        raise CompileError(
            f"{self.node.name}: no replica owns output row {row}"
        )


@dataclass
class StagePlan:
    """One execution stage: nodes, their mappings, and spill flags."""

    index: int
    nodes: List[CondensedNode]
    mappings: Dict[str, NodeMapping]
    spill: Dict[str, bool]
    estimate: Optional[StageEstimate] = None

    def produces_in_stage(self, tensor: str) -> Optional[NodeMapping]:
        """Mapping of the stage node producing ``tensor``, if any."""
        for node in self.nodes:
            if node.output == tensor:
                return self.mappings[node.name]
        return None

    @property
    def cores_used(self) -> int:
        return sum(len(m.all_cores) for m in self.mappings.values())


@dataclass
class ExecutionPlan:
    """The CG-level compilation product."""

    graph: ComputationGraph
    cgraph: CondensedGraph
    arch: ArchConfig
    strategy: str
    geometries: Dict[str, NodeGeometry]
    stages: List[StagePlan]
    partition: PartitionResult
    tensor_address: Dict[str, int] = field(default_factory=dict)
    weight_address: Dict[Tuple[str, int, int], int] = field(default_factory=dict)
    bias_address: Dict[str, int] = field(default_factory=dict)
    global_bytes: int = 0

    def stage_of(self, node_name: str) -> int:
        for stage in self.stages:
            if node_name in stage.mappings:
                return stage.index
        raise CompileError(f"node {node_name!r} not in any stage")

    def tile_address(self, node_name: str, tile: WeightTile) -> int:
        return self.weight_address[(node_name, tile.slice_index, tile.tile_index)]

    @property
    def num_stages(self) -> int:
        return len(self.stages)

    @property
    def max_replication(self) -> int:
        return max(
            (len(m.replicas) for s in self.stages for m in s.mappings.values()),
            default=1,
        )

    def summary(self) -> str:
        lines = [
            f"plan[{self.strategy}] {self.graph.name}: {self.num_stages} stages, "
            f"global footprint {self.global_bytes / 1024:.1f} KiB"
        ]
        for stage in self.stages:
            parts = []
            for node in stage.nodes:
                mapping = self.mappings_of(stage, node)
                parts.append(
                    f"{node.name}(x{len(mapping.replicas)}@"
                    f"{len(mapping.replicas[0].cores)}c)"
                )
            lines.append(
                f"  stage {stage.index}: {stage.cores_used} cores: "
                + ", ".join(parts)
            )
        return "\n".join(lines)

    @staticmethod
    def mappings_of(stage: StagePlan, node: CondensedNode) -> NodeMapping:
        return stage.mappings[node.name]


def assign_cores_and_rows(
    cgraph: CondensedGraph,
    geometries: Dict[str, NodeGeometry],
    partition: PartitionResult,
    arch: ArchConfig,
) -> List[StagePlan]:
    """Turn partition decisions into concrete core ids and row ranges.

    Cores are assigned densely in node order; replicas of a node occupy
    adjacent core blocks (the paper's clusters), keeping intra-cluster NoC
    distances short under XY routing.
    """
    from repro.compiler.partition import _spill_flags

    stages: List[StagePlan] = []
    for stage_index, decision in enumerate(partition.stages):
        next_core = 0
        nodes = [cgraph.nodes[i] for i in decision.node_indices]
        mappings: Dict[str, NodeMapping] = {}
        for node in nodes:
            geometry = geometries[node.name]
            replica_count = min(
                decision.replicas.get(node.name, 1), geometry.max_replicas
            )
            row_ranges = split_rows(geometry.out_h, replica_count)
            replicas = []
            for r_index, rows in enumerate(row_ranges):
                cores = list(range(next_core, next_core + geometry.cores_min))
                next_core += geometry.cores_min
                replicas.append(
                    ReplicaAssignment(index=r_index, cores=cores, rows=rows)
                )
            if next_core > arch.num_cores:
                raise CompileError(
                    f"stage {stage_index} overflows the chip "
                    f"({next_core} > {arch.num_cores} cores)"
                )
            mappings[node.name] = NodeMapping(
                node=node, geometry=geometry, replicas=replicas
            )
        stages.append(
            StagePlan(
                index=stage_index,
                nodes=nodes,
                mappings=mappings,
                spill=_spill_flags(cgraph, decision.node_indices),
                estimate=decision.estimate,
            )
        )
    return stages


def layout_global_memory(plan: ExecutionPlan) -> None:
    """Assign global-memory addresses: inputs, spilled tensors, weights.

    A simple bump allocator over the global window.  The paper's Table I
    chip has 16 MB of global memory; models whose parameters exceed it are
    assumed to stream from off-chip backing store at the same port (the
    cost model charges identical per-byte energy either way).
    """
    cursor = 0

    def allocate(size: int) -> int:
        nonlocal cursor
        address = GLOBAL_BASE + cursor
        cursor += (size + 63) & ~63  # 64-byte alignment
        return address

    graph = plan.graph
    cgraph = plan.cgraph
    for op in graph.input_operators:
        plan.tensor_address[op.output] = allocate(graph.tensor(op.output).size_bytes)
    for stage in plan.stages:
        for node in stage.nodes:
            if stage.spill[node.name]:
                info = graph.tensor(node.output)
                plan.tensor_address[node.output] = allocate(info.size_bytes)
    for stage in plan.stages:
        for node in stage.nodes:
            geometry = plan.geometries[node.name]
            if not node.is_cim:
                continue
            for tile in geometry.pack_tiles():
                key = (node.name, tile.slice_index, tile.tile_index)
                plan.weight_address[key] = allocate(tile.rows_used * tile.cols_used)
            bias = node.anchor.bias
            if bias is not None:
                plan.bias_address[node.name] = allocate(4 * bias.size)
    plan.global_bytes = cursor
