"""The CIMFlow compiler: CG-level and OP-level optimization (Sec. III-C)."""

from repro.compiler.closures import closure_masks, prefix_masks
from repro.compiler.cost import CostModel, StageEstimate
from repro.compiler.frontend import CondensedGraph, CondensedNode, condense
from repro.compiler.geometry import NodeGeometry, WeightTile, build_geometry
from repro.compiler.mapping import optimal_mapping
from repro.compiler.partition import (
    GraphShard,
    PartitionResult,
    ShardingPlan,
    ShardingSpec,
    StageDecision,
    dp_partition,
    greedy_partition,
    shard_graph,
)
from repro.compiler.pipeline import (
    CompiledModel,
    InterChipTransfer,
    MultiChipModel,
    compile_graph,
    compile_sharded,
)
from repro.compiler.plan import ExecutionPlan, GLOBAL_BASE, StagePlan
from repro.compiler.strategies import (
    STRATEGIES,
    build_geometries,
    partition_with_strategy,
)

__all__ = [
    "condense",
    "CondensedGraph",
    "CondensedNode",
    "NodeGeometry",
    "WeightTile",
    "build_geometry",
    "build_geometries",
    "closure_masks",
    "prefix_masks",
    "CostModel",
    "StageEstimate",
    "optimal_mapping",
    "dp_partition",
    "greedy_partition",
    "PartitionResult",
    "StageDecision",
    "partition_with_strategy",
    "STRATEGIES",
    "ExecutionPlan",
    "StagePlan",
    "GLOBAL_BASE",
    "compile_graph",
    "CompiledModel",
    "shard_graph",
    "ShardingSpec",
    "ShardingPlan",
    "GraphShard",
    "compile_sharded",
    "MultiChipModel",
    "InterChipTransfer",
]
